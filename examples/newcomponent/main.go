// Newcomponent: applying the methodology's component-level test
// development (Figure 4) to a new functional component outside the Plasma
// core. A standalone 32-bit ALU is synthesized, its stuck-at fault
// universe enumerated, and the library's deterministic pattern set is
// applied directly at the component boundary — demonstrating why a
// handful of regular patterns achieves near-complete coverage of regular
// datapath structures, which is the foundation the self-test routines
// build on.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gate"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	// Synthesize the component standalone with ports.
	c := synth.NewCtx("alu32", synth.NativeLib{})
	a := c.B.InputBus("a", 32)
	d := c.B.InputBus("b", 32)
	op := c.B.InputBus("op", 3)
	c.B.BeginComponent("ALU")
	out := c.ALU(synth.Bus(a), synth.Bus(d), synth.Bus(op))
	c.B.OutputBus("y", out)
	n := c.B.N
	if err := n.Validate(); err != nil {
		log.Fatal(err)
	}
	_, gates := n.GateCount()
	faults := fault.Universe(n)
	fmt.Printf("standalone ALU: %.0f NAND2 gates, %d collapsed stuck-at faults\n", gates, len(faults))

	// Stimuli: the library pattern set under every operation.
	type vec struct{ a, b, op uint64 }
	var stimuli []vec
	for _, p := range core.ALUPatterns {
		for o := uint64(0); o < 8; o++ {
			stimuli = append(stimuli, vec{uint64(p.A), uint64(p.B), o})
		}
	}

	// Golden responses.
	sim, err := gate.NewSim(n)
	if err != nil {
		log.Fatal(err)
	}
	golden := make([]uint64, len(stimuli))
	for i, s := range stimuli {
		sim.SetBusUniform("a", s.a)
		sim.SetBusUniform("b", s.b)
		sim.SetBusUniform("op", s.op)
		sim.Eval()
		golden[i] = sim.BusLane("y", 0)
	}

	// Bit-parallel fault simulation at the component boundary, growing
	// the applied pattern count to show the coverage ramp.
	detected := make([]bool, len(faults))
	coverageAfter := make([]int, len(stimuli))
	for lo := 0; lo < len(faults); lo += 64 {
		hi := lo + 64
		if hi > len(faults) {
			hi = len(faults)
		}
		lf := make([]gate.LaneFault, hi-lo)
		for i := range lf {
			lf[i] = gate.LaneFault{Site: faults[lo+i].Site, Lane: i}
		}
		sim.SetFaults(lf)
		for si, s := range stimuli {
			sim.SetBusUniform("a", s.a)
			sim.SetBusUniform("b", s.b)
			sim.SetBusUniform("op", s.op)
			sim.Eval()
			for i := 0; i < hi-lo; i++ {
				if !detected[lo+i] && sim.BusLane("y", i) != golden[si] {
					detected[lo+i] = true
					coverageAfter[si]++
				}
			}
		}
	}
	sim.ClearFaults()

	total := 0
	fmt.Printf("\n%-28s %10s\n", "after pattern pair", "coverage")
	for si := range stimuli {
		total += coverageAfter[si]
		if si%8 == 7 { // one line per operand pair (8 ops each)
			p := core.ALUPatterns[si/8]
			fmt.Printf("(%08x, %08x)         %9.2f%%\n", p.A, p.B,
				100*float64(total)/float64(len(faults)))
		}
	}
	fmt.Printf("\nfinal component coverage: %.2f%% with %d patterns\n",
		100*float64(total)/float64(len(faults)), len(stimuli))
}
