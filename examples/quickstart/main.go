// Quickstart: build the gate-level Plasma/MIPS core, generate the Phase A
// software self-test program with the SBST methodology, run it on the
// core, and estimate its stuck-at fault coverage with a sampled fault
// simulation — the whole flow of the paper in one page of code.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/plasma"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	// 1. Synthesize the processor with technology library A.
	cpu, err := plasma.Build(synth.NativeLib{})
	if err != nil {
		log.Fatal(err)
	}
	_, gates := cpu.Netlist.GateCount()
	fmt.Printf("Plasma/MIPS core: %.0f NAND2-equivalent gates\n", gates)

	// 2. Classify components and generate the Phase A self-test program
	//    (the paper's functional components: RegF, MulD, ALU, BSH).
	comps := core.ClassifyNetlist(cpu.Netlist)
	st, err := core.GenerateSelfTest(comps, core.PhaseA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Phase A self-test: %d words, %d cycles\n", st.Words, st.Cycles)

	// 3. Execute it on the gate-level core and verify it completes.
	m, halted, err := plasma.RunProgram(cpu, st.Program, uint64(st.GateCycles()), false)
	if err != nil {
		log.Fatal(err)
	}
	marker := m.Mem.Word(core.DefaultRespBase + uint32(st.RespWords)*4)
	fmt.Printf("executed on gate-level core: halted=%v completion marker=%#x\n", halted, marker)

	// 4. Estimate fault coverage with a 2048-fault deterministic sample
	//    (run cmd/report -table 5 for the full universe).
	golden, err := plasma.CaptureGolden(cpu, st.Program, st.GateCycles())
	if err != nil {
		log.Fatal(err)
	}
	faults := fault.Universe(cpu.Netlist)
	res, err := fault.Simulate(cpu, golden, faults, fault.Options{Sample: 2048, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled stuck-at coverage: %.1f%% (%d of %d collapsed faults sampled)\n",
		res.WeightedCoverage(), len(res.Faults), len(faults))
	fmt.Print(fault.NewReport(cpu.Netlist, res).String())
}
