// Phases: the coverage/cost trade-off of multi-phase test development
// (the Table 4 + Table 5 narrative). Phase A targets the functional
// components; Phase B adds the control components (memory controller and
// PC logic first, by size and missed-coverage priority); Phase C adds the
// hidden pipeline logic. Each phase buys coverage at a test-program size
// and execution-time cost, and the tester cost model translates that into
// test application time.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/tester"
)

func main() {
	log.SetFlags(0)
	env, err := bench.DefaultEnv()
	if err != nil {
		log.Fatal(err)
	}

	opt := fault.Options{Sample: 4096, Seed: 1}
	fmt.Printf("phase sweep on %s (sampled %d faults)\n\n", env.Lib.Name(), opt.Sample)
	fmt.Printf("%-8s %8s %10s %10s %14s\n", "Phases", "Words", "Cycles", "FC%", "Test time @10MHz")
	for _, ph := range []core.PhaseID{core.PhaseA, core.PhaseB, core.PhaseC} {
		st, err := env.SelfTest(ph)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := env.FaultSimSelfTest(ph, opt)
		if err != nil {
			log.Fatal(err)
		}
		fc := 100 * float64(rep.Overall.DetW) / float64(rep.Overall.TotalW)
		cost := tester.Apply(st.Words, st.Cycles, st.RespWords, tester.DefaultProfile)
		fmt.Printf("%-8s %8d %10d %10.2f %13.1fus\n",
			"<= "+ph.String(), st.Words, st.Cycles, fc, cost.Total()*1e6)
	}

	fmt.Println("\nper-component coverage after each phase:")
	_, table, err := bench.Table5(env, opt, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(table)
}
