// Diagnosis: the self-test program as a production test. A fault
// dictionary is built by grading the Phase A program once; then a "failing
// device" is emulated by injecting an arbitrary stuck-at defect into the
// gate-level core and running the same program. The device's first
// failure (cycle + output group) is looked up in the dictionary, and the
// candidate list localizes the defect — often to a handful of equivalent
// gates.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gate"
	"repro/internal/plasma"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	cpu, err := plasma.Build(synth.NativeLib{})
	if err != nil {
		log.Fatal(err)
	}
	st, err := core.GenerateSelfTest(core.ClassifyNetlist(cpu.Netlist), core.PhaseA)
	if err != nil {
		log.Fatal(err)
	}
	golden, err := plasma.CaptureGolden(cpu, st.Program, st.GateCycles())
	if err != nil {
		log.Fatal(err)
	}

	// Build the dictionary over a deterministic sample (use the full
	// universe for production resolution; sampled here to stay fast).
	faults := fault.SampleFaults(fault.Universe(cpu.Netlist), 6000, 42)
	res, err := fault.Simulate(cpu, golden, faults, fault.Options{})
	if err != nil {
		log.Fatal(err)
	}
	dict := fault.BuildDictionary(res)
	fmt.Printf("dictionary: %s\n\n", dict.Resolution())

	// Emulate three failing devices with defects drawn from the sample.
	rng := rand.New(rand.NewSource(7))
	for device := 0; device < 3; device++ {
		var defect fault.Fault
		for {
			defect = faults[rng.Intn(len(faults))]
			if res.Detected(indexOf(faults, defect)) {
				break
			}
		}
		obs, ok := observeFirstFailure(cpu, golden, defect.Site)
		if !ok {
			log.Fatalf("device %d: defect %v produced no failure", device, defect.Site)
		}
		fmt.Printf("device %d fails at cycle %d on %s\n", device, obs.Cycle, obs.GroupString())

		cands := dict.Diagnose(obs)
		hit := false
		for _, c := range cands {
			if c.Fault.Site == defect.Site {
				hit = true
			}
		}
		comp := cpu.Netlist.ComponentOf(defect.Site.Gate)
		fmt.Printf("  injected: %v in %s\n", defect.Site, comp)
		fmt.Printf("  diagnosis: %d candidates, injected defect included: %v\n", len(cands), hit)
		for i, c := range cands {
			if i >= 3 {
				fmt.Printf("    ... %d more\n", len(cands)-3)
				break
			}
			fmt.Printf("    %v in %s (exact=%v)\n",
				c.Fault.Site, cpu.Netlist.ComponentOf(c.Fault.Site.Gate), c.Exact)
		}
		fmt.Println()
	}
}

func indexOf(faults []fault.Fault, f fault.Fault) int {
	for i := range faults {
		if faults[i].Site == f.Site {
			return i
		}
	}
	return -1
}

// observeFirstFailure runs the self-test on a device with the given defect
// and returns its first bus divergence — what a tester would record.
func observeFirstFailure(cpu *plasma.CPU, g *plasma.Golden, site gate.FaultSite) (fault.Signature, bool) {
	res, err := fault.Simulate(cpu, g, []fault.Fault{{Site: site, Equiv: 1}}, fault.Options{Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Detected(0) {
		return fault.Signature{}, false
	}
	return fault.Signature{Cycle: res.DetectedAt[0], Groups: res.SignatureGroups[0]}, true
}
