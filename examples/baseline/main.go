// Baseline: the cost comparison that motivates the paper. A deterministic
// SBST program reaches high coverage with a small program and short run;
// a pseudorandom software self-test (Chen & Dey style LFSR expansion)
// needs far more execution time to approach — and typically not reach —
// the same coverage. Program size, cycles, coverage, and test-application
// time at a slow tester are reported for both.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/tester"
)

func main() {
	log.SetFlags(0)
	env, err := bench.DefaultEnv()
	if err != nil {
		log.Fatal(err)
	}

	opt := fault.Options{Sample: 3072, Seed: 1}
	rows, table, err := bench.BaselineComparison(env, []int{16, 64, 256}, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(table)

	sbst := rows[0]
	last := rows[len(rows)-1]
	fmt.Printf("\nexecution-time ratio (pseudorandom/%s vs SBST): %.1fx\n",
		last.Kind, float64(last.Cycles)/float64(sbst.Cycles))

	cSbst := tester.Apply(sbst.Words, sbst.Cycles, 0, tester.DefaultProfile)
	cRnd := tester.Apply(last.Words, last.Cycles, 0, tester.DefaultProfile)
	fmt.Printf("test time @%gMHz tester: SBST %.1fus vs pseudorandom %.1fus\n",
		tester.DefaultProfile.TesterMHz, cSbst.Total()*1e6, cRnd.Total()*1e6)
	if sbst.FC > last.FC {
		fmt.Println("SBST reaches higher coverage at a fraction of the execution time.")
	}
}
