// Command sbstd is the warm-state fault-grading daemon: it synthesizes
// the core, enumerates the fault universe and builds the SIMD dispatch
// tables once, then serves concurrent grading requests over TCP — each
// request a test program, each response fault.Result outcomes
// bit-identical to an in-process fault.Simulate. Golden traces and pass
// plans are memoized per program, and simulations run on a pool of warm
// per-goroutine simulators that survive across requests, so the
// steady-state cost of a grade is the simulation alone.
//
// Usage:
//
//	sbstd [-addr HOST:PORT] [-lib native-0.35um-A|nand2-0.35um-B]
//	      [-engine event|oblivious] [-lanes W] [-pool N]
//	      [-checkpoint-k K] [-cache DIR] [-cache-max-bytes N]
//	      [-drain D] [-stats]
//
// The daemon prints "listening on ADDR" once ready (use -addr :0 for an
// ephemeral port), and shuts down gracefully on SIGINT/SIGTERM: it stops
// accepting, drains in-flight grades up to -drain, then prints the -stats
// report (requests served, golden/plan memo hits, warm simulator reuses
// vs cold constructions, mean latency).
//
// Clients: report -server ADDR grades through a running daemon; the wire
// protocol is documented in internal/serve.
package main

import (
	"os"

	"repro/internal/serve"
)

func main() {
	os.Exit(serve.RunDaemon(os.Args[1:], os.Stdout, os.Stderr))
}
