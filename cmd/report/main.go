// Command report regenerates the paper's evaluation artifacts: Tables 1-5,
// the technology-independence comparison, the pseudorandom-baseline cost
// comparison, and the tester cost model.
//
// Usage:
//
//	report [-table all|1|2|3|4|5|ladder|techlib|baseline|cost] [-variant NAME]
//	       [-sample N] [-seed S] [-workers W]
//	       [-engine event|oblivious] [-lanes W] [-stats] [-checkpoint-k K]
//	       [-shards N] [-shard-timeout D] [-server ADDR]
//	       [-hosts SPEC] [-calibrate]
//	       [-cache DIR] [-cache-max-bytes N] [-cpuprofile FILE] [-memprofile FILE]
//
// -variant selects the core under test (base, fwd5, nomul) for the
// single-core tables. -table ladder instead runs the full Table 3-5 flow
// on every variant and appends the comparative summary: per-variant gate
// counts, fault-universe sizes, program sizes, cycle counts and coverage
// from one invocation. The ladder is excluded from -table all (it runs
// three full flows); request it explicitly. -server pins one synthesized
// core, so it composes with -variant but not with -table ladder.
//
// With -sample 0 (the default for -table 5 via -full) the fault simulations
// run the complete collapsed fault universe, which takes a few minutes;
// -sample trades accuracy for speed with a deterministic fault sample.
// -lanes caps the lane words per fault pass (0 = cost-model adaptive up to
// 64 words = 4096 faulty machines); -checkpoint-k sets the golden-trace
// checkpoint interval (0 = default); -cache persists synthesized netlists
// and golden traces across runs, bounded by -cache-max-bytes (LRU, 0 =
// unbounded); -cpuprofile/-memprofile write pprof profiles.
//
// -shards N > 1 routes every fault simulation through the sharded
// multi-process coordinator (internal/shard): each grading call fans out
// across N worker processes of this binary and merges to a result
// bit-identical to the in-process path. -shard-timeout bounds one worker
// attempt's wall clock (0 = the coordinator's default), and -stats folds
// the shard counters (launches, retries, bytes shipped, per-shard wall
// clock) and the gate-kernel dispatch counters (SIMD vs generic runs,
// batched gates, fast-path hits) into the cumulative statistics block.
//
// -hosts routes every fault simulation through the multi-host
// distributed coordinator instead (see sbst -hosts for the spec syntax
// and worker modes): artifacts replicate to each worker's cache at most
// once per content hash, host capacities come from "=WEIGHT" suffixes or
// -calibrate, and -stats additionally folds in the distributed counters
// (live hosts, straggler re-dispatches, ship and merge wall clock).
// Results stay bit-identical to the in-process path.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gate"
	"repro/internal/plasma"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/synth"
)

func main() {
	shard.ServeIfWorker()
	log.SetFlags(0)
	log.SetPrefix("report: ")
	table := flag.String("table", "all", "which table to regenerate: all, 1, 2, 3, 4, 5, ladder, techlib, baseline, cost, ablation, atpg, latency, periodic, arch, compaction")
	variant := flag.String("variant", plasma.VariantBase, "core variant under test: "+strings.Join(plasma.VariantNames(), ", "))
	sample := flag.Int("sample", 0, "fault sample size (0 = full fault universe)")
	seed := flag.Int64("seed", 1, "fault sampling seed")
	workers := flag.Int("workers", 0, "fault simulation goroutines (0 = GOMAXPROCS)")
	rounds := flag.String("rounds", "16,64,256", "pseudorandom baseline round counts")
	engine := flag.String("engine", "event", "fault-simulation engine: event or oblivious")
	lanes := flag.Int("lanes", 0, "lane words per fault pass: a power of two up to 64 (0 = cost-model adaptive)")
	stats := flag.Bool("stats", false, "print cumulative fault-simulation work statistics")
	fuse := flag.Bool("fuse", true, "fuse checkpoint-window replay across passes (false = unfused reference path)")
	shards := flag.Int("shards", 1, "fault-grading worker processes per simulation (1 = in-process)")
	shardTimeout := flag.Duration("shard-timeout", 0, "per-shard-worker wall-clock budget (0 = default)")
	server := flag.String("server", "", "grade through a running sbstd daemon at this address (serves one synthesized core, so use a native-lib table like -table 5; the techlib table is rejected by the netlist guard)")
	hosts := flag.String("hosts", "", "distribute grading across remote hosts: addr[=weight],exec:argv[=weight],...")
	calibrate := flag.Bool("calibrate", false, "derive missing -hosts weights from a per-host calibration kernel")
	checkpointK := flag.Int("checkpoint-k", 0, "golden-trace checkpoint interval in cycles (0 = default)")
	cacheDir := flag.String("cache", "", "directory for the netlist/golden artifact cache (empty = disabled)")
	cacheMax := flag.Int64("cache-max-bytes", 0, "cache size bound with LRU eviction (0 = unbounded)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	var eng fault.Engine
	switch *engine {
	case "event":
		eng = fault.EngineEvent
	case "oblivious":
		eng = fault.EngineOblivious
	default:
		log.Fatalf("unknown -engine %q (want event or oblivious)", *engine)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	var disk *cache.Cache
	if *cacheDir != "" {
		var err error
		disk, err = cache.Open(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		disk.SetMaxBytes(*cacheMax)
	}

	var simStats fault.SimStats
	opt := fault.Options{Sample: *sample, Seed: *seed, Workers: *workers, Engine: eng, LaneWords: *lanes, NoFusion: !*fuse}
	if *stats {
		opt.CollectInto = &simStats
	}

	// With -shards > 1, every fault simulation in the harness goes through
	// the sharded coordinator instead of in-process fault.Simulate. The
	// shard stats merged into Result.Stats flow into -stats via CollectInto.
	// With -server, they instead travel to a warm-state grading daemon
	// (internal/serve), which memoizes goldens and plans per program and
	// grades on persistent simulators; results stay bit-identical.
	var grader func(cpu *plasma.CPU, golden *plasma.Golden, faults []fault.Fault, opt fault.Options) (*fault.Result, error)
	exclusive := 0
	for _, on := range []bool{*server != "", *shards > 1, *hosts != ""} {
		if on {
			exclusive++
		}
	}
	if exclusive > 1 {
		log.Fatal("-server, -shards and -hosts are mutually exclusive")
	}
	if *hosts != "" {
		specs, err := shard.ParseHosts(*hosts)
		if err != nil {
			log.Fatal(err)
		}
		grader = func(cpu *plasma.CPU, golden *plasma.Golden, faults []fault.Fault, opt fault.Options) (*fault.Result, error) {
			res, _, err := shard.GradeDist(cpu, golden, faults, shard.DistOptions{
				Hosts:     specs,
				Timeout:   *shardTimeout,
				Engine:    opt.Engine,
				LaneWords: opt.LaneWords,
				Workers:   opt.Workers,
				Sample:    opt.Sample,
				Seed:      opt.Seed,
				Cache:     disk,
				Calibrate: *calibrate,
			})
			if err != nil {
				return nil, err
			}
			if opt.CollectInto != nil {
				opt.CollectInto.Add(&res.Stats)
			}
			return res, nil
		}
	}
	if *server != "" {
		client, err := serve.Dial(*server)
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		grader = client.Grader()
	}
	if *shards > 1 {
		grader = func(cpu *plasma.CPU, golden *plasma.Golden, faults []fault.Fault, opt fault.Options) (*fault.Result, error) {
			res, _, err := shard.Grade(cpu, golden, faults, shard.Options{
				Shards:    *shards,
				Timeout:   *shardTimeout,
				Engine:    opt.Engine,
				LaneWords: opt.LaneWords,
				Workers:   opt.Workers,
				Sample:    opt.Sample,
				Seed:      opt.Seed,
				Cache:     disk,
			})
			if err != nil {
				return nil, err
			}
			if opt.CollectInto != nil {
				opt.CollectInto.Add(&res.Stats)
			}
			return res, nil
		}
	}

	if plasma.VariantByName(*variant) == nil {
		log.Fatalf("unknown -variant %q (want one of %v)", *variant, plasma.VariantNames())
	}
	env, err := bench.NewEnvVariant(*variant, synth.NativeLib{}, disk)
	if err != nil {
		log.Fatal(err)
	}
	env.CheckpointK = *checkpointK
	env.Grader = grader

	run := func(name string, f func() (string, error)) {
		if *table != "all" && *table != name {
			return
		}
		s, err := f()
		if err != nil {
			log.Fatalf("table %s: %v", name, err)
		}
		fmt.Printf("==== Table %s ====\n%s\n", name, s)
	}

	run("1", func() (string, error) { return bench.Table1(), nil })
	run("2", func() (string, error) { _, s := bench.Table2(env); return s, nil })
	run("3", func() (string, error) { _, s := bench.Table3(env); return s, nil })
	run("4", func() (string, error) { _, s, err := bench.Table4(env); return s, err })
	run("5", func() (string, error) { _, s, err := bench.Table5(env, opt, true); return s, err })
	run("techlib", func() (string, error) {
		envB, err := bench.NewEnvCached(synth.NandLib{}, disk)
		if err != nil {
			return "", err
		}
		envB.Grader = grader
		_, s, err := bench.TechLibIndependence([]*bench.Env{env, envB}, opt)
		return s, err
	})
	run("baseline", func() (string, error) {
		var ns []int
		var n int
		rest := *rounds
		for len(rest) > 0 {
			if _, err := fmt.Sscanf(rest, "%d", &n); err != nil {
				return "", fmt.Errorf("bad -rounds %q", *rounds)
			}
			ns = append(ns, n)
			for len(rest) > 0 && rest[0] != ',' {
				rest = rest[1:]
			}
			if len(rest) > 0 {
				rest = rest[1:]
			}
		}
		_, s, err := bench.BaselineComparison(env, ns, opt)
		return s, err
	})
	run("cost", func() (string, error) { _, s, err := bench.CostModel(env); return s, err })
	run("ablation", func() (string, error) { _, s, err := bench.RoutineAblation(env, opt); return s, err })
	run("atpg", func() (string, error) { _, s, err := bench.ATPGComparison(); return s, err })
	run("latency", func() (string, error) { _, s, err := bench.DetectionLatency(env, opt); return s, err })
	run("periodic", func() (string, error) { _, s, err := bench.PeriodicComposition(env, opt); return s, err })
	run("arch", func() (string, error) { _, s, err := bench.AdderArchIndependence(); return s, err })
	run("compaction", func() (string, error) { _, s, err := bench.PatternCompaction(); return s, err })

	// The core ladder runs the whole Table 3-5 flow once per variant plus
	// the comparative summary; it is explicit-only (not part of -table all).
	if *table == "ladder" {
		if *server != "" {
			log.Fatal("-table ladder spans multiple cores; -server pins one (use -shards or -hosts instead)")
		}
		envs, err := bench.LadderEnvs(synth.NativeLib{}, disk)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range envs {
			e.CheckpointK = *checkpointK
			e.Grader = grader
		}
		for _, e := range envs {
			_, s3 := bench.Table3(e)
			fmt.Printf("==== Table 3 [%s] ====\n%s\n", e.Variant, s3)
			_, s4, err := bench.Table4(e)
			if err != nil {
				log.Fatalf("ladder %s table 4: %v", e.Variant, err)
			}
			fmt.Printf("==== Table 4 [%s] ====\n%s\n", e.Variant, s4)
			_, s5, err := bench.Table5(e, opt, true)
			if err != nil {
				log.Fatalf("ladder %s table 5: %v", e.Variant, err)
			}
			fmt.Printf("==== Table 5 [%s] ====\n%s\n", e.Variant, s5)
		}
		_, s, err := bench.Ladder(envs, core.PhaseC, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("==== Core ladder ====\n%s\n", s)
	}

	switch *table {
	case "all", "1", "2", "3", "4", "5", "ladder", "techlib", "baseline", "cost", "ablation", "atpg", "latency", "periodic", "arch", "compaction":
	default:
		fmt.Fprintf(os.Stderr, "unknown -table %q\n", *table)
		flag.Usage()
		os.Exit(2)
	}

	if *stats {
		fmt.Printf("==== fault-simulation statistics (engine=%s, simd=%s) ====\n%s\n",
			*engine, gate.SIMDKernelName(), simStats.String())
	}
}
