// Command plasma assembles and runs a MIPS assembly program on the golden
// instruction-set simulator, the gate-level Plasma core, or both
// (co-simulation with bus-trace comparison).
//
// Usage:
//
//	plasma [-engine iss|gate|cosim] [-lib <name>] [-max N] [-trace] [-regs] file.s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/plasma"
	"repro/internal/sim"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("plasma: ")
	engine := flag.String("engine", "iss", "execution engine: iss, gate, or cosim")
	libName := flag.String("lib", synth.NativeLib{}.Name(), "technology library for the gate engine")
	maxCycles := flag.Uint64("max", 1_000_000, "cycle/instruction budget")
	trace := flag.Bool("trace", false, "print the data-bus trace")
	regs := flag.Bool("regs", false, "print final architectural registers (iss engine)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: plasma [flags] file.s")
		flag.Usage()
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	prog, err := asm.Assemble(string(src), 0)
	if err != nil {
		log.Fatal(err)
	}

	runISS := func() *sim.CPU {
		mem := sim.NewMemory()
		mem.LoadProgram(prog)
		cpu := sim.New(mem, 0)
		cpu.TraceBus = *trace || *engine == "cosim"
		halted, err := cpu.Run(*maxCycles)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("iss: halted=%v retired=%d cycles=%d\n", halted, cpu.Retired, cpu.Cycle)
		return cpu
	}

	runGate := func(budget uint64) *plasma.Machine {
		lib := synth.LibraryByName(*libName)
		if lib == nil {
			log.Fatalf("unknown library %q", *libName)
		}
		cpu, err := plasma.Build(lib)
		if err != nil {
			log.Fatal(err)
		}
		m, halted, err := plasma.RunProgram(cpu, prog, budget, *trace || *engine == "cosim")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("gate: halted=%v cycles=%d pc=%#x\n", halted, m.Cycle, m.PCLane())
		return m
	}

	switch *engine {
	case "iss":
		cpu := runISS()
		if *regs {
			for r := 0; r < 32; r++ {
				fmt.Printf("  %-5s %08x", isa.RegName(uint32(r)), cpu.Reg[r])
				if r%4 == 3 {
					fmt.Println()
				}
			}
			fmt.Printf("  hi    %08x  lo    %08x\n", cpu.Hi, cpu.Lo)
		}
		if *trace {
			for _, e := range cpu.Bus {
				fmt.Println("  ", e)
			}
		}
	case "gate":
		m := runGate(*maxCycles)
		if *trace {
			for _, e := range m.Bus {
				fmt.Println("  ", e)
			}
		}
	case "cosim":
		iss := runISS()
		m := runGate(iss.Cycle + 100)
		if len(iss.Bus) != len(m.Bus) {
			log.Fatalf("bus event counts differ: iss %d vs gate %d", len(iss.Bus), len(m.Bus))
		}
		for i := range iss.Bus {
			a, b := iss.Bus[i], m.Bus[i]
			if a.Addr != b.Addr || a.Data != b.Data || a.Strobe != b.Strobe || a.Write != b.Write {
				log.Fatalf("bus event %d differs:\n  iss:  %v\n  gate: %v", i, a, b)
			}
		}
		fmt.Printf("cosim: %d bus events match\n", len(iss.Bus))
	default:
		log.Fatalf("unknown engine %q", *engine)
	}
}
