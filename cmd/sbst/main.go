// Command sbst drives the software-based self-test flow: classify the
// processor components, generate the self-test program for a phase set,
// and optionally fault-simulate it against the gate-level core.
//
// Usage:
//
//	sbst -phase A|B|C [-lib native-0.35um-A|nand2-0.35um-B]
//	     [-emit] [-listing] [-faultsim] [-sample N] [-seed S]
//	     [-workers W] [-engine event|oblivious] [-lanes W] [-stats]
//	     [-shards N] [-shard-timeout D] [-shard-worker]
//	     [-checkpoint-k K] [-cache DIR] [-cache-max-bytes N]
//	     [-cpuprofile FILE] [-memprofile FILE]
//
// -emit prints the generated assembly source; -listing the assembled
// image; -faultsim runs stuck-at fault simulation and prints the
// per-component coverage report. -workers sets the simulation parallelism
// (0 = GOMAXPROCS), -engine selects the differential event-driven engine
// (default) or the oblivious reference engine, -lanes caps the lane words
// per pass (a power of two up to 64 = 64..4096 faulty machines; 0 =
// cost-model adaptive up to 64), and -stats prints the engine's work
// counters (gate evals/cycle, fast-forwarded and replayed cycles, lane
// drops, pass-width histogram, SIMD/generic kernel dispatch, bus-trace
// and golden-trace compression). -checkpoint-k
// sets the golden-trace checkpoint interval (full flip-flop snapshots
// every K cycles, sparse deltas between; 0 = default). -cache names a
// directory where synthesized netlists and captured golden traces persist
// across runs, and -cache-max-bytes bounds its size (LRU eviction after
// each store; 0 = unbounded). -cpuprofile/-memprofile write pprof
// profiles.
//
// -shards N > 1 grades the fault universe across N worker processes of
// this same binary (bit-identical to -shards 1; see internal/shard):
// each failed worker is retried once, -shard-timeout bounds a worker
// attempt's wall clock, and the netlist + golden trace are shipped once
// through the artifact cache (-cache when set, else a temporary
// directory). -shard-worker runs this process as a one-shot protocol
// worker on stdin/stdout (the coordinator normally triggers the same
// mode via the SBST_SHARD_WORKER environment variable).
//
// -hosts distributes the grading across remote worker hosts instead
// (still bit-identical): a comma-separated list of TCP addresses of
// hosts running `sbst -shard-serve ADDR`, or exec argvs prefixed with
// "exec:" (an ssh wrapper like `exec:ssh h2 sbst -shard-session` turns
// any machine with the binary into a worker), each optionally suffixed
// "=WEIGHT" with the host's relative capacity. The netlist, CPU sidecar
// and golden trace replicate to each worker's cache push-on-miss — each
// content hash ships at most once per worker — and -calibrate derives
// missing weights from a short calibration kernel per host. -shard-serve
// and -shard-session run this process as the worker side (TCP daemon /
// one stdio session), with -cache naming the worker's artifact cache.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gate"
	"repro/internal/plasma"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/synth"
)

func parseEngine(name string) (fault.Engine, error) {
	switch name {
	case "event":
		return fault.EngineEvent, nil
	case "oblivious":
		return fault.EngineOblivious, nil
	}
	return 0, fmt.Errorf("unknown -engine %q (want event or oblivious)", name)
}

func main() {
	shard.ServeIfWorker()
	log.SetFlags(0)
	log.SetPrefix("sbst: ")
	phase := flag.String("phase", "A", "deepest test phase to include: A, B or C")
	libName := flag.String("lib", synth.NativeLib{}.Name(), "technology library")
	variant := flag.String("variant", plasma.VariantBase,
		"core variant under test: "+strings.Join(plasma.VariantNames(), ", "))
	emit := flag.Bool("emit", false, "print the generated assembly source")
	listing := flag.Bool("listing", false, "print the assembled listing")
	faultsim := flag.Bool("faultsim", false, "fault-simulate the program on the gate-level core")
	profile := flag.Bool("profile", false, "print the program's dynamic instruction mix")
	sample := flag.Int("sample", 0, "fault sample size (0 = full universe)")
	seed := flag.Int64("seed", 1, "fault sampling seed")
	workers := flag.Int("workers", 0, "fault simulation goroutines (0 = GOMAXPROCS)")
	engine := flag.String("engine", "event", "fault-simulation engine: event or oblivious")
	lanes := flag.Int("lanes", 0, "lane words per fault pass: a power of two up to 64 (0 = cost-model adaptive)")
	stats := flag.Bool("stats", false, "print fault-simulation work statistics")
	fuse := flag.Bool("fuse", true, "fuse checkpoint-window replay across passes (false = unfused reference path)")
	shards := flag.Int("shards", 1, "fault-grading worker processes (1 = in-process)")
	shardTimeout := flag.Duration("shard-timeout", 0, "per-shard-worker wall-clock budget (0 = default)")
	shardWorker := flag.Bool("shard-worker", false, "serve one shard-grading request on stdin/stdout and exit")
	hosts := flag.String("hosts", "", "distribute grading across remote hosts: addr[=weight],exec:argv[=weight],...")
	calibrate := flag.Bool("calibrate", false, "derive missing -hosts weights from a per-host calibration kernel")
	shardServe := flag.String("shard-serve", "", "serve distributed-grading sessions on this TCP address")
	shardSession := flag.Bool("shard-session", false, "serve one distributed-grading session on stdin/stdout and exit")
	checkpointK := flag.Int("checkpoint-k", 0, "golden-trace checkpoint interval in cycles (0 = default)")
	cacheDir := flag.String("cache", "", "directory for the netlist/golden artifact cache (empty = disabled)")
	cacheMax := flag.Int64("cache-max-bytes", 0, "cache size bound with LRU eviction (0 = unbounded)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *shardWorker {
		if err := shard.RunWorker(os.Stdin, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *shardSession {
		if err := shard.ServeSessionStdio(*cacheDir); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *shardServe != "" {
		if err := shard.ServeHostTCP(*shardServe, *cacheDir); err != nil {
			log.Fatal(err)
		}
		return
	}

	eng, err := parseEngine(*engine)
	if err != nil {
		log.Fatal(err)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	var disk *cache.Cache
	if *cacheDir != "" {
		disk, err = cache.Open(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		disk.SetMaxBytes(*cacheMax)
	}

	var maxPhase core.PhaseID
	switch *phase {
	case "A", "a":
		maxPhase = core.PhaseA
	case "B", "b":
		maxPhase = core.PhaseB
	case "C", "c":
		maxPhase = core.PhaseC
	default:
		log.Fatalf("unknown phase %q (want A, B or C)", *phase)
	}

	lib := synth.LibraryByName(*libName)
	if lib == nil {
		log.Fatalf("unknown library %q", *libName)
	}

	if plasma.VariantByName(*variant) == nil {
		log.Fatalf("unknown variant %q (want one of %s)", *variant, strings.Join(plasma.VariantNames(), ", "))
	}
	cpu, err := disk.BuildVariantCPU(*variant, lib)
	if err != nil {
		log.Fatal(err)
	}
	comps := core.ClassifyNetlist(cpu.Netlist)

	fmt.Println("component classification and test priority:")
	fmt.Printf("  %-8s %-12s %10s  %s\n", "Name", "Class", "Gates", "Phase")
	for _, c := range core.Prioritize(comps) {
		fmt.Printf("  %-8s %-12s %10.0f  %s\n", c.Name, c.Class, c.GateCount, c.Class.Phase())
	}

	st, err := core.GenerateSelfTest(comps, maxPhase)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nself-test program (phases up to %s):\n", maxPhase)
	fmt.Printf("  routines: ")
	for i, r := range st.Routines {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(r.Component)
	}
	fmt.Printf("\n  size: %d words\n  execution: %d clock cycles\n  responses: %d words\n",
		st.Words, st.Cycles, st.RespWords)

	if *profile {
		prof, err := sim.ProfileExecution(st.Program, 2_000_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ninstruction mix:\n%s", prof.String())
	}

	if *emit {
		fmt.Printf("\n---- assembly source ----\n%s\n", st.Source)
	}
	if *listing {
		fmt.Printf("\n---- listing ----\n%s\n", st.Program.Listing())
	}

	if *faultsim {
		k := *checkpointK
		if k <= 0 {
			k = plasma.DefaultCheckpointK
		}
		cycles := st.GateCycles()
		if cpu.Variant != plasma.VariantBase {
			// Non-base cores retire the program in a different number of
			// cycles than the ISS measurement; use the cached gate-level
			// halt measurement instead of the base-core shortcut.
			halt, err := disk.HaltCycles(cpu, st.Program, st.Cycles*4+4096)
			if err != nil {
				log.Fatal(err)
			}
			cycles = int(halt) + 16
		}
		golden, err := disk.CaptureGoldenK(cpu, st.Program, cycles, k)
		if err != nil {
			log.Fatal(err)
		}
		faults := fault.Universe(cpu.Netlist)
		fmt.Printf("\nfault universe: %d collapsed / %d total stuck-at faults\n",
			len(faults), fault.TotalEquiv(faults))
		var res *fault.Result
		var shardStats *shard.Stats
		var distStats *shard.DistStats
		switch {
		case *hosts != "":
			specs, err2 := shard.ParseHosts(*hosts)
			if err2 != nil {
				log.Fatal(err2)
			}
			res, distStats, err = shard.GradeDist(cpu, golden, faults, shard.DistOptions{
				Hosts:     specs,
				Timeout:   *shardTimeout,
				Engine:    eng,
				LaneWords: *lanes,
				Workers:   *workers,
				Sample:    *sample,
				Seed:      *seed,
				Cache:     disk,
				Calibrate: *calibrate,
			})
		case *shards > 1:
			res, shardStats, err = shard.Grade(cpu, golden, faults, shard.Options{
				Shards:    *shards,
				Timeout:   *shardTimeout,
				Engine:    eng,
				LaneWords: *lanes,
				Workers:   *workers,
				Sample:    *sample,
				Seed:      *seed,
				Cache:     disk,
			})
		default:
			opt := fault.Options{Sample: *sample, Seed: *seed, Workers: *workers, Engine: eng, LaneWords: *lanes, NoFusion: !*fuse}
			res, err = fault.Simulate(cpu, golden, faults, opt)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nfault coverage:\n%s", fault.NewReport(cpu.Netlist, res).String())
		if *stats {
			fmt.Printf("\nsimulation statistics (engine=%s, simd=%s):\n%s\n",
				*engine, gate.SIMDKernelName(), res.Stats.String())
			if shardStats != nil {
				fmt.Printf("\nsharding statistics (%d shards requested):\n%s\n", *shards, shardStats.String())
			}
			if distStats != nil {
				fmt.Printf("\ndistributed grading statistics:\n%s\n", distStats.String())
			}
		}

		lat := fault.NewLatencyStats(res)
		fmt.Printf("\ndetection latency:\n%s", lat.String())

		dict := fault.BuildDictionary(res)
		fmt.Printf("\ndiagnostic resolution: %s\n", dict.Resolution())
	}
}
