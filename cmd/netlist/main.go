// Command netlist synthesizes the Plasma/MIPS core (or a standalone
// component) with a chosen technology library and prints statistics,
// exports the gate-level netlist in the text format of internal/gate, or
// dumps a VCD waveform of a program execution.
//
// Usage:
//
//	netlist [-lib <name>] [-component alu|bsh|regfile|muldiv] [-o out.net]
//	netlist -vcd out.vcd -run prog.s [-cycles N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/asm"
	"repro/internal/gate"
	"repro/internal/plasma"
	"repro/internal/sim"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netlist: ")
	libName := flag.String("lib", synth.NativeLib{}.Name(), "technology library")
	component := flag.String("component", "", "standalone component instead of the full core: alu, bsh, regfile or muldiv")
	out := flag.String("o", "", "export the netlist to this file")
	vcdPath := flag.String("vcd", "", "dump a VCD of the bus while running -run")
	runSrc := flag.String("run", "", "assembly program to execute for -vcd")
	cycles := flag.Int("cycles", 2000, "cycles to run for -vcd")
	flag.Parse()

	lib := synth.LibraryByName(*libName)
	if lib == nil {
		log.Fatalf("unknown library %q", *libName)
	}

	n, cpu, err := build(lib, *component)
	if err != nil {
		log.Fatal(err)
	}
	st := n.Stats()
	perComp, total := n.GateCount()
	fmt.Printf("netlist %s (%s): %.0f NAND2 equivalents, %d cells, %d DFFs, depth %d\n",
		n.Name, lib.Name(), total, st.Signals, st.DFFs, st.Levels)
	for i, name := range n.CompNames {
		if perComp[i] > 0 {
			fmt.Printf("  %-8s %10.0f\n", name, perComp[i])
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := gate.WriteNetlist(f, n); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("exported to %s\n", *out)
	}

	if *vcdPath != "" {
		if cpu == nil {
			log.Fatal("-vcd requires the full core (no -component)")
		}
		if *runSrc == "" {
			log.Fatal("-vcd requires -run prog.s")
		}
		if err := dumpVCD(cpu, *runSrc, *vcdPath, *cycles); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d cycles)\n", *vcdPath, *cycles)
	}
}

func build(lib synth.Library, component string) (*gate.Netlist, *plasma.CPU, error) {
	if component == "" {
		cpu, err := plasma.Build(lib)
		if err != nil {
			return nil, nil, err
		}
		return cpu.Netlist, cpu, nil
	}
	c := synth.NewCtx(component, lib)
	switch component {
	case "alu":
		a := c.B.InputBus("a", 32)
		d := c.B.InputBus("b", 32)
		op := c.B.InputBus("op", 3)
		c.B.BeginComponent("ALU")
		c.B.OutputBus("y", c.ALU(synth.Bus(a), synth.Bus(d), synth.Bus(op)))
	case "bsh":
		data := c.B.InputBus("data", 32)
		amt := c.B.InputBus("amt", 5)
		right := c.B.Input("right")
		arith := c.B.Input("arith")
		c.B.BeginComponent("BSH")
		c.B.OutputBus("y", c.BarrelShifter(synth.Bus(data), synth.Bus(amt), right, arith))
	case "regfile":
		w := c.B.InputBus("waddr", 5)
		wd := c.B.InputBus("wdata", 32)
		we := c.B.Input("wen")
		r1 := c.B.InputBus("ra1", 5)
		r2 := c.B.InputBus("ra2", 5)
		c.B.BeginComponent("RegF")
		rd1, rd2 := c.RegFile(synth.Bus(w), synth.Bus(wd), we, synth.Bus(r1), synth.Bus(r2))
		c.B.OutputBus("rd1", rd1)
		c.B.OutputBus("rd2", rd2)
	case "muldiv":
		a := c.B.InputBus("a", 32)
		d := c.B.InputBus("b", 32)
		start := c.B.Input("start")
		isDiv := c.B.Input("isdiv")
		isSigned := c.B.Input("issigned")
		c.B.BeginComponent("MulD")
		u := c.MulDiv(synth.Bus(a), synth.Bus(d), start, isDiv, isSigned, c.B.Const0(), c.B.Const0())
		c.B.OutputBus("hi", u.Hi)
		c.B.OutputBus("lo", u.Lo)
		c.B.Output("busy", u.Busy)
	default:
		return nil, nil, fmt.Errorf("unknown component %q", component)
	}
	if err := c.B.N.Validate(); err != nil {
		return nil, nil, err
	}
	return c.B.N, nil, nil
}

func dumpVCD(cpu *plasma.CPU, srcPath, vcdPath string, cycles int) error {
	src, err := os.ReadFile(srcPath)
	if err != nil {
		return err
	}
	prog, err := asm.Assemble(string(src), 0)
	if err != nil {
		return err
	}
	mem := sim.NewMemory()
	mem.LoadProgram(prog)
	m, err := plasma.NewMachine(cpu, mem)
	if err != nil {
		return err
	}
	f, err := os.Create(vcdPath)
	if err != nil {
		return err
	}
	defer f.Close()
	n := cpu.Netlist
	buses := map[string][]gate.Sig{
		"mem_addr":       n.OutputBus(plasma.PortAddr),
		"mem_wdata":      n.OutputBus(plasma.PortWData),
		"mem_wstrobe":    n.OutputBus(plasma.PortWStrobe),
		"mem_dataaccess": n.OutputBus(plasma.PortDataAccess),
		"pc":             cpu.PC,
		"ir":             cpu.IR,
		"hi":             cpu.Hi,
		"lo":             cpu.Lo,
	}
	v, err := gate.NewVCDWriter(f, m.Sim, buses)
	if err != nil {
		return err
	}
	for i := 0; i < cycles; i++ {
		m.Step()
		v.Sample()
	}
	return v.Err()
}
