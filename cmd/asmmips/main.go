// Command asmmips assembles MIPS I assembly into a memory image, or
// disassembles an image back to mnemonics.
//
// Usage:
//
//	asmmips [-org ADDR] [-o out.hex] file.s      assemble; print or write words
//	asmmips -d [-org ADDR] file.hex              disassemble hex words
//
// The hex format is one 8-digit word per line, matching -o's output.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("asmmips: ")
	org := flag.Uint64("org", 0, "image origin byte address")
	out := flag.String("o", "", "write assembled words to file (hex, one per line)")
	dis := flag.Bool("d", false, "disassemble a hex word file instead")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: asmmips [flags] file")
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}

	if *dis {
		addr := uint32(*org)
		for ln, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			w, err := strconv.ParseUint(line, 16, 32)
			if err != nil {
				log.Fatalf("line %d: bad hex word %q", ln+1, line)
			}
			fmt.Printf("%08x: %08x  %s\n", addr, uint32(w), isa.Disassemble(uint32(w), addr))
			addr += 4
		}
		return
	}

	prog, err := asm.Assemble(string(data), uint32(*org))
	if err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		bw := bufio.NewWriter(f)
		for _, w := range prog.Words {
			fmt.Fprintf(bw, "%08x\n", w)
		}
		if err := bw.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d words to %s\n", len(prog.Words), *out)
		return
	}
	fmt.Print(prog.Listing())
}
