GO ?= go

.PHONY: build generate test check bench-faultsim benchguard

build:
	$(GO) build ./...

# Regenerate the gate-evaluation kernel matrix (Go + AVX2/AVX-512 +
# NEON asm) from internal/gate/gen. check.sh fails when the committed
# output is stale.
generate:
	$(GO) generate ./internal/gate

test:
	$(GO) test ./...

# The tier-1 gate: build + vet + tests + a short -race pass of the
# concurrency-bearing packages (fault simulation workers, event engine).
check:
	./scripts/check.sh

# The headline fault-grading benchmark; compare against BENCH_faultsim.json.
bench-faultsim:
	$(GO) test -bench BenchmarkTable5FaultCoverage -benchtime 1x -run '^$$' -timeout 3600s .

# Fail if the headline benchmark regresses >15% vs the recorded baseline.
benchguard:
	./scripts/benchguard.sh
