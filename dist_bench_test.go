// Distributed-grading acceptance test and benchmark at the repository
// root: both drive the real Table 5 workload through shard.GradeDist
// against TCP worker-host subprocesses of this test binary (TestMain's
// ServeIfWorker picks up the SBST_SHARD_HOSTD marker), the same topology
// a multi-machine run uses, just over loopback.
package repro

import (
	"bufio"
	"os"
	"os/exec"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/plasma"
	"repro/internal/shard"
)

// startDistWorkers spawns n worker-host subprocesses of this test binary,
// each a TCP session daemon with its own artifact cache directory, and
// returns their HostSpecs. Workers are killed at test cleanup; their
// caches live for the whole test/benchmark, so re-grades measure the
// warm ship-once path.
func startDistWorkers(tb testing.TB, n int) []shard.HostSpec {
	tb.Helper()
	exe, err := os.Executable()
	if err != nil {
		tb.Fatal(err)
	}
	hosts := make([]shard.HostSpec, 0, n)
	for i := 0; i < n; i++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			shard.EnvHostAddr+"=127.0.0.1:0",
			shard.EnvCacheDir+"="+tb.TempDir())
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			tb.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			tb.Fatal(err)
		}
		tb.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		sc := bufio.NewScanner(stdout)
		var addr string
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "shard host listening on "); ok {
				addr = a
				break
			}
		}
		if addr == "" {
			tb.Fatalf("worker %d exited before announcing its address", i)
		}
		hosts = append(hosts, shard.HostSpec{Addr: addr})
	}
	return hosts
}

// TestTable5DistributedEquivalence is the multi-host acceptance criterion
// on the real workload: grading the Table 5 Phase A program across two
// TCP worker hosts (separate processes, loopback sockets, content-hash
// artifact replication) must reproduce the in-process run's coverage,
// DetectedAt and SignatureGroups bit for bit — and a re-grade against the
// now-warm worker caches must ship zero artifact bytes.
func TestTable5DistributedEquivalence(t *testing.T) {
	e := benchEnv(t)
	g, err := e.Golden(core.PhaseA)
	if err != nil {
		t.Fatal(err)
	}
	opt := benchOpt
	if testing.Short() {
		opt.Sample = 512
	}
	want, err := fault.Simulate(e.CPU, g, e.Faults(), opt)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hosts := startDistWorkers(t, 2)
	dopt := shard.DistOptions{
		Hosts:  hosts,
		Sample: opt.Sample,
		Seed:   opt.Seed,
		Cache:  disk,
	}
	got, stats, err := shard.GradeDist(e.CPU, g, e.Faults(), dopt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != want.Cycles || len(got.Faults) != len(want.Faults) {
		t.Fatalf("shape mismatch: %d faults/%d cycles vs %d/%d",
			len(got.Faults), got.Cycles, len(want.Faults), want.Cycles)
	}
	for i := range want.Faults {
		if got.DetectedAt[i] != want.DetectedAt[i] || got.SignatureGroups[i] != want.SignatureGroups[i] {
			t.Fatalf("fault %d: distributed (%d, %d) vs in-process (%d, %d)",
				i, got.DetectedAt[i], got.SignatureGroups[i], want.DetectedAt[i], want.SignatureGroups[i])
		}
	}
	if got.Coverage() != want.Coverage() || got.WeightedCoverage() != want.WeightedCoverage() {
		t.Fatalf("coverage %v/%v, want %v/%v",
			got.Coverage(), got.WeightedCoverage(), want.Coverage(), want.WeightedCoverage())
	}
	for _, h := range stats.Hosts {
		if h.Err != "" {
			t.Fatalf("host %s failed: %s", h.Name, h.Err)
		}
	}
	if stats.BytesShipped == 0 {
		t.Fatal("cold run shipped no artifact bytes")
	}

	// Warm re-grade, ship-once assertion. A host whose cold-run SimNs is
	// non-zero completed a successful attempt, which means its WANT list
	// was fully served — its cache holds every artifact. (A host that only
	// ran a straggler duplicate may have had its push canceled mid-stream
	// when the primary won, so its cache can legitimately still be cold;
	// re-grading against the provably-warm host alone makes the zero-byte
	// assertion deterministic.)
	warm := -1
	for i, h := range stats.Hosts {
		if h.SimNs > 0 {
			warm = i
			break
		}
	}
	if warm < 0 {
		t.Fatalf("no host recorded a successful attempt: %+v", stats.Hosts)
	}
	wopt := dopt
	wopt.Hosts = hosts[warm : warm+1]
	got2, stats2, err := shard.GradeDist(e.CPU, g, e.Faults(), wopt)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.BytesShipped != 0 {
		t.Fatalf("warm re-grade shipped %d B, want 0 (ship-once violated)", stats2.BytesShipped)
	}
	for i := range want.Faults {
		if got2.DetectedAt[i] != want.DetectedAt[i] || got2.SignatureGroups[i] != want.SignatureGroups[i] {
			t.Fatalf("warm re-grade diverged at fault %d", i)
		}
	}
}

// BenchmarkDistributedGrade is BenchmarkTable5FaultCoverage with every
// grading call distributed across 2 TCP worker-host subprocesses through
// shard.GradeDist. Worker caches and the coordinator cache persist across
// iterations, so iterations after the first measure the warm path
// (HAVE/WANT handshake resolves to nothing to ship). Results are
// bit-identical to the unsharded bench; on this 1-core box the two
// workers time-slice one CPU, so the ratio against
// BenchmarkTable5FaultCoverage is pure distribution overhead — the
// ship-ms/merge-ms/redispatch metrics break that overhead down.
func BenchmarkDistributedGrade(b *testing.B) {
	e := benchEnv(b)
	hosts := startDistWorkers(b, 2)
	disk, err := cache.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	var shipBytes, shipNs, mergeNs, redispatched int64
	e.Grader = func(cpu *plasma.CPU, golden *plasma.Golden, faults []fault.Fault, opt fault.Options) (*fault.Result, error) {
		res, dstats, err := shard.GradeDist(cpu, golden, faults, shard.DistOptions{
			Hosts:     hosts,
			Engine:    opt.Engine,
			LaneWords: opt.LaneWords,
			Workers:   opt.Workers,
			Sample:    opt.Sample,
			Seed:      opt.Seed,
			Cache:     disk,
		})
		if err != nil {
			return nil, err
		}
		shipBytes += dstats.BytesShipped
		shipNs += dstats.ShipNs
		mergeNs += dstats.MergeNs
		redispatched += int64(dstats.Redispatched)
		return res, nil
	}
	defer func() { e.Grader = nil }()
	b.ResetTimer()
	var d *bench.Table5Data
	for i := 0; i < b.N; i++ {
		var err error
		d, _, err = bench.Table5(e, benchOpt, false)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fcOf(d.PhaseA), "phaseA-FC%")
	b.ReportMetric(fcOf(d.PhaseAB), "phaseAB-FC%")
	b.ReportMetric(float64(shipBytes)/float64(b.N), "ship-B/op")
	b.ReportMetric(float64(shipNs)/1e6/float64(b.N), "ship-ms/op")
	b.ReportMetric(float64(mergeNs)/1e6/float64(b.N), "merge-ms/op")
	b.ReportMetric(float64(redispatched)/float64(b.N), "redispatch/op")
}
