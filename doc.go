// Package repro is a complete Go reproduction of Kranitis et al.,
// "Low-Cost Software-Based Self-Testing of RISC Processor Cores" (DATE
// 2003): the SBST methodology (internal/core), the Plasma/MIPS processor
// it is evaluated on — both as a golden instruction-set simulator
// (internal/sim) and as a synthesized gate-level core (internal/plasma,
// internal/synth, internal/gate) — a stuck-at fault-simulation engine
// (internal/fault), the comparison baselines (internal/baseline,
// internal/atpg), the tester cost model (internal/tester), and the
// experiment harness regenerating every table of the paper
// (internal/bench, cmd/report).
//
// See README.md for usage, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The package itself holds only the benchmark suite (bench_test.go); the
// library lives under internal/ and the tools under cmd/.
package repro
