#!/bin/sh
# benchguard.sh — regression guard for the headline fault-grading
# benchmark. Runs BenchmarkTable5FaultCoverage once and fails if it comes
# in more than 15% over the baseline_ns_per_op recorded in
# BENCH_faultsim.json. Run from the repository root:
#
#   ./scripts/benchguard.sh
#
# Update the baseline in BENCH_faultsim.json when a change legitimately
# shifts the benchmark (and record the history entry explaining why).
set -eu

baseline=$(grep -o '"baseline_ns_per_op": *[0-9]*' BENCH_faultsim.json | grep -o '[0-9]*$')
if [ -z "$baseline" ]; then
    echo "benchguard: no baseline_ns_per_op in BENCH_faultsim.json" >&2
    exit 1
fi

out=$(go test -bench BenchmarkTable5FaultCoverage -benchtime 1x -run '^$' -timeout 3600s .)
echo "$out"

ns=$(echo "$out" | awk '/^BenchmarkTable5FaultCoverage/ {print $3; exit}')
if [ -z "$ns" ]; then
    echo "benchguard: benchmark produced no result" >&2
    exit 1
fi

limit=$((baseline * 115 / 100))
pct=$((ns * 100 / baseline))
if [ "$ns" -gt "$limit" ]; then
    echo "benchguard: FAIL — ${ns} ns/op is ${pct}% of the ${baseline} ns/op baseline (limit 115%)" >&2
    exit 1
fi
echo "benchguard: OK — ${ns} ns/op is ${pct}% of the ${baseline} ns/op baseline"
