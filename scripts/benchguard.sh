#!/bin/sh
# benchguard.sh — regression guard for the headline fault-grading
# benchmarks. Runs BenchmarkTable5FaultCoverage and its 4-worker sharded
# variant BenchmarkTable5FaultCoverageSharded once each and fails if
# either comes in more than 15% over its baseline_ns_per_op, or allocates
# more than 15% over its baseline_bytes_per_op, recorded in
# BENCH_faultsim.json. Run from the repository root:
#
#   ./scripts/benchguard.sh
#
# Update the baselines in BENCH_faultsim.json when a change legitimately
# shifts a benchmark (and record the history entry explaining why).
set -eu

json_int() {
    grep -o "\"$1\": *[0-9]*" BENCH_faultsim.json | grep -o '[0-9]*$'
}

baseline=$(json_int baseline_ns_per_op)
bytebase=$(json_int baseline_bytes_per_op)
sharded_baseline=$(json_int sharded_baseline_ns_per_op)
sharded_bytebase=$(json_int sharded_baseline_bytes_per_op)
for v in "$baseline" "$bytebase" "$sharded_baseline" "$sharded_bytebase"; do
    if [ -z "$v" ]; then
        echo "benchguard: missing a baseline in BENCH_faultsim.json" >&2
        exit 1
    fi
done

out=$(go test -bench 'BenchmarkTable5FaultCoverage$|BenchmarkTable5FaultCoverageSharded$' \
    -benchtime 1x -benchmem -run '^$' -timeout 3600s .)
echo "$out"

fail=0

# guard NAME NS BYTES NS_BASELINE BYTES_BASELINE
guard() {
    name=$1 ns=$2 bytes=$3 nsbase=$4 bbase=$5
    if [ -z "$ns" ] || [ -z "$bytes" ]; then
        echo "benchguard: $name produced no result (is -benchmem set?)" >&2
        fail=1
        return
    fi
    limit=$((nsbase * 115 / 100))
    pct=$((ns * 100 / nsbase))
    if [ "$ns" -gt "$limit" ]; then
        echo "benchguard: FAIL — $name ${ns} ns/op is ${pct}% of the ${nsbase} ns/op baseline (limit 115%)" >&2
        fail=1
    else
        echo "benchguard: OK — $name ${ns} ns/op is ${pct}% of the ${nsbase} ns/op baseline"
    fi
    blimit=$((bbase * 115 / 100))
    bpct=$((bytes * 100 / bbase))
    if [ "$bytes" -gt "$blimit" ]; then
        echo "benchguard: FAIL — $name ${bytes} B/op is ${bpct}% of the ${bbase} B/op baseline (limit 115%)" >&2
        fail=1
    else
        echo "benchguard: OK — $name ${bytes} B/op is ${bpct}% of the ${bbase} B/op baseline"
    fi
}

# Benchmark rows print as NAME or NAME-GOMAXPROCS; match both, exactly.
bench_ns() {
    echo "$out" | awk -v name="$1" '$1 == name || index($1, name "-") == 1 {print $3; exit}'
}
bench_bytes() {
    echo "$out" | awk -v name="$1" '$1 == name || index($1, name "-") == 1 {for (i = 4; i < NF; i++) if ($(i+1) == "B/op") {print $i; exit}}'
}

guard BenchmarkTable5FaultCoverage \
    "$(bench_ns BenchmarkTable5FaultCoverage)" \
    "$(bench_bytes BenchmarkTable5FaultCoverage)" \
    "$baseline" "$bytebase"
guard BenchmarkTable5FaultCoverageSharded \
    "$(bench_ns BenchmarkTable5FaultCoverageSharded)" \
    "$(bench_bytes BenchmarkTable5FaultCoverageSharded)" \
    "$sharded_baseline" "$sharded_bytebase"

exit $fail
