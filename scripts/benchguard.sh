#!/bin/sh
# benchguard.sh — regression guard for the headline fault-grading
# benchmark. Runs BenchmarkTable5FaultCoverage once and fails if it comes
# in more than 15% over the baseline_ns_per_op, or allocates more than
# 15% over the baseline_bytes_per_op, recorded in BENCH_faultsim.json.
# Run from the repository root:
#
#   ./scripts/benchguard.sh
#
# Update the baselines in BENCH_faultsim.json when a change legitimately
# shifts the benchmark (and record the history entry explaining why).
set -eu

baseline=$(grep -o '"baseline_ns_per_op": *[0-9]*' BENCH_faultsim.json | grep -o '[0-9]*$')
if [ -z "$baseline" ]; then
    echo "benchguard: no baseline_ns_per_op in BENCH_faultsim.json" >&2
    exit 1
fi
bytebase=$(grep -o '"baseline_bytes_per_op": *[0-9]*' BENCH_faultsim.json | grep -o '[0-9]*$')
if [ -z "$bytebase" ]; then
    echo "benchguard: no baseline_bytes_per_op in BENCH_faultsim.json" >&2
    exit 1
fi

out=$(go test -bench BenchmarkTable5FaultCoverage -benchtime 1x -benchmem -run '^$' -timeout 3600s .)
echo "$out"

ns=$(echo "$out" | awk '/^BenchmarkTable5FaultCoverage/ {print $3; exit}')
if [ -z "$ns" ]; then
    echo "benchguard: benchmark produced no result" >&2
    exit 1
fi
bytes=$(echo "$out" | awk '/^BenchmarkTable5FaultCoverage/ {for (i = 4; i < NF; i++) if ($(i+1) == "B/op") {print $i; exit}}')
if [ -z "$bytes" ]; then
    echo "benchguard: benchmark reported no B/op (is -benchmem set?)" >&2
    exit 1
fi

fail=0

limit=$((baseline * 115 / 100))
pct=$((ns * 100 / baseline))
if [ "$ns" -gt "$limit" ]; then
    echo "benchguard: FAIL — ${ns} ns/op is ${pct}% of the ${baseline} ns/op baseline (limit 115%)" >&2
    fail=1
else
    echo "benchguard: OK — ${ns} ns/op is ${pct}% of the ${baseline} ns/op baseline"
fi

blimit=$((bytebase * 115 / 100))
bpct=$((bytes * 100 / bytebase))
if [ "$bytes" -gt "$blimit" ]; then
    echo "benchguard: FAIL — ${bytes} B/op is ${bpct}% of the ${bytebase} B/op baseline (limit 115%)" >&2
    fail=1
else
    echo "benchguard: OK — ${bytes} B/op is ${bpct}% of the ${bytebase} B/op baseline"
fi

exit $fail
