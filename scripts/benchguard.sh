#!/bin/sh
# benchguard.sh — regression guard for the headline fault-grading
# benchmarks. Runs BenchmarkTable5FaultCoverage, its 4-worker sharded
# variant BenchmarkTable5FaultCoverageSharded, the 2-TCP-worker
# distributed variant BenchmarkDistributedGrade, the replay-fusion
# microbench BenchmarkFusedReplay/fused, and the grading-service pair
# (BenchmarkServeThroughput warm/cold, BenchmarkServeGrade/inproc)
# three times each (-count 3, guarding on the per-benchmark median so
# a single descheduled run cannot fail — or pass — a guard on its own)
# and fails if any comes in more than 15% over its baseline ns/op, or
# allocates more than 15% over its baseline B/op, recorded in
# BENCH_faultsim.json. The service rows add two extra guards: the
# steady-state request path must stay allocation-free (a 0 B/op
# baseline, so any allocation fails), and warm throughput must hold
# the recorded multiple over the cold-start-per-request baseline.
# Run from the repository root:
#
#   ./scripts/benchguard.sh
#
# A benchmark with no baseline row in BENCH_faultsim.json is skipped
# with a warning, not failed: record a row to arm the guard for it.
# Update the baselines when a change legitimately shifts a benchmark
# (and record the history entry explaining why).
set -eu

json_int() {
    grep -o "\"$1\": *[0-9]*" BENCH_faultsim.json | grep -o '[0-9]*$' | head -1
}

out=$(go test -bench 'BenchmarkTable5FaultCoverage$|BenchmarkTable5FaultCoverageSharded$|BenchmarkDistributedGrade$|BenchmarkFusedReplay/fused|BenchmarkServeThroughput' \
    -benchtime 1x -count 3 -benchmem -run '^$' -timeout 3600s .)
echo "$out"

# The steady-state request-path alloc gate lives with its package; the
# throughput pair above runs 1x, but the alloc measurement wants a few
# iterations so one-time warm-up noise cannot hide in (or inflate) it.
serveout=$(go test -bench 'BenchmarkServeGrade/inproc' \
    -benchtime 20x -count 3 -benchmem -run '^$' -timeout 3600s ./internal/serve)
echo "$serveout"
out="$out
$serveout"

fail=0

# Benchmark rows print as NAME or NAME-GOMAXPROCS; match both, exactly.
# -count 3 emits one row per run, so the helpers collect every matching
# row and reduce to the median (middle of the sorted values; with fewer
# rows — a sub-bench the 3x count does not multiply — the middle of
# what there is).
median() {
    sort -n | awk '{v[NR] = $1} END {if (NR) print v[int((NR + 1) / 2)]}'
}
bench_ns() {
    echo "$out" | awk -v name="$1" '$1 == name || index($1, name "-") == 1 {print $3}' | median
}
bench_bytes() {
    echo "$out" | awk -v name="$1" '$1 == name || index($1, name "-") == 1 {for (i = 4; i < NF; i++) if ($(i+1) == "B/op") {print $i}}' | median
}

# guard NAME NS_BASELINE_KEY BYTES_BASELINE_KEY — looks up the
# benchmark's own baseline row; a missing or empty row skips the guard
# with a warning instead of failing the build.
guard() {
    name=$1
    nsbase=$(json_int "$2" || true)
    bbase=$(json_int "$3" || true)
    if [ -z "$nsbase" ] || [ -z "$bbase" ]; then
        echo "benchguard: WARNING — no baseline row for $name in BENCH_faultsim.json ($2/$3); skipping this guard. Record one to arm it." >&2
        return
    fi
    ns=$(bench_ns "$name")
    bytes=$(bench_bytes "$name")
    if [ -z "$ns" ] || [ -z "$bytes" ]; then
        echo "benchguard: $name produced no result (is -benchmem set? did the benchmark run?)" >&2
        fail=1
        return
    fi
    limit=$((nsbase * 115 / 100))
    pct=$((ns * 100 / nsbase))
    if [ "$ns" -gt "$limit" ]; then
        echo "benchguard: FAIL — $name ${ns} ns/op is ${pct}% of the ${nsbase} ns/op baseline (limit 115%)" >&2
        fail=1
    else
        echo "benchguard: OK — $name ${ns} ns/op is ${pct}% of the ${nsbase} ns/op baseline"
    fi
    if [ "$bbase" -eq 0 ]; then
        # A zero baseline is the allocation-free contract: any B/op fails.
        if [ "$bytes" -gt 0 ]; then
            echo "benchguard: FAIL — $name allocates ${bytes} B/op against an allocation-free (0 B/op) baseline" >&2
            fail=1
        else
            echo "benchguard: OK — $name holds the allocation-free (0 B/op) baseline"
        fi
        return
    fi
    blimit=$((bbase * 115 / 100))
    bpct=$((bytes * 100 / bbase))
    if [ "$bytes" -gt "$blimit" ]; then
        echo "benchguard: FAIL — $name ${bytes} B/op is ${bpct}% of the ${bbase} B/op baseline (limit 115%)" >&2
        fail=1
    else
        echo "benchguard: OK — $name ${bytes} B/op is ${bpct}% of the ${bbase} B/op baseline"
    fi
}

guard BenchmarkTable5FaultCoverage baseline_ns_per_op baseline_bytes_per_op
guard BenchmarkTable5FaultCoverageSharded sharded_baseline_ns_per_op sharded_baseline_bytes_per_op
guard BenchmarkDistributedGrade dist_baseline_ns_per_op dist_baseline_bytes_per_op
guard BenchmarkFusedReplay/fused fused_baseline_ns_per_op fused_baseline_bytes_per_op
guard BenchmarkServeThroughput/warm serve_warm_baseline_ns_per_op serve_warm_baseline_bytes_per_op
guard BenchmarkServeGrade/inproc serve_grade_baseline_ns_per_op serve_grade_baseline_bytes_per_op

# Throughput-ratio guard: the warm service must hold its recorded
# multiple over the cold-start-per-request baseline (both sub-benches
# grade the same fragment, so ns/op compare directly).
minx=$(json_int serve_min_speedup_x || true)
if [ -z "$minx" ]; then
    echo "benchguard: WARNING — no serve_min_speedup_x row in BENCH_faultsim.json; skipping the warm/cold ratio guard." >&2
else
    warm_ns=$(bench_ns "BenchmarkServeThroughput/warm")
    cold_ns=$(bench_ns "BenchmarkServeThroughput/cold")
    if [ -z "$warm_ns" ] || [ -z "$cold_ns" ]; then
        echo "benchguard: BenchmarkServeThroughput produced no warm/cold pair" >&2
        fail=1
    elif [ "$cold_ns" -lt $((warm_ns * minx)) ]; then
        echo "benchguard: FAIL — warm service is only $((cold_ns / warm_ns))x the cold-start baseline (${warm_ns} vs ${cold_ns} ns/op), need >=${minx}x" >&2
        fail=1
    else
        echo "benchguard: OK — warm service is $((cold_ns / warm_ns))x the cold-start baseline (need >=${minx}x)"
    fi
fi

exit $fail
