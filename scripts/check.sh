#!/bin/sh
# check.sh — the repo's tier-1 verification gate plus a short race pass
# of the concurrency-bearing packages. Run from the repository root:
#
#   ./scripts/check.sh          # build, vet, full tests, race pass
#   ./scripts/check.sh -short   # same, with -short tests
set -eu

short=""
if [ "${1:-}" = "-short" ]; then
    short="-short"
fi

echo "== go generate ./internal/gate (generated kernels must match the generator)"
go generate ./internal/gate
git diff --exit-code -- \
    internal/gate/kernels_generated.go \
    internal/gate/kernels_amd64.go \
    internal/gate/kernels_amd64.s \
    internal/gate/kernels_arm64.go \
    internal/gate/kernels_arm64.s || {
    echo "check: generated kernel files are stale; rerun 'make generate' and commit the output" >&2
    exit 1
}

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test $short ./..."
go test $short ./...

echo "== go test -race -short ./internal/gate ./internal/fault ./internal/shard ./internal/serve ./internal/cache"
go test -race -short ./internal/gate ./internal/fault ./internal/shard ./internal/serve ./internal/cache

echo "== go test -run FuzzVariantVsISS -count=1 ./internal/plasma (differential fuzz seed corpus)"
go test -run FuzzVariantVsISS -count=1 ./internal/plasma

echo "== go test -tags purego $short ./internal/gate ./internal/fault (generic kernels)"
go test -tags purego $short ./internal/gate ./internal/fault

echo "== GOARCH=arm64 go build ./... (cross-arch smoke)"
GOARCH=arm64 go build ./...

echo "check: OK"
