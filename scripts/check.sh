#!/bin/sh
# check.sh — the repo's tier-1 verification gate plus a short race pass
# of the concurrency-bearing packages. Run from the repository root:
#
#   ./scripts/check.sh          # build, vet, full tests, race pass
#   ./scripts/check.sh -short   # same, with -short tests
set -eu

short=""
if [ "${1:-}" = "-short" ]; then
    short="-short"
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test $short ./..."
go test $short ./...

echo "== go test -race -short ./internal/gate ./internal/fault ./internal/shard"
go test -race -short ./internal/gate ./internal/fault ./internal/shard

echo "check: OK"
