package shard

import (
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/fault"
)

// pipeHost wires a HostSpec to an in-process Host over net.Pipe: every
// dial opens a fresh session against the same Host (same worker cache,
// same artifact memos), exactly like reconnecting to a TCP daemon — but
// race-detectable and with no sockets.
func pipeHost(t *testing.T, h *Host) HostSpec {
	t.Helper()
	return HostSpec{dial: func() (io.ReadWriteCloser, error) {
		a, b := net.Pipe()
		go func() {
			defer b.Close()
			_ = h.ServeSession(b, b)
		}()
		return a, nil
	}}
}

func newTestHost(t *testing.T) *Host {
	t.Helper()
	c, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return NewHost(c)
}

func TestParseHosts(t *testing.T) {
	hosts, err := ParseHosts("10.0.0.2:7777=2, 10.0.0.3:7777 ,exec:ssh h4 sbst -shard-session=1.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 3 {
		t.Fatalf("parsed %d hosts, want 3", len(hosts))
	}
	if hosts[0].Addr != "10.0.0.2:7777" || hosts[0].Weight != 2 {
		t.Fatalf("host 0 = %+v", hosts[0])
	}
	if hosts[1].Addr != "10.0.0.3:7777" || hosts[1].Weight != 0 {
		t.Fatalf("host 1 = %+v", hosts[1])
	}
	if len(hosts[2].Argv) != 4 || hosts[2].Argv[0] != "ssh" || hosts[2].Weight != 1.5 {
		t.Fatalf("host 2 = %+v", hosts[2])
	}
	// A non-numeric suffix after '=' belongs to the entry, not a weight.
	hosts, err = ParseHosts("exec:worker -flag=value")
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts[0].Argv) != 2 || hosts[0].Argv[1] != "-flag=value" || hosts[0].Weight != 0 {
		t.Fatalf("host = %+v", hosts[0])
	}
	for _, bad := range []string{"", " , ", "noport", "exec:", "host:1=0.5,noport"} {
		if _, err := ParseHosts(bad); err == nil {
			t.Fatalf("ParseHosts(%q) accepted", bad)
		}
	}
}

// TestPartitionWeightedEqualIsUniform pins the compatibility contract:
// with equal weights, the weighted partitioner is bit-identical to the
// uniform Partition (same greedy argmin, same tie-break).
func TestPartitionWeightedEqualIsUniform(t *testing.T) {
	cpu := getCPU(t)
	g := captureTestGolden(t, 60)
	faults := fault.SampleFaults(fault.Universe(cpu.Netlist), 512, 11)
	for _, shards := range []int{1, 2, 3, 5} {
		uniform, uskip, err := Partition(cpu.Netlist, g, faults, 0, 0, shards)
		if err != nil {
			t.Fatal(err)
		}
		ones := make([]float64, shards)
		for i := range ones {
			ones[i] = 1
		}
		weighted, wskip, err := PartitionWeighted(cpu.Netlist, g, faults, 0, 0, ones)
		if err != nil {
			t.Fatal(err)
		}
		if uskip != wskip {
			t.Fatalf("%d shards: skipped %d vs %d", shards, uskip, wskip)
		}
		if fmt.Sprint(uniform) != fmt.Sprint(weighted) {
			t.Fatalf("%d shards: equal-weight partition diverges from uniform", shards)
		}
	}
}

// TestPartitionWeightedSkew checks that capacity weights actually move
// load: a 4:1 host pair must leave the heavy shard with more estimated
// cost than the uniform split gave it, and the result stays a partition
// of the same fault indices.
func TestPartitionWeightedSkew(t *testing.T) {
	cpu := getCPU(t)
	g := captureTestGolden(t, 60)
	faults := fault.SampleFaults(fault.Universe(cpu.Netlist), 1024, 3)
	uniform, _, err := PartitionWeighted(cpu.Netlist, g, faults, 0, 0, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	skewed, _, err := PartitionWeighted(cpu.Netlist, g, faults, 0, 0, []float64{4, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(skewed[0]) <= len(uniform[0]) {
		t.Fatalf("4:1 weights left the heavy shard with %d faults, uniform gave %d",
			len(skewed[0]), len(uniform[0]))
	}
	seen := make(map[int]bool)
	for _, part := range skewed {
		for _, idx := range part {
			if seen[idx] {
				t.Fatalf("fault index %d assigned twice", idx)
			}
			seen[idx] = true
		}
	}
	total := 0
	for _, part := range uniform {
		total += len(part)
	}
	if len(seen) != total {
		t.Fatalf("skewed partition covers %d faults, uniform covers %d", len(seen), total)
	}
}

// TestGradeDistEquivalentToSimulate is the distributed acceptance
// property: a multi-host run over in-process session workers is
// bit-identical to the unsharded fault.Simulate, across host counts and
// capacity skews.
func TestGradeDistEquivalentToSimulate(t *testing.T) {
	cpu := getCPU(t)
	g := captureTestGolden(t, 80)
	all := fault.Universe(cpu.Netlist)
	opt := fault.Options{Sample: testSample(t), Seed: 7}
	want, err := fault.Simulate(cpu, g, all, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, weights := range [][]float64{{0, 0}, {3, 1}, {0, 0, 0}} {
		hosts := make([]HostSpec, len(weights))
		for i, w := range weights {
			hosts[i] = pipeHost(t, newTestHost(t))
			hosts[i].Weight = w
		}
		got, stats, err := GradeDist(cpu, g, all, DistOptions{
			Hosts:  hosts,
			Sample: opt.Sample,
			Seed:   opt.Seed,
		})
		if err != nil {
			t.Fatalf("weights %v: %v", weights, err)
		}
		requireSameResult(t, got, want)
		if stats.Shards < 1 {
			t.Fatalf("weights %v: no shards graded", weights)
		}
		if stats.BytesShipped <= 0 {
			t.Fatalf("weights %v: shipped %d bytes into fresh worker caches", weights, stats.BytesShipped)
		}
		if got.Stats.DistHosts != int64(len(weights)) {
			t.Fatalf("weights %v: DistHosts = %d", weights, got.Stats.DistHosts)
		}
		for i, h := range stats.Hosts {
			if h.Err != "" {
				t.Fatalf("weights %v: host %d down: %s", weights, i, h.Err)
			}
			if h.FailedAttempts != 0 || h.Retries != 0 {
				t.Fatalf("weights %v: healthy run reported failures: %+v", weights, h)
			}
		}
	}
}

// TestGradeDistCalibrate exercises the calibration path end to end: the
// kernel runs on each host without an explicit weight and the derived
// weights reach the stats (on identical in-process hosts they are just
// "some positive number", which is all a unit test can pin).
func TestGradeDistCalibrate(t *testing.T) {
	cpu := getCPU(t)
	g := captureTestGolden(t, 60)
	all := fault.Universe(cpu.Netlist)
	got, stats, err := GradeDist(cpu, g, all, DistOptions{
		Hosts:     []HostSpec{pipeHost(t, newTestHost(t)), pipeHost(t, newTestHost(t))},
		Sample:    256,
		Seed:      3,
		Calibrate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := fault.Simulate(cpu, g, all, fault.Options{Sample: 256, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, got, want)
	for i, h := range stats.Hosts {
		if h.Weight <= 0 {
			t.Fatalf("host %d calibrated to weight %v", i, h.Weight)
		}
		if h.Cores < 1 {
			t.Fatalf("host %d reported %d cores", i, h.Cores)
		}
	}
}

// TestGradeDistTCP exercises the real TCP transport: two in-process
// hosts behind real listeners, each with a persistent cache, and a
// persistent coordinator cache. The first run ships every artifact to
// every worker exactly once; the re-grade ships zero bytes.
func TestGradeDistTCP(t *testing.T) {
	cpu := getCPU(t)
	g := captureTestGolden(t, 60)
	all := fault.Universe(cpu.Netlist)
	var hosts []HostSpec
	for i := 0; i < 2; i++ {
		h := newTestHost(t)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go h.Serve(ln)
		hosts = append(hosts, HostSpec{Addr: ln.Addr().String()})
	}
	coord, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := DistOptions{Hosts: hosts, Sample: 256, Seed: 3, Cache: coord}
	want, err := fault.Simulate(cpu, g, all, fault.Options{Sample: 256, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := GradeDist(cpu, g, all, opt)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, got, want)
	for i, h := range stats.Hosts {
		if h.Shards > 0 && h.ShipBytes <= 0 {
			t.Fatalf("host %d graded %d shards but shipped %d bytes", i, h.Shards, h.ShipBytes)
		}
	}
	// Same artifacts, same (still-running) workers: nothing to ship.
	got, stats, err = GradeDist(cpu, g, all, opt)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, got, want)
	if stats.BytesShipped != 0 {
		t.Fatalf("re-grade shipped %d bytes into warm worker caches", stats.BytesShipped)
	}
}

// TestGradeDistExecSession exercises the exec transport — the local
// stand-in for an ssh wrapper: the coordinator spawns this test binary
// with the session marker set (TestMain → ServeIfWorker) and talks the
// session protocol over its stdin/stdout.
func TestGradeDistExecSession(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cpu := getCPU(t)
	g := captureTestGolden(t, 60)
	all := fault.Universe(cpu.Netlist)
	want, err := fault.Simulate(cpu, g, all, fault.Options{Sample: 256, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := GradeDist(cpu, g, all, DistOptions{
		Hosts:  []HostSpec{{Argv: []string{exe}}, {Argv: []string{exe}}},
		Sample: 256,
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, got, want)
	if stats.BytesShipped <= 0 {
		t.Fatalf("shipped %d bytes into fresh exec-worker caches", stats.BytesShipped)
	}
}

// TestGradeDistDisconnectRetries injects a mid-stream disconnect: the
// host's first session hangs up right after the HAVE exchange, mid
// protocol. The attempt fails, the coordinator re-dials and force-pushes,
// and the retry succeeds — bit-identically.
func TestGradeDistDisconnectRetries(t *testing.T) {
	h := newTestHost(t)
	dials := 0
	spec := HostSpec{dial: func() (io.ReadWriteCloser, error) {
		dials++
		a, b := net.Pipe()
		if dials == 1 {
			go func() {
				enc := NewEncoder(b)
				dec := NewDecoder(b)
				_ = enc.WriteFrame(&sessionFrame{Kind: frameHello, Proto: sessionProto, Cores: 1})
				var f sessionFrame
				_ = dec.ReadFrame(&f) // the HAVE probe
				b.Close()             // ... and the stream dies mid-exchange
			}()
		} else {
			go func() {
				defer b.Close()
				_ = h.ServeSession(b, b)
			}()
		}
		return a, nil
	}}
	cpu := getCPU(t)
	g := captureTestGolden(t, 60)
	all := fault.Universe(cpu.Netlist)
	want, err := fault.Simulate(cpu, g, all, fault.Options{Sample: 256, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := GradeDist(cpu, g, all, DistOptions{
		Hosts:  []HostSpec{spec},
		Sample: 256,
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, got, want)
	hs := stats.Hosts[0]
	if hs.Retries != 1 || hs.FailedAttempts != 1 {
		t.Fatalf("disconnect recovery: %+v", hs)
	}
	if dials < 2 {
		t.Fatalf("retry reused the dead session (%d dials)", dials)
	}
}

// TestGradeDistHealsCorruptWorkerCache plants garbage at the golden's
// content address in the worker cache. The HAVE probe says "present", the
// grade fails on the corrupt entry, and the retry's forced re-push heals
// it — the run still completes bit-identically.
func TestGradeDistHealsCorruptWorkerCache(t *testing.T) {
	workerDir := t.TempDir()
	wc, err := cache.Open(workerDir)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHost(wc)
	cpu := getCPU(t)
	g := captureTestGolden(t, 60)
	coord, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	goldenKey, _, err := coord.PutGolden(g)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := filepath.Join(workerDir, "goldenship-"+goldenKey+".gob")
	if err := os.WriteFile(corrupt, []byte("not a golden trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	all := fault.Universe(cpu.Netlist)
	want, err := fault.Simulate(cpu, g, all, fault.Options{Sample: 256, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := GradeDist(cpu, g, all, DistOptions{
		Hosts:  []HostSpec{pipeHost(t, h)},
		Sample: 256,
		Seed:   3,
		Cache:  coord,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, got, want)
	if stats.Hosts[0].Retries != 1 {
		t.Fatalf("corrupt-artifact recovery: %+v", stats.Hosts[0])
	}
	if data, err := os.ReadFile(corrupt); err != nil || string(data) == "not a golden trace" {
		t.Fatalf("forced re-push did not heal the corrupt entry (err %v)", err)
	}
}

// TestGradeDistStragglerRedispatch wedges one host: it accepts its shard
// and never answers. The healthy host finishes its own work, goes idle,
// duplicates the wedged host's shard, and its result wins — the run
// completes promptly (no timeout involved) and bit-identically.
func TestGradeDistStragglerRedispatch(t *testing.T) {
	good := newTestHost(t)
	blackhole := HostSpec{dial: func() (io.ReadWriteCloser, error) {
		a, b := net.Pipe()
		go func() {
			enc := NewEncoder(b)
			dec := NewDecoder(b)
			_ = enc.WriteFrame(&sessionFrame{Kind: frameHello, Proto: sessionProto, Cores: 1})
			for {
				var f sessionFrame
				if dec.ReadFrame(&f) != nil {
					return
				}
				switch f.Kind {
				case frameHave:
					_ = enc.WriteFrame(&sessionFrame{Kind: frameWant}) // claim warm cache
				case framePut:
					_ = enc.WriteFrame(&sessionFrame{Kind: framePutOK})
				case frameGrade:
					// Swallow the shard and never answer.
				}
			}
		}()
		return a, nil
	}}
	cpu := getCPU(t)
	g := captureTestGolden(t, 60)
	all := fault.Universe(cpu.Netlist)
	want, err := fault.Simulate(cpu, g, all, fault.Options{Sample: 1024, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, stats, err := GradeDist(cpu, g, all, DistOptions{
		Hosts:   []HostSpec{pipeHost(t, good), blackhole},
		Sample:  1024,
		Seed:    3,
		Timeout: 5 * time.Minute, // far beyond the test: recovery must not be timeout-driven
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, got, want)
	if stats.Shards != 2 {
		t.Fatalf("want both hosts assigned a shard, got %d shards", stats.Shards)
	}
	if stats.Redispatched != 1 || stats.Hosts[0].Duplicates != 1 {
		t.Fatalf("straggler recovery: redispatched %d, host 0 %+v", stats.Redispatched, stats.Hosts[0])
	}
	if elapsed := time.Since(start); elapsed > time.Minute {
		t.Fatalf("straggler recovery leaned on the timeout (%v)", elapsed)
	}
	if got.Stats.DistRedispatched != 1 {
		t.Fatalf("DistRedispatched = %d", got.Stats.DistRedispatched)
	}
}

// TestGradeDistDoubleFailureFails pins the never-a-partial-merge
// contract: a host that fails the same shard twice — with no other host
// to cover it — fails the whole run with both attempts' errors.
func TestGradeDistDoubleFailureFails(t *testing.T) {
	broken := HostSpec{dial: func() (io.ReadWriteCloser, error) {
		a, b := net.Pipe()
		go func() {
			defer b.Close()
			enc := NewEncoder(b)
			dec := NewDecoder(b)
			_ = enc.WriteFrame(&sessionFrame{Kind: frameHello, Proto: sessionProto, Cores: 1})
			for {
				var f sessionFrame
				if dec.ReadFrame(&f) != nil {
					return
				}
				switch f.Kind {
				case frameHave:
					_ = enc.WriteFrame(&sessionFrame{Kind: frameWant})
				case framePut:
					_ = enc.WriteFrame(&sessionFrame{Kind: framePutOK})
				case frameGrade:
					_ = enc.WriteFrame(&sessionFrame{Kind: frameResult, Resp: &Response{
						Shard: f.Req.Shard, Err: "simulated worker fault",
					}})
				}
			}
		}()
		return a, nil
	}}
	cpu := getCPU(t)
	g := captureTestGolden(t, 60)
	all := fault.Universe(cpu.Netlist)
	got, _, err := GradeDist(cpu, g, all, DistOptions{
		Hosts:  []HostSpec{broken},
		Sample: 256,
		Seed:   3,
	})
	if err == nil {
		t.Fatal("double failure returned a result")
	}
	if got != nil {
		t.Fatal("failed run leaked a partial result")
	}
	if !strings.Contains(err.Error(), "worker failed twice") ||
		!strings.Contains(err.Error(), "simulated worker fault") {
		t.Fatalf("error lost the attempt history: %v", err)
	}
}

// TestGradeDistUnreachableHostExcluded: a dead address degrades the run
// to the live hosts and is recorded in the stats; all hosts dead is an
// error, not a hang.
func TestGradeDistUnreachableHostExcluded(t *testing.T) {
	dead := HostSpec{dial: func() (io.ReadWriteCloser, error) {
		return nil, fmt.Errorf("connection refused")
	}}
	cpu := getCPU(t)
	g := captureTestGolden(t, 60)
	all := fault.Universe(cpu.Netlist)
	want, err := fault.Simulate(cpu, g, all, fault.Options{Sample: 256, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := GradeDist(cpu, g, all, DistOptions{
		Hosts:  []HostSpec{dead, pipeHost(t, newTestHost(t))},
		Sample: 256,
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, got, want)
	if stats.Hosts[0].Err == "" {
		t.Fatal("dead host not recorded")
	}
	if got.Stats.DistHosts != 1 {
		t.Fatalf("DistHosts = %d, want 1", got.Stats.DistHosts)
	}
	if _, _, err := GradeDist(cpu, g, all, DistOptions{Hosts: []HostSpec{dead}, Sample: 64}); err == nil {
		t.Fatal("all-dead host set graded successfully")
	}
}
