// Package shard scales fault grading across worker processes: a
// coordinator partitions the fault universe into deterministic,
// cache-friendly shards (reusing the cone-aware pass packing of
// internal/fault), ships the synthesized netlist and the sparse golden
// trace once through the content-addressed artifact cache, spawns worker
// processes of the same binary, and unions the per-shard detections with
// fault.MergeShards into a result bit-identical to an unsharded run.
//
// The wire protocol is deliberately small: the coordinator writes one
// Request frame to a worker's stdin, the worker writes one Response frame
// to its stdout and exits. Frames are length-prefixed, CRC-guarded gob; a
// truncated or corrupted frame is detected at the coordinator and treated
// like a crashed worker (one retry, then a hard error — never a silently
// partial merge).
package shard

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/fault"
)

// Request is the coordinator-to-worker job description. Heavy artifacts
// (netlist, golden trace) travel by content-address through the shared
// cache directory; only the shard's own fault subset rides in the frame.
type Request struct {
	// Shard is the shard's index in the coordinator's partition, echoed
	// back in the Response.
	Shard int
	// CacheDir is the artifact cache directory shared with the
	// coordinator; CPUKey and GoldenKey address the shipped CPU
	// (cache.PutCPU) and golden trace (cache.PutGolden) in it.
	CacheDir  string
	CPUKey    string
	GoldenKey string
	// Faults is the shard's fault subset, in the coordinator's shard-local
	// order; UniverseHash is fault.UniverseHash over it, echoed back so a
	// mismatched merge is diagnosable end to end.
	Faults       []fault.Fault
	UniverseHash string
	// Engine, LaneWords and Workers configure the worker's in-process
	// fault.Simulate run.
	Engine    fault.Engine
	LaneWords int
	Workers   int
}

// Response is the worker-to-coordinator result frame: the per-fault
// outcomes aligned to Request.Faults, or a worker-side error.
type Response struct {
	Shard int
	// Err, when non-empty, reports a worker-side failure (bad artifact,
	// simulation error); the coordinator treats it like a crash.
	Err string
	// UniverseHash echoes the request's hash after the worker recomputed
	// it over the faults it actually graded.
	UniverseHash    string
	Cycles          int
	DetectedAt      []int32
	SignatureGroups []uint8
	Stats           fault.SimStats
}

// maxFrameBytes bounds a frame's declared payload length so a corrupted
// header cannot demand an absurd allocation.
const maxFrameBytes = 1 << 30

// writeFrame writes one length-prefixed, CRC-guarded gob frame.
func writeFrame(w io.Writer, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("shard: encode frame: %w", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(buf.Len()))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(buf.Bytes()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("shard: write frame header: %w", err)
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("shard: write frame payload: %w", err)
	}
	return nil
}

// readFrame reads one frame into v. Truncation (stream ends mid-frame)
// and corruption (CRC mismatch) are distinct, explicit errors.
func readFrame(r io.Reader, v any) error {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return fmt.Errorf("shard: truncated frame header: %w", err)
		}
		return fmt.Errorf("shard: read frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrameBytes {
		return fmt.Errorf("shard: frame of %d bytes exceeds the %d-byte limit", n, maxFrameBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return fmt.Errorf("shard: truncated frame: got fewer than the declared %d bytes: %w", n, err)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != binary.LittleEndian.Uint32(hdr[4:]) {
		return fmt.Errorf("shard: frame CRC mismatch")
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("shard: decode frame: %w", err)
	}
	return nil
}
