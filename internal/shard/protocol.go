// Package shard scales fault grading across worker processes: a
// coordinator partitions the fault universe into deterministic,
// cache-friendly shards (reusing the cone-aware pass packing of
// internal/fault), ships the synthesized netlist and the sparse golden
// trace once through the content-addressed artifact cache, spawns worker
// processes of the same binary, and unions the per-shard detections with
// fault.MergeShards into a result bit-identical to an unsharded run.
//
// The wire protocol is deliberately small: the coordinator writes one
// Request frame to a worker's stdin, the worker writes one Response frame
// to its stdout and exits. Frames are length-prefixed, CRC-guarded gob; a
// truncated or corrupted frame is detected at the coordinator and treated
// like a crashed worker (one retry, then a hard error — never a silently
// partial merge).
package shard

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/fault"
)

// Request is the coordinator-to-worker job description. Heavy artifacts
// (netlist, golden trace) travel by content-address through the shared
// cache directory; only the shard's own fault subset rides in the frame.
type Request struct {
	// Shard is the shard's index in the coordinator's partition, echoed
	// back in the Response.
	Shard int
	// CacheDir is the artifact cache directory shared with the
	// coordinator; CPUKey and GoldenKey address the shipped CPU
	// (cache.PutCPU) and golden trace (cache.PutGolden) in it.
	CacheDir  string
	CPUKey    string
	GoldenKey string
	// Faults is the shard's fault subset, in the coordinator's shard-local
	// order; UniverseHash is fault.UniverseHash over it, echoed back so a
	// mismatched merge is diagnosable end to end.
	Faults       []fault.Fault
	UniverseHash string
	// Engine, LaneWords and Workers configure the worker's in-process
	// fault.Simulate run.
	Engine    fault.Engine
	LaneWords int
	Workers   int
}

// Response is the worker-to-coordinator result frame: the per-fault
// outcomes aligned to Request.Faults, or a worker-side error.
type Response struct {
	Shard int
	// Err, when non-empty, reports a worker-side failure (bad artifact,
	// simulation error); the coordinator treats it like a crash.
	Err string
	// UniverseHash echoes the request's hash after the worker recomputed
	// it over the faults it actually graded.
	UniverseHash    string
	Cycles          int
	DetectedAt      []int32
	SignatureGroups []uint8
	Stats           fault.SimStats
	// WallNs is the worker-side wall clock of the simulation itself,
	// reported by session workers (internal/shard remote hosts) so the
	// coordinator can split an attempt's latency into ship/queue/sim
	// components; one-shot subprocess workers leave it zero.
	WallNs int64
}

// maxFrameBytes bounds a frame's declared payload length so a corrupted
// header cannot demand an absurd allocation.
const maxFrameBytes = 1 << 30

// Encoder writes a persistent stream of length-prefixed, CRC-guarded gob
// frames. Unlike the one-shot WriteFrame it keeps one gob stream alive
// across frames, so type descriptors are transmitted once per connection
// instead of once per message — the difference between ~KB and ~tens of
// bytes per request on a long-lived grading connection. Frames produced
// by an Encoder must be consumed in order by the matching Decoder (the
// gob stream spans frames); use WriteFrame/ReadFrame for one-shot
// exchanges like shard workers.
type Encoder struct {
	w   io.Writer
	buf bytes.Buffer
	enc *gob.Encoder
}

// NewEncoder returns an Encoder framing a persistent gob stream onto w.
func NewEncoder(w io.Writer) *Encoder {
	e := &Encoder{w: w}
	e.enc = gob.NewEncoder(&e.buf)
	return e
}

// WriteFrame appends v to the gob stream and writes it as one frame. Any
// type descriptors v needs for the first time travel inside the same
// frame, so each frame still decodes independently in arrival order.
func (e *Encoder) WriteFrame(v any) error {
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		return fmt.Errorf("shard: encode frame: %w", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(e.buf.Len()))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(e.buf.Bytes()))
	if _, err := e.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("shard: write frame header: %w", err)
	}
	if _, err := e.w.Write(e.buf.Bytes()); err != nil {
		return fmt.Errorf("shard: write frame payload: %w", err)
	}
	return nil
}

// Decoder reads the frame stream an Encoder produces, verifying each
// frame's CRC before handing its bytes to the persistent gob stream. The
// payload buffer is reused across frames, so steady-state reads allocate
// only what gob itself needs for the decoded values.
type Decoder struct {
	r       io.Reader
	payload []byte
	cur     bytes.Reader
	dec     *gob.Decoder
}

// NewDecoder returns a Decoder consuming an Encoder's frame stream from r.
func NewDecoder(r io.Reader) *Decoder {
	d := &Decoder{r: r}
	d.dec = gob.NewDecoder(&d.cur)
	return d
}

// ReadFrame reads one frame into v. Truncation and corruption are
// distinct, explicit errors, exactly as with the one-shot ReadFrame.
func (d *Decoder) ReadFrame(v any) error {
	var hdr [8]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return fmt.Errorf("shard: truncated frame header: %w", err)
		}
		return fmt.Errorf("shard: read frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrameBytes {
		return fmt.Errorf("shard: frame of %d bytes exceeds the %d-byte limit", n, maxFrameBytes)
	}
	if uint32(cap(d.payload)) < n {
		d.payload = make([]byte, n)
	}
	d.payload = d.payload[:n]
	if _, err := io.ReadFull(d.r, d.payload); err != nil {
		return fmt.Errorf("shard: truncated frame: got fewer than the declared %d bytes: %w", n, err)
	}
	if crc := crc32.ChecksumIEEE(d.payload); crc != binary.LittleEndian.Uint32(hdr[4:]) {
		return fmt.Errorf("shard: frame CRC mismatch")
	}
	d.cur.Reset(d.payload)
	if err := d.dec.Decode(v); err != nil {
		return fmt.Errorf("shard: decode frame: %w", err)
	}
	return nil
}

// WriteFrame writes one length-prefixed, CRC-guarded gob frame. It is
// exported as the wire framing shared by every inter-process protocol in
// this repo: shard workers and the grading server (internal/serve) both
// frame their gob messages this way, so corruption and truncation are
// detected identically on either channel.
func WriteFrame(w io.Writer, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("shard: encode frame: %w", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(buf.Len()))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(buf.Bytes()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("shard: write frame header: %w", err)
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("shard: write frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one frame into v. Truncation (stream ends mid-frame)
// and corruption (CRC mismatch) are distinct, explicit errors.
func ReadFrame(r io.Reader, v any) error {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return fmt.Errorf("shard: truncated frame header: %w", err)
		}
		return fmt.Errorf("shard: read frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrameBytes {
		return fmt.Errorf("shard: frame of %d bytes exceeds the %d-byte limit", n, maxFrameBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return fmt.Errorf("shard: truncated frame: got fewer than the declared %d bytes: %w", n, err)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != binary.LittleEndian.Uint32(hdr[4:]) {
		return fmt.Errorf("shard: frame CRC mismatch")
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("shard: decode frame: %w", err)
	}
	return nil
}
