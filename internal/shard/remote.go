package shard

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/plasma"
)

// Multi-host session protocol. A remote worker (any process embedding
// this package: sbst, the test binaries, an sbstd sidecar) serves a
// persistent session over one byte stream — a TCP connection, or
// stdin/stdout under an ssh-style exec wrapper. Frames ride the same
// persistent CRC-guarded gob streams the grading service uses
// (Encoder/Decoder), so type descriptors cross the wire once per session
// and a corrupted or truncated frame is a diagnosed error on either end.
//
// The session is strictly coordinator-driven request/response:
//
//	worker → hello                         (protocol version, cores)
//	coord  → have(refs)   → worker → want(missing refs)
//	coord  → put(ref,data)→ worker → putOK(err?)        (per wanted ref)
//	coord  → grade(req)   → worker → result(resp)
//	coord  → calibrate(n) → worker → calibrated(ns)
//
// Artifacts are content-addressed and immutable, so replication is a
// one-way push-on-miss: the HAVE/WANT handshake before each dispatch
// ships each content hash to each worker at most once (zero on a warm
// worker cache), and a forced re-push of the same bytes can only heal a
// corrupt entry (cache.PutArtifactBytes verifies before it stores).

// sessionProto is the session protocol version, exchanged in the hello
// frame; a coordinator refuses a worker speaking a different version
// rather than mis-decoding its frames.
const sessionProto = 1

// Session frame kinds (sessionFrame.Kind).
const (
	frameHello = iota + 1
	frameHave
	frameWant
	framePut
	framePutOK
	frameGrade
	frameResult
	frameCalibrate
	frameCalibrated
)

// ArtifactRef names one content-addressed cache artifact in the
// replication handshake.
type ArtifactRef struct {
	Kind cache.ArtifactKind
	Key  string
}

// sessionFrame is the tagged union every session message travels in; the
// Kind selects which fields are meaningful.
type sessionFrame struct {
	Kind  int
	Proto int           // hello: protocol version
	Cores int           // hello: worker GOMAXPROCS capacity
	Refs  []ArtifactRef // have, want
	Ref   ArtifactRef   // put
	Data  []byte        // put: raw artifact bytes
	Err   string        // putOK: storage/verification failure
	Req   *Request      // grade
	Resp  *Response     // result
	Iters int           // calibrate: kernel iterations
	Ns    int64         // calibrated: elapsed wall clock
}

// Host is the worker side of the distributed grading protocol: a local
// artifact cache plus memoized decoded artifacts (a CPU or golden trace
// is parsed once per content hash, not once per shard dispatch), serving
// any number of concurrent coordinator sessions.
type Host struct {
	c *cache.Cache

	mu      sync.Mutex
	cpus    map[string]*plasma.CPU
	goldens map[string]*plasma.Golden
}

// NewHost returns a worker host over the given artifact cache (the
// worker's local replica store; it must not be nil).
func NewHost(c *cache.Cache) *Host {
	return &Host{
		c:       c,
		cpus:    make(map[string]*plasma.CPU),
		goldens: make(map[string]*plasma.Golden),
	}
}

// Serve accepts coordinator connections until the listener closes, one
// session goroutine per connection. A closed listener is a clean
// shutdown, not an error.
func (h *Host) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			defer conn.Close()
			_ = h.ServeSession(conn, conn)
		}()
	}
}

// ServeSession serves one coordinator session over a byte stream: the
// transport for the exec/ssh worker path (stdin/stdout) and the body of
// every TCP session. It returns nil when the coordinator closes the
// stream, and the transport error otherwise.
func (h *Host) ServeSession(r io.Reader, w io.Writer) error {
	enc := NewEncoder(w)
	dec := NewDecoder(r)
	if err := enc.WriteFrame(&sessionFrame{Kind: frameHello, Proto: sessionProto, Cores: runtime.GOMAXPROCS(0)}); err != nil {
		return err
	}
	for {
		var f sessionFrame
		if err := dec.ReadFrame(&f); err != nil {
			if errors.Is(err, io.EOF) {
				return nil // coordinator hung up between exchanges: session over
			}
			return err
		}
		var reply sessionFrame
		switch f.Kind {
		case frameHave:
			reply.Kind = frameWant
			for _, ref := range f.Refs {
				if !h.c.HasArtifact(ref.Kind, ref.Key) {
					reply.Refs = append(reply.Refs, ref)
				}
			}
		case framePut:
			reply.Kind = framePutOK
			if _, err := h.c.PutArtifactBytes(f.Ref.Kind, f.Ref.Key, f.Data); err != nil {
				reply.Err = err.Error()
			}
		case frameGrade:
			if f.Req == nil {
				return fmt.Errorf("shard: grade frame without a request")
			}
			reply.Kind = frameResult
			reply.Resp = h.grade(f.Req)
		case frameCalibrate:
			reply.Kind = frameCalibrated
			reply.Ns = calibrationKernel(f.Iters)
		default:
			return fmt.Errorf("shard: unexpected session frame kind %d", f.Kind)
		}
		if err := enc.WriteFrame(&reply); err != nil {
			return err
		}
	}
}

// grade runs one shard's fault simulation against the host's local
// artifact replicas, memoizing the decoded CPU and golden per content
// hash. Worker-side problems (missing or corrupt artifact, simulation
// error) travel back in Response.Err so the coordinator can retry with a
// forced re-push.
func (h *Host) grade(req *Request) *Response {
	fail := func(format string, args ...any) *Response {
		return &Response{Shard: req.Shard, Err: fmt.Sprintf(format, args...)}
	}
	if hash := fault.UniverseHash(req.Faults); hash != req.UniverseHash {
		return fail("shard %d fault subset hashes to %s, request says %s", req.Shard, hash, req.UniverseHash)
	}
	cpu, err := h.cpu(req.CPUKey)
	if err != nil {
		return fail("shard %d: %v", req.Shard, err)
	}
	golden, err := h.golden(req.GoldenKey)
	if err != nil {
		return fail("shard %d: %v", req.Shard, err)
	}
	start := time.Now()
	res, err := fault.Simulate(cpu, golden, req.Faults, fault.Options{
		Workers:   req.Workers,
		Engine:    req.Engine,
		LaneWords: req.LaneWords,
	})
	if err != nil {
		return fail("shard %d: %v", req.Shard, err)
	}
	return &Response{
		Shard:           req.Shard,
		UniverseHash:    req.UniverseHash,
		Cycles:          res.Cycles,
		DetectedAt:      res.DetectedAt,
		SignatureGroups: res.SignatureGroups,
		Stats:           res.Stats,
		WallNs:          time.Since(start).Nanoseconds(),
	}
}

// cpu returns the decoded CPU for a content hash, loading it from the
// local cache on first use. Content addressing makes the memo safe: the
// same key can only ever decode to the same core.
func (h *Host) cpu(key string) (*plasma.CPU, error) {
	h.mu.Lock()
	cpu := h.cpus[key]
	h.mu.Unlock()
	if cpu != nil {
		return cpu, nil
	}
	cpu, err := h.c.GetCPU(key)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	h.cpus[key] = cpu
	h.mu.Unlock()
	return cpu, nil
}

func (h *Host) golden(key string) (*plasma.Golden, error) {
	h.mu.Lock()
	g := h.goldens[key]
	h.mu.Unlock()
	if g != nil {
		return g, nil
	}
	g, err := h.c.GetGoldenArtifact(key)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	h.goldens[key] = g
	h.mu.Unlock()
	return g, nil
}

// defaultCalibrateIters sizes the calibration kernel: ~tens of
// milliseconds on current cores, enough to average over scheduler noise
// without delaying the run noticeably.
const defaultCalibrateIters = 64

// calibrationKernel measures single-thread throughput on a fixed
// CPU-bound kernel (CRC32 over a 256 KiB buffer, iters times) and
// returns the elapsed wall clock. The coordinator converts it to a host
// weight (cores/ns, only ratios matter) when no explicit weight spec is
// given.
func calibrationKernel(iters int) int64 {
	if iters <= 0 {
		iters = defaultCalibrateIters
	}
	buf := make([]byte, 256<<10)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	start := time.Now()
	var sum uint32
	for i := 0; i < iters; i++ {
		sum = crc32.Update(sum, crc32.IEEETable, buf)
		buf[0] = byte(sum) // serialize iterations so they cannot be hoisted
	}
	runtime.KeepAlive(sum)
	return time.Since(start).Nanoseconds()
}
