package shard

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/plasma"
)

// DefaultTimeout is the per-worker-attempt wall-clock budget when
// Options.Timeout is zero.
const DefaultTimeout = 15 * time.Minute

// Options tunes a sharded grading run.
type Options struct {
	// Shards is the number of worker shards; 0 or 1 grades in-process
	// (the single-process fallback, no workers spawned).
	Shards int
	// Timeout bounds each worker attempt's wall clock; an attempt past it
	// is killed and counts as failed (0 = DefaultTimeout).
	Timeout time.Duration
	// Engine, LaneWords and Workers pass through to each worker's
	// fault.Simulate (Workers = per-worker goroutines, 0 = GOMAXPROCS).
	Engine    fault.Engine
	LaneWords int
	Workers   int
	// Sample and Seed apply fault.SampleFaults before partitioning, with
	// the same semantics as fault.Options.
	Sample int
	Seed   int64
	// Cache is the artifact channel to the workers. nil uses a private
	// temporary directory, removed when Grade returns; a persistent cache
	// makes re-shipping free across runs.
	Cache *cache.Cache
	// Spawn starts each worker attempt; nil means SelfSpawner(). A
	// spawner that fails outright (binary unlaunchable) downgrades that
	// shard to an in-process fallback instead of failing the run.
	Spawn Spawner
}

// Stats describes a sharded run from the coordinator's side.
type Stats struct {
	// Shards is the number of non-empty shards graded.
	Shards int
	// Launched counts worker processes started (retries included);
	// Retried counts shards that needed their one retry; Failed counts
	// failed attempts; Fallbacks counts shards graded in-process after a
	// spawner failure.
	Launched, Retried, Failed, Fallbacks int
	// BytesShipped is the artifact bytes newly written to ship the
	// netlist and golden trace (0 when the cache already held them).
	BytesShipped int64
	// Wall[i] is shard i's wall clock (the final, successful attempt;
	// in-process fallbacks included).
	Wall []time.Duration
}

// String renders the coordinator stats as a compact multi-line report.
func (s *Stats) String() string {
	out := fmt.Sprintf("shards            %d\nworkers launched  %d (%d retried, %d failed attempts, %d in-process fallbacks)\nartifacts shipped %d B",
		s.Shards, s.Launched, s.Retried, s.Failed, s.Fallbacks, s.BytesShipped)
	var max, sum time.Duration
	for _, w := range s.Wall {
		sum += w
		if w > max {
			max = w
		}
	}
	out += fmt.Sprintf("\nshard wall-clock  %.3fs max, %.3fs summed", max.Seconds(), sum.Seconds())
	for i, w := range s.Wall {
		out += fmt.Sprintf("\n  shard %-2d        %.3fs", i, w.Seconds())
	}
	return out
}

// Grade fault-simulates a fault list against a golden execution across
// opt.Shards worker processes and merges the per-shard detections with
// fault.MergeShards. The merged DetectedAt, SignatureGroups and coverage
// are bit-identical to an unsharded fault.Simulate of the same options
// (asserted by the package's equivalence tests): per-fault outcomes do
// not depend on pass packing, and the partition only regroups passes.
//
// Robustness: each failed worker attempt (crash, nonzero exit, timeout,
// truncated or corrupt frame, worker-side error) is retried exactly once
// with a fresh process; a second failure fails the whole run with both
// attempts' errors — a partial merge is never returned. A spawner that
// cannot start a process at all downgrades that shard to an in-process
// simulation, and Shards <= 1 grades everything in-process without
// spawning.
func Grade(cpu *plasma.CPU, golden *plasma.Golden, faults []fault.Fault, opt Options) (*fault.Result, *Stats, error) {
	simOpt := fault.Options{
		Workers:   opt.Workers,
		LaneWords: opt.LaneWords,
		Engine:    opt.Engine,
	}
	if opt.Shards <= 1 {
		simOpt.Sample, simOpt.Seed = opt.Sample, opt.Seed
		res, err := fault.Simulate(cpu, golden, faults, simOpt)
		return res, &Stats{Shards: 1, Wall: make([]time.Duration, 1)}, err
	}
	faults = fault.SampleFaults(faults, opt.Sample, opt.Seed)

	c := opt.Cache
	if c == nil {
		dir, err := os.MkdirTemp("", "sbst-shard-")
		if err != nil {
			return nil, nil, fmt.Errorf("shard: %w", err)
		}
		defer os.RemoveAll(dir)
		if c, err = cache.Open(dir); err != nil {
			return nil, nil, err
		}
	}
	cpuKey, cpuBytes, err := c.PutCPU(cpu)
	if err != nil {
		return nil, nil, err
	}
	goldenKey, goldenBytes, err := c.PutGolden(golden)
	if err != nil {
		return nil, nil, err
	}

	parts, skipped, err := Partition(cpu.Netlist, golden, faults, opt.Engine, opt.LaneWords, opt.Shards)
	if err != nil {
		return nil, nil, err
	}
	var shards [][]int
	for _, p := range parts {
		if len(p) > 0 {
			shards = append(shards, p)
		}
	}

	spawn := opt.Spawn
	if spawn == nil {
		spawn = SelfSpawner()
	}
	timeout := opt.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}

	stats := &Stats{
		Shards:       len(shards),
		BytesShipped: cpuBytes + goldenBytes,
		Wall:         make([]time.Duration, len(shards)),
	}
	runs := make([]*fault.Result, len(shards))
	errs := make([]error, len(shards))
	var mu sync.Mutex // guards the attempt counters in stats
	var wg sync.WaitGroup
	for i, idxs := range shards {
		wg.Add(1)
		go func(i int, idxs []int) {
			defer wg.Done()
			start := time.Now()
			runs[i], errs[i] = gradeShard(cpu, golden, faults, idxs, i, &shardConfig{
				opt: opt, spawn: spawn, timeout: timeout,
				cacheDir: c.Dir(), cpuKey: cpuKey, goldenKey: goldenKey,
				stats: stats, mu: &mu,
			})
			stats.Wall[i] = time.Since(start)
		}(i, idxs)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, stats, fmt.Errorf("shard %d of %d: %w", i, len(shards), err)
		}
	}

	merged, err := fault.MergeShards(runs...)
	if err != nil {
		return nil, stats, err
	}
	// Per-shard stats sum cleanly except the whole-run quantities each
	// worker reported for itself: golden-trace sizes describe the one
	// shipped trace, and the partition (not the workers) skipped the
	// never-activated faults.
	merged.Stats.GoldenDenseBytes = golden.DenseStateBytes()
	merged.Stats.GoldenStoredBytes = golden.StoredStateBytes()
	merged.Stats.TraceDenseBytes = golden.DenseTraceBytes()
	merged.Stats.TraceStoredBytes = golden.StoredTraceBytes()
	merged.Stats.SkippedFaults += skipped
	merged.Stats.ShardsLaunched = int64(stats.Launched)
	merged.Stats.ShardsRetried = int64(stats.Retried)
	merged.Stats.ShardsFailed = int64(stats.Failed)
	merged.Stats.ShardsFallback = int64(stats.Fallbacks)
	merged.Stats.ShardBytesShipped = stats.BytesShipped
	for _, w := range stats.Wall {
		merged.Stats.ShardWallNs += w.Nanoseconds()
	}
	return merged, stats, nil
}

// shardConfig bundles the per-run constants gradeShard needs.
type shardConfig struct {
	opt       Options
	spawn     Spawner
	timeout   time.Duration
	cacheDir  string
	cpuKey    string
	goldenKey string
	stats     *Stats
	mu        *sync.Mutex
}

// gradeShard grades one shard: a worker attempt, one retry on failure, an
// in-process fallback when spawning is impossible. The returned Result is
// scattered to full fault-list length so the shard results merge with
// fault.MergeShards.
func gradeShard(cpu *plasma.CPU, golden *plasma.Golden, faults []fault.Fault, idxs []int, shardID int, cfg *shardConfig) (*fault.Result, error) {
	sub := make([]fault.Fault, len(idxs))
	for k, idx := range idxs {
		sub[k] = faults[idx]
	}
	req := &Request{
		Shard:        shardID,
		CacheDir:     cfg.cacheDir,
		CPUKey:       cfg.cpuKey,
		GoldenKey:    cfg.goldenKey,
		Faults:       sub,
		UniverseHash: fault.UniverseHash(sub),
		Engine:       cfg.opt.Engine,
		LaneWords:    cfg.opt.LaneWords,
		Workers:      cfg.opt.Workers,
	}
	count := func(field *int) {
		cfg.mu.Lock()
		*field++
		cfg.mu.Unlock()
	}
	fallback := func() (*fault.Result, error) {
		count(&cfg.stats.Fallbacks)
		res, err := fault.Simulate(cpu, golden, sub, fault.Options{
			Workers:   cfg.opt.Workers,
			LaneWords: cfg.opt.LaneWords,
			Engine:    cfg.opt.Engine,
		})
		if err != nil {
			return nil, err
		}
		return scatter(faults, idxs, golden.Cycles, res.DetectedAt, res.SignatureGroups, res.Stats), nil
	}

	var firstErr error
	for attempt := 0; attempt < 2; attempt++ {
		w, err := cfg.spawn()
		if err != nil {
			// The worker binary cannot be launched at all; retrying the
			// same spawner would fail the same way, so grade in-process.
			return fallback()
		}
		count(&cfg.stats.Launched)
		resp, err := runAttempt(w, req, cfg.timeout)
		if err == nil {
			return scatter(faults, idxs, golden.Cycles, resp.DetectedAt, resp.SignatureGroups, resp.Stats), nil
		}
		count(&cfg.stats.Failed)
		if attempt == 0 {
			firstErr = err
			count(&cfg.stats.Retried)
			continue
		}
		return nil, fmt.Errorf("worker failed twice: attempt 1: %v; attempt 2 (retry): %v", firstErr, err)
	}
	panic("unreachable")
}

// runAttempt drives one worker through the protocol under a deadline and
// validates the response against the request.
func runAttempt(w Worker, req *Request, timeout time.Duration) (*Response, error) {
	// Every exit path must both stop the worker AND reap it: a Kill
	// without a Wait leaves the dead child as a zombie holding its
	// process-table slot for the life of the coordinator (Worker.Wait is
	// idempotent, so the success path's explicit Wait is unaffected).
	defer func() {
		w.Kill()
		_ = w.Wait()
	}()
	var timedOut atomic.Bool
	timer := time.AfterFunc(timeout, func() {
		timedOut.Store(true)
		w.Kill()
	})
	defer timer.Stop()
	fail := func(err error) (*Response, error) {
		if timedOut.Load() {
			return nil, fmt.Errorf("timed out after %v: %w", timeout, err)
		}
		return nil, err
	}
	if err := WriteFrame(w, req); err != nil {
		return fail(err)
	}
	if err := w.CloseWrite(); err != nil {
		return fail(err)
	}
	var resp Response
	if err := ReadFrame(w, &resp); err != nil {
		return fail(err)
	}
	if err := w.Wait(); err != nil {
		return fail(fmt.Errorf("worker exit: %w", err))
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("worker error: %s", resp.Err)
	}
	if err := checkResponse(req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// scatter expands a shard's subset-aligned outcomes to a full-fault-list
// Result (ungraded lanes stay undetected) for fault.MergeShards.
func scatter(faults []fault.Fault, idxs []int, cycles int, detectedAt []int32, sigGroups []uint8, stats fault.SimStats) *fault.Result {
	r := &fault.Result{
		Faults:          faults,
		DetectedAt:      make([]int32, len(faults)),
		SignatureGroups: make([]uint8, len(faults)),
		Cycles:          cycles,
		Stats:           stats,
	}
	for i := range r.DetectedAt {
		r.DetectedAt[i] = -1
	}
	for k, idx := range idxs {
		r.DetectedAt[idx] = detectedAt[k]
		r.SignatureGroups[idx] = sigGroups[k]
	}
	return r
}
