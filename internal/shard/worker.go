package shard

import (
	"fmt"
	"io"
	"os"

	"repro/internal/cache"
	"repro/internal/fault"
)

// EnvVar is the environment marker that flips a binary embedding this
// package into one-shot worker mode; see ServeIfWorker. The coordinator's
// default spawner re-executes the current binary with it set.
const EnvVar = "SBST_SHARD_WORKER"

// ServeIfWorker turns the current process into a one-shot shard worker
// when the SBST_SHARD_WORKER environment variable is set: it serves a
// single Request from stdin, writes the Response to stdout, and exits
// without returning. Call it first thing in main (and in TestMain for
// test binaries that shard), before flag parsing, so any binary the
// coordinator re-executes speaks the protocol regardless of its own CLI.
func ServeIfWorker() {
	if os.Getenv(EnvVar) == "" {
		return
	}
	if err := RunWorker(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "shard worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// RunWorker serves exactly one shard-grading request: decode a Request
// frame from r, grade the shard, write a Response frame to w. Worker-side
// grading problems (missing artifact, hash mismatch) travel back in
// Response.Err; the returned error covers only protocol/IO failure, where
// no response could be delivered at all.
func RunWorker(r io.Reader, w io.Writer) error {
	var req Request
	if err := ReadFrame(r, &req); err != nil {
		return err
	}
	return WriteFrame(w, grade(&req))
}

// grade runs one shard's fault simulation from a request.
func grade(req *Request) *Response {
	fail := func(format string, args ...any) *Response {
		return &Response{Shard: req.Shard, Err: fmt.Sprintf(format, args...)}
	}
	if h := fault.UniverseHash(req.Faults); h != req.UniverseHash {
		return fail("shard %d fault subset hashes to %s, request says %s", req.Shard, h, req.UniverseHash)
	}
	c, err := cache.Open(req.CacheDir)
	if err != nil {
		return fail("shard %d: %v", req.Shard, err)
	}
	cpu, err := c.GetCPU(req.CPUKey)
	if err != nil {
		return fail("shard %d: %v", req.Shard, err)
	}
	golden, err := c.GetGoldenArtifact(req.GoldenKey)
	if err != nil {
		return fail("shard %d: %v", req.Shard, err)
	}
	res, err := fault.Simulate(cpu, golden, req.Faults, fault.Options{
		Workers:   req.Workers,
		Engine:    req.Engine,
		LaneWords: req.LaneWords,
	})
	if err != nil {
		return fail("shard %d: %v", req.Shard, err)
	}
	return &Response{
		Shard:           req.Shard,
		UniverseHash:    req.UniverseHash,
		Cycles:          res.Cycles,
		DetectedAt:      res.DetectedAt,
		SignatureGroups: res.SignatureGroups,
		Stats:           res.Stats,
	}
}
