package shard

import (
	"fmt"
	"io"
	"net"
	"os"

	"repro/internal/cache"
	"repro/internal/fault"
)

// EnvVar is the environment marker that flips a binary embedding this
// package into one-shot worker mode; see ServeIfWorker. The coordinator's
// default spawner re-executes the current binary with it set.
const EnvVar = "SBST_SHARD_WORKER"

// EnvSession flips a binary into persistent session-worker mode: it
// serves one distributed-grading session (Host.ServeSession) on
// stdin/stdout until the coordinator hangs up. The exec transport of
// GradeDist sets it on the argv it spawns; for transports that do not
// propagate environment (a real ssh hop), sbst exposes the equivalent
// -shard-session flag instead.
const EnvSession = "SBST_SHARD_SESSION"

// EnvHostAddr flips a binary into TCP host-daemon mode: it listens on
// the given address, prints "shard host listening on ADDR" on stdout
// (ADDR resolved, so ":0" reports the picked port), and serves
// coordinator sessions until killed. The loopback e2e tests and
// BenchmarkDistributedGrade spawn their worker fleet this way.
const EnvHostAddr = "SBST_SHARD_HOSTD"

// EnvCacheDir names the worker-side artifact cache directory for the
// session and host-daemon modes; empty means a private temporary
// directory, removed when the process exits cleanly.
const EnvCacheDir = "SBST_SHARD_CACHE"

// ServeIfWorker turns the current process into a shard worker when one of
// the worker environment markers is set — a one-shot stdin/stdout worker
// (EnvVar), a persistent stdio session worker (EnvSession), or a TCP host
// daemon (EnvHostAddr) — and exits without returning. Call it first thing
// in main (and in TestMain for test binaries that shard), before flag
// parsing, so any binary the coordinator re-executes speaks the protocol
// regardless of its own CLI.
func ServeIfWorker() {
	if addr := os.Getenv(EnvHostAddr); addr != "" {
		h, cleanup, err := hostFromEnv()
		if err == nil {
			err = serveHostTCP(h, addr)
		}
		cleanup()
		exitWorker("shard host", err)
	}
	if os.Getenv(EnvSession) != "" {
		h, cleanup, err := hostFromEnv()
		if err == nil {
			err = h.ServeSession(os.Stdin, os.Stdout)
		}
		cleanup()
		exitWorker("shard session", err)
	}
	if os.Getenv(EnvVar) == "" {
		return
	}
	exitWorker("shard worker", RunWorker(os.Stdin, os.Stdout))
}

func exitWorker(mode string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", mode, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// ServeSessionStdio serves one coordinator session on stdin/stdout over a
// worker cache at dir (empty = a private temp directory, removed on
// return) — the target of `sbst -shard-session`, the explicit-flag
// equivalent of EnvSession for transports that do not propagate
// environment, like an ssh hop.
func ServeSessionStdio(dir string) error {
	h, cleanup, err := hostWithCache(dir)
	if err != nil {
		return err
	}
	defer cleanup()
	return h.ServeSession(os.Stdin, os.Stdout)
}

// ServeHostTCP listens on addr and serves coordinator sessions until the
// process is killed, over a worker cache at dir (empty = a private temp
// directory) — the target of `sbst -shard-serve`, the explicit-flag
// equivalent of EnvHostAddr.
func ServeHostTCP(addr, dir string) error {
	h, cleanup, err := hostWithCache(dir)
	if err != nil {
		return err
	}
	defer cleanup()
	return serveHostTCP(h, addr)
}

// hostFromEnv opens the worker's local artifact cache (EnvCacheDir, or a
// private temp directory) and wraps it in a Host.
func hostFromEnv() (*Host, func(), error) {
	return hostWithCache(os.Getenv(EnvCacheDir))
}

func hostWithCache(dir string) (*Host, func(), error) {
	cleanup := func() {}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "sbst-hostcache-")
		if err != nil {
			return nil, cleanup, err
		}
		dir = tmp
		cleanup = func() { os.RemoveAll(tmp) }
	}
	c, err := cache.Open(dir)
	if err != nil {
		return nil, cleanup, err
	}
	return NewHost(c), cleanup, nil
}

// serveHostTCP listens on addr and serves coordinator sessions forever,
// announcing the resolved address on stdout so a spawning parent can
// scrape the port from a ":0" listen.
func serveHostTCP(h *Host, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("shard host listening on %s\n", ln.Addr())
	return h.Serve(ln)
}

// RunWorker serves exactly one shard-grading request: decode a Request
// frame from r, grade the shard, write a Response frame to w. Worker-side
// grading problems (missing artifact, hash mismatch) travel back in
// Response.Err; the returned error covers only protocol/IO failure, where
// no response could be delivered at all.
func RunWorker(r io.Reader, w io.Writer) error {
	var req Request
	if err := ReadFrame(r, &req); err != nil {
		return err
	}
	return WriteFrame(w, grade(&req))
}

// grade runs one shard's fault simulation from a request.
func grade(req *Request) *Response {
	fail := func(format string, args ...any) *Response {
		return &Response{Shard: req.Shard, Err: fmt.Sprintf(format, args...)}
	}
	if h := fault.UniverseHash(req.Faults); h != req.UniverseHash {
		return fail("shard %d fault subset hashes to %s, request says %s", req.Shard, h, req.UniverseHash)
	}
	c, err := cache.Open(req.CacheDir)
	if err != nil {
		return fail("shard %d: %v", req.Shard, err)
	}
	cpu, err := c.GetCPU(req.CPUKey)
	if err != nil {
		return fail("shard %d: %v", req.Shard, err)
	}
	golden, err := c.GetGoldenArtifact(req.GoldenKey)
	if err != nil {
		return fail("shard %d: %v", req.Shard, err)
	}
	res, err := fault.Simulate(cpu, golden, req.Faults, fault.Options{
		Workers:   req.Workers,
		Engine:    req.Engine,
		LaneWords: req.LaneWords,
	})
	if err != nil {
		return fail("shard %d: %v", req.Shard, err)
	}
	return &Response{
		Shard:           req.Shard,
		UniverseHash:    req.UniverseHash,
		Cycles:          res.Cycles,
		DetectedAt:      res.DetectedAt,
		SignatureGroups: res.SignatureGroups,
		Stats:           res.Stats,
	}
}
