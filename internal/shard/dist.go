package shard

import (
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/plasma"
)

// Multi-host distributed grading coordinator. GradeDist extends the
// subprocess sharding of Grade across machines: each host runs a
// persistent worker session (remote.go) on its own artifact cache, the
// coordinator replicates the netlist/CPU/golden artifacts push-on-miss,
// partitions the pass plan by host capacity (weighted LPT), dispatches
// one shard per host, re-dispatches the longest-running outstanding
// shard to any host that goes idle (first bit-identical result wins),
// and merges with fault.MergeShards — the same never-a-partial-merge
// contract as Grade: a shard whose primary attempts fail twice with no
// duplicate to cover it fails the whole run.

// HostSpec describes one remote worker host.
type HostSpec struct {
	// Addr is the TCP address of a listening worker host ("host:port",
	// see EnvHostAddr / sbst -shard-serve); empty for exec hosts.
	Addr string
	// Argv, when non-empty, makes this an exec host: the argv is spawned
	// with the session environment marker set and the session runs over
	// its stdin/stdout. An ssh wrapper argv ("ssh h2 sbst -shard-session")
	// turns any reachable machine running the same binary into a worker —
	// environment does not cross ssh, hence the explicit flag on the
	// remote end.
	Argv []string
	// Weight is the host's relative grading capacity for the partitioner;
	// 0 means 1, or the calibrated value when DistOptions.Calibrate is
	// set. Only ratios matter.
	Weight float64

	// dial, when set (tests), opens the session transport directly —
	// an in-process Host over pipes, or a fault-injecting wrapper.
	dial func() (io.ReadWriteCloser, error)
}

// Name returns the host's display name for stats and errors.
func (s HostSpec) Name() string {
	if s.Addr != "" {
		return s.Addr
	}
	if len(s.Argv) > 0 {
		return strings.Join(s.Argv, " ")
	}
	return "(pipe)"
}

// ParseHosts parses a -hosts flag value: comma-separated host entries,
// each either a TCP address ("host:port") or an exec argv prefixed with
// "exec:" (fields split on whitespace), optionally suffixed with
// "=WEIGHT" giving the host's relative capacity:
//
//	10.0.0.2:7777=2,10.0.0.3:7777,exec:ssh h4 sbst -shard-session=1.5
//
// A suffix after the last '=' that does not parse as a positive float is
// part of the address/argv, not a weight.
func ParseHosts(spec string) ([]HostSpec, error) {
	var out []HostSpec
	for _, ent := range strings.Split(spec, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		var weight float64
		if i := strings.LastIndex(ent, "="); i >= 0 {
			if w, err := strconv.ParseFloat(ent[i+1:], 64); err == nil && w > 0 {
				weight, ent = w, ent[:i]
			}
		}
		if rest, ok := strings.CutPrefix(ent, "exec:"); ok {
			argv := strings.Fields(rest)
			if len(argv) == 0 {
				return nil, fmt.Errorf("shard: empty exec host in %q", ent)
			}
			out = append(out, HostSpec{Argv: argv, Weight: weight})
			continue
		}
		if !strings.Contains(ent, ":") {
			return nil, fmt.Errorf("shard: host %q has no port (use host:port, or exec:argv)", ent)
		}
		out = append(out, HostSpec{Addr: ent, Weight: weight})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("shard: empty hosts spec")
	}
	return out, nil
}

// DistOptions tunes a distributed grading run.
type DistOptions struct {
	// Hosts are the remote workers. A host that cannot be dialed is
	// recorded in the stats and excluded (the run degrades to the live
	// hosts); no reachable host at all is an error.
	Hosts []HostSpec
	// Timeout bounds each dispatch attempt's wall clock, including the
	// artifact pushes (0 = DefaultTimeout).
	Timeout time.Duration
	// Engine, LaneWords and Workers pass through to each host's
	// fault.Simulate, exactly as in Options.
	Engine    fault.Engine
	LaneWords int
	Workers   int
	// Sample and Seed apply fault.SampleFaults before partitioning.
	Sample int
	Seed   int64
	// Cache is the coordinator-side artifact store the replication pushes
	// read from. nil uses a private temporary directory; a persistent
	// cache plus persistent worker caches make re-grades ship zero bytes.
	Cache *cache.Cache
	// Calibrate derives the weight of hosts without an explicit spec
	// weight from a short calibration kernel run on each (weight =
	// cores/elapsed; explicit weights always win).
	Calibrate bool
}

// HostStats is one host's share of a distributed run. Unless noted, the
// fields are coordinator-observed.
type HostStats struct {
	Name   string
	Weight float64 // effective partition weight
	Cores  int     // worker-reported GOMAXPROCS
	// Err records a dial/hello failure; the host graded nothing.
	Err string
	// Shards is the number of primary shards the partitioner assigned;
	// Dispatches counts grade attempts actually sent (retries and
	// straggler duplicates included); Retries counts second attempts
	// after a failure; FailedAttempts counts attempts that failed;
	// Duplicates counts straggler re-dispatches run on this host.
	Shards, Dispatches, Retries, FailedAttempts, Duplicates int
	// ShipBytes/ShipNs measure artifact replication to this host (bytes
	// pushed and wall clock, 0/≈0 on a warm worker cache); QueueNs sums
	// the host's idle gaps between dispatches (scheduler wait); SimNs
	// sums the worker-reported simulation wall clock; WallNs sums whole
	// attempt wall clocks as the coordinator saw them.
	ShipBytes                      int64
	ShipNs, QueueNs, SimNs, WallNs int64
}

// DistStats describes a distributed grading run.
type DistStats struct {
	// Hosts has one entry per configured host, in DistOptions order,
	// including unreachable ones (Err set).
	Hosts []HostStats
	// Shards is the number of non-empty shards; Redispatched counts
	// straggler duplicates dispatched.
	Shards, Redispatched int
	// BytesShipped is the artifact bytes pushed into worker caches (each
	// content hash at most once per worker; 0 when every worker was warm).
	BytesShipped int64
	// ShipNs, PartitionNs and MergeNs break out the coordinator-side
	// overhead; Wall is the whole run.
	ShipNs, PartitionNs, MergeNs int64
	Wall                         time.Duration
}

// String renders the run as a compact per-host breakdown.
func (s *DistStats) String() string {
	var b strings.Builder
	live := 0
	for _, h := range s.Hosts {
		if h.Err == "" {
			live++
		}
	}
	fmt.Fprintf(&b, "hosts             %d live of %d\n", live, len(s.Hosts))
	fmt.Fprintf(&b, "shards            %d (%d straggler re-dispatches)\n", s.Shards, s.Redispatched)
	fmt.Fprintf(&b, "artifacts pushed  %d B in %.1fms\n", s.BytesShipped, float64(s.ShipNs)/1e6)
	fmt.Fprintf(&b, "partition / merge %.1fms / %.1fms\n", float64(s.PartitionNs)/1e6, float64(s.MergeNs)/1e6)
	fmt.Fprintf(&b, "wall clock        %.3fs", s.Wall.Seconds())
	for _, h := range s.Hosts {
		if h.Err != "" {
			fmt.Fprintf(&b, "\n  %-15s DOWN: %s", h.Name, h.Err)
			continue
		}
		fmt.Fprintf(&b, "\n  %-15s w=%.2f %d shards, %d dispatches (%d retries, %d dups, %d failed)",
			h.Name, h.Weight, h.Shards, h.Dispatches, h.Retries, h.Duplicates, h.FailedAttempts)
		fmt.Fprintf(&b, "\n  %-15s ship %d B/%.1fms, queue %.1fms, sim %.3fs, wall %.3fs", "",
			h.ShipBytes, float64(h.ShipNs)/1e6, float64(h.QueueNs)/1e6,
			float64(h.SimNs)/1e9, float64(h.WallNs)/1e9)
	}
	return b.String()
}

// GradeDist fault-simulates a fault list across remote worker hosts and
// merges the per-shard detections with fault.MergeShards. The merged
// DetectedAt, SignatureGroups and coverage are bit-identical to an
// unsharded fault.Simulate of the same options, exactly as with Grade —
// which is also what makes straggler duplicates safe: any host's result
// for a shard is the same bits, so the first one to arrive wins.
//
// Robustness: a failed dispatch attempt (transport error, timeout,
// worker-side error) is retried exactly once on the same host over a
// fresh session, with the artifacts force-re-pushed (healing a corrupt
// worker cache entry); a second failure fails the run unless a straggler
// duplicate of that shard completes elsewhere — a partial merge is never
// returned. Hosts that cannot be dialed at all are excluded up front and
// recorded in the stats.
func GradeDist(cpu *plasma.CPU, golden *plasma.Golden, faults []fault.Fault, opt DistOptions) (*fault.Result, *DistStats, error) {
	if len(opt.Hosts) == 0 {
		return nil, nil, fmt.Errorf("shard: GradeDist needs at least one host")
	}
	timeout := opt.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	faults = fault.SampleFaults(faults, opt.Sample, opt.Seed)
	start := time.Now()

	c := opt.Cache
	if c == nil {
		dir, err := os.MkdirTemp("", "sbst-dist-")
		if err != nil {
			return nil, nil, fmt.Errorf("shard: %w", err)
		}
		defer os.RemoveAll(dir)
		if c, err = cache.Open(dir); err != nil {
			return nil, nil, err
		}
	}
	cpuKey, _, err := c.PutCPU(cpu)
	if err != nil {
		return nil, nil, err
	}
	goldenKey, _, err := c.PutGolden(golden)
	if err != nil {
		return nil, nil, err
	}
	refs := []ArtifactRef{
		{Kind: cache.KindNetlist, Key: cpuKey},
		{Kind: cache.KindCPU, Key: cpuKey},
		{Kind: cache.KindGolden, Key: goldenKey},
	}
	// Pin the run's artifacts for its whole duration: a straggler or
	// retry may need to push them long after the first dispatch, and a
	// concurrent LRU sweep must not evict them mid-run.
	for _, ref := range refs {
		c.Pin(ref.Kind, ref.Key)
	}
	defer func() {
		for _, ref := range refs {
			c.Unpin(ref.Kind, ref.Key)
		}
	}()

	stats := &DistStats{Hosts: make([]HostStats, len(opt.Hosts))}
	conns := make([]*hostConn, len(opt.Hosts))
	var cwg sync.WaitGroup
	for i := range opt.Hosts {
		stats.Hosts[i].Name = opt.Hosts[i].Name()
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			hc, err := dialHost(opt.Hosts[i], timeout)
			if err != nil {
				stats.Hosts[i].Err = err.Error()
				return
			}
			conns[i] = hc
			stats.Hosts[i].Cores = hc.cores
		}(i)
	}
	cwg.Wait()
	var live []int // live[slot] = index into opt.Hosts/stats.Hosts
	for i, hc := range conns {
		if hc != nil {
			live = append(live, i)
		}
	}
	defer func() {
		for _, hc := range conns {
			if hc != nil {
				hc.shutdown()
			}
		}
	}()
	if len(live) == 0 {
		firstErr := ""
		for _, h := range stats.Hosts {
			if h.Err != "" {
				firstErr = h.Err
				break
			}
		}
		return nil, stats, fmt.Errorf("shard: no reachable hosts (first failure: %s)", firstErr)
	}

	// Effective weights: explicit spec weight, else calibration (when
	// requested), else 1.
	weights := make([]float64, len(live))
	if opt.Calibrate {
		var wg sync.WaitGroup
		for slot, hi := range live {
			if opt.Hosts[hi].Weight > 0 {
				continue
			}
			wg.Add(1)
			go func(slot, hi int) {
				defer wg.Done()
				hc := conns[hi]
				if err := hc.enc.WriteFrame(&sessionFrame{Kind: frameCalibrate}); err != nil {
					return // weight stays 0 → 1; the grade dispatch will surface the error
				}
				var f sessionFrame
				if err := hc.dec.ReadFrame(&f); err != nil || f.Kind != frameCalibrated || f.Ns <= 0 {
					return
				}
				cores := hc.cores
				if cores < 1 {
					cores = 1
				}
				weights[slot] = float64(cores) * 1e9 / float64(f.Ns)
			}(slot, hi)
		}
		wg.Wait()
	}
	for slot, hi := range live {
		if opt.Hosts[hi].Weight > 0 {
			weights[slot] = opt.Hosts[hi].Weight
		}
		if weights[slot] <= 0 {
			weights[slot] = 1
		}
		stats.Hosts[hi].Weight = weights[slot]
	}

	pStart := time.Now()
	parts, skipped, err := PartitionWeighted(cpu.Netlist, golden, faults, opt.Engine, opt.LaneWords, weights)
	stats.PartitionNs = time.Since(pStart).Nanoseconds()
	if err != nil {
		return nil, stats, err
	}
	var shards []*distShard
	for slot := range live {
		if len(parts[slot]) == 0 {
			continue
		}
		idxs := parts[slot]
		sub := make([]fault.Fault, len(idxs))
		for k, idx := range idxs {
			sub[k] = faults[idx]
		}
		id := len(shards)
		shards = append(shards, &distShard{
			id:   id,
			idxs: idxs,
			host: slot,
			req: &Request{
				Shard:        id,
				CPUKey:       cpuKey,
				GoldenKey:    goldenKey,
				Faults:       sub,
				UniverseHash: fault.UniverseHash(sub),
				Engine:       opt.Engine,
				LaneWords:    opt.LaneWords,
				Workers:      opt.Workers,
			},
			cancels: make(map[int]func()),
		})
		stats.Hosts[live[slot]].Shards++
	}
	stats.Shards = len(shards)

	g := &distGrader{
		run:     &distRun{shards: shards},
		conns:   conns,
		hosts:   opt.Hosts,
		live:    live,
		stats:   stats,
		cache:   c,
		refs:    refs,
		timeout: timeout,
	}
	if len(shards) > 0 {
		dispatchStart := time.Now()
		var wg sync.WaitGroup
		for slot := range live {
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				g.hostLoop(slot, dispatchStart)
			}(slot)
		}
		wg.Wait()
	}
	if err := g.run.failure(); err != nil {
		return nil, stats, err
	}

	results := make([]*fault.Result, len(shards))
	for i, s := range shards {
		if s.resp == nil {
			return nil, stats, fmt.Errorf("shard %d of %d: never graded", i, len(shards))
		}
		results[i] = scatter(faults, s.idxs, golden.Cycles, s.resp.DetectedAt, s.resp.SignatureGroups, s.resp.Stats)
	}
	var merged *fault.Result
	if len(results) == 0 {
		// Every fault was provably undetectable (empty pass plan): the
		// merged result is the all-undetected scatter, same as Simulate.
		merged = scatter(faults, nil, golden.Cycles, nil, nil, fault.SimStats{})
	} else {
		mStart := time.Now()
		merged, err = fault.MergeShards(results...)
		stats.MergeNs = time.Since(mStart).Nanoseconds()
		if err != nil {
			return nil, stats, err
		}
	}
	stats.Wall = time.Since(start)
	for _, hi := range live {
		h := &stats.Hosts[hi]
		stats.BytesShipped += h.ShipBytes
		stats.ShipNs += h.ShipNs
		stats.Redispatched += h.Duplicates
	}

	// Whole-run stats the per-shard sums cannot provide, mirroring Grade.
	merged.Stats.GoldenDenseBytes = golden.DenseStateBytes()
	merged.Stats.GoldenStoredBytes = golden.StoredStateBytes()
	merged.Stats.TraceDenseBytes = golden.DenseTraceBytes()
	merged.Stats.TraceStoredBytes = golden.StoredTraceBytes()
	merged.Stats.SkippedFaults += skipped
	merged.Stats.ShardBytesShipped = stats.BytesShipped
	merged.Stats.DistHosts = int64(len(live))
	merged.Stats.DistRedispatched = int64(stats.Redispatched)
	merged.Stats.DistShipNs = stats.ShipNs
	merged.Stats.DistMergeNs = stats.MergeNs
	for _, hi := range live {
		h := &stats.Hosts[hi]
		merged.Stats.ShardsLaunched += int64(h.Dispatches)
		merged.Stats.ShardsRetried += int64(h.Retries)
		merged.Stats.ShardsFailed += int64(h.FailedAttempts)
		merged.Stats.ShardWallNs += h.WallNs
	}
	return merged, stats, nil
}

// distShard is one unit of dispatch: a fault-index subset bound to a
// primary host, with the scheduling state the straggler and failure
// machinery needs.
type distShard struct {
	id   int
	idxs []int
	host int // primary live-host slot
	req  *Request

	// All fields below are guarded by distRun.mu.
	started      bool
	startedAt    time.Time
	done         bool
	resp         *Response
	dup          bool // a straggler duplicate has been dispatched
	primTerminal bool // primary host exhausted its attempts
	dupTerminal  bool
	primErr      error
	cancels      map[int]func() // in-flight attempt cancels, by token
	nextToken    int
}

// distRun is the shared scheduler state of one GradeDist call.
type distRun struct {
	mu     sync.Mutex
	shards []*distShard
	err    error
}

func (d *distRun) failure() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

// next hands a host its next unit of work: its own unstarted primary
// shards first, then — once idle — a straggler duplicate of the
// longest-running outstanding shard no one has duplicated yet. Returns
// nil when nothing useful remains for this host.
func (d *distRun) next(slot int) (s *distShard, dup bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return nil, false
	}
	for _, s := range d.shards {
		if s.host == slot && !s.started {
			s.started = true
			s.startedAt = time.Now()
			return s, false
		}
	}
	var pick *distShard
	for _, s := range d.shards {
		if s.started && !s.done && !s.dup && !s.primTerminal && s.host != slot {
			if pick == nil || s.startedAt.Before(pick.startedAt) {
				pick = s
			}
		}
	}
	if pick != nil {
		pick.dup = true
		return pick, true
	}
	return nil, false
}

// markDone records a shard's first successful response and cancels the
// shard's other in-flight attempts (their hosts move on to new work).
// Returns false when the shard was already completed by a racing
// duplicate — the results are bit-identical, so the loser is dropped.
func (d *distRun) markDone(s *distShard, resp *Response) bool {
	d.mu.Lock()
	if s.done || d.err != nil {
		d.mu.Unlock()
		return false
	}
	s.done = true
	s.resp = resp
	cancels := make([]func(), 0, len(s.cancels))
	for _, cancel := range s.cancels {
		cancels = append(cancels, cancel)
	}
	d.mu.Unlock()
	for _, cancel := range cancels {
		go cancel()
	}
	return true
}

// reportTerminal records that one side (primary after both attempts, or
// a duplicate after its single attempt) has given up on a shard. The
// shard — and with it the run — is lost when the primary is terminal and
// no duplicate is left to cover it; a partial merge is never an option.
func (d *distRun) reportTerminal(s *distShard, dup bool, err error) {
	d.mu.Lock()
	if s.done {
		d.mu.Unlock()
		return
	}
	if dup {
		s.dupTerminal = true
	} else {
		s.primTerminal = true
		s.primErr = err
	}
	lost := s.primTerminal && (!s.dup || s.dupTerminal)
	var cancels []func()
	if lost && d.err == nil {
		reason := s.primErr
		if reason == nil {
			reason = err
		}
		d.err = fmt.Errorf("shard %d of %d: %w", s.id, len(d.shards), reason)
		// Abort everything in flight: the run cannot succeed anymore.
		for _, o := range d.shards {
			for _, cancel := range o.cancels {
				cancels = append(cancels, cancel)
			}
		}
	}
	d.mu.Unlock()
	for _, cancel := range cancels {
		go cancel()
	}
}

// finished reports whether dispatching this shard has become pointless.
func (d *distRun) finished(s *distShard) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return s.done || d.err != nil
}

func (d *distRun) registerCancel(s *distShard, cancel func()) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	tok := s.nextToken
	s.nextToken++
	s.cancels[tok] = cancel
	return tok
}

func (d *distRun) unregisterCancel(s *distShard, tok int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(s.cancels, tok)
}

// distGrader bundles the per-run constants of the dispatch machinery.
type distGrader struct {
	run     *distRun
	conns   []*hostConn // by opt.Hosts index; mutated only by the owning host loop
	hosts   []HostSpec
	live    []int
	stats   *DistStats
	cache   *cache.Cache
	refs    []ArtifactRef
	timeout time.Duration
}

// hostLoop drives one live host: primary shards, then straggler duty,
// until no work remains or the run has failed. Each host's loop is the
// only goroutine touching its connection and its HostStats entry.
func (g *distGrader) hostLoop(slot int, dispatchStart time.Time) {
	hs := &g.stats.Hosts[g.live[slot]]
	lastBusy := dispatchStart
	for {
		s, dup := g.run.next(slot)
		if s == nil {
			return
		}
		hs.QueueNs += time.Since(lastBusy).Nanoseconds()
		if dup {
			hs.Duplicates++
		}
		g.runShard(slot, s, dup)
		lastBusy = time.Now()
	}
}

// runShard runs one shard on one host: a dispatch attempt, then — for
// primary dispatches — one retry over a fresh session with the
// artifacts force-pushed. Duplicates get a single attempt; their
// failures only matter if the primary is already terminal.
func (g *distGrader) runShard(slot int, s *distShard, dup bool) {
	hs := &g.stats.Hosts[g.live[slot]]
	attempts := 2
	if dup {
		attempts = 1
	}
	var firstErr error
	for a := 0; a < attempts; a++ {
		if g.run.finished(s) {
			return
		}
		hs.Dispatches++
		resp, err := g.attempt(slot, s, a > 0)
		if err == nil {
			hs.SimNs += resp.WallNs
			g.run.markDone(s, resp)
			return
		}
		// The session is mid-protocol in an unknown state (or already
		// torn down by a cancel): drop it; the next attempt re-dials.
		g.dropConn(slot)
		if g.run.finished(s) {
			return // cancelled because a duplicate won, or the run failed
		}
		hs.FailedAttempts++
		if a+1 < attempts {
			firstErr = err
			hs.Retries++
			continue
		}
		if dup {
			g.run.reportTerminal(s, true, err)
		} else {
			g.run.reportTerminal(s, false, fmt.Errorf("worker failed twice: attempt 1: %v; attempt 2 (retry): %v", firstErr, err))
		}
		return
	}
}

// conn returns the host's live session, dialing a fresh one if the
// previous attempt tore it down.
func (g *distGrader) conn(slot int) (*hostConn, error) {
	if g.conns[g.live[slot]] == nil {
		hc, err := dialHost(g.hosts[g.live[slot]], g.timeout)
		if err != nil {
			return nil, err
		}
		g.conns[g.live[slot]] = hc
	}
	return g.conns[g.live[slot]], nil
}

func (g *distGrader) dropConn(slot int) {
	if hc := g.conns[g.live[slot]]; hc != nil {
		hc.close()
		g.conns[g.live[slot]] = nil
	}
}

// attempt drives one dispatch through the session protocol under the
// attempt deadline: replicate missing artifacts (all of them when force
// is set — the retry path, healing corrupt worker entries), then grade.
func (g *distGrader) attempt(slot int, s *distShard, force bool) (*Response, error) {
	hs := &g.stats.Hosts[g.live[slot]]
	hc, err := g.conn(slot)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	tok := g.run.registerCancel(s, hc.close)
	defer g.run.unregisterCancel(s, tok)
	var timedOut atomic.Bool
	timer := time.AfterFunc(g.timeout, func() {
		timedOut.Store(true)
		hc.close()
	})
	defer timer.Stop()
	fail := func(err error) (*Response, error) {
		if timedOut.Load() {
			return nil, fmt.Errorf("timed out after %v: %w", g.timeout, err)
		}
		return nil, err
	}

	shipStart := time.Now()
	want := g.refs
	if !force {
		if err := hc.enc.WriteFrame(&sessionFrame{Kind: frameHave, Refs: g.refs}); err != nil {
			return fail(err)
		}
		var wf sessionFrame
		if err := hc.dec.ReadFrame(&wf); err != nil {
			return fail(err)
		}
		if wf.Kind != frameWant {
			return fail(fmt.Errorf("shard: want frame has kind %d", wf.Kind))
		}
		want = wf.Refs
	}
	for _, ref := range want {
		data, err := g.cache.ReadArtifact(ref.Kind, ref.Key)
		if err != nil {
			return fail(err)
		}
		if err := hc.enc.WriteFrame(&sessionFrame{Kind: framePut, Ref: ref, Data: data}); err != nil {
			return fail(err)
		}
		var ack sessionFrame
		if err := hc.dec.ReadFrame(&ack); err != nil {
			return fail(err)
		}
		if ack.Kind != framePutOK {
			return fail(fmt.Errorf("shard: put ack has kind %d", ack.Kind))
		}
		if ack.Err != "" {
			return fail(fmt.Errorf("shard: host rejected %s %s: %s", ref.Kind, ref.Key, ack.Err))
		}
		hs.ShipBytes += int64(len(data))
	}
	hs.ShipNs += time.Since(shipStart).Nanoseconds()

	if err := hc.enc.WriteFrame(&sessionFrame{Kind: frameGrade, Req: s.req}); err != nil {
		return fail(err)
	}
	var rf sessionFrame
	if err := hc.dec.ReadFrame(&rf); err != nil {
		return fail(err)
	}
	if rf.Kind != frameResult || rf.Resp == nil {
		return fail(fmt.Errorf("shard: result frame has kind %d", rf.Kind))
	}
	if rf.Resp.Err != "" {
		return nil, fmt.Errorf("worker error: %s", rf.Resp.Err)
	}
	if err := checkResponse(s.req, rf.Resp); err != nil {
		return nil, err
	}
	hs.WallNs += time.Since(start).Nanoseconds()
	return rf.Resp, nil
}

// checkResponse validates a worker's response against its request — the
// shared contract of the one-shot worker path (runAttempt) and the
// session path (attempt).
func checkResponse(req *Request, resp *Response) error {
	if resp.Shard != req.Shard {
		return fmt.Errorf("response for shard %d, want %d", resp.Shard, req.Shard)
	}
	if resp.UniverseHash != req.UniverseHash {
		return fmt.Errorf("response universe %s, want %s", resp.UniverseHash, req.UniverseHash)
	}
	if len(resp.DetectedAt) != len(req.Faults) || len(resp.SignatureGroups) != len(req.Faults) {
		return fmt.Errorf("response carries %d detections and %d signatures for %d faults",
			len(resp.DetectedAt), len(resp.SignatureGroups), len(req.Faults))
	}
	return nil
}

// hostConn is the coordinator's side of one worker session.
type hostConn struct {
	enc   *Encoder
	dec   *Decoder
	cores int
	// close hard-stops the transport (idempotent; pending reads fail) —
	// the cancel/timeout path. shutdown is the clean end-of-run path.
	close    func()
	shutdown func()
}

// dialHost opens a session to a host over its transport and consumes the
// hello frame, under the attempt timeout so a wedged host cannot stall
// the dial phase.
func dialHost(spec HostSpec, timeout time.Duration) (*hostConn, error) {
	var rw io.ReadWriter
	var closeFn, shutdownFn func()
	switch {
	case spec.dial != nil:
		rwc, err := spec.dial()
		if err != nil {
			return nil, fmt.Errorf("shard: host %s: %w", spec.Name(), err)
		}
		var once sync.Once
		closeFn = func() { once.Do(func() { rwc.Close() }) }
		shutdownFn = closeFn
		rw = rwc
	case len(spec.Argv) > 0:
		w, err := startExecEnv([]string{EnvSession + "=1"}, spec.Argv[0], spec.Argv[1:]...)
		if err != nil {
			return nil, fmt.Errorf("shard: host %s: %w", spec.Name(), err)
		}
		closeFn = func() { w.Kill(); _ = w.Wait() }
		shutdownFn = func() {
			// Close the request stream so the worker exits cleanly (and
			// removes its temp cache); escalate to Kill if it lingers.
			_ = w.CloseWrite()
			t := time.AfterFunc(5*time.Second, w.Kill)
			_ = w.Wait()
			t.Stop()
		}
		rw = w
	default:
		conn, err := net.Dial("tcp", spec.Addr)
		if err != nil {
			return nil, fmt.Errorf("shard: host %s: %w", spec.Name(), err)
		}
		var once sync.Once
		closeFn = func() { once.Do(func() { conn.Close() }) }
		shutdownFn = closeFn
		rw = conn
	}
	hc := &hostConn{enc: NewEncoder(rw), dec: NewDecoder(rw), close: closeFn, shutdown: shutdownFn}
	timer := time.AfterFunc(timeout, closeFn)
	defer timer.Stop()
	var hello sessionFrame
	if err := hc.dec.ReadFrame(&hello); err != nil {
		closeFn()
		return nil, fmt.Errorf("shard: host %s hello: %w", spec.Name(), err)
	}
	if hello.Kind != frameHello || hello.Proto != sessionProto {
		closeFn()
		return nil, fmt.Errorf("shard: host %s speaks session protocol %d, want %d", spec.Name(), hello.Proto, sessionProto)
	}
	hc.cores = hello.Cores
	return hc, nil
}
