package shard

import (
	"sort"

	"repro/internal/fault"
	"repro/internal/gate"
	"repro/internal/plasma"
)

// Partition deterministically splits a fault list into at most n index
// groups for sharded grading. It reuses the cone-aware, activation-sorted
// pass packing of internal/fault — shards receive whole passes, so the
// cache-friendly grouping (faults of one pass share fanout-cone regions
// and activation windows) survives the split — and balances the shards by
// the width policy's per-pass cost estimate (longest-processing-time
// greedy: passes in descending cost order, each to the currently
// lightest shard, ties to the lowest shard index).
//
// Never-activated faults appear in no group: they are provably
// undetectable by this golden run, and an unsharded Simulate would skip
// them identically (their count is the second return, for stats). Groups
// can come back empty when there are fewer passes than shards.
func Partition(n *gate.Netlist, golden *plasma.Golden, faults []fault.Fault, engine fault.Engine, laneWords, shards int) ([][]int, int64, error) {
	if shards < 1 {
		shards = 1
	}
	return PartitionWeighted(n, golden, faults, engine, laneWords, make([]float64, shards))
}

// PartitionWeighted is Partition with one shard per entry of weights, each
// balanced by host capacity: a pass group goes to the shard minimizing
// (load+cost)/weight, i.e. the one that would finish its assignment
// soonest if it processes cost at `weight` units per second. Weights <= 0
// count as 1 (so a zero-filled slice degenerates to the uniform split),
// only ratios matter, and ties go to the lowest shard index — the
// partition is a pure function of (plan, weights), deterministic across
// coordinator runs.
func PartitionWeighted(n *gate.Netlist, golden *plasma.Golden, faults []fault.Fault, engine fault.Engine, laneWords int, weights []float64) ([][]int, int64, error) {
	groups, skipped, err := fault.PlanPasses(n, golden, faults, engine, laneWords)
	if err != nil {
		return nil, 0, err
	}
	shards := len(weights)
	if shards < 1 {
		shards = 1
	}
	w := make([]float64, shards)
	for i := range w {
		w[i] = 1
		if i < len(weights) && weights[i] > 0 {
			w[i] = weights[i]
		}
	}
	order := make([]int, len(groups))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return groups[order[a]].Cost > groups[order[b]].Cost
	})
	out := make([][]int, shards)
	load := make([]float64, shards)
	for _, gi := range order {
		cost := groups[gi].Cost
		best := 0
		bestDone := (load[0] + cost) / w[0]
		for s := 1; s < shards; s++ {
			if done := (load[s] + cost) / w[s]; done < bestDone {
				best, bestDone = s, done
			}
		}
		out[best] = append(out[best], groups[gi].Idxs...)
		load[best] += cost
	}
	return out, skipped, nil
}
