package shard

import (
	"math"
	"sort"

	"repro/internal/fault"
	"repro/internal/gate"
	"repro/internal/plasma"
)

// Partition deterministically splits a fault list into at most n index
// groups for sharded grading. It reuses the cone-aware, activation-sorted
// pass packing of internal/fault — shards receive contiguous runs of the
// packing order, so the cache-friendly grouping (faults of one pass share
// fanout-cone regions and activation windows) largely survives the split —
// and balances the shards by the width policy's cost estimate
// (longest-processing-time greedy: dispatch units in descending cost
// order, each to the currently lightest shard, ties to the lowest shard
// index).
//
// A dispatch unit is a whole pass group when the plan has enough of them,
// but a group whose estimated cost exceeds a shard's fair share is split
// into contiguous sub-ranges first. At 64-word lanes one pass carries up
// to 4096 faulty machines, so a modest sample often plans as a single
// group; handing out whole passes would then serialize the cluster on one
// host. Each worker re-packs its fault subset into full passes locally
// (workers run PlanPasses over what they receive), so splitting costs at
// most a few partially-filled passes, not lost pass structure.
//
// Never-activated faults appear in no group: they are provably
// undetectable by this golden run, and an unsharded Simulate would skip
// them identically (their count is the second return, for stats). Groups
// can still come back empty when there are fewer faults than shards.
func Partition(n *gate.Netlist, golden *plasma.Golden, faults []fault.Fault, engine fault.Engine, laneWords, shards int) ([][]int, int64, error) {
	if shards < 1 {
		shards = 1
	}
	return PartitionWeighted(n, golden, faults, engine, laneWords, make([]float64, shards))
}

// PartitionWeighted is Partition with one shard per entry of weights, each
// balanced by host capacity: a dispatch unit goes to the shard minimizing
// (load+cost)/weight, i.e. the one that would finish its assignment
// soonest if it processes cost at `weight` units per second. Weights <= 0
// count as 1 (so a zero-filled slice degenerates to the uniform split),
// only ratios matter, and ties go to the lowest shard index — the
// partition is a pure function of (plan, weights), deterministic across
// coordinator runs.
func PartitionWeighted(n *gate.Netlist, golden *plasma.Golden, faults []fault.Fault, engine fault.Engine, laneWords int, weights []float64) ([][]int, int64, error) {
	groups, skipped, err := fault.PlanPasses(n, golden, faults, engine, laneWords)
	if err != nil {
		return nil, 0, err
	}
	shards := len(weights)
	if shards < 1 {
		shards = 1
	}
	w := make([]float64, shards)
	for i := range w {
		w[i] = 1
		if i < len(weights) && weights[i] > 0 {
			w[i] = weights[i]
		}
	}
	units := splitGroups(groups, shards)
	order := make([]int, len(units))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return units[order[a]].cost > units[order[b]].cost
	})
	out := make([][]int, shards)
	load := make([]float64, shards)
	for _, ui := range order {
		cost := units[ui].cost
		best := 0
		bestDone := (load[0] + cost) / w[0]
		for s := 1; s < shards; s++ {
			if done := (load[s] + cost) / w[s]; done < bestDone {
				best, bestDone = s, done
			}
		}
		out[best] = append(out[best], units[ui].idxs...)
		load[best] += cost
	}
	return out, skipped, nil
}

// distUnit is one unit of the LPT greedy: a contiguous slice of one pass
// group's packing order with its share of the group's estimated cost.
type distUnit struct {
	idxs []int
	cost float64
}

// splitGroups turns the pass plan into dispatch units, cutting any group
// whose cost exceeds unitCap — a quarter of a shard's fair share of the
// total — into equal contiguous sub-ranges. The cap gives the greedy at
// least ~4 units per shard to balance with whenever splitting is needed
// at all, while leaving plans that already have many small groups
// untouched. PassGroup.Cost is the per-fault model cost times the fault
// count, so equal fault slices carry equal cost shares.
func splitGroups(groups []fault.PassGroup, shards int) []distUnit {
	var total float64
	for i := range groups {
		total += groups[i].Cost
	}
	unitCap := total / float64(4*shards)
	units := make([]distUnit, 0, len(groups))
	for i := range groups {
		g := &groups[i]
		if g.Cost <= unitCap || len(g.Idxs) < 2 {
			units = append(units, distUnit{idxs: g.Idxs, cost: g.Cost})
			continue
		}
		parts := int(math.Ceil(g.Cost / unitCap))
		if parts > len(g.Idxs) {
			parts = len(g.Idxs)
		}
		per := g.Cost / float64(parts)
		for p := 0; p < parts; p++ {
			lo := p * len(g.Idxs) / parts
			hi := (p + 1) * len(g.Idxs) / parts
			units = append(units, distUnit{idxs: g.Idxs[lo:hi], cost: per})
		}
	}
	return units
}
