package shard

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/gate"
	"repro/internal/plasma"
	"repro/internal/synth"
)

// TestMain makes this test binary a valid shard worker for SelfSpawner:
// when the coordinator re-executes it with the worker marker set,
// ServeIfWorker serves the request and exits before any test runs.
func TestMain(m *testing.M) {
	ServeIfWorker()
	os.Exit(m.Run())
}

var testCPU *plasma.CPU

func getCPU(t *testing.T) *plasma.CPU {
	t.Helper()
	if testCPU == nil {
		c, err := plasma.Build(synth.NativeLib{})
		if err != nil {
			t.Fatal(err)
		}
		testCPU = c
	}
	return testCPU
}

const testProgram = `
	li $t0, 0x1000
	li $t1, 0xa5a5
	sw $t1, 0($t0)
	lw $t2, 0($t0)
	addu $t3, $t2, $t1
	sw $t3, 4($t0)
	xor $t4, $t2, $t1
	sw $t4, 8($t0)
`

func captureTestGolden(t *testing.T, cycles int) *plasma.Golden {
	t.Helper()
	prog, err := asm.Assemble(testProgram+"\nh__: j h__\nnop\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := plasma.CaptureGolden(getCPU(t), prog, cycles)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testSample(t *testing.T) int {
	if testing.Short() {
		return 256
	}
	return 2048
}

// requireSameResult asserts two results carry bit-identical outcomes.
func requireSameResult(t *testing.T, got, want *fault.Result) {
	t.Helper()
	if got.Cycles != want.Cycles {
		t.Fatalf("cycles = %d, want %d", got.Cycles, want.Cycles)
	}
	if len(got.Faults) != len(want.Faults) {
		t.Fatalf("fault count = %d, want %d", len(got.Faults), len(want.Faults))
	}
	for i := range want.Faults {
		if got.Faults[i].Site != want.Faults[i].Site {
			t.Fatalf("fault %d is %v, want %v", i, got.Faults[i].Site, want.Faults[i].Site)
		}
		if got.DetectedAt[i] != want.DetectedAt[i] {
			t.Fatalf("fault %d detected at %d, want %d", i, got.DetectedAt[i], want.DetectedAt[i])
		}
		if got.SignatureGroups[i] != want.SignatureGroups[i] {
			t.Fatalf("fault %d signature group %d, want %d", i, got.SignatureGroups[i], want.SignatureGroups[i])
		}
	}
	if got.Coverage() != want.Coverage() {
		t.Fatalf("coverage %v, want %v", got.Coverage(), want.Coverage())
	}
}

func TestFrameRoundTrip(t *testing.T) {
	req := &Request{
		Shard:        3,
		CacheDir:     "/tmp/x",
		CPUKey:       "cpu-abc",
		GoldenKey:    "golden-def",
		Faults:       []fault.Fault{{Site: gate.FaultSite{Gate: 7, Pin: 1, Stuck: true}, Comp: 2, Equiv: 4}},
		UniverseHash: "deadbeef",
		Engine:       fault.EngineOblivious,
		LaneWords:    8,
		Workers:      2,
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, req); err != nil {
		t.Fatal(err)
	}
	frame := append([]byte(nil), buf.Bytes()...)
	var got Request
	if err := ReadFrame(&buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.Shard != req.Shard || got.UniverseHash != req.UniverseHash ||
		len(got.Faults) != 1 || got.Faults[0] != req.Faults[0] ||
		got.Engine != req.Engine || got.LaneWords != req.LaneWords || got.Workers != req.Workers {
		t.Fatalf("round trip mangled the request: %+v vs %+v", got, req)
	}

	// A stream that ends mid-header and one that ends mid-payload are both
	// explicit truncation errors, not bare EOFs or decode garbage.
	for _, cut := range []int{4, len(frame) - 3} {
		var r Request
		err := ReadFrame(bytes.NewReader(frame[:cut]), &r)
		if err == nil || !strings.Contains(err.Error(), "truncated") {
			t.Errorf("cut at %d: err = %v, want truncation", cut, err)
		}
	}

	// A flipped payload bit fails the CRC before gob ever sees it.
	corrupt := append([]byte(nil), frame...)
	corrupt[len(corrupt)-1] ^= 0x40
	var r Request
	if err := ReadFrame(bytes.NewReader(corrupt), &r); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Errorf("corrupted payload: err = %v, want CRC mismatch", err)
	}

	// An absurd declared length is rejected without allocating it.
	huge := append([]byte(nil), frame...)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0xff
	if err := ReadFrame(bytes.NewReader(huge), &r); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Errorf("oversized frame: err = %v, want limit error", err)
	}
}

func TestPartitionDeterministicAndComplete(t *testing.T) {
	cpu := getCPU(t)
	g := captureTestGolden(t, 60)
	faults := fault.SampleFaults(fault.Universe(cpu.Netlist), testSample(t), 1)

	for _, shards := range []int{1, 2, 3, 7} {
		first, skipped, err := Partition(cpu.Netlist, g, faults, fault.EngineEvent, 0, shards)
		if err != nil {
			t.Fatal(err)
		}
		if len(first) != shards {
			t.Fatalf("%d shards requested, %d groups returned", shards, len(first))
		}
		seen := make(map[int]int)
		total := 0
		for _, grp := range first {
			for _, idx := range grp {
				if idx < 0 || idx >= len(faults) {
					t.Fatalf("index %d out of range", idx)
				}
				seen[idx]++
				total++
			}
		}
		for idx, n := range seen {
			if n != 1 {
				t.Fatalf("fault %d assigned to %d shards", idx, n)
			}
		}
		if int64(total)+skipped != int64(len(faults)) {
			t.Fatalf("%d assigned + %d skipped != %d faults", total, skipped, len(faults))
		}
		// The partition is a pure function of its inputs.
		second, _, err := Partition(cpu.Netlist, g, faults, fault.EngineEvent, 0, shards)
		if err != nil {
			t.Fatal(err)
		}
		for s := range first {
			if len(first[s]) != len(second[s]) {
				t.Fatalf("shard %d changed size between runs", s)
			}
			for k := range first[s] {
				if first[s][k] != second[s][k] {
					t.Fatalf("shard %d index %d changed between runs", s, k)
				}
			}
		}
	}
}

// TestGradeEquivalentToSimulate is the core acceptance property: a sharded
// run is bit-identical to the unsharded fault.Simulate of the same options,
// for several shard counts.
func TestGradeEquivalentToSimulate(t *testing.T) {
	cpu := getCPU(t)
	g := captureTestGolden(t, 80)
	all := fault.Universe(cpu.Netlist)
	opt := fault.Options{Sample: testSample(t), Seed: 7}
	want, err := fault.Simulate(cpu, g, all, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3, 4, 5} {
		got, stats, err := Grade(cpu, g, all, Options{
			Shards: shards,
			Sample: opt.Sample,
			Seed:   opt.Seed,
			Spawn:  InProcSpawner(),
		})
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		requireSameResult(t, got, want)
		if stats.Shards < 1 || stats.Shards > shards {
			t.Fatalf("%d shards requested, stats says %d graded", shards, stats.Shards)
		}
		if stats.Launched < stats.Shards {
			t.Fatalf("launched %d workers for %d shards", stats.Launched, stats.Shards)
		}
		if stats.Failed != 0 || stats.Retried != 0 || stats.Fallbacks != 0 {
			t.Fatalf("healthy run reported failures: %+v", stats)
		}
		if got.Stats.ShardsLaunched != int64(stats.Launched) {
			t.Fatalf("SimStats counter %d != coordinator counter %d", got.Stats.ShardsLaunched, stats.Launched)
		}
	}
}

// TestGradeSubprocess exercises the real process boundary: the default
// SelfSpawner re-executes this test binary (see TestMain) as the worker.
func TestGradeSubprocess(t *testing.T) {
	cpu := getCPU(t)
	g := captureTestGolden(t, 60)
	all := fault.Universe(cpu.Netlist)
	opt := fault.Options{Sample: 256, Seed: 3}
	want, err := fault.Simulate(cpu, g, all, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := Grade(cpu, g, all, Options{Shards: 2, Sample: opt.Sample, Seed: opt.Seed})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, got, want)
	if stats.Fallbacks != 0 {
		t.Fatalf("subprocess run fell back in-process: %+v", stats)
	}
	if stats.BytesShipped <= 0 {
		t.Fatalf("no artifact bytes shipped into a fresh cache: %+v", stats)
	}
}

func TestGradeShipsArtifactsOnce(t *testing.T) {
	cpu := getCPU(t)
	g := captureTestGolden(t, 60)
	all := fault.Universe(cpu.Netlist)
	disk, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Shards: 2, Sample: 128, Seed: 1, Cache: disk, Spawn: InProcSpawner()}
	_, first, err := Grade(cpu, g, all, opt)
	if err != nil {
		t.Fatal(err)
	}
	if first.BytesShipped <= 0 {
		t.Fatalf("first run shipped %d bytes, want > 0", first.BytesShipped)
	}
	_, second, err := Grade(cpu, g, all, opt)
	if err != nil {
		t.Fatal(err)
	}
	if second.BytesShipped != 0 {
		t.Fatalf("second run re-shipped %d bytes into a warm cache", second.BytesShipped)
	}
}

// fakeWorker misbehaves on demand: it swallows the request and serves out
// as its response stream (nil = hang until killed), then reports waitErr.
type fakeWorker struct {
	out     io.Reader
	waitErr error

	killed   chan struct{}
	killOnce sync.Once
}

func newFakeWorker(out io.Reader, waitErr error) *fakeWorker {
	return &fakeWorker{out: out, waitErr: waitErr, killed: make(chan struct{})}
}

func (w *fakeWorker) Write(p []byte) (int, error) { return len(p), nil }
func (w *fakeWorker) Read(p []byte) (int, error) {
	if w.out == nil {
		<-w.killed
		return 0, fmt.Errorf("worker killed")
	}
	return w.out.Read(p)
}
func (w *fakeWorker) CloseWrite() error { return nil }
func (w *fakeWorker) Wait() error       { return w.waitErr }
func (w *fakeWorker) Kill()             { w.killOnce.Do(func() { close(w.killed) }) }

// failFirstSpawner hands out bad exactly once — to whichever shard spawns
// first — and real in-process workers afterwards.
func failFirstSpawner(bad Worker) Spawner {
	good := InProcSpawner()
	var mu sync.Mutex
	used := false
	return func() (Worker, error) {
		mu.Lock()
		defer mu.Unlock()
		if !used {
			used = true
			return bad, nil
		}
		return good()
	}
}

// validResponseFrame encodes a well-formed (if empty) Response frame, for
// workers that speak the protocol but then exit nonzero.
func validResponseFrame(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Response{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// gradeInjected runs a 2-shard grading where the first spawned worker is
// bad, and asserts the coordinator retried exactly once and converged to
// the unsharded result.
func gradeInjected(t *testing.T, bad Worker, timeout time.Duration) {
	t.Helper()
	cpu := getCPU(t)
	g := captureTestGolden(t, 60)
	all := fault.Universe(cpu.Netlist)
	opt := fault.Options{Sample: 128, Seed: 5}
	want, err := fault.Simulate(cpu, g, all, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := Grade(cpu, g, all, Options{
		Shards:  2,
		Sample:  opt.Sample,
		Seed:    opt.Seed,
		Timeout: timeout,
		Spawn:   failFirstSpawner(bad),
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, got, want)
	if stats.Failed != 1 || stats.Retried != 1 {
		t.Fatalf("want exactly one failed attempt and one retry, got %+v", stats)
	}
	if stats.Launched != stats.Shards+1 {
		t.Fatalf("launched %d workers for %d shards + 1 retry", stats.Launched, stats.Shards)
	}
	if stats.Fallbacks != 0 {
		t.Fatalf("retry path took the spawner-failure fallback: %+v", stats)
	}
	if got.Stats.ShardsRetried != 1 || got.Stats.ShardsFailed != 1 {
		t.Fatalf("SimStats shard counters: %+v", got.Stats)
	}
}

func TestWorkerExitsNonzero(t *testing.T) {
	// The worker answers correctly but exits nonzero: its result cannot be
	// trusted, so the attempt fails and the retry converges.
	bad := newFakeWorker(bytes.NewReader(validResponseFrame(t)), errors.New("exit status 1"))
	gradeInjected(t, bad, 0)
}

func TestWorkerHangsPastTimeout(t *testing.T) {
	// The worker never responds; the 100ms budget kills it and the retry
	// converges.
	gradeInjected(t, newFakeWorker(nil, nil), 100*time.Millisecond)
}

func TestWorkerEmitsTruncatedFrame(t *testing.T) {
	frame := validResponseFrame(t)
	bad := newFakeWorker(bytes.NewReader(frame[:len(frame)-3]), nil)
	gradeInjected(t, bad, 0)
}

// TestWorkerFailsTwice asserts the never-silently-partial guarantee: when
// a shard's attempt and its one retry both fail, Grade returns an error
// naming both attempts and no result at all.
func TestWorkerFailsTwice(t *testing.T) {
	cpu := getCPU(t)
	g := captureTestGolden(t, 60)
	all := fault.Universe(cpu.Netlist)
	hang := func() (Worker, error) { return newFakeWorker(nil, nil), nil }
	res, stats, err := Grade(cpu, g, all, Options{
		Shards:  2,
		Sample:  128,
		Seed:    5,
		Timeout: 50 * time.Millisecond,
		Spawn:   hang,
	})
	if err == nil {
		t.Fatal("want an error, got success")
	}
	if res != nil {
		t.Fatal("failed run returned a (partial) result")
	}
	if !strings.Contains(err.Error(), "worker failed twice") {
		t.Fatalf("err = %v, want both attempts reported", err)
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v, want the timeout surfaced", err)
	}
	if stats.Retried == 0 || stats.Failed < 2 {
		t.Fatalf("stats don't show the retry: %+v", stats)
	}
}

// TestSpawnFailureFallsBack asserts graceful degradation: a spawner that
// cannot start processes at all downgrades every shard to an in-process
// simulation, still bit-identical to the unsharded run.
func TestSpawnFailureFallsBack(t *testing.T) {
	cpu := getCPU(t)
	g := captureTestGolden(t, 60)
	all := fault.Universe(cpu.Netlist)
	opt := fault.Options{Sample: 128, Seed: 5}
	want, err := fault.Simulate(cpu, g, all, opt)
	if err != nil {
		t.Fatal(err)
	}
	broken := func() (Worker, error) { return nil, errors.New("no such binary") }
	got, stats, err := Grade(cpu, g, all, Options{
		Shards: 3,
		Sample: opt.Sample,
		Seed:   opt.Seed,
		Spawn:  broken,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, got, want)
	if stats.Fallbacks != stats.Shards {
		t.Fatalf("want every shard to fall back, got %+v", stats)
	}
	if stats.Launched != 0 {
		t.Fatalf("launched %d workers through a broken spawner", stats.Launched)
	}
	if got.Stats.ShardsFallback != int64(stats.Shards) {
		t.Fatalf("SimStats fallback counter: %+v", got.Stats)
	}
}

// TestHangingWorkerIsReaped asserts the no-zombie guarantee: a worker
// process that hangs before writing a single response frame is killed by
// the attempt timeout AND reaped — its exit status is collected on every
// failure path, so no dead child lingers in the process table for the
// life of the coordinator. Grade only returns after all shard goroutines
// (and their reaping defers) finish, so inspecting ProcessState here is
// race-free.
func TestHangingWorkerIsReaped(t *testing.T) {
	cpu := getCPU(t)
	g := captureTestGolden(t, 60)
	all := fault.Universe(cpu.Netlist)
	var mu sync.Mutex
	var spawned []*execWorker
	// sleep is spawned directly (no shell) so Kill hits the hanging
	// process itself rather than a parent whose orphan would keep the
	// stdout pipe open.
	hang := ExecSpawner("sleep", "60")
	capture := func() (Worker, error) {
		w, err := hang()
		if err == nil {
			mu.Lock()
			spawned = append(spawned, w.(*execWorker))
			mu.Unlock()
		}
		return w, err
	}
	_, _, err := Grade(cpu, g, all, Options{
		Shards:  2,
		Sample:  128,
		Seed:    5,
		Timeout: 100 * time.Millisecond,
		Spawn:   capture,
	})
	if err == nil {
		t.Fatal("want the hung workers to fail the run")
	}
	if len(spawned) == 0 {
		t.Fatal("spawner was never called")
	}
	for i, w := range spawned {
		if w.cmd.ProcessState == nil {
			t.Fatalf("worker %d was killed but never reaped (zombie pid %d)", i, w.cmd.Process.Pid)
		}
	}
}
