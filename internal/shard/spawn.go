package shard

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
)

// Worker is one spawned shard worker: a request sink (Write goes to the
// worker's stdin), a response source (Read comes from its stdout), and
// lifecycle control. The coordinator writes one Request frame, calls
// CloseWrite, reads one Response frame, then Waits.
type Worker interface {
	io.Writer
	io.Reader
	// CloseWrite signals end of requests (closes the worker's stdin).
	CloseWrite() error
	// Wait reaps the worker after its response stream is drained and
	// returns its terminal status (non-nil for a nonzero exit).
	Wait() error
	// Kill hard-stops the worker; pending Reads fail. Used by the
	// coordinator's timeout. Safe to call more than once.
	Kill()
}

// Spawner starts one worker. The coordinator calls it once per shard
// attempt; returning an error means the worker could not be started at
// all, which the coordinator answers with an in-process fallback rather
// than a retry.
type Spawner func() (Worker, error)

// SelfSpawner re-executes the current binary with the worker-mode
// environment marker set. The binary must call ServeIfWorker early in
// main (or TestMain) — cmd/sbst and the repository's benchmark binary do.
func SelfSpawner() Spawner {
	return func() (Worker, error) {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("shard: resolve own binary: %w", err)
		}
		return startExec(exe)
	}
}

// ExecSpawner spawns the given argv with the worker-mode environment
// marker set, for pointing the coordinator at an explicit worker binary
// (e.g. a remote-shell wrapper).
func ExecSpawner(argv ...string) Spawner {
	return func() (Worker, error) {
		if len(argv) == 0 {
			return nil, fmt.Errorf("shard: empty worker argv")
		}
		return startExec(argv[0], argv[1:]...)
	}
}

func startExec(name string, args ...string) (Worker, error) {
	return startExecEnv([]string{EnvVar + "=1"}, name, args...)
}

// startExecEnv spawns argv with extra environment entries appended — the
// shared launcher of one-shot workers (EnvVar) and persistent session
// workers (EnvSession, used by the distributed coordinator's exec
// transport). Environment only reaches direct children; wrappers that
// hop machines (ssh) need the explicit CLI flags instead.
func startExecEnv(extraEnv []string, name string, args ...string) (*execWorker, error) {
	cmd := exec.Command(name, args...)
	cmd.Env = append(os.Environ(), extraEnv...)
	cmd.Stderr = os.Stderr
	in, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("shard: spawn %s: %w", name, err)
	}
	return &execWorker{cmd: cmd, in: in, out: out}, nil
}

type execWorker struct {
	cmd *exec.Cmd
	in  io.WriteCloser
	out io.ReadCloser

	killOnce sync.Once
	waitOnce sync.Once
	waitErr  error
}

func (w *execWorker) Write(p []byte) (int, error) { return w.in.Write(p) }
func (w *execWorker) Read(p []byte) (int, error)  { return w.out.Read(p) }
func (w *execWorker) CloseWrite() error           { return w.in.Close() }

// Wait is idempotent (exec.Cmd.Wait is not): the coordinator reaps every
// worker on all exit paths of an attempt, which means a successful attempt
// Waits twice — once to collect the exit status and once from the reaping
// defer.
func (w *execWorker) Wait() error {
	w.waitOnce.Do(func() { w.waitErr = w.cmd.Wait() })
	return w.waitErr
}
func (w *execWorker) Kill() {
	w.killOnce.Do(func() {
		if w.cmd.Process != nil {
			w.cmd.Process.Kill()
		}
	})
}

// InProcSpawner runs RunWorker in a goroutine over in-memory pipes: the
// same protocol path — frames, cache loads, simulation — with no process
// boundary. It is the spawner of the -race coordinator tests and a
// no-subprocess deployment option.
func InProcSpawner() Spawner {
	return func() (Worker, error) {
		reqR, reqW := io.Pipe()
		respR, respW := io.Pipe()
		w := &inprocWorker{reqW: reqW, respR: respR, done: make(chan struct{})}
		go func() {
			err := RunWorker(reqR, respW)
			respW.CloseWithError(err)
			reqR.CloseWithError(err)
			w.err = err
			close(w.done)
		}()
		return w, nil
	}
}

type inprocWorker struct {
	reqW  *io.PipeWriter
	respR *io.PipeReader

	done chan struct{}
	err  error

	killOnce sync.Once
}

func (w *inprocWorker) Write(p []byte) (int, error) { return w.reqW.Write(p) }
func (w *inprocWorker) Read(p []byte) (int, error)  { return w.respR.Read(p) }
func (w *inprocWorker) CloseWrite() error           { return w.reqW.Close() }
func (w *inprocWorker) Wait() error {
	<-w.done
	return w.err
}
func (w *inprocWorker) Kill() {
	w.killOnce.Do(func() {
		err := fmt.Errorf("shard: worker killed")
		w.reqW.CloseWithError(err)
		w.respR.CloseWithError(err)
	})
}
