package sim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Profile is a dynamic instruction-mix profile of one program execution.
type Profile struct {
	// Counts maps mnemonics to retired-instruction counts.
	Counts map[string]int
	// Retired is the total retired instruction count.
	Retired uint64
	// Cycles is the execution time under the Plasma cost model.
	Cycles uint64
}

// ProfileExecution runs a program on the golden model to completion and
// returns its dynamic instruction mix — how a self-test program spends its
// execution budget across the instruction set.
func ProfileExecution(prog *asm.Program, maxInstructions uint64) (*Profile, error) {
	mem := NewMemory()
	mem.LoadProgram(prog)
	cpu := New(mem, 0)
	p := &Profile{Counts: make(map[string]int)}
	cpu.TraceExec = func(pc, word uint32) {
		name := "nop"
		if word != 0 {
			if m := isa.Lookup(isa.Decode(word)); m != nil {
				name = m.Name
			} else {
				name = "<illegal>"
			}
		}
		p.Counts[name]++
	}
	halted, err := cpu.Run(maxInstructions)
	if err != nil {
		return nil, err
	}
	if !halted {
		return nil, fmt.Errorf("sim: profiled program did not halt")
	}
	p.Retired = cpu.Retired
	p.Cycles = cpu.Cycle
	return p, nil
}

// String renders the mix sorted by frequency.
func (p *Profile) String() string {
	type row struct {
		name string
		n    int
	}
	rows := make([]row, 0, len(p.Counts))
	for name, n := range p.Counts {
		rows = append(rows, row{name, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].name < rows[j].name
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d instructions retired in %d cycles\n", p.Retired, p.Cycles)
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-8s %8d (%5.1f%%)\n", r.name, r.n, 100*float64(r.n)/float64(p.Retired))
	}
	return sb.String()
}
