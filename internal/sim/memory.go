// Package sim implements the golden instruction-set simulator (ISS) for the
// Plasma MIPS I subset: architectural state, branch delay slots, HI/LO, a
// sparse memory, a bus-event trace, and a cycle cost model matching the
// gate-level core (loads/stores pause one cycle; mult/div is a 33-cycle
// sequential unit that stalls HI/LO access).
package sim

import (
	"fmt"

	"repro/internal/asm"
)

// Memory is a sparse, word-granular 32-bit memory.
type Memory struct {
	words map[uint32]uint32
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{words: make(map[uint32]uint32)}
}

// LoadProgram copies an assembled image into memory.
func (m *Memory) LoadProgram(p *asm.Program) {
	for i, w := range p.Words {
		m.SetWord(p.Origin+uint32(i)*4, w)
	}
}

// Word reads the aligned word containing addr.
func (m *Memory) Word(addr uint32) uint32 {
	return m.words[addr&^3]
}

// SetWord writes the aligned word containing addr.
func (m *Memory) SetWord(addr, v uint32) {
	m.words[addr&^3] = v
}

// Byte reads one byte (big-endian within the word, as on MIPS).
func (m *Memory) Byte(addr uint32) uint8 {
	w := m.Word(addr)
	shift := (3 - addr&3) * 8
	return uint8(w >> shift)
}

// SetByte writes one byte.
func (m *Memory) SetByte(addr uint32, v uint8) {
	shift := (3 - addr&3) * 8
	w := m.Word(addr)
	w = w&^(0xFF<<shift) | uint32(v)<<shift
	m.SetWord(addr, w)
}

// Half reads an aligned halfword.
func (m *Memory) Half(addr uint32) uint16 {
	w := m.Word(addr)
	shift := (2 - addr&2) * 8
	return uint16(w >> shift)
}

// SetHalf writes an aligned halfword.
func (m *Memory) SetHalf(addr uint32, v uint16) {
	shift := (2 - addr&2) * 8
	w := m.Word(addr)
	w = w&^(0xFFFF<<shift) | uint32(v)<<shift
	m.SetWord(addr, w)
}

// Snapshot returns a copy of all nonzero words, for state comparison.
func (m *Memory) Snapshot() map[uint32]uint32 {
	cp := make(map[uint32]uint32, len(m.words))
	for a, v := range m.words {
		if v != 0 {
			cp[a] = v
		}
	}
	return cp
}

// Equal reports whether two memories hold identical contents, and if not,
// describes the first difference found.
func (m *Memory) Equal(o *Memory) (bool, string) {
	for a, v := range m.words {
		if ov := o.words[a&^3]; ov != v {
			return false, fmt.Sprintf("word %#x: %#x vs %#x", a, v, ov)
		}
	}
	for a, v := range o.words {
		if mv := m.words[a&^3]; mv != v {
			return false, fmt.Sprintf("word %#x: %#x vs %#x", mv, v, a)
		}
	}
	return true, ""
}
