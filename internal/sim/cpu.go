package sim

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/synth"
)

// BusEvent records one data-memory access on the processor bus, the
// observation stream used to compare machines.
type BusEvent struct {
	Cycle  uint64
	Addr   uint32 // word-aligned address
	Data   uint32 // full word written (after lane merge) or loaded
	Strobe uint8  // byte-lane write strobes (0 for reads)
	Write  bool
}

func (e BusEvent) String() string {
	dir := "R"
	if e.Write {
		dir = "W"
	}
	return fmt.Sprintf("@%d %s %08x=%08x/%x", e.Cycle, dir, e.Addr, e.Data, e.Strobe)
}

// CPU is the golden-model Plasma/MIPS processor state.
type CPU struct {
	PC  uint32 // address of the instruction about to execute
	NPC uint32 // address of the next instruction (delay-slot successor)
	Reg [32]uint32
	Hi  uint32
	Lo  uint32
	Mem *Memory

	// Cycle is the running cycle count under the Plasma cost model.
	Cycle uint64
	// Retired counts executed instructions.
	Retired uint64
	// Halted is set when the CPU executes a jump-to-self.
	Halted bool

	// TraceBus enables recording data-memory accesses into Bus.
	TraceBus bool
	Bus      []BusEvent

	// TraceExec, when non-nil, receives every retired instruction.
	TraceExec func(pc, word uint32)

	// NoMulDiv makes HI/LO-group instructions (mult/div/mfhi/mflo/mthi/
	// mtlo) hard errors. Set when modeling the multiplier-less variant:
	// programs targeting it must not contain these opcodes, and an error
	// here catches a generator or fuzzer violating that contract.
	NoMulDiv bool

	mulBusyUntil uint64
}

// New returns a CPU with PC at start and an empty register file.
func New(mem *Memory, start uint32) *CPU {
	return &CPU{PC: start, NPC: start + 4, Mem: mem}
}

// busEvent appends a bus record when tracing is on.
func (c *CPU) busEvent(addr, data uint32, strobe uint8, write bool) {
	if c.TraceBus {
		c.Bus = append(c.Bus, BusEvent{Cycle: c.Cycle, Addr: addr &^ 3, Data: data, Strobe: strobe, Write: write})
	}
}

func (c *CPU) setReg(r, v uint32) {
	if r != 0 {
		c.Reg[r] = v
	}
}

// stallMulDiv advances time until the multiply/divide unit is idle: the
// stalled instruction executes on the cycle after busy deasserts.
func (c *CPU) stallMulDiv() {
	if c.Cycle <= c.mulBusyUntil {
		c.Cycle = c.mulBusyUntil + 1
	}
}

// Step executes one instruction. It returns an error on an encoding outside
// the implemented subset or an unaligned memory access.
func (c *CPU) Step() error {
	cur := c.PC
	w := c.Mem.Word(cur)
	f := isa.Decode(w)

	// Advance the PC pair; branches override NPC (delay-slot semantics).
	c.PC = c.NPC
	c.NPC += 4
	c.Cycle++
	c.Retired++
	if c.TraceExec != nil {
		c.TraceExec(cur, w)
	}

	branch := func(taken bool) {
		if taken {
			c.NPC = isa.BranchTarget(f, cur)
		}
	}

	switch f.Op {
	case isa.OpSpecial:
		rs, rt := c.Reg[f.Rs], c.Reg[f.Rt]
		switch f.Funct {
		case isa.FnSll:
			c.setReg(f.Rd, synth.ShiftRef(rt, f.Shamt, false, false))
		case isa.FnSrl:
			c.setReg(f.Rd, synth.ShiftRef(rt, f.Shamt, true, false))
		case isa.FnSra:
			c.setReg(f.Rd, synth.ShiftRef(rt, f.Shamt, true, true))
		case isa.FnSllv:
			c.setReg(f.Rd, synth.ShiftRef(rt, rs&31, false, false))
		case isa.FnSrlv:
			c.setReg(f.Rd, synth.ShiftRef(rt, rs&31, true, false))
		case isa.FnSrav:
			c.setReg(f.Rd, synth.ShiftRef(rt, rs&31, true, true))
		case isa.FnJr:
			if rs == cur {
				c.Halted = true
			}
			c.NPC = rs
		case isa.FnJalr:
			c.setReg(f.Rd, cur+8)
			c.NPC = rs
		case isa.FnMfhi:
			if c.NoMulDiv {
				return fmt.Errorf("sim: HI/LO instruction %#x at %#x on multiplier-less config", w, cur)
			}
			c.stallMulDiv()
			c.setReg(f.Rd, c.Hi)
		case isa.FnMflo:
			if c.NoMulDiv {
				return fmt.Errorf("sim: HI/LO instruction %#x at %#x on multiplier-less config", w, cur)
			}
			c.stallMulDiv()
			c.setReg(f.Rd, c.Lo)
		case isa.FnMthi:
			if c.NoMulDiv {
				return fmt.Errorf("sim: HI/LO instruction %#x at %#x on multiplier-less config", w, cur)
			}
			c.stallMulDiv()
			c.Hi = rs
		case isa.FnMtlo:
			if c.NoMulDiv {
				return fmt.Errorf("sim: HI/LO instruction %#x at %#x on multiplier-less config", w, cur)
			}
			c.stallMulDiv()
			c.Lo = rs
		case isa.FnMult, isa.FnMultu, isa.FnDiv, isa.FnDivu:
			if c.NoMulDiv {
				return fmt.Errorf("sim: mul/div instruction %#x at %#x on multiplier-less config", w, cur)
			}
			c.stallMulDiv()
			isDiv := f.Funct == isa.FnDiv || f.Funct == isa.FnDivu
			isSigned := f.Funct == isa.FnMult || f.Funct == isa.FnDiv
			c.Hi, c.Lo = synth.MulDivRef(rs, rt, isDiv, isSigned)
			c.mulBusyUntil = c.Cycle + synth.MulDivBusyCycles
		case isa.FnAdd, isa.FnAddu:
			c.setReg(f.Rd, rs+rt)
		case isa.FnSub, isa.FnSubu:
			c.setReg(f.Rd, rs-rt)
		case isa.FnAnd:
			c.setReg(f.Rd, rs&rt)
		case isa.FnOr:
			c.setReg(f.Rd, rs|rt)
		case isa.FnXor:
			c.setReg(f.Rd, rs^rt)
		case isa.FnNor:
			c.setReg(f.Rd, ^(rs | rt))
		case isa.FnSlt:
			c.setReg(f.Rd, synth.ALURef(synth.ALUSlt, rs, rt))
		case isa.FnSltu:
			c.setReg(f.Rd, synth.ALURef(synth.ALUSltu, rs, rt))
		default:
			return fmt.Errorf("sim: unimplemented SPECIAL funct %#x at %#x", f.Funct, cur)
		}

	case isa.OpRegImm:
		rs := c.Reg[f.Rs]
		switch f.Rt {
		case isa.RtBltz:
			branch(int32(rs) < 0)
		case isa.RtBgez:
			branch(int32(rs) >= 0)
		case isa.RtBltzal:
			c.setReg(31, cur+8)
			branch(int32(rs) < 0)
		case isa.RtBgezal:
			c.setReg(31, cur+8)
			branch(int32(rs) >= 0)
		default:
			return fmt.Errorf("sim: unimplemented REGIMM rt %#x at %#x", f.Rt, cur)
		}

	case isa.OpJ, isa.OpJal:
		target := isa.JumpTarget(f, cur)
		if f.Op == isa.OpJal {
			c.setReg(31, cur+8)
		}
		if target == cur {
			c.Halted = true
		}
		c.NPC = target

	case isa.OpBeq:
		branch(c.Reg[f.Rs] == c.Reg[f.Rt])
	case isa.OpBne:
		branch(c.Reg[f.Rs] != c.Reg[f.Rt])
	case isa.OpBlez:
		branch(int32(c.Reg[f.Rs]) <= 0)
	case isa.OpBgtz:
		branch(int32(c.Reg[f.Rs]) > 0)

	case isa.OpAddi, isa.OpAddiu:
		c.setReg(f.Rt, c.Reg[f.Rs]+f.SignExtImm())
	case isa.OpSlti:
		c.setReg(f.Rt, synth.ALURef(synth.ALUSlt, c.Reg[f.Rs], f.SignExtImm()))
	case isa.OpSltiu:
		c.setReg(f.Rt, synth.ALURef(synth.ALUSltu, c.Reg[f.Rs], f.SignExtImm()))
	case isa.OpAndi:
		c.setReg(f.Rt, c.Reg[f.Rs]&f.Imm)
	case isa.OpOri:
		c.setReg(f.Rt, c.Reg[f.Rs]|f.Imm)
	case isa.OpXori:
		c.setReg(f.Rt, c.Reg[f.Rs]^f.Imm)
	case isa.OpLui:
		c.setReg(f.Rt, f.Imm<<16)

	default:
		if isa.IsLoad(f.Op) || isa.IsStore(f.Op) {
			return c.memAccess(f, cur)
		}
		return fmt.Errorf("sim: unimplemented opcode %#x at %#x", f.Op, cur)
	}
	return nil
}

// memAccess executes loads and stores, including the one-cycle bus pause of
// the Plasma model.
func (c *CPU) memAccess(f isa.Fields, cur uint32) error {
	addr := c.Reg[f.Rs] + f.SignExtImm()
	c.Cycle++ // memory pause cycle

	switch f.Op {
	case isa.OpLw:
		if addr&3 != 0 {
			return fmt.Errorf("sim: unaligned lw at %#x addr %#x", cur, addr)
		}
		v := c.Mem.Word(addr)
		c.busEvent(addr, v, 0, false)
		c.setReg(f.Rt, v)
	case isa.OpLh, isa.OpLhu:
		if addr&1 != 0 {
			return fmt.Errorf("sim: unaligned lh at %#x addr %#x", cur, addr)
		}
		v := c.Mem.Half(addr)
		c.busEvent(addr, c.Mem.Word(addr), 0, false)
		if f.Op == isa.OpLh {
			c.setReg(f.Rt, uint32(int32(int16(v))))
		} else {
			c.setReg(f.Rt, uint32(v))
		}
	case isa.OpLb, isa.OpLbu:
		v := c.Mem.Byte(addr)
		c.busEvent(addr, c.Mem.Word(addr), 0, false)
		if f.Op == isa.OpLb {
			c.setReg(f.Rt, uint32(int32(int8(v))))
		} else {
			c.setReg(f.Rt, uint32(v))
		}
	case isa.OpSw:
		if addr&3 != 0 {
			return fmt.Errorf("sim: unaligned sw at %#x addr %#x", cur, addr)
		}
		c.Mem.SetWord(addr, c.Reg[f.Rt])
		c.busEvent(addr, c.Mem.Word(addr), 0xF, true)
	case isa.OpSh:
		if addr&1 != 0 {
			return fmt.Errorf("sim: unaligned sh at %#x addr %#x", cur, addr)
		}
		c.Mem.SetHalf(addr, uint16(c.Reg[f.Rt]))
		strobe := uint8(0xC) // big-endian: upper half => lanes 3..2
		if addr&2 != 0 {
			strobe = 0x3
		}
		c.busEvent(addr, c.Mem.Word(addr), strobe, true)
	case isa.OpSb:
		c.Mem.SetByte(addr, uint8(c.Reg[f.Rt]))
		strobe := uint8(1) << (3 - addr&3)
		c.busEvent(addr, c.Mem.Word(addr), strobe, true)
	}
	return nil
}

// Run executes instructions until the CPU halts on a jump-to-self or
// maxInstructions have retired. It reports whether the CPU halted.
func (c *CPU) Run(maxInstructions uint64) (bool, error) {
	for i := uint64(0); i < maxInstructions; i++ {
		if err := c.Step(); err != nil {
			return false, err
		}
		if c.Halted {
			// Let the delay slot of the final jump execute, as hardware
			// would, so stores in it are not lost.
			if err := c.Step(); err != nil {
				return false, err
			}
			return true, nil
		}
	}
	return false, nil
}
