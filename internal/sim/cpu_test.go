package sim

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/synth"
)

// run assembles src at origin 0, appends a halt loop, and runs to halt.
func run(t *testing.T, src string) *CPU {
	t.Helper()
	full := src + "\nhalt_loop__: j halt_loop__\nnop\n"
	p, err := asm.Assemble(full, 0)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	mem := NewMemory()
	mem.LoadProgram(p)
	c := New(mem, 0)
	halted, err := c.Run(100000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !halted {
		t.Fatal("program did not halt")
	}
	return c
}

func TestArithmeticAndLogic(t *testing.T) {
	c := run(t, `
		li $t0, 100
		li $t1, -30
		add $t2, $t0, $t1     # 70
		sub $t3, $t0, $t1     # 130
		and $t4, $t0, $t1
		or  $t5, $t0, $t1
		xor $t6, $t0, $t1
		nor $t7, $t0, $t1
		slt $s0, $t1, $t0     # 1 (signed -30 < 100)
		sltu $s1, $t1, $t0    # 0 (unsigned huge > 100)
	`)
	want := map[int]uint32{
		10: 70, 11: 130,
		12: 100 & 0xFFFFFFE2, 13: 100 | 0xFFFFFFE2,
		14: 100 ^ 0xFFFFFFE2, 15: ^(uint32(100) | 0xFFFFFFE2),
		16: 1, 17: 0,
	}
	for r, v := range want {
		if c.Reg[r] != v {
			t.Errorf("r%d = %#x, want %#x", r, c.Reg[r], v)
		}
	}
}

func TestImmediates(t *testing.T) {
	c := run(t, `
		addiu $t0, $zero, -1
		addi  $t1, $zero, 5
		slti  $t2, $t1, 6
		slti  $t3, $t1, 5
		sltiu $t4, $t1, 6
		sltiu $t5, $t0, 1     # 0xffffffff < 1 unsigned? no
		andi  $t6, $t0, 0xf0f0
		ori   $t7, $zero, 0x1234
		xori  $s0, $t0, 0xffff
		lui   $s1, 0xabcd
	`)
	want := map[int]uint32{
		8: 0xFFFFFFFF, 9: 5, 10: 1, 11: 0, 12: 1, 13: 0,
		14: 0xF0F0, 15: 0x1234, 16: 0xFFFF0000, 17: 0xABCD0000,
	}
	for r, v := range want {
		if c.Reg[r] != v {
			t.Errorf("r%d = %#x, want %#x", r, c.Reg[r], v)
		}
	}
}

func TestShifts(t *testing.T) {
	c := run(t, `
		li $t0, 0x80000001
		sll $t1, $t0, 4
		srl $t2, $t0, 4
		sra $t3, $t0, 4
		li $t4, 33          # variable shifts use low 5 bits => 1
		sllv $t5, $t0, $t4
		srlv $t6, $t0, $t4
		srav $t7, $t0, $t4
	`)
	want := map[int]uint32{
		9:  0x00000010,
		10: 0x08000000,
		11: 0xF8000000,
		13: 0x00000002,
		14: 0x40000000,
		15: 0xC0000000,
	}
	for r, v := range want {
		if c.Reg[r] != v {
			t.Errorf("r%d = %#x, want %#x", r, c.Reg[r], v)
		}
	}
}

func TestR0Immutable(t *testing.T) {
	c := run(t, `
		li $t0, 7
		add $zero, $t0, $t0
		ori $zero, $t0, 0xffff
	`)
	if c.Reg[0] != 0 {
		t.Errorf("r0 = %#x", c.Reg[0])
	}
}

func TestBranchDelaySlot(t *testing.T) {
	// The instruction after a taken branch always executes.
	c := run(t, `
		li $t0, 1
		beq $zero, $zero, skip
		li $t1, 2         # delay slot: executes
		li $t2, 3         # skipped
	skip:
		li $t3, 4
	`)
	if c.Reg[9] != 2 {
		t.Errorf("delay slot did not execute: t1 = %d", c.Reg[9])
	}
	if c.Reg[10] != 0 {
		t.Errorf("skipped instruction executed: t2 = %d", c.Reg[10])
	}
	if c.Reg[11] != 4 {
		t.Errorf("branch target missed: t3 = %d", c.Reg[11])
	}
}

func TestBranchConditions(t *testing.T) {
	c := run(t, `
		li $t0, -5
		li $t1, 5
		li $s0, 0

		bltz $t0, L1
		nop
		b fail
		nop
	L1:	bgez $t1, L2
		nop
		b fail
		nop
	L2:	blez $zero, L3
		nop
		b fail
		nop
	L3:	bgtz $t1, L4
		nop
		b fail
		nop
	L4:	bne $t0, $t1, L5
		nop
		b fail
		nop
	L5:	bltz $t1, fail    # not taken
		nop
		bgtz $t0, fail    # not taken
		nop
		li $s0, 1
		b end
		nop
	fail:
		li $s0, 2
	end:
	`)
	if c.Reg[16] != 1 {
		t.Errorf("branch condition suite failed: s0 = %d", c.Reg[16])
	}
}

func TestJalAndJr(t *testing.T) {
	c := run(t, `
		jal sub
		nop
		b end
		nop
	sub:
		li $t0, 42
		jr $ra
		li $t1, 43       # delay slot of jr
	end:
	`)
	if c.Reg[8] != 42 || c.Reg[9] != 43 {
		t.Errorf("subroutine results: t0=%d t1=%d", c.Reg[8], c.Reg[9])
	}
	if c.Reg[31] != 8 {
		t.Errorf("ra = %#x, want 0x8", c.Reg[31])
	}
}

func TestJalrAndRegimmLink(t *testing.T) {
	c := run(t, `
		la $t0, sub
		jalr $s0, $t0
		nop
		b end
		nop
	sub:
		li $t1, 9
		jr $s0
		nop
	end:
		li $t2, 1
		bgezal $zero, sub2
		nop
		b end2
		nop
	sub2:
		li $t3, 11
		jr $ra
		nop
	end2:
	`)
	if c.Reg[9] != 9 || c.Reg[11] != 11 || c.Reg[10] != 1 {
		t.Errorf("t1=%d t3=%d t2=%d", c.Reg[9], c.Reg[11], c.Reg[10])
	}
}

func TestLoadsAndStores(t *testing.T) {
	c := run(t, `
		li $t0, 0x1000
		li $t1, 0x89abcdef
		sw $t1, 0($t0)
		lw $t2, 0($t0)
		lb $t3, 0($t0)    # 0x89 sign-extended
		lbu $t4, 0($t0)
		lb $t5, 3($t0)    # 0xef sign-extended
		lh $t6, 0($t0)    # 0x89ab sign-extended
		lhu $t7, 2($t0)   # 0xcdef
		sb $t1, 4($t0)    # writes 0xef to byte 0 of word at 0x1004
		sh $t1, 8($t0)    # writes 0xcdef to upper half of 0x1008
		sh $t1, 14($t0)   # writes 0xcdef to lower half of 0x100c
	`)
	want := map[int]uint32{
		10: 0x89ABCDEF,
		11: 0xFFFFFF89,
		12: 0x89,
		13: 0xFFFFFFEF,
		14: 0xFFFF89AB,
		15: 0xCDEF,
	}
	for r, v := range want {
		if c.Reg[r] != v {
			t.Errorf("r%d = %#x, want %#x", r, c.Reg[r], v)
		}
	}
	if w := c.Mem.Word(0x1004); w != 0xEF000000 {
		t.Errorf("sb result = %#x", w)
	}
	if w := c.Mem.Word(0x1008); w != 0xCDEF0000 {
		t.Errorf("sh upper = %#x", w)
	}
	if w := c.Mem.Word(0x100C); w != 0x0000CDEF {
		t.Errorf("sh lower = %#x", w)
	}
}

func TestUnalignedAccessErrors(t *testing.T) {
	for _, src := range []string{
		"li $t0, 2\nlw $t1, 0($t0)",
		"li $t0, 1\nlh $t1, 0($t0)",
		"li $t0, 2\nsw $t1, 0($t0)",
		"li $t0, 1\nsh $t1, 0($t0)",
	} {
		p, err := asm.Assemble(src, 0)
		if err != nil {
			t.Fatal(err)
		}
		mem := NewMemory()
		mem.LoadProgram(p)
		c := New(mem, 0)
		var stepErr error
		for i := 0; i < 10 && stepErr == nil; i++ {
			stepErr = c.Step()
		}
		if stepErr == nil {
			t.Errorf("unaligned access not rejected: %q", src)
		}
	}
}

func TestMulDivInstructions(t *testing.T) {
	c := run(t, `
		li $t0, -7
		li $t1, 9
		mult $t0, $t1
		mflo $t2         # -63
		mfhi $t3         # sign extension: 0xffffffff
		multu $t0, $t1
		mflo $t4
		mfhi $t5
		div $t0, $t1     # -7/9 = 0 rem -7
		mflo $t6
		mfhi $t7
		divu $t1, $t0
		mflo $s0         # 9 / 0xfffffff9 = 0
		mfhi $s1         # rem 9
		li $s2, 0x1234
		mthi $s2
		mtlo $s2
		mfhi $s3
		mflo $s4
	`)
	wantHi, wantLo := synth.MulDivRef(uint32(0xFFFFFFF9), 9, false, false)
	want := map[int]uint32{
		10: uint32(0xFFFFFFC1), // -63
		11: 0xFFFFFFFF,
		12: wantLo, 13: wantHi,
		14: 0, 15: uint32(0xFFFFFFF9),
		16: 0, 17: 9,
		19: 0x1234, 20: 0x1234,
	}
	for r, v := range want {
		if c.Reg[r] != v {
			t.Errorf("r%d = %#x, want %#x", r, c.Reg[r], v)
		}
	}
}

func TestCycleModel(t *testing.T) {
	// 4 plain instructions + halt jump + delay slot = 6 cycles.
	c := run(t, `
		li $t0, 1
		li $t1, 2
		add $t2, $t0, $t1
		sub $t3, $t0, $t1
	`)
	if c.Cycle != 6 {
		t.Errorf("plain: %d cycles, want 6", c.Cycle)
	}
	// A load adds one pause cycle.
	c2 := run(t, `
		li $t0, 0x100
		lw $t1, 0($t0)
		sw $t1, 4($t0)
	`)
	// 3 instructions + 2 pauses + 2 halt = 7.
	if c2.Cycle != 7 {
		t.Errorf("memory: %d cycles, want 7", c2.Cycle)
	}
}

func TestMulDivStallModel(t *testing.T) {
	// mfhi immediately after mult stalls for the full busy window.
	c := run(t, `
		li $t0, 3
		li $t1, 4
		mult $t0, $t1
		mfhi $t2
	`)
	// 2 li + mult + (stall to busyUntil) + mfhi + 2 halt.
	minCycles := uint64(3 + synth.MulDivBusyCycles + 1 + 2)
	if c.Cycle != minCycles {
		t.Errorf("stalled: %d cycles, want %d", c.Cycle, minCycles)
	}
	// Independent work between mult and mfhi hides the latency.
	c2 := run(t, `
		li $t0, 3
		li $t1, 4
		mult $t0, $t1
		li $t3, 0
	wait:
		addiu $t3, $t3, 1
		bne $t3, $t1, wait
		nop
		mfhi $t2
	`)
	if c2.Reg[10] != 0 {
		t.Errorf("hi = %#x", c2.Reg[10])
	}
	if c2.Cycle >= minCycles+20 {
		t.Errorf("overlapped version too slow: %d cycles", c2.Cycle)
	}
}

func TestBusTrace(t *testing.T) {
	p, err := asm.Assemble(`
		li $t0, 0x200
		li $t1, 0xbeef
		sw $t1, 0($t0)
		lw $t2, 0($t0)
		sb $t1, 5($t0)
	halt: j halt
		nop
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemory()
	mem.LoadProgram(p)
	c := New(mem, 0)
	c.TraceBus = true
	if _, err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	if len(c.Bus) != 3 {
		t.Fatalf("bus events = %d, want 3: %v", len(c.Bus), c.Bus)
	}
	if !c.Bus[0].Write || c.Bus[0].Addr != 0x200 || c.Bus[0].Data != 0xBEEF || c.Bus[0].Strobe != 0xF {
		t.Errorf("sw event: %v", c.Bus[0])
	}
	if c.Bus[1].Write || c.Bus[1].Data != 0xBEEF {
		t.Errorf("lw event: %v", c.Bus[1])
	}
	if !c.Bus[2].Write || c.Bus[2].Addr != 0x204 || c.Bus[2].Strobe != 0x4 {
		t.Errorf("sb event: %v", c.Bus[2])
	}
}

func TestMemoryPrimitives(t *testing.T) {
	m := NewMemory()
	m.SetWord(0x100, 0x01020304)
	if m.Byte(0x100) != 1 || m.Byte(0x101) != 2 || m.Byte(0x102) != 3 || m.Byte(0x103) != 4 {
		t.Error("big-endian byte order wrong")
	}
	if m.Half(0x100) != 0x0102 || m.Half(0x102) != 0x0304 {
		t.Error("halfword order wrong")
	}
	m.SetByte(0x101, 0xAA)
	if m.Word(0x100) != 0x01AA0304 {
		t.Errorf("SetByte: %#x", m.Word(0x100))
	}
	m.SetHalf(0x102, 0xBBCC)
	if m.Word(0x100) != 0x01AABBCC {
		t.Errorf("SetHalf: %#x", m.Word(0x100))
	}
	m2 := NewMemory()
	m2.SetWord(0x100, 0x01AABBCC)
	if eq, _ := m.Equal(m2); !eq {
		t.Error("Equal false negative")
	}
	m2.SetWord(0x200, 5)
	if eq, _ := m.Equal(m2); eq {
		t.Error("Equal false positive")
	}
}

func TestExecTrace(t *testing.T) {
	p, err := asm.Assemble("li $t0, 1\nadd $t1, $t0, $t0\nh: j h\nnop\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemory()
	mem.LoadProgram(p)
	c := New(mem, 0)
	var pcs []uint32
	c.TraceExec = func(pc, word uint32) { pcs = append(pcs, pc) }
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(pcs) < 4 || pcs[0] != 0 || pcs[1] != 4 || pcs[2] != 8 {
		t.Errorf("trace pcs: %v", pcs)
	}
}

func TestProfileExecution(t *testing.T) {
	p, err := asm.Assemble(`
		li $t0, 3
	loop:
		addiu $t0, $t0, -1
		bne $t0, $zero, loop
		nop
		sw $t0, 0x100($zero)
	h:	j h
		nop
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ProfileExecution(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Counts["addiu"] != 4 { // li expands to addiu, plus 3 loop decrements
		t.Errorf("addiu count = %d", prof.Counts["addiu"])
	}
	if prof.Counts["bne"] != 3 || prof.Counts["sw"] != 1 {
		t.Errorf("counts: %v", prof.Counts)
	}
	if prof.Retired == 0 || prof.Cycles <= prof.Retired {
		t.Errorf("retired=%d cycles=%d", prof.Retired, prof.Cycles)
	}
	s := prof.String()
	if !strings.Contains(s, "addiu") || !strings.Contains(s, "%") {
		t.Errorf("rendering: %q", s)
	}
}

func TestBusEventString(t *testing.T) {
	e := BusEvent{Cycle: 3, Addr: 0x100, Data: 0xBEEF, Strobe: 0xF, Write: true}
	if s := e.String(); !strings.Contains(s, "W") || !strings.Contains(s, "beef") {
		t.Errorf("BusEvent.String = %q", s)
	}
	e.Write = false
	if s := e.String(); !strings.Contains(s, "R") {
		t.Errorf("read event: %q", s)
	}
}

func TestMemorySnapshot(t *testing.T) {
	m := NewMemory()
	m.SetWord(0x10, 7)
	m.SetWord(0x20, 0) // zero words excluded
	snap := m.Snapshot()
	if len(snap) != 1 || snap[0x10] != 7 {
		t.Errorf("snapshot: %v", snap)
	}
}

func TestRunBudgetExhausted(t *testing.T) {
	p, err := asm.Assemble("loop: addiu $t0, $t0, 1\nb loop\nnop", 0)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemory()
	mem.LoadProgram(p)
	c := New(mem, 0)
	halted, err := c.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if halted {
		t.Error("infinite loop reported halted")
	}
	if c.Retired != 100 {
		t.Errorf("retired = %d", c.Retired)
	}
}
