package fault

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/gate"
	"repro/internal/plasma"
)

// runBothEngines simulates the same workload under the oblivious reference
// engine and the differential event engine and asserts DetectedAt and
// SignatureGroups are bit-identical.
func runBothEngines(t *testing.T, cpu *plasma.CPU, g *plasma.Golden, faults []Fault, opt Options) (ob, ev *Result) {
	t.Helper()
	opt.Engine = EngineOblivious
	ob, err := Simulate(cpu, g, faults, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Engine = EngineEvent
	ev, err = Simulate(cpu, g, faults, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ob.DetectedAt) != len(ev.DetectedAt) {
		t.Fatalf("result sizes differ: %d vs %d", len(ob.DetectedAt), len(ev.DetectedAt))
	}
	for i := range ob.DetectedAt {
		if ob.DetectedAt[i] != ev.DetectedAt[i] {
			t.Fatalf("fault %d (%v): oblivious DetectedAt=%d, event=%d",
				i, ob.Faults[i].Site, ob.DetectedAt[i], ev.DetectedAt[i])
		}
		if ob.SignatureGroups[i] != ev.SignatureGroups[i] {
			t.Fatalf("fault %d (%v): oblivious groups=%#x, event=%#x",
				i, ob.Faults[i].Site, ob.SignatureGroups[i], ev.SignatureGroups[i])
		}
	}
	return ob, ev
}

// TestEngineEquivalenceDirected cross-checks the engines on a directed
// load/store/ALU program over a sampled fault universe.
func TestEngineEquivalenceDirected(t *testing.T) {
	cpu := getCPU(t)
	g := captureTestGolden(t, smokeProgram, 60)
	all := Universe(cpu.Netlist)
	ob, ev := runBothEngines(t, cpu, g, all, Options{Sample: 512, Seed: 7, Workers: 1})

	// The differential engine must have done strictly less eval work.
	if ev.Stats.GateEvals >= ob.Stats.GateEvals {
		t.Errorf("event engine evals %d not below oblivious %d", ev.Stats.GateEvals, ob.Stats.GateEvals)
	}
	if ev.Stats.Passes == 0 || ev.Stats.SimCycles == 0 || ev.Stats.Events == 0 {
		t.Errorf("event stats not collected: %+v", ev.Stats)
	}
	if ob.Stats.GateEvals == 0 || ob.Stats.SimCycles == 0 {
		t.Errorf("oblivious stats not collected: %+v", ob.Stats)
	}
}

// TestEngineEquivalenceRandomPrograms cross-checks the engines on
// pseudorandom self-test programs with fixed seeds.
func TestEngineEquivalenceRandomPrograms(t *testing.T) {
	cpu := getCPU(t)
	all := Universe(cpu.Netlist)
	cfgs := []baseline.Config{
		{Seeds: []uint32{0xACE1ACE1}, Rounds: 2, RespBase: 0x00100000},
		{Seeds: []uint32{0x1234ABCD, 0x0BADF00D}, Rounds: 1, RespBase: 0x00100000},
	}
	for ci, cfg := range cfgs {
		p, err := baseline.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g, err := plasma.CaptureGolden(cpu, p.Program, p.GateCycles())
		if err != nil {
			t.Fatal(err)
		}
		ob, ev := runBothEngines(t, cpu, g, all, Options{Sample: 256, Seed: int64(31 + ci)})
		if ob.Coverage() != ev.Coverage() {
			t.Errorf("config %d: coverage differs %.2f vs %.2f", ci, ob.Coverage(), ev.Coverage())
		}
	}
}

// TestNeverActivatedSkip checks that a fault whose site never holds the
// activating value is skipped outright and still reported undetected.
func TestNeverActivatedSkip(t *testing.T) {
	cpu := getCPU(t)
	// No loads/stores: the data-access output is 0 for the whole run, so
	// s-a-0 on it never activates.
	g := captureTestGolden(t, `
		li $t0, 5
		addu $t1, $t0, $t0
		xor $t2, $t0, $t1
	`, 20)
	if !g.HasActivation() {
		t.Fatal("golden lacks activation metadata")
	}
	sig := cpu.Netlist.OutputBus(plasma.PortDataAccess)[0]
	faults := []Fault{{Site: gate.FaultSite{Gate: sig, Pin: 0, Stuck: false}, Equiv: 1}}
	res, err := Simulate(cpu, g, faults, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected(0) {
		t.Error("never-activated fault reported detected")
	}
	if res.Stats.SkippedFaults != 1 {
		t.Errorf("SkippedFaults = %d, want 1", res.Stats.SkippedFaults)
	}
	if res.Stats.Passes != 0 {
		t.Errorf("Passes = %d, want 0 (nothing left to simulate)", res.Stats.Passes)
	}
}

// TestMergedDictionaryRegression reproduces the PeriodicComposition-style
// crash: building a dictionary from MergeDetections output used to panic
// because the merge never populated SignatureGroups.
func TestMergedDictionaryRegression(t *testing.T) {
	cpu := getCPU(t)
	all := Universe(cpu.Netlist)
	gA := captureTestGolden(t, smokeProgram, 60)
	gB := captureTestGolden(t, `
		li $t0, 0x2000
		li $t1, 7
		sllv $t2, $t1, $t1
		sw $t2, 0($t0)
	`, 50)
	opt := Options{Sample: 256, Seed: 5}
	rA, err := Simulate(cpu, gA, all, opt)
	if err != nil {
		t.Fatal(err)
	}
	rB, err := Simulate(cpu, gB, all, opt)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeDetections(rA, rB)
	if err != nil {
		t.Fatal(err)
	}
	d := BuildDictionary(merged) // used to panic: SignatureGroups was nil
	if len(d.Signatures) != len(merged.Faults) {
		t.Fatalf("dictionary size %d != faults %d", len(d.Signatures), len(merged.Faults))
	}
	for i := range merged.Faults {
		sig := d.Signatures[i]
		if sig.Cycle != merged.DetectedAt[i] {
			t.Fatalf("fault %d: dictionary cycle %d != merged %d", i, sig.Cycle, merged.DetectedAt[i])
		}
		if sig.Cycle < 0 {
			continue
		}
		// Groups must come from the earliest-detecting run.
		var want uint8
		if rA.DetectedAt[i] >= 0 {
			want = rA.SignatureGroups[i]
		} else {
			want = rB.SignatureGroups[i]
		}
		if sig.Groups != want {
			t.Fatalf("fault %d: merged groups %#x, want %#x", i, sig.Groups, want)
		}
		if sig.Groups == 0 {
			t.Fatalf("fault %d detected at %d with empty signature groups", i, sig.Cycle)
		}
	}
}
