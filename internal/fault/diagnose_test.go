package fault

import (
	"strings"
	"testing"

	"repro/internal/gate"
)

func TestDictionaryDiagnosis(t *testing.T) {
	cpu := getCPU(t)
	g := captureTestGolden(t, smokeProgram, 60)
	faults := SampleFaults(Universe(cpu.Netlist), 1024, 5)
	res, err := Simulate(cpu, g, faults, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := BuildDictionary(res)

	// Every detected fault must diagnose to a candidate set containing
	// itself, with its own signature as an exact match.
	checked := 0
	for i := range d.Faults {
		if d.Signatures[i].Cycle < 0 {
			continue
		}
		checked++
		cands := d.Diagnose(d.Signatures[i])
		found := false
		for _, c := range cands {
			if c.Fault.Site == d.Faults[i].Site {
				found = true
				if !c.Exact {
					t.Fatalf("self-diagnosis of %v not exact", d.Faults[i].Site)
				}
			}
		}
		if !found {
			t.Fatalf("fault %v missing from its own diagnosis", d.Faults[i].Site)
		}
		if checked > 200 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no detected faults to check")
	}

	// An impossible observation yields no candidates.
	if cands := d.Diagnose(Signature{Cycle: int32(g.Cycles + 100)}); len(cands) != 0 {
		t.Errorf("bogus observation diagnosed to %d candidates", len(cands))
	}

	// Resolution statistics are self-consistent.
	r := d.Resolution()
	if r.DetectedFaults == 0 || r.DistinctClasses == 0 {
		t.Fatalf("resolution empty: %+v", r)
	}
	if r.DistinctClasses > r.DetectedFaults || r.MaxClassSize < 1 {
		t.Errorf("inconsistent resolution: %+v", r)
	}
	if !strings.Contains(r.String(), "signature classes") {
		t.Errorf("rendering: %q", r.String())
	}
}

func TestSignatureGroups(t *testing.T) {
	cpu := getCPU(t)
	g := captureTestGolden(t, smokeProgram, 60)
	// An address-bit output fault must manifest in the addr group.
	sig := cpu.Netlist.OutputBus("mem_addr")[2]
	res, err := Simulate(cpu, g, []Fault{
		{Site: gate.FaultSite{Gate: sig, Pin: 0, Stuck: true}, Equiv: 1},
	}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected(0) {
		t.Fatal("address fault undetected")
	}
	if res.SignatureGroups[0]&SigAddr == 0 {
		t.Errorf("signature groups = %#x, want addr bit set", res.SignatureGroups[0])
	}
	s := Signature{Cycle: res.DetectedAt[0], Groups: res.SignatureGroups[0]}
	if got := s.GroupString(); !strings.Contains(got, "addr") {
		t.Errorf("GroupString = %q", got)
	}
	if (Signature{}).GroupString() != "none" {
		t.Error("empty GroupString wrong")
	}
}

func TestMergeDetections(t *testing.T) {
	fs := []Fault{{Equiv: 1}, {Equiv: 1}, {Equiv: 1}}
	r1 := &Result{Faults: fs, DetectedAt: []int32{5, -1, -1}, Cycles: 100}
	r2 := &Result{Faults: fs, DetectedAt: []int32{-1, 7, -1}, Cycles: 50}
	m, err := MergeDetections(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if m.DetectedAt[0] != 5 {
		t.Errorf("fault 0 at %d", m.DetectedAt[0])
	}
	if m.DetectedAt[1] != 100+7 {
		t.Errorf("fault 1 at %d, want offset by run 1 start", m.DetectedAt[1])
	}
	if m.DetectedAt[2] != -1 {
		t.Errorf("fault 2 should stay undetected")
	}
	if m.Cycles != 150 {
		t.Errorf("cycles = %d", m.Cycles)
	}
	// Mismatched fault lists are rejected.
	r3 := &Result{Faults: fs[:2], DetectedAt: []int32{1, 2}, Cycles: 10}
	if _, err := MergeDetections(r1, r3); err == nil {
		t.Error("mismatched merge accepted")
	}
	if _, err := MergeDetections(); err == nil {
		t.Error("empty merge accepted")
	}
}
