package fault

import (
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/gate"
	"repro/internal/plasma"
)

// Options tunes a fault-simulation run.
type Options struct {
	// Workers is the number of parallel simulation goroutines;
	// 0 means GOMAXPROCS.
	Workers int
	// Sample, when nonzero, simulates only a deterministic random sample of
	// that many collapsed faults (statistical coverage estimation for fast
	// benches); 0 simulates the full list.
	Sample int
	// Seed drives the sampling permutation.
	Seed int64
}

// Result is the outcome of a fault-simulation run.
type Result struct {
	// Faults is the simulated fault list (the sample, when sampling).
	Faults []Fault
	// DetectedAt[i] is the first cycle where fault i was observed at a
	// primary output, or -1 if it escaped.
	DetectedAt []int32
	// SignatureGroups[i] records which output groups diverged at fault
	// i's first detection (Sig* bits), for fault-dictionary diagnosis.
	SignatureGroups []uint8
	// Cycles is the length of the replayed golden execution.
	Cycles int
}

// Detected reports whether fault i was detected.
func (r *Result) Detected(i int) bool { return r.DetectedAt[i] >= 0 }

// Coverage reports collapsed fault coverage in percent.
func (r *Result) Coverage() float64 {
	if len(r.Faults) == 0 {
		return 0
	}
	n := 0
	for i := range r.Faults {
		if r.Detected(i) {
			n++
		}
	}
	return 100 * float64(n) / float64(len(r.Faults))
}

// WeightedCoverage reports equivalence-weighted (uncollapsed) coverage in
// percent.
func (r *Result) WeightedCoverage() float64 {
	det, tot := 0, 0
	for i, f := range r.Faults {
		tot += f.Equiv
		if r.Detected(i) {
			det += f.Equiv
		}
	}
	if tot == 0 {
		return 0
	}
	return 100 * float64(det) / float64(tot)
}

// Simulate fault-simulates the collapsed fault list against a recorded
// golden execution of a self-test program on the CPU. Each pass carries up
// to 64 faulty machines in the bit lanes of one logic simulation; a fault
// is detected the first cycle any primary output (bus address, access kind,
// write strobes, or strobed write data) differs from the golden value.
// Detected machines are dropped; a pass ends early once all its lanes have
// been detected.
func Simulate(cpu *plasma.CPU, golden *plasma.Golden, faults []Fault, opt Options) (*Result, error) {
	faults = SampleFaults(faults, opt.Sample, opt.Seed)
	res := &Result{
		Faults:          faults,
		DetectedAt:      make([]int32, len(faults)),
		SignatureGroups: make([]uint8, len(faults)),
		Cycles:          golden.Cycles,
	}
	for i := range res.DetectedAt {
		res.DetectedAt[i] = -1
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nPasses := (len(faults) + 63) / 64
	if workers > nPasses {
		workers = nPasses
	}
	if nPasses == 0 {
		return res, nil
	}

	passes := make(chan int, nPasses)
	for p := 0; p < nPasses; p++ {
		passes <- p
	}
	close(passes)

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := gate.NewSim(cpu.Netlist)
			if err != nil {
				errs[w] = err
				return
			}
			r := newPassRunner(cpu, s, golden)
			for p := range passes {
				lo := p * 64
				hi := lo + 64
				if hi > len(faults) {
					hi = len(faults)
				}
				r.runPass(faults[lo:hi], res.DetectedAt[lo:hi], res.SignatureGroups[lo:hi])
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// passRunner owns one logic simulator and the precomputed signal lists.
type passRunner struct {
	sim    *gate.Sim
	golden *plasma.Golden

	rdata   []gate.Sig
	addr    []gate.Sig
	wdata   []gate.Sig
	wstrobe []gate.Sig
	daccess gate.Sig
}

func newPassRunner(cpu *plasma.CPU, s *gate.Sim, golden *plasma.Golden) *passRunner {
	n := cpu.Netlist
	return &passRunner{
		sim:     s,
		golden:  golden,
		rdata:   n.InputBus(plasma.PortRData),
		addr:    n.OutputBus(plasma.PortAddr),
		wdata:   n.OutputBus(plasma.PortWData),
		wstrobe: n.OutputBus(plasma.PortWStrobe),
		daccess: n.OutputBus(plasma.PortDataAccess)[0],
	}
}

var spread = [2]uint64{0, ^uint64(0)}

// runPass simulates one group of up to 64 faults to completion.
func (r *passRunner) runPass(faults []Fault, detectedAt []int32, sigGroups []uint8) {
	lf := make([]gate.LaneFault, len(faults))
	for i, f := range faults {
		lf[i] = gate.LaneFault{Site: f.Site, Lane: i}
	}
	r.sim.Reset()
	r.sim.SetFaults(lf)

	active := ^uint64(0)
	if len(faults) < 64 {
		active = 1<<uint(len(faults)) - 1
	}
	var detected uint64

	g := r.golden
	s := r.sim
	for t := 0; t < g.Cycles; t++ {
		s.SetBusUniform(plasma.PortRData, uint64(g.RData[t]))
		s.Eval()

		out := &g.Out[t]
		var addrDiff, daDiff, strobeDiff, wdataDiff uint64
		for i, sig := range r.addr {
			addrDiff |= s.SigWord(sig) ^ spread[out.Addr>>uint(i)&1]
		}
		var da uint64
		if out.DataAccess {
			da = ^uint64(0)
		}
		daDiff = s.SigWord(r.daccess) ^ da

		var laneWrites uint64
		for i, sig := range r.wstrobe {
			w := s.SigWord(sig)
			laneWrites |= w
			strobeDiff |= w ^ spread[out.WStrobe>>uint(i)&1]
		}
		// Write data is observable only on cycles where the golden machine
		// or the faulty machine drives a write.
		if out.WStrobe != 0 {
			laneWrites = ^uint64(0)
		}
		if laneWrites != 0 {
			var wd uint64
			for i, sig := range r.wdata {
				wd |= s.SigWord(sig) ^ spread[out.WData>>uint(i)&1]
			}
			wdataDiff = wd & laneWrites
		}

		diff := addrDiff | daDiff | strobeDiff | wdataDiff
		if newly := diff & active &^ detected; newly != 0 {
			for newly != 0 {
				lane := bits.TrailingZeros64(newly)
				detectedAt[lane] = int32(t)
				m := uint64(1) << uint(lane)
				var groups uint8
				if addrDiff&m != 0 {
					groups |= SigAddr
				}
				if daDiff&m != 0 {
					groups |= SigDataAccess
				}
				if strobeDiff&m != 0 {
					groups |= SigStrobe
				}
				if wdataDiff&m != 0 {
					groups |= SigWData
				}
				sigGroups[lane] = groups
				newly &^= m
			}
			detected |= diff & active
			if detected == active {
				return
			}
		}
		s.Latch()
	}
}

// SampleFaults returns a deterministic random sample of n faults (the
// whole list when n is 0 or not smaller than the list).
func SampleFaults(faults []Fault, n int, seed int64) []Fault {
	if n <= 0 || n >= len(faults) {
		return faults
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(faults))[:n]
	sampled := make([]Fault, n)
	for i, p := range perm {
		sampled[i] = faults[p]
	}
	return sampled
}

// MergeDetections unions detections of several runs over the same fault
// list (e.g. periodic self-test fragments executed separately): a fault
// counts as detected if any run observed it; the recorded cycle is the
// earliest run's, offset by that run's start in the overall schedule.
func MergeDetections(results ...*Result) (*Result, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("fault: nothing to merge")
	}
	base := results[0]
	merged := &Result{
		Faults:     base.Faults,
		DetectedAt: append([]int32(nil), base.DetectedAt...),
		Cycles:     0,
	}
	offset := int32(0)
	for ri, r := range results {
		if len(r.Faults) != len(base.Faults) {
			return nil, fmt.Errorf("fault: run %d has %d faults, run 0 has %d", ri, len(r.Faults), len(base.Faults))
		}
		for i := range r.Faults {
			if r.Faults[i].Site != base.Faults[i].Site {
				return nil, fmt.Errorf("fault: run %d fault %d differs from run 0", ri, i)
			}
		}
		if ri > 0 {
			for i, c := range r.DetectedAt {
				if c >= 0 && merged.DetectedAt[i] < 0 {
					merged.DetectedAt[i] = offset + c
				}
			}
		}
		merged.Cycles += r.Cycles
		offset += int32(r.Cycles)
	}
	return merged, nil
}
