package fault

import (
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/gate"
	"repro/internal/plasma"
)

// Engine selects the fault-simulation algorithm.
type Engine int

const (
	// EngineEvent (the default) is the differential engine: event-driven
	// incremental logic evaluation, passes packed by fault-activation
	// cycle and fast-forwarded to a golden checkpoint just before their
	// earliest activation, never-activated faults skipped outright, and
	// detected lanes conformed back to the golden trajectory. Bit-for-bit
	// equivalent to EngineOblivious (cross-checked in tests).
	EngineEvent Engine = iota
	// EngineOblivious is the reference implementation: every gate
	// re-evaluated every cycle, every fault simulated from reset.
	EngineOblivious
)

// Options tunes a fault-simulation run.
type Options struct {
	// Workers is the number of parallel simulation goroutines;
	// 0 means GOMAXPROCS.
	Workers int
	// LaneWords caps the per-pass lane width in 64-lane words: a power of
	// two from 1 to 64 words carries 64..4096 faulty machines per pass. 0
	// means the default of 64 (4096 lanes). Passes are packed
	// width-adaptively up to this cap by a cost model (see chooseWidth):
	// each pass takes the width minimizing estimated grading cost per
	// fault, trading per-cycle fixed-cost amortization against
	// cone-overlap event activity and idle late-activating lanes.
	LaneWords int
	// Sample, when nonzero, simulates only a deterministic random sample of
	// that many collapsed faults (statistical coverage estimation for fast
	// benches); 0 simulates the full list.
	Sample int
	// Seed drives the sampling permutation.
	Seed int64
	// Engine selects the simulation algorithm (default EngineEvent).
	Engine Engine
	// NoFusion disables checkpoint-window replay fusion. By default the
	// differential engine groups consecutive passes whose start cycles
	// share a checkpoint window, reconstructs each pass's golden start
	// state by batched XOR-delta application (no simulated replay), and
	// warm-restarts the simulator between passes by diffing hook sets and
	// flip-flop state instead of Reset+LoadState+full re-sweep. The unfused
	// path is bit-identical (asserted in tests) and kept as the reference.
	NoFusion bool
	// CollectInto, when non-nil, accumulates the run's SimStats (also
	// available per run as Result.Stats) — useful for totals across
	// multi-run benches.
	CollectInto *SimStats
}

// Result is the outcome of a fault-simulation run.
type Result struct {
	// Faults is the simulated fault list (the sample, when sampling).
	Faults []Fault
	// DetectedAt[i] is the first cycle where fault i was observed at a
	// primary output, or -1 if it escaped.
	DetectedAt []int32
	// SignatureGroups[i] records which output groups diverged at fault
	// i's first detection (Sig* bits), for fault-dictionary diagnosis.
	SignatureGroups []uint8
	// Cycles is the length of the replayed golden execution.
	Cycles int
	// Stats reports how much work the engine performed.
	Stats SimStats
}

// Detected reports whether fault i was detected.
func (r *Result) Detected(i int) bool { return r.DetectedAt[i] >= 0 }

// Coverage reports collapsed fault coverage in percent.
func (r *Result) Coverage() float64 {
	if len(r.Faults) == 0 {
		return 0
	}
	n := 0
	for i := range r.Faults {
		if r.Detected(i) {
			n++
		}
	}
	return 100 * float64(n) / float64(len(r.Faults))
}

// WeightedCoverage reports equivalence-weighted (uncollapsed) coverage in
// percent.
func (r *Result) WeightedCoverage() float64 {
	det, tot := 0, 0
	for i, f := range r.Faults {
		tot += f.Equiv
		if r.Detected(i) {
			det += f.Equiv
		}
	}
	if tot == 0 {
		return 0
	}
	return 100 * float64(det) / float64(tot)
}

// PassGroup is one planned fault-simulation pass: the indices (into the
// planner's fault list) of the faults it carries, the cycle the pass
// starts simulating at, the pass's lane width in 64-lane words (64*Width
// lanes), and the cost model's estimate of the pass's absolute grading
// cost. Cost is in the arbitrary units of the width policy's per-cycle
// model — meaningless alone, comparable across groups of one plan — which
// is what the sharding coordinator balances shards by.
type PassGroup struct {
	Idxs  []int
	Start int32
	Width int
	Cost  float64
}

// PlanPasses exposes the deterministic pass packing Simulate uses: the
// same faults, golden trace, engine and lane-width cap always yield the
// same groups, in the same order. Never-activated faults (skipped, the
// second return) appear in no group — their site never holds the
// activating value anywhere in the golden run, so they are provably
// undetectable by this program and Simulate would not grade them either.
//
// The returned plan, like the golden trace and fault list it was derived
// from, is immutable shared state: grading never writes through it, so
// one plan may back any number of concurrent Simulate or Warm.Grade
// calls (asserted under the race detector in this package's and
// internal/serve's tests). This is what lets a grading service compute a
// program's plan once and serve every subsequent request from it.
func PlanPasses(n *gate.Netlist, golden *plasma.Golden, faults []Fault, engine Engine, laneWords int) ([]PassGroup, int64, error) {
	maxW, err := normLaneWords(laneWords)
	if err != nil {
		return nil, 0, err
	}
	if len(faults) == 0 {
		return nil, 0, nil
	}
	jobs, skipped := packPasses(n, golden, faults, engine, maxW)
	return jobs, skipped, nil
}

// normLaneWords applies the LaneWords default and validates the cap.
func normLaneWords(laneWords int) (int, error) {
	if laneWords == 0 {
		return DefaultLaneWords, nil
	}
	if laneWords < 1 || laneWords > gate.MaxLaneWords || laneWords&(laneWords-1) != 0 {
		return 0, fmt.Errorf("fault: LaneWords must be 0 or a power of two in [1,%d]; got %d", gate.MaxLaneWords, laneWords)
	}
	return laneWords, nil
}

// widthLog2 maps a lane width in {1,...,MaxLaneWords} to its histogram
// slot.
func widthLog2(w int) int { return bits.TrailingZeros(uint(w)) }

// widthSlots is the number of distinct lane widths
// (1, 2, 4, 8, 16, 32, 64).
const widthSlots = 7

// DefaultLaneWords is the lane-width cap used when Options.LaneWords is 0:
// the widest supported pass (64 words = 4096 faulty machines).
const DefaultLaneWords = gate.MaxLaneWords

// Simulate fault-simulates the collapsed fault list against a recorded
// golden execution of a self-test program on the CPU. Each pass carries up
// to 64*Options.LaneWords faulty machines in the bit lanes of one logic
// simulation; a fault is detected the first cycle any primary output (bus
// address, access kind, write strobes, or strobed write data) differs from
// the golden value. Detected machines are dropped; a pass ends early once
// all its lanes have been detected.
func Simulate(cpu *plasma.CPU, golden *plasma.Golden, faults []Fault, opt Options) (*Result, error) {
	maxW, err := normLaneWords(opt.LaneWords)
	if err != nil {
		return nil, err
	}
	faults = SampleFaults(faults, opt.Sample, opt.Seed)
	res := &Result{
		Faults:          faults,
		DetectedAt:      make([]int32, len(faults)),
		SignatureGroups: make([]uint8, len(faults)),
		Cycles:          golden.Cycles,
	}
	for i := range res.DetectedAt {
		res.DetectedAt[i] = -1
	}

	jobs, skipped := packPasses(cpu.Netlist, golden, faults, opt.Engine, maxW)
	res.Stats.SkippedFaults = skipped
	res.Stats.GoldenDenseBytes = golden.DenseStateBytes()
	res.Stats.GoldenStoredBytes = golden.StoredStateBytes()
	res.Stats.TraceDenseBytes = golden.DenseTraceBytes()
	res.Stats.TraceStoredBytes = golden.StoredTraceBytes()

	// Replay fusion: the differential engine dispatches whole checkpoint
	// windows (maximal runs of consecutive planned passes whose start
	// cycles share a CheckpointFloor) instead of single passes, so one
	// worker grades a window's passes back to back on a warm simulator off
	// one rolling golden-state reconstruction. The oblivious engine packs
	// everything at cycle 0 and replays nothing, so it keeps the unfused
	// reference path.
	fused := opt.Engine != EngineOblivious && golden.HasActivation() && !opt.NoFusion
	var windows [][]PassGroup
	if fused {
		windows = groupWindows(jobs, golden)
	} else {
		windows = make([][]PassGroup, len(jobs))
		for i := range jobs {
			windows[i] = jobs[i : i+1]
		}
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(windows) {
		workers = len(windows)
	}
	if len(jobs) == 0 {
		if opt.CollectInto != nil {
			opt.CollectInto.Add(&res.Stats)
		}
		return res, nil
	}

	queue := make(chan []PassGroup, len(windows))
	for _, win := range windows {
		queue <- win
	}
	close(queue)

	var wg sync.WaitGroup
	errs := make([]error, workers)
	stats := make([]SimStats, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One simulator (and runner) per pass width actually seen;
			// jobs of the same width reuse the same simulator.
			var runners [widthSlots]*passRunner
			var ws SimStats
			var cur *stateCursor
			if fused {
				cur = &stateCursor{g: golden, buf: make([]uint64, golden.StateWords())}
			}
			for win := range queue {
				if fused && len(win) > 1 {
					ws.FusedWindows++
				}
				for _, j := range win {
					lg := widthLog2(j.Width)
					r := runners[lg]
					if r == nil {
						var s *gate.Sim
						var err error
						if opt.Engine == EngineOblivious {
							s, err = gate.NewSimWidth(cpu.Netlist, j.Width)
						} else {
							s, err = gate.NewEventSimWidth(cpu.Netlist, j.Width)
						}
						if err != nil {
							errs[w] = err
							return
						}
						r = newPassRunner(cpu, s, golden)
						runners[lg] = r
					}
					var start []uint64
					if fused {
						start = cur.stateAt(j.Start)
					}
					r.runPass(faults, j, res.DetectedAt, res.SignatureGroups, start)
				}
			}
			for lg, r := range runners {
				if r == nil {
					continue
				}
				if evals, events := r.sim.EvalStats(); r.sim.EventDriven() {
					r.stats.GateEvals = int64(evals)
					r.stats.Events = int64(events)
				} else {
					r.stats.GateEvals = r.stats.SimCycles * int64(r.sim.CombGates())
				}
				r.stats.GateEvalsByWidth[lg] = r.stats.GateEvals
				ks := r.sim.KernelStats()
				r.stats.SIMDKernelRuns = int64(ks.SIMDRuns)
				r.stats.GenericKernelRuns = int64(ks.GenericRuns)
				r.stats.SIMDRunsByWidth[lg] = int64(ks.SIMDRuns)
				r.stats.GenericRunsByWidth[lg] = int64(ks.GenericRuns)
				r.stats.BatchedGateEvals = int64(ks.BatchedGates)
				r.stats.UniformFastPathHits = int64(ks.UniformHits)
				r.stats.ScalarKernelEvals = int64(ks.ScalarEvals)
				ws.Add(&r.stats)
			}
			stats[w] = ws
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for w := range stats {
		res.Stats.Add(&stats[w])
	}
	if opt.CollectInto != nil {
		opt.CollectInto.Add(&res.Stats)
	}
	return res, nil
}

// packPasses groups faults into lane-parallel passes of up to 64*maxW
// machines. The oblivious engine packs in list order from cycle 0, full
// chunks at the cap and the residue at the narrowest width holding it. The
// differential engine sorts faults by quantized activation window, then by
// fanout-cone signature (faults whose divergence spreads through the same
// region of the machine share a pass, keeping a wide pass's event activity
// localized instead of touching the union of hundreds of unrelated cones),
// then by component and index for determinism. Faults that never activate
// — their site never holds the activating value anywhere in the golden run
// — are provably undetectable and are skipped outright; each pass starts
// at the earliest activation among its faults.
//
// Width is chosen per pass by the cost model in chooseWidth: the width
// minimizing estimated grading cost per fault over the chunk, from
// measured per-width constants and the chunk's cone-signature overlap.
func packPasses(n *gate.Netlist, golden *plasma.Golden, faults []Fault, engine Engine, maxW int) ([]PassGroup, int64) {
	differential := engine != EngineOblivious && golden.HasActivation()
	order := make([]actFault, 0, len(faults))
	var skipped int64
	var cones []uint64
	if differential {
		cones = n.FanoutConeSigs()
	}
	for i, f := range faults {
		var act int32
		var cone uint64
		if differential {
			act = golden.ActivationCycle(n, f.Site)
			if act < 0 {
				skipped++
				continue
			}
			cone = gate.ConeOf(cones, f.Site)
		}
		order = append(order, actFault{idx: i, act: act, cone: cone, comp: f.Comp})
	}
	if differential {
		// Quantize activation cycles into windows so cone grouping has
		// room to work; a pass still fast-forwards to the true minimum
		// activation of the faults it carries, so the quantization only
		// bounds the fast-forward loss, never correctness.
		quant := int32(golden.Cycles / 64)
		if quant < 1 {
			quant = 1
		}
		sort.Slice(order, func(a, b int) bool {
			x, y := order[a], order[b]
			if xw, yw := x.act/quant, y.act/quant; xw != yw {
				return xw < yw
			}
			if x.cone != y.cone {
				return x.cone < y.cone
			}
			if x.comp != y.comp {
				return x.comp < y.comp
			}
			if x.act != y.act {
				return x.act < y.act
			}
			return x.idx < y.idx
		})
	}
	var jobs []PassGroup
	for lo := 0; lo < len(order); {
		var w, hi int
		var start int32
		if differential {
			w, hi, start = chooseWidth(order, lo, maxW, golden)
		} else {
			rem := len(order) - lo
			w = maxW
			if rem < 64*maxW {
				w = 1
				for 64*w < rem && w < maxW {
					w *= 2
				}
			}
			hi = min(lo+64*w, len(order))
		}
		idxs := make([]int, hi-lo)
		for k := range idxs {
			idxs[k] = order[lo+k].idx
		}
		cost := passCost(golden, start, order[lo:hi], w) * float64(hi-lo)
		jobs = append(jobs, PassGroup{Idxs: idxs, Start: start, Width: w, Cost: cost})
		lo = hi
	}
	return jobs, skipped
}

// groupWindows splits the packed pass plan into maximal runs of
// consecutive passes whose start cycles share a checkpoint window. The
// packer sorts passes by (quantized) activation, so equal-floor passes are
// adjacent and the grouping preserves plan order exactly — fusion changes
// how passes are dispatched, never which passes exist or what they carry.
func groupWindows(jobs []PassGroup, g *plasma.Golden) [][]PassGroup {
	wins := make([][]PassGroup, 0, len(jobs))
	for lo := 0; lo < len(jobs); {
		hi := lo + 1
		floor := g.CheckpointFloor(jobs[lo].Start)
		for hi < len(jobs) && g.CheckpointFloor(jobs[hi].Start) == floor {
			hi++
		}
		wins = append(wins, jobs[lo:hi])
		lo = hi
	}
	return wins
}

// stateCursor reconstructs the golden flip-flop state entering ascending
// cycles with one rolling buffer: a request inside the cursor's current
// checkpoint window advances by applying only the XOR deltas between the
// cursor and the target (one batched AdvanceStateRange), a request in a
// later window re-bases on that window's boundary snapshot first, and a
// request behind the cursor (a retrograde width switch inside a window)
// re-bases the same way. Each fused pass start costs a handful of delta
// words instead of a simulated golden replay.
type stateCursor struct {
	g   *plasma.Golden
	buf []uint64
	at  int32
	ok  bool
}

func (c *stateCursor) stateAt(t int32) []uint64 {
	b := c.g.CheckpointFloor(t)
	if !c.ok || t < c.at || b > c.at {
		copy(c.buf, c.g.Snapshot(b))
		c.at, c.ok = b, true
	}
	c.g.AdvanceStateRange(c.buf, c.at, t)
	c.at = t
	return c.buf
}

// passRunner owns one logic simulator and the precomputed signal lists.
type passRunner struct {
	sim    *gate.Sim
	golden *plasma.Golden
	stats  SimStats

	// warm marks a simulator that already graded a fused pass: its signal
	// values satisfy the event invariant for some recent golden-adjacent
	// state, so the next fused pass restores by diffing (ReplaceFaults +
	// RestoreState) instead of the cold Reset+SetFaults+LoadState.
	warm bool

	rdata   []gate.Sig
	addr    []gate.Sig
	wdata   []gate.Sig
	wstrobe []gate.Sig
	daccess gate.Sig

	// gstate is the rolling golden flip-flop state entering the cycle the
	// pass is about to simulate, advanced each cycle by the golden trace's
	// sparse delta stream; detected lanes are conformed back to it.
	gstate []uint64

	// lf is the per-pass lane-fault scratch list, reused across passes so
	// a warm runner's steady state allocates nothing per pass.
	lf []gate.LaneFault
}

func newPassRunner(cpu *plasma.CPU, s *gate.Sim, golden *plasma.Golden) *passRunner {
	n := cpu.Netlist
	return &passRunner{
		sim:     s,
		golden:  golden,
		rdata:   n.InputBus(plasma.PortRData),
		addr:    n.OutputBus(plasma.PortAddr),
		wdata:   n.OutputBus(plasma.PortWData),
		wstrobe: n.OutputBus(plasma.PortWStrobe),
		daccess: n.OutputBus(plasma.PortDataAccess)[0],
	}
}

var spread = [2]uint64{0, ^uint64(0)}

// runPass simulates one group of up to 64*LaneWords faults to completion,
// writing each lane's outcome through the pass's original-index mapping.
// Lane L lives in bit L%64 of lane word L/64 of every signal.
//
// Unfused (start == nil): a pass starting past cycle 0 is fast-forwarded
// by loading the golden flip-flop snapshot at the nearest checkpoint
// boundary at or before its earliest activation, then replaying the (at
// most CheckpointK-1) golden cycles up to it on the already-warm event
// simulator: before its earliest activation every faulty machine is
// bit-identical to the golden machine, so nothing is lost at the boundary
// and the replayed cycles generate only the golden machine's own switching
// activity.
//
// Fused (start != nil): start is the golden flip-flop state entering
// job.Start, reconstructed from the checkpoint trace by batched XOR-delta
// application. The same bit-identity argument removes the simulated replay
// outright — the faulty machines' state entering their earliest activation
// *is* the golden state, the replayed cycles can produce no detection
// (every output equals the golden trace by definition), so simulation
// begins at job.Start directly. A warm simulator additionally restores by
// diffing: ReplaceFaults swaps hook sets without a full invalidation and
// RestoreState overwrites only the flip-flops that differ, so the next
// Eval re-evaluates the changed cones instead of obliviously sweeping the
// whole netlist as Reset+SetFaults+LoadState would force.
//
// When checkpoints are available, each detected lane is conformed back to
// the golden trajectory (state overwrite + fault disarm) — sound because
// detected lanes are masked out of all future detection logic — which
// starves the event queue of its activity.
func (r *passRunner) runPass(faults []Fault, job PassGroup, detectedAt []int32, sigGroups []uint8, start []uint64) {
	s := r.sim
	w := s.LaneWords()
	lf := r.lf[:0]
	for lane, idx := range job.Idxs {
		lf = append(lf, gate.LaneFault{Site: faults[idx].Site, Lane: lane})
	}
	r.lf = lf
	g := r.golden
	conform := g.HasActivation() && s.EventDriven()
	var ff int32
	if start != nil {
		ff = job.Start
		boundary := g.CheckpointFloor(job.Start)
		if r.warm {
			s.ReplaceFaults(lf)
			s.RestoreState(g.DFFs, start)
			r.stats.HookDiffs++
		} else {
			// First fused pass on this simulator: its construction state is
			// all zeros (a fresh machine's reset state), so no Reset is
			// needed before loading the start snapshot.
			s.SetFaults(lf)
			s.LoadState(g.DFFs, start)
			r.warm = true
		}
		// FastForwarded keeps its unfused meaning (cycles skipped by
		// jumping to the checkpoint boundary) so the counter is invariant
		// under fusion; the boundary-to-activation cycles move from
		// ReplayedCycles to ReplaySavedCycles.
		r.stats.FastForwarded += int64(boundary)
		r.stats.ReplaySavedCycles += int64(job.Start - boundary)
	} else {
		s.Reset()
		s.SetFaults(lf)
		if job.Start > 0 {
			ff = g.CheckpointFloor(job.Start)
			if ff > 0 {
				s.LoadState(g.DFFs, g.Snapshot(ff))
			}
		}
		r.stats.FastForwarded += int64(ff)
		r.stats.ReplayedCycles += int64(job.Start - ff)
	}
	if conform {
		if r.gstate == nil {
			r.gstate = make([]uint64, g.StateWords())
		}
		if start != nil {
			copy(r.gstate, start)
		} else {
			copy(r.gstate, g.Snapshot(ff))
		}
	}

	r.stats.Passes++
	r.stats.PassWidthHist[widthLog2(w)]++

	// Per-lane-word bitmaps of live, detected and to-be-conformed lanes.
	var active, detected, toConform [gate.MaxLaneWords]uint64
	for k := 0; k < len(job.Idxs)>>6; k++ {
		active[k] = ^uint64(0)
	}
	if rem := len(job.Idxs) & 63; rem != 0 {
		active[len(job.Idxs)>>6] = 1<<uint(rem) - 1
	}
	anyConform := false

	exit := func(t int) {
		if t >= 0 && g.Cycles > 0 {
			r.stats.ExitHist[t*10/g.Cycles]++
		}
	}
	var addrDiff, daDiff, strobeDiff, wdataDiff, laneWrites [gate.MaxLaneWords]uint64
	for t := int(ff); t < g.Cycles; t++ {
		r.stats.SimCycles++
		s.SetBusUniform(plasma.PortRData, uint64(g.RDataAt(t)))
		s.Eval()

		out := g.OutAt(t)
		for k := 0; k < w; k++ {
			addrDiff[k], daDiff[k], strobeDiff[k], wdataDiff[k], laneWrites[k] = 0, 0, 0, 0, 0
		}
		for i, sig := range r.addr {
			gv := spread[out.Addr>>uint(i)&1]
			sw := s.SigWords(sig)
			for k := 0; k < w; k++ {
				addrDiff[k] |= sw[k] ^ gv
			}
		}
		var da uint64
		if out.DataAccess {
			da = ^uint64(0)
		}
		for k, sv := range s.SigWords(r.daccess) {
			daDiff[k] = sv ^ da
		}

		for i, sig := range r.wstrobe {
			gv := spread[out.WStrobe>>uint(i)&1]
			sw := s.SigWords(sig)
			for k := 0; k < w; k++ {
				laneWrites[k] |= sw[k]
				strobeDiff[k] |= sw[k] ^ gv
			}
		}
		// Write data is observable only on cycles where the golden machine
		// or the faulty machine drives a write.
		var anyWrites uint64
		if out.WStrobe != 0 {
			for k := 0; k < w; k++ {
				laneWrites[k] = ^uint64(0)
			}
			anyWrites = ^uint64(0)
		} else {
			for k := 0; k < w; k++ {
				anyWrites |= laneWrites[k]
			}
		}
		if anyWrites != 0 {
			for i, sig := range r.wdata {
				gv := spread[out.WData>>uint(i)&1]
				sw := s.SigWords(sig)
				for k := 0; k < w; k++ {
					wdataDiff[k] |= sw[k] ^ gv
				}
			}
			for k := 0; k < w; k++ {
				wdataDiff[k] &= laneWrites[k]
			}
		}

		var newly [gate.MaxLaneWords]uint64
		var anyNew uint64
		for k := 0; k < w; k++ {
			d := (addrDiff[k] | daDiff[k] | strobeDiff[k] | wdataDiff[k]) & active[k] &^ detected[k]
			newly[k] = d
			anyNew |= d
		}
		if anyNew != 0 {
			window := t * 10 / g.Cycles
			dropped := 0
			allDet := true
			for k := 0; k < w; k++ {
				for rem := newly[k]; rem != 0; {
					bit := bits.TrailingZeros64(rem)
					lane := k<<6 + bit
					detectedAt[job.Idxs[lane]] = int32(t)
					m := uint64(1) << uint(bit)
					var groups uint8
					if addrDiff[k]&m != 0 {
						groups |= SigAddr
					}
					if daDiff[k]&m != 0 {
						groups |= SigDataAccess
					}
					if strobeDiff[k]&m != 0 {
						groups |= SigStrobe
					}
					if wdataDiff[k]&m != 0 {
						groups |= SigWData
					}
					sigGroups[job.Idxs[lane]] = groups
					rem &^= m
				}
				dropped += bits.OnesCount64(newly[k])
				detected[k] |= newly[k]
				toConform[k] |= newly[k]
				if detected[k] != active[k] {
					allDet = false
				}
			}
			r.stats.LanesDropped += int64(dropped)
			r.stats.DroppedPerWindow[window] += int64(dropped)
			if allDet {
				exit(t)
				return
			}
			anyConform = true
		}
		s.Latch()
		if conform {
			// Advance the rolling golden state to the state entering cycle
			// t+1, then conform detected lanes to it. Must happen after
			// Latch: Latch would overwrite the conformed bits with the
			// lane's faulty D values.
			g.AdvanceState(r.gstate, int32(t))
			if anyConform {
				for k := 0; k < w; k++ {
					for rem := toConform[k]; rem != 0; {
						bit := bits.TrailingZeros64(rem)
						s.DropLaneFaults(k<<6 + bit)
						s.SetLaneState(k<<6+bit, g.DFFs, r.gstate)
						rem &^= 1 << uint(bit)
					}
					toConform[k] = 0
				}
				anyConform = false
			}
		}
	}
	exit(g.Cycles - 1)
}

// SampleFaults returns a deterministic random sample of n faults (the
// whole list when n is 0 or not smaller than the list).
func SampleFaults(faults []Fault, n int, seed int64) []Fault {
	if n <= 0 || n >= len(faults) {
		return faults
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(faults))[:n]
	sampled := make([]Fault, n)
	for i, p := range perm {
		sampled[i] = faults[p]
	}
	return sampled
}

