package fault

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// This file is the merge layer: combining several fault-simulation
// Results over the same fault list into one. Two schedules exist:
//
//   - MergeDetections models *sequential* runs (periodic self-test
//     fragments executed one after another): detection cycles of run i
//     are offset by the total length of runs 0..i-1.
//   - MergeShards models *concurrent* runs of the same golden execution
//     (the sharded grading coordinator, internal/shard): every run
//     replays the same cycles, so detection cycles union without offset
//     and the merged result is bit-identical to an unsharded run.
//
// Both validate that all inputs grade the same fault universe and report
// the universe hashes of the disagreeing inputs on mismatch, so a bad
// merge (a worker that graded a different netlist, a stale cache entry)
// is diagnosable rather than a bare index error.

// UniverseHash returns the hex SHA-256 of a fault list's identity — every
// site, component and equivalence count, in order. Two fault lists merge
// only if their hashes match; merge errors embed the hashes so the
// disagreeing side can be identified across process boundaries.
func UniverseHash(faults []Fault) string {
	h := sha256.New()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(len(faults)))
	h.Write(buf[:8])
	for _, f := range faults {
		binary.LittleEndian.PutUint32(buf[:4], uint32(f.Site.Gate))
		buf[4] = byte(f.Site.Pin)
		buf[5] = 0
		if f.Site.Stuck {
			buf[5] = 1
		}
		binary.LittleEndian.PutUint16(buf[6:8], uint16(f.Comp))
		binary.LittleEndian.PutUint64(buf[8:16], uint64(f.Equiv))
		h.Write(buf[:16])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// checkSameUniverse verifies that run ri grades the same fault list as
// run 0. The error names the first disagreeing fault and carries both
// universe hashes.
func checkSameUniverse(base, r *Result, ri int) error {
	if len(r.Faults) != len(base.Faults) {
		return fmt.Errorf("fault: merge universe mismatch: run %d has %d faults (universe %s), run 0 has %d (universe %s)",
			ri, len(r.Faults), UniverseHash(r.Faults), len(base.Faults), UniverseHash(base.Faults))
	}
	for i := range r.Faults {
		if r.Faults[i].Site != base.Faults[i].Site {
			return fmt.Errorf("fault: merge universe mismatch: run %d fault %d is %s, run 0 has %s (universes %s vs %s)",
				ri, i, r.Faults[i].Site, base.Faults[i].Site, UniverseHash(r.Faults), UniverseHash(base.Faults))
		}
	}
	return nil
}

// MergeDetections unions detections of several runs over the same fault
// list (e.g. periodic self-test fragments executed separately): a fault
// counts as detected if any run observed it; the recorded cycle and
// signature groups are the earliest-detecting run's, the cycle offset by
// that run's start in the overall schedule.
func MergeDetections(results ...*Result) (*Result, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("fault: nothing to merge")
	}
	base := results[0]
	merged := &Result{
		Faults:          base.Faults,
		DetectedAt:      append([]int32(nil), base.DetectedAt...),
		SignatureGroups: make([]uint8, len(base.Faults)),
		Cycles:          0,
	}
	copy(merged.SignatureGroups, base.SignatureGroups)
	offset := int32(0)
	for ri, r := range results {
		if err := checkSameUniverse(base, r, ri); err != nil {
			return nil, err
		}
		if ri > 0 {
			for i, c := range r.DetectedAt {
				if c >= 0 && merged.DetectedAt[i] < 0 {
					merged.DetectedAt[i] = offset + c
					if i < len(r.SignatureGroups) {
						merged.SignatureGroups[i] = r.SignatureGroups[i]
					}
				}
			}
		}
		merged.Cycles += r.Cycles
		offset += int32(r.Cycles)
		merged.Stats.Add(&r.Stats)
	}
	return merged, nil
}

// MergeShards unions detections of several runs of the *same* golden
// execution, each grading a subset of the shared fault list (lanes the
// run did not grade stay -1): the sharded grading merge. All runs must
// have the same cycle count; each fault takes the earliest detection
// cycle observed by any run, with that run's signature groups. Because
// per-fault outcomes are independent of pass packing, merging any
// partition of a run's faults reproduces the unsharded result bit for
// bit; the operation is commutative, associative and idempotent (ties on
// the detection cycle keep the earlier argument, which for runs of one
// golden execution carries identical signature groups).
func MergeShards(results ...*Result) (*Result, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("fault: nothing to merge")
	}
	base := results[0]
	merged := &Result{
		Faults:          base.Faults,
		DetectedAt:      append([]int32(nil), base.DetectedAt...),
		SignatureGroups: make([]uint8, len(base.Faults)),
		Cycles:          base.Cycles,
	}
	copy(merged.SignatureGroups, base.SignatureGroups)
	merged.Stats.Add(&base.Stats)
	for ri, r := range results[1:] {
		if err := checkSameUniverse(base, r, ri+1); err != nil {
			return nil, err
		}
		if r.Cycles != base.Cycles {
			return nil, fmt.Errorf("fault: merge cycle mismatch: run %d replayed %d cycles, run 0 replayed %d (universe %s)",
				ri+1, r.Cycles, base.Cycles, UniverseHash(base.Faults))
		}
		for i, c := range r.DetectedAt {
			if c >= 0 && (merged.DetectedAt[i] < 0 || c < merged.DetectedAt[i]) {
				merged.DetectedAt[i] = c
				merged.SignatureGroups[i] = 0
				if i < len(r.SignatureGroups) {
					merged.SignatureGroups[i] = r.SignatureGroups[i]
				}
			}
		}
		merged.Stats.Add(&r.Stats)
	}
	return merged, nil
}
