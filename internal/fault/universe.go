// Package fault implements the single-stuck-at fault model over gate
// netlists: fault-universe enumeration, classic equivalence collapsing, and
// a bit-parallel (64 faults per pass) full-processor fault simulator that
// replays a recorded golden execution and observes the processor's primary
// outputs, mirroring the FlexTest setup of the paper.
package fault

import (
	"repro/internal/gate"
)

// Fault is one collapsed stuck-at fault: a representative site plus the
// number of equivalent uncollapsed faults it stands for.
type Fault struct {
	Site  gate.FaultSite
	Comp  gate.CompID
	Equiv int // >= 1: size of the equivalence class
}

// Universe enumerates the collapsed stuck-at fault universe of a netlist.
//
// Enumerated sites: both polarities on every gate output (stem) and on
// every gate input pin (fanout branch), excluding constant generators.
// Equivalence collapsing applies the classic rules:
//
//   - BUF/DFF input s-a-v is equivalent to its output s-a-v; NOT input
//     s-a-v to its output s-a-(1-v).
//   - A controlling-value input fault of AND/NAND/OR/NOR is equivalent to
//     the corresponding output fault (AND in s-a-0 ≡ out s-a-0, NAND in
//     s-a-0 ≡ out s-a-1, OR in s-a-1 ≡ out s-a-1, NOR in s-a-1 ≡ out
//     s-a-0).
//   - A branch on a fanout-free net is equivalent to its stem.
//
// Each absorbed fault increments the Equiv count of its representative, so
// both collapsed and uncollapsed coverage can be reported.
func Universe(n *gate.Netlist) []Fault {
	fanout := make([]int, n.NumSignals())
	for i := range n.Gates {
		g := &n.Gates[i]
		for p := 0; p < g.Kind.NumInputs(); p++ {
			fanout[g.In[p]]++
		}
	}
	// Observed outputs count as fanout so their stems stay representative.
	for _, s := range n.ObservedSignals() {
		fanout[s]++
	}

	// Stem faults first; remember their indices for absorption.
	var faults []Fault
	stemIdx := make([][2]int, n.NumSignals()) // [s-a-0, s-a-1] index+1
	for i := range n.Gates {
		g := &n.Gates[i]
		if g.Kind == gate.Const0 || g.Kind == gate.Const1 {
			continue
		}
		for v := 0; v < 2; v++ {
			faults = append(faults, Fault{
				Site:  gate.FaultSite{Gate: gate.Sig(i), Pin: 0, Stuck: v == 1},
				Comp:  g.Comp,
				Equiv: 1,
			})
			stemIdx[i][v] = len(faults)
		}
	}
	absorbStem := func(sig gate.Sig, v int) {
		if idx := stemIdx[sig][v]; idx > 0 {
			faults[idx-1].Equiv++
		}
	}

	for i := range n.Gates {
		g := &n.Gates[i]
		for p := 0; p < g.Kind.NumInputs(); p++ {
			drv := g.In[p]
			for v := 0; v < 2; v++ {
				if rep, ok := inputEquiv(g.Kind, p, v); ok {
					// Equivalent to this gate's own output fault.
					absorbStem(gate.Sig(i), rep)
					continue
				}
				if fanout[drv] == 1 {
					// Fanout-free branch: equivalent to the driver stem.
					absorbStem(drv, v)
					continue
				}
				faults = append(faults, Fault{
					Site:  gate.FaultSite{Gate: gate.Sig(i), Pin: int8(p + 1), Stuck: v == 1},
					Comp:  g.Comp,
					Equiv: 1,
				})
			}
		}
	}
	return faults
}

// inputEquiv reports whether a stuck-at-v fault on input pin p of a gate of
// kind k is equivalent to an output fault, and which output polarity.
func inputEquiv(k gate.Kind, p, v int) (outV int, ok bool) {
	switch k {
	case gate.Buf, gate.DFF:
		return v, true
	case gate.Not:
		return 1 - v, true
	case gate.And2:
		if v == 0 {
			return 0, true
		}
	case gate.Nand2:
		if v == 0 {
			return 1, true
		}
	case gate.Or2:
		if v == 1 {
			return 1, true
		}
	case gate.Nor2:
		if v == 1 {
			return 0, true
		}
	case gate.Mux2:
		// Select (pin 2) and data pins of a mux have no input-output
		// equivalence; keep all.
	}
	return 0, false
}

// TotalEquiv sums the equivalence-class sizes: the uncollapsed fault count.
func TotalEquiv(faults []Fault) int {
	total := 0
	for _, f := range faults {
		total += f.Equiv
	}
	return total
}
