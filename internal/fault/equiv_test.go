package fault

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/plasma"
)

// equivTestProgram keeps registers, memory and branches busy for the whole
// capture window so fault activations spread across many cycles — the
// boundary-alignment tests need activations in every residue class mod k.
const equivTestProgram = `
	li $t0, 0x1000
	li $t1, 0x5ea1
	li $s0, 12
lp:	sw $t1, 0($t0)
	lw $t2, 0($t0)
	addu $t1, $t1, $t2
	xor $t3, $t1, $t2
	nor $t4, $t3, $t1
	sw $t4, 4($t0)
	addiu $t0, $t0, 8
	addiu $s0, $s0, -1
	bne $s0, $zero, lp
	nop
h:	j h
	nop
`

// randomCombNetlist builds a random DAG of combinational cells over a few
// inputs, used to cross-check collapsing against exhaustive simulation.
func randomCombNetlist(rng *rand.Rand, nInputs, nGates int) *gate.Netlist {
	b := gate.NewBuilder("rand")
	sigs := b.InputBus("in", nInputs)
	kinds := []func(a, c gate.Sig) gate.Sig{
		b.And, b.Or, b.Nand, b.Nor, b.Xor, b.Xnor,
	}
	for i := 0; i < nGates; i++ {
		a := sigs[rng.Intn(len(sigs))]
		c := sigs[rng.Intn(len(sigs))]
		if rng.Intn(6) == 0 {
			sigs = append(sigs, b.Not(a))
			continue
		}
		sigs = append(sigs, kinds[rng.Intn(len(kinds))](a, c))
	}
	// Observe the last few signals.
	b.OutputBus("out", []gate.Sig(sigs[len(sigs)-3:]))
	return b.N
}

// detectionSignature exhaustively simulates a fault over all input values
// and returns the set of (input, output-bit) detections as a string key.
func detectionSignature(t *testing.T, n *gate.Netlist, f gate.FaultSite, nInputs int) string {
	t.Helper()
	s, err := gate.NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaults([]gate.LaneFault{{Site: f, Lane: 1}})
	var sb strings.Builder
	for v := uint64(0); v < 1<<uint(nInputs); v++ {
		s.SetBusUniform("in", v)
		s.Eval()
		if s.BusLane("out", 0) != s.BusLane("out", 1) {
			sb.WriteString(" ")
			sb.WriteByte(byte('0' + v%10))
			sb.WriteString(":")
			diff := s.BusLane("out", 0) ^ s.BusLane("out", 1)
			for b := 0; diff != 0; b++ {
				if diff&1 != 0 {
					sb.WriteByte(byte('a' + b))
				}
				diff >>= 1
			}
		}
	}
	return sb.String()
}

// TestCollapsedCoverageMatchesUncollapsed is the soundness property of
// equivalence collapsing: on random circuits, the set of input vectors
// that detects a representative fault must detect (somewhere) every count
// the representative absorbed. We verify the weaker but decisive
// consequence used by the coverage accounting: a pattern set detects the
// representative iff it detects each absorbed fault — checked by
// comparing full detectability (detectable by some vector) between the
// collapsed universe and the complete pin-fault universe.
func TestCollapsedCoverageMatchesUncollapsed(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		const nInputs = 6
		n := randomCombNetlist(rng, nInputs, 25)
		collapsed := Universe(n)

		// Exhaustive detectability of each collapsed representative.
		repDetectable := 0
		for _, f := range collapsed {
			if detectionSignature(t, n, f.Site, nInputs) != "" {
				repDetectable += f.Equiv
			}
		}

		// Exhaustive detectability of the complete uncollapsed universe.
		fullDetectable, fullTotal := 0, 0
		for i := range n.Gates {
			g := &n.Gates[i]
			if g.Kind == gate.Const0 || g.Kind == gate.Const1 {
				continue
			}
			for v := 0; v < 2; v++ {
				fullTotal++
				if detectionSignature(t, n, gate.FaultSite{Gate: gate.Sig(i), Pin: 0, Stuck: v == 1}, nInputs) != "" {
					fullDetectable++
				}
			}
			for p := 0; p < g.Kind.NumInputs(); p++ {
				for v := 0; v < 2; v++ {
					fullTotal++
					if detectionSignature(t, n, gate.FaultSite{Gate: gate.Sig(i), Pin: int8(p + 1), Stuck: v == 1}, nInputs) != "" {
						fullDetectable++
					}
				}
			}
		}
		if TotalEquiv(collapsed) != fullTotal {
			t.Fatalf("trial %d: equivalence weights sum to %d, full universe has %d",
				trial, TotalEquiv(collapsed), fullTotal)
		}
		if repDetectable != fullDetectable {
			t.Fatalf("trial %d: weighted detectable %d via representatives vs %d exhaustive",
				trial, repDetectable, fullDetectable)
		}
	}
}

// TestEquivalencePairsBehaveIdentically verifies the strong per-pair
// property on directed cases: an absorbed fault and its representative
// have identical detection signatures over all inputs and outputs.
func TestEquivalencePairsBehaveIdentically(t *testing.T) {
	b := gate.NewBuilder("pairs")
	in := b.InputBus("in", 4)
	// One gate of each collapsing kind, each with an extra fanout on its
	// inputs so branch faults are NOT absorbed by the fanout-free rule
	// (isolating the gate-type equivalences).
	and := b.And(in[0], in[1])
	nand := b.Nand(in[0], in[2])
	or := b.Or(in[1], in[2])
	nor := b.Nor(in[1], in[3])
	not := b.Not(in[3])
	b.OutputBus("out", []gate.Sig{and, nand, or, nor, not, b.Xor(in[0], in[3])})
	n := b.N

	pairs := []struct {
		branch, stem gate.FaultSite
	}{
		{gate.FaultSite{Gate: and, Pin: 1, Stuck: false}, gate.FaultSite{Gate: and, Pin: 0, Stuck: false}},
		{gate.FaultSite{Gate: and, Pin: 2, Stuck: false}, gate.FaultSite{Gate: and, Pin: 0, Stuck: false}},
		{gate.FaultSite{Gate: nand, Pin: 1, Stuck: false}, gate.FaultSite{Gate: nand, Pin: 0, Stuck: true}},
		{gate.FaultSite{Gate: or, Pin: 1, Stuck: true}, gate.FaultSite{Gate: or, Pin: 0, Stuck: true}},
		{gate.FaultSite{Gate: nor, Pin: 2, Stuck: true}, gate.FaultSite{Gate: nor, Pin: 0, Stuck: false}},
		{gate.FaultSite{Gate: not, Pin: 1, Stuck: false}, gate.FaultSite{Gate: not, Pin: 0, Stuck: true}},
		{gate.FaultSite{Gate: not, Pin: 1, Stuck: true}, gate.FaultSite{Gate: not, Pin: 0, Stuck: false}},
	}
	for _, p := range pairs {
		sa := detectionSignature(t, n, p.branch, 4)
		sb := detectionSignature(t, n, p.stem, 4)
		if sa != sb {
			t.Errorf("pair %v / %v: signatures differ:\n%q\n%q", p.branch, p.stem, sa, sb)
		}
		if sa == "" {
			t.Errorf("pair %v: untestable in this circuit, test is vacuous", p.branch)
		}
	}
}

// namedGolden pairs a golden trace with a label for failure messages,
// used to sweep checkpoint intervals through the equivalence harness.
type namedGolden struct {
	name string
	g    *plasma.Golden
}

// captureGoldenKSweep captures the same program at k=1 (dense), the
// default interval and k=64, so equivalence checks cover the sparse
// reconstruction path at several boundary spacings.
func captureGoldenKSweep(t *testing.T, cpu *plasma.CPU, prog *asm.Program, cycles int) []namedGolden {
	t.Helper()
	var gs []namedGolden
	for _, k := range []int{1, plasma.DefaultCheckpointK, 64} {
		g, err := plasma.CaptureGoldenK(cpu, prog, cycles, k)
		if err != nil {
			t.Fatal(err)
		}
		gs = append(gs, namedGolden{fmt.Sprintf("k=%d", k), g})
	}
	return gs
}

// checkWidthEquivalence simulates the same workload at every supported
// lane width under both engines, for every supplied golden trace, and
// asserts that DetectedAt and SignatureGroups are bit-identical across
// every configuration. This is the end-to-end soundness property of lane
// widening and sparse checkpointing: each bit lane is an independent
// machine and each golden encodes the same fault-free execution, so
// neither the pass width, the packing order nor the checkpoint interval
// may influence any per-fault outcome.
func checkWidthEquivalence(t *testing.T, cpu *plasma.CPU, goldens []namedGolden, faults []Fault, opt Options) {
	t.Helper()
	var ref *Result
	var refName string
	for _, ng := range goldens {
		for _, eng := range []Engine{EngineOblivious, EngineEvent} {
			for _, w := range []int{1, 2, 4, 8, 16, 32, 64} {
				g := ng.g
				opt.Engine = eng
				opt.LaneWords = w
				name := fmt.Sprintf("%s engine=%v lanes=%d", ng.name, eng, w)
				res, err := Simulate(cpu, g, faults, opt)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				var histSum int64
				for i, c := range res.Stats.PassWidthHist {
					histSum += c
					if c > 0 && 1<<uint(i) > w {
						t.Errorf("%s: pass ran wider (%d words) than the cap", name, 1<<uint(i))
					}
				}
				if histSum != res.Stats.Passes {
					t.Errorf("%s: width histogram sums to %d, want %d passes", name, histSum, res.Stats.Passes)
				}
				if ref == nil {
					ref, refName = res, name
					continue
				}
				if len(res.DetectedAt) != len(ref.DetectedAt) {
					t.Fatalf("%s: %d results, %s has %d", name, len(res.DetectedAt), refName, len(ref.DetectedAt))
				}
				for i := range ref.DetectedAt {
					if res.DetectedAt[i] != ref.DetectedAt[i] {
						t.Fatalf("%s: fault %d (%v) DetectedAt=%d, %s says %d",
							name, i, res.Faults[i].Site, res.DetectedAt[i], refName, ref.DetectedAt[i])
					}
					if res.SignatureGroups[i] != ref.SignatureGroups[i] {
						t.Fatalf("%s: fault %d (%v) groups=%#x, %s says %#x",
							name, i, res.Faults[i].Site, res.SignatureGroups[i], refName, ref.SignatureGroups[i])
					}
				}
			}
		}
	}
}

// TestWidthEquivalencePhaseA asserts width equivalence on the real
// workload: the directed Phase-A self-test program on the full core.
func TestWidthEquivalencePhaseA(t *testing.T) {
	if testing.Short() {
		t.Skip("directed Phase-A width sweep is long; skipped with -short")
	}
	cpu := getCPU(t)
	comps := core.ClassifyNetlist(cpu.Netlist)
	st, err := core.GenerateSelfTest(comps, core.PhaseA)
	if err != nil {
		t.Fatal(err)
	}
	goldens := captureGoldenKSweep(t, cpu, st.Program, st.GateCycles())
	checkWidthEquivalence(t, cpu, goldens, Universe(cpu.Netlist), Options{Sample: 512, Seed: 9, Workers: 1})
}

// TestTierEquivalencePhaseA asserts the kernel fallback chain end to
// end: a full Phase A grade forced through every SIMD tier this host can
// run (on an AVX-512 box that exercises avx512, avx2, and generic in
// turn) must produce bit-identical DetectedAt and SignatureGroups. This
// is the whole-pipeline half of the dispatch-chain guarantee; the
// per-kernel half lives in gate's equivalence/fuzz suites.
func TestTierEquivalencePhaseA(t *testing.T) {
	if testing.Short() {
		t.Skip("forced-tier Phase-A sweep is long; skipped with -short")
	}
	defer gate.SetSIMDTier("auto")
	cpu := getCPU(t)
	comps := core.ClassifyNetlist(cpu.Netlist)
	st, err := core.GenerateSelfTest(comps, core.PhaseA)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := plasma.CaptureGolden(cpu, st.Program, st.GateCycles())
	if err != nil {
		t.Fatal(err)
	}
	faults := Universe(cpu.Netlist)
	opt := Options{Sample: 512, Seed: 9, Workers: 1}
	var ref *Result
	var refTier string
	for _, tier := range gate.SIMDTiers() {
		if _, err := gate.SetSIMDTier(tier); err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(cpu, golden, faults, opt)
		if err != nil {
			t.Fatalf("tier %s: %v", tier, err)
		}
		if res.Stats.SIMDKernelRuns == 0 && tier != "generic" && tier != "purego" {
			t.Errorf("tier %s: no SIMD kernel runs recorded", tier)
		}
		if ref == nil {
			ref, refTier = res, tier
			continue
		}
		for i := range ref.DetectedAt {
			if res.DetectedAt[i] != ref.DetectedAt[i] || res.SignatureGroups[i] != ref.SignatureGroups[i] {
				t.Fatalf("tier %s fault %d (%v): DetectedAt=%d groups=%#x, tier %s says %d/%#x",
					tier, i, res.Faults[i].Site, res.DetectedAt[i], res.SignatureGroups[i],
					refTier, ref.DetectedAt[i], ref.SignatureGroups[i])
			}
		}
	}
}

// TestWidthEquivalenceRandomProgram asserts width equivalence on a seeded
// pseudorandom self-test program.
func TestWidthEquivalenceRandomProgram(t *testing.T) {
	cpu := getCPU(t)
	p, err := baseline.Generate(baseline.Config{Seeds: []uint32{0xC0FFEE11}, Rounds: 2, RespBase: 0x00100000})
	if err != nil {
		t.Fatal(err)
	}
	goldens := captureGoldenKSweep(t, cpu, p.Program, p.GateCycles())
	checkWidthEquivalence(t, cpu, goldens, Universe(cpu.Netlist), Options{Sample: 256, Seed: 11})
}

// TestCheckpointBoundaryActivations targets the fast-forward edge cases:
// faults whose earliest activation falls exactly ON a checkpoint boundary
// (zero golden cycles replayed before injection) and exactly ONE CYCLE
// BEFORE a boundary (the maximum k-1 cycles replayed). Both populations
// must produce bit-identical results against a dense k=1 capture. A small
// interval keeps boundaries frequent so both populations are non-empty.
func TestCheckpointBoundaryActivations(t *testing.T) {
	const cycles, k = 160, 4
	cpu := getCPU(t)
	prog, err := asm.Assemble(equivTestProgram, 0)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := plasma.CaptureGoldenK(cpu, prog, cycles, 1)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := plasma.CaptureGoldenK(cpu, prog, cycles, k)
	if err != nil {
		t.Fatal(err)
	}
	var onBoundary, beforeBoundary []Fault
	for _, f := range Universe(cpu.Netlist) {
		act := sparse.ActivationCycle(cpu.Netlist, f.Site)
		switch {
		case act < 0:
			continue
		case act%k == 0:
			onBoundary = append(onBoundary, f)
		case act%k == k-1:
			beforeBoundary = append(beforeBoundary, f)
		}
	}
	if len(onBoundary) == 0 || len(beforeBoundary) == 0 {
		t.Fatalf("degenerate activation split: %d on-boundary, %d before-boundary",
			len(onBoundary), len(beforeBoundary))
	}
	// Bound the runtime: a few hundred of each population is plenty.
	if len(onBoundary) > 300 {
		onBoundary = onBoundary[:300]
	}
	if len(beforeBoundary) > 300 {
		beforeBoundary = beforeBoundary[:300]
	}
	for _, tc := range []struct {
		name   string
		faults []Fault
	}{
		{"activation-on-boundary", onBoundary},
		{"activation-before-boundary", beforeBoundary},
	} {
		for _, eng := range []Engine{EngineOblivious, EngineEvent} {
			opt := Options{Engine: eng, Workers: 1}
			want, err := Simulate(cpu, dense, tc.faults, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Simulate(cpu, sparse, tc.faults, opt)
			if err != nil {
				t.Fatal(err)
			}
			for i := range tc.faults {
				if got.DetectedAt[i] != want.DetectedAt[i] || got.SignatureGroups[i] != want.SignatureGroups[i] {
					t.Fatalf("%s engine=%v fault %v: k=%d gives DetectedAt=%d groups=%#x, k=1 gives %d/%#x",
						tc.name, eng, tc.faults[i].Site, k,
						got.DetectedAt[i], got.SignatureGroups[i],
						want.DetectedAt[i], want.SignatureGroups[i])
				}
			}
		}
	}
}

// TestCheckpointLongerThanProgram runs fault simulation against a golden
// whose checkpoint interval exceeds the program length: only the reset
// snapshot exists, so every pass fast-forwards to cycle 0 and replays its
// full prefix. Results must match the dense capture exactly.
func TestCheckpointLongerThanProgram(t *testing.T) {
	const cycles = 120
	cpu := getCPU(t)
	prog, err := asm.Assemble(equivTestProgram, 0)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := plasma.CaptureGoldenK(cpu, prog, cycles, 1)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := plasma.CaptureGoldenK(cpu, prog, cycles, cycles+17)
	if err != nil {
		t.Fatal(err)
	}
	faults := Universe(cpu.Netlist)
	for _, eng := range []Engine{EngineOblivious, EngineEvent} {
		opt := Options{Engine: eng, Sample: 256, Seed: 3}
		want, err := Simulate(cpu, dense, faults, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Simulate(cpu, sparse, faults, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.DetectedAt {
			if got.DetectedAt[i] != want.DetectedAt[i] || got.SignatureGroups[i] != want.SignatureGroups[i] {
				t.Fatalf("engine=%v fault %v: k>cycles gives DetectedAt=%d groups=%#x, k=1 gives %d/%#x",
					eng, want.Faults[i].Site,
					got.DetectedAt[i], got.SignatureGroups[i],
					want.DetectedAt[i], want.SignatureGroups[i])
			}
		}
	}
}

func TestLatencyStats(t *testing.T) {
	r := &Result{
		Faults:     make([]Fault, 6),
		DetectedAt: []int32{5, -1, 10, 95, 0, 50},
		Cycles:     100,
	}
	st := NewLatencyStats(r)
	if len(st.DetectCycles) != 5 {
		t.Fatalf("detected = %d", len(st.DetectCycles))
	}
	if st.DetectCycles[0] != 0 || st.DetectCycles[4] != 95 {
		t.Errorf("sorted cycles: %v", st.DetectCycles)
	}
	h := st.Histogram(10)
	if h[0] != 2 || h[1] != 1 || h[5] != 1 || h[9] != 1 {
		t.Errorf("histogram: %v", h)
	}
	if st.Percentile(0.5) != 10 {
		t.Errorf("median = %d", st.Percentile(0.5))
	}
	s := st.String()
	if !strings.Contains(s, "percentiles") || !strings.Contains(s, "#") {
		t.Errorf("rendering: %q", s)
	}
}
