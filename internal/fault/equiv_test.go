package fault

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gate"
)

// randomCombNetlist builds a random DAG of combinational cells over a few
// inputs, used to cross-check collapsing against exhaustive simulation.
func randomCombNetlist(rng *rand.Rand, nInputs, nGates int) *gate.Netlist {
	b := gate.NewBuilder("rand")
	sigs := b.InputBus("in", nInputs)
	kinds := []func(a, c gate.Sig) gate.Sig{
		b.And, b.Or, b.Nand, b.Nor, b.Xor, b.Xnor,
	}
	for i := 0; i < nGates; i++ {
		a := sigs[rng.Intn(len(sigs))]
		c := sigs[rng.Intn(len(sigs))]
		if rng.Intn(6) == 0 {
			sigs = append(sigs, b.Not(a))
			continue
		}
		sigs = append(sigs, kinds[rng.Intn(len(kinds))](a, c))
	}
	// Observe the last few signals.
	b.OutputBus("out", []gate.Sig(sigs[len(sigs)-3:]))
	return b.N
}

// detectionSignature exhaustively simulates a fault over all input values
// and returns the set of (input, output-bit) detections as a string key.
func detectionSignature(t *testing.T, n *gate.Netlist, f gate.FaultSite, nInputs int) string {
	t.Helper()
	s, err := gate.NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaults([]gate.LaneFault{{Site: f, Lane: 1}})
	var sb strings.Builder
	for v := uint64(0); v < 1<<uint(nInputs); v++ {
		s.SetBusUniform("in", v)
		s.Eval()
		if s.BusLane("out", 0) != s.BusLane("out", 1) {
			sb.WriteString(" ")
			sb.WriteByte(byte('0' + v%10))
			sb.WriteString(":")
			diff := s.BusLane("out", 0) ^ s.BusLane("out", 1)
			for b := 0; diff != 0; b++ {
				if diff&1 != 0 {
					sb.WriteByte(byte('a' + b))
				}
				diff >>= 1
			}
		}
	}
	return sb.String()
}

// TestCollapsedCoverageMatchesUncollapsed is the soundness property of
// equivalence collapsing: on random circuits, the set of input vectors
// that detects a representative fault must detect (somewhere) every count
// the representative absorbed. We verify the weaker but decisive
// consequence used by the coverage accounting: a pattern set detects the
// representative iff it detects each absorbed fault — checked by
// comparing full detectability (detectable by some vector) between the
// collapsed universe and the complete pin-fault universe.
func TestCollapsedCoverageMatchesUncollapsed(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		const nInputs = 6
		n := randomCombNetlist(rng, nInputs, 25)
		collapsed := Universe(n)

		// Exhaustive detectability of each collapsed representative.
		repDetectable := 0
		for _, f := range collapsed {
			if detectionSignature(t, n, f.Site, nInputs) != "" {
				repDetectable += f.Equiv
			}
		}

		// Exhaustive detectability of the complete uncollapsed universe.
		fullDetectable, fullTotal := 0, 0
		for i := range n.Gates {
			g := &n.Gates[i]
			if g.Kind == gate.Const0 || g.Kind == gate.Const1 {
				continue
			}
			for v := 0; v < 2; v++ {
				fullTotal++
				if detectionSignature(t, n, gate.FaultSite{Gate: gate.Sig(i), Pin: 0, Stuck: v == 1}, nInputs) != "" {
					fullDetectable++
				}
			}
			for p := 0; p < g.Kind.NumInputs(); p++ {
				for v := 0; v < 2; v++ {
					fullTotal++
					if detectionSignature(t, n, gate.FaultSite{Gate: gate.Sig(i), Pin: int8(p + 1), Stuck: v == 1}, nInputs) != "" {
						fullDetectable++
					}
				}
			}
		}
		if TotalEquiv(collapsed) != fullTotal {
			t.Fatalf("trial %d: equivalence weights sum to %d, full universe has %d",
				trial, TotalEquiv(collapsed), fullTotal)
		}
		if repDetectable != fullDetectable {
			t.Fatalf("trial %d: weighted detectable %d via representatives vs %d exhaustive",
				trial, repDetectable, fullDetectable)
		}
	}
}

// TestEquivalencePairsBehaveIdentically verifies the strong per-pair
// property on directed cases: an absorbed fault and its representative
// have identical detection signatures over all inputs and outputs.
func TestEquivalencePairsBehaveIdentically(t *testing.T) {
	b := gate.NewBuilder("pairs")
	in := b.InputBus("in", 4)
	// One gate of each collapsing kind, each with an extra fanout on its
	// inputs so branch faults are NOT absorbed by the fanout-free rule
	// (isolating the gate-type equivalences).
	and := b.And(in[0], in[1])
	nand := b.Nand(in[0], in[2])
	or := b.Or(in[1], in[2])
	nor := b.Nor(in[1], in[3])
	not := b.Not(in[3])
	b.OutputBus("out", []gate.Sig{and, nand, or, nor, not, b.Xor(in[0], in[3])})
	n := b.N

	pairs := []struct {
		branch, stem gate.FaultSite
	}{
		{gate.FaultSite{Gate: and, Pin: 1, Stuck: false}, gate.FaultSite{Gate: and, Pin: 0, Stuck: false}},
		{gate.FaultSite{Gate: and, Pin: 2, Stuck: false}, gate.FaultSite{Gate: and, Pin: 0, Stuck: false}},
		{gate.FaultSite{Gate: nand, Pin: 1, Stuck: false}, gate.FaultSite{Gate: nand, Pin: 0, Stuck: true}},
		{gate.FaultSite{Gate: or, Pin: 1, Stuck: true}, gate.FaultSite{Gate: or, Pin: 0, Stuck: true}},
		{gate.FaultSite{Gate: nor, Pin: 2, Stuck: true}, gate.FaultSite{Gate: nor, Pin: 0, Stuck: false}},
		{gate.FaultSite{Gate: not, Pin: 1, Stuck: false}, gate.FaultSite{Gate: not, Pin: 0, Stuck: true}},
		{gate.FaultSite{Gate: not, Pin: 1, Stuck: true}, gate.FaultSite{Gate: not, Pin: 0, Stuck: false}},
	}
	for _, p := range pairs {
		sa := detectionSignature(t, n, p.branch, 4)
		sb := detectionSignature(t, n, p.stem, 4)
		if sa != sb {
			t.Errorf("pair %v / %v: signatures differ:\n%q\n%q", p.branch, p.stem, sa, sb)
		}
		if sa == "" {
			t.Errorf("pair %v: untestable in this circuit, test is vacuous", p.branch)
		}
	}
}

func TestLatencyStats(t *testing.T) {
	r := &Result{
		Faults:     make([]Fault, 6),
		DetectedAt: []int32{5, -1, 10, 95, 0, 50},
		Cycles:     100,
	}
	st := NewLatencyStats(r)
	if len(st.DetectCycles) != 5 {
		t.Fatalf("detected = %d", len(st.DetectCycles))
	}
	if st.DetectCycles[0] != 0 || st.DetectCycles[4] != 95 {
		t.Errorf("sorted cycles: %v", st.DetectCycles)
	}
	h := st.Histogram(10)
	if h[0] != 2 || h[1] != 1 || h[5] != 1 || h[9] != 1 {
		t.Errorf("histogram: %v", h)
	}
	if st.Percentile(0.5) != 10 {
		t.Errorf("median = %d", st.Percentile(0.5))
	}
	s := st.String()
	if !strings.Contains(s, "percentiles") || !strings.Contains(s, "#") {
		t.Errorf("rendering: %q", s)
	}
}
