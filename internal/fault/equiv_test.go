package fault

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/plasma"
)

// randomCombNetlist builds a random DAG of combinational cells over a few
// inputs, used to cross-check collapsing against exhaustive simulation.
func randomCombNetlist(rng *rand.Rand, nInputs, nGates int) *gate.Netlist {
	b := gate.NewBuilder("rand")
	sigs := b.InputBus("in", nInputs)
	kinds := []func(a, c gate.Sig) gate.Sig{
		b.And, b.Or, b.Nand, b.Nor, b.Xor, b.Xnor,
	}
	for i := 0; i < nGates; i++ {
		a := sigs[rng.Intn(len(sigs))]
		c := sigs[rng.Intn(len(sigs))]
		if rng.Intn(6) == 0 {
			sigs = append(sigs, b.Not(a))
			continue
		}
		sigs = append(sigs, kinds[rng.Intn(len(kinds))](a, c))
	}
	// Observe the last few signals.
	b.OutputBus("out", []gate.Sig(sigs[len(sigs)-3:]))
	return b.N
}

// detectionSignature exhaustively simulates a fault over all input values
// and returns the set of (input, output-bit) detections as a string key.
func detectionSignature(t *testing.T, n *gate.Netlist, f gate.FaultSite, nInputs int) string {
	t.Helper()
	s, err := gate.NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaults([]gate.LaneFault{{Site: f, Lane: 1}})
	var sb strings.Builder
	for v := uint64(0); v < 1<<uint(nInputs); v++ {
		s.SetBusUniform("in", v)
		s.Eval()
		if s.BusLane("out", 0) != s.BusLane("out", 1) {
			sb.WriteString(" ")
			sb.WriteByte(byte('0' + v%10))
			sb.WriteString(":")
			diff := s.BusLane("out", 0) ^ s.BusLane("out", 1)
			for b := 0; diff != 0; b++ {
				if diff&1 != 0 {
					sb.WriteByte(byte('a' + b))
				}
				diff >>= 1
			}
		}
	}
	return sb.String()
}

// TestCollapsedCoverageMatchesUncollapsed is the soundness property of
// equivalence collapsing: on random circuits, the set of input vectors
// that detects a representative fault must detect (somewhere) every count
// the representative absorbed. We verify the weaker but decisive
// consequence used by the coverage accounting: a pattern set detects the
// representative iff it detects each absorbed fault — checked by
// comparing full detectability (detectable by some vector) between the
// collapsed universe and the complete pin-fault universe.
func TestCollapsedCoverageMatchesUncollapsed(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		const nInputs = 6
		n := randomCombNetlist(rng, nInputs, 25)
		collapsed := Universe(n)

		// Exhaustive detectability of each collapsed representative.
		repDetectable := 0
		for _, f := range collapsed {
			if detectionSignature(t, n, f.Site, nInputs) != "" {
				repDetectable += f.Equiv
			}
		}

		// Exhaustive detectability of the complete uncollapsed universe.
		fullDetectable, fullTotal := 0, 0
		for i := range n.Gates {
			g := &n.Gates[i]
			if g.Kind == gate.Const0 || g.Kind == gate.Const1 {
				continue
			}
			for v := 0; v < 2; v++ {
				fullTotal++
				if detectionSignature(t, n, gate.FaultSite{Gate: gate.Sig(i), Pin: 0, Stuck: v == 1}, nInputs) != "" {
					fullDetectable++
				}
			}
			for p := 0; p < g.Kind.NumInputs(); p++ {
				for v := 0; v < 2; v++ {
					fullTotal++
					if detectionSignature(t, n, gate.FaultSite{Gate: gate.Sig(i), Pin: int8(p + 1), Stuck: v == 1}, nInputs) != "" {
						fullDetectable++
					}
				}
			}
		}
		if TotalEquiv(collapsed) != fullTotal {
			t.Fatalf("trial %d: equivalence weights sum to %d, full universe has %d",
				trial, TotalEquiv(collapsed), fullTotal)
		}
		if repDetectable != fullDetectable {
			t.Fatalf("trial %d: weighted detectable %d via representatives vs %d exhaustive",
				trial, repDetectable, fullDetectable)
		}
	}
}

// TestEquivalencePairsBehaveIdentically verifies the strong per-pair
// property on directed cases: an absorbed fault and its representative
// have identical detection signatures over all inputs and outputs.
func TestEquivalencePairsBehaveIdentically(t *testing.T) {
	b := gate.NewBuilder("pairs")
	in := b.InputBus("in", 4)
	// One gate of each collapsing kind, each with an extra fanout on its
	// inputs so branch faults are NOT absorbed by the fanout-free rule
	// (isolating the gate-type equivalences).
	and := b.And(in[0], in[1])
	nand := b.Nand(in[0], in[2])
	or := b.Or(in[1], in[2])
	nor := b.Nor(in[1], in[3])
	not := b.Not(in[3])
	b.OutputBus("out", []gate.Sig{and, nand, or, nor, not, b.Xor(in[0], in[3])})
	n := b.N

	pairs := []struct {
		branch, stem gate.FaultSite
	}{
		{gate.FaultSite{Gate: and, Pin: 1, Stuck: false}, gate.FaultSite{Gate: and, Pin: 0, Stuck: false}},
		{gate.FaultSite{Gate: and, Pin: 2, Stuck: false}, gate.FaultSite{Gate: and, Pin: 0, Stuck: false}},
		{gate.FaultSite{Gate: nand, Pin: 1, Stuck: false}, gate.FaultSite{Gate: nand, Pin: 0, Stuck: true}},
		{gate.FaultSite{Gate: or, Pin: 1, Stuck: true}, gate.FaultSite{Gate: or, Pin: 0, Stuck: true}},
		{gate.FaultSite{Gate: nor, Pin: 2, Stuck: true}, gate.FaultSite{Gate: nor, Pin: 0, Stuck: false}},
		{gate.FaultSite{Gate: not, Pin: 1, Stuck: false}, gate.FaultSite{Gate: not, Pin: 0, Stuck: true}},
		{gate.FaultSite{Gate: not, Pin: 1, Stuck: true}, gate.FaultSite{Gate: not, Pin: 0, Stuck: false}},
	}
	for _, p := range pairs {
		sa := detectionSignature(t, n, p.branch, 4)
		sb := detectionSignature(t, n, p.stem, 4)
		if sa != sb {
			t.Errorf("pair %v / %v: signatures differ:\n%q\n%q", p.branch, p.stem, sa, sb)
		}
		if sa == "" {
			t.Errorf("pair %v: untestable in this circuit, test is vacuous", p.branch)
		}
	}
}

// checkWidthEquivalence simulates the same workload at every supported
// lane width under both engines and asserts that DetectedAt and
// SignatureGroups are bit-identical across all eight configurations. This
// is the end-to-end soundness property of lane widening: each bit lane is
// an independent machine, so neither the pass width nor the packing order
// may influence any per-fault outcome.
func checkWidthEquivalence(t *testing.T, cpu *plasma.CPU, g *plasma.Golden, faults []Fault, opt Options) {
	t.Helper()
	var ref *Result
	var refName string
	for _, eng := range []Engine{EngineOblivious, EngineEvent} {
		for _, w := range []int{1, 2, 4, 8} {
			opt.Engine = eng
			opt.LaneWords = w
			name := fmt.Sprintf("engine=%v lanes=%d", eng, w)
			res, err := Simulate(cpu, g, faults, opt)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			var histSum int64
			for i, c := range res.Stats.PassWidthHist {
				histSum += c
				if c > 0 && 1<<uint(i) > w {
					t.Errorf("%s: pass ran wider (%d words) than the cap", name, 1<<uint(i))
				}
			}
			if histSum != res.Stats.Passes {
				t.Errorf("%s: width histogram sums to %d, want %d passes", name, histSum, res.Stats.Passes)
			}
			if ref == nil {
				ref, refName = res, name
				continue
			}
			if len(res.DetectedAt) != len(ref.DetectedAt) {
				t.Fatalf("%s: %d results, %s has %d", name, len(res.DetectedAt), refName, len(ref.DetectedAt))
			}
			for i := range ref.DetectedAt {
				if res.DetectedAt[i] != ref.DetectedAt[i] {
					t.Fatalf("%s: fault %d (%v) DetectedAt=%d, %s says %d",
						name, i, res.Faults[i].Site, res.DetectedAt[i], refName, ref.DetectedAt[i])
				}
				if res.SignatureGroups[i] != ref.SignatureGroups[i] {
					t.Fatalf("%s: fault %d (%v) groups=%#x, %s says %#x",
						name, i, res.Faults[i].Site, res.SignatureGroups[i], refName, ref.SignatureGroups[i])
				}
			}
		}
	}
}

// TestWidthEquivalencePhaseA asserts width equivalence on the real
// workload: the directed Phase-A self-test program on the full core.
func TestWidthEquivalencePhaseA(t *testing.T) {
	if testing.Short() {
		t.Skip("directed Phase-A width sweep is long; skipped with -short")
	}
	cpu := getCPU(t)
	comps := core.ClassifyNetlist(cpu.Netlist)
	st, err := core.GenerateSelfTest(comps, core.PhaseA)
	if err != nil {
		t.Fatal(err)
	}
	g, err := plasma.CaptureGolden(cpu, st.Program, st.GateCycles())
	if err != nil {
		t.Fatal(err)
	}
	checkWidthEquivalence(t, cpu, g, Universe(cpu.Netlist), Options{Sample: 512, Seed: 9, Workers: 1})
}

// TestWidthEquivalenceRandomProgram asserts width equivalence on a seeded
// pseudorandom self-test program.
func TestWidthEquivalenceRandomProgram(t *testing.T) {
	cpu := getCPU(t)
	p, err := baseline.Generate(baseline.Config{Seeds: []uint32{0xC0FFEE11}, Rounds: 2, RespBase: 0x00100000})
	if err != nil {
		t.Fatal(err)
	}
	g, err := plasma.CaptureGolden(cpu, p.Program, p.GateCycles())
	if err != nil {
		t.Fatal(err)
	}
	checkWidthEquivalence(t, cpu, g, Universe(cpu.Netlist), Options{Sample: 256, Seed: 11})
}

func TestLatencyStats(t *testing.T) {
	r := &Result{
		Faults:     make([]Fault, 6),
		DetectedAt: []int32{5, -1, 10, 95, 0, 50},
		Cycles:     100,
	}
	st := NewLatencyStats(r)
	if len(st.DetectCycles) != 5 {
		t.Fatalf("detected = %d", len(st.DetectCycles))
	}
	if st.DetectCycles[0] != 0 || st.DetectCycles[4] != 95 {
		t.Errorf("sorted cycles: %v", st.DetectCycles)
	}
	h := st.Histogram(10)
	if h[0] != 2 || h[1] != 1 || h[5] != 1 || h[9] != 1 {
		t.Errorf("histogram: %v", h)
	}
	if st.Percentile(0.5) != 10 {
		t.Errorf("median = %d", st.Percentile(0.5))
	}
	s := st.String()
	if !strings.Contains(s, "percentiles") || !strings.Contains(s, "#") {
		t.Errorf("rendering: %q", s)
	}
}
