package fault

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/plasma"
	"repro/internal/synth"
)

var benchSetup struct {
	once   sync.Once
	cpu    *plasma.CPU
	golden *plasma.Golden
	faults []Fault
	err    error
}

// benchWorkload builds (once) the directed Phase-A workload the pass
// runner sees in production: the real core, the real self-test program,
// the collapsed fault universe.
func benchWorkload(b *testing.B) (*plasma.CPU, *plasma.Golden, []Fault) {
	b.Helper()
	s := &benchSetup
	s.once.Do(func() {
		cpu, err := plasma.Build(synth.NativeLib{})
		if err != nil {
			s.err = err
			return
		}
		st, err := core.GenerateSelfTest(core.ClassifyNetlist(cpu.Netlist), core.PhaseA)
		if err != nil {
			s.err = err
			return
		}
		g, err := plasma.CaptureGolden(cpu, st.Program, st.GateCycles())
		if err != nil {
			s.err = err
			return
		}
		s.cpu, s.golden, s.faults = cpu, g, Universe(cpu.Netlist)
	})
	if s.err != nil {
		b.Fatal(s.err)
	}
	return s.cpu, s.golden, s.faults
}

// BenchmarkPassRunnerWidth sweeps the lane-width cap over the end-to-end
// fault simulation of the Phase-A program: the speedup from w=1 to w=8 is
// the amortization of per-pass fixed costs (reset, checkpoint
// fast-forward, replay drive, golden comparison, event bookkeeping)
// across 8x the faulty machines.
func BenchmarkPassRunnerWidth(b *testing.B) {
	cpu, golden, faults := benchWorkload(b)
	for _, w := range []int{1, 2, 4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			opt := Options{Sample: 2048, Seed: 1, Workers: 1, LaneWords: w}
			var detected int
			for i := 0; i < b.N; i++ {
				res, err := Simulate(cpu, golden, faults, opt)
				if err != nil {
					b.Fatal(err)
				}
				detected = 0
				for j := range res.DetectedAt {
					if res.DetectedAt[j] >= 0 {
						detected++
					}
				}
			}
			b.ReportMetric(float64(detected), "detected")
		})
	}
}
