package fault

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/plasma"
)

// mergeFixture is a seeded sampled grading of the Phase A self-test
// program, simulated once per test binary; the merge property tests
// slice and recombine its outcomes.
var mergeFixture *Result

func mergeRun(t *testing.T) *Result {
	t.Helper()
	if mergeFixture == nil {
		cpu := getCPU(t)
		st, err := core.GenerateSelfTest(core.ClassifyNetlist(cpu.Netlist), core.PhaseA)
		if err != nil {
			t.Fatal(err)
		}
		g, err := plasma.CaptureGolden(cpu, st.Program, st.GateCycles())
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(cpu, g, Universe(cpu.Netlist), Options{Sample: 512, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		mergeFixture = res
	}
	return mergeFixture
}

// sliceResult builds the Result a shard grading exactly the faults with
// assign[i] == shard would report: everyone else's lanes stay ungraded.
func sliceResult(full *Result, assign []int, shard int) *Result {
	r := &Result{
		Faults:          full.Faults,
		DetectedAt:      make([]int32, len(full.Faults)),
		SignatureGroups: make([]uint8, len(full.Faults)),
		Cycles:          full.Cycles,
	}
	for i := range r.DetectedAt {
		r.DetectedAt[i] = -1
		if assign[i] == shard {
			r.DetectedAt[i] = full.DetectedAt[i]
			r.SignatureGroups[i] = full.SignatureGroups[i]
		}
	}
	return r
}

func sameOutcome(t *testing.T, got, want *Result, what string) {
	t.Helper()
	if got.Cycles != want.Cycles {
		t.Fatalf("%s: cycles %d, want %d", what, got.Cycles, want.Cycles)
	}
	for i := range want.DetectedAt {
		if got.DetectedAt[i] != want.DetectedAt[i] {
			t.Fatalf("%s: fault %d detected at %d, want %d", what, i, got.DetectedAt[i], want.DetectedAt[i])
		}
		if got.DetectedAt[i] >= 0 && got.SignatureGroups[i] != want.SignatureGroups[i] {
			t.Fatalf("%s: fault %d signature group %d, want %d", what, i, got.SignatureGroups[i], want.SignatureGroups[i])
		}
	}
}

// TestMergeShardsProperties drives MergeShards through randomized 2-8 way
// splits of one real simulation and asserts the sharding algebra: any
// split merges back to the unsharded outcomes bit for bit, in any argument
// order (commutativity), under any grouping (associativity), and repeated
// merging changes nothing (idempotence).
func TestMergeShardsProperties(t *testing.T) {
	full := mergeRun(t)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(7)
		assign := make([]int, len(full.Faults))
		for i := range assign {
			assign[i] = rng.Intn(k)
		}
		parts := make([]*Result, k)
		for s := 0; s < k; s++ {
			parts[s] = sliceResult(full, assign, s)
		}

		merged, err := MergeShards(parts...)
		if err != nil {
			t.Fatal(err)
		}
		sameOutcome(t, merged, full, "split/merge")

		// Commutativity: a shuffled argument order merges identically.
		shuffled := append([]*Result(nil), parts...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		commuted, err := MergeShards(shuffled...)
		if err != nil {
			t.Fatal(err)
		}
		sameOutcome(t, commuted, merged, "commuted")

		// Associativity: pairwise left fold == merging a suffix first.
		left := parts[0]
		for _, p := range parts[1:] {
			if left, err = MergeShards(left, p); err != nil {
				t.Fatal(err)
			}
		}
		suffix, err := MergeShards(parts[1:]...)
		if err != nil {
			t.Fatal(err)
		}
		right, err := MergeShards(parts[0], suffix)
		if err != nil {
			t.Fatal(err)
		}
		sameOutcome(t, left, merged, "left fold")
		sameOutcome(t, right, merged, "right fold")

		// Idempotence: re-merging the merged result with itself or any of
		// its inputs changes nothing.
		twice, err := MergeShards(merged, merged)
		if err != nil {
			t.Fatal(err)
		}
		sameOutcome(t, twice, merged, "self-merge")
		again, err := MergeShards(merged, parts[rng.Intn(k)])
		if err != nil {
			t.Fatal(err)
		}
		sameOutcome(t, again, merged, "re-merge input")
	}
}

// TestMergeReportsDisagreeingUniverses is the regression test for the
// merge-layer diagnostics: mixing results over different fault universes
// must fail with an error carrying both universe hashes (so the bad side
// of a cross-process merge is identifiable), for both merge schedules.
func TestMergeReportsDisagreeingUniverses(t *testing.T) {
	full := mergeRun(t)
	other := &Result{
		Faults:          append([]Fault(nil), full.Faults...),
		DetectedAt:      append([]int32(nil), full.DetectedAt...),
		SignatureGroups: append([]uint8(nil), full.SignatureGroups...),
		Cycles:          full.Cycles,
	}
	other.Faults[3].Site.Stuck = !other.Faults[3].Site.Stuck

	hFull, hOther := UniverseHash(full.Faults), UniverseHash(other.Faults)
	if hFull == hOther {
		t.Fatal("universe hash ignores the fault site")
	}
	for name, merge := range map[string]func(...*Result) (*Result, error){
		"MergeShards":     MergeShards,
		"MergeDetections": MergeDetections,
	} {
		_, err := merge(full, other)
		if err == nil {
			t.Fatalf("%s accepted disagreeing universes", name)
		}
		if !strings.Contains(err.Error(), hFull) || !strings.Contains(err.Error(), hOther) {
			t.Errorf("%s error %q misses a universe hash (%s, %s)", name, err, hFull, hOther)
		}
	}

	// Shorter universe: same contract.
	short := &Result{Faults: full.Faults[:5], DetectedAt: full.DetectedAt[:5],
		SignatureGroups: full.SignatureGroups[:5], Cycles: full.Cycles}
	_, err := MergeShards(full, short)
	if err == nil || !strings.Contains(err.Error(), UniverseHash(short.Faults)) {
		t.Errorf("length mismatch error %v misses the universe hash", err)
	}

	// MergeShards additionally rejects runs of different golden lengths.
	skew := sliceResult(full, make([]int, len(full.Faults)), 0)
	skew.Cycles++
	_, err = MergeShards(full, skew)
	if err == nil || !strings.Contains(err.Error(), "cycle mismatch") || !strings.Contains(err.Error(), hFull) {
		t.Errorf("cycle mismatch error %v misses the diagnosis", err)
	}
}
