package fault

import (
	"fmt"

	"repro/internal/gate"
	"repro/internal/plasma"
)

// Warm is a persistent grading context: one set of per-width simulators
// that survives across grading requests, so the per-request cost is the
// simulation itself, never simulator construction. A long-running grading
// service keeps a pool of Warm graders and routes each request to an idle
// one; every request after the first reuses the previous request's
// simulators through the same warm-restart machinery fused
// checkpoint-window dispatch uses between passes (gate.Sim.ReplaceFaults
// hook-set diffs + gate.Sim.RestoreState flip-flop state diffs), so a new
// request costs a state diff, not a cold build.
//
// A Warm grader is single-goroutine: Grade must not be called
// concurrently on one Warm. Concurrency comes from a pool of them, which
// is safe because everything a Grade call reads besides the grader itself
// — the netlist, the golden trace, the fault list and the pass plan — is
// immutable: see the package-level notes on PlanPasses and
// plasma.Golden read sharing.
//
// Grade is bit-identical to Simulate over the same plan (asserted in
// tests): a fault's outcome depends only on its own lane's trajectory,
// never on which simulator instance carries it or what that simulator
// graded before.
type Warm struct {
	cpu    *plasma.CPU
	engine Engine

	runners [widthSlots]*passRunner
	cursor  stateCursor

	// Cumulative evaluator counters at the last stats collection, per
	// width slot; gate.Sim counters are totals since construction, and a
	// Warm simulator outlives many grades, so per-grade stats are deltas.
	prevEvals, prevEvents [widthSlots]uint64
	prevKernel            [widthSlots]gate.KernelStats

	// ColdSims counts simulator constructions (at most one per lane width
	// over the grader's whole lifetime); WarmGrades counts Grade calls
	// that found at least one already-built simulator to reuse. Their
	// ratio is the amortization a grading service exists to buy.
	ColdSims   int64
	WarmGrades int64
}

// NewWarm returns an empty warm grading context for the CPU. Simulators
// are built lazily, one per pass width first seen, on the first Grade
// calls that need them.
func NewWarm(cpu *plasma.CPU, engine Engine) *Warm {
	return &Warm{cpu: cpu, engine: engine}
}

// grow returns buf resliced to n, reallocating only when the capacity is
// insufficient — the reuse that makes repeated Grade calls on pooled
// result buffers allocation-free in steady state.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// GrowResult sizes a (possibly recycled) Result's outcome arrays for a
// fault list, reusing their capacity, and resets every outcome to
// undetected. Callers pass the result to Grade afterwards.
func GrowResult(res *Result, faults []Fault) {
	res.Faults = faults
	res.DetectedAt = grow(res.DetectedAt, len(faults))
	res.SignatureGroups = grow(res.SignatureGroups, len(faults))
	for i := range res.DetectedAt {
		res.DetectedAt[i] = -1
	}
	for i := range res.SignatureGroups {
		res.SignatureGroups[i] = 0
	}
	res.Stats = SimStats{}
}

// Grade fault-simulates one planned request on the warm simulators:
// faults is the (already sampled) fault list, plan its deterministic pass
// packing from PlanPasses over the same golden, engine and lane-width
// cap, and res a result prepared by GrowResult(res, faults). The golden
// may differ from the previous call's — any trace captured on the same
// netlist grades on the same warm simulators.
//
// res.Stats covers this grade only. Plan-time knowledge the caller holds
// is not re-derived: PlanPasses' skipped count is the caller's to add to
// res.Stats.SkippedFaults.
func (w *Warm) Grade(golden *plasma.Golden, faults []Fault, plan []PassGroup, res *Result) error {
	if len(res.DetectedAt) != len(faults) || len(res.SignatureGroups) != len(faults) {
		return fmt.Errorf("fault: Warm.Grade result sized for %d/%d faults, want %d (use GrowResult)",
			len(res.DetectedAt), len(res.SignatureGroups), len(faults))
	}
	res.Faults = faults
	res.Cycles = golden.Cycles
	res.Stats.GoldenDenseBytes = golden.DenseStateBytes()
	res.Stats.GoldenStoredBytes = golden.StoredStateBytes()
	res.Stats.TraceDenseBytes = golden.DenseTraceBytes()
	res.Stats.TraceStoredBytes = golden.StoredTraceBytes()

	fused := w.engine != EngineOblivious && golden.HasActivation()
	if fused {
		// Rebind the rolling golden-state cursor to this request's trace.
		// Same netlist, so the snapshot width never changes.
		w.cursor.buf = grow(w.cursor.buf, golden.StateWords())
		w.cursor.g = golden
		w.cursor.ok = false
	}

	warmed := false
	// Window accounting mirrors Simulate's fused dispatch: consecutive
	// passes sharing a checkpoint floor form one window; only the cursor
	// needs to know, so no window slices are materialized.
	var winFloor int32 = -1
	var winLen int
	for _, j := range plan {
		lg := widthLog2(j.Width)
		r := w.runners[lg]
		if r == nil {
			var s *gate.Sim
			var err error
			if w.engine == EngineOblivious {
				s, err = gate.NewSimWidth(w.cpu.Netlist, j.Width)
			} else {
				s, err = gate.NewEventSimWidth(w.cpu.Netlist, j.Width)
			}
			if err != nil {
				return err
			}
			r = newPassRunner(w.cpu, s, golden)
			w.runners[lg] = r
			w.ColdSims++
		} else {
			r.golden = golden
			warmed = true
		}
		var start []uint64
		if fused {
			start = w.cursor.stateAt(j.Start)
			if f := golden.CheckpointFloor(j.Start); f != winFloor || winLen == 0 {
				winFloor, winLen = f, 1
			} else {
				winLen++
				if winLen == 2 {
					r.stats.FusedWindows++
				}
			}
		}
		r.runPass(faults, j, res.DetectedAt, res.SignatureGroups, start)
	}
	if warmed {
		w.WarmGrades++
	}
	w.collectStats(&res.Stats)
	return nil
}

// collectStats folds each runner's per-grade work counters into dst and
// re-arms them for the next grade. Evaluator counters are cumulative over
// a simulator's lifetime, so the per-grade figure is the delta since the
// previous collection.
func (w *Warm) collectStats(dst *SimStats) {
	for lg, r := range w.runners {
		if r == nil {
			continue
		}
		if evals, events := r.sim.EvalStats(); r.sim.EventDriven() {
			r.stats.GateEvals = int64(evals - w.prevEvals[lg])
			r.stats.Events = int64(events - w.prevEvents[lg])
			w.prevEvals[lg], w.prevEvents[lg] = evals, events
		} else {
			r.stats.GateEvals = r.stats.SimCycles * int64(r.sim.CombGates())
		}
		r.stats.GateEvalsByWidth[lg] = r.stats.GateEvals
		ks := r.sim.KernelStats()
		r.stats.SIMDKernelRuns = int64(ks.SIMDRuns - w.prevKernel[lg].SIMDRuns)
		r.stats.GenericKernelRuns = int64(ks.GenericRuns - w.prevKernel[lg].GenericRuns)
		r.stats.SIMDRunsByWidth[lg] = r.stats.SIMDKernelRuns
		r.stats.GenericRunsByWidth[lg] = r.stats.GenericKernelRuns
		r.stats.BatchedGateEvals = int64(ks.BatchedGates - w.prevKernel[lg].BatchedGates)
		r.stats.UniformFastPathHits = int64(ks.UniformHits - w.prevKernel[lg].UniformHits)
		r.stats.ScalarKernelEvals = int64(ks.ScalarEvals - w.prevKernel[lg].ScalarEvals)
		w.prevKernel[lg] = ks
		dst.Add(&r.stats)
		r.stats = SimStats{}
	}
}
