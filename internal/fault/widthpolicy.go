package fault

import (
	"math/bits"

	"repro/internal/gate"
	"repro/internal/plasma"
)

// Cost-model lane-width selection for differential pass packing.
//
// The old policy was a heuristic: every full chunk of the activation-sorted
// fault order packed at the width cap, and the final residue packed at the
// narrowest width that held it. That was right when the cap was 8 words,
// because per-pass fixed costs dwarfed the marginal word cost; at a 64-word
// cap (4096 machines/pass) the trade is no longer one-sided. A wider pass
// amortizes the per-cycle fixed overhead (level-queue sweep, read-data
// drive, golden compare, latch bookkeeping) over more machines, but it
//
//   - simulates the union of its faults' fanout cones — event activity per
//     cycle grows with the number of distinct cone regions disturbed, and
//     every dirty gate is re-evaluated over w words; and
//   - starts at the earliest activation among more faults, so the late
//     activators in the chunk are dragged through cycles where their lanes
//     sit idle.
//
// chooseWidth therefore estimates the grading cost of the candidate pass at
// every width and takes the cheapest per fault carried.

// actFault is one activatable fault of the activation-sorted packing order.
type actFault struct {
	idx  int    // index into the caller's fault list
	act  int32  // first cycle the fault can diverge from the golden machine
	cone uint64 // fanout-cone signature bucket mask (gate.FanoutConeSigs)
	comp gate.CompID
}

// Per-cycle pass cost model, in arbitrary units (only the ratios matter):
//
//	cost/cycle = costFixed + w*wordScale(w)*(costWordBase + costWordCone*cones)
//
// where w is the lane width in words and cones is the popcount of the OR of
// the pass's cone signatures (1..64 distinct fanout-cone buckets). The
// constants were fit on the reference machine from the end-to-end
// BenchmarkPassRunnerWidth sweep (full-universe sample, cones saturated):
// per-pass time divided by pass count gives ~0.12s fixed + ~0.026s/word,
// i.e. a fixed:word ratio of about 4.5:1 at full cone activity. The word
// term is dominated by the wide sweep/compare work of golden switching
// activity (every queued gate re-evaluates over w words), so it shrinks
// with cone overlap; the fixed term is reset, fast-forward, replay drive
// and per-cycle bookkeeping.
const (
	costFixed    = 120.0
	costWordBase = 9.0
	costWordCone = 0.27
)

// wordScale adjusts the per-word cost for the lane width's evaluation
// path of the active kernel tier. With assembly batch kernels (w >= 8
// only — the narrower widths have no kernels) the per-word cost drops
// below the scalar baseline until cache pressure claws the kernel win
// back at the widest rows: at w=64 the working set is 512 B per signal
// and the sweep goes memory-bound, so the 32 → 64 step is roughly flat
// end to end on every tier. Fit per tier from the PR-10
// BenchmarkPassRunnerWidth sweep (Sample=2048, Workers=1, each tier
// forced via SBST_SIMD_TIER, each tier's own w=1 run as its scalar
// baseline — the box is a shared 1-core VM with ±10% noise, so the
// constants are rounded to the band structure the sweep supports, not
// per-width point estimates; BENCH_faultsim.json records the raw rows):
// avx512 measured 4.39/2.67/1.89/1.02/0.76/0.70/0.72 s at w=1..64
// (solved scales 0.72/0.68/0.75/0.84 at w=8/16/32/64), avx2
// 3.90/2.75/1.84/1.03/0.71/0.65/0.66 s (0.90/0.73/0.78/0.86). The
// generic Go kernels fit ~1.0 flat out to w=32 with the same mild w=64
// cache penalty — the compiled-plan sweep removed the per-gate dispatch
// overhead that the old 1.25 w>=16 penalty was absorbing. NEON has no
// measured sweep yet (no arm64 perf box); it reuses the avx2 shape as
// the closest 128-bit analogue, recorded honestly here.
func wordScale(w int) float64 {
	switch gate.SIMDKernelName() {
	case "avx512":
		switch {
		case w >= 64:
			return 0.84
		case w >= 32:
			return 0.75
		case w >= 8:
			return 0.70
		}
		return 1.0
	case "avx2", "neon":
		switch {
		case w >= 64:
			return 0.86
		case w >= 32:
			return 0.78
		case w >= 8:
			return 0.80
		}
		return 1.0
	}
	if w >= 64 {
		return 1.05
	}
	return 1.0
}

// chooseWidth picks the lane width for the next pass of the
// activation-sorted order starting at lo. It returns the chosen width, the
// end of the taken range, and the earliest activation cycle in it. The
// estimated pass cost is the simulated span (golden cycles from the
// checkpoint boundary below the earliest activation to the end of the run)
// times the modeled per-cycle cost; dividing by the number of faults
// carried makes widths with idle lanes pay for them.
func chooseWidth(order []actFault, lo, maxW int, golden *plasma.Golden) (w, hi int, start int32) {
	rem := len(order) - lo
	bestW, bestHi := 1, lo+min(64, rem)
	bestStart := minAct(order[lo:bestHi])
	bestCost := passCost(golden, bestStart, order[lo:bestHi], 1)
	for cw := 2; cw <= maxW; cw *= 2 {
		chi := lo + min(64*cw, rem)
		cstart := minAct(order[lo:chi])
		if c := passCost(golden, cstart, order[lo:chi], cw); c <= bestCost {
			bestW, bestHi, bestStart, bestCost = cw, chi, cstart, c
		}
		if chi == len(order) {
			break // wider candidates would carry the same faults for more cost
		}
	}
	return bestW, bestHi, bestStart
}

// passCost estimates the per-fault grading cost of one pass of width w
// carrying the given faults from their earliest activation. An empty
// candidate costs nothing: the guard keeps the division from producing
// NaN when a caller (PlanPasses on an empty or fully-skipped universe)
// reaches the cost model with no faults to carry.
func passCost(golden *plasma.Golden, start int32, faults []actFault, w int) float64 {
	if len(faults) == 0 {
		return 0
	}
	var cones uint64
	for i := range faults {
		cones |= faults[i].cone
	}
	span := golden.Cycles - int(golden.CheckpointFloor(start))
	perCycle := costFixed + float64(w)*wordScale(w)*(costWordBase+costWordCone*float64(bits.OnesCount64(cones)))
	return float64(span) * perCycle / float64(len(faults))
}

// minAct returns the earliest activation cycle among the faults, or 0 for
// an empty slice (the guard against indexing an empty candidate range).
func minAct(faults []actFault) int32 {
	if len(faults) == 0 {
		return 0
	}
	start := faults[0].act
	for i := 1; i < len(faults); i++ {
		if faults[i].act < start {
			start = faults[i].act
		}
	}
	return start
}
