package fault

import (
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/plasma"
)

// Replay-fusion regression suite. The fused scheduler (the default) runs
// whole checkpoint windows of passes on one warm simulator instead of
// cold-starting every pass; NoFusion selects the original per-pass path.
// Everything observable except the replay accounting must be
// bit-identical between the two.

// fusionTestGolden captures the equivalence-test program at one
// checkpoint interval.
func fusionTestGolden(t *testing.T, cpu *plasma.CPU, cycles, k int) *plasma.Golden {
	t.Helper()
	prog, err := asm.Assemble(equivTestProgram, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := plasma.CaptureGoldenK(cpu, prog, cycles, k)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestFusionEquivalence asserts the fused scheduler is bit-identical to
// the unfused reference: same detections, same signature groups, and
// therefore the same fault dictionary, across checkpoint intervals, lane
// widths and both engines. (The oblivious engine never fuses — both runs
// take the same path there — but it pins the cross-engine reference.)
func TestFusionEquivalence(t *testing.T) {
	cpu := getCPU(t)
	faults := Universe(cpu.Netlist)
	for _, k := range []int{1, 32, 64} {
		g := fusionTestGolden(t, cpu, 240, k)
		for _, eng := range []Engine{EngineEvent, EngineOblivious} {
			for _, w := range []int{1, 8, 32} {
				opt := Options{Sample: 192, Seed: 7, Engine: eng, LaneWords: w}
				fused, err := Simulate(cpu, g, faults, opt)
				if err != nil {
					t.Fatal(err)
				}
				opt.NoFusion = true
				plain, err := Simulate(cpu, g, faults, opt)
				if err != nil {
					t.Fatal(err)
				}
				name := fmt.Sprintf("k=%d engine=%v lanes=%d", k, eng, w)
				for i := range plain.DetectedAt {
					if fused.DetectedAt[i] != plain.DetectedAt[i] {
						t.Fatalf("%s: fault %d (%v) fused DetectedAt=%d, unfused %d",
							name, i, plain.Faults[i].Site, fused.DetectedAt[i], plain.DetectedAt[i])
					}
					if fused.SignatureGroups[i] != plain.SignatureGroups[i] {
						t.Fatalf("%s: fault %d (%v) fused groups=%#x, unfused %#x",
							name, i, plain.Faults[i].Site, fused.SignatureGroups[i], plain.SignatureGroups[i])
					}
				}
				fd, pd := BuildDictionary(fused), BuildDictionary(plain)
				for i := range pd.Signatures {
					if fd.Signatures[i] != pd.Signatures[i] {
						t.Fatalf("%s: dictionary entry %d differs: fused %+v, unfused %+v",
							name, i, fd.Signatures[i], pd.Signatures[i])
					}
				}
			}
		}
	}
}

// TestFusionStatsExact pins the accounting contract of fusion: the same
// passes run at the same widths from the same checkpoint boundaries, and
// the golden cycles the unfused path replays per pass are exactly the
// cycles fusion saves. The fault list is restricted to faults activating
// strictly inside a window (act % k != 0, act > 0) so every pass has a
// nonzero boundary-to-activation span and the saved-cycles equality is
// exercised on nonzero numbers.
func TestFusionStatsExact(t *testing.T) {
	const cycles, k = 240, 16
	cpu := getCPU(t)
	g := fusionTestGolden(t, cpu, cycles, k)
	var faults []Fault
	for _, f := range Universe(cpu.Netlist) {
		if act := g.ActivationCycle(cpu.Netlist, f.Site); act > 0 && act%k != 0 {
			faults = append(faults, f)
		}
	}
	if len(faults) < 128 {
		t.Fatalf("only %d mid-window-activating faults; the fixture no longer exercises replay", len(faults))
	}
	opt := Options{Engine: EngineEvent, LaneWords: 1, Workers: 1, Sample: 256, Seed: 3}
	fused, err := Simulate(cpu, g, faults, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.NoFusion = true
	plain, err := Simulate(cpu, g, faults, opt)
	if err != nil {
		t.Fatal(err)
	}
	fs, ps := fused.Stats, plain.Stats

	// Identical plan: same passes at the same widths.
	if fs.Passes != ps.Passes || fs.PassWidthHist != ps.PassWidthHist {
		t.Fatalf("plans diverge: fused %d passes %v, unfused %d passes %v",
			fs.Passes, fs.PassWidthHist, ps.Passes, ps.PassWidthHist)
	}
	// FastForwarded keeps its meaning (cycles skipped to the checkpoint
	// boundary) in both modes and must be invariant under fusion.
	if fs.FastForwarded != ps.FastForwarded {
		t.Fatalf("FastForwarded: fused %d, unfused %d", fs.FastForwarded, ps.FastForwarded)
	}
	// Fusion eliminates simulated replay entirely; the unfused reference
	// must still pay it, and what it pays is exactly what fusion saves.
	if fs.ReplayedCycles != 0 {
		t.Fatalf("fused run replayed %d cycles, want 0", fs.ReplayedCycles)
	}
	if ps.ReplayedCycles <= 0 {
		t.Fatalf("unfused run replayed %d cycles; fixture must make replay nonzero", ps.ReplayedCycles)
	}
	if fs.ReplaySavedCycles != ps.ReplayedCycles {
		t.Fatalf("ReplaySavedCycles = %d, want the unfused ReplayedCycles %d",
			fs.ReplaySavedCycles, ps.ReplayedCycles)
	}
	// The fused run must actually have fused (multiple 64-lane passes land
	// in one window here) and warm-restored.
	if fs.FusedWindows < 1 {
		t.Fatalf("FusedWindows = %d, want >= 1", fs.FusedWindows)
	}
	if fs.HookDiffs < 1 {
		t.Fatalf("HookDiffs = %d, want >= 1", fs.HookDiffs)
	}
	// The unfused reference never touches the fusion counters.
	if ps.FusedWindows != 0 || ps.ReplaySavedCycles != 0 || ps.HookDiffs != 0 {
		t.Fatalf("unfused run reports fusion work: %+v", ps)
	}
}

// TestPlanPassesEmptyUniverse is the regression for planning a universe
// with nothing in it: no faults means no passes, not an index panic in
// the width policy.
func TestPlanPassesEmptyUniverse(t *testing.T) {
	cpu := getCPU(t)
	g := fusionTestGolden(t, cpu, 64, 16)
	for _, eng := range []Engine{EngineEvent, EngineOblivious} {
		jobs, skipped, err := PlanPasses(cpu.Netlist, g, nil, eng, 32)
		if err != nil {
			t.Fatal(err)
		}
		if len(jobs) != 0 || skipped != 0 {
			t.Fatalf("engine %v: empty universe planned %d passes, %d skipped", eng, len(jobs), skipped)
		}
	}
	res, err := Simulate(cpu, g, nil, Options{Engine: EngineEvent})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DetectedAt) != 0 || res.Stats.Passes != 0 {
		t.Fatalf("empty simulation ran %d passes over %d faults", res.Stats.Passes, len(res.DetectedAt))
	}
}

// TestPlanPassesAllUndetectable is the regression for a universe whose
// every fault is provably undetectable (never activates in the golden
// run): the plan must come back empty with everything counted skipped,
// and Simulate must grade it without dividing by an empty pass.
func TestPlanPassesAllUndetectable(t *testing.T) {
	cpu := getCPU(t)
	// A short run leaves plenty of signals constant; the polarity matching
	// a constant signal's held value never activates.
	g := fusionTestGolden(t, cpu, 24, 8)
	var dead []Fault
	for _, f := range Universe(cpu.Netlist) {
		if g.ActivationCycle(cpu.Netlist, f.Site) < 0 {
			dead = append(dead, f)
			if len(dead) == 200 {
				break
			}
		}
	}
	if len(dead) == 0 {
		t.Skip("no never-activating faults in this golden run")
	}
	jobs, skipped, err := PlanPasses(cpu.Netlist, g, dead, EngineEvent, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("planned %d passes for an all-undetectable universe", len(jobs))
	}
	if skipped != int64(len(dead)) {
		t.Fatalf("skipped %d of %d undetectable faults", skipped, len(dead))
	}
	res, err := Simulate(cpu, g, dead, Options{Engine: EngineEvent, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range res.DetectedAt {
		if d != -1 {
			t.Fatalf("undetectable fault %d (%v) graded detected at %d", i, dead[i].Site, d)
		}
	}
	if res.Stats.Passes != 0 {
		t.Fatalf("ran %d passes for an all-undetectable universe", res.Stats.Passes)
	}
}
