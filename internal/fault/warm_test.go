package fault

import (
	"sync"
	"testing"

	"repro/internal/plasma"
)

// warmTestPlan samples the universe and plans it against a golden the way
// a grading service would: sample once, plan once, grade many times.
func warmTestPlan(t *testing.T, g *plasma.Golden, sample int) ([]Fault, []PassGroup) {
	t.Helper()
	cpu := getCPU(t)
	faults := SampleFaults(Universe(cpu.Netlist), sample, 1)
	plan, _, err := PlanPasses(cpu.Netlist, g, faults, EngineEvent, 0)
	if err != nil {
		t.Fatal(err)
	}
	return faults, plan
}

func requireSameOutcomes(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(got.DetectedAt) != len(want.DetectedAt) {
		t.Fatalf("%s: %d outcomes, want %d", label, len(got.DetectedAt), len(want.DetectedAt))
	}
	for i := range want.DetectedAt {
		if got.DetectedAt[i] != want.DetectedAt[i] || got.SignatureGroups[i] != want.SignatureGroups[i] {
			t.Fatalf("%s: fault %d: warm (%d, %d) vs Simulate (%d, %d)",
				label, i, got.DetectedAt[i], got.SignatureGroups[i], want.DetectedAt[i], want.SignatureGroups[i])
		}
	}
}

// TestWarmGradeMatchesSimulate grades two different programs repeatedly,
// interleaved, on ONE Warm grader — the grading-service steady state,
// where every request after the first restores warm simulators by hook
// and state diffs — and requires each grade bit-identical to a fresh
// in-process Simulate of the same golden and faults.
func TestWarmGradeMatchesSimulate(t *testing.T) {
	cpu := getCPU(t)
	gA := captureTestGolden(t, equivTestProgram, 400)
	gB := captureTestGolden(t, smokeProgram, 80)
	sample := 256
	if testing.Short() {
		sample = 96
	}
	faultsA, planA := warmTestPlan(t, gA, sample)
	faultsB, planB := warmTestPlan(t, gB, sample)

	wantA, err := Simulate(cpu, gA, faultsA, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := Simulate(cpu, gB, faultsB, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	w := NewWarm(cpu, EngineEvent)
	var res Result
	for round := 0; round < 3; round++ {
		GrowResult(&res, faultsA)
		if err := w.Grade(gA, faultsA, planA, &res); err != nil {
			t.Fatal(err)
		}
		requireSameOutcomes(t, "golden A", &res, wantA)
		GrowResult(&res, faultsB)
		if err := w.Grade(gB, faultsB, planB, &res); err != nil {
			t.Fatal(err)
		}
		requireSameOutcomes(t, "golden B", &res, wantB)
	}
	if w.ColdSims == 0 {
		t.Fatal("no simulator was ever constructed")
	}
	// The grader must not have rebuilt simulators per request: at most one
	// construction per distinct pass width across all six grades (the two
	// plans may land on different widths, e.g. at the -short sample), and
	// every other grade must have reused a warm simulator.
	widths := map[int]bool{}
	for _, j := range append(append([]PassGroup{}, planA...), planB...) {
		widths[j.Width] = true
	}
	if int(w.ColdSims) > len(widths) {
		t.Fatalf("ColdSims = %d over %d distinct widths; simulators are being rebuilt", w.ColdSims, len(widths))
	}
	if want := int64(6 - len(widths)); w.WarmGrades < want {
		t.Fatalf("WarmGrades = %d, want >= %d; grades after a width's first should reuse its warm simulator", w.WarmGrades, want)
	}
}

// TestWarmConcurrentSharedPlan is the concurrent-read-sharing contract of
// PlanPasses output and plasma.Golden: N goroutines, each with its own
// Warm grader, grade the SAME golden trace and the SAME plan slices
// concurrently (run under -race by scripts/check.sh), and every one must
// be bit-identical to the sequential Simulate reference.
func TestWarmConcurrentSharedPlan(t *testing.T) {
	cpu := getCPU(t)
	g := captureTestGolden(t, equivTestProgram, 400)
	sample := 256
	if testing.Short() {
		sample = 96
	}
	faults, plan := warmTestPlan(t, g, sample)
	want, err := Simulate(cpu, g, faults, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	const graders = 4
	const grades = 3
	var wg sync.WaitGroup
	errs := make([]error, graders)
	results := make([]*Result, graders)
	for i := 0; i < graders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := NewWarm(cpu, EngineEvent)
			res := &Result{}
			for r := 0; r < grades; r++ {
				GrowResult(res, faults)
				if err := w.Grade(g, faults, plan, res); err != nil {
					errs[i] = err
					return
				}
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("grader %d: %v", i, err)
		}
		requireSameOutcomes(t, "concurrent grader", results[i], want)
	}
}
