package fault

import (
	"math"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/gate"
	"repro/internal/plasma"
	"repro/internal/synth"
)

func TestUniverseCollapsingRules(t *testing.T) {
	b := gate.NewBuilder("u")
	a := b.Input("a")
	c := b.Input("b")
	y := b.And(a, c) // a,b each fan out once into the AND
	b.Output("y", y)
	faults := Universe(b.N)

	// Stems: a, b, y => 6 stem faults. Branch faults on the AND inputs:
	// s-a-0 absorbed into y s-a-0 (controlling value); s-a-1 absorbed into
	// the fanout-free driver stems. So 6 collapsed faults total.
	if len(faults) != 6 {
		t.Fatalf("collapsed universe = %d faults, want 6: %v", len(faults), faults)
	}
	if got := TotalEquiv(faults); got != 10 {
		t.Fatalf("uncollapsed universe = %d, want 10", got)
	}
	// y s-a-0 must have absorbed the two input s-a-0 faults.
	for _, f := range faults {
		if f.Site.Gate == y && f.Site.Pin == 0 && !f.Site.Stuck {
			if f.Equiv != 3 {
				t.Errorf("AND out s-a-0 equiv = %d, want 3", f.Equiv)
			}
		}
	}
}

func TestUniverseFanoutBranches(t *testing.T) {
	b := gate.NewBuilder("u2")
	a := b.Input("a")
	y1 := b.Xor(a, a) // two branches of the same stem feeding an XOR
	b.Output("y1", y1)
	faults := Universe(b.N)
	// Stems: a (2), y1 (2). XOR inputs have no gate-type equivalence and
	// the driver fans out twice, so all 4 branch faults remain.
	if len(faults) != 8 {
		t.Fatalf("universe = %d faults, want 8: %v", len(faults), faults)
	}
}

func TestUniverseInverterChain(t *testing.T) {
	b := gate.NewBuilder("u3")
	a := b.Input("a")
	y := b.Not(a)
	b.Output("y", y)
	faults := Universe(b.N)
	// Inverter input faults are equivalent to its output faults: 4 stems.
	if len(faults) != 4 {
		t.Fatalf("universe = %d faults, want 4: %v", len(faults), faults)
	}
	if got := TotalEquiv(faults); got != 6 {
		t.Fatalf("uncollapsed = %d, want 6", got)
	}
}

func TestUniverseExcludesConstants(t *testing.T) {
	b := gate.NewBuilder("u4")
	a := b.Input("a")
	y := b.And(a, b.Const1())
	b.Output("y", y)
	for _, f := range Universe(b.N) {
		if k := b.N.Gates[f.Site.Gate].Kind; k == gate.Const0 || k == gate.Const1 {
			if f.Site.Pin == 0 {
				t.Errorf("constant stem fault enumerated: %v", f.Site)
			}
		}
	}
}

var testCPU *plasma.CPU

func getCPU(t *testing.T) *plasma.CPU {
	t.Helper()
	if testCPU == nil {
		c, err := plasma.Build(synth.NativeLib{})
		if err != nil {
			t.Fatal(err)
		}
		testCPU = c
	}
	return testCPU
}

func captureTestGolden(t *testing.T, src string, cycles int) *plasma.Golden {
	t.Helper()
	prog, err := asm.Assemble(src+"\nh__: j h__\nnop\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	cpu := getCPU(t)
	g, err := plasma.CaptureGolden(cpu, prog, cycles)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

const smokeProgram = `
	li $t0, 0x1000
	li $t1, 0xa5a5
	sw $t1, 0($t0)
	lw $t2, 0($t0)
	addu $t3, $t2, $t1
	sw $t3, 4($t0)
	xor $t4, $t2, $t1
	sw $t4, 8($t0)
`

func TestSimulateDetectsOutputFault(t *testing.T) {
	cpu := getCPU(t)
	g := captureTestGolden(t, smokeProgram, 40)
	// Stuck-at on bit 2 of the bus address: the PC increments to 4 on the
	// very first cycle boundary, so either polarity shows up immediately.
	sig := cpu.Netlist.OutputBus(plasma.PortAddr)[2]
	faults := []Fault{
		{Site: gate.FaultSite{Gate: sig, Pin: 0, Stuck: false}, Equiv: 1},
		{Site: gate.FaultSite{Gate: sig, Pin: 0, Stuck: true}, Equiv: 1},
	}
	res, err := Simulate(cpu, g, faults, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range faults {
		if !res.Detected(i) {
			t.Errorf("address-bit fault %d undetected", i)
		}
	}
	if res.Coverage() != 100 {
		t.Errorf("coverage = %v, want 100", res.Coverage())
	}
}

func TestSimulateNoFalseDetections(t *testing.T) {
	// A fault forcing a signal to the value it always has in the golden run
	// must not be detected. The data-access output is 0 on pure fetch
	// cycles; a program with no loads/stores never raises it, so s-a-0 on
	// it is undetectable.
	cpu := getCPU(t)
	g := captureTestGolden(t, `
		li $t0, 5
		addu $t1, $t0, $t0
		xor $t2, $t0, $t1
	`, 20)
	sig := cpu.Netlist.OutputBus(plasma.PortDataAccess)[0]
	faults := []Fault{{Site: gate.FaultSite{Gate: sig, Pin: 0, Stuck: false}, Equiv: 1}}
	res, err := Simulate(cpu, g, faults, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected(0) {
		t.Error("stuck-at matching constant golden behavior was 'detected'")
	}
}

func TestSimulateDeterministicAndParallel(t *testing.T) {
	cpu := getCPU(t)
	g := captureTestGolden(t, smokeProgram, 60)
	all := Universe(cpu.Netlist)
	opt := Options{Sample: 512, Seed: 7}

	opt.Workers = 1
	r1, err := Simulate(cpu, g, all, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 4
	r2, err := Simulate(cpu, g, all, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Faults) != 512 || len(r2.Faults) != 512 {
		t.Fatalf("sampling sizes: %d, %d", len(r1.Faults), len(r2.Faults))
	}
	for i := range r1.DetectedAt {
		if r1.DetectedAt[i] != r2.DetectedAt[i] {
			t.Fatalf("worker-count changed result at fault %d: %d vs %d",
				i, r1.DetectedAt[i], r2.DetectedAt[i])
		}
	}
	if r1.Coverage() <= 5 || r1.Coverage() > 100 {
		t.Errorf("implausible sampled coverage %.1f%%", r1.Coverage())
	}
	if w := r1.WeightedCoverage(); math.Abs(w-r1.Coverage()) > 30 {
		t.Errorf("weighted coverage %.1f wildly differs from collapsed %.1f", w, r1.Coverage())
	}
}

func TestReportAggregation(t *testing.T) {
	cpu := getCPU(t)
	g := captureTestGolden(t, smokeProgram, 60)
	all := Universe(cpu.Netlist)
	res, err := Simulate(cpu, g, all, Options{Sample: 1024, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport(cpu.Netlist, res)

	sumTotal, sumDet, sumMOFC := 0, 0, 0.0
	for _, c := range rep.Components {
		if c.Detected > c.Total || c.DetW > c.TotalW {
			t.Errorf("%s: detected exceeds total", c.Name)
		}
		sumTotal += c.TotalW
		sumDet += c.DetW
		sumMOFC += c.MOFC
	}
	if sumTotal != rep.Overall.TotalW || sumDet != rep.Overall.DetW {
		t.Errorf("component sums don't match overall: %d/%d vs %d/%d",
			sumDet, sumTotal, rep.Overall.DetW, rep.Overall.TotalW)
	}
	overallFC := 100 * float64(rep.Overall.DetW) / float64(rep.Overall.TotalW)
	if math.Abs(sumMOFC-(100-overallFC)) > 0.01 {
		t.Errorf("MOFC sum %.3f != 100 - overall FC %.3f", sumMOFC, 100-overallFC)
	}
	s := rep.String()
	if !strings.Contains(s, "Plasma") || !strings.Contains(s, "RegF") {
		t.Errorf("report rendering: %q", s)
	}
	if _, ok := rep.ByName("RegF"); !ok {
		t.Error("ByName(RegF) missing")
	}
}

func TestUniverseOnCPUScale(t *testing.T) {
	cpu := getCPU(t)
	all := Universe(cpu.Netlist)
	unc := TotalEquiv(all)
	if len(all) >= unc {
		t.Errorf("collapsing did nothing: %d collapsed vs %d total", len(all), unc)
	}
	ratio := float64(len(all)) / float64(unc)
	if ratio < 0.3 || ratio > 0.9 {
		t.Errorf("collapse ratio %.2f outside plausible range", ratio)
	}
	// Every fault site must be in range and attributed to a component.
	for _, f := range all {
		if f.Site.Gate < 0 || int(f.Site.Gate) >= cpu.Netlist.NumSignals() {
			t.Fatalf("fault site out of range: %v", f.Site)
		}
		if int(f.Comp) >= len(cpu.Netlist.CompNames) {
			t.Fatalf("bad component id %d", f.Comp)
		}
	}
}
