package fault

import (
	"fmt"
	"sort"
	"strings"
)

// Signature compactly describes how a fault first manifests at the
// primary outputs: the cycle and which output group diverged. It is the
// fault-dictionary entry used for diagnosis.
type Signature struct {
	Cycle  int32
	Groups uint8 // SigAddr | SigDataAccess | SigStrobe | SigWData
}

// Output-group bits of a signature.
const (
	SigAddr uint8 = 1 << iota
	SigDataAccess
	SigStrobe
	SigWData
)

// GroupString renders the diverged output groups.
func (s Signature) GroupString() string {
	var parts []string
	if s.Groups&SigAddr != 0 {
		parts = append(parts, "addr")
	}
	if s.Groups&SigDataAccess != 0 {
		parts = append(parts, "kind")
	}
	if s.Groups&SigStrobe != 0 {
		parts = append(parts, "strobe")
	}
	if s.Groups&SigWData != 0 {
		parts = append(parts, "wdata")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// Dictionary is a fault dictionary: per detected fault, its first-failure
// signature under the recorded self-test program. Built once from a
// full-universe simulation, it turns an observed first failure on a
// failing device into a ranked set of candidate defect locations.
type Dictionary struct {
	Faults     []Fault
	Signatures []Signature // aligned with Faults; Cycle < 0 = undetected
}

// BuildDictionary assembles a dictionary from a simulation result that
// was produced with signature capture (Simulate always captures them).
func BuildDictionary(r *Result) *Dictionary {
	d := &Dictionary{Faults: r.Faults, Signatures: make([]Signature, len(r.Faults))}
	for i := range r.Faults {
		d.Signatures[i] = Signature{Cycle: r.DetectedAt[i], Groups: r.SignatureGroups[i]}
	}
	return d
}

// Candidate is one diagnosis candidate: a fault whose dictionary entry
// matches the observation, with a match grade.
type Candidate struct {
	Fault Fault
	Sig   Signature
	Exact bool // groups matched exactly, not just the cycle
}

// Diagnose returns the faults whose first failure matches the observed
// cycle, exact group matches first. An empty result means the observation
// is not explained by any single stuck-at fault in the dictionary.
func (d *Dictionary) Diagnose(obs Signature) []Candidate {
	var out []Candidate
	for i, s := range d.Signatures {
		if s.Cycle != obs.Cycle || s.Cycle < 0 {
			continue
		}
		out = append(out, Candidate{Fault: d.Faults[i], Sig: s, Exact: s.Groups == obs.Groups})
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Exact && !out[j].Exact
	})
	return out
}

// Resolution summarizes diagnostic power: how many faults share each
// signature (smaller classes = sharper diagnosis).
type Resolution struct {
	DetectedFaults  int
	DistinctClasses int
	MeanClassSize   float64
	MaxClassSize    int
}

// Resolution computes the signature-class statistics of the dictionary.
func (d *Dictionary) Resolution() Resolution {
	classes := make(map[Signature]int)
	det := 0
	for _, s := range d.Signatures {
		if s.Cycle < 0 {
			continue
		}
		det++
		classes[s]++
	}
	res := Resolution{DetectedFaults: det, DistinctClasses: len(classes)}
	for _, n := range classes {
		if n > res.MaxClassSize {
			res.MaxClassSize = n
		}
	}
	if len(classes) > 0 {
		res.MeanClassSize = float64(det) / float64(len(classes))
	}
	return res
}

func (r Resolution) String() string {
	return fmt.Sprintf("%d detected faults in %d signature classes (mean %.1f, max %d per class)",
		r.DetectedFaults, r.DistinctClasses, r.MeanClassSize, r.MaxClassSize)
}
