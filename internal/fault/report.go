package fault

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/gate"
)

// CompCoverage is fault coverage aggregated over one RT-level component,
// the per-row data of Table 5.
type CompCoverage struct {
	Name     string
	Total    int // collapsed faults in the component
	Detected int
	TotalW   int // equivalence-weighted faults
	DetW     int
	// MOFC is the "missed overall fault coverage": the percentage of the
	// whole processor's (weighted) faults that escape inside this
	// component.
	MOFC float64
}

// FC reports the component's weighted fault coverage in percent.
func (c CompCoverage) FC() float64 {
	if c.TotalW == 0 {
		return 0
	}
	return 100 * float64(c.DetW) / float64(c.TotalW)
}

// Report is the per-component breakdown of a fault-simulation result.
type Report struct {
	Components []CompCoverage
	Overall    CompCoverage
}

// NewReport aggregates a result by component, ordering components in the
// paper's Table 5 order when present (functional, control, hidden, glue).
func NewReport(n *gate.Netlist, r *Result) *Report {
	byComp := make(map[gate.CompID]*CompCoverage)
	overall := CompCoverage{Name: "Plasma"}
	for i, f := range r.Faults {
		cc := byComp[f.Comp]
		if cc == nil {
			cc = &CompCoverage{Name: n.CompNames[f.Comp]}
			byComp[f.Comp] = cc
		}
		cc.Total++
		cc.TotalW += f.Equiv
		overall.Total++
		overall.TotalW += f.Equiv
		if r.Detected(i) {
			cc.Detected++
			cc.DetW += f.Equiv
			overall.Detected++
			overall.DetW += f.Equiv
		}
	}
	rep := &Report{Overall: overall}
	for _, cc := range byComp {
		if overall.TotalW > 0 {
			cc.MOFC = 100 * float64(cc.TotalW-cc.DetW) / float64(overall.TotalW)
		}
		rep.Components = append(rep.Components, *cc)
	}
	sort.Slice(rep.Components, func(i, j int) bool {
		oi, oj := tableOrder(rep.Components[i].Name), tableOrder(rep.Components[j].Name)
		if oi != oj {
			return oi < oj
		}
		return rep.Components[i].Name < rep.Components[j].Name
	})
	return rep
}

// tableOrder gives the Table 5 row order of the Plasma components.
var table5Order = []string{"RegF", "MulD", "ALU", "BSH", "MCTRL", "PCL", "CTRL", "BMUX", "PLN", "GL"}

func tableOrder(name string) int {
	for i, n := range table5Order {
		if n == name {
			return i
		}
	}
	return len(table5Order)
}

// String renders the report in the layout of Table 5.
func (rep *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %8s %8s %7s %7s\n", "Component", "Faults", "Detect", "FC%", "MOFC%")
	for _, c := range rep.Components {
		fmt.Fprintf(&sb, "%-10s %8d %8d %7.2f %7.2f\n", c.Name, c.TotalW, c.DetW, c.FC(), c.MOFC)
	}
	ov := rep.Overall
	fmt.Fprintf(&sb, "%-10s %8d %8d %7.2f\n", ov.Name, ov.TotalW, ov.DetW,
		100*float64(ov.DetW)/float64(max(1, ov.TotalW)))
	return sb.String()
}

// ByName returns the coverage row of a component, if present.
func (rep *Report) ByName(name string) (CompCoverage, bool) {
	for _, c := range rep.Components {
		if c.Name == name {
			return c, true
		}
	}
	return CompCoverage{}, false
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
