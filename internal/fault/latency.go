package fault

import (
	"fmt"
	"sort"
	"strings"
)

// LatencyStats summarizes when faults are first observed during the test
// program: compact self-test routines detect most of their targets within
// the routine's own execution window, which is what allows aggressive
// fault dropping during grading.
type LatencyStats struct {
	// DetectCycles holds the first-detection cycle of every detected
	// fault, ascending.
	DetectCycles []int32
	// Cycles is the program length.
	Cycles int
}

// NewLatencyStats extracts detection-latency data from a result.
func NewLatencyStats(r *Result) *LatencyStats {
	st := &LatencyStats{Cycles: r.Cycles}
	for _, c := range r.DetectedAt {
		if c >= 0 {
			st.DetectCycles = append(st.DetectCycles, c)
		}
	}
	sort.Slice(st.DetectCycles, func(i, j int) bool { return st.DetectCycles[i] < st.DetectCycles[j] })
	return st
}

// Percentile returns the cycle by which the given fraction (0..1) of all
// detected faults have been observed.
func (st *LatencyStats) Percentile(p float64) int32 {
	if len(st.DetectCycles) == 0 {
		return 0
	}
	i := int(p * float64(len(st.DetectCycles)))
	if i >= len(st.DetectCycles) {
		i = len(st.DetectCycles) - 1
	}
	if i < 0 {
		i = 0
	}
	return st.DetectCycles[i]
}

// Histogram buckets detections over n equal windows of the program.
func (st *LatencyStats) Histogram(n int) []int {
	h := make([]int, n)
	if st.Cycles == 0 {
		return h
	}
	for _, c := range st.DetectCycles {
		b := int(c) * n / st.Cycles
		if b >= n {
			b = n - 1
		}
		h[b]++
	}
	return h
}

// String renders a compact text histogram with detection percentiles.
func (st *LatencyStats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "detected faults: %d over %d cycles\n", len(st.DetectCycles), st.Cycles)
	fmt.Fprintf(&sb, "detection percentiles: 50%%<=%d 90%%<=%d 99%%<=%d cycles\n",
		st.Percentile(0.50), st.Percentile(0.90), st.Percentile(0.99))
	h := st.Histogram(10)
	peak := 1
	for _, v := range h {
		if v > peak {
			peak = v
		}
	}
	for i, v := range h {
		bar := strings.Repeat("#", v*40/peak)
		fmt.Fprintf(&sb, "%3d%%-%3d%% %7d %s\n", i*10, (i+1)*10, v, bar)
	}
	return sb.String()
}
