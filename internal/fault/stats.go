package fault

import (
	"fmt"
	"strings"
)

// SimStats is the observability layer of a fault-simulation run: how much
// work the engine actually performed, and where detections landed. All
// counters are totals across every pass of the run.
type SimStats struct {
	// Passes is the number of simulation passes executed (each carrying up
	// to 64*LaneWords faulty machines).
	Passes int64
	// PassWidthHist histograms passes by lane width: slot i counts passes
	// run at width 2^i words (1, 2, 4, 8, 16, 32, 64).
	PassWidthHist [widthSlots]int64
	// GateEvalsByWidth splits GateEvals by the lane width of the pass that
	// performed them, same slot mapping as PassWidthHist. One eval of a
	// width-w pass computes 64*w faulty machines at once.
	GateEvalsByWidth [widthSlots]int64
	// SimCycles is the number of clock cycles actually simulated (after
	// fast-forwarding and early pass exits).
	SimCycles int64
	// FastForwarded is the number of cycles skipped by jumping passes to
	// the golden checkpoint boundary before their earliest fault
	// activation.
	FastForwarded int64
	// ReplayedCycles is the number of golden cycles simulated between a
	// pass's checkpoint boundary and its earliest fault activation: the
	// price of sparse checkpoints, bounded by CheckpointK-1 per pass.
	// Replay fusion eliminates these (see ReplaySavedCycles), so the
	// counter is nonzero only with fusion disabled.
	ReplayedCycles int64
	// FusedWindows counts checkpoint windows that fused more than one pass
	// onto one warm simulator; ReplaySavedCycles is the number of
	// boundary-to-activation golden cycles those passes reconstructed by
	// batched XOR-delta application instead of simulating (each one a cycle
	// ReplayedCycles would otherwise count); HookDiffs counts warm-restart
	// hook-set swaps (diff-patched fault installs on an already-valid
	// simulator, replacing a full Reset+SetFaults+oblivious re-sweep).
	FusedWindows      int64
	ReplaySavedCycles int64
	HookDiffs         int64
	// SkippedFaults counts faults never simulated because their site never
	// holds the activating value anywhere in the golden run (provably
	// undetectable by this program).
	SkippedFaults int64
	// GateEvals is the number of combinational gate evaluations performed;
	// GateEvals/SimCycles is the differential engine's headline win over
	// the oblivious engine's evals/cycle (== the netlist's gate count).
	GateEvals int64
	// Events is the number of signal value changes propagated by the
	// event-driven evaluator.
	Events int64
	// LanesDropped counts detected faulty machines conformed back to the
	// golden trajectory (true fault dropping).
	LanesDropped int64
	// DroppedPerWindow histograms lane drops by detection cycle decile of
	// the golden run: front-loaded detection fills the early buckets.
	DroppedPerWindow [10]int64
	// ExitHist histograms pass end cycles (early exit on full detection or
	// run-out) by golden-run decile.
	ExitHist [10]int64
	// Sharded-grading counters, populated by the internal/shard
	// coordinator (zero for in-process runs). ShardsLaunched counts worker
	// processes spawned, including retries; ShardsRetried counts shards
	// whose first attempt failed and were retried; ShardsFailed counts
	// failed worker attempts (crash, timeout, bad frame); ShardsFallback
	// counts shards graded in-process after spawning failed.
	ShardsLaunched int64
	ShardsRetried  int64
	ShardsFailed   int64
	ShardsFallback int64
	// ShardBytesShipped is the artifact bytes written to ship the netlist
	// and golden trace to workers (0 when already present in the cache).
	ShardBytesShipped int64
	// ShardWallNs sums per-shard wall-clock nanoseconds (the cost a
	// serial machine would pay); the coordinator's own wall-clock is the
	// slowest shard, reported separately by shard.Stats.
	ShardWallNs int64
	// Distributed-grading counters, populated by the internal/shard
	// multi-host coordinator (zero otherwise). DistHosts counts live
	// remote hosts the run graded on; DistRedispatched counts duplicate
	// straggler dispatches to idle hosts; DistShipNs is the wall clock the
	// coordinator spent replicating artifacts to worker caches; DistMergeNs
	// is the wall clock spent merging shard results.
	DistHosts        int64
	DistRedispatched int64
	DistShipNs       int64
	DistMergeNs      int64
	// Kernel dispatch counters from the gate evaluators (summed over every
	// simulator of the run): batch runs dispatched to the SIMD assembly
	// kernels vs the generic Go run kernels, gates evaluated through those
	// batched runs, scalar uniform fast-path evaluations, and full-width
	// hooked-gate evaluations (fault-injection sites).
	SIMDKernelRuns      int64
	GenericKernelRuns   int64
	BatchedGateEvals    int64
	UniformFastPathHits int64
	ScalarKernelEvals   int64
	// SIMDRunsByWidth / GenericRunsByWidth split the kernel-run counters
	// by the lane width of the dispatching pass, same slot mapping as
	// PassWidthHist: together with the tier name (gate.SIMDKernelName)
	// they show which kernel of the matrix did the work.
	SIMDRunsByWidth    [widthSlots]int64
	GenericRunsByWidth [widthSlots]int64
	// TraceDenseBytes is the size the golden read-data and primary-output
	// streams would occupy as dense per-cycle arrays; TraceStoredBytes is
	// the size the run-length encoded streams actually occupy.
	TraceDenseBytes  int64
	TraceStoredBytes int64
	// GoldenDenseBytes is the size the golden flip-flop trace would occupy
	// in the dense one-snapshot-per-cycle format; GoldenStoredBytes is the
	// size the sparse delta-encoded trace actually occupies (in memory and
	// in the artifact cache). Their ratio is the compression factor.
	GoldenDenseBytes  int64
	GoldenStoredBytes int64
}

// Add accumulates other into s.
func (s *SimStats) Add(other *SimStats) {
	s.Passes += other.Passes
	for i := range s.PassWidthHist {
		s.PassWidthHist[i] += other.PassWidthHist[i]
		s.GateEvalsByWidth[i] += other.GateEvalsByWidth[i]
	}
	s.SimCycles += other.SimCycles
	s.FastForwarded += other.FastForwarded
	s.ReplayedCycles += other.ReplayedCycles
	s.FusedWindows += other.FusedWindows
	s.ReplaySavedCycles += other.ReplaySavedCycles
	s.HookDiffs += other.HookDiffs
	s.SkippedFaults += other.SkippedFaults
	s.GateEvals += other.GateEvals
	s.Events += other.Events
	s.LanesDropped += other.LanesDropped
	for i := range s.DroppedPerWindow {
		s.DroppedPerWindow[i] += other.DroppedPerWindow[i]
		s.ExitHist[i] += other.ExitHist[i]
	}
	s.ShardsLaunched += other.ShardsLaunched
	s.ShardsRetried += other.ShardsRetried
	s.ShardsFailed += other.ShardsFailed
	s.ShardsFallback += other.ShardsFallback
	s.ShardBytesShipped += other.ShardBytesShipped
	s.ShardWallNs += other.ShardWallNs
	s.DistHosts += other.DistHosts
	s.DistRedispatched += other.DistRedispatched
	s.DistShipNs += other.DistShipNs
	s.DistMergeNs += other.DistMergeNs
	s.SIMDKernelRuns += other.SIMDKernelRuns
	s.GenericKernelRuns += other.GenericKernelRuns
	for i := range s.SIMDRunsByWidth {
		s.SIMDRunsByWidth[i] += other.SIMDRunsByWidth[i]
		s.GenericRunsByWidth[i] += other.GenericRunsByWidth[i]
	}
	s.BatchedGateEvals += other.BatchedGateEvals
	s.UniformFastPathHits += other.UniformFastPathHits
	s.ScalarKernelEvals += other.ScalarKernelEvals
	s.TraceDenseBytes += other.TraceDenseBytes
	s.TraceStoredBytes += other.TraceStoredBytes
	s.GoldenDenseBytes += other.GoldenDenseBytes
	s.GoldenStoredBytes += other.GoldenStoredBytes
}

// TraceCompression reports the golden bus-trace compression factor
// (dense-equivalent bytes over stored bytes).
func (s *SimStats) TraceCompression() float64 {
	if s.TraceStoredBytes == 0 {
		return 0
	}
	return float64(s.TraceDenseBytes) / float64(s.TraceStoredBytes)
}

// EvalsPerCycle reports the mean combinational gate evaluations per
// simulated cycle.
func (s *SimStats) EvalsPerCycle() float64 {
	if s.SimCycles == 0 {
		return 0
	}
	return float64(s.GateEvals) / float64(s.SimCycles)
}

// GoldenCompression reports the golden-trace compression factor
// (dense-equivalent bytes over stored bytes).
func (s *SimStats) GoldenCompression() float64 {
	if s.GoldenStoredBytes == 0 {
		return 0
	}
	return float64(s.GoldenDenseBytes) / float64(s.GoldenStoredBytes)
}

func histString(h *[10]int64) string {
	parts := make([]string, len(h))
	for i, v := range h {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func widthHistString(h *[widthSlots]int64) string {
	parts := make([]string, 0, len(h))
	for i, v := range h {
		parts = append(parts, fmt.Sprintf("%dw:%d", 1<<uint(i), v))
	}
	return strings.Join(parts, " ")
}

// String renders the stats as a compact multi-line report.
func (s *SimStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "passes            %d\n", s.Passes)
	fmt.Fprintf(&b, "passes by width   %s\n", widthHistString(&s.PassWidthHist))
	fmt.Fprintf(&b, "evals by width    %s\n", widthHistString(&s.GateEvalsByWidth))
	fmt.Fprintf(&b, "sim cycles        %d\n", s.SimCycles)
	fmt.Fprintf(&b, "fast-forwarded    %d cycles\n", s.FastForwarded)
	fmt.Fprintf(&b, "replayed          %d cycles (checkpoint boundary to first activation)\n", s.ReplayedCycles)
	fmt.Fprintf(&b, "replay fusion     %d windows fused, %d replay cycles saved, %d hook-set diffs\n",
		s.FusedWindows, s.ReplaySavedCycles, s.HookDiffs)
	fmt.Fprintf(&b, "skipped faults    %d (never activated)\n", s.SkippedFaults)
	fmt.Fprintf(&b, "gate evals        %d (%.1f/cycle)\n", s.GateEvals, s.EvalsPerCycle())
	fmt.Fprintf(&b, "events            %d\n", s.Events)
	fmt.Fprintf(&b, "lanes dropped     %d\n", s.LanesDropped)
	fmt.Fprintf(&b, "drops by decile   %s\n", histString(&s.DroppedPerWindow))
	fmt.Fprintf(&b, "pass exit decile  %s\n", histString(&s.ExitHist))
	fmt.Fprintf(&b, "kernel runs       %d simd, %d generic (%d gates batched)\n",
		s.SIMDKernelRuns, s.GenericKernelRuns, s.BatchedGateEvals)
	fmt.Fprintf(&b, "simd runs/width   %s\n", widthHistString(&s.SIMDRunsByWidth))
	fmt.Fprintf(&b, "kernel fast paths %d uniform, %d hooked full-width\n",
		s.UniformFastPathHits, s.ScalarKernelEvals)
	fmt.Fprintf(&b, "bus trace         %d B stored, %d B dense-equivalent (%.1fx smaller)\n",
		s.TraceStoredBytes, s.TraceDenseBytes, s.TraceCompression())
	fmt.Fprintf(&b, "golden trace      %d B stored, %d B dense-equivalent (%.1fx smaller)",
		s.GoldenStoredBytes, s.GoldenDenseBytes, s.GoldenCompression())
	if s.ShardsLaunched > 0 || s.ShardsFallback > 0 {
		fmt.Fprintf(&b, "\nshard workers     %d launched, %d retried, %d failed, %d in-process fallbacks",
			s.ShardsLaunched, s.ShardsRetried, s.ShardsFailed, s.ShardsFallback)
		fmt.Fprintf(&b, "\nshard shipping    %d B artifacts written", s.ShardBytesShipped)
		fmt.Fprintf(&b, "\nshard wall-clock  %.3fs summed across shards", float64(s.ShardWallNs)/1e9)
	}
	if s.DistHosts > 0 {
		fmt.Fprintf(&b, "\ndist hosts        %d live, %d straggler re-dispatches", s.DistHosts, s.DistRedispatched)
		fmt.Fprintf(&b, "\ndist wall-clock   %.3fs shipping artifacts, %.3fs merging",
			float64(s.DistShipNs)/1e9, float64(s.DistMergeNs)/1e9)
	}
	return b.String()
}
