package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
)

// Byte-level artifact replication for distributed grading (internal/shard
// GradeDist): a coordinator reads the raw bytes of its locally stored
// artifacts and pushes them to remote worker caches, keyed by content
// hash. Because every artifact is immutable by construction — the name is
// a function of the content — replication is a one-way copy: a worker
// either has the identical bytes already or stores exactly what the
// coordinator read. Verification happens on both ends (ReadArtifact
// re-checks what it reads, PutArtifactBytes re-checks what it is asked to
// store), so a corrupted file can only ever turn into a diagnosed error
// or a heal, never a silently wrong simulation.

// ArtifactKind names one replicable content-addressed artifact family.
type ArtifactKind string

const (
	// KindNetlist is the canonical netlist text (netlist-KEY.txt); the
	// key is the SHA-256 of the bytes.
	KindNetlist ArtifactKind = "netlist"
	// KindCPU is the gob sidecar of a shipped CPU (cpuship-KEY.gob); the
	// key is the content address of the netlist the sidecar names, so
	// verification decodes the sidecar and checks its NetHash field.
	KindCPU ArtifactKind = "cpuship"
	// KindGolden is a shipped golden trace (goldenship-KEY.gob); the key
	// is the SHA-256 of the gob bytes.
	KindGolden ArtifactKind = "golden"
)

// artifactName maps (kind, key) to the entry's base file name, rejecting
// keys that are not plain lowercase hex — keys arrive over the wire in
// replication requests and are joined into cache paths, so anything that
// could traverse out of the directory must be refused before it touches
// the filesystem.
func artifactName(kind ArtifactKind, key string) (string, error) {
	if key == "" {
		return "", fmt.Errorf("cache: empty artifact key")
	}
	for _, r := range key {
		switch {
		case r >= '0' && r <= '9', r >= 'a' && r <= 'f':
		default:
			return "", fmt.Errorf("cache: artifact key %q is not lowercase hex", key)
		}
	}
	switch kind {
	case KindNetlist:
		return "netlist-" + key + ".txt", nil
	case KindCPU:
		return "cpuship-" + key + ".gob", nil
	case KindGolden:
		return "goldenship-" + key + ".gob", nil
	}
	return "", fmt.Errorf("cache: unknown artifact kind %q", kind)
}

// verifyArtifact checks data against its content address. Each kind
// carries its own integrity rule: netlist and golden bytes hash directly
// to the key, while a CPU sidecar is keyed by the netlist it names (the
// sidecar itself embeds synthesis handles, so it is validated by decoding
// it and comparing the embedded netlist hash).
func verifyArtifact(kind ArtifactKind, key string, data []byte) error {
	switch kind {
	case KindNetlist, KindGolden:
		if sum := sha256.Sum256(data); hex.EncodeToString(sum[:]) != key {
			return fmt.Errorf("cache: %s artifact fails its content hash %s", kind, key)
		}
	case KindCPU:
		var aux cpuShip
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&aux); err != nil {
			return fmt.Errorf("cache: cpu artifact %s: %w", key, err)
		}
		if aux.NetHash != key {
			return fmt.Errorf("cache: cpu artifact %s names netlist %s", key, aux.NetHash)
		}
	default:
		return fmt.Errorf("cache: unknown artifact kind %q", kind)
	}
	return nil
}

// HasArtifact reports whether the cache holds an entry for (kind, key).
// It is a presence check only — the answer a worker gives to a HAVE
// probe; content is re-verified when the entry is actually read, and a
// stale or corrupt entry heals through PutArtifactBytes on the
// coordinator's forced re-push.
func (c *Cache) HasArtifact(kind ArtifactKind, key string) bool {
	if c == nil {
		return false
	}
	name, err := artifactName(kind, key)
	if err != nil {
		return false
	}
	_, err = os.Stat(filepath.Join(c.dir, name))
	return err == nil
}

// ReadArtifact returns the verified raw bytes of a stored artifact, for
// pushing to a remote cache. The entry is pinned for the duration of the
// read so a concurrent LRU sweep cannot evict it mid-transfer.
func (c *Cache) ReadArtifact(kind ArtifactKind, key string) ([]byte, error) {
	if c == nil {
		return nil, fmt.Errorf("cache: ReadArtifact needs an open cache")
	}
	name, err := artifactName(kind, key)
	if err != nil {
		return nil, err
	}
	c.pin(name)
	defer c.unpin(name)
	path := filepath.Join(c.dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cache: %s artifact %s: %w", kind, key, err)
	}
	if err := verifyArtifact(kind, key, data); err != nil {
		return nil, err
	}
	c.touch(path)
	return data, nil
}

// PutArtifactBytes stores replicated artifact bytes under their content
// address, returning the bytes newly written (0 when an identical entry
// was already present). The data is verified against the key before
// anything touches disk, and — unlike writeIfAbsent, where existence
// implies correctness for locally produced entries — an existing entry is
// re-verified and overwritten when it fails its own integrity rule, so a
// coordinator's forced re-push heals a corrupted worker cache instead of
// tripping over it forever.
func (c *Cache) PutArtifactBytes(kind ArtifactKind, key string, data []byte) (int64, error) {
	if c == nil {
		return 0, fmt.Errorf("cache: PutArtifactBytes needs an open cache")
	}
	if err := verifyArtifact(kind, key, data); err != nil {
		return 0, err
	}
	name, err := artifactName(kind, key)
	if err != nil {
		return 0, err
	}
	path := filepath.Join(c.dir, name)
	if existing, err := os.ReadFile(path); err == nil {
		if verifyArtifact(kind, key, existing) == nil {
			c.touch(path)
			return 0, nil
		}
		// Corrupt entry: fall through and overwrite with the good bytes.
	}
	if err := writeAtomic(path, func(f *os.File) error {
		_, err := f.Write(data)
		return err
	}); err != nil {
		return 0, err
	}
	c.maybeGC(int64(len(data)))
	return int64(len(data)), nil
}

// Pin exempts an artifact from LRU collection until the matching Unpin.
// Pins are refcounted, so overlapping pinners (a replication push and a
// long grading run holding the same golden) compose. Pinning an entry
// that does not exist is allowed and harmless — the pin simply guards the
// name.
func (c *Cache) Pin(kind ArtifactKind, key string) {
	if c == nil {
		return
	}
	if name, err := artifactName(kind, key); err == nil {
		c.pin(name)
	}
}

// Unpin releases one Pin reference.
func (c *Cache) Unpin(kind ArtifactKind, key string) {
	if c == nil {
		return
	}
	if name, err := artifactName(kind, key); err == nil {
		c.unpin(name)
	}
}

func (c *Cache) pin(name string) {
	c.mu.Lock()
	c.pins[name]++
	c.mu.Unlock()
}

func (c *Cache) unpin(name string) {
	c.mu.Lock()
	if c.pins[name] > 1 {
		c.pins[name]--
	} else {
		delete(c.pins, name)
	}
	c.mu.Unlock()
}

// pinned reports whether an entry name currently holds any pins.
func (c *Cache) pinned(name string) bool {
	c.mu.Lock()
	_, ok := c.pins[name]
	c.mu.Unlock()
	return ok
}
