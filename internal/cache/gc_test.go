package cache

import (
	"bytes"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/plasma"
)

// plantEntry writes a fake cache entry of the given size directly into the
// cache directory with a controlled mtime, so GC tests can build an exact
// LRU order without capturing real artifacts.
func plantEntry(t *testing.T, dir, name string, size int, age time.Duration) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, bytes.Repeat([]byte{0xAB}, size), 0o644); err != nil {
		t.Fatal(err)
	}
	when := time.Now().Add(-age)
	if err := os.Chtimes(path, when, when); err != nil {
		t.Fatal(err)
	}
	return path
}

// The sweep must be amortized: small stores accumulate toward the
// maxBytes/gcSweepFraction threshold instead of paying a full directory
// walk each, even while the directory is over budget.
func TestMaybeGCAmortized(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.SetMaxBytes(100_000) // sweep threshold: 100_000/8 = 12_500 bytes stored
	old := plantEntry(t, dir, "golden-old.gob", 60_000, time.Hour)
	newer := plantEntry(t, dir, "golden-new.gob", 60_000, time.Minute)

	// 120KB on disk exceeds the bound, but only 50 bytes have been stored
	// since the last sweep: no sweep yet.
	c.maybeGC(50)
	if _, err := os.Stat(old); err != nil {
		t.Fatalf("sweep ran below the amortization threshold: %v", err)
	}

	// Crossing the threshold triggers the sweep, which evicts the LRU
	// entry and keeps the fresher one.
	c.maybeGC(20_000)
	if _, err := os.Stat(old); !os.IsNotExist(err) {
		t.Fatalf("LRU entry survived a triggered sweep (stat err: %v)", err)
	}
	if _, err := os.Stat(newer); err != nil {
		t.Fatalf("sweep evicted the most recently used entry: %v", err)
	}

	// The accumulator must reset after a sweep: another small store stays
	// below the threshold again.
	victim := plantEntry(t, dir, "golden-victim.gob", 60_000, time.Hour)
	c.maybeGC(50)
	if _, err := os.Stat(victim); err != nil {
		t.Fatalf("accumulator not reset after sweep: %v", err)
	}
}

// An entry that vanishes between the GC's directory scan and its delete
// (concurrent GC, external cleaner) is already reclaimed: treating the
// ENOENT as a failed delete would make the sweep evict live entries it
// should have kept.
func TestGCRemoveENOENTNotOverEvicting(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	old := plantEntry(t, dir, "golden-a.gob", 10_000, time.Hour)
	mid := plantEntry(t, dir, "golden-b.gob", 10_000, 30*time.Minute)
	newer := plantEntry(t, dir, "golden-c.gob", 10_000, time.Minute)

	// The oldest entry disappears just before the GC removes it.
	defer func() { osRemove = os.Remove }()
	osRemove = func(path string) error {
		if path == old {
			if err := os.Remove(path); err != nil {
				return err
			}
			return fs.ErrNotExist
		}
		return os.Remove(path)
	}

	// Bound of 20KB over 30KB: exactly one eviction (the oldest) suffices.
	reclaimed, err := c.GC(20_000)
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed != 10_000 {
		t.Fatalf("reclaimed %d bytes, want 10000 (the vanished entry counts)", reclaimed)
	}
	if _, err := os.Stat(mid); err != nil {
		t.Fatalf("GC over-evicted after an ENOENT delete: %v", err)
	}
	if _, err := os.Stat(newer); err != nil {
		t.Fatalf("GC over-evicted after an ENOENT delete: %v", err)
	}
}

// The grading server stores artifacts from many goroutines; sweeps must be
// serialized. This hammers PutGolden from several goroutines with a bound
// small enough that nearly every store crosses the sweep threshold, and
// asserts — via the osRemove hook — that no two sweeps ever overlap. Run
// under -race by scripts/check.sh, which additionally catches unsynchronized
// access to the sweep accumulator itself.
func TestConcurrentPutGCSerialized(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.SetMaxBytes(4_096) // sweep threshold: 512 bytes, i.e. almost every Put

	var inFlight, overlaps atomic.Int32
	defer func() { osRemove = os.Remove }()
	osRemove = func(path string) error {
		if inFlight.Add(1) > 1 {
			overlaps.Add(1)
		}
		time.Sleep(200 * time.Microsecond) // widen the overlap window
		inFlight.Add(-1)
		return os.Remove(path)
	}

	const writers = 8
	const puts = 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < puts; i++ {
				// Distinct content per iteration: every Put stores a new
				// ~1KB artifact and feeds the sweep accumulator.
				words := make([]uint32, 256)
				for j := range words {
					words[j] = uint32(w<<20 | i<<10 | j)
				}
				g := &plasma.Golden{Cycles: w*puts + i, ProgWords: words}
				if _, _, err := c.PutGolden(g); err != nil {
					t.Errorf("PutGolden: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n := overlaps.Load(); n > 0 {
		t.Fatalf("%d overlapping GC sweeps observed; sweeps must be serialized", n)
	}
	// An explicit GC call must still run (wait, not skip) and enforce the
	// bound even right after the amortized sweeps.
	if _, err := c.GC(2_048); err != nil {
		t.Fatal(err)
	}
	var total int64
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	if total > 2_048 {
		t.Fatalf("directory holds %d bytes after GC(2048)", total)
	}
}
