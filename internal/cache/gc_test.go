package cache

import (
	"bytes"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// plantEntry writes a fake cache entry of the given size directly into the
// cache directory with a controlled mtime, so GC tests can build an exact
// LRU order without capturing real artifacts.
func plantEntry(t *testing.T, dir, name string, size int, age time.Duration) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, bytes.Repeat([]byte{0xAB}, size), 0o644); err != nil {
		t.Fatal(err)
	}
	when := time.Now().Add(-age)
	if err := os.Chtimes(path, when, when); err != nil {
		t.Fatal(err)
	}
	return path
}

// The sweep must be amortized: small stores accumulate toward the
// maxBytes/gcSweepFraction threshold instead of paying a full directory
// walk each, even while the directory is over budget.
func TestMaybeGCAmortized(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.SetMaxBytes(100_000) // sweep threshold: 100_000/8 = 12_500 bytes stored
	old := plantEntry(t, dir, "golden-old.gob", 60_000, time.Hour)
	newer := plantEntry(t, dir, "golden-new.gob", 60_000, time.Minute)

	// 120KB on disk exceeds the bound, but only 50 bytes have been stored
	// since the last sweep: no sweep yet.
	c.maybeGC(50)
	if _, err := os.Stat(old); err != nil {
		t.Fatalf("sweep ran below the amortization threshold: %v", err)
	}

	// Crossing the threshold triggers the sweep, which evicts the LRU
	// entry and keeps the fresher one.
	c.maybeGC(20_000)
	if _, err := os.Stat(old); !os.IsNotExist(err) {
		t.Fatalf("LRU entry survived a triggered sweep (stat err: %v)", err)
	}
	if _, err := os.Stat(newer); err != nil {
		t.Fatalf("sweep evicted the most recently used entry: %v", err)
	}

	// The accumulator must reset after a sweep: another small store stays
	// below the threshold again.
	victim := plantEntry(t, dir, "golden-victim.gob", 60_000, time.Hour)
	c.maybeGC(50)
	if _, err := os.Stat(victim); err != nil {
		t.Fatalf("accumulator not reset after sweep: %v", err)
	}
}

// An entry that vanishes between the GC's directory scan and its delete
// (concurrent GC, external cleaner) is already reclaimed: treating the
// ENOENT as a failed delete would make the sweep evict live entries it
// should have kept.
func TestGCRemoveENOENTNotOverEvicting(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	old := plantEntry(t, dir, "golden-a.gob", 10_000, time.Hour)
	mid := plantEntry(t, dir, "golden-b.gob", 10_000, 30*time.Minute)
	newer := plantEntry(t, dir, "golden-c.gob", 10_000, time.Minute)

	// The oldest entry disappears just before the GC removes it.
	defer func() { osRemove = os.Remove }()
	osRemove = func(path string) error {
		if path == old {
			if err := os.Remove(path); err != nil {
				return err
			}
			return fs.ErrNotExist
		}
		return os.Remove(path)
	}

	// Bound of 20KB over 30KB: exactly one eviction (the oldest) suffices.
	reclaimed, err := c.GC(20_000)
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed != 10_000 {
		t.Fatalf("reclaimed %d bytes, want 10000 (the vanished entry counts)", reclaimed)
	}
	if _, err := os.Stat(mid); err != nil {
		t.Fatalf("GC over-evicted after an ENOENT delete: %v", err)
	}
	if _, err := os.Stat(newer); err != nil {
		t.Fatalf("GC over-evicted after an ENOENT delete: %v", err)
	}
}
