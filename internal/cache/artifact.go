package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/gate"
	"repro/internal/plasma"
	"repro/internal/synth"
)

// Artifact shipping for sharded grading (internal/shard): a coordinator
// Puts the synthesized CPU and the captured golden trace into a cache
// directory shared with its worker processes, then hands the workers only
// the content-address keys. Both Put operations are idempotent — an
// artifact already present costs zero bytes to "ship" again — which is
// what makes the netlist+golden transfer a once-per-universe cost instead
// of a per-shard one. Gets re-hash what they read, so a corrupted or
// truncated artifact is an error, never a silently wrong simulation.

// cpuShip is the gob sidecar of a shipped CPU: the content address of its
// netlist plus the synthesis handles plasma.Build assigns (the same shape
// as the library-keyed cpuAux, with the library carried by name so the
// receiving process can rebind it).
type cpuShip struct {
	NetHash        string
	LibName        string
	PC, IR, Hi, Lo synth.Bus
	MemCycle, Busy gate.Sig
}

// Dir returns the cache's directory path ("" for a nil cache) so the
// directory can be handed to a worker process.
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// PutCPU stores a CPU as a content-addressed artifact and returns its key
// and the bytes newly written (0 when every piece was already present).
func (c *Cache) PutCPU(cpu *plasma.CPU) (key string, shipped int64, err error) {
	if c == nil {
		return "", 0, fmt.Errorf("cache: PutCPU needs an open cache")
	}
	var sb strings.Builder
	if err := gate.WriteNetlist(&sb, cpu.Netlist); err != nil {
		return "", 0, err
	}
	text := sb.String()
	sum := sha256.Sum256([]byte(text))
	hash := hex.EncodeToString(sum[:])
	c.mu.Lock()
	c.hashes[cpu.Netlist] = hash
	c.mu.Unlock()
	n, err := c.writeIfAbsent(filepath.Join(c.dir, "netlist-"+hash+".txt"), []byte(text))
	if err != nil {
		return "", 0, err
	}
	shipped += n
	aux := cpuShip{
		NetHash:  hash,
		PC:       cpu.PC,
		IR:       cpu.IR,
		Hi:       cpu.Hi,
		Lo:       cpu.Lo,
		MemCycle: cpu.MemCycle,
		Busy:     cpu.Busy,
	}
	if cpu.Lib != nil {
		aux.LibName = cpu.Lib.Name()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&aux); err != nil {
		return "", 0, err
	}
	n, err = c.writeIfAbsent(filepath.Join(c.dir, "cpuship-"+hash+".gob"), buf.Bytes())
	if err != nil {
		return "", 0, err
	}
	shipped += n
	c.maybeGC(shipped)
	return hash, shipped, nil
}

// GetCPU loads a CPU previously stored with PutCPU. The netlist text is
// re-hashed against the key, so a corrupted entry is an error.
func (c *Cache) GetCPU(key string) (*plasma.CPU, error) {
	if c == nil {
		return nil, fmt.Errorf("cache: GetCPU needs an open cache")
	}
	auxPath := filepath.Join(c.dir, "cpuship-"+key+".gob")
	f, err := os.Open(auxPath)
	if err != nil {
		return nil, fmt.Errorf("cache: cpu artifact %s: %w", key, err)
	}
	defer f.Close()
	var aux cpuShip
	if err := gob.NewDecoder(f).Decode(&aux); err != nil {
		return nil, fmt.Errorf("cache: cpu artifact %s: %w", key, err)
	}
	if aux.NetHash != key {
		return nil, fmt.Errorf("cache: cpu artifact %s names netlist %s", key, aux.NetHash)
	}
	text, err := os.ReadFile(filepath.Join(c.dir, "netlist-"+key+".txt"))
	if err != nil {
		return nil, fmt.Errorf("cache: cpu artifact %s: %w", key, err)
	}
	if sum := sha256.Sum256(text); hex.EncodeToString(sum[:]) != key {
		return nil, fmt.Errorf("cache: netlist %s fails its content hash", key)
	}
	n, err := gate.ReadNetlist(strings.NewReader(string(text)))
	if err != nil {
		return nil, fmt.Errorf("cache: netlist %s: %w", key, err)
	}
	c.mu.Lock()
	c.hashes[n] = key
	c.mu.Unlock()
	c.touch(auxPath)
	return &plasma.CPU{
		Netlist:  n,
		Lib:      synth.LibraryByName(aux.LibName),
		PC:       aux.PC,
		IR:       aux.IR,
		Hi:       aux.Hi,
		Lo:       aux.Lo,
		MemCycle: aux.MemCycle,
		Busy:     aux.Busy,
	}, nil
}

// PutGolden stores a golden trace as a content-addressed artifact (key =
// SHA-256 of its gob encoding) and returns the key and the bytes newly
// written (0 when already present).
func (c *Cache) PutGolden(g *plasma.Golden) (key string, shipped int64, err error) {
	if c == nil {
		return "", 0, fmt.Errorf("cache: PutGolden needs an open cache")
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(g); err != nil {
		return "", 0, err
	}
	sum := sha256.Sum256(buf.Bytes())
	key = hex.EncodeToString(sum[:])
	shipped, err = c.writeIfAbsent(filepath.Join(c.dir, "goldenship-"+key+".gob"), buf.Bytes())
	if err != nil {
		return "", 0, err
	}
	c.maybeGC(shipped)
	return key, shipped, nil
}

// GetGoldenArtifact loads a golden trace stored with PutGolden, verifying
// the content hash before decoding.
func (c *Cache) GetGoldenArtifact(key string) (*plasma.Golden, error) {
	if c == nil {
		return nil, fmt.Errorf("cache: GetGoldenArtifact needs an open cache")
	}
	path := filepath.Join(c.dir, "goldenship-"+key+".gob")
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cache: golden artifact %s: %w", key, err)
	}
	if sum := sha256.Sum256(data); hex.EncodeToString(sum[:]) != key {
		return nil, fmt.Errorf("cache: golden artifact %s fails its content hash", key)
	}
	var g plasma.Golden
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&g); err != nil {
		return nil, fmt.Errorf("cache: golden artifact %s: %w", key, err)
	}
	c.touch(path)
	return &g, nil
}

// writeIfAbsent writes content at path unless it already exists, returning
// the bytes written (0 on a hit). Content-addressed names make "exists"
// equivalent to "correct", and concurrent writers racing on the same name
// are harmless because writeAtomic renames complete files into place.
func (c *Cache) writeIfAbsent(path string, content []byte) (int64, error) {
	if _, err := os.Stat(path); err == nil {
		c.touch(path)
		return 0, nil
	}
	if err := writeAtomic(path, func(f *os.File) error {
		_, err := f.Write(content)
		return err
	}); err != nil {
		return 0, err
	}
	return int64(len(content)), nil
}
