package cache

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/plasma"
	"repro/internal/synth"
)

func buildProgram(t *testing.T) *asm.Program {
	t.Helper()
	src := `
	ori $2, $0, 0x1234
	ori $3, $0, 0x00ff
	and $4, $2, $3
	sw  $4, 0x100($0)
halt:
	beq $0, $0, halt
	nop
`
	prog, err := asm.Assemble(src, 0)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return prog
}

func TestNilCacheDelegates(t *testing.T) {
	var c *Cache
	cpu, err := c.BuildCPU(synth.NativeLib{})
	if err != nil {
		t.Fatalf("BuildCPU: %v", err)
	}
	if _, err := c.CaptureGolden(cpu, buildProgram(t), 64); err != nil {
		t.Fatalf("CaptureGolden: %v", err)
	}
}

func TestCPURoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := c.BuildCPU(synth.NativeLib{})
	if err != nil {
		t.Fatalf("cold BuildCPU: %v", err)
	}
	warm, err := c.BuildCPU(synth.NativeLib{})
	if err != nil {
		t.Fatalf("warm BuildCPU: %v", err)
	}
	if warm.Netlist == cold.Netlist {
		t.Fatalf("warm build did not come from the cache")
	}
	hc, err := NetlistHash(cold.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := NetlistHash(warm.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	if hc != hw {
		t.Fatalf("cached netlist differs: %s vs %s", hc, hw)
	}
	if !reflect.DeepEqual(cold.PC, warm.PC) || !reflect.DeepEqual(cold.IR, warm.IR) ||
		cold.MemCycle != warm.MemCycle || cold.Busy != warm.Busy {
		t.Fatalf("cached CPU handles differ")
	}
	// The cached core must simulate identically.
	prog := buildProgram(t)
	gc, err := plasma.CaptureGolden(cold, prog, 64)
	if err != nil {
		t.Fatal(err)
	}
	gw, err := plasma.CaptureGolden(warm, prog, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gc.Out, gw.Out) || !reflect.DeepEqual(gc.RData, gw.RData) {
		t.Fatalf("cached CPU executes differently")
	}
}

func TestGoldenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := c.BuildCPU(synth.NativeLib{})
	if err != nil {
		t.Fatal(err)
	}
	prog := buildProgram(t)
	cold, err := c.CaptureGolden(cpu, prog, 64)
	if err != nil {
		t.Fatalf("cold CaptureGolden: %v", err)
	}
	warm, err := c.CaptureGolden(cpu, prog, 64)
	if err != nil {
		t.Fatalf("warm CaptureGolden: %v", err)
	}
	if warm == cold {
		t.Fatalf("warm capture did not come from the cache")
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("cached golden differs from captured golden")
	}

	// A different program or cycle count must miss.
	other, err := asm.Assemble("halt:\n\tbeq $0, $0, halt\n\tnop\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	k1, _ := c.goldenKey(cpu, prog, 64)
	k2, _ := c.goldenKey(cpu, other, 64)
	k3, _ := c.goldenKey(cpu, prog, 65)
	if k1 == k2 || k1 == k3 {
		t.Fatalf("golden keys collide across distinct programs/cycles")
	}
}

func TestCorruptEntryFallsBack(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.BuildCPU(synth.NativeLib{}); err != nil {
		t.Fatal(err)
	}
	// Corrupt every netlist entry; the next load must detect the hash
	// mismatch and rebuild instead of serving the corrupt core.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "netlist-") {
			if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte("netlist bogus\n"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	cpu, err := c.BuildCPU(synth.NativeLib{})
	if err != nil {
		t.Fatalf("rebuild after corruption: %v", err)
	}
	if cpu == nil || cpu.Netlist == nil {
		t.Fatalf("nil CPU after corruption fallback")
	}
}
