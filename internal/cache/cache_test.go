package cache

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/plasma"
	"repro/internal/synth"
)

func buildProgram(t *testing.T) *asm.Program {
	t.Helper()
	src := `
	ori $2, $0, 0x1234
	ori $3, $0, 0x00ff
	and $4, $2, $3
	sw  $4, 0x100($0)
halt:
	beq $0, $0, halt
	nop
`
	prog, err := asm.Assemble(src, 0)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return prog
}

func TestNilCacheDelegates(t *testing.T) {
	var c *Cache
	cpu, err := c.BuildCPU(synth.NativeLib{})
	if err != nil {
		t.Fatalf("BuildCPU: %v", err)
	}
	if _, err := c.CaptureGolden(cpu, buildProgram(t), 64); err != nil {
		t.Fatalf("CaptureGolden: %v", err)
	}
}

func TestCPURoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := c.BuildCPU(synth.NativeLib{})
	if err != nil {
		t.Fatalf("cold BuildCPU: %v", err)
	}
	warm, err := c.BuildCPU(synth.NativeLib{})
	if err != nil {
		t.Fatalf("warm BuildCPU: %v", err)
	}
	if warm.Netlist == cold.Netlist {
		t.Fatalf("warm build did not come from the cache")
	}
	hc, err := NetlistHash(cold.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := NetlistHash(warm.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	if hc != hw {
		t.Fatalf("cached netlist differs: %s vs %s", hc, hw)
	}
	if !reflect.DeepEqual(cold.PC, warm.PC) || !reflect.DeepEqual(cold.IR, warm.IR) ||
		cold.MemCycle != warm.MemCycle || cold.Busy != warm.Busy {
		t.Fatalf("cached CPU handles differ")
	}
	// The cached core must simulate identically.
	prog := buildProgram(t)
	gc, err := plasma.CaptureGolden(cold, prog, 64)
	if err != nil {
		t.Fatal(err)
	}
	gw, err := plasma.CaptureGolden(warm, prog, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gc.OutAddr, gw.OutAddr) || !reflect.DeepEqual(gc.OutWData, gw.OutWData) ||
		!reflect.DeepEqual(gc.OutCtl, gw.OutCtl) || !reflect.DeepEqual(gc.RData, gw.RData) {
		t.Fatalf("cached CPU executes differently")
	}
}

func TestGoldenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := c.BuildCPU(synth.NativeLib{})
	if err != nil {
		t.Fatal(err)
	}
	prog := buildProgram(t)
	cold, err := c.CaptureGolden(cpu, prog, 64)
	if err != nil {
		t.Fatalf("cold CaptureGolden: %v", err)
	}
	warm, err := c.CaptureGolden(cpu, prog, 64)
	if err != nil {
		t.Fatalf("warm CaptureGolden: %v", err)
	}
	if warm == cold {
		t.Fatalf("warm capture did not come from the cache")
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("cached golden differs from captured golden")
	}

	// A different program, cycle count, or checkpoint interval must miss.
	other, err := asm.Assemble("halt:\n\tbeq $0, $0, halt\n\tnop\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	k1, _ := c.goldenKey(cpu, prog, 64, plasma.DefaultCheckpointK)
	k2, _ := c.goldenKey(cpu, other, 64, plasma.DefaultCheckpointK)
	k3, _ := c.goldenKey(cpu, prog, 65, plasma.DefaultCheckpointK)
	k4, _ := c.goldenKey(cpu, prog, 64, 1)
	if k1 == k2 || k1 == k3 || k1 == k4 {
		t.Fatalf("golden keys collide across distinct programs/cycles/intervals")
	}
}

func TestGoldenKIsKeyedAndValidated(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := c.BuildCPU(synth.NativeLib{})
	if err != nil {
		t.Fatal(err)
	}
	prog := buildProgram(t)
	g16, err := c.CaptureGoldenK(cpu, prog, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	g4, err := c.CaptureGoldenK(cpu, prog, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g16.CheckpointK != 16 || g4.CheckpointK != 4 {
		t.Fatalf("cache served a golden with the wrong checkpoint interval: %d, %d",
			g16.CheckpointK, g4.CheckpointK)
	}
	if !reflect.DeepEqual(g16.OutAddr, g4.OutAddr) || !reflect.DeepEqual(g16.OutCtl, g4.OutCtl) {
		t.Fatalf("bus trace differs across checkpoint intervals")
	}
}

func TestGCEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := c.BuildCPU(synth.NativeLib{})
	if err != nil {
		t.Fatal(err)
	}
	prog := buildProgram(t)
	// Populate golden entries at several checkpoint intervals, touching
	// k=1 last so it is the most recently used.
	for _, k := range []int{2, 4, 8, 1} {
		if _, err := c.CaptureGoldenK(cpu, prog, 64, k); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.CaptureGoldenK(cpu, prog, 64, 1); err != nil { // refresh LRU stamp
		t.Fatal(err)
	}
	reclaimed, err := c.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed == 0 {
		t.Fatalf("GC(0) reclaimed nothing from a populated cache")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("GC(0) left %d entries behind", len(ents))
	}
	// A bounded sweep must keep the most recently used entries.
	for _, k := range []int{2, 4, 8, 1} {
		if _, err := c.CaptureGoldenK(cpu, prog, 64, k); err != nil {
			t.Fatal(err)
		}
	}
	key1, err := c.goldenKey(cpu, prog, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	path1 := filepath.Join(dir, "golden-"+key1+".gob")
	info, err := os.Stat(path1)
	if err != nil {
		t.Fatal(err)
	}
	c.touch(path1)
	if _, err := c.GC(info.Size()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path1); err != nil {
		t.Fatalf("GC evicted the most recently used entry: %v", err)
	}
}

func TestSetMaxBytesSweepsAfterStore(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := c.BuildCPU(synth.NativeLib{})
	if err != nil {
		t.Fatal(err)
	}
	c.SetMaxBytes(1) // below any single golden entry
	prog := buildProgram(t)
	if _, err := c.CaptureGoldenK(cpu, prog, 64, 2); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range ents {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	if total > 1 {
		t.Fatalf("cache holds %d bytes after store with a 1-byte bound", total)
	}
}

func TestCorruptEntryFallsBack(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.BuildCPU(synth.NativeLib{}); err != nil {
		t.Fatal(err)
	}
	// Corrupt every netlist entry; the next load must detect the hash
	// mismatch and rebuild instead of serving the corrupt core.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "netlist-") {
			if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte("netlist bogus\n"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	cpu, err := c.BuildCPU(synth.NativeLib{})
	if err != nil {
		t.Fatalf("rebuild after corruption: %v", err)
	}
	if cpu == nil || cpu.Netlist == nil {
		t.Fatalf("nil CPU after corruption fallback")
	}
}
