package cache

import (
	"testing"

	"repro/internal/plasma"
	"repro/internal/synth"
)

// TestVariantCacheIsolation builds every core-ladder variant into one cache
// directory and asserts no cross-contamination: each warm load returns the
// variant it was asked for, with that variant's netlist hash and identity,
// and golden traces captured for different variants get distinct keys.
func TestVariantCacheIsolation(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	lib := synth.NativeLib{}

	type built struct {
		cold, warm *plasma.CPU
		hash       string
	}
	cores := map[string]*built{}
	for _, v := range plasma.Variants() {
		cold, err := c.BuildVariantCPU(v.Name(), lib)
		if err != nil {
			t.Fatalf("cold %s: %v", v.Name(), err)
		}
		h, err := NetlistHash(cold.Netlist)
		if err != nil {
			t.Fatal(err)
		}
		cores[v.Name()] = &built{cold: cold, hash: h}
	}
	for _, v := range plasma.Variants() {
		warm, err := c.BuildVariantCPU(v.Name(), lib)
		if err != nil {
			t.Fatalf("warm %s: %v", v.Name(), err)
		}
		b := cores[v.Name()]
		if warm.Netlist == b.cold.Netlist {
			t.Fatalf("%s: warm build did not come from the cache", v.Name())
		}
		if warm.Variant != v.Name() {
			t.Fatalf("%s: warm load has variant %q", v.Name(), warm.Variant)
		}
		h, err := NetlistHash(warm.Netlist)
		if err != nil {
			t.Fatal(err)
		}
		if h != b.hash {
			t.Fatalf("%s: warm netlist hash %s != cold %s", v.Name(), h, b.hash)
		}
		b.warm = warm
	}

	// All three variants have pairwise-distinct netlists (and hence hashes).
	seen := map[string]string{}
	for name, b := range cores {
		if prev, dup := seen[b.hash]; dup {
			t.Fatalf("variants %s and %s share a netlist hash", prev, name)
		}
		seen[b.hash] = name
	}

	// Golden keys must not alias across variants even for the same program
	// and cycle count.
	prog := buildProgram(t)
	keys := map[string]string{}
	for name, b := range cores {
		key, err := c.goldenKey(b.warm, prog, 64, plasma.DefaultCheckpointK)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := keys[key]; dup {
			t.Fatalf("golden key collides between %s and %s", prev, name)
		}
		keys[key] = name
	}
}

// TestVariantCPUFileNames pins the index-file naming: one file per
// (variant, library) pair, so two variants built with the same library
// cannot overwrite each other's index.
func TestVariantCPUFileNames(t *testing.T) {
	lib := synth.NativeLib{}
	names := map[string]bool{}
	for _, v := range plasma.VariantNames() {
		f := cpuFile(v, lib)
		if names[f] {
			t.Fatalf("duplicate index file name %s", f)
		}
		names[f] = true
	}
}

// TestHaltCyclesCached measures a program's gate-level halt cycle per
// variant, and asserts the warm path returns the identical measurement.
func TestHaltCyclesCached(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	lib := synth.NativeLib{}
	prog := buildProgram(t)
	got := map[string]uint64{}
	for _, v := range plasma.VariantNames() {
		cpu, err := c.BuildVariantCPU(v, lib)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := c.HaltCycles(cpu, prog, 4096)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		warm, err := c.HaltCycles(cpu, prog, 4096)
		if err != nil {
			t.Fatalf("%s warm: %v", v, err)
		}
		if cold != warm {
			t.Fatalf("%s: warm HaltCycles %d != cold %d", v, warm, cold)
		}
		if cold == 0 || cold > 4096 {
			t.Fatalf("%s: implausible halt cycle %d", v, cold)
		}
		got[v] = cold
	}
	t.Logf("halt cycles per variant: %v", got)
}
