package cache

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Size-bounded garbage collection. The content-addressed store otherwise
// grows without bound: every distinct (netlist, program, cycles, k) tuple
// leaves a golden artifact behind, and format-version bumps orphan whole
// generations of entries. SetMaxBytes arms an LRU sweep — by access time,
// where access is approximated by the file modification time, refreshed on
// every cache hit (touch) — that runs after each store and deletes the
// least recently used entries until the directory is back under budget.

// SetMaxBytes bounds the total size of the cache directory: stores
// trigger amortized sweeps (see maybeGC) that delete least-recently-used
// entries until the total is at or under maxBytes. 0 (the default)
// disables collection. Entries of every kind are eligible — deleting a
// netlist or CPU index entry is safe because a miss just rebuilds it.
func (c *Cache) SetMaxBytes(maxBytes int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.maxBytes = maxBytes
	c.mu.Unlock()
}

// touch refreshes an entry's LRU position on a cache hit. Best-effort: a
// failure (e.g. a concurrent GC already deleted the file) costs at most an
// early eviction.
func (c *Cache) touch(path string) {
	now := time.Now()
	_ = os.Chtimes(path, now, now)
}

// gcSweepFraction amortizes sweeps: a sweep walks the whole directory
// (ReadDir + a stat per entry), so running one after every store makes a
// burst of N small Puts cost N directory walks. Instead maybeGC only
// sweeps once the bytes stored since the last sweep reach
// maxBytes/gcSweepFraction — the cache can overshoot its bound by at most
// that fraction between sweeps.
const gcSweepFraction = 8

// maybeGC records wrote bytes stored and runs a collection sweep if a
// size bound is armed, enough has been written since the last sweep to
// justify one, and no sweep is already running. The grading server stores
// artifacts from many goroutines concurrently; without the in-flight
// check, every goroutine crossing the threshold would launch its own
// directory walk, and the overlapping sweeps — each working from a
// directory listing the others are concurrently deleting from — would
// together evict far past the LRU budget. One sweep runs, the rest skip;
// their stored bytes re-arm the next sweep as usual.
func (c *Cache) maybeGC(wrote int64) {
	c.mu.Lock()
	max := c.maxBytes
	c.putBytes += wrote
	sweep := max > 0 && c.putBytes >= max/gcSweepFraction && !c.sweeping.Load()
	if sweep {
		c.putBytes = 0
	}
	c.mu.Unlock()
	if sweep {
		_, _ = c.GC(max)
	}
}

// osRemove is swapped out by tests to exercise the GC's handling of
// entries that vanish between the directory scan and the delete.
var osRemove = os.Remove

// GC deletes least-recently-used cache entries until the directory's total
// size is at or under maxBytes, returning the number of bytes reclaimed.
// In-flight temp files (writeAtomic) and pinned entries (Pin, held by
// replication pushes and distributed grading runs mid-flight) are never
// touched — a pinned artifact stays resident even when the sweep cannot
// otherwise reach its budget. Sweeps are
// serialized: a GC call that finds another in progress waits its turn
// (explicit calls must not silently do nothing), while the amortized
// maybeGC path skips instead of queueing.
func (c *Cache) GC(maxBytes int64) (int64, error) {
	if c == nil {
		return 0, nil
	}
	c.gcMu.Lock()
	defer c.gcMu.Unlock()
	c.sweeping.Store(true)
	defer c.sweeping.Store(false)
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return 0, err
	}
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var entries []entry
	var total int64
	for _, e := range ents {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // raced with a concurrent delete
		}
		entries = append(entries, entry{
			path:  filepath.Join(c.dir, e.Name()),
			size:  info.Size(),
			mtime: info.ModTime(),
		})
		total += info.Size()
	}
	if total <= maxBytes {
		return 0, nil
	}
	sort.Slice(entries, func(a, b int) bool {
		return entries[a].mtime.Before(entries[b].mtime)
	})
	var reclaimed int64
	for _, e := range entries {
		if total <= maxBytes {
			break
		}
		if c.pinned(filepath.Base(e.path)) {
			// An in-flight artifact: a replication push or a distributed
			// run is still reading it. Evicting it now would fail that
			// transfer mid-stream; leave it and reclaim elsewhere.
			continue
		}
		if err := osRemove(e.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			continue
		}
		// An entry already gone (removed by a concurrent GC or an external
		// cleaner) still no longer occupies its bytes; treating ENOENT as a
		// failure would push the sweep on to evict live entries it should
		// have kept.
		total -= e.size
		reclaimed += e.size
	}
	return reclaimed, nil
}
