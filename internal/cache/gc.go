package cache

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Size-bounded garbage collection. The content-addressed store otherwise
// grows without bound: every distinct (netlist, program, cycles, k) tuple
// leaves a golden artifact behind, and format-version bumps orphan whole
// generations of entries. SetMaxBytes arms an LRU sweep — by access time,
// where access is approximated by the file modification time, refreshed on
// every cache hit (touch) — that runs after each store and deletes the
// least recently used entries until the directory is back under budget.

// SetMaxBytes bounds the total size of the cache directory: after every
// store, least-recently-used entries are deleted until the total is at or
// under maxBytes. 0 (the default) disables collection. Entries of every
// kind are eligible — deleting a netlist or CPU index entry is safe
// because a miss just rebuilds it.
func (c *Cache) SetMaxBytes(maxBytes int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.maxBytes = maxBytes
	c.mu.Unlock()
}

// touch refreshes an entry's LRU position on a cache hit. Best-effort: a
// failure (e.g. a concurrent GC already deleted the file) costs at most an
// early eviction.
func (c *Cache) touch(path string) {
	now := time.Now()
	_ = os.Chtimes(path, now, now)
}

// maybeGC runs a collection sweep if a size bound is armed.
func (c *Cache) maybeGC() {
	c.mu.Lock()
	max := c.maxBytes
	c.mu.Unlock()
	if max <= 0 {
		return
	}
	_, _ = c.GC(max)
}

// GC deletes least-recently-used cache entries until the directory's total
// size is at or under maxBytes, returning the number of bytes reclaimed.
// In-flight temp files (writeAtomic) are never touched.
func (c *Cache) GC(maxBytes int64) (int64, error) {
	if c == nil {
		return 0, nil
	}
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return 0, err
	}
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var entries []entry
	var total int64
	for _, e := range ents {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // raced with a concurrent delete
		}
		entries = append(entries, entry{
			path:  filepath.Join(c.dir, e.Name()),
			size:  info.Size(),
			mtime: info.ModTime(),
		})
		total += info.Size()
	}
	if total <= maxBytes {
		return 0, nil
	}
	sort.Slice(entries, func(a, b int) bool {
		return entries[a].mtime.Before(entries[b].mtime)
	})
	var reclaimed int64
	for _, e := range entries {
		if total <= maxBytes {
			break
		}
		if err := os.Remove(e.path); err != nil {
			continue
		}
		total -= e.size
		reclaimed += e.size
	}
	return reclaimed, nil
}
