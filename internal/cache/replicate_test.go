package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/plasma"
	"repro/internal/synth"
)

// Replicating a CPU and a golden trace byte-for-byte into a second cache
// must reproduce artifacts the normal Get paths accept, and a repeat push
// of the same content must cost zero bytes.
func TestArtifactReplicationRoundTrip(t *testing.T) {
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := src.BuildCPU(synth.NativeLib{})
	if err != nil {
		t.Fatal(err)
	}
	cpuKey, _, err := src.PutCPU(cpu)
	if err != nil {
		t.Fatal(err)
	}
	golden := &plasma.Golden{Cycles: 7, ProgWords: []uint32{1, 2, 3, 4}}
	goldenKey, _, err := src.PutGolden(golden)
	if err != nil {
		t.Fatal(err)
	}

	for _, a := range []struct {
		kind ArtifactKind
		key  string
	}{{KindNetlist, cpuKey}, {KindCPU, cpuKey}, {KindGolden, goldenKey}} {
		if dst.HasArtifact(a.kind, a.key) {
			t.Fatalf("empty destination claims to have %s %s", a.kind, a.key)
		}
		data, err := src.ReadArtifact(a.kind, a.key)
		if err != nil {
			t.Fatalf("ReadArtifact(%s): %v", a.kind, err)
		}
		n, err := dst.PutArtifactBytes(a.kind, a.key, data)
		if err != nil {
			t.Fatalf("PutArtifactBytes(%s): %v", a.kind, err)
		}
		if n != int64(len(data)) {
			t.Fatalf("first push of %s wrote %d bytes, want %d", a.kind, n, len(data))
		}
		// Idempotence: re-pushing identical content ships zero bytes.
		n, err = dst.PutArtifactBytes(a.kind, a.key, data)
		if err != nil {
			t.Fatal(err)
		}
		if n != 0 {
			t.Fatalf("re-push of %s wrote %d bytes, want 0", a.kind, n)
		}
		if !dst.HasArtifact(a.kind, a.key) {
			t.Fatalf("destination missing %s %s after push", a.kind, a.key)
		}
	}

	got, err := dst.GetCPU(cpuKey)
	if err != nil {
		t.Fatalf("GetCPU on replicated cache: %v", err)
	}
	hGot, err := NetlistHash(got.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	if hGot != cpuKey {
		t.Fatalf("replicated CPU hashes to %s, want %s", hGot, cpuKey)
	}
	g, err := dst.GetGoldenArtifact(goldenKey)
	if err != nil {
		t.Fatalf("GetGoldenArtifact on replicated cache: %v", err)
	}
	if !reflect.DeepEqual(g, golden) {
		t.Fatalf("replicated golden differs from the original")
	}
}

// PutArtifactBytes must refuse bytes that fail their content address and
// must heal an existing corrupt entry when pushed the good bytes — that
// overwrite is what lets a coordinator's forced re-push repair a worker
// cache instead of failing on it forever.
func TestPutArtifactBytesVerifiesAndHeals(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	good := []byte("golden payload bytes")
	sum := sha256.Sum256(good)
	key := hex.EncodeToString(sum[:])

	if _, err := c.PutArtifactBytes(KindGolden, key, []byte("tampered")); err == nil {
		t.Fatalf("PutArtifactBytes accepted bytes that fail their content hash")
	}
	if c.HasArtifact(KindGolden, key) {
		t.Fatalf("rejected push left an entry behind")
	}

	// Plant a corrupt entry under the right name, then push the good bytes.
	name, err := artifactName(KindGolden, key)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(c.dir, name)
	if err := os.WriteFile(path, []byte("rotted on disk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadArtifact(KindGolden, key); err == nil {
		t.Fatalf("ReadArtifact served a corrupt entry")
	}
	n, err := c.PutArtifactBytes(KindGolden, key, good)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(good)) {
		t.Fatalf("healing push wrote %d bytes, want %d", n, len(good))
	}
	data, err := c.ReadArtifact(KindGolden, key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, good) {
		t.Fatalf("healed entry holds the wrong bytes")
	}
}

// Artifact keys arrive over the wire and become file names; anything that
// is not plain lowercase hex must be refused before touching the
// filesystem.
func TestArtifactKeyValidation(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "../../etc/passwd", "ABCDEF", "deadbeef/x", "zz"} {
		if c.HasArtifact(KindGolden, key) {
			t.Fatalf("HasArtifact accepted key %q", key)
		}
		if _, err := c.ReadArtifact(KindGolden, key); err == nil {
			t.Fatalf("ReadArtifact accepted key %q", key)
		}
		if _, err := c.PutArtifactBytes(KindGolden, key, nil); err == nil {
			t.Fatalf("PutArtifactBytes accepted key %q", key)
		}
	}
	if _, err := c.PutArtifactBytes(ArtifactKind("plan"), "ab", []byte{}); err == nil {
		t.Fatalf("PutArtifactBytes accepted an unknown artifact kind")
	}
}

// A pinned artifact must survive an LRU sweep even when it is the oldest
// entry and the sweep cannot reach its budget without it; the osRemove
// hook asserts the sweep never even attempts the delete. Pins are
// refcounted, and releasing the last reference makes the entry ordinary
// LRU prey again.
func TestGCSkipsPinnedEntries(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := hex.EncodeToString(bytes.Repeat([]byte{0xaa}, 32))
	name, err := artifactName(KindGolden, key)
	if err != nil {
		t.Fatal(err)
	}
	pinnedPath := plantEntry(t, dir, name, 10_000, 2*time.Hour) // oldest: first in LRU order
	victim := plantEntry(t, dir, "golden-victim.gob", 10_000, time.Hour)
	fresh := plantEntry(t, dir, "golden-fresh.gob", 10_000, time.Minute)

	var attempted []string
	defer func() { osRemove = os.Remove }()
	osRemove = func(path string) error {
		attempted = append(attempted, path)
		return os.Remove(path)
	}

	c.Pin(KindGolden, key)
	c.Pin(KindGolden, key) // second reference: an overlapping pinner

	// 30KB on disk, 15KB budget: without the pin the sweep would take the
	// two oldest entries; with it, it must take the two unpinned ones.
	if _, err := c.GC(15_000); err != nil {
		t.Fatal(err)
	}
	for _, p := range attempted {
		if p == pinnedPath {
			t.Fatalf("GC attempted to remove a pinned artifact")
		}
	}
	if _, err := os.Stat(pinnedPath); err != nil {
		t.Fatalf("pinned artifact evicted mid-flight: %v", err)
	}
	if _, err := os.Stat(victim); !os.IsNotExist(err) {
		t.Fatalf("sweep kept an unpinned older entry over its budget (stat err: %v)", err)
	}
	_ = fresh

	// One Unpin leaves the other reference holding the pin.
	c.Unpin(KindGolden, key)
	if _, err := c.GC(1_000); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(pinnedPath); err != nil {
		t.Fatalf("artifact evicted while still holding a pin reference: %v", err)
	}

	// Releasing the last reference returns the entry to the LRU pool.
	c.Unpin(KindGolden, key)
	if _, err := c.GC(1_000); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(pinnedPath); !os.IsNotExist(err) {
		t.Fatalf("unpinned artifact survived a sweep below its size (stat err: %v)", err)
	}
}
