// Package cache is an on-disk, content-addressed store for the two
// expensive artifacts of the self-test flow: synthesized netlists and
// captured golden traces. Netlists are stored under the SHA-256 of their
// canonical text serialization (gate.WriteNetlist); golden traces are
// keyed by the netlist hash plus the program image and cycle count, so a
// cache entry can never be served for a different core or program. A nil
// *Cache is valid and simply recomputes everything.
package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/asm"
	"repro/internal/gate"
	"repro/internal/plasma"
	"repro/internal/synth"
)

// Cache is a directory of content-addressed artifacts. The zero value and
// the nil pointer both behave as "no cache".
type Cache struct {
	dir string

	mu       sync.Mutex
	hashes   map[*gate.Netlist]string // memoized netlist content hashes
	pins     map[string]int           // pinned entry base names (refcounted), exempt from GC
	maxBytes int64                    // LRU size bound; 0 disables GC
	putBytes int64                    // bytes stored since the last GC sweep

	// gcMu serializes GC sweeps; sweeping lets maybeGC observe an
	// in-flight sweep without blocking on it (concurrent stores skip the
	// sweep rather than pile up behind gcMu).
	gcMu     sync.Mutex
	sweeping atomic.Bool
}

// Open creates (if needed) and opens a cache directory.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Cache{dir: dir, hashes: make(map[*gate.Netlist]string), pins: make(map[string]int)}, nil
}

// NetlistHash returns the hex SHA-256 of the netlist's canonical text
// serialization: the content address of the netlist.
func NetlistHash(n *gate.Netlist) (string, error) {
	h := sha256.New()
	if err := gate.WriteNetlist(h, n); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func (c *Cache) netlistHash(n *gate.Netlist) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if h, ok := c.hashes[n]; ok {
		return h, nil
	}
	h, err := NetlistHash(n)
	if err != nil {
		return "", err
	}
	c.hashes[n] = h
	return h, nil
}

// cpuAux is the gob sidecar that rebuilds a plasma.CPU around a cached
// netlist: the content address of the netlist plus the debug/co-simulation
// handles that plasma synthesis assigns, and the variant identity the
// entry was built for (verified on load so an index file can never serve
// a different micro-architecture).
type cpuAux struct {
	NetHash        string
	Variant        string
	PC, IR, Hi, Lo synth.Bus
	MemCycle, Busy gate.Sig
}

// cpuFile maps a (variant, library) pair to a filesystem-safe index file
// name. The variant qualifier keeps the core ladder's entries from
// colliding when several variants share one cache directory.
func cpuFile(variant string, lib synth.Library) string {
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		}
		return '_'
	}, variant+"-"+lib.Name())
	return "cpu-" + name + ".gob"
}

// BuildCPU is BuildVariantCPU for the base 3-stage core.
func (c *Cache) BuildCPU(lib synth.Library) (*plasma.CPU, error) {
	return c.BuildVariantCPU(plasma.VariantBase, lib)
}

// BuildVariantCPU returns the synthesized CPU for a (variant, library)
// pair, reading the netlist and its synthesis handles from the cache when
// present and populating the cache after a cold build. The cached netlist
// text is re-hashed and re-validated on load, and the recorded variant
// identity is checked, so a corrupted or aliased entry falls back to a
// fresh build instead of producing a wrong core.
func (c *Cache) BuildVariantCPU(variant string, lib synth.Library) (*plasma.CPU, error) {
	if c == nil {
		return plasma.BuildVariant(variant, lib)
	}
	if cpu := c.loadCPU(variant, lib); cpu != nil {
		return cpu, nil
	}
	cpu, err := plasma.BuildVariant(variant, lib)
	if err != nil {
		return nil, err
	}
	if err := c.storeCPU(lib, cpu); err != nil {
		return nil, err
	}
	return cpu, nil
}

// loadCPU attempts a cache hit; any failure (missing entry, hash mismatch,
// variant mismatch, parse error) reads as a miss.
func (c *Cache) loadCPU(variant string, lib synth.Library) *plasma.CPU {
	f, err := os.Open(filepath.Join(c.dir, cpuFile(variant, lib)))
	if err != nil {
		return nil
	}
	defer f.Close()
	var aux cpuAux
	if err := gob.NewDecoder(f).Decode(&aux); err != nil {
		return nil
	}
	if aux.Variant != variant {
		return nil
	}
	text, err := os.ReadFile(filepath.Join(c.dir, "netlist-"+aux.NetHash+".txt"))
	if err != nil {
		return nil
	}
	if sum := sha256.Sum256(text); hex.EncodeToString(sum[:]) != aux.NetHash {
		return nil
	}
	n, err := gate.ReadNetlist(strings.NewReader(string(text)))
	if err != nil {
		return nil
	}
	c.mu.Lock()
	c.hashes[n] = aux.NetHash
	c.mu.Unlock()
	return &plasma.CPU{
		Netlist:  n,
		Lib:      lib,
		Variant:  aux.Variant,
		PC:       aux.PC,
		IR:       aux.IR,
		Hi:       aux.Hi,
		Lo:       aux.Lo,
		MemCycle: aux.MemCycle,
		Busy:     aux.Busy,
	}
}

func (c *Cache) storeCPU(lib synth.Library, cpu *plasma.CPU) error {
	var sb strings.Builder
	if err := gate.WriteNetlist(&sb, cpu.Netlist); err != nil {
		return err
	}
	text := sb.String()
	sum := sha256.Sum256([]byte(text))
	hash := hex.EncodeToString(sum[:])
	c.mu.Lock()
	c.hashes[cpu.Netlist] = hash
	c.mu.Unlock()
	if err := writeAtomic(filepath.Join(c.dir, "netlist-"+hash+".txt"), func(f *os.File) error {
		_, err := f.WriteString(text)
		return err
	}); err != nil {
		return err
	}
	aux := cpuAux{
		NetHash:  hash,
		Variant:  cpu.Variant,
		PC:       cpu.PC,
		IR:       cpu.IR,
		Hi:       cpu.Hi,
		Lo:       cpu.Lo,
		MemCycle: cpu.MemCycle,
		Busy:     cpu.Busy,
	}
	return writeAtomic(filepath.Join(c.dir, cpuFile(cpu.Variant, lib)), func(f *os.File) error {
		return gob.NewEncoder(f).Encode(&aux)
	})
}

// goldenFormat is the golden-artifact format version, hashed into every
// golden key. Bumping it orphans all previously cached goldens (the GC
// reaps them) instead of letting gob decode an old layout into the new
// struct with silently missing fields. Version 2 is the sparse
// delta-encoded checkpoint format; version 3 run-length encodes the
// read-data and primary-output trace streams; version 4 records the
// program image on the golden (self-describing traces for the grading
// server).
const goldenFormat = 4

// goldenKey derives the content address of a golden trace from everything
// that determines it: the artifact format version, the netlist, the core
// variant, the program image (origin + words), the cycle count, and the
// checkpoint interval. The variant is in the key explicitly (not only via
// the netlist name embedded in the netlist hash) so golden entries stay
// distinct even if two variants ever serialize to identical netlist text.
func (c *Cache) goldenKey(cpu *plasma.CPU, prog *asm.Program, cycles, k int) (string, error) {
	netHash, err := c.netlistHash(cpu.Netlist)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], goldenFormat)
	h.Write(buf[:])
	h.Write([]byte(netHash))
	h.Write([]byte(cpu.Variant))
	binary.LittleEndian.PutUint32(buf[:4], prog.Origin)
	h.Write(buf[:4])
	binary.LittleEndian.PutUint64(buf[:], uint64(cycles))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(k))
	h.Write(buf[:])
	for _, w := range prog.Words {
		binary.LittleEndian.PutUint32(buf[:4], w)
		h.Write(buf[:4])
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// CaptureGolden is CaptureGoldenK at the default checkpoint interval.
func (c *Cache) CaptureGolden(cpu *plasma.CPU, prog *asm.Program, cycles int) (*plasma.Golden, error) {
	return c.CaptureGoldenK(cpu, prog, cycles, plasma.DefaultCheckpointK)
}

// CaptureGoldenK is plasma.CaptureGoldenK behind the cache: a hit
// deserializes the recorded trace, a miss captures it and stores it. The
// checkpoint interval is part of the artifact key, so traces captured at
// different intervals never alias.
func (c *Cache) CaptureGoldenK(cpu *plasma.CPU, prog *asm.Program, cycles, k int) (*plasma.Golden, error) {
	if c == nil {
		return plasma.CaptureGoldenK(cpu, prog, cycles, k)
	}
	key, err := c.goldenKey(cpu, prog, cycles, k)
	if err != nil {
		return nil, err
	}
	path := filepath.Join(c.dir, "golden-"+key+".gob")
	if f, err := os.Open(path); err == nil {
		var g plasma.Golden
		err := gob.NewDecoder(f).Decode(&g)
		f.Close()
		if err == nil && g.CheckpointK == k {
			c.touch(path)
			return &g, nil
		}
		// Corrupt entry: fall through to recapture and overwrite.
	}
	g, err := plasma.CaptureGoldenK(cpu, prog, cycles, k)
	if err != nil {
		return nil, err
	}
	if err := writeAtomic(path, func(f *os.File) error {
		return gob.NewEncoder(f).Encode(g)
	}); err != nil {
		return nil, err
	}
	var wrote int64
	if info, err := os.Stat(path); err == nil {
		wrote = info.Size()
	}
	c.maybeGC(wrote)
	return g, nil
}

// HaltCycles measures the gate-level cycle count at which prog reaches its
// halt loop on cpu, caching the measurement by netlist + variant + program.
// The base core finishes a program in ISS cycles + a fixed pipeline offset,
// but that shortcut does not transfer to other variants (fwd5 inserts
// branch bubbles, for example), so golden captures for the core ladder are
// sized by this gate-level measurement instead. Errors if the program does
// not halt within maxCycles.
func (c *Cache) HaltCycles(cpu *plasma.CPU, prog *asm.Program, maxCycles uint64) (uint64, error) {
	measure := func() (uint64, error) {
		m, halted, err := plasma.RunProgram(cpu, prog, maxCycles, false)
		if err != nil {
			return 0, err
		}
		if !halted {
			return 0, fmt.Errorf("cache: program did not halt on %s within %d cycles", cpu.Variant, maxCycles)
		}
		return m.Cycle, nil
	}
	if c == nil {
		return measure()
	}
	netHash, err := c.netlistHash(cpu.Netlist)
	if err != nil {
		return 0, err
	}
	h := sha256.New()
	h.Write([]byte("halt-cycles\x00"))
	h.Write([]byte(netHash))
	h.Write([]byte(cpu.Variant))
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[:4], prog.Origin)
	h.Write(buf[:4])
	for _, w := range prog.Words {
		binary.LittleEndian.PutUint32(buf[:4], w)
		h.Write(buf[:4])
	}
	path := filepath.Join(c.dir, "cycles-"+hex.EncodeToString(h.Sum(nil))+".gob")
	if f, err := os.Open(path); err == nil {
		var n uint64
		err := gob.NewDecoder(f).Decode(&n)
		f.Close()
		if err == nil && n > 0 && n <= maxCycles {
			c.touch(path)
			return n, nil
		}
	}
	n, err := measure()
	if err != nil {
		return 0, err
	}
	if err := writeAtomic(path, func(f *os.File) error {
		return gob.NewEncoder(f).Encode(n)
	}); err != nil {
		return 0, err
	}
	return n, nil
}

// writeAtomic writes through a temp file + rename so concurrent processes
// never observe a partially written cache entry.
func writeAtomic(path string, fill func(*os.File) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := fill(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
