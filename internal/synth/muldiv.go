package synth

import "repro/internal/gate"

// MulDivBusyCycles is the number of cycles the multiplier/divider reports
// busy after a start: 32 iteration cycles plus one sign-fixup cycle.
const MulDivBusyCycles = 33

// MulDivRef is the software reference for the sequential multiply/divide
// unit, including its (architecturally undefined in MIPS I) divide-by-zero
// behaviour, which falls out of the restoring-division hardware:
// quotient all-ones (sign-fixed), remainder = dividend.
func MulDivRef(a, b uint32, isDiv, isSigned bool) (hi, lo uint32) {
	if !isDiv {
		if isSigned {
			p := int64(int32(a)) * int64(int32(b))
			return uint32(uint64(p) >> 32), uint32(uint64(p))
		}
		p := uint64(a) * uint64(b)
		return uint32(p >> 32), uint32(p)
	}
	if b == 0 {
		lo = 0xFFFFFFFF // unsigned all-ones quotient
		if isSigned && int32(a) < 0 {
			lo = 1 // sign fixup of all-ones quotient
		}
		return a, lo
	}
	if isSigned {
		if a == 0x80000000 && b == 0xFFFFFFFF {
			// Overflow case: sign-magnitude hardware yields INT_MIN, 0.
			return 0, 0x80000000
		}
		q := int32(a) / int32(b)
		r := int32(a) % int32(b)
		return uint32(r), uint32(q)
	}
	return a % b, a / b
}

// MulDivUnit is the bundle of outputs from the MulDiv generator.
type MulDivUnit struct {
	Hi, Lo Bus
	Busy   gate.Sig
}

// MulDiv builds the sequential 32-cycle multiplier/divider with HI/LO
// result registers. The unit starts an operation when start is high and it
// is idle; isDiv selects division (restoring), isSigned selects
// sign-magnitude pre/post negation. setHi/setLo implement MTHI/MTLO by
// loading register a directly. Busy is high from the cycle after start
// until results are valid (MulDivBusyCycles cycles).
func (c *Ctx) MulDiv(a, d Bus, start, isDiv, isSigned, setHi, setLo gate.Sig) MulDivUnit {
	if len(a) != 32 || len(d) != 32 {
		panic("synth: muldiv wants 32-bit operands")
	}
	b := c.B

	busy := b.DFFPlaceholder()
	cnt := c.RegBusPlaceholder(6)
	hi := c.RegBusPlaceholder(32)
	lo := c.RegBusPlaceholder(32)
	bb := c.RegBusPlaceholder(32) // held second operand (multiplicand/divisor)
	negLo := b.DFFPlaceholder()
	negHi := b.DFFPlaceholder()
	isDivR := b.DFFPlaceholder()

	startNow := c.And(start, c.Not(busy))
	cntNotZero := c.OrN(cnt...)
	iterStep := c.And(busy, cntNotZero)
	fixupStep := c.And(busy, c.Not(cntNotZero))

	// Operand load: absolute values and result-sign flags.
	signA, signD := a[31], d[31]
	negA := c.And(isSigned, signA)
	negD := c.And(isSigned, signD)
	absA := c.CondNegate(a, negA)
	absD := c.CondNegate(d, negD)
	negLoLoad := c.And(isSigned, c.Xor(signA, signD))
	// Multiplication negates the whole 64-bit product; division negates the
	// remainder to the dividend's sign.
	negHiLoad := c.Mux(negLoLoad, negA, isDiv)

	// Shared 33-bit adder/subtractor for both iteration kinds.
	// Division operand: {HI,LO} shifted left by one.
	divShift := make(Bus, 33)
	divShift[0] = lo[31]
	for i := 1; i < 33; i++ {
		divShift[i] = hi[i-1]
	}
	mulA := c.ZeroExtend(hi, 33)
	in1 := c.MuxBus(mulA, divShift, isDivR)
	maskedB := c.AndBus(bb, c.Repeat(lo[0], 32))
	in2 := c.MuxBus(c.ZeroExtend(maskedB, 33), c.ZeroExtend(bb, 33), isDivR)
	t, cout := c.AddSub(in1, in2, isDivR)
	noBorrow := cout // division only: trial subtraction succeeded

	// Multiply step: shift {t, LO} right by one.
	mulHi := Bus(t[1:33])
	mulLo := make(Bus, 32)
	for i := 0; i < 31; i++ {
		mulLo[i] = lo[i+1]
	}
	mulLo[31] = t[0]

	// Divide step: keep trial result on success, shifted value otherwise;
	// shift the quotient bit into LO.
	divHi := c.MuxBus(Bus(divShift[0:32]), Bus(t[0:32]), noBorrow)
	divLo := make(Bus, 32)
	divLo[0] = noBorrow
	for i := 1; i < 32; i++ {
		divLo[i] = lo[i-1]
	}

	iterHi := c.MuxBus(mulHi, divHi, isDivR)
	iterLo := c.MuxBus(mulLo, divLo, isDivR)

	// Fixup (sign restoration) values.
	fixLo := c.CondNegate(lo, negLo)
	loZero := c.IsZero(lo)
	cinHi := c.And(negHi, c.Or(isDivR, loZero))
	fixHiX := make(Bus, 32)
	for i := range fixHiX {
		fixHiX[i] = c.Xor(hi[i], negHi)
	}
	fixHi, _ := c.Incrementer(fixHiX, cinHi)

	// Register next-state networks (later muxes take priority).
	zero := c.Const(0, 32)
	hiN := c.MuxBus(hi, iterHi, iterStep)
	hiN = c.MuxBus(hiN, fixHi, fixupStep)
	hiN = c.MuxBus(hiN, zero, startNow)
	hiN = c.MuxBus(hiN, a, setHi)
	c.ConnectRegBus(hi, hiN)

	loN := c.MuxBus(lo, iterLo, iterStep)
	loN = c.MuxBus(loN, fixLo, fixupStep)
	loN = c.MuxBus(loN, absA, startNow)
	loN = c.MuxBus(loN, a, setLo)
	c.ConnectRegBus(lo, loN)

	c.ConnectRegBus(bb, c.MuxBus(bb, absD, startNow))

	cntN := c.MuxBus(cnt, c.Decrementer(cnt), iterStep)
	cntN = c.MuxBus(cntN, c.Const(32, 6), startNow)
	c.ConnectRegBus(cnt, cntN)

	b.ConnectD(busy, c.Or(startNow, iterStep))
	b.ConnectD(negLo, c.Mux(negLo, negLoLoad, startNow))
	b.ConnectD(negHi, c.Mux(negHi, negHiLoad, startNow))
	b.ConnectD(isDivR, c.Mux(isDivR, isDiv, startNow))

	return MulDivUnit{Hi: hi, Lo: lo, Busy: busy}
}
