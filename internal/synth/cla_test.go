package synth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gate"
)

func TestCLAAdderExhaustive8Bit(t *testing.T) {
	forEachLib(t, func(t *testing.T, lib Library) {
		c := NewCtx("cla8", lib)
		a := c.B.InputBus("a", 8)
		d := c.B.InputBus("b", 8)
		cin := c.B.Input("cin")
		sum, cout := c.CLAAdder(Bus(a), Bus(d), cin)
		c.B.OutputBus("sum", sum)
		c.B.Output("cout", cout)
		h := newHarness(t, c)
		for x := uint64(0); x < 256; x += 3 {
			for y := uint64(0); y < 256; y += 5 {
				for ci := uint64(0); ci < 2; ci++ {
					h.set("a", x)
					h.set("b", y)
					h.set("cin", ci)
					h.eval()
					full := x + y + ci
					if got := h.get("sum"); got != full&255 {
						t.Fatalf("%d+%d+%d: sum=%d want %d", x, y, ci, got, full&255)
					}
					if got := h.get("cout"); got != full>>8 {
						t.Fatalf("%d+%d+%d: cout=%d want %d", x, y, ci, got, full>>8)
					}
				}
			}
		}
	})
}

func TestCLAAdder32Random(t *testing.T) {
	c := NewCtx("cla32", NativeLib{})
	a := c.B.InputBus("a", 32)
	d := c.B.InputBus("b", 32)
	sub := c.B.Input("sub")
	sum, cout := c.CLAAddSub(Bus(a), Bus(d), sub)
	c.B.OutputBus("sum", sum)
	c.B.Output("cout", cout)
	h := newHarness(t, c)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 500; i++ {
		x, y := rng.Uint32(), rng.Uint32()
		s := uint64(i & 1)
		h.set("a", uint64(x))
		h.set("b", uint64(y))
		h.set("sub", s)
		h.eval()
		var want uint32
		var wantC uint64
		if s == 0 {
			want = x + y
			wantC = (uint64(x) + uint64(y)) >> 32
		} else {
			want = x - y
			if x >= y {
				wantC = 1
			}
		}
		if got := uint32(h.get("sum")); got != want {
			t.Fatalf("addsub(%#x,%#x,%d) = %#x, want %#x", x, y, s, got, want)
		}
		if got := h.get("cout"); got != wantC {
			t.Fatalf("cout(%#x,%#x,%d) = %d, want %d", x, y, s, got, wantC)
		}
	}
}

func TestALUCLAMatchesReference(t *testing.T) {
	c := NewCtx("alucla", NativeLib{})
	a := c.B.InputBus("a", 32)
	d := c.B.InputBus("b", 32)
	op := c.B.InputBus("op", 3)
	y := c.ALUArch(Bus(a), Bus(d), Bus(op), func(c *Ctx, a, d Bus, sub gateSig) (Bus, gateSig) {
		return c.CLAAddSub(a, d, sub)
	})
	c.B.OutputBus("y", y)
	h := newHarness(t, c)
	check := func(x, y uint32, opSel uint8) bool {
		opv := int(opSel) & 7
		h.set("a", uint64(x))
		h.set("b", uint64(y))
		h.set("op", uint64(opv))
		h.eval()
		return uint32(h.get("y")) == ALURef(opv, x, y)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCLAAndRippleAreaDiffer(t *testing.T) {
	// The two architectures must actually be different netlists.
	build := func(f AddSubFn) float64 {
		c := NewCtx("x", NativeLib{})
		a := c.B.InputBus("a", 32)
		d := c.B.InputBus("b", 32)
		sub := c.B.Input("sub")
		sum, cout := f(c, Bus(a), Bus(d), sub)
		c.B.OutputBus("sum", sum)
		c.B.Output("cout", cout)
		_, total := c.B.N.GateCount()
		return total
	}
	ripple := build(func(c *Ctx, a, d Bus, sub gateSig) (Bus, gateSig) { return c.AddSub(a, d, sub) })
	cla := build(func(c *Ctx, a, d Bus, sub gateSig) (Bus, gateSig) { return c.CLAAddSub(a, d, sub) })
	if cla <= ripple {
		t.Errorf("CLA (%.0f) not larger than ripple (%.0f); architectures identical?", cla, ripple)
	}
}

// gateSig aliases the gate signal type for test readability.
type gateSig = gate.Sig
