package synth

import "repro/internal/gate"

// RegFile builds the MIPS register file: 31 32-bit registers (r0 reads as
// constant zero), one write port and two combinational read ports. Writes
// are realized as a hold/load mux in front of each flip-flop gated by a
// one-hot write decoder; reads are binary mux trees.
func (c *Ctx) RegFile(waddr Bus, wdata Bus, wen gate.Sig, raddr1, raddr2 Bus) (rd1, rd2 Bus) {
	if len(waddr) != 5 || len(raddr1) != 5 || len(raddr2) != 5 || len(wdata) != 32 {
		panic("synth: register file wants 5-bit addresses, 32-bit data")
	}
	dec := c.Decoder(waddr)

	regs := make([]Bus, 32)
	regs[0] = c.Const(0, 32)
	for r := 1; r < 32; r++ {
		en := c.And(dec[r], wen)
		q := c.RegBusPlaceholder(32)
		c.ConnectRegBus(q, c.MuxBus(q, wdata, en))
		regs[r] = q
	}

	rd1 = c.MuxTree(regs, raddr1)
	rd2 = c.MuxTree(regs, raddr2)
	return rd1, rd2
}
