package synth

import "repro/internal/gate"

// CLAAdder builds a carry-lookahead adder with 4-bit lookahead blocks
// (ripple between blocks): a different adder architecture than RippleAdder
// with identical function, used by the architecture-independence
// experiment — the paper's component test library targets structure
// classes, not one gate-level implementation.
func (c *Ctx) CLAAdder(a, d Bus, cin gate.Sig) (sum Bus, cout gate.Sig) {
	if len(a) != len(d) {
		panic("synth: adder operand width mismatch")
	}
	n := len(a)
	sum = make(Bus, n)
	carry := cin
	for blk := 0; blk < n; blk += 4 {
		end := blk + 4
		if end > n {
			end = n
		}
		w := end - blk
		p := make(Bus, w)
		g := make(Bus, w)
		for i := 0; i < w; i++ {
			p[i] = c.Xor(a[blk+i], d[blk+i])
			g[i] = c.And(a[blk+i], d[blk+i])
		}
		// Lookahead carries within the block:
		// c[i+1] = g[i] | p[i]g[i-1] | ... | p[i]..p[0]c0.
		carries := make(Bus, w+1)
		carries[0] = carry
		for i := 0; i < w; i++ {
			terms := []gate.Sig{g[i]}
			prod := p[i]
			for j := i - 1; j >= 0; j-- {
				terms = append(terms, c.And(prod, g[j]))
				prod = c.And(prod, p[j])
			}
			terms = append(terms, c.And(prod, carries[0]))
			carries[i+1] = c.OrN(terms...)
		}
		for i := 0; i < w; i++ {
			sum[blk+i] = c.Xor(p[i], carries[i])
		}
		carry = carries[w]
	}
	return sum, carry
}

// CLAAddSub is the carry-lookahead counterpart of AddSub.
func (c *Ctx) CLAAddSub(a, d Bus, sub gate.Sig) (sum Bus, cout gate.Sig) {
	dx := make(Bus, len(d))
	for i := range d {
		dx[i] = c.Xor(d[i], sub)
	}
	return c.CLAAdder(a, dx, sub)
}

// AddSubFn abstracts the adder architecture inside the ALU.
type AddSubFn func(c *Ctx, a, d Bus, sub gate.Sig) (sum Bus, cout gate.Sig)

// ALUArch builds the ALU over a chosen adder architecture; ALU uses the
// ripple-carry default.
func (c *Ctx) ALUArch(a, d, op Bus, addsub AddSubFn) Bus {
	if len(op) != ALUOpWidth {
		panic("synth: ALU op bus must be 3 bits wide")
	}
	dec := c.Decoder(op)
	sub := c.OrN(dec[ALUSub], dec[ALUSlt], dec[ALUSltu])
	sum, cout := addsub(c, a, d, sub)

	ltu := c.Not(cout)
	as, ds := a[len(a)-1], d[len(d)-1]
	signsDiffer := c.Xor(as, ds)
	lt := c.Mux(sum[len(sum)-1], as, signsDiffer)

	andv := c.AndBus(a, d)
	orv := c.OrBus(a, d)
	xorv := c.XorBus(a, d)
	norv := c.NotBus(orv)

	selSum := c.Or(dec[ALUAdd], dec[ALUSub])
	out := make(Bus, len(a))
	for i := range out {
		terms := []gate.Sig{
			c.And(selSum, sum[i]),
			c.And(dec[ALUAnd], andv[i]),
			c.And(dec[ALUOr], orv[i]),
			c.And(dec[ALUXor], xorv[i]),
			c.And(dec[ALUNor], norv[i]),
		}
		if i == 0 {
			terms = append(terms,
				c.And(dec[ALUSlt], lt),
				c.And(dec[ALUSltu], ltu),
			)
		}
		out[i] = c.OrN(terms...)
	}
	return out
}
