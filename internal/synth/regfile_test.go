package synth

import (
	"math/rand"
	"testing"
)

func buildRegFileHarness(t *testing.T, lib Library) *harness {
	c := NewCtx("regf", lib)
	waddr := c.B.InputBus("waddr", 5)
	wdata := c.B.InputBus("wdata", 32)
	wen := c.B.Input("wen")
	ra1 := c.B.InputBus("ra1", 5)
	ra2 := c.B.InputBus("ra2", 5)
	rd1, rd2 := c.RegFile(Bus(waddr), Bus(wdata), wen, Bus(ra1), Bus(ra2))
	c.B.OutputBus("rd1", rd1)
	c.B.OutputBus("rd2", rd2)
	return newHarness(t, c)
}

func TestRegFileWriteRead(t *testing.T) {
	h := buildRegFileHarness(t, NativeLib{})
	h.reset()

	// Write a distinct value to every register.
	for r := uint64(0); r < 32; r++ {
		h.set("waddr", r)
		h.set("wdata", r*0x01010101)
		h.set("wen", 1)
		h.step()
	}
	h.set("wen", 0)

	// Read back through both ports; r0 must be zero.
	for r := uint64(0); r < 32; r++ {
		h.set("ra1", r)
		h.set("ra2", 31-r)
		h.eval()
		want1 := r * 0x01010101
		if r == 0 {
			want1 = 0
		}
		want2 := (31 - r) * 0x01010101
		if r == 31 {
			want2 = 0
		}
		if got := h.get("rd1"); got != want1 {
			t.Fatalf("rd1[r%d] = %#x, want %#x", r, got, want1)
		}
		if got := h.get("rd2"); got != want2 {
			t.Fatalf("rd2[r%d] = %#x, want %#x", 31-r, got, want2)
		}
	}
}

func TestRegFileR0IgnoresWrites(t *testing.T) {
	h := buildRegFileHarness(t, NativeLib{})
	h.reset()
	h.set("waddr", 0)
	h.set("wdata", 0xDEADBEEF)
	h.set("wen", 1)
	h.step()
	h.set("wen", 0)
	h.set("ra1", 0)
	h.eval()
	if got := h.get("rd1"); got != 0 {
		t.Fatalf("r0 = %#x after write, want 0", got)
	}
}

func TestRegFileWriteEnableGates(t *testing.T) {
	h := buildRegFileHarness(t, NandLib{})
	h.reset()
	h.set("waddr", 5)
	h.set("wdata", 0x12345678)
	h.set("wen", 1)
	h.step()
	// Attempt a write with wen=0: must not change r5 or any other register.
	h.set("wdata", 0xFFFFFFFF)
	h.set("wen", 0)
	h.step()
	h.set("ra1", 5)
	h.set("ra2", 6)
	h.eval()
	if got := h.get("rd1"); got != 0x12345678 {
		t.Fatalf("r5 = %#x, want 0x12345678", got)
	}
	if got := h.get("rd2"); got != 0 {
		t.Fatalf("r6 = %#x, want 0 (never written)", got)
	}
}

func TestRegFileRandomTrace(t *testing.T) {
	// Model-based random test: compare against a plain array model.
	h := buildRegFileHarness(t, NativeLib{})
	h.reset()
	var model [32]uint32
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		w := rng.Intn(32)
		v := rng.Uint32()
		wen := rng.Intn(2)
		r1, r2 := rng.Intn(32), rng.Intn(32)
		h.set("waddr", uint64(w))
		h.set("wdata", uint64(v))
		h.set("wen", uint64(wen))
		h.set("ra1", uint64(r1))
		h.set("ra2", uint64(r2))
		h.eval()
		if got := uint32(h.get("rd1")); got != model[r1] {
			t.Fatalf("step %d: rd1[r%d] = %#x, want %#x", i, r1, got, model[r1])
		}
		if got := uint32(h.get("rd2")); got != model[r2] {
			t.Fatalf("step %d: rd2[r%d] = %#x, want %#x", i, r2, got, model[r2])
		}
		h.s.Latch()
		if wen == 1 && w != 0 {
			model[w] = v
		}
	}
}
