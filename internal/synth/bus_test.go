package synth

import (
	"math/rand"
	"testing"
)

func TestDecoderOneHot(t *testing.T) {
	forEachLib(t, func(t *testing.T, lib Library) {
		c := NewCtx("dec", lib)
		sel := c.B.InputBus("sel", 5)
		dec := c.Decoder(Bus(sel))
		c.B.OutputBus("y", dec)
		h := newHarness(t, c)
		for v := uint64(0); v < 32; v++ {
			h.set("sel", v)
			h.eval()
			if got := h.get("y"); got != 1<<v {
				t.Fatalf("decode(%d) = %#x, want %#x", v, got, uint64(1)<<v)
			}
		}
	})
}

func TestMuxTree(t *testing.T) {
	c := NewCtx("muxtree", NativeLib{})
	options := make([]Bus, 8)
	for i := range options {
		options[i] = c.Const(uint64(i*37+5), 8)
	}
	sel := c.B.InputBus("sel", 3)
	c.B.OutputBus("y", c.MuxTree(options, Bus(sel)))
	h := newHarness(t, c)
	for v := uint64(0); v < 8; v++ {
		h.set("sel", v)
		h.eval()
		if got := h.get("y"); got != (v*37+5)&255 {
			t.Fatalf("muxtree(%d) = %d, want %d", v, got, (v*37+5)&255)
		}
	}
}

func TestEqAndZero(t *testing.T) {
	c := NewCtx("eq", NandLib{})
	a := c.B.InputBus("a", 6)
	d := c.B.InputBus("b", 6)
	c.B.Output("eqc", c.EqConst(Bus(a), 0b101101))
	c.B.Output("eqb", c.EqBus(Bus(a), Bus(d)))
	c.B.Output("z", c.IsZero(Bus(a)))
	h := newHarness(t, c)
	for x := uint64(0); x < 64; x++ {
		for y := uint64(0); y < 64; y += 5 {
			h.set("a", x)
			h.set("b", y)
			h.eval()
			b2u := func(b bool) uint64 {
				if b {
					return 1
				}
				return 0
			}
			if got := h.get("eqc"); got != b2u(x == 0b101101) {
				t.Fatalf("eqc(%d) = %d", x, got)
			}
			if got := h.get("eqb"); got != b2u(x == y) {
				t.Fatalf("eqb(%d,%d) = %d", x, y, got)
			}
			if got := h.get("z"); got != b2u(x == 0) {
				t.Fatalf("z(%d) = %d", x, got)
			}
		}
	}
}

func TestExtendAndReverse(t *testing.T) {
	c := NewCtx("ext", NativeLib{})
	a := c.B.InputBus("a", 8)
	c.B.OutputBus("se", c.SignExtend(Bus(a), 16))
	c.B.OutputBus("ze", c.ZeroExtend(Bus(a), 16))
	c.B.OutputBus("rev", Reverse(Bus(a)))
	h := newHarness(t, c)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		x := uint64(rng.Intn(256))
		h.set("a", x)
		h.eval()
		wantSE := uint64(uint16(int16(int8(x))))
		if got := h.get("se"); got != wantSE {
			t.Fatalf("signext(%#x) = %#x, want %#x", x, got, wantSE)
		}
		if got := h.get("ze"); got != x {
			t.Fatalf("zeroext(%#x) = %#x, want %#x", x, got, x)
		}
		var wantRev uint64
		for b := 0; b < 8; b++ {
			wantRev |= (x >> uint(b) & 1) << uint(7-b)
		}
		if got := h.get("rev"); got != wantRev {
			t.Fatalf("reverse(%#x) = %#x, want %#x", x, got, wantRev)
		}
	}
}

func TestConstAndRepeat(t *testing.T) {
	c := NewCtx("const", NativeLib{})
	s := c.B.Input("s")
	c.B.OutputBus("k", c.Const(0xA5, 8))
	c.B.OutputBus("r", c.Repeat(s, 4))
	h := newHarness(t, c)
	h.set("s", 1)
	h.eval()
	if got := h.get("k"); got != 0xA5 {
		t.Fatalf("const = %#x, want 0xa5", got)
	}
	if got := h.get("r"); got != 0xF {
		t.Fatalf("repeat(1) = %#x, want 0xf", got)
	}
	h.set("s", 0)
	h.eval()
	if got := h.get("r"); got != 0 {
		t.Fatalf("repeat(0) = %#x, want 0", got)
	}
}

func TestLibraryEquivalence(t *testing.T) {
	// Both libraries must realize identical functions: compare an ALU built
	// with each on random vectors.
	build := func(lib Library) *harness {
		c := NewCtx("alu", lib)
		a := c.B.InputBus("a", 32)
		d := c.B.InputBus("b", 32)
		op := c.B.InputBus("op", 3)
		c.B.OutputBus("y", c.ALU(Bus(a), Bus(d), Bus(op)))
		return newHarness(t, c)
	}
	ha := build(NativeLib{})
	hb := build(NandLib{})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		x, y := uint64(rng.Uint32()), uint64(rng.Uint32())
		op := uint64(rng.Intn(8))
		for _, h := range []*harness{ha, hb} {
			h.set("a", x)
			h.set("b", y)
			h.set("op", op)
			h.eval()
		}
		if ga, gb := ha.get("y"), hb.get("y"); ga != gb {
			t.Fatalf("libraries disagree: op=%d a=%#x b=%#x: %#x vs %#x", op, x, y, ga, gb)
		}
	}
}

func TestLibraryByName(t *testing.T) {
	for _, lib := range Libraries() {
		if got := LibraryByName(lib.Name()); got == nil || got.Name() != lib.Name() {
			t.Errorf("LibraryByName(%q) failed", lib.Name())
		}
	}
	if LibraryByName("nope") != nil {
		t.Error("LibraryByName accepted unknown name")
	}
}
