package synth

import "repro/internal/gate"

// ShiftRef is the software reference for the gate-level barrel shifter.
func ShiftRef(data uint32, amount uint32, right, arith bool) uint32 {
	amount &= 31
	switch {
	case !right:
		return data << amount
	case arith:
		return uint32(int32(data) >> amount)
	default:
		return data >> amount
	}
}

// BarrelShifter builds a 32-bit logarithmic shifter. right selects shift
// direction (1 = right); arith selects arithmetic right shift (sign fill).
// Left shifts are realized by bit-reversing around the right-shift core,
// the classic Plasma structure.
func (c *Ctx) BarrelShifter(data Bus, amount Bus, right, arith gate.Sig) Bus {
	if len(amount) != 5 || len(data) != 32 {
		panic("synth: barrel shifter wants 32-bit data, 5-bit amount")
	}
	// Fill bit: sign bit for arithmetic right shifts, else 0. Left shifts
	// always fill with 0 (the reversal maps their fill to the same bit).
	fill := c.And(c.And(arith, right), data[31])

	// Reverse the word for left shifts so the core always shifts right.
	in := c.MuxBus(Reverse(data), data, right)

	cur := in
	for k := 0; k < 5; k++ {
		s := 1 << uint(k)
		shifted := make(Bus, 32)
		for i := 0; i < 32; i++ {
			if i+s < 32 {
				shifted[i] = cur[i+s]
			} else {
				shifted[i] = fill
			}
		}
		cur = c.MuxBus(cur, shifted, amount[k])
	}
	return c.MuxBus(Reverse(cur), cur, right)
}
