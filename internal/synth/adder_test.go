package synth

import (
	"math/rand"
	"testing"

	"repro/internal/gate"
)

// harness wraps a combinational netlist for single-lane poke/peek testing.
type harness struct {
	t *testing.T
	s *gate.Sim
}

func newHarness(t *testing.T, c *Ctx) *harness {
	t.Helper()
	s, err := gate.NewSim(c.B.N)
	if err != nil {
		t.Fatalf("NewSim: %v", err)
	}
	return &harness{t: t, s: s}
}

func (h *harness) set(name string, v uint64) { h.s.SetBusUniform(name, v) }
func (h *harness) eval()                     { h.s.Eval() }
func (h *harness) step()                     { h.s.Step() }
func (h *harness) get(name string) uint64    { return h.s.BusLane(name, 0) }
func (h *harness) reset()                    { h.s.Reset() }

func forEachLib(t *testing.T, f func(t *testing.T, lib Library)) {
	for _, lib := range Libraries() {
		lib := lib
		t.Run(lib.Name(), func(t *testing.T) { f(t, lib) })
	}
}

func TestRippleAdder(t *testing.T) {
	forEachLib(t, func(t *testing.T, lib Library) {
		c := NewCtx("adder", lib)
		a := c.B.InputBus("a", 32)
		d := c.B.InputBus("b", 32)
		cin := c.B.Input("cin")
		sum, carries := c.RippleAdder(Bus(a), Bus(d), cin)
		c.B.OutputBus("sum", sum)
		c.B.Output("cout", carries[len(carries)-1])
		h := newHarness(t, c)

		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 500; i++ {
			x, y := rng.Uint32(), rng.Uint32()
			ci := uint64(i & 1)
			h.set("a", uint64(x))
			h.set("b", uint64(y))
			h.set("cin", ci)
			h.eval()
			full := uint64(x) + uint64(y) + ci
			if got := h.get("sum"); got != full&0xFFFFFFFF {
				t.Fatalf("%d + %d + %d: sum = %#x, want %#x", x, y, ci, got, full&0xFFFFFFFF)
			}
			if got := h.get("cout"); got != full>>32 {
				t.Fatalf("%d + %d + %d: cout = %d, want %d", x, y, ci, got, full>>32)
			}
		}
	})
}

func TestAddSubExhaustive4Bit(t *testing.T) {
	forEachLib(t, func(t *testing.T, lib Library) {
		c := NewCtx("addsub4", lib)
		a := c.B.InputBus("a", 4)
		d := c.B.InputBus("b", 4)
		sub := c.B.Input("sub")
		sum, cout := c.AddSub(Bus(a), Bus(d), sub)
		c.B.OutputBus("sum", sum)
		c.B.Output("cout", cout)
		h := newHarness(t, c)

		for x := uint64(0); x < 16; x++ {
			for y := uint64(0); y < 16; y++ {
				for s := uint64(0); s < 2; s++ {
					h.set("a", x)
					h.set("b", y)
					h.set("sub", s)
					h.eval()
					var want, wantC uint64
					if s == 0 {
						want = (x + y) & 15
						wantC = (x + y) >> 4
					} else {
						want = (x - y) & 15
						if x >= y {
							wantC = 1 // no borrow
						}
					}
					if got := h.get("sum"); got != want {
						t.Fatalf("x=%d y=%d sub=%d: sum=%d want %d", x, y, s, got, want)
					}
					if got := h.get("cout"); got != wantC {
						t.Fatalf("x=%d y=%d sub=%d: cout=%d want %d", x, y, s, got, wantC)
					}
				}
			}
		}
	})
}

func TestIncDecNegate(t *testing.T) {
	c := NewCtx("incdec", NativeLib{})
	a := c.B.InputBus("a", 8)
	inc, cout := c.Incrementer(Bus(a), c.B.Const1())
	dec := c.Decrementer(Bus(a))
	neg := c.Negate(Bus(a))
	c.B.OutputBus("inc", inc)
	c.B.Output("cout", cout)
	c.B.OutputBus("dec", dec)
	c.B.OutputBus("neg", neg)
	h := newHarness(t, c)

	for x := uint64(0); x < 256; x++ {
		h.set("a", x)
		h.eval()
		if got := h.get("inc"); got != (x+1)&255 {
			t.Fatalf("inc(%d) = %d, want %d", x, got, (x+1)&255)
		}
		wantC := uint64(0)
		if x == 255 {
			wantC = 1
		}
		if got := h.get("cout"); got != wantC {
			t.Fatalf("inc cout(%d) = %d, want %d", x, got, wantC)
		}
		if got := h.get("dec"); got != (x-1)&255 {
			t.Fatalf("dec(%d) = %d, want %d", x, got, (x-1)&255)
		}
		if got := h.get("neg"); got != (-x)&255 {
			t.Fatalf("neg(%d) = %d, want %d", x, got, (-x)&255)
		}
	}
}

func TestCondNegate(t *testing.T) {
	c := NewCtx("cneg", NandLib{})
	a := c.B.InputBus("a", 8)
	en := c.B.Input("en")
	c.B.OutputBus("y", c.CondNegate(Bus(a), en))
	h := newHarness(t, c)
	for x := uint64(0); x < 256; x++ {
		for e := uint64(0); e < 2; e++ {
			h.set("a", x)
			h.set("en", e)
			h.eval()
			want := x
			if e == 1 {
				want = (-x) & 255
			}
			if got := h.get("y"); got != want {
				t.Fatalf("condneg(%d, en=%d) = %d, want %d", x, e, got, want)
			}
		}
	}
}

func TestLessThan(t *testing.T) {
	forEachLib(t, func(t *testing.T, lib Library) {
		c := NewCtx("lt", lib)
		a := c.B.InputBus("a", 8)
		d := c.B.InputBus("b", 8)
		lt, ltu := c.LessThan(Bus(a), Bus(d))
		c.B.Output("lt", lt)
		c.B.Output("ltu", ltu)
		h := newHarness(t, c)
		for x := uint64(0); x < 256; x++ {
			for y := uint64(0); y < 256; y += 3 {
				h.set("a", x)
				h.set("b", y)
				h.eval()
				wantU := uint64(0)
				if x < y {
					wantU = 1
				}
				wantS := uint64(0)
				if int8(x) < int8(y) {
					wantS = 1
				}
				if got := h.get("ltu"); got != wantU {
					t.Fatalf("ltu(%d,%d) = %d, want %d", x, y, got, wantU)
				}
				if got := h.get("lt"); got != wantS {
					t.Fatalf("lt(%d,%d) = %d, want %d", x, y, got, wantS)
				}
			}
		}
	})
}
