// Package synth synthesizes RT-level datapath and control structures into
// gate netlists over the cell library in internal/gate. It provides the
// regular structures the paper's component test library exploits: ripple
// adders, logic units, barrel shifters, register files, and a sequential
// multiplier/divider, plus generic mux trees and decoders.
//
// All generators are parameterized by a technology Library, so the same RTL
// can be mapped to two different cell mixes — reproducing the paper's claim
// that the methodology is technology independent.
package synth

import "repro/internal/gate"

// Library is a technology mapping: how each logic function is realized in
// cells. Different libraries produce different netlists (and gate counts)
// with identical function.
type Library interface {
	Name() string
	Not(b *gate.Builder, a gate.Sig) gate.Sig
	And(b *gate.Builder, x, y gate.Sig) gate.Sig
	Or(b *gate.Builder, x, y gate.Sig) gate.Sig
	Nand(b *gate.Builder, x, y gate.Sig) gate.Sig
	Nor(b *gate.Builder, x, y gate.Sig) gate.Sig
	Xor(b *gate.Builder, x, y gate.Sig) gate.Sig
	Xnor(b *gate.Builder, x, y gate.Sig) gate.Sig
	Mux(b *gate.Builder, a0, a1, sel gate.Sig) gate.Sig
}

// NativeLib maps every function to its native cell: the richest library
// (XOR2, XNOR2 and MUX2 cells available). This is "library A" in the
// technology-independence experiment.
type NativeLib struct{}

// Name implements Library.
func (NativeLib) Name() string { return "native-0.35um-A" }

// Not implements Library.
func (NativeLib) Not(b *gate.Builder, a gate.Sig) gate.Sig { return b.Not(a) }

// And implements Library.
func (NativeLib) And(b *gate.Builder, x, y gate.Sig) gate.Sig { return b.And(x, y) }

// Or implements Library.
func (NativeLib) Or(b *gate.Builder, x, y gate.Sig) gate.Sig { return b.Or(x, y) }

// Nand implements Library.
func (NativeLib) Nand(b *gate.Builder, x, y gate.Sig) gate.Sig { return b.Nand(x, y) }

// Nor implements Library.
func (NativeLib) Nor(b *gate.Builder, x, y gate.Sig) gate.Sig { return b.Nor(x, y) }

// Xor implements Library.
func (NativeLib) Xor(b *gate.Builder, x, y gate.Sig) gate.Sig { return b.Xor(x, y) }

// Xnor implements Library.
func (NativeLib) Xnor(b *gate.Builder, x, y gate.Sig) gate.Sig { return b.Xnor(x, y) }

// Mux implements Library.
func (NativeLib) Mux(b *gate.Builder, a0, a1, sel gate.Sig) gate.Sig { return b.Mux(a0, a1, sel) }

// NandLib maps everything onto NAND2 and NOT cells (plus DFFs), the way a
// NAND-dominant library or a remapping flow would. This is "library B" in
// the technology-independence experiment: same function, different netlist.
type NandLib struct{}

// Name implements Library.
func (NandLib) Name() string { return "nand2-0.35um-B" }

// Not implements Library.
func (NandLib) Not(b *gate.Builder, a gate.Sig) gate.Sig { return b.Not(a) }

// Nand implements Library.
func (NandLib) Nand(b *gate.Builder, x, y gate.Sig) gate.Sig { return b.Nand(x, y) }

// And implements Library.
func (NandLib) And(b *gate.Builder, x, y gate.Sig) gate.Sig { return b.Not(b.Nand(x, y)) }

// Or implements Library.
func (NandLib) Or(b *gate.Builder, x, y gate.Sig) gate.Sig {
	return b.Nand(b.Not(x), b.Not(y))
}

// Nor implements Library.
func (l NandLib) Nor(b *gate.Builder, x, y gate.Sig) gate.Sig {
	return b.Not(l.Or(b, x, y))
}

// Xor implements Library (the classic 4-NAND realization).
func (NandLib) Xor(b *gate.Builder, x, y gate.Sig) gate.Sig {
	n1 := b.Nand(x, y)
	return b.Nand(b.Nand(x, n1), b.Nand(y, n1))
}

// Xnor implements Library.
func (l NandLib) Xnor(b *gate.Builder, x, y gate.Sig) gate.Sig {
	return b.Not(l.Xor(b, x, y))
}

// Mux implements Library (AOI-style on NAND cells).
func (NandLib) Mux(b *gate.Builder, a0, a1, sel gate.Sig) gate.Sig {
	ns := b.Not(sel)
	return b.Nand(b.Nand(a0, ns), b.Nand(a1, sel))
}

// Libraries returns both technology libraries, library A first.
func Libraries() []Library { return []Library{NativeLib{}, NandLib{}} }

// LibraryByName returns the library with the given name, or nil.
func LibraryByName(name string) Library {
	for _, l := range Libraries() {
		if l.Name() == name {
			return l
		}
	}
	return nil
}
