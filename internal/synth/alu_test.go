package synth

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildALUHarness(t *testing.T, lib Library) *harness {
	c := NewCtx("alu", lib)
	a := c.B.InputBus("a", 32)
	d := c.B.InputBus("b", 32)
	op := c.B.InputBus("op", 3)
	c.B.OutputBus("y", c.ALU(Bus(a), Bus(d), Bus(op)))
	return newHarness(t, c)
}

func TestALUAllOps(t *testing.T) {
	forEachLib(t, func(t *testing.T, lib Library) {
		h := buildALUHarness(t, lib)
		check := func(x, y uint32, opSel uint8) bool {
			op := int(opSel) & 7
			h.set("a", uint64(x))
			h.set("b", uint64(y))
			h.set("op", uint64(op))
			h.eval()
			return uint32(h.get("y")) == ALURef(op, x, y)
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
			t.Error(err)
		}
	})
}

func TestALUCornerCases(t *testing.T) {
	h := buildALUHarness(t, NativeLib{})
	values := []uint32{0, 1, 0xFFFFFFFF, 0x80000000, 0x7FFFFFFF, 0x55555555, 0xAAAAAAAA}
	for _, x := range values {
		for _, y := range values {
			for op := 0; op < 8; op++ {
				h.set("a", uint64(x))
				h.set("b", uint64(y))
				h.set("op", uint64(op))
				h.eval()
				if got := uint32(h.get("y")); got != ALURef(op, x, y) {
					t.Fatalf("ALU op=%d a=%#x b=%#x: got %#x, want %#x", op, x, y, got, ALURef(op, x, y))
				}
			}
		}
	}
}

func TestShifter(t *testing.T) {
	forEachLib(t, func(t *testing.T, lib Library) {
		c := NewCtx("bsh", lib)
		data := c.B.InputBus("data", 32)
		amt := c.B.InputBus("amt", 5)
		right := c.B.Input("right")
		arith := c.B.Input("arith")
		c.B.OutputBus("y", c.BarrelShifter(Bus(data), Bus(amt), right, arith))
		h := newHarness(t, c)

		rng := rand.New(rand.NewSource(4))
		vals := []uint32{0, 0xFFFFFFFF, 0x80000000, 1, 0x55555555, 0xAAAAAAAA}
		for i := 0; i < 10; i++ {
			vals = append(vals, rng.Uint32())
		}
		for _, v := range vals {
			for amtV := uint32(0); amtV < 32; amtV++ {
				for mode := 0; mode < 3; mode++ {
					r, ar := mode > 0, mode == 2
					h.set("data", uint64(v))
					h.set("amt", uint64(amtV))
					h.set("right", b2u(r))
					h.set("arith", b2u(ar))
					h.eval()
					want := ShiftRef(v, amtV, r, ar)
					if got := uint32(h.get("y")); got != want {
						t.Fatalf("shift v=%#x amt=%d right=%v arith=%v: got %#x, want %#x",
							v, amtV, r, ar, got, want)
					}
				}
			}
		}
	})
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func TestShiftRefMatchesGo(t *testing.T) {
	check := func(v, amt uint32) bool {
		amt &= 31
		return ShiftRef(v, amt, false, false) == v<<amt &&
			ShiftRef(v, amt, true, false) == v>>amt &&
			ShiftRef(v, amt, true, true) == uint32(int32(v)>>amt)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
