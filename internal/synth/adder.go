package synth

import "repro/internal/gate"

// FullAdder builds one full-adder bit: sum = x^y^cin, cout = majority.
func (c *Ctx) FullAdder(x, y, cin gate.Sig) (sum, cout gate.Sig) {
	p := c.Xor(x, y)
	sum = c.Xor(p, cin)
	cout = c.Or(c.And(x, y), c.And(p, cin))
	return sum, cout
}

// RippleAdder builds a ripple-carry adder: sum = a + d + cin. The returned
// carries slice holds the carry into each bit position plus the final
// carry-out at index len(a) (useful for overflow detection).
func (c *Ctx) RippleAdder(a, d Bus, cin gate.Sig) (sum Bus, carries Bus) {
	if len(a) != len(d) {
		panic("synth: adder operand width mismatch")
	}
	sum = make(Bus, len(a))
	carries = make(Bus, len(a)+1)
	carries[0] = cin
	for i := range a {
		sum[i], carries[i+1] = c.FullAdder(a[i], d[i], carries[i])
	}
	return sum, carries
}

// AddSub builds a shared adder/subtractor: result = a + d when sub=0,
// a - d (two's complement) when sub=1. cout is the final carry-out: for
// subtraction, cout=1 means no borrow (a >= d unsigned).
func (c *Ctx) AddSub(a, d Bus, sub gate.Sig) (sum Bus, cout gate.Sig) {
	dx := make(Bus, len(d))
	for i := range d {
		dx[i] = c.Xor(d[i], sub)
	}
	s, carries := c.RippleAdder(a, dx, sub)
	return s, carries[len(carries)-1]
}

// Incrementer builds result = a + cin using a half-adder chain, cheaper
// than a full adder (used for two's-complement negation and PC+1 logic).
func (c *Ctx) Incrementer(a Bus, cin gate.Sig) (sum Bus, cout gate.Sig) {
	sum = make(Bus, len(a))
	carry := cin
	for i := range a {
		sum[i] = c.Xor(a[i], carry)
		if i < len(a)-1 {
			carry = c.And(a[i], carry)
		} else {
			cout = c.And(a[i], carry)
		}
	}
	return sum, cout
}

// Negate builds the two's complement of a: ~a + 1.
func (c *Ctx) Negate(a Bus) Bus {
	s, _ := c.Incrementer(c.NotBus(a), c.B.Const1())
	return s
}

// CondNegate negates a when neg=1, passes it through otherwise; realized as
// XOR with neg followed by a conditional increment (ripple of ANDs), the
// standard sign-magnitude fixup structure.
func (c *Ctx) CondNegate(a Bus, neg gate.Sig) Bus {
	x := make(Bus, len(a))
	for i := range a {
		x[i] = c.Xor(a[i], neg)
	}
	s, _ := c.Incrementer(x, neg)
	return s
}

// Decrementer builds result = a - 1 with a ripple borrow chain.
func (c *Ctx) Decrementer(a Bus) Bus {
	out := make(Bus, len(a))
	borrow := c.B.Const1()
	for i := range a {
		out[i] = c.Xor(a[i], borrow)
		if i < len(a)-1 {
			borrow = c.And(c.Not(a[i]), borrow)
		}
	}
	return out
}

// LessThan builds the signed and unsigned a < d comparisons from a shared
// subtraction. Returns (signed, unsigned) 1-bit results.
func (c *Ctx) LessThan(a, d Bus) (lt, ltu gate.Sig) {
	diff, cout := c.AddSub(a, d, c.B.Const1())
	// Unsigned: borrow out means a < d.
	ltu = c.Not(cout)
	// Signed: if signs differ, a < d iff a is negative; otherwise use the
	// sign of the difference.
	as, ds := a[len(a)-1], d[len(d)-1]
	signsDiffer := c.Xor(as, ds)
	lt = c.Mux(diff[len(diff)-1], as, signsDiffer)
	return lt, ltu
}
