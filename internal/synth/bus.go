package synth

import (
	"fmt"

	"repro/internal/gate"
)

// Bus is an ordered bundle of signals, least-significant bit first.
type Bus []gate.Sig

// Ctx bundles a netlist builder with a technology library; all synthesis
// generators operate through it.
type Ctx struct {
	B   *gate.Builder
	Lib Library
}

// NewCtx returns a synthesis context over a fresh netlist.
func NewCtx(name string, lib Library) *Ctx {
	return &Ctx{B: gate.NewBuilder(name), Lib: lib}
}

// Scalar cell wrappers through the technology library.

// Not maps a NOT through the library.
func (c *Ctx) Not(a gate.Sig) gate.Sig { return c.Lib.Not(c.B, a) }

// And maps an AND2 through the library.
func (c *Ctx) And(x, y gate.Sig) gate.Sig { return c.Lib.And(c.B, x, y) }

// Or maps an OR2 through the library.
func (c *Ctx) Or(x, y gate.Sig) gate.Sig { return c.Lib.Or(c.B, x, y) }

// Nand maps a NAND2 through the library.
func (c *Ctx) Nand(x, y gate.Sig) gate.Sig { return c.Lib.Nand(c.B, x, y) }

// Nor maps a NOR2 through the library.
func (c *Ctx) Nor(x, y gate.Sig) gate.Sig { return c.Lib.Nor(c.B, x, y) }

// Xor maps an XOR2 through the library.
func (c *Ctx) Xor(x, y gate.Sig) gate.Sig { return c.Lib.Xor(c.B, x, y) }

// Xnor maps an XNOR2 through the library.
func (c *Ctx) Xnor(x, y gate.Sig) gate.Sig { return c.Lib.Xnor(c.B, x, y) }

// Mux maps a 2:1 mux through the library (a0 when sel=0, a1 when sel=1).
func (c *Ctx) Mux(a0, a1, sel gate.Sig) gate.Sig { return c.Lib.Mux(c.B, a0, a1, sel) }

// AndN reduces signals with a balanced AND tree through the library.
func (c *Ctx) AndN(sigs ...gate.Sig) gate.Sig { return c.reduce(c.And, c.B.Const1(), sigs) }

// OrN reduces signals with a balanced OR tree through the library.
func (c *Ctx) OrN(sigs ...gate.Sig) gate.Sig { return c.reduce(c.Or, c.B.Const0(), sigs) }

func (c *Ctx) reduce(op func(x, y gate.Sig) gate.Sig, empty gate.Sig, sigs []gate.Sig) gate.Sig {
	switch len(sigs) {
	case 0:
		return empty
	case 1:
		return sigs[0]
	}
	cur := append([]gate.Sig(nil), sigs...)
	for len(cur) > 1 {
		var next []gate.Sig
		for i := 0; i+1 < len(cur); i += 2 {
			next = append(next, op(cur[i], cur[i+1]))
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	return cur[0]
}

// Const builds a constant bus of the given width from value's low bits.
func (c *Ctx) Const(value uint64, width int) Bus {
	bus := make(Bus, width)
	for i := range bus {
		bus[i] = c.B.ConstBit(value>>uint(i)&1 != 0)
	}
	return bus
}

// Repeat builds a bus of width copies of one signal.
func (c *Ctx) Repeat(s gate.Sig, width int) Bus {
	bus := make(Bus, width)
	for i := range bus {
		bus[i] = s
	}
	return bus
}

// NotBus inverts every bit.
func (c *Ctx) NotBus(a Bus) Bus {
	out := make(Bus, len(a))
	for i := range a {
		out[i] = c.Not(a[i])
	}
	return out
}

func (c *Ctx) zipBus(a, d Bus, op func(x, y gate.Sig) gate.Sig) Bus {
	if len(a) != len(d) {
		panic(fmt.Sprintf("synth: bus width mismatch %d vs %d", len(a), len(d)))
	}
	out := make(Bus, len(a))
	for i := range a {
		out[i] = op(a[i], d[i])
	}
	return out
}

// AndBus is the bitwise AND of two buses.
func (c *Ctx) AndBus(a, d Bus) Bus { return c.zipBus(a, d, c.And) }

// OrBus is the bitwise OR of two buses.
func (c *Ctx) OrBus(a, d Bus) Bus { return c.zipBus(a, d, c.Or) }

// XorBus is the bitwise XOR of two buses.
func (c *Ctx) XorBus(a, d Bus) Bus { return c.zipBus(a, d, c.Xor) }

// NorBus is the bitwise NOR of two buses.
func (c *Ctx) NorBus(a, d Bus) Bus { return c.zipBus(a, d, c.Nor) }

// MuxBus selects a when sel=0, d when sel=1, bitwise.
func (c *Ctx) MuxBus(a, d Bus, sel gate.Sig) Bus {
	if len(a) != len(d) {
		panic(fmt.Sprintf("synth: mux bus width mismatch %d vs %d", len(a), len(d)))
	}
	out := make(Bus, len(a))
	for i := range a {
		out[i] = c.Mux(a[i], d[i], sel)
	}
	return out
}

// MuxTree selects options[sel] with a binary mux tree. The number of
// options must be 1 << len(sel).
func (c *Ctx) MuxTree(options []Bus, sel Bus) Bus {
	if len(options) != 1<<uint(len(sel)) {
		panic(fmt.Sprintf("synth: mux tree needs %d options, got %d", 1<<uint(len(sel)), len(options)))
	}
	cur := options
	for level := 0; level < len(sel); level++ {
		next := make([]Bus, len(cur)/2)
		for i := range next {
			next[i] = c.MuxBus(cur[2*i], cur[2*i+1], sel[level])
		}
		cur = next
	}
	return cur[0]
}

// Decoder produces the one-hot decode of sel: output i is high iff
// sel == i. Built as an AND tree over (possibly inverted) select lines.
func (c *Ctx) Decoder(sel Bus) []gate.Sig {
	n := 1 << uint(len(sel))
	inv := c.NotBus(sel)
	out := make([]gate.Sig, n)
	for i := 0; i < n; i++ {
		terms := make([]gate.Sig, len(sel))
		for b := range sel {
			if i>>uint(b)&1 != 0 {
				terms[b] = sel[b]
			} else {
				terms[b] = inv[b]
			}
		}
		out[i] = c.AndN(terms...)
	}
	return out
}

// EqConst is high iff bus equals the constant value.
func (c *Ctx) EqConst(a Bus, value uint64) gate.Sig {
	terms := make([]gate.Sig, len(a))
	for i := range a {
		if value>>uint(i)&1 != 0 {
			terms[i] = a[i]
		} else {
			terms[i] = c.Not(a[i])
		}
	}
	return c.AndN(terms...)
}

// EqBus is high iff the buses are bit-for-bit equal.
func (c *Ctx) EqBus(a, d Bus) gate.Sig {
	eq := c.zipBus(a, d, c.Xnor)
	return c.AndN(eq...)
}

// IsZero is high iff every bit of the bus is 0.
func (c *Ctx) IsZero(a Bus) gate.Sig { return c.Not(c.OrN(a...)) }

// SignExtend widens a bus to width by replicating its MSB.
func (c *Ctx) SignExtend(a Bus, width int) Bus {
	out := make(Bus, width)
	copy(out, a)
	msb := a[len(a)-1]
	for i := len(a); i < width; i++ {
		out[i] = msb
	}
	return out
}

// ZeroExtend widens a bus to width with constant zeros.
func (c *Ctx) ZeroExtend(a Bus, width int) Bus {
	out := make(Bus, width)
	copy(out, a)
	for i := len(a); i < width; i++ {
		out[i] = c.B.Const0()
	}
	return out
}

// Reverse returns the bus with bit order reversed (pure wiring).
func Reverse(a Bus) Bus {
	out := make(Bus, len(a))
	for i := range a {
		out[i] = a[len(a)-1-i]
	}
	return out
}

// WireBus declares a bus of forward wires, driven later via DriveBus.
func (c *Ctx) WireBus(width int) Bus {
	out := make(Bus, width)
	for i := range out {
		out[i] = c.B.Wire()
	}
	return out
}

// DriveBus connects the drivers of a forward-declared wire bus.
func (c *Ctx) DriveBus(wires, src Bus) {
	if len(wires) != len(src) {
		panic(fmt.Sprintf("synth: wire bus width mismatch %d vs %d", len(wires), len(src)))
	}
	for i := range wires {
		c.B.DriveWire(wires[i], src[i])
	}
}

// RegBus builds a register: one DFF per bit.
func (c *Ctx) RegBus(d Bus) Bus {
	out := make(Bus, len(d))
	for i := range d {
		out[i] = c.B.DFF(d[i])
	}
	return out
}

// RegBusPlaceholder builds a register whose D inputs are connected later
// via ConnectRegBus, for feedback structures.
func (c *Ctx) RegBusPlaceholder(width int) Bus {
	out := make(Bus, width)
	for i := range out {
		out[i] = c.B.DFFPlaceholder()
	}
	return out
}

// ConnectRegBus wires the D inputs of a placeholder register.
func (c *Ctx) ConnectRegBus(reg, d Bus) {
	if len(reg) != len(d) {
		panic(fmt.Sprintf("synth: register width mismatch %d vs %d", len(reg), len(d)))
	}
	for i := range reg {
		c.B.ConnectD(reg[i], d[i])
	}
}
