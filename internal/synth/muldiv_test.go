package synth

import (
	"math/rand"
	"testing"
)

func buildMulDivHarness(t *testing.T, lib Library) *harness {
	c := NewCtx("muld", lib)
	a := c.B.InputBus("a", 32)
	d := c.B.InputBus("b", 32)
	start := c.B.Input("start")
	isDiv := c.B.Input("isdiv")
	isSigned := c.B.Input("issigned")
	setHi := c.B.Input("sethi")
	setLo := c.B.Input("setlo")
	u := c.MulDiv(Bus(a), Bus(d), start, isDiv, isSigned, setHi, setLo)
	c.B.OutputBus("hi", u.Hi)
	c.B.OutputBus("lo", u.Lo)
	c.B.Output("busy", u.Busy)
	return newHarness(t, c)
}

// runOp drives one mul/div operation to completion and returns (hi, lo).
func runOp(t *testing.T, h *harness, a, b uint32, isDiv, isSigned bool) (uint32, uint32) {
	t.Helper()
	h.set("a", uint64(a))
	h.set("b", uint64(b))
	h.set("isdiv", b2u(isDiv))
	h.set("issigned", b2u(isSigned))
	h.set("start", 1)
	h.step()
	h.set("start", 0)
	cycles := 0
	for {
		h.eval()
		if h.get("busy") == 0 {
			break
		}
		h.step()
		cycles++
		if cycles > MulDivBusyCycles+2 {
			t.Fatalf("muldiv did not finish within %d cycles", cycles)
		}
	}
	if cycles != MulDivBusyCycles {
		t.Fatalf("muldiv busy for %d cycles, want %d", cycles, MulDivBusyCycles)
	}
	return uint32(h.get("hi")), uint32(h.get("lo"))
}

func TestMulDivDirected(t *testing.T) {
	forEachLib(t, func(t *testing.T, lib Library) {
		h := buildMulDivHarness(t, lib)
		h.reset()
		h.set("sethi", 0)
		h.set("setlo", 0)
		cases := []struct {
			a, b            uint32
			isDiv, isSigned bool
		}{
			{6, 7, false, false},
			{6, 7, false, true},
			{0xFFFFFFFF, 0xFFFFFFFF, false, false}, // max unsigned product
			{0xFFFFFFFF, 0xFFFFFFFF, false, true},  // (-1) * (-1)
			{0x80000000, 0xFFFFFFFF, false, true},  // INT_MIN * -1
			{0x80000000, 2, false, true},
			{0, 12345, false, true},
			{100, 7, true, false},
			{100, 7, true, true},
			{0xFFFFFF9C, 7, true, true},          // -100 / 7
			{100, 0xFFFFFFF9, true, true},        // 100 / -7
			{0xFFFFFF9C, 0xFFFFFFF9, true, true}, // -100 / -7
			{0x80000000, 0xFFFFFFFF, true, true}, // INT_MIN / -1
			{7, 100, true, false},
			{0, 5, true, true},
			{0xFFFFFFFF, 1, true, false},
			{12345, 0, true, false},     // divide by zero, unsigned
			{12345, 0, true, true},      // divide by zero, positive dividend
			{0xFFFFCFC7, 0, true, true}, // divide by zero, negative dividend
		}
		for _, tc := range cases {
			wantHi, wantLo := MulDivRef(tc.a, tc.b, tc.isDiv, tc.isSigned)
			hi, lo := runOp(t, h, tc.a, tc.b, tc.isDiv, tc.isSigned)
			if hi != wantHi || lo != wantLo {
				t.Errorf("a=%#x b=%#x div=%v signed=%v: got hi=%#x lo=%#x, want hi=%#x lo=%#x",
					tc.a, tc.b, tc.isDiv, tc.isSigned, hi, lo, wantHi, wantLo)
			}
		}
	})
}

func TestMulDivRandom(t *testing.T) {
	h := buildMulDivHarness(t, NativeLib{})
	h.reset()
	h.set("sethi", 0)
	h.set("setlo", 0)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 60; i++ {
		a, b := rng.Uint32(), rng.Uint32()
		isDiv := rng.Intn(2) == 1
		isSigned := rng.Intn(2) == 1
		wantHi, wantLo := MulDivRef(a, b, isDiv, isSigned)
		hi, lo := runOp(t, h, a, b, isDiv, isSigned)
		if hi != wantHi || lo != wantLo {
			t.Fatalf("a=%#x b=%#x div=%v signed=%v: got hi=%#x lo=%#x, want hi=%#x lo=%#x",
				a, b, isDiv, isSigned, hi, lo, wantHi, wantLo)
		}
	}
}

func TestMulDivMTHIMTLO(t *testing.T) {
	h := buildMulDivHarness(t, NativeLib{})
	h.reset()
	h.set("start", 0)
	h.set("isdiv", 0)
	h.set("issigned", 0)
	h.set("a", 0xCAFEBABE)
	h.set("sethi", 1)
	h.set("setlo", 0)
	h.step()
	h.set("a", 0x12345678)
	h.set("sethi", 0)
	h.set("setlo", 1)
	h.step()
	h.set("setlo", 0)
	h.eval()
	if got := uint32(h.get("hi")); got != 0xCAFEBABE {
		t.Errorf("hi after MTHI = %#x, want 0xcafebabe", got)
	}
	if got := uint32(h.get("lo")); got != 0x12345678 {
		t.Errorf("lo after MTLO = %#x, want 0x12345678", got)
	}
	if got := h.get("busy"); got != 0 {
		t.Errorf("busy after MTHI/MTLO = %d, want 0", got)
	}
}

func TestMulDivRefAgainstGoArithmetic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		a, b := rng.Uint32(), rng.Uint32()
		if b == 0 {
			continue
		}
		hi, lo := MulDivRef(a, b, false, false)
		p := uint64(a) * uint64(b)
		if hi != uint32(p>>32) || lo != uint32(p) {
			t.Fatalf("multu ref broken for %d * %d", a, b)
		}
		hi, lo = MulDivRef(a, b, false, true)
		sp := int64(int32(a)) * int64(int32(b))
		if hi != uint32(uint64(sp)>>32) || lo != uint32(uint64(sp)) {
			t.Fatalf("mult ref broken for %d * %d", int32(a), int32(b))
		}
		hi, lo = MulDivRef(a, b, true, false)
		if lo != a/b || hi != a%b {
			t.Fatalf("divu ref broken for %d / %d", a, b)
		}
		if !(a == 0x80000000 && b == 0xFFFFFFFF) {
			hi, lo = MulDivRef(a, b, true, true)
			if int32(lo) != int32(a)/int32(b) || int32(hi) != int32(a)%int32(b) {
				t.Fatalf("div ref broken for %d / %d", int32(a), int32(b))
			}
		}
	}
}
