package synth

import "repro/internal/gate"

// ALU operation encodings, shared by the gate-level ALU, the Plasma control
// decoder, and the instruction-set simulator.
const (
	ALUAdd  = 0
	ALUSub  = 1
	ALUAnd  = 2
	ALUOr   = 3
	ALUXor  = 4
	ALUNor  = 5
	ALUSlt  = 6
	ALUSltu = 7

	// ALUOpWidth is the width of the ALU operation select bus.
	ALUOpWidth = 3
)

// ALURef is the software reference for the gate-level ALU, used by the ISS
// and by tests.
func ALURef(op int, a, b uint32) uint32 {
	switch op {
	case ALUAdd:
		return a + b
	case ALUSub:
		return a - b
	case ALUAnd:
		return a & b
	case ALUOr:
		return a | b
	case ALUXor:
		return a ^ b
	case ALUNor:
		return ^(a | b)
	case ALUSlt:
		if int32(a) < int32(b) {
			return 1
		}
		return 0
	case ALUSltu:
		if a < b {
			return 1
		}
		return 0
	}
	panic("synth: bad ALU op")
}

// ALU builds the arithmetic-logic unit: a 32-bit ripple-carry
// adder/subtractor shared with the set-on-less-than comparisons, plus a
// four-function logic unit and a one-hot result selector. op follows the
// ALU* encodings above. ALUArch selects a different adder architecture.
func (c *Ctx) ALU(a, d Bus, op Bus) Bus {
	return c.ALUArch(a, d, op, func(c *Ctx, a, d Bus, sub gate.Sig) (Bus, gate.Sig) {
		return c.AddSub(a, d, sub)
	})
}
