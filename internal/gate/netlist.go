package gate

import (
	"fmt"
	"sort"
)

// Sig identifies a signal in a netlist: the index of the gate driving it.
type Sig int32

// NoSig is the zero-like sentinel for an unconnected signal.
const NoSig Sig = -1

// Gate is one cell instance. In holds the driven signal for each connected
// input pin (see Kind.NumInputs); unused pins are NoSig. Comp tags the gate
// with the RT-level component it belongs to, for per-component gate counts
// and fault coverage.
type Gate struct {
	Kind Kind
	In   [3]Sig
	Comp CompID
}

// CompID identifies an RT-level component region within a netlist.
type CompID int16

// GlueComp is the default component for gates created outside any explicit
// component region ("glue logic" in the paper's terminology).
const GlueComp CompID = 0

// Netlist is a flat gate-level circuit with named primary inputs and
// outputs. Gates are stored in creation order; signal i is driven by
// Gates[i].
type Netlist struct {
	Name  string
	Gates []Gate

	// CompNames maps CompID to the component name. Index 0 is glue.
	CompNames []string

	inputs  []portDef
	outputs []portDef

	inputByName map[string]int
}

type portDef struct {
	name string
	sigs []Sig
}

// NewNetlist returns an empty netlist with the glue component predefined.
func NewNetlist(name string) *Netlist {
	return &Netlist{
		Name:        name,
		CompNames:   []string{"GL"},
		inputByName: make(map[string]int),
	}
}

// AddComponent registers a new component region and returns its id.
func (n *Netlist) AddComponent(name string) CompID {
	n.CompNames = append(n.CompNames, name)
	return CompID(len(n.CompNames) - 1)
}

// NumSignals reports the number of signals (== number of gates).
func (n *Netlist) NumSignals() int { return len(n.Gates) }

// add appends a gate and returns the signal it drives.
func (n *Netlist) add(g Gate) Sig {
	n.Gates = append(n.Gates, g)
	return Sig(len(n.Gates) - 1)
}

// AddInputBus declares a named primary input bus of the given width and
// returns its signals, least-significant bit first.
func (n *Netlist) AddInputBus(name string, width int, comp CompID) []Sig {
	if _, dup := n.inputByName[name]; dup {
		panic(fmt.Sprintf("gate: duplicate input bus %q", name))
	}
	sigs := make([]Sig, width)
	for i := range sigs {
		sigs[i] = n.add(Gate{Kind: Input, In: [3]Sig{NoSig, NoSig, NoSig}, Comp: comp})
	}
	n.inputByName[name] = len(n.inputs)
	n.inputs = append(n.inputs, portDef{name: name, sigs: sigs})
	return sigs
}

// AddOutputBus declares a named primary output bus driven by sigs
// (least-significant bit first).
func (n *Netlist) AddOutputBus(name string, sigs []Sig) {
	cp := make([]Sig, len(sigs))
	copy(cp, sigs)
	n.outputs = append(n.outputs, portDef{name: name, sigs: cp})
}

// InputBus returns the signals of a declared input bus.
func (n *Netlist) InputBus(name string) []Sig {
	i, ok := n.inputByName[name]
	if !ok {
		panic(fmt.Sprintf("gate: unknown input bus %q", name))
	}
	return n.inputs[i].sigs
}

// OutputBus returns the signals of a declared output bus.
func (n *Netlist) OutputBus(name string) []Sig {
	for _, p := range n.outputs {
		if p.name == name {
			return p.sigs
		}
	}
	panic(fmt.Sprintf("gate: unknown output bus %q", name))
}

// InputNames lists the declared input buses in declaration order.
func (n *Netlist) InputNames() []string {
	names := make([]string, len(n.inputs))
	for i, p := range n.inputs {
		names[i] = p.name
	}
	return names
}

// OutputNames lists the declared output buses in declaration order.
func (n *Netlist) OutputNames() []string {
	names := make([]string, len(n.outputs))
	for i, p := range n.outputs {
		names[i] = p.name
	}
	return names
}

// ObservedSignals returns every signal referenced by an output bus, in a
// stable order with duplicates removed. These are the primary outputs used
// as fault-observation points.
func (n *Netlist) ObservedSignals() []Sig {
	seen := make(map[Sig]bool)
	var sigs []Sig
	for _, p := range n.outputs {
		for _, s := range p.sigs {
			if !seen[s] {
				seen[s] = true
				sigs = append(sigs, s)
			}
		}
	}
	return sigs
}

// DFFSignals returns every flip-flop signal in creation order. This is the
// canonical ordering for DFF state snapshots (see Sim.StateBits/LoadState).
func (n *Netlist) DFFSignals() []Sig {
	var sigs []Sig
	for i := range n.Gates {
		if n.Gates[i].Kind == DFF {
			sigs = append(sigs, Sig(i))
		}
	}
	return sigs
}

// GateCount reports the netlist area in NAND2 equivalents, per component and
// in total. The per-component slice is indexed by CompID.
func (n *Netlist) GateCount() (perComp []float64, total float64) {
	perComp = make([]float64, len(n.CompNames))
	for _, g := range n.Gates {
		a := g.Kind.NAND2Equivalents()
		perComp[g.Comp] += a
		total += a
	}
	return perComp, total
}

// CellCount reports the number of cell instances per kind (excluding
// Input/Const pseudo-cells when countPseudo is false).
func (n *Netlist) CellCount(countPseudo bool) map[Kind]int {
	m := make(map[Kind]int)
	for _, g := range n.Gates {
		if !countPseudo && (g.Kind == Input || g.Kind == Const0 || g.Kind == Const1) {
			continue
		}
		m[g.Kind]++
	}
	return m
}

// Validate checks structural sanity: every connected input pin references an
// existing signal, arity matches the kind, and the combinational part is
// acyclic. It returns a descriptive error for the first problem found.
func (n *Netlist) Validate() error {
	for i, g := range n.Gates {
		want := g.Kind.NumInputs()
		for p := 0; p < 3; p++ {
			in := g.In[p]
			if p < want {
				if in < 0 || int(in) >= len(n.Gates) {
					return fmt.Errorf("gate %d (%s): input pin %d references invalid signal %d", i, g.Kind, p, in)
				}
			} else if in != NoSig {
				return fmt.Errorf("gate %d (%s): input pin %d connected but kind has arity %d", i, g.Kind, p, want)
			}
		}
		if int(g.Comp) >= len(n.CompNames) || g.Comp < 0 {
			return fmt.Errorf("gate %d (%s): invalid component id %d", i, g.Kind, g.Comp)
		}
	}
	if _, err := n.levelize(); err != nil {
		return err
	}
	return nil
}

// levelize returns a topological evaluation order for the combinational
// gates. Input, Const and DFF outputs are sources and are excluded from the
// order. It fails if the combinational logic contains a cycle.
func (n *Netlist) levelize() ([]Sig, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make([]uint8, len(n.Gates))
	order := make([]Sig, 0, len(n.Gates))

	isSource := func(k Kind) bool {
		return k == Input || k == Const0 || k == Const1 || k == DFF
	}

	// Iterative DFS to avoid deep recursion on long logic chains
	// (e.g. 32-bit ripple carry inside a 17k-gate netlist).
	type frame struct {
		sig Sig
		pin int
	}
	var stack []frame
	for root := range n.Gates {
		if state[root] != unvisited || isSource(n.Gates[root].Kind) {
			state[root] = done
			continue
		}
		stack = append(stack[:0], frame{Sig(root), 0})
		state[root] = visiting
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			g := &n.Gates[f.sig]
			if f.pin < g.Kind.NumInputs() {
				in := g.In[f.pin]
				f.pin++
				if isSource(n.Gates[in].Kind) || state[in] == done {
					continue
				}
				if state[in] == visiting {
					return nil, fmt.Errorf("gate: combinational cycle through signal %d (%s)", in, n.Gates[in].Kind)
				}
				state[in] = visiting
				stack = append(stack, frame{in, 0})
				continue
			}
			state[f.sig] = done
			order = append(order, f.sig)
			stack = stack[:len(stack)-1]
		}
	}
	return order, nil
}

// Stats summarizes a netlist for reports.
type Stats struct {
	Signals int
	DFFs    int
	Area    float64 // NAND2 equivalents
	Levels  int     // combinational depth
}

// Stats computes summary statistics. Depth is the longest combinational
// path measured in cells.
func (n *Netlist) Stats() Stats {
	var st Stats
	st.Signals = len(n.Gates)
	_, st.Area = n.GateCount()
	depth := make([]int, len(n.Gates))
	order, err := n.levelize()
	if err != nil {
		st.Levels = -1
		return st
	}
	for _, g := range n.Gates {
		if g.Kind == DFF {
			st.DFFs++
		}
	}
	max := 0
	for _, s := range order {
		g := &n.Gates[s]
		d := 0
		for p := 0; p < g.Kind.NumInputs(); p++ {
			if dd := depth[g.In[p]] + 1; dd > d {
				d = dd
			}
		}
		depth[s] = d
		if d > max {
			max = d
		}
	}
	st.Levels = max
	return st
}

// ComponentOf returns the component name a signal belongs to.
func (n *Netlist) ComponentOf(s Sig) string {
	return n.CompNames[n.Gates[s].Comp]
}

// SortedComponentNames returns component names sorted alphabetically,
// useful for deterministic report iteration.
func (n *Netlist) SortedComponentNames() []string {
	names := append([]string(nil), n.CompNames...)
	sort.Strings(names)
	return names
}
