package gate

import (
	"fmt"
	"math"
)

// MaxLaneWords is the widest supported lane word: 64 uint64 words per
// signal, i.e. up to 4096 independent machines per simulation.
const MaxLaneWords = 64

// FaultSite identifies a single stuck-at fault location: a pin of a gate.
// Pin 0 is the gate output (equivalently the stem of the driven signal);
// pins 1..3 are the gate's input pins 0..2 (fanout-branch faults).
type FaultSite struct {
	Gate  Sig
	Pin   int8
	Stuck bool // true: stuck-at-1, false: stuck-at-0
}

func (f FaultSite) String() string {
	v := 0
	if f.Stuck {
		v = 1
	}
	if f.Pin == 0 {
		return fmt.Sprintf("g%d/out s-a-%d", f.Gate, v)
	}
	return fmt.Sprintf("g%d/in%d s-a-%d", f.Gate, f.Pin-1, v)
}

// LaneFault assigns a fault site to one of the simulator's lanes
// (64*LaneWords lanes; lane L lives in bit L%64 of lane word L/64).
type LaneFault struct {
	Site FaultSite
	Lane int
}

// laneInject is the compiled per-gate injection record. The injection is
// confined to a single bit of a single lane word, so faults in different
// lanes never interact regardless of the simulator width.
type laneInject struct {
	pin   int8
	word  int32  // which lane word of the signal carries this fault
	mask  uint64 // 1 bit set: the lane carrying this fault
	stuck uint64 // mask when stuck-at-1, 0 when stuck-at-0
}

// patchEntry is one injected lane word of a hooked gate with every armed
// injection merged per operand: apply in to pin p means
// v = v&^pMask | pStuck. Lane masks of distinct faults never overlap (one
// site occupies one lane), so OR-merging is exact.
type patchEntry struct {
	word             int32
	in               bool // any armed input-pin injection in this word
	aMask, aStuck    uint64
	bMask, bStuck    uint64
	cMask, cStuck    uint64
	outMask, outStuck uint64
}

// Sim is a cycle-accurate, bit-parallel simulator over a fixed netlist.
// Each signal carries W lane words of 64 bits (W a power of two up to
// MaxLaneWords): one independent machine per bit lane, up to 4096
// machines at W=64. Lanes are used either for test patterns
// (combinational characterization, W=1) or faulty machines (fault
// simulation, any W).
//
// A Step evaluates all combinational logic from the current inputs and DFF
// outputs, then latches every DFF. Faults registered via SetFaults are
// injected only into their assigned lane.
type Sim struct {
	n     *Netlist
	order []Sig
	w     int // lane words per signal

	val   []uint64 // current signal values, signal s at [s*w : s*w+w]
	state []uint64 // DFF latched state (and raw driven value for Input gates)

	hookIdx []int32 // per signal: -1 or index into hooks
	hooks   [][]laneInject
	hooked  []Sig // signals that currently have hooks, for cheap clearing

	// patch is the compiled form of hooks, rebuilt whenever a hook set
	// changes (SetFaults, ReplaceFaults, DropLaneFaults): per hooked gate,
	// one entry per distinct injected lane word with the pin injections
	// merged into per-operand masks. Hooked gates are re-patched on every
	// evaluation — they are the permanently dirty gates of the event
	// engine — so the per-cycle patch must not re-derive this from the
	// raw injection list (a quadratic loop over hooks per injected word);
	// compiling once per hook-set change amortizes it to O(injected words)
	// per evaluation.
	patch [][]patchEntry
	// hookedDFFs lists the flip-flops carrying a D-pin injection record
	// (armed or disarmed): the ones latchEvent must clock every cycle
	// because the injection changes their latched value without any
	// D-input event. Scanning this instead of the whole hooked list keeps
	// the per-Latch overhead proportional to the D-pin fault sites.
	hookedDFFs []Sig

	// uni marks signals whose lane words are all equal (every machine
	// agrees). In a fault pass most switching activity is the golden
	// machine's own, identical in every lane, so the event sweeps evaluate
	// all-uniform-input gates over a single scalar word and broadcast on
	// change instead of running the full-width kernels. Advisory and
	// conservative: val always holds the true words; uni is set only on
	// writes that are provably uniform (and by the equality fold of the
	// full path, so uniformity recovers after divergent lanes conform).
	uni []bool

	// Scratch lane words: ta for D-pin hook application in latchOne, tout
	// for source presentation and event-mode output compare.
	ta, tout [MaxLaneWords]uint64

	inc *incState // non-nil: event-driven incremental evaluation (event.go)

	// Compiled kernel plan (batch.go, tier.go), resolved once at
	// construction for the SIMD widths (w >= 8) so the steady-state eval
	// loop carries no per-gate kind/width/tier branching: tier is the
	// captured kernel backend, kern/comp its per-kind batch and
	// raw-compute kernel tables at this width (nil on the generic tier),
	// goKern the width-bound Go run kernel, and rg the per-signal operand
	// lane-word offsets every batched path reads instead of re-deriving
	// them gate by gate (unused operands stay offset 0 — an in-bounds
	// dead load, never a branch). batch holds the per-kind pending runs
	// of the current sweep level, obl the oblivious level plan (also
	// compiled at construction for w >= 8), kstats the dispatch counters.
	tier   simdTier
	kern   *[numKinds]batchKernel
	comp   *[numKinds]compKernel
	goKern func(val []uint64, kind Kind, gates []runGate, flags []uint8)
	rg     []runGate
	batch  [numKinds]batchList
	obl    *oblPlan
	kstats KernelStats
}

// NewSim compiles a netlist into a width-1 (64-lane) simulator. The
// netlist must validate.
func NewSim(n *Netlist) (*Sim, error) { return NewSimWidth(n, 1) }

// NewSimWidth compiles a netlist into a simulator carrying w lane words
// (64*w lanes) per signal. w must be a power of two in [1, MaxLaneWords].
func NewSimWidth(n *Netlist, w int) (*Sim, error) {
	if w < 1 || w > MaxLaneWords || w&(w-1) != 0 {
		return nil, fmt.Errorf("gate: lane words must be a power of two in [1,%d]; got %d", MaxLaneWords, w)
	}
	if int64(len(n.Gates))*int64(w) > math.MaxInt32 {
		// runGate addresses lane words with int32 offsets (batch.go).
		return nil, fmt.Errorf("gate: netlist too large for %d lane words (%d gates)", w, len(n.Gates))
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	order, err := n.levelize()
	if err != nil {
		return nil, err
	}
	s := &Sim{
		n:       n,
		order:   order,
		w:       w,
		val:     make([]uint64, len(n.Gates)*w),
		state:   make([]uint64, len(n.Gates)*w),
		hookIdx: make([]int32, len(n.Gates)),
		hooks:   make([][]laneInject, 0, 64),
		uni:     make([]bool, len(n.Gates)),
		tier:    activeTier(),
	}
	for i := range s.hookIdx {
		s.hookIdx[i] = -1
	}
	if w >= 8 {
		// Compile the kernel plan: resolve the dispatch tables for the
		// captured (tier, width) and precompute every gate's operand
		// offsets, so evaluation is a flat walk over resolved kernel
		// calls.
		wi := widthIdx(w)
		s.goKern = goBatchKernels[wi]
		s.kern = archBatchKernels(s.tier, wi)
		s.comp = archCompKernels(s.tier, wi)
		s.rg = compileRunGates(n, w)
		s.obl = s.buildOblivPlan()
	}
	return s, nil
}

// compileRunGates precomputes each signal's runGate record: lane-word
// offsets of the output and (up to three) input operands. Source kinds
// (Input/Const/DFF) get a record too — only dst is meaningful there —
// so indexing by signal is uniform. Unused operand slots stay 0: the
// scalar gathers read val[0] harmlessly and the kernels never touch
// them.
func compileRunGates(n *Netlist, w int) []runGate {
	rg := make([]runGate, len(n.Gates))
	w32 := int32(w)
	for i := range n.Gates {
		g := &n.Gates[i]
		r := &rg[i]
		r.dst = int32(i) * w32
		switch g.Kind.NumInputs() {
		case 3:
			r.c = int32(g.In[2]) * w32
			fallthrough
		case 2:
			r.b = int32(g.In[1]) * w32
			fallthrough
		case 1:
			r.a = int32(g.In[0]) * w32
		}
	}
	return rg
}

// Netlist returns the compiled netlist.
func (s *Sim) Netlist() *Netlist { return s.n }

// LaneWords reports the number of 64-bit lane words per signal.
func (s *Sim) LaneWords() int { return s.w }

// Lanes reports the number of independent machine lanes (64 * LaneWords).
func (s *Sim) Lanes() int { return 64 * s.w }

// CombGates reports the number of combinational gates: the per-Eval gate
// evaluation cost of the oblivious engine.
func (s *Sim) CombGates() int { return len(s.order) }

// Reset clears all flip-flop state and signal values.
func (s *Sim) Reset() {
	for i := range s.state {
		s.state[i] = 0
		s.val[i] = 0
	}
	if s.inc != nil {
		s.inc.allDirty = true
		s.inc.latchAll = true
	}
}

// SetFaults installs the given lane faults, replacing any previous set.
// Lanes must be in [0, 64*LaneWords).
func (s *Sim) SetFaults(faults []LaneFault) {
	s.ClearFaults()
	for _, lf := range faults {
		s.installFault(lf)
	}
	s.compileHooks()
	s.invalidate()
}

// compileHooks rebuilds every hooked gate's patch entries and the
// D-pin-hooked flip-flop list after a wholesale hook-set change.
func (s *Sim) compileHooks() {
	s.hookedDFFs = s.hookedDFFs[:0]
	for _, g := range s.hooked {
		h := s.hookIdx[g]
		s.compileHook(h)
		if s.n.Gates[g].Kind == DFF && hasPinInject(s.hooks[h]) {
			s.hookedDFFs = append(s.hookedDFFs, g)
		}
	}
}

// hasPinInject reports whether the list carries an input-pin injection
// record, armed or disarmed. Disarmed records count: a flip-flop whose
// D-pin injection was just disarmed still needs its always-latch until the
// next wholesale hook change, so the clean D value gets recaptured.
func hasPinInject(hooks []laneInject) bool {
	for i := range hooks {
		if hooks[i].pin != 0 {
			return true
		}
	}
	return false
}

// compileHook rebuilds one gate's patch entries from its raw injection
// list, merging armed injections per (word, pin) and dropping disarmed
// ones.
func (s *Sim) compileHook(h int32) {
	entries := s.patch[h][:0]
	for _, inj := range s.hooks[h] {
		if inj.mask == 0 {
			continue // disarmed by DropLaneFaults
		}
		var pe *patchEntry
		for i := range entries {
			if entries[i].word == inj.word {
				pe = &entries[i]
				break
			}
		}
		if pe == nil {
			entries = append(entries, patchEntry{word: inj.word})
			pe = &entries[len(entries)-1]
		}
		switch inj.pin {
		case 0:
			pe.outMask |= inj.mask
			pe.outStuck |= inj.stuck
		case 1:
			pe.in = true
			pe.aMask |= inj.mask
			pe.aStuck |= inj.stuck
		case 2:
			pe.in = true
			pe.bMask |= inj.mask
			pe.bStuck |= inj.stuck
		case 3:
			pe.in = true
			pe.cMask |= inj.mask
			pe.cStuck |= inj.stuck
		}
	}
	s.patch[h] = entries
}

// installFault compiles one lane fault into its gate's hook list, creating
// the hook entry on first use.
func (s *Sim) installFault(lf LaneFault) {
	if lf.Lane < 0 || lf.Lane >= 64*s.w {
		panic(fmt.Sprintf("gate: lane %d out of range [0,%d)", lf.Lane, 64*s.w))
	}
	g := lf.Site.Gate
	if g < 0 || int(g) >= len(s.n.Gates) {
		panic(fmt.Sprintf("gate: fault site gate %d out of range", g))
	}
	inj := laneInject{
		pin:  lf.Site.Pin,
		word: int32(lf.Lane >> 6),
		mask: 1 << uint(lf.Lane&63),
	}
	if lf.Site.Stuck {
		inj.stuck = inj.mask
	}
	if s.hookIdx[g] < 0 {
		s.hookIdx[g] = int32(len(s.hooks))
		s.hooks = append(s.hooks, nil)
		s.patch = append(s.patch, nil)
		s.hooked = append(s.hooked, g)
	}
	h := s.hookIdx[g]
	s.hooks[h] = append(s.hooks[h], inj)
}

// ReplaceFaults swaps the installed fault set for a new one by diffing
// hook sets instead of tearing everything down: where SetFaults marks the
// whole simulator dirty (one oblivious sweep on the next Eval),
// ReplaceFaults empties the current hook lists in place, installs the new
// injections, and only marks the union of old and new hooked gates for
// re-evaluation. Gates that lose every hook are revisited once by the next
// Eval — releasing their stale injected values — and then pruned from the
// hooked set. On an oblivious simulator, or an event simulator that is
// already fully dirty, it is identical to SetFaults.
func (s *Sim) ReplaceFaults(faults []LaneFault) {
	if s.inc == nil || s.inc.allDirty {
		s.SetFaults(faults)
		return
	}
	inc := s.inc
	for _, g := range s.hooked {
		h := s.hookIdx[g]
		if s.n.Gates[g].Kind == DFF {
			// A D-pin injection lives in the flip-flop's latched state, not
			// its hook-applied output; removing it silently would leave the
			// injected bit latched until the next genuine D event. Pend the
			// flip-flop so the next Latch recaptures its clean D value.
			for _, inj := range s.hooks[h] {
				if inj.pin != 0 {
					if !inc.dffPendSet[g] {
						inc.dffPendSet[g] = true
						inc.dffPending = append(inc.dffPending, g)
					}
					break
				}
			}
		}
		s.hooks[h] = s.hooks[h][:0]
	}
	for _, lf := range faults {
		s.installFault(lf)
	}
	s.compileHooks()
	inc.hooksDirty = true
}

// pruneHooks compacts away hooked-gate entries whose hook list is empty
// (every injection removed by ReplaceFaults). Only called after the
// emptied gates were re-presented or re-queued by the hooksDirty prologue,
// so their stale injected values are already released. Compaction keeps
// the hookIdx[hooked[i]] == i layout the hook machinery relies on.
func (s *Sim) pruneHooks() {
	kept := 0
	for _, g := range s.hooked {
		h := s.hookIdx[g]
		if len(s.hooks[h]) == 0 {
			s.hookIdx[g] = -1
			continue
		}
		s.hooks[kept] = s.hooks[h]
		s.patch[kept] = s.patch[h]
		s.hooked[kept] = g
		s.hookIdx[g] = int32(kept)
		kept++
	}
	s.hooked = s.hooked[:kept]
	s.hooks = s.hooks[:kept]
	s.patch = s.patch[:kept]
}

// ClearFaults removes all installed faults.
func (s *Sim) ClearFaults() {
	for _, g := range s.hooked {
		s.hookIdx[g] = -1
	}
	s.hooked = s.hooked[:0]
	s.hooks = s.hooks[:0]
	s.patch = s.patch[:0]
	s.hookedDFFs = s.hookedDFFs[:0]
	s.invalidate()
}

// driveInput stores the raw driven lane words of a primary input (in
// state, so fault injections stay reversible), presents its hooked value,
// and in event-driven mode schedules consumers on change. The same word
// is broadcast into every lane word.
func (s *Sim) driveInput(sig Sig, word uint64) {
	w := s.w
	o := int(sig) * w
	st := s.state[o : o+w]
	for k := range st {
		st[k] = word
	}
	v := st
	if h := s.hookIdx[sig]; h >= 0 {
		t := s.tout[:w]
		copy(t, st)
		s.applyHooks(h, 0, t)
		v = t
	}
	cur := s.val[o : o+w]
	if wordsEqual(cur, v) {
		return
	}
	copy(cur, v)
	s.uni[sig] = allEqual(v)
	if s.inc != nil && !s.inc.allDirty {
		s.inc.events++
		s.propagate(sig)
	}
}

// wordsEqual compares two equal-length lane-word slices.
func wordsEqual(a, b []uint64) bool {
	for k := range a {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

// allEqual reports whether every lane word of a signal value agrees.
func allEqual(v []uint64) bool {
	u := v[0]
	for _, x := range v[1:] {
		if x != u {
			return false
		}
	}
	return true
}

// SetBusUniform drives an input bus with the same value in every lane.
// Bit i of value drives signal i of the bus (all-zeros/all-ones words).
func (s *Sim) SetBusUniform(name string, value uint64) {
	sigs := s.n.InputBus(name)
	for i, sig := range sigs {
		var w uint64
		if value>>uint(i)&1 != 0 {
			w = ^uint64(0)
		}
		s.driveInput(sig, w)
	}
}

// SetBusWords drives an input bus with per-lane values for the first 64
// lanes: words[i] is lane word 0 for bit i of the bus. Lane words past the
// first are cleared (only meaningful on width-1 simulators, where this
// drives all lanes).
func (s *Sim) SetBusWords(name string, words []uint64) {
	sigs := s.n.InputBus(name)
	if len(words) != len(sigs) {
		panic(fmt.Sprintf("gate: SetBusWords(%q): got %d words, bus width %d", name, len(words), len(sigs)))
	}
	w := s.w
	for i, sig := range sigs {
		o := int(sig) * w
		st := s.state[o : o+w]
		st[0] = words[i]
		for k := 1; k < w; k++ {
			st[k] = 0
		}
		v := st
		if h := s.hookIdx[sig]; h >= 0 {
			t := s.tout[:w]
			copy(t, st)
			s.applyHooks(h, 0, t)
			v = t
		}
		cur := s.val[o : o+w]
		if wordsEqual(cur, v) {
			continue
		}
		copy(cur, v)
		s.uni[sig] = allEqual(v)
		if s.inc != nil && !s.inc.allDirty {
			s.inc.events++
			s.propagate(sig)
		}
	}
}

// BusWords reads an output bus as per-bit lane-0 words into dst, which
// must have the bus width.
func (s *Sim) BusWords(name string, dst []uint64) {
	sigs := s.n.OutputBus(name)
	if len(dst) != len(sigs) {
		panic(fmt.Sprintf("gate: BusWords(%q): got %d words, bus width %d", name, len(dst), len(sigs)))
	}
	for i, sig := range sigs {
		dst[i] = s.val[int(sig)*s.w]
	}
}

// BusLane extracts the value of an output bus in a single lane
// (lane in [0, 64*LaneWords)).
func (s *Sim) BusLane(name string, lane int) uint64 {
	sigs := s.n.OutputBus(name)
	wi, bit := lane>>6, uint(lane&63)
	var v uint64
	for i, sig := range sigs {
		v |= (s.val[int(sig)*s.w+wi] >> bit & 1) << uint(i)
	}
	return v
}

// SigWord returns lane word 0 of a signal (observation capture; the only
// lane word on width-1 simulators).
func (s *Sim) SigWord(sig Sig) uint64 { return s.val[int(sig)*s.w] }

// SigWords returns the signal's full lane-word slice (read-only view into
// the simulator state; valid until the next mutation).
func (s *Sim) SigWords(sig Sig) []uint64 {
	o := int(sig) * s.w
	return s.val[o : o+s.w]
}

// applyHooks applies a hooked gate's fault injections for one pin (0 = the
// gate output, 1 = the first input — a flip-flop's D) to the lane words in
// v, from the compiled patch entries.
func (s *Sim) applyHooks(h int32, pin int8, v []uint64) {
	for i := range s.patch[h] {
		pe := &s.patch[h][i]
		switch pin {
		case 0:
			v[pe.word] = v[pe.word]&^pe.outMask | pe.outStuck
		case 1:
			v[pe.word] = v[pe.word]&^pe.aMask | pe.aStuck
		}
	}
}

// computeInto evaluates one combinational gate (with injection hooks) into
// dst, which must hold LaneWords words and may alias the signal's val
// slice (the combinational graph is acyclic, so dst never aliases an
// input).
func (s *Sim) computeInto(sig Sig, dst []uint64) {
	// Hot path at the wide widths: fixed-size array kernels carry no
	// bounds checks and unroll. Hooked gates (the permanently dirty fault
	// sites, re-evaluated every cycle in event mode) take the same kernels;
	// an injection is confined to one bit of one lane word, so patchHooks
	// repairs just the affected words afterwards instead of copying whole
	// operands through the scratch buffers.
	switch s.w {
	case 8:
		s.computeInto8(sig, (*[8]uint64)(dst))
	case 16:
		s.computeInto16(sig, (*[16]uint64)(dst))
	case 32:
		s.computeInto32(sig, (*[32]uint64)(dst))
	case 64:
		s.computeInto64(sig, (*[64]uint64)(dst))
	default:
		s.computeIntoGeneric(sig, dst)
	}
	if h := s.hookIdx[sig]; h >= 0 {
		s.patchHooks(sig, h, dst)
	}
}

// patchHooks repairs the injected words of a hooked gate's freshly
// computed output from the compiled patch entries: each word carrying an
// armed input-pin injection is recomputed once from its scalar pin values
// with the merged input masks applied, then output (pin 0) injections are
// masked into dst directly. One entry per injected word — the per-cycle
// cost no longer scales with the square of the gate's injection count.
func (s *Sim) patchHooks(sig Sig, h int32, dst []uint64) {
	g := &s.n.Gates[sig]
	w := s.w
	val := s.val
	for i := range s.patch[h] {
		pe := &s.patch[h][i]
		k := int(pe.word)
		if pe.in {
			var a, b, c uint64
			switch g.Kind.NumInputs() {
			case 3:
				c = val[int(g.In[2])*w+k]
				fallthrough
			case 2:
				b = val[int(g.In[1])*w+k]
				fallthrough
			case 1:
				a = val[int(g.In[0])*w+k]
			}
			a = a&^pe.aMask | pe.aStuck
			b = b&^pe.bMask | pe.bStuck
			c = c&^pe.cMask | pe.cStuck
			dst[k] = evalWord(g.Kind, a, b, c)
		}
		dst[k] = dst[k]&^pe.outMask | pe.outStuck
	}
}

// evalWord evaluates one combinational gate over a single lane word.
func evalWord(kind Kind, a, b, c uint64) uint64 {
	switch kind {
	case Buf:
		return a
	case Not:
		return ^a
	case And2:
		return a & b
	case Or2:
		return a | b
	case Nand2:
		return ^(a & b)
	case Nor2:
		return ^(a | b)
	case Xor2:
		return a ^ b
	case Xnor2:
		return ^(a ^ b)
	case Mux2:
		return a&^c | b&c
	}
	panic(fmt.Sprintf("gate: unexpected kind %s in eval order", kind))
}

// computeIntoGeneric is the any-width fallback evaluation.
func (s *Sim) computeIntoGeneric(sig Sig, dst []uint64) {
	g := &s.n.Gates[sig]
	w := s.w
	val := s.val
	var a, b, c []uint64
	switch g.Kind.NumInputs() {
	case 1:
		o := int(g.In[0]) * w
		a = val[o : o+w]
	case 2:
		o0, o1 := int(g.In[0])*w, int(g.In[1])*w
		a, b = val[o0:o0+w], val[o1:o1+w]
	case 3:
		o0, o1, o2 := int(g.In[0])*w, int(g.In[1])*w, int(g.In[2])*w
		a, b, c = val[o0:o0+w], val[o1:o1+w], val[o2:o2+w]
	}
	switch g.Kind {
	case Buf:
		copy(dst, a)
	case Not:
		for k := range dst {
			dst[k] = ^a[k]
		}
	case And2:
		for k := range dst {
			dst[k] = a[k] & b[k]
		}
	case Or2:
		for k := range dst {
			dst[k] = a[k] | b[k]
		}
	case Nand2:
		for k := range dst {
			dst[k] = ^(a[k] & b[k])
		}
	case Nor2:
		for k := range dst {
			dst[k] = ^(a[k] | b[k])
		}
	case Xor2:
		for k := range dst {
			dst[k] = a[k] ^ b[k]
		}
	case Xnor2:
		for k := range dst {
			dst[k] = ^(a[k] ^ b[k])
		}
	case Mux2:
		for k := range dst {
			dst[k] = a[k]&^c[k] | b[k]&c[k]
		}
	default:
		panic(fmt.Sprintf("gate: unexpected kind %s in eval order", g.Kind))
	}
}

// Eval evaluates combinational logic from the current primary inputs and
// flip-flop state without latching. Primary outputs are valid afterwards.
func (s *Sim) Eval() {
	if s.inc != nil {
		s.evalEvent()
		return
	}
	s.evalOblivious()
}

// evalOblivious re-evaluates every gate in topological order. At the
// SIMD widths the combinational levels run as contiguous same-kind
// batches (batch.go); narrower sims take the per-gate loop.
func (s *Sim) evalOblivious() {
	s.presentAllSources()
	if s.w >= 8 {
		s.evalLevelsBatched()
		return
	}
	val := s.val
	w := s.w
	for _, sig := range s.order {
		o := int(sig) * w
		s.computeInto(sig, val[o:o+w])
	}
}

// presentAllSources presents DFF state, constants, and driven inputs with
// output-fault injection, maintaining the uniformity index.
func (s *Sim) presentAllSources() {
	gates := s.n.Gates
	val := s.val
	w := s.w
	for i := range gates {
		k := gates[i].Kind
		if k != DFF && k != Const0 && k != Const1 && k != Input {
			continue
		}
		o := i * w
		dst := val[o : o+w]
		switch k {
		case DFF, Input:
			copy(dst, s.state[o:o+w]) // raw latched/driven value; see driveInput
		case Const0:
			for j := range dst {
				dst[j] = 0
			}
		case Const1:
			for j := range dst {
				dst[j] = ^uint64(0)
			}
		}
		if h := s.hookIdx[i]; h >= 0 {
			s.applyHooks(h, 0, dst)
		}
		s.uni[i] = allEqual(dst)
	}
}

// Latch clocks every DFF, capturing its (possibly fault-injected) D input.
func (s *Sim) Latch() {
	if s.inc != nil {
		s.latchEvent()
		return
	}
	gates := s.n.Gates
	for i := range gates {
		if gates[i].Kind == DFF {
			s.latchOne(Sig(i))
		}
	}
}

// latchOne clocks a single flip-flop, applying D-input injection hooks.
// In event-driven mode a changed flip-flop is marked for presentation.
func (s *Sim) latchOne(sig Sig) {
	w := s.w
	od := int(s.n.Gates[sig].In[0]) * w
	d := s.val[od : od+w]
	if h := s.hookIdx[sig]; h >= 0 {
		t := s.ta[:w]
		copy(t, d)
		s.applyHooks(h, 1, t)
		d = t
	}
	o := int(sig) * w
	st := s.state[o : o+w]
	if wordsEqual(st, d) {
		return
	}
	copy(st, d)
	if s.inc != nil {
		s.markDFFChanged(sig)
	}
}

// Step performs one full clock cycle: Eval then Latch.
func (s *Sim) Step() {
	s.Eval()
	s.Latch()
}
