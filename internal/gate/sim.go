package gate

import "fmt"

// FaultSite identifies a single stuck-at fault location: a pin of a gate.
// Pin 0 is the gate output (equivalently the stem of the driven signal);
// pins 1..3 are the gate's input pins 0..2 (fanout-branch faults).
type FaultSite struct {
	Gate  Sig
	Pin   int8
	Stuck bool // true: stuck-at-1, false: stuck-at-0
}

func (f FaultSite) String() string {
	v := 0
	if f.Stuck {
		v = 1
	}
	if f.Pin == 0 {
		return fmt.Sprintf("g%d/out s-a-%d", f.Gate, v)
	}
	return fmt.Sprintf("g%d/in%d s-a-%d", f.Gate, f.Pin-1, v)
}

// LaneFault assigns a fault site to one of the 64 simulation lanes.
type LaneFault struct {
	Site FaultSite
	Lane int
}

// laneInject is the compiled per-gate injection record.
type laneInject struct {
	pin   int8
	mask  uint64 // 1 bit set: the lane carrying this fault
	stuck uint64 // mask when stuck-at-1, 0 when stuck-at-0
}

// Sim is a cycle-accurate, bit-parallel simulator over a fixed netlist.
// Each signal carries a 64-bit word: one independent machine per bit lane.
// Lanes are used either for 64 test patterns at once (combinational
// characterization) or 64 faulty machines at once (fault simulation).
//
// A Step evaluates all combinational logic from the current inputs and DFF
// outputs, then latches every DFF. Faults registered via SetFaults are
// injected only into their assigned lane.
type Sim struct {
	n     *Netlist
	order []Sig

	val   []uint64 // current signal values
	state []uint64 // DFF latched state (and raw driven value for Input gates)

	hookIdx []int32 // per signal: -1 or index into hooks
	hooks   [][]laneInject
	hooked  []Sig // signals that currently have hooks, for cheap clearing

	inc *incState // non-nil: event-driven incremental evaluation (event.go)
}

// NewSim compiles a netlist into a simulator. The netlist must validate.
func NewSim(n *Netlist) (*Sim, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	order, err := n.levelize()
	if err != nil {
		return nil, err
	}
	s := &Sim{
		n:       n,
		order:   order,
		val:     make([]uint64, len(n.Gates)),
		state:   make([]uint64, len(n.Gates)),
		hookIdx: make([]int32, len(n.Gates)),
		hooks:   make([][]laneInject, 0, 64),
	}
	for i := range s.hookIdx {
		s.hookIdx[i] = -1
	}
	return s, nil
}

// Netlist returns the compiled netlist.
func (s *Sim) Netlist() *Netlist { return s.n }

// CombGates reports the number of combinational gates: the per-Eval gate
// evaluation cost of the oblivious engine.
func (s *Sim) CombGates() int { return len(s.order) }

// Reset clears all flip-flop state and signal values.
func (s *Sim) Reset() {
	for i := range s.state {
		s.state[i] = 0
		s.val[i] = 0
	}
	if s.inc != nil {
		s.inc.allDirty = true
		s.inc.latchAll = true
	}
}

// SetFaults installs the given lane faults, replacing any previous set.
// Lanes must be in [0, 64).
func (s *Sim) SetFaults(faults []LaneFault) {
	s.ClearFaults()
	for _, lf := range faults {
		if lf.Lane < 0 || lf.Lane > 63 {
			panic(fmt.Sprintf("gate: lane %d out of range", lf.Lane))
		}
		g := lf.Site.Gate
		if g < 0 || int(g) >= len(s.n.Gates) {
			panic(fmt.Sprintf("gate: fault site gate %d out of range", g))
		}
		inj := laneInject{pin: lf.Site.Pin, mask: 1 << uint(lf.Lane)}
		if lf.Site.Stuck {
			inj.stuck = inj.mask
		}
		if s.hookIdx[g] < 0 {
			s.hookIdx[g] = int32(len(s.hooks))
			s.hooks = append(s.hooks, nil)
			s.hooked = append(s.hooked, g)
		}
		h := s.hookIdx[g]
		s.hooks[h] = append(s.hooks[h], inj)
	}
	s.invalidate()
}

// ClearFaults removes all installed faults.
func (s *Sim) ClearFaults() {
	for _, g := range s.hooked {
		s.hookIdx[g] = -1
	}
	s.hooked = s.hooked[:0]
	s.hooks = s.hooks[:0]
	s.invalidate()
}

// driveInput stores the raw driven word of a primary input (in state, so
// fault injections stay reversible), presents its hooked value, and in
// event-driven mode schedules consumers on change.
func (s *Sim) driveInput(sig Sig, w uint64) {
	s.state[sig] = w
	if h := s.hookIdx[sig]; h >= 0 {
		w = s.hookedOut(h, w)
	}
	if w != s.val[sig] {
		s.val[sig] = w
		if s.inc != nil && !s.inc.allDirty {
			s.inc.events++
			s.propagate(sig)
		}
	}
}

// SetBusUniform drives an input bus with the same value in every lane.
// Bit i of value drives signal i of the bus (all-zeros/all-ones words).
func (s *Sim) SetBusUniform(name string, value uint64) {
	sigs := s.n.InputBus(name)
	for i, sig := range sigs {
		var w uint64
		if value>>uint(i)&1 != 0 {
			w = ^uint64(0)
		}
		s.driveInput(sig, w)
	}
}

// SetBusWords drives an input bus with per-lane values: words[i] is the full
// 64-lane word for bit i of the bus.
func (s *Sim) SetBusWords(name string, words []uint64) {
	sigs := s.n.InputBus(name)
	if len(words) != len(sigs) {
		panic(fmt.Sprintf("gate: SetBusWords(%q): got %d words, bus width %d", name, len(words), len(sigs)))
	}
	for i, sig := range sigs {
		s.driveInput(sig, words[i])
	}
}

// BusWords reads an output bus as per-bit lane words into dst, which must
// have the bus width.
func (s *Sim) BusWords(name string, dst []uint64) {
	sigs := s.n.OutputBus(name)
	if len(dst) != len(sigs) {
		panic(fmt.Sprintf("gate: BusWords(%q): got %d words, bus width %d", name, len(dst), len(sigs)))
	}
	for i, sig := range sigs {
		dst[i] = s.val[sig]
	}
}

// BusLane extracts the value of an output bus in a single lane.
func (s *Sim) BusLane(name string, lane int) uint64 {
	sigs := s.n.OutputBus(name)
	var v uint64
	for i, sig := range sigs {
		v |= (s.val[sig] >> uint(lane) & 1) << uint(i)
	}
	return v
}

// SigWord returns the raw 64-lane word of a signal (for observation capture).
func (s *Sim) SigWord(sig Sig) uint64 { return s.val[sig] }

// inVal reads the value seen by pin (1-based input index) of a hooked gate,
// applying any input-pin fault injections for that pin.
func (s *Sim) hookedIn(h int32, pin int8, raw uint64) uint64 {
	for _, inj := range s.hooks[h] {
		if inj.pin == pin {
			raw = raw&^inj.mask | inj.stuck
		}
	}
	return raw
}

// hookedOut applies output-pin fault injections of a hooked gate.
func (s *Sim) hookedOut(h int32, raw uint64) uint64 {
	for _, inj := range s.hooks[h] {
		if inj.pin == 0 {
			raw = raw&^inj.mask | inj.stuck
		}
	}
	return raw
}

// Eval evaluates combinational logic from the current primary inputs and
// flip-flop state without latching. Primary outputs are valid afterwards.
func (s *Sim) Eval() {
	if s.inc != nil {
		s.evalEvent()
		return
	}
	s.evalOblivious()
}

// evalOblivious re-evaluates every gate in topological order.
func (s *Sim) evalOblivious() {
	gates := s.n.Gates
	val := s.val

	// Present DFF state (and constants) with output-fault injection.
	for i := range gates {
		switch gates[i].Kind {
		case DFF:
			v := s.state[i]
			if h := s.hookIdx[i]; h >= 0 {
				v = s.hookedOut(h, v)
			}
			val[i] = v
		case Const0:
			v := uint64(0)
			if h := s.hookIdx[i]; h >= 0 {
				v = s.hookedOut(h, v)
			}
			val[i] = v
		case Const1:
			v := ^uint64(0)
			if h := s.hookIdx[i]; h >= 0 {
				v = s.hookedOut(h, v)
			}
			val[i] = v
		case Input:
			v := s.state[i] // raw driven value; see driveInput
			if h := s.hookIdx[i]; h >= 0 {
				v = s.hookedOut(h, v)
			}
			val[i] = v
		}
	}

	for _, sig := range s.order {
		g := &gates[sig]
		h := s.hookIdx[sig]
		var a, b, c uint64
		switch g.Kind.NumInputs() {
		case 1:
			a = val[g.In[0]]
			if h >= 0 {
				a = s.hookedIn(h, 1, a)
			}
		case 2:
			a, b = val[g.In[0]], val[g.In[1]]
			if h >= 0 {
				a = s.hookedIn(h, 1, a)
				b = s.hookedIn(h, 2, b)
			}
		case 3:
			a, b, c = val[g.In[0]], val[g.In[1]], val[g.In[2]]
			if h >= 0 {
				a = s.hookedIn(h, 1, a)
				b = s.hookedIn(h, 2, b)
				c = s.hookedIn(h, 3, c)
			}
		}
		var out uint64
		switch g.Kind {
		case Buf:
			out = a
		case Not:
			out = ^a
		case And2:
			out = a & b
		case Or2:
			out = a | b
		case Nand2:
			out = ^(a & b)
		case Nor2:
			out = ^(a | b)
		case Xor2:
			out = a ^ b
		case Xnor2:
			out = ^(a ^ b)
		case Mux2:
			out = a&^c | b&c
		default:
			panic(fmt.Sprintf("gate: unexpected kind %s in eval order", g.Kind))
		}
		if h >= 0 {
			out = s.hookedOut(h, out)
		}
		val[sig] = out
	}
}

// Latch clocks every DFF, capturing its (possibly fault-injected) D input.
func (s *Sim) Latch() {
	if s.inc != nil {
		s.latchEvent()
		return
	}
	s.latchOblivious()
}

func (s *Sim) latchOblivious() {
	gates := s.n.Gates
	for i := range gates {
		if gates[i].Kind != DFF {
			continue
		}
		d := s.val[gates[i].In[0]]
		if h := s.hookIdx[i]; h >= 0 {
			d = s.hookedIn(h, 1, d)
		}
		s.state[i] = d
	}
}

// Step performs one full clock cycle: Eval then Latch.
func (s *Sim) Step() {
	s.Eval()
	s.Latch()
}
