// Package gate provides the gate-level substrate for the SBST reproduction:
// a small structural cell library, a netlist data structure with named ports
// and per-component tagging, and a cycle-accurate bit-parallel logic
// simulator with fault-injection hooks.
//
// Signals are identified by the index of the gate that drives them; every
// gate drives exactly one signal. Sequential behaviour is modeled by DFF
// cells that latch their D input at the end of every Step.
package gate

import "fmt"

// Kind enumerates the cell library. All cells have at most three inputs;
// wider functions are built structurally from these.
type Kind uint8

const (
	// Input is a primary input pin of the netlist. Its value is set
	// externally before each evaluation.
	Input Kind = iota
	// Const0 drives constant logic 0.
	Const0
	// Const1 drives constant logic 1.
	Const1
	// Buf drives its single input unchanged.
	Buf
	// Not drives the complement of its single input.
	Not
	// And2 is a 2-input AND.
	And2
	// Or2 is a 2-input OR.
	Or2
	// Nand2 is a 2-input NAND, the unit cell for gate counting.
	Nand2
	// Nor2 is a 2-input NOR.
	Nor2
	// Xor2 is a 2-input XOR.
	Xor2
	// Xnor2 is a 2-input XNOR.
	Xnor2
	// Mux2 selects In[0] when In[2] is 0 and In[1] when In[2] is 1.
	Mux2
	// DFF is a positive-edge D flip-flop: its output presents the state
	// latched at the previous Step; In[0] is the D input. Reset clears the
	// state to 0.
	DFF

	numKinds = iota
)

var kindNames = [numKinds]string{
	Input:  "INPUT",
	Const0: "CONST0",
	Const1: "CONST1",
	Buf:    "BUF",
	Not:    "NOT",
	And2:   "AND2",
	Or2:    "OR2",
	Nand2:  "NAND2",
	Nor2:   "NOR2",
	Xor2:   "XOR2",
	Xnor2:  "XNOR2",
	Mux2:   "MUX2",
	DFF:    "DFF",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// arity reports the number of connected input pins for each kind.
var arity = [numKinds]int{
	Input:  0,
	Const0: 0,
	Const1: 0,
	Buf:    1,
	Not:    1,
	And2:   2,
	Or2:    2,
	Nand2:  2,
	Nor2:   2,
	Xor2:   2,
	Xnor2:  2,
	Mux2:   3,
	DFF:    1,
}

// NumInputs reports how many input pins cells of kind k have.
func (k Kind) NumInputs() int { return arity[k] }

// halfUnits is the area of each cell in half-NAND2 equivalents, loosely
// following typical standard-cell library ratios (INV=0.5, NAND2=1,
// AND2=1.5, XOR2=2.5, MUX2=2.5, DFF=6 NAND2 equivalents).
var halfUnits = [numKinds]int{
	Input:  0,
	Const0: 0,
	Const1: 0,
	Buf:    1,
	Not:    1,
	And2:   3,
	Or2:    3,
	Nand2:  2,
	Nor2:   2,
	Xor2:   5,
	Xnor2:  5,
	Mux2:   5,
	DFF:    12,
}

// NAND2Equivalents reports the cell area in 2-input-NAND equivalents, the
// gate-count unit used by Table 3 of the paper.
func (k Kind) NAND2Equivalents() float64 { return float64(halfUnits[k]) / 2 }
