package gate

import (
	"bytes"
	"strings"
	"testing"
)

func buildSmallSeq() *Netlist {
	b := NewBuilder("tiny")
	b.BeginComponent("CNT")
	a := b.Input("en")
	q := b.DFFPlaceholder()
	b.ConnectD(q, b.Xor(q, a))
	b.Output("q", q)
	b.EndComponent()
	return b.N
}

func TestNetlistRoundTrip(t *testing.T) {
	n := buildSmallSeq()
	var buf bytes.Buffer
	if err := WriteNetlist(&buf, n); err != nil {
		t.Fatal(err)
	}
	n2, err := ReadNetlist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n2.Name != n.Name || len(n2.Gates) != len(n.Gates) {
		t.Fatalf("shape differs: %s/%d vs %s/%d", n2.Name, len(n2.Gates), n.Name, len(n.Gates))
	}
	for i := range n.Gates {
		if n.Gates[i] != n2.Gates[i] {
			t.Fatalf("gate %d differs: %+v vs %+v", i, n.Gates[i], n2.Gates[i])
		}
	}
	if len(n2.CompNames) != len(n.CompNames) || n2.CompNames[1] != "CNT" {
		t.Fatalf("components differ: %v", n2.CompNames)
	}

	// Both must simulate identically.
	s1, err := NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSim(n2)
	if err != nil {
		t.Fatal(err)
	}
	s1.Reset()
	s2.Reset()
	for i := 0; i < 10; i++ {
		v := uint64(i & 1)
		s1.SetBusUniform("en", v)
		s2.SetBusUniform("en", v)
		s1.Step()
		s2.Step()
		s1.Eval()
		s2.Eval()
		if s1.BusLane("q", 0) != s2.BusLane("q", 0) {
			t.Fatalf("round-tripped netlist diverges at cycle %d", i)
		}
	}
}

func TestReadNetlistErrors(t *testing.T) {
	cases := []string{
		"",
		"g AND2 0 1 - 0",                     // gate before netlist
		"netlist x\ng BOGUS - - - 0",         // unknown kind
		"netlist x\ng AND2 9 9 - 0",          // dangling pins
		"netlist x\nfrob",                    // unknown directive
		"netlist x\ng NOT zz - - 0",          // bad pin token
		"netlist x\ninbus a 0",               // inbus referencing non-input
		"netlist x\ncomp a\ncomp a\nbadline", // tokens
	}
	for _, src := range cases {
		if _, err := ReadNetlist(strings.NewReader(src)); err == nil {
			t.Errorf("ReadNetlist(%q) succeeded", src)
		}
	}
}

func TestVCDWriter(t *testing.T) {
	b := NewBuilder("vcd")
	d := b.Input("d")
	q := b.DFF(d)
	b.Output("q", q)
	s, err := NewSim(b.N)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	v, err := NewVCDWriter(&buf, s, map[string][]Sig{
		"d": b.N.InputBus("d"),
		"q": {q},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Reset()
	for i := 0; i < 4; i++ {
		s.SetBusUniform("d", uint64(i&1))
		s.Eval()
		v.Sample()
		s.Latch()
	}
	if v.Err() != nil {
		t.Fatal(v.Err())
	}
	out := buf.String()
	for _, want := range []string{"$timescale", "$var wire 1", "$enddefinitions", "#0", "b1 ", "#1"} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// Value-change encoding: no change means no re-dump; with d toggling
	// every cycle there must be at least 4 timestamps.
	if strings.Count(out, "#") < 4 {
		t.Errorf("too few timestamps:\n%s", out)
	}
}

func TestVCDIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 3000; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate VCD id %q at %d", id, i)
		}
		seen[id] = true
	}
}
