package gate

import "fmt"

// Wide-width array kernels. computeInto8 (sim.go) established the pattern:
// converting the operand slices to fixed-size array pointers lets every
// word loop run bounds-check-free with a fixed trip count the compiler
// unrolls and vectorizes. Go has no const-generic arrays, so the 16- and
// 32-word kernels (and their event-sweep drivers) are spelled out here; the
// switch bodies must mirror computeInto8 exactly.

// computeInto16 is computeInto specialized to 16 lane words and no
// injection hooks.
func (s *Sim) computeInto16(sig Sig, dst *[16]uint64) {
	g := &s.n.Gates[sig]
	val := s.val
	a := (*[16]uint64)(val[int(g.In[0])*16:])
	switch g.Kind {
	case Buf:
		*dst = *a
	case Not:
		for k := range dst {
			dst[k] = ^a[k]
		}
	case And2:
		b := (*[16]uint64)(val[int(g.In[1])*16:])
		for k := range dst {
			dst[k] = a[k] & b[k]
		}
	case Or2:
		b := (*[16]uint64)(val[int(g.In[1])*16:])
		for k := range dst {
			dst[k] = a[k] | b[k]
		}
	case Nand2:
		b := (*[16]uint64)(val[int(g.In[1])*16:])
		for k := range dst {
			dst[k] = ^(a[k] & b[k])
		}
	case Nor2:
		b := (*[16]uint64)(val[int(g.In[1])*16:])
		for k := range dst {
			dst[k] = ^(a[k] | b[k])
		}
	case Xor2:
		b := (*[16]uint64)(val[int(g.In[1])*16:])
		for k := range dst {
			dst[k] = a[k] ^ b[k]
		}
	case Xnor2:
		b := (*[16]uint64)(val[int(g.In[1])*16:])
		for k := range dst {
			dst[k] = ^(a[k] ^ b[k])
		}
	case Mux2:
		b := (*[16]uint64)(val[int(g.In[1])*16:])
		c := (*[16]uint64)(val[int(g.In[2])*16:])
		for k := range dst {
			dst[k] = a[k]&^c[k] | b[k]&c[k]
		}
	default:
		panic(fmt.Sprintf("gate: unexpected kind %s in eval order", g.Kind))
	}
}

// computeInto32 is computeInto specialized to 32 lane words and no
// injection hooks.
func (s *Sim) computeInto32(sig Sig, dst *[32]uint64) {
	g := &s.n.Gates[sig]
	val := s.val
	a := (*[32]uint64)(val[int(g.In[0])*32:])
	switch g.Kind {
	case Buf:
		*dst = *a
	case Not:
		for k := range dst {
			dst[k] = ^a[k]
		}
	case And2:
		b := (*[32]uint64)(val[int(g.In[1])*32:])
		for k := range dst {
			dst[k] = a[k] & b[k]
		}
	case Or2:
		b := (*[32]uint64)(val[int(g.In[1])*32:])
		for k := range dst {
			dst[k] = a[k] | b[k]
		}
	case Nand2:
		b := (*[32]uint64)(val[int(g.In[1])*32:])
		for k := range dst {
			dst[k] = ^(a[k] & b[k])
		}
	case Nor2:
		b := (*[32]uint64)(val[int(g.In[1])*32:])
		for k := range dst {
			dst[k] = ^(a[k] | b[k])
		}
	case Xor2:
		b := (*[32]uint64)(val[int(g.In[1])*32:])
		for k := range dst {
			dst[k] = a[k] ^ b[k]
		}
	case Xnor2:
		b := (*[32]uint64)(val[int(g.In[1])*32:])
		for k := range dst {
			dst[k] = ^(a[k] ^ b[k])
		}
	case Mux2:
		b := (*[32]uint64)(val[int(g.In[1])*32:])
		c := (*[32]uint64)(val[int(g.In[2])*32:])
		for k := range dst {
			dst[k] = a[k]&^c[k] | b[k]&c[k]
		}
	default:
		panic(fmt.Sprintf("gate: unexpected kind %s in eval order", g.Kind))
	}
}

// sweep16 is the level-queue sweep of evalEvent specialized to 16 lane
// words (see sweep8 in event.go).
func (s *Sim) sweep16() {
	inc := s.inc
	gates := s.n.Gates
	uni := s.uni
	val := s.val
	out := (*[16]uint64)(s.tout[:16])
	for lv := int32(1); lv <= inc.maxLevel; lv++ {
		q := inc.queue[lv]
		for i := 0; i < len(q); i++ {
			sig := q[i]
			inc.inQueue[sig] = false
			inc.evals++
			g := &gates[sig]
			if s.hookIdx[sig] < 0 && uniformInputs(uni, g) {
				var a, b, c uint64
				switch g.Kind.NumInputs() {
				case 3:
					c = val[int(g.In[2])*16]
					fallthrough
				case 2:
					b = val[int(g.In[1])*16]
					fallthrough
				case 1:
					a = val[int(g.In[0])*16]
				}
				r := evalWord(g.Kind, a, b, c)
				cur := (*[16]uint64)(val[int(sig)*16:])
				if uni[sig] && cur[0] == r {
					continue
				}
				for k := range cur {
					cur[k] = r
				}
				uni[sig] = true
				inc.events++
				s.propagate(sig)
				continue
			}
			s.computeInto16(sig, out)
			if h := s.hookIdx[sig]; h >= 0 {
				s.patchHooks(sig, h, s.tout[:16])
			}
			cur := (*[16]uint64)(val[int(sig)*16:])
			u := out[0]
			var diff, nun uint64
			for k := range cur {
				diff |= cur[k] ^ out[k]
				nun |= out[k] ^ u
			}
			uni[sig] = nun == 0
			if diff != 0 {
				*cur = *out
				inc.events++
				s.propagate(sig)
			}
		}
		inc.queue[lv] = q[:0]
	}
}

// sweep32 is the level-queue sweep of evalEvent specialized to 32 lane
// words (see sweep8 in event.go).
func (s *Sim) sweep32() {
	inc := s.inc
	gates := s.n.Gates
	uni := s.uni
	val := s.val
	out := (*[32]uint64)(s.tout[:32])
	for lv := int32(1); lv <= inc.maxLevel; lv++ {
		q := inc.queue[lv]
		for i := 0; i < len(q); i++ {
			sig := q[i]
			inc.inQueue[sig] = false
			inc.evals++
			g := &gates[sig]
			if s.hookIdx[sig] < 0 && uniformInputs(uni, g) {
				var a, b, c uint64
				switch g.Kind.NumInputs() {
				case 3:
					c = val[int(g.In[2])*32]
					fallthrough
				case 2:
					b = val[int(g.In[1])*32]
					fallthrough
				case 1:
					a = val[int(g.In[0])*32]
				}
				r := evalWord(g.Kind, a, b, c)
				cur := (*[32]uint64)(val[int(sig)*32:])
				if uni[sig] && cur[0] == r {
					continue
				}
				for k := range cur {
					cur[k] = r
				}
				uni[sig] = true
				inc.events++
				s.propagate(sig)
				continue
			}
			s.computeInto32(sig, out)
			if h := s.hookIdx[sig]; h >= 0 {
				s.patchHooks(sig, h, s.tout[:32])
			}
			cur := (*[32]uint64)(val[int(sig)*32:])
			u := out[0]
			var diff, nun uint64
			for k := range cur {
				diff |= cur[k] ^ out[k]
				nun |= out[k] ^ u
			}
			uni[sig] = nun == 0
			if diff != 0 {
				*cur = *out
				inc.events++
				s.propagate(sig)
			}
		}
		inc.queue[lv] = q[:0]
	}
}
