package gate

//go:generate go run ./gen

import "sync/atomic"

// Batched run evaluation. The event sweeps and the oblivious evaluator
// group same-level same-kind gates into contiguous runs and dispatch each
// run with a single kernel call — the assembly kernel of the active SIMD
// tier (AVX-512 or AVX2 on amd64, NEON on arm64; see tier.go), else the
// generated Go run kernel (kernels_generated.go). Gates at the same
// combinational level are mutually independent (levels strictly increase
// along fanout), so deferring their evaluation to the end of the level
// cannot change any signal value, eval count, or event count; all kernel
// families are asserted bit-identical in tests.

// runGate addresses one gate of a run: lane-word offsets into Sim.val
// for the output and the (up to three) input operands. The layout is
// fixed at 16 bytes — the asm kernels index it directly.
type runGate struct {
	dst, a, b, c int32
}

// Flag byte produced per gate by every batch kernel.
const (
	flagChanged = 1 << 0 // output differs from the previous value
	flagUniform = 1 << 1 // all lane words of the output agree
)

// batchFlags packs the XOR-folded change word and not-uniform word into
// the kernel flag byte.
func batchFlags(diff, nun uint64) uint8 {
	var f uint8
	if diff != 0 {
		f = flagChanged
	}
	if nun == 0 {
		f |= flagUniform
	}
	return f
}

// batchKernel is the signature shared by all assembly run kernels.
type batchKernel func(val *uint64, gates *runGate, flags *uint8, n int)

// compKernel is the signature shared by all assembly raw-compute
// kernels: one gate's unhooked output into dst, no flags. Unused operand
// pointers point at val[0] (offset zero in the compiled runGate) — the
// kernel never dereferences them.
type compKernel func(dst, a, b, c *uint64)

// batchList accumulates one kind's pending run for the current level.
type batchList struct {
	gates []runGate
	sigs  []Sig
	flags []uint8
}

// KernelStats counts batch-kernel dispatch activity of one simulator.
type KernelStats struct {
	SIMDRuns     uint64 // runs dispatched to the tier's asm kernels
	GenericRuns  uint64 // runs dispatched to the Go run kernels
	BatchedGates uint64 // gates evaluated through batch runs
	UniformHits  uint64 // sweep scalar uniform fast-path evaluations
	ScalarEvals  uint64 // full-width scalar evaluations (hooked gates)
}

// Add accumulates other into s.
func (s *KernelStats) Add(other KernelStats) {
	s.SIMDRuns += other.SIMDRuns
	s.GenericRuns += other.GenericRuns
	s.BatchedGates += other.BatchedGates
	s.UniformHits += other.UniformHits
	s.ScalarEvals += other.ScalarEvals
}

// KernelStats reports the simulator's cumulative kernel dispatch counters.
func (s *Sim) KernelStats() KernelStats { return s.kstats }

// simdDisabled lets tests and benchmarks force the Go run kernels on
// hosts that have an asm tier. It gates construction-time capture only
// (Sim.tier), so toggling never races with running simulators.
var simdDisabled atomic.Bool

// SIMDAvailable reports whether this build and host have assembly batch
// kernels (AVX-512 or AVX2 on amd64, NEON on arm64; never under the
// purego tag).
func SIMDAvailable() bool { return detectedTier != tierGeneric }

// SetSIMD enables or disables the assembly kernels for simulators
// constructed afterwards and returns the previous setting. A disabled or
// unavailable SIMD path falls back to the generated Go run kernels,
// which are bit-identical. Tier selection within the assembly backends
// is SetSIMDTier's job (tier.go).
func SetSIMD(on bool) bool {
	prev := !simdDisabled.Load()
	simdDisabled.Store(!on)
	return prev
}

// SIMDEnabled reports whether newly constructed simulators will dispatch
// to assembly kernels.
func SIMDEnabled() bool { return activeTier() != tierGeneric }

// SIMDKernelName names the kernel backend newly constructed simulators
// use: "avx512", "avx2", or "neon" for the assembly tiers, "generic"
// when no assembly is available / SIMD is disabled / the generic tier is
// forced, and "purego" for a build under the purego tag.
func SIMDKernelName() string { return activeTier().String() }

// widthIdx maps a SIMD-kerneled lane width to its dispatch-table row.
func widthIdx(w int) int {
	switch w {
	case 8:
		return 0
	case 16:
		return 1
	case 32:
		return 2
	case 64:
		return 3
	}
	panic("gate: no batch kernels at this width")
}

// flushBatches dispatches every pending per-kind run of the current
// level and applies the kernel flags: the uniformity index from
// flagUniform, one event plus fan-out propagation per flagChanged gate.
// Event-sweep only (s.inc must be non-nil).
func (s *Sim) flushBatches() {
	inc := s.inc
	for kind := Buf; kind <= Mux2; kind++ {
		bl := &s.batch[kind]
		n := len(bl.gates)
		if n == 0 {
			continue
		}
		if cap(bl.flags) < n {
			bl.flags = make([]uint8, n)
		}
		bl.flags = bl.flags[:n]
		s.dispatchBatch(kind, bl.gates, bl.flags)
		for i, sig := range bl.sigs {
			f := bl.flags[i]
			s.uni[sig] = f&flagUniform != 0
			if f&flagChanged != 0 {
				inc.events++
				s.propagate(sig)
			}
		}
		bl.gates = bl.gates[:0]
		bl.sigs = bl.sigs[:0]
	}
}

// dispatchBatch evaluates one contiguous same-kind run through the
// kernels resolved at construction (the compiled kernel plan): the
// tier's assembly kernel when the sim has one for this kind, else the
// width-bound Go run kernel. No per-run width or tier branching
// survives to here — only a table load and an indirect call. All
// kernels write outputs into val and per-gate flag bytes,
// bit-identically.
func (s *Sim) dispatchBatch(kind Kind, gates []runGate, flags []uint8) {
	if len(gates) == 0 {
		return
	}
	s.kstats.BatchedGates += uint64(len(gates))
	if s.kern != nil {
		if k := s.kern[kind]; k != nil {
			s.kstats.SIMDRuns++
			k(&s.val[0], &gates[0], &flags[0], len(gates))
			return
		}
	}
	s.kstats.GenericRuns++
	s.goKern(s.val, kind, gates, flags)
}

// oblRun is one contiguous same-kind run of the oblivious level plan.
type oblRun struct {
	kind  Kind
	gates []runGate
	sigs  []Sig
	flags []uint8
}

// oblPlan groups the topological order into per-level same-kind runs for
// batched oblivious evaluation at the SIMD widths. Built once at Sim
// construction (part of the compiled kernel plan) and reused: the
// grouping depends only on the netlist and the lane width.
type oblPlan struct {
	level  []int32    // per signal: combinational level (sources at 0)
	levels [][]oblRun // runs by level; index 0 unused (sources)
}

func (s *Sim) oblivPlan() *oblPlan {
	if s.obl == nil {
		s.obl = s.buildOblivPlan()
	}
	return s.obl
}

// buildOblivPlan compiles the oblivious level plan; requires the
// compiled runGate records (s.rg), so only call at the SIMD widths.
func (s *Sim) buildOblivPlan() *oblPlan {
	ng := len(s.n.Gates)
	p := &oblPlan{level: make([]int32, ng)}
	var maxLevel int32
	for _, sig := range s.order {
		g := &s.n.Gates[sig]
		lv := int32(0)
		for i := 0; i < g.Kind.NumInputs(); i++ {
			if l := p.level[g.In[i]] + 1; l > lv {
				lv = l
			}
		}
		p.level[sig] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	byLevel := make([][]Sig, maxLevel+1)
	for _, sig := range s.order {
		lv := p.level[sig]
		byLevel[lv] = append(byLevel[lv], sig)
	}
	p.levels = make([][]oblRun, maxLevel+1)
	for lv := int32(1); lv <= maxLevel; lv++ {
		var idx [numKinds]int
		for i := range idx {
			idx[i] = -1
		}
		for _, sig := range byLevel[lv] {
			g := &s.n.Gates[sig]
			if idx[g.Kind] < 0 {
				idx[g.Kind] = len(p.levels[lv])
				p.levels[lv] = append(p.levels[lv], oblRun{kind: g.Kind})
			}
			r := &p.levels[lv][idx[g.Kind]]
			r.gates = append(r.gates, s.rg[sig])
			r.sigs = append(r.sigs, sig)
		}
		for i := range p.levels[lv] {
			r := &p.levels[lv][i]
			r.flags = make([]uint8, len(r.gates))
		}
	}
	return p
}

// evalLevelsBatched is the combinational part of evalOblivious at the
// SIMD widths: every level's gates run as contiguous same-kind batches,
// and the uniformity index is maintained from the kernel flags (so
// evalFull need not rescan every signal). Hooked gates are recomputed
// scalar (with patchHooks) after their level's batches and before any
// higher level reads them.
func (s *Sim) evalLevelsBatched() {
	p := s.oblivPlan()
	w := s.w
	val := s.val
	for lv := 1; lv < len(p.levels); lv++ {
		for i := range p.levels[lv] {
			r := &p.levels[lv][i]
			s.dispatchBatch(r.kind, r.gates, r.flags)
			for j, sig := range r.sigs {
				s.uni[sig] = r.flags[j]&flagUniform != 0
			}
		}
		if len(s.hooked) != 0 {
			for _, sig := range s.hooked {
				if p.level[sig] != int32(lv) {
					continue
				}
				o := int(sig) * w
				dst := val[o : o+w]
				s.computeInto(sig, dst)
				s.uni[sig] = allEqual(dst)
			}
		}
	}
}
