package gate

import (
	"fmt"
	"math/rand"
	"testing"
	"unsafe"
)

// buildBenchNetlist synthesizes a deterministic sequential circuit for
// width benchmarking: a ring of flip-flops with inverted XOR feedback
// (guaranteed switching activity from the all-zero reset state) mixed
// through a random combinational cloud, with a few observed outputs.
func buildBenchNetlist(nRegs, nComb int) *Netlist {
	b := NewBuilder("wbench")
	rng := rand.New(rand.NewSource(42))
	regs := make([]Sig, nRegs)
	for i := range regs {
		regs[i] = b.DFFPlaceholder()
	}
	sigs := append([]Sig(nil), regs...)
	for i := 0; i < nComb; i++ {
		a := sigs[rng.Intn(len(sigs))]
		c := sigs[rng.Intn(len(sigs))]
		switch rng.Intn(6) {
		case 0:
			sigs = append(sigs, b.Xor(a, c))
		case 1:
			sigs = append(sigs, b.And(a, c))
		case 2:
			sigs = append(sigs, b.Or(a, c))
		case 3:
			sigs = append(sigs, b.Not(a))
		case 4:
			sigs = append(sigs, b.Nand(a, c))
		case 5:
			sigs = append(sigs, b.Xnor(a, c))
		}
	}
	for i, r := range regs {
		d := b.Xor(regs[(i+1)%nRegs], sigs[len(sigs)-1-i%(nComb/2)])
		b.ConnectD(r, b.Not(d))
	}
	b.OutputBus("out", []Sig(sigs[len(sigs)-8:]))
	return b.N
}

// BenchmarkEventEvalWidth measures the event-driven evaluator's per-cycle
// cost as the lane word widens, with one injected fault per lane (the
// fault-simulation configuration). The interesting ratio is ns/cycle at
// w=8 versus w=1: perfect amortization would hold it flat while carrying
// 8x the machines; the machine-cycles/s metric shows the realized
// per-machine throughput.
func BenchmarkEventEvalWidth(b *testing.B) {
	n := buildBenchNetlist(256, 4000)
	sites := collectFaultSites(n)
	for _, w := range []int{1, 2, 4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			benchEventEval(b, n, sites, w)
		})
	}
}

// BenchmarkEventEvalTier runs the same faulted eval loop with each
// runnable kernel tier forced in turn (plus generic), at the widths
// where the backends differ most. On an AVX-512 host the avx512/avx2
// rows at equal width isolate the VPTERNLOG + 512-bit-vector win from
// everything else in the sweep.
func BenchmarkEventEvalTier(b *testing.B) {
	defer SetSIMDTier("auto")
	n := buildBenchNetlist(256, 4000)
	sites := collectFaultSites(n)
	names := make([]string, 0, 4)
	for _, tier := range asmTiers() {
		names = append(names, tier.String())
	}
	names = append(names, "generic")
	for _, name := range names {
		for _, w := range []int{16, 32, 64} {
			b.Run(fmt.Sprintf("tier=%s/w=%d", name, w), func(b *testing.B) {
				if _, err := SetSIMDTier(name); err != nil {
					b.Fatal(err)
				}
				benchEventEval(b, n, sites, w)
			})
		}
	}
}

// BenchmarkBatchKernelTier measures one batch kernel in isolation: a
// 512-gate same-kind run evaluated back to back, per tier and width.
// Unlike the EventEval benchmarks there is no queue or batching work in
// the loop, so the ratio between tiers here is the pure kernel speedup;
// the gap between this ratio and the EventEvalTier ratio is the Amdahl
// dilution of everything around the kernels.
func BenchmarkBatchKernelTier(b *testing.B) {
	const nGates = 512
	for _, tc := range []struct {
		name string
		kind Kind
	}{{"and2", And2}, {"xor2", Xor2}, {"mux2", Mux2}} {
		for _, tier := range asmTiers() {
			for _, w := range []int{16, 32, 64} {
				wi := widthIdx(w)
				kern := archBatchKernels(tier, wi)
				if kern == nil || kern[tc.kind] == nil {
					continue
				}
				b.Run(fmt.Sprintf("kind=%s/tier=%s/w=%d", tc.name, tier, w), func(b *testing.B) {
					benchBatchKernel(b, kern[tc.kind], tc.kind, nGates, w)
				})
			}
		}
		for _, w := range []int{16, 32, 64} {
			kern := goBatchKernels[widthIdx(w)]
			b.Run(fmt.Sprintf("kind=%s/tier=generic/w=%d", tc.name, w), func(b *testing.B) {
				benchBatchKernel(b, func(val *uint64, gates *runGate, flags *uint8, n int) {
					vs := unsafe.Slice(val, (1+4*nGates)*w)
					gs := unsafe.Slice(gates, n)
					fs := unsafe.Slice(flags, n)
					kern(vs, tc.kind, gs, fs)
				}, tc.kind, nGates, w)
			})
		}
	}
}

func benchBatchKernel(b *testing.B, kern batchKernel, kind Kind, nGates, w int) {
	rng := rand.New(rand.NewSource(11))
	// Signal 0 stays a scratch zero source; gates read three random
	// operand signals and write disjoint outputs, like one flushed run
	// of same-level gates.
	val := make([]uint64, (1+4*nGates)*w)
	for i := range val {
		val[i] = rng.Uint64()
	}
	gates := make([]runGate, nGates)
	for i := range gates {
		gates[i] = runGate{
			dst: int32((1 + 3*nGates + i) * w),
			a:   int32((1 + rng.Intn(3*nGates)) * w),
			b:   int32((1 + rng.Intn(3*nGates)) * w),
			c:   int32((1 + rng.Intn(3*nGates)) * w),
		}
	}
	flags := make([]uint8, nGates)
	b.SetBytes(int64(nGates * w * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kern(&val[0], &gates[0], &flags[0], nGates)
	}
}

func benchEventEval(b *testing.B, n *Netlist, sites []FaultSite, w int) {
	s, err := NewEventSimWidth(n, w)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	lf := make([]LaneFault, 64*w)
	for lane := range lf {
		site := sites[rng.Intn(len(sites))]
		lf[lane] = LaneFault{Site: site, Lane: lane}
	}
	s.Reset()
	s.SetFaults(lf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	b.ReportMetric(float64(64*w)*float64(b.N)/b.Elapsed().Seconds(), "machine-cycles/s")
}

// collectFaultSites enumerates output stuck-at sites over the netlist's
// combinational gates.
func collectFaultSites(n *Netlist) []FaultSite {
	var sites []FaultSite
	for i := range n.Gates {
		switch n.Gates[i].Kind {
		case Const0, Const1, Input:
			continue
		}
		sites = append(sites,
			FaultSite{Gate: Sig(i), Pin: 0, Stuck: false},
			FaultSite{Gate: Sig(i), Pin: 0, Stuck: true})
	}
	return sites
}
