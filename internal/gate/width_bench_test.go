package gate

import (
	"fmt"
	"math/rand"
	"testing"
)

// buildBenchNetlist synthesizes a deterministic sequential circuit for
// width benchmarking: a ring of flip-flops with inverted XOR feedback
// (guaranteed switching activity from the all-zero reset state) mixed
// through a random combinational cloud, with a few observed outputs.
func buildBenchNetlist(nRegs, nComb int) *Netlist {
	b := NewBuilder("wbench")
	rng := rand.New(rand.NewSource(42))
	regs := make([]Sig, nRegs)
	for i := range regs {
		regs[i] = b.DFFPlaceholder()
	}
	sigs := append([]Sig(nil), regs...)
	for i := 0; i < nComb; i++ {
		a := sigs[rng.Intn(len(sigs))]
		c := sigs[rng.Intn(len(sigs))]
		switch rng.Intn(6) {
		case 0:
			sigs = append(sigs, b.Xor(a, c))
		case 1:
			sigs = append(sigs, b.And(a, c))
		case 2:
			sigs = append(sigs, b.Or(a, c))
		case 3:
			sigs = append(sigs, b.Not(a))
		case 4:
			sigs = append(sigs, b.Nand(a, c))
		case 5:
			sigs = append(sigs, b.Xnor(a, c))
		}
	}
	for i, r := range regs {
		d := b.Xor(regs[(i+1)%nRegs], sigs[len(sigs)-1-i%(nComb/2)])
		b.ConnectD(r, b.Not(d))
	}
	b.OutputBus("out", []Sig(sigs[len(sigs)-8:]))
	return b.N
}

// BenchmarkEventEvalWidth measures the event-driven evaluator's per-cycle
// cost as the lane word widens, with one injected fault per lane (the
// fault-simulation configuration). The interesting ratio is ns/cycle at
// w=8 versus w=1: perfect amortization would hold it flat while carrying
// 8x the machines; the machine-cycles/s metric shows the realized
// per-machine throughput.
func BenchmarkEventEvalWidth(b *testing.B) {
	n := buildBenchNetlist(256, 4000)
	sites := collectFaultSites(n)
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			s, err := NewEventSimWidth(n, w)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			lf := make([]LaneFault, 64*w)
			for lane := range lf {
				site := sites[rng.Intn(len(sites))]
				lf[lane] = LaneFault{Site: site, Lane: lane}
			}
			s.Reset()
			s.SetFaults(lf)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
			b.ReportMetric(float64(64*w)*float64(b.N)/b.Elapsed().Seconds(), "machine-cycles/s")
		})
	}
}

// collectFaultSites enumerates output stuck-at sites over the netlist's
// combinational gates.
func collectFaultSites(n *Netlist) []FaultSite {
	var sites []FaultSite
	for i := range n.Gates {
		switch n.Gates[i].Kind {
		case Const0, Const1, Input:
			continue
		}
		sites = append(sites,
			FaultSite{Gate: Sig(i), Pin: 0, Stuck: false},
			FaultSite{Gate: Sig(i), Pin: 0, Stuck: true})
	}
	return sites
}
