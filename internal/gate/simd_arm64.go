//go:build !purego

package gate

// NEON (AdvSIMD) is architecturally baseline on AArch64, so there is
// nothing to probe at runtime: every arm64 build dispatches to the NEON
// kernels unless built with the purego tag or forced lower.

func detectTier() simdTier { return tierNEON }

func tierAvailable(t simdTier) bool {
	return t == tierGeneric || t == tierNEON
}

// archBatchKernels resolves the tier's per-kind run-kernel table for
// widthIdx row wi; nil means no assembly at this tier (generic).
func archBatchKernels(t simdTier, wi int) *[numKinds]batchKernel {
	if t == tierNEON {
		return &neonKernels[wi]
	}
	return nil
}

// archCompKernels resolves the tier's per-kind raw-compute table for
// widthIdx row wi; nil means no assembly at this tier.
func archCompKernels(t simdTier, wi int) *[numKinds]compKernel {
	if t == tierNEON {
		return &neonComp[wi]
	}
	return nil
}
