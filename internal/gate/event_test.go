package gate

import (
	"math/rand"
	"testing"
)

// randSeqNetlist builds a random sequential netlist: nIn primary inputs,
// nDFF flip-flops with feedback through the random combinational cloud,
// and an output bus observing a random sample of signals.
func randSeqNetlist(r *rand.Rand, nIn, nGates, nDFF int) *Netlist {
	b := NewBuilder("rand")
	pool := append([]Sig(nil), b.InputBus("in", nIn)...)
	pool = append(pool, b.Const0(), b.Const1())
	ffs := make([]Sig, nDFF)
	for i := range ffs {
		ffs[i] = b.DFFPlaceholder()
		pool = append(pool, ffs[i])
	}
	pick := func() Sig { return pool[r.Intn(len(pool))] }
	for i := 0; i < nGates; i++ {
		var s Sig
		switch r.Intn(9) {
		case 0:
			s = b.Buf(pick())
		case 1:
			s = b.Not(pick())
		case 2:
			s = b.And(pick(), pick())
		case 3:
			s = b.Or(pick(), pick())
		case 4:
			s = b.Nand(pick(), pick())
		case 5:
			s = b.Nor(pick(), pick())
		case 6:
			s = b.Xor(pick(), pick())
		case 7:
			s = b.Xnor(pick(), pick())
		case 8:
			s = b.Mux(pick(), pick(), pick())
		}
		pool = append(pool, s)
	}
	for _, ff := range ffs {
		b.ConnectD(ff, pool[r.Intn(len(pool))])
	}
	outs := make([]Sig, 8)
	for i := range outs {
		outs[i] = pool[r.Intn(len(pool))]
	}
	b.OutputBus("out", outs)
	return b.N
}

// randFaults draws distinct-lane faults at random sites with valid pins.
func randFaults(r *rand.Rand, n *Netlist, count int) []LaneFault {
	var fs []LaneFault
	for lane := 0; lane < count; lane++ {
		g := Sig(r.Intn(len(n.Gates)))
		maxPin := n.Gates[g].Kind.NumInputs()
		pin := int8(r.Intn(maxPin + 1)) // 0 = output, 1..maxPin = inputs
		fs = append(fs, LaneFault{
			Site: FaultSite{Gate: g, Pin: pin, Stuck: r.Intn(2) == 1},
			Lane: lane,
		})
	}
	return fs
}

func checkAllSignals(t *testing.T, tag string, ob, ev *Sim) {
	t.Helper()
	for i := range ob.n.Gates {
		if ob.val[i] != ev.val[i] {
			t.Fatalf("%s: signal %d (%s) oblivious=%#x event=%#x",
				tag, i, ob.n.Gates[i].Kind, ob.val[i], ev.val[i])
		}
		if ob.state[i] != ev.state[i] {
			t.Fatalf("%s: state %d (%s) oblivious=%#x event=%#x",
				tag, i, ob.n.Gates[i].Kind, ob.state[i], ev.state[i])
		}
	}
}

// TestEventObliviousEquivalence drives random sequential netlists with
// random inputs and injected faults, asserting every signal word matches
// between the oblivious and event-driven evaluators cycle for cycle —
// including across mid-run fault swaps.
func TestEventObliviousEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := randSeqNetlist(r, 12, 400, 24)
		ob, err := NewSim(n)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := NewEventSim(n)
		if err != nil {
			t.Fatal(err)
		}
		if !ev.EventDriven() || ob.EventDriven() {
			t.Fatal("EventDriven flags wrong")
		}
		ob.Reset()
		ev.Reset()
		faults := randFaults(r, n, 32)
		ob.SetFaults(faults)
		ev.SetFaults(faults)
		for cyc := 0; cyc < 200; cyc++ {
			if cyc == 80 {
				// Swap the fault set mid-run.
				faults = randFaults(r, n, 16)
				ob.SetFaults(faults)
				ev.SetFaults(faults)
			}
			in := r.Uint64()
			ob.SetBusUniform("in", in)
			ev.SetBusUniform("in", in)
			ob.Eval()
			ev.Eval()
			checkAllSignals(t, "after Eval", ob, ev)
			// Hold inputs: a second Eval (machine.Step does this) must
			// also agree.
			ob.Eval()
			ev.Eval()
			checkAllSignals(t, "after 2nd Eval", ob, ev)
			ob.Latch()
			ev.Latch()
		}
		evals, events := ev.EvalStats()
		if evals == 0 || events == 0 {
			t.Errorf("seed %d: stats not collected (evals=%d events=%d)", seed, evals, events)
		}
	}
}

// TestEventPerLaneWords exercises SetBusWords (per-lane input values) under
// the event engine.
func TestEventPerLaneWords(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	n := randSeqNetlist(r, 8, 200, 10)
	ob, _ := NewSim(n)
	ev, _ := NewEventSim(n)
	words := make([]uint64, 8)
	for cyc := 0; cyc < 50; cyc++ {
		for i := range words {
			words[i] = r.Uint64()
		}
		ob.SetBusWords("in", words)
		ev.SetBusWords("in", words)
		ob.Step()
		ev.Step()
		checkAllSignals(t, "after Step", ob, ev)
	}
}

// TestEventLoadState fast-forwards an event sim to a mid-run snapshot taken
// from an oblivious sim and checks the two stay in lockstep afterwards.
func TestEventLoadState(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := randSeqNetlist(r, 10, 300, 16)
	dffs := n.DFFSignals()
	if len(dffs) != 16 {
		t.Fatalf("DFFSignals = %d, want 16", len(dffs))
	}
	ob, _ := NewSim(n)
	ob.Reset()
	inputs := make([]uint64, 120)
	for i := range inputs {
		inputs[i] = r.Uint64()
	}
	snap := make([]uint64, (len(dffs)+63)/64)
	const ffAt = 60
	for cyc := 0; cyc < ffAt; cyc++ {
		ob.SetBusUniform("in", inputs[cyc])
		ob.Step()
	}
	ob.StateBits(dffs, snap)

	ev, _ := NewEventSim(n)
	ev.Reset()
	ev.LoadState(dffs, snap)
	for cyc := ffAt; cyc < len(inputs); cyc++ {
		ob.SetBusUniform("in", inputs[cyc])
		ev.SetBusUniform("in", inputs[cyc])
		ob.Eval()
		ev.Eval()
		if got, want := ev.BusLane("out", 0), ob.BusLane("out", 0); got != want {
			t.Fatalf("cycle %d: out lane0 = %#x, want %#x", cyc, got, want)
		}
		ob.Latch()
		ev.Latch()
	}
}

// TestEventDropLaneConformance detects that after DropLaneFaults +
// SetLaneState a faulty lane rejoins the fault-free trajectory exactly.
func TestEventDropLaneConformance(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	n := randSeqNetlist(r, 10, 300, 16)
	dffs := n.DFFSignals()

	clean, _ := NewSim(n)
	clean.Reset()
	ev, _ := NewEventSim(n)
	ev.Reset()
	ev.SetFaults(randFaults(r, n, 40))

	inputs := make([]uint64, 100)
	for i := range inputs {
		inputs[i] = r.Uint64()
	}
	snap := make([]uint64, (len(dffs)+63)/64)
	const dropAt = 50
	for cyc := 0; cyc < len(inputs); cyc++ {
		clean.SetBusUniform("in", inputs[cyc])
		ev.SetBusUniform("in", inputs[cyc])
		clean.Eval()
		ev.Eval()
		if cyc > dropAt {
			// All lanes were conformed to the fault-free machine.
			for lane := 0; lane < 64; lane += 9 {
				if got, want := ev.BusLane("out", lane), clean.BusLane("out", 0); got != want {
					t.Fatalf("cycle %d lane %d: out=%#x, want fault-free %#x", cyc, lane, got, want)
				}
			}
		}
		clean.Latch()
		ev.Latch()
		if cyc == dropAt {
			clean.StateBits(dffs, snap)
			for lane := 0; lane < 64; lane++ {
				ev.DropLaneFaults(lane)
				ev.SetLaneState(lane, dffs, snap)
			}
		}
	}
}
