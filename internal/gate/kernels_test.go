package gate

import (
	"fmt"
	"math/rand"
	"testing"
)

// simdWidths are the lane-word counts with specialized batch kernels,
// indexed as widthIdx maps them.
var simdWidths = []int{8, 16, 32, 64}

// asmTiers lists the assembly kernel tiers runnable on this host/build
// (possibly empty — e.g. under purego).
func asmTiers() []simdTier {
	var ts []simdTier
	for _, t := range []simdTier{tierAVX512, tierAVX2, tierNEON} {
		if tierAvailable(t) {
			ts = append(ts, t)
		}
	}
	return ts
}

// buildRun lays out one same-kind run over a fresh val image: n dst
// slots followed by 3n operand slots, all filled with random words.
// Unused operand offsets stay zero, exactly as the sweeps build them.
// A third of the gates get lane-uniform operands (so the output is
// uniform) and a third get their computed output pre-stored at dst (so
// the change fold must report unchanged).
func buildRun(r *rand.Rand, kind Kind, w, n int) (val []uint64, gates []runGate) {
	val = make([]uint64, (n+3*n)*w)
	for i := range val {
		val[i] = r.Uint64()
	}
	arity := kind.NumInputs()
	for i := 0; i < n; i++ {
		g := runGate{dst: int32(i * w)}
		ops := []*int32{&g.a, &g.b, &g.c}
		for p := 0; p < arity; p++ {
			*ops[p] = int32((n + 3*i + p) * w)
		}
		if i%3 == 1 {
			// Lane-uniform operands: broadcast word 0 of each input.
			for p := 0; p < arity; p++ {
				o := int(*ops[p])
				for k := 1; k < w; k++ {
					val[o+k] = val[o]
				}
			}
		}
		if i%3 == 2 {
			// Pre-store the computed output: the kernel must flag this
			// gate unchanged.
			for k := 0; k < w; k++ {
				val[int(g.dst)+k] = evalWord(kind,
					val[int(g.a)+k], val[int(g.b)+k], val[int(g.c)+k])
			}
		}
		gates = append(gates, g)
	}
	return val, gates
}

// refBatch is a straight-line scalar model of the batch-kernel contract,
// written independently of the generated kernels: outputs into val, one
// change/uniformity flag byte per gate.
func refBatch(val []uint64, kind Kind, gates []runGate, flags []uint8, w int) {
	for i := range gates {
		g := &gates[i]
		var diff, nun, u uint64
		for k := 0; k < w; k++ {
			o := evalWord(kind, val[int(g.a)+k], val[int(g.b)+k], val[int(g.c)+k])
			if k == 0 {
				u = o
			}
			diff |= val[int(g.dst)+k] ^ o
			nun |= o ^ u
			val[int(g.dst)+k] = o
		}
		flags[i] = batchFlags(diff, nun)
	}
}

func compareRun(t *testing.T, tag string, want, got []uint64, wantF, gotF []uint8) {
	t.Helper()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: val[%d] = %#x, want %#x", tag, i, got[i], want[i])
		}
	}
	for i := range wantF {
		if wantF[i] != gotF[i] {
			t.Fatalf("%s: flags[%d] = %#x, want %#x", tag, i, gotF[i], wantF[i])
		}
	}
}

// checkRunEquivalence runs one (kind, width, run) case through the
// scalar reference, the generated Go kernel, and every assembly tier
// runnable on this host, asserting bit-identical outputs and flag bytes.
func checkRunEquivalence(t *testing.T, kind Kind, w int, val []uint64, gates []runGate) {
	t.Helper()
	n := len(gates)
	refVal := append([]uint64(nil), val...)
	refFlags := make([]uint8, n)
	refBatch(refVal, kind, gates, refFlags, w)

	goVal := append([]uint64(nil), val...)
	goFlags := make([]uint8, n)
	goBatchKernels[widthIdx(w)](goVal, kind, gates, goFlags)
	compareRun(t, fmt.Sprintf("go kernel %s w=%d", kind, w), refVal, goVal, refFlags, goFlags)

	for _, tier := range asmTiers() {
		k := archBatchKernels(tier, widthIdx(w))[kind]
		if k == nil {
			t.Fatalf("tier %s has no batch kernel for %s w=%d", tier, kind, w)
		}
		asmVal := append([]uint64(nil), val...)
		asmFlags := make([]uint8, n)
		k(&asmVal[0], &gates[0], &asmFlags[0], n)
		compareRun(t, fmt.Sprintf("%s kernel %s w=%d", tier, kind, w), refVal, asmVal, refFlags, asmFlags)
	}
}

// TestBatchKernelEquivalence asserts every assembly batch kernel tier and
// the generated Go run kernels are bit-identical to an independent scalar
// model across every kind, every SIMD width, and random run shapes —
// including crafted uniform-output and unchanged-output gates.
func TestBatchKernelEquivalence(t *testing.T) {
	for _, w := range simdWidths {
		for kind := Buf; kind <= Mux2; kind++ {
			r := rand.New(rand.NewSource(int64(w)*100 + int64(kind)))
			for trial := 0; trial < 24; trial++ {
				n := 1 + r.Intn(33)
				val, gates := buildRun(r, kind, w, n)
				checkRunEquivalence(t, kind, w, val, gates)
			}
		}
	}
}

// FuzzBatchKernels drives all kernel implementations with fuzzed run
// shapes and operand bits, asserting they never disagree.
func FuzzBatchKernels(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0))
	f.Add(int64(42), uint8(6), uint8(31))
	f.Add(int64(-7), uint8(8), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, kindSel, nSel uint8) {
		kind := Buf + Kind(int(kindSel)%int(Mux2-Buf+1))
		n := 1 + int(nSel)%32
		for _, w := range simdWidths {
			r := rand.New(rand.NewSource(seed))
			val, gates := buildRun(r, kind, w, n)
			checkRunEquivalence(t, kind, w, val, gates)
		}
	})
}

// TestRawComputeKernelEquivalence asserts every tier's raw-compute
// kernels match evalWord word for word across kinds and widths.
func TestRawComputeKernelEquivalence(t *testing.T) {
	tiers := asmTiers()
	if len(tiers) == 0 {
		t.Skip("no assembly kernels on this host/build")
	}
	for _, tier := range tiers {
		r := rand.New(rand.NewSource(11))
		for wi, w := range simdWidths {
			comp := archCompKernels(tier, wi)
			a := make([]uint64, w)
			b := make([]uint64, w)
			c := make([]uint64, w)
			dst := make([]uint64, w)
			for kind := Buf; kind <= Mux2; kind++ {
				k := comp[kind]
				if k == nil {
					t.Fatalf("tier %s has no raw-compute kernel for %s w=%d", tier, kind, w)
				}
				for trial := 0; trial < 16; trial++ {
					for j := 0; j < w; j++ {
						a[j], b[j], c[j], dst[j] = r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64()
					}
					k(&dst[0], &a[0], &b[0], &c[0])
					for j := 0; j < w; j++ {
						if want := evalWord(kind, a[j], b[j], c[j]); dst[j] != want {
							t.Fatalf("tier %s %s w=%d word %d = %#x, want %#x", tier, kind, w, j, dst[j], want)
						}
					}
				}
			}
		}
	}
}

// TestSetSIMDTier exercises the forcing API: every tier the host can run
// is forceable (and newly constructed sims capture it), unavailable and
// unknown tiers error without changing the setting, and "auto" restores
// detection.
func TestSetSIMDTier(t *testing.T) {
	defer SetSIMDTier("auto")
	for _, name := range SIMDTiers() {
		if _, err := SetSIMDTier(name); err != nil {
			t.Fatalf("SetSIMDTier(%q): %v", name, err)
		}
		if got := SIMDKernelName(); got != name && !(name == "generic" && got == "purego") {
			t.Fatalf("SIMDKernelName() = %q after forcing %q", got, name)
		}
	}
	if _, err := SetSIMDTier("no-such-tier"); err == nil {
		t.Fatal("SetSIMDTier accepted an unknown tier name")
	}
	for _, name := range []string{"avx512", "avx2", "neon"} {
		tier, _ := parseTier(name)
		if tierAvailable(tier) {
			continue
		}
		if _, err := SetSIMDTier(name); err == nil {
			t.Fatalf("SetSIMDTier(%q) succeeded on a host without it", name)
		}
	}
	if _, err := SetSIMDTier("auto"); err != nil {
		t.Fatal(err)
	}
	if forcedTier.Load() != -1 {
		t.Fatal("auto did not clear the forced tier")
	}
}

// TestSimTierEquivalence runs the same faulted random circuit on every
// runnable kernel tier plus the generic Go path, on both engines,
// asserting every signal word agrees cycle for cycle and that the
// uniformity index never claims a divergent signal uniform. It also
// checks the dispatch counters attribute runs to the right kernel
// family. This is the whole-sim half of the fallback-chain guarantee: an
// AVX-512 host exercises avx512, avx2, and generic here.
func TestSimTierEquivalence(t *testing.T) {
	defer SetSIMDTier("auto")
	names := make([]string, 0, 4)
	for _, tier := range asmTiers() {
		names = append(names, tier.String())
	}
	names = append(names, "generic")
	for _, w := range simdWidths {
		r := rand.New(rand.NewSource(int64(w)))
		n := randSeqNetlist(r, 10, 300, 16)
		faults := randFaults(r, n, 48)
		var sims []*Sim
		var tags []string
		for _, name := range names {
			if _, err := SetSIMDTier(name); err != nil {
				t.Fatal(err)
			}
			ob, err := NewSimWidth(n, w)
			if err != nil {
				t.Fatal(err)
			}
			ev, err := NewEventSimWidth(n, w)
			if err != nil {
				t.Fatal(err)
			}
			sims = append(sims, ob, ev)
			tags = append(tags, name+"/obliv", name+"/event")
		}
		for _, s := range sims {
			s.Reset()
			s.SetFaults(faults)
		}
		ref := sims[0]
		for cyc := 0; cyc < 120; cyc++ {
			in := r.Uint64()
			for _, s := range sims {
				s.SetBusUniform("in", in)
				s.Step()
			}
			for si, s := range sims[1:] {
				for i := range ref.val {
					if s.val[i] != ref.val[i] {
						t.Fatalf("w=%d cycle %d: val[%d] diverges: %s=%#x %s=%#x",
							w, cyc, i, tags[0], ref.val[i], tags[si+1], s.val[i])
					}
				}
			}
			for si, s := range sims {
				for sig := range s.n.Gates {
					if s.uni[sig] && !allEqual(s.val[sig*w:(sig+1)*w]) {
						t.Fatalf("w=%d cycle %d %s: uni[%d] set but lanes diverge", w, cyc, tags[si], sig)
					}
				}
			}
		}
		for si, s := range sims {
			ks := s.KernelStats()
			generic := s.kern == nil
			if generic && (ks.GenericRuns == 0 || ks.SIMDRuns != 0) {
				t.Errorf("w=%d %s stats: SIMDRuns=%d GenericRuns=%d", w, tags[si], ks.SIMDRuns, ks.GenericRuns)
			}
			if !generic && (ks.SIMDRuns == 0 || ks.GenericRuns != 0) {
				t.Errorf("w=%d %s stats: SIMDRuns=%d GenericRuns=%d", w, tags[si], ks.SIMDRuns, ks.GenericRuns)
			}
		}
	}
}

// TestSimSIMDOnOffEquivalence keeps the coarse on/off switch honest:
// SetSIMD(false) must force the generic kernels regardless of tier.
func TestSimSIMDOnOffEquivalence(t *testing.T) {
	if !SIMDAvailable() {
		t.Skip("no assembly kernels on this host/build")
	}
	prev := SetSIMD(true)
	defer SetSIMD(prev)
	w := 32
	r := rand.New(rand.NewSource(32))
	n := randSeqNetlist(r, 10, 300, 16)
	faults := randFaults(r, n, 48)
	mkSim := func(simd bool) *Sim {
		SetSIMD(simd)
		ev, err := NewEventSimWidth(n, w)
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}
	on, off := mkSim(true), mkSim(false)
	for _, s := range []*Sim{on, off} {
		s.Reset()
		s.SetFaults(faults)
	}
	for cyc := 0; cyc < 120; cyc++ {
		in := r.Uint64()
		for _, s := range []*Sim{on, off} {
			s.SetBusUniform("in", in)
			s.Step()
		}
		for i := range on.val {
			if on.val[i] != off.val[i] {
				t.Fatalf("cycle %d: val[%d] diverges: on=%#x off=%#x", cyc, i, on.val[i], off.val[i])
			}
		}
	}
	if ks := on.KernelStats(); ks.SIMDRuns == 0 || ks.GenericRuns != 0 {
		t.Errorf("SIMD-on stats: SIMDRuns=%d GenericRuns=%d", ks.SIMDRuns, ks.GenericRuns)
	}
	if ks := off.KernelStats(); ks.GenericRuns == 0 || ks.SIMDRuns != 0 {
		t.Errorf("SIMD-off stats: SIMDRuns=%d GenericRuns=%d", ks.SIMDRuns, ks.GenericRuns)
	}
}
