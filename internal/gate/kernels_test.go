package gate

import (
	"fmt"
	"math/rand"
	"testing"
)

// simdWidths are the lane-word counts with specialized batch kernels,
// indexed as widthIdx maps them.
var simdWidths = []int{8, 16, 32}

// buildRun lays out one same-kind run over a fresh val image: n dst
// slots followed by 3n operand slots, all filled with random words.
// Unused operand offsets stay zero, exactly as the sweeps build them.
// A third of the gates get lane-uniform operands (so the output is
// uniform) and a third get their computed output pre-stored at dst (so
// the change fold must report unchanged).
func buildRun(r *rand.Rand, kind Kind, w, n int) (val []uint64, gates []runGate) {
	val = make([]uint64, (n+3*n)*w)
	for i := range val {
		val[i] = r.Uint64()
	}
	arity := kind.NumInputs()
	for i := 0; i < n; i++ {
		g := runGate{dst: int32(i * w)}
		ops := []*int32{&g.a, &g.b, &g.c}
		for p := 0; p < arity; p++ {
			*ops[p] = int32((n + 3*i + p) * w)
		}
		if i%3 == 1 {
			// Lane-uniform operands: broadcast word 0 of each input.
			for p := 0; p < arity; p++ {
				o := int(*ops[p])
				for k := 1; k < w; k++ {
					val[o+k] = val[o]
				}
			}
		}
		if i%3 == 2 {
			// Pre-store the computed output: the kernel must flag this
			// gate unchanged.
			for k := 0; k < w; k++ {
				val[int(g.dst)+k] = evalWord(kind,
					val[int(g.a)+k], val[int(g.b)+k], val[int(g.c)+k])
			}
		}
		gates = append(gates, g)
	}
	return val, gates
}

// refBatch is a straight-line scalar model of the batch-kernel contract,
// written independently of the generated kernels: outputs into val, one
// change/uniformity flag byte per gate.
func refBatch(val []uint64, kind Kind, gates []runGate, flags []uint8, w int) {
	for i := range gates {
		g := &gates[i]
		var diff, nun, u uint64
		for k := 0; k < w; k++ {
			o := evalWord(kind, val[int(g.a)+k], val[int(g.b)+k], val[int(g.c)+k])
			if k == 0 {
				u = o
			}
			diff |= val[int(g.dst)+k] ^ o
			nun |= o ^ u
			val[int(g.dst)+k] = o
		}
		flags[i] = batchFlags(diff, nun)
	}
}

func dispatchGoBatch(w int, val []uint64, kind Kind, gates []runGate, flags []uint8) {
	switch w {
	case 8:
		batchEvalGo8(val, kind, gates, flags)
	case 16:
		batchEvalGo16(val, kind, gates, flags)
	case 32:
		batchEvalGo32(val, kind, gates, flags)
	default:
		panic("no Go batch kernel at this width")
	}
}

func compareRun(t *testing.T, tag string, want, got []uint64, wantF, gotF []uint8) {
	t.Helper()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: val[%d] = %#x, want %#x", tag, i, got[i], want[i])
		}
	}
	for i := range wantF {
		if wantF[i] != gotF[i] {
			t.Fatalf("%s: flags[%d] = %#x, want %#x", tag, i, gotF[i], wantF[i])
		}
	}
}

// checkRunEquivalence runs one (kind, width, run) case through the
// scalar reference, the generated Go kernel, and (when available) the
// AVX2 kernel, asserting bit-identical outputs and flag bytes.
func checkRunEquivalence(t *testing.T, kind Kind, w int, val []uint64, gates []runGate) {
	t.Helper()
	n := len(gates)
	refVal := append([]uint64(nil), val...)
	refFlags := make([]uint8, n)
	refBatch(refVal, kind, gates, refFlags, w)

	goVal := append([]uint64(nil), val...)
	goFlags := make([]uint8, n)
	dispatchGoBatch(w, goVal, kind, gates, goFlags)
	compareRun(t, fmt.Sprintf("go kernel %s w=%d", kind, w), refVal, goVal, refFlags, goFlags)

	if !SIMDAvailable() {
		return
	}
	asmVal := append([]uint64(nil), val...)
	asmFlags := make([]uint8, n)
	if !simdBatch(w, kind, asmVal, gates, asmFlags) {
		t.Fatalf("simdBatch refused %s w=%d", kind, w)
	}
	compareRun(t, fmt.Sprintf("asm kernel %s w=%d", kind, w), refVal, asmVal, refFlags, asmFlags)
}

// TestBatchKernelEquivalence asserts the AVX2 batch kernels and the
// generated Go run kernels are bit-identical to an independent scalar
// model across every kind, every SIMD width, and random run shapes —
// including crafted uniform-output and unchanged-output gates.
func TestBatchKernelEquivalence(t *testing.T) {
	for _, w := range simdWidths {
		for kind := Buf; kind <= Mux2; kind++ {
			r := rand.New(rand.NewSource(int64(w)*100 + int64(kind)))
			for trial := 0; trial < 24; trial++ {
				n := 1 + r.Intn(33)
				val, gates := buildRun(r, kind, w, n)
				checkRunEquivalence(t, kind, w, val, gates)
			}
		}
	}
}

// FuzzBatchKernels drives the three kernel implementations with fuzzed
// run shapes and operand bits, asserting they never disagree.
func FuzzBatchKernels(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0))
	f.Add(int64(42), uint8(6), uint8(31))
	f.Add(int64(-7), uint8(8), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, kindSel, nSel uint8) {
		kind := Buf + Kind(int(kindSel)%int(Mux2-Buf+1))
		n := 1 + int(nSel)%32
		for _, w := range simdWidths {
			r := rand.New(rand.NewSource(seed))
			val, gates := buildRun(r, kind, w, n)
			checkRunEquivalence(t, kind, w, val, gates)
		}
	})
}

// TestRawComputeKernelEquivalence asserts the AVX2 raw-compute kernels
// match evalWord word for word across kinds and widths.
func TestRawComputeKernelEquivalence(t *testing.T) {
	if !SIMDAvailable() {
		t.Skip("no assembly kernels on this host/build")
	}
	r := rand.New(rand.NewSource(11))
	for wi, w := range simdWidths {
		a := make([]uint64, w)
		b := make([]uint64, w)
		c := make([]uint64, w)
		dst := make([]uint64, w)
		for kind := Buf; kind <= Mux2; kind++ {
			for trial := 0; trial < 16; trial++ {
				for k := 0; k < w; k++ {
					a[k], b[k], c[k], dst[k] = r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64()
				}
				if !simdComputeRaw(wi, kind, &dst[0], &a[0], &b[0], &c[0]) {
					t.Fatalf("simdComputeRaw refused %s w=%d", kind, w)
				}
				for k := 0; k < w; k++ {
					if want := evalWord(kind, a[k], b[k], c[k]); dst[k] != want {
						t.Fatalf("%s w=%d word %d = %#x, want %#x", kind, w, k, dst[k], want)
					}
				}
			}
		}
	}
}

// TestSimSIMDOnOffEquivalence runs the same faulted random circuit with
// the assembly kernels enabled and disabled, on both engines, asserting
// every signal word agrees cycle for cycle and that the uniformity index
// never claims a divergent signal uniform. It also checks the dispatch
// counters attribute runs to the right kernel family.
func TestSimSIMDOnOffEquivalence(t *testing.T) {
	if !SIMDAvailable() {
		t.Skip("no assembly kernels on this host/build")
	}
	prev := SetSIMD(true)
	defer SetSIMD(prev)
	for _, w := range simdWidths {
		r := rand.New(rand.NewSource(int64(w)))
		n := randSeqNetlist(r, 10, 300, 16)
		mkSims := func(simd bool) (*Sim, *Sim) {
			SetSIMD(simd)
			ob, err := NewSimWidth(n, w)
			if err != nil {
				t.Fatal(err)
			}
			ev, err := NewEventSimWidth(n, w)
			if err != nil {
				t.Fatal(err)
			}
			return ob, ev
		}
		obOn, evOn := mkSims(true)
		obOff, evOff := mkSims(false)
		sims := []*Sim{obOn, evOn, obOff, evOff}
		faults := randFaults(r, n, 48)
		for _, s := range sims {
			s.Reset()
			s.SetFaults(faults)
		}
		for cyc := 0; cyc < 120; cyc++ {
			in := r.Uint64()
			for _, s := range sims {
				s.SetBusUniform("in", in)
				s.Step()
			}
			for i := range evOn.val {
				if evOn.val[i] != obOn.val[i] || evOn.val[i] != evOff.val[i] || evOn.val[i] != obOff.val[i] {
					t.Fatalf("w=%d cycle %d: val[%d] diverges: evOn=%#x obOn=%#x evOff=%#x obOff=%#x",
						w, cyc, i, evOn.val[i], obOn.val[i], evOff.val[i], obOff.val[i])
				}
			}
			for _, s := range sims {
				for sig := range s.n.Gates {
					if s.uni[sig] && !allEqual(s.val[sig*w:(sig+1)*w]) {
						t.Fatalf("w=%d cycle %d: uni[%d] set but lanes diverge", w, cyc, sig)
					}
				}
			}
		}
		for _, s := range []*Sim{evOn, obOn} {
			ks := s.KernelStats()
			if ks.SIMDRuns == 0 || ks.GenericRuns != 0 {
				t.Errorf("w=%d SIMD-on stats: SIMDRuns=%d GenericRuns=%d", w, ks.SIMDRuns, ks.GenericRuns)
			}
		}
		for _, s := range []*Sim{evOff, obOff} {
			ks := s.KernelStats()
			if ks.GenericRuns == 0 || ks.SIMDRuns != 0 {
				t.Errorf("w=%d SIMD-off stats: SIMDRuns=%d GenericRuns=%d", w, ks.SIMDRuns, ks.GenericRuns)
			}
		}
	}
}
