//go:build !purego

package gate

// Runtime CPU-feature detection for the AVX2 batch kernels. The module
// is dependency-free, so the CPUID/XGETBV probes are done directly
// (cpuid_amd64.s) instead of via golang.org/x/sys/cpu: AVX needs
// OSXSAVE + the AVX bit in CPUID.1:ECX and OS-enabled XMM/YMM state in
// XCR0; AVX2 is CPUID.7.0:EBX bit 5.

func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

var hasAVX2 = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const osxsave, avx = 1 << 27, 1 << 28
	_, _, c, _ := cpuid(1, 0)
	if c&osxsave == 0 || c&avx == 0 {
		return false
	}
	if x, _ := xgetbv(); x&6 != 6 { // XMM and YMM state OS-enabled
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	return b&(1<<5) != 0
}

func simdAvailable() bool { return hasAVX2 }

// simdBatch dispatches one same-kind run to its AVX2 kernel. It reports
// false when no kernel covers the width/kind (the caller then runs the
// Go kernel); the caller has already checked that SIMD is enabled.
func simdBatch(w int, kind Kind, val []uint64, gates []runGate, flags []uint8) bool {
	k := avx2Kernels[widthIdx(w)][kind]
	if k == nil || len(gates) == 0 {
		return false
	}
	k(&val[0], &gates[0], &flags[0], len(gates))
	return true
}

// simdComputeRaw dispatches one gate's raw recompute to its AVX2
// raw-compute kernel. wi is the widthIdx row; it reports false when no
// kernel covers the kind (the caller then runs computeInto).
func simdComputeRaw(wi int, kind Kind, dst, a, b, c *uint64) bool {
	k := avx2Comp[wi][kind]
	if k == nil {
		return false
	}
	k(dst, a, b, c)
	return true
}
