//go:build !purego

package gate

// Runtime CPU-feature detection for the amd64 kernel backends. The
// module is dependency-free, so the CPUID/XGETBV probes are done
// directly (cpuid_amd64.s) instead of via golang.org/x/sys/cpu: AVX
// needs OSXSAVE + the AVX bit in CPUID.1:ECX and OS-enabled XMM/YMM
// state in XCR0; AVX2 is CPUID.7.0:EBX bit 5. The AVX-512 kernels use
// only foundation instructions plus VPTESTMQ on quadwords, so the gate
// is AVX512F + AVX512BW with the opmask/ZMM state bits OS-enabled in
// XCR0 (without the XCR0 check a VM that masks state support would
// fault on the first ZMM touch).

func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

var (
	hasAVX2   = detectAVX2()
	hasAVX512 = detectAVX512()
)

func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const osxsave, avx = 1 << 27, 1 << 28
	_, _, c, _ := cpuid(1, 0)
	if c&osxsave == 0 || c&avx == 0 {
		return false
	}
	if x, _ := xgetbv(); x&6 != 6 { // XMM and YMM state OS-enabled
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	return b&(1<<5) != 0
}

func detectAVX512() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const osxsave = 1 << 27
	_, _, c, _ := cpuid(1, 0)
	if c&osxsave == 0 {
		return false
	}
	// XCR0 bits: XMM (1), YMM (2), opmask (5), ZMM_Hi256 (6),
	// Hi16_ZMM (7) all OS-enabled.
	if x, _ := xgetbv(); x&0xe6 != 0xe6 {
		return false
	}
	const avx512f, avx512bw = 1 << 16, 1 << 30
	_, b, _, _ := cpuid(7, 0)
	return b&avx512f != 0 && b&avx512bw != 0
}

func detectTier() simdTier {
	switch {
	case hasAVX512:
		return tierAVX512
	case hasAVX2:
		return tierAVX2
	}
	return tierGeneric
}

func tierAvailable(t simdTier) bool {
	switch t {
	case tierGeneric:
		return true
	case tierAVX2:
		return hasAVX2
	case tierAVX512:
		return hasAVX512
	}
	return false
}

// archBatchKernels resolves the tier's per-kind run-kernel table for
// widthIdx row wi; nil means no assembly at this tier (generic).
func archBatchKernels(t simdTier, wi int) *[numKinds]batchKernel {
	switch t {
	case tierAVX512:
		return &avx512Kernels[wi]
	case tierAVX2:
		return &avx2Kernels[wi]
	}
	return nil
}

// archCompKernels resolves the tier's per-kind raw-compute table for
// widthIdx row wi; nil means no assembly at this tier.
func archCompKernels(t simdTier, wi int) *[numKinds]compKernel {
	switch t {
	case tierAVX512:
		return &avx512Comp[wi]
	case tierAVX2:
		return &avx2Comp[wi]
	}
	return nil
}
