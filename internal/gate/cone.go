package gate

// FanoutConeSigs computes a compact transitive-fanout-cone signature for
// every signal: a 64-bit bucket mask of the sequential/observation
// frontier (flip-flops and observed primary outputs) reachable through
// combinational logic from the signal. Frontier elements are hashed into
// 64 buckets by their position in the netlist; gates created together
// (same RT-level component) land in nearby buckets, so signals whose
// faults disturb the same region of the machine get equal or similar
// masks.
//
// Fault-simulation pass packing uses these signatures to co-locate faults
// whose divergence activity stays inside a shared cone: a wide pass then
// generates events in one region instead of the union of many unrelated
// cones. The signature is an over-approximation hash — collisions only
// cost packing quality, never correctness.
func (n *Netlist) FanoutConeSigs() []uint64 {
	ng := len(n.Gates)
	cone := make([]uint64, ng)
	if ng == 0 {
		return cone
	}
	bucket := func(sig Sig) uint64 {
		return 1 << (uint(sig) * 64 / uint(ng))
	}
	// Seed the frontier: observed outputs observe themselves; a DFF's D
	// input reaches the DFF at the next clock edge.
	for _, sig := range n.ObservedSignals() {
		cone[sig] |= bucket(sig)
	}
	for i := range n.Gates {
		if n.Gates[i].Kind == DFF {
			cone[n.Gates[i].In[0]] |= bucket(Sig(i))
		}
	}
	order, err := n.levelize()
	if err != nil {
		return cone // unreachable on validated netlists
	}
	// Reverse topological sweep: each gate's cone is final before its
	// producers accumulate it (consumers appear later in topological
	// order, so earlier in this sweep).
	for i := len(order) - 1; i >= 0; i-- {
		sig := order[i]
		g := &n.Gates[sig]
		c := cone[sig]
		if c == 0 {
			continue
		}
		for p := 0; p < g.Kind.NumInputs(); p++ {
			cone[g.In[p]] |= c
		}
	}
	return cone
}

// ConeOf maps a fault site to the cone signature of the signal whose value
// the fault disturbs (the driven signal for both stem and pin faults: a
// pin fault propagates through its gate before spreading).
func ConeOf(cones []uint64, site FaultSite) uint64 {
	return cones[site.Gate]
}
