package gate

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteNetlist serializes a netlist to a line-oriented text format:
//
//	netlist <name>
//	comp <name>           (one per component, in id order)
//	g <kind> <in0> <in1> <in2> <comp>   (one per gate, signal = line order)
//	inbus <name> <sig...>
//	outbus <name> <sig...>
//
// Unconnected pins are written as '-'. The format round-trips exactly.
func WriteNetlist(w io.Writer, n *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "netlist %s\n", n.Name)
	for _, c := range n.CompNames {
		fmt.Fprintf(bw, "comp %s\n", c)
	}
	pin := func(s Sig) string {
		if s == NoSig {
			return "-"
		}
		return strconv.Itoa(int(s))
	}
	for i := range n.Gates {
		g := &n.Gates[i]
		fmt.Fprintf(bw, "g %s %s %s %s %d\n", g.Kind, pin(g.In[0]), pin(g.In[1]), pin(g.In[2]), g.Comp)
	}
	for _, p := range n.inputs {
		fmt.Fprintf(bw, "inbus %s%s\n", p.name, sigList(p.sigs))
	}
	for _, p := range n.outputs {
		fmt.Fprintf(bw, "outbus %s%s\n", p.name, sigList(p.sigs))
	}
	return bw.Flush()
}

func sigList(sigs []Sig) string {
	var sb strings.Builder
	for _, s := range sigs {
		fmt.Fprintf(&sb, " %d", s)
	}
	return sb.String()
}

// kindByName resolves a cell kind name.
func kindByName(name string) (Kind, bool) {
	for k := Kind(0); k < numKinds; k++ {
		if kindNames[k] == name {
			return k, true
		}
	}
	return 0, false
}

// ReadNetlist parses the format written by WriteNetlist and validates the
// result.
func ReadNetlist(r io.Reader) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var n *Netlist
	line := 0
	compCount := 0
	parsePin := func(tok string) (Sig, error) {
		if tok == "-" {
			return NoSig, nil
		}
		v, err := strconv.Atoi(tok)
		if err != nil {
			return NoSig, err
		}
		return Sig(v), nil
	}
	parseSigs := func(toks []string) ([]Sig, error) {
		sigs := make([]Sig, len(toks))
		for i, t := range toks {
			v, err := strconv.Atoi(t)
			if err != nil {
				return nil, err
			}
			sigs[i] = Sig(v)
		}
		return sigs, nil
	}
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "netlist":
			if len(fields) != 2 {
				return nil, fmt.Errorf("gate: line %d: netlist wants a name", line)
			}
			n = NewNetlist(fields[1])
		case "comp":
			if n == nil {
				return nil, fmt.Errorf("gate: line %d: comp before netlist", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("gate: line %d: comp wants a name", line)
			}
			// Component 0 (glue) is predefined; replace its name first.
			if compCount == 0 {
				n.CompNames[0] = fields[1]
			} else {
				n.AddComponent(fields[1])
			}
			compCount++
		case "g":
			if n == nil || len(fields) != 6 {
				return nil, fmt.Errorf("gate: line %d: bad gate line", line)
			}
			k, ok := kindByName(fields[1])
			if !ok {
				return nil, fmt.Errorf("gate: line %d: unknown kind %q", line, fields[1])
			}
			var g Gate
			g.Kind = k
			for p := 0; p < 3; p++ {
				s, err := parsePin(fields[2+p])
				if err != nil {
					return nil, fmt.Errorf("gate: line %d: bad pin %q", line, fields[2+p])
				}
				g.In[p] = s
			}
			comp, err := strconv.Atoi(fields[5])
			if err != nil {
				return nil, fmt.Errorf("gate: line %d: bad comp id", line)
			}
			g.Comp = CompID(comp)
			n.Gates = append(n.Gates, g)
		case "inbus":
			if n == nil || len(fields) < 2 {
				return nil, fmt.Errorf("gate: line %d: bad inbus", line)
			}
			sigs, err := parseSigs(fields[2:])
			if err != nil {
				return nil, fmt.Errorf("gate: line %d: bad inbus signals", line)
			}
			if _, dup := n.inputByName[fields[1]]; dup {
				return nil, fmt.Errorf("gate: line %d: duplicate inbus %q", line, fields[1])
			}
			n.inputByName[fields[1]] = len(n.inputs)
			n.inputs = append(n.inputs, portDef{name: fields[1], sigs: sigs})
		case "outbus":
			if n == nil || len(fields) < 2 {
				return nil, fmt.Errorf("gate: line %d: bad outbus", line)
			}
			sigs, err := parseSigs(fields[2:])
			if err != nil {
				return nil, fmt.Errorf("gate: line %d: bad outbus signals", line)
			}
			n.outputs = append(n.outputs, portDef{name: fields[1], sigs: sigs})
		default:
			return nil, fmt.Errorf("gate: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n == nil {
		return nil, fmt.Errorf("gate: empty netlist file")
	}
	// Input gates declared via inbus must actually be Input cells.
	for _, p := range n.inputs {
		for _, s := range p.sigs {
			if s < 0 || int(s) >= len(n.Gates) || n.Gates[s].Kind != Input {
				return nil, fmt.Errorf("gate: inbus %q signal %d is not an INPUT cell", p.name, s)
			}
		}
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}
