package gate

// Builder constructs netlists one cell at a time. It tracks the current
// component region so that synthesized structures are tagged for
// per-component gate counting and fault coverage.
type Builder struct {
	N    *Netlist
	comp CompID

	const0 Sig
	const1 Sig
}

// NewBuilder returns a builder over a fresh netlist.
func NewBuilder(name string) *Builder {
	b := &Builder{N: NewNetlist(name), const0: NoSig, const1: NoSig}
	return b
}

// BeginComponent registers a component region and makes it current; gates
// created until the next BeginComponent/EndComponent belong to it.
func (b *Builder) BeginComponent(name string) CompID {
	id := b.N.AddComponent(name)
	b.comp = id
	return id
}

// SetComponent makes an existing component region current.
func (b *Builder) SetComponent(id CompID) { b.comp = id }

// EndComponent reverts to the glue-logic region.
func (b *Builder) EndComponent() { b.comp = GlueComp }

// Component reports the current component region.
func (b *Builder) Component() CompID { return b.comp }

// InputBus declares a primary input bus in the current component.
func (b *Builder) InputBus(name string, width int) []Sig {
	return b.N.AddInputBus(name, width, b.comp)
}

// Input declares a 1-bit primary input.
func (b *Builder) Input(name string) Sig { return b.InputBus(name, 1)[0] }

// OutputBus declares a primary output bus.
func (b *Builder) OutputBus(name string, sigs []Sig) { b.N.AddOutputBus(name, sigs) }

// Output declares a 1-bit primary output.
func (b *Builder) Output(name string, s Sig) { b.N.AddOutputBus(name, []Sig{s}) }

func (b *Builder) cell(k Kind, in0, in1, in2 Sig) Sig {
	return b.N.add(Gate{Kind: k, In: [3]Sig{in0, in1, in2}, Comp: b.comp})
}

// Const0 returns the constant-0 signal (created on first use).
func (b *Builder) Const0() Sig {
	if b.const0 == NoSig {
		b.const0 = b.N.add(Gate{Kind: Const0, In: [3]Sig{NoSig, NoSig, NoSig}, Comp: GlueComp})
	}
	return b.const0
}

// Const1 returns the constant-1 signal (created on first use).
func (b *Builder) Const1() Sig {
	if b.const1 == NoSig {
		b.const1 = b.N.add(Gate{Kind: Const1, In: [3]Sig{NoSig, NoSig, NoSig}, Comp: GlueComp})
	}
	return b.const1
}

// ConstBit returns Const0 or Const1.
func (b *Builder) ConstBit(v bool) Sig {
	if v {
		return b.Const1()
	}
	return b.Const0()
}

// Buf inserts a buffer.
func (b *Builder) Buf(a Sig) Sig { return b.cell(Buf, a, NoSig, NoSig) }

// Not inserts an inverter.
func (b *Builder) Not(a Sig) Sig { return b.cell(Not, a, NoSig, NoSig) }

// And inserts a 2-input AND.
func (b *Builder) And(a, c Sig) Sig { return b.cell(And2, a, c, NoSig) }

// Or inserts a 2-input OR.
func (b *Builder) Or(a, c Sig) Sig { return b.cell(Or2, a, c, NoSig) }

// Nand inserts a 2-input NAND.
func (b *Builder) Nand(a, c Sig) Sig { return b.cell(Nand2, a, c, NoSig) }

// Nor inserts a 2-input NOR.
func (b *Builder) Nor(a, c Sig) Sig { return b.cell(Nor2, a, c, NoSig) }

// Xor inserts a 2-input XOR.
func (b *Builder) Xor(a, c Sig) Sig { return b.cell(Xor2, a, c, NoSig) }

// Xnor inserts a 2-input XNOR.
func (b *Builder) Xnor(a, c Sig) Sig { return b.cell(Xnor2, a, c, NoSig) }

// Mux inserts a 2-to-1 mux: result is a when sel==0, c when sel==1.
func (b *Builder) Mux(a, c, sel Sig) Sig { return b.cell(Mux2, a, c, sel) }

// DFF inserts a D flip-flop clocked by the implicit global clock.
func (b *Builder) DFF(d Sig) Sig { return b.cell(DFF, d, NoSig, NoSig) }

// DFFPlaceholder inserts a flip-flop whose D input is connected later via
// ConnectD, enabling feedback (state machine) construction.
func (b *Builder) DFFPlaceholder() Sig { return b.cell(DFF, NoSig, NoSig, NoSig) }

// ConnectD wires the D input of a placeholder flip-flop.
func (b *Builder) ConnectD(ff, d Sig) {
	g := &b.N.Gates[ff]
	if g.Kind != DFF {
		panic("gate: ConnectD target is not a DFF")
	}
	if g.In[0] != NoSig {
		panic("gate: DFF D input already connected")
	}
	g.In[0] = d
}

// Wire inserts a forward-declared buffer whose driver is connected later
// via DriveWire, breaking build-order cycles between components.
func (b *Builder) Wire() Sig { return b.cell(Buf, NoSig, NoSig, NoSig) }

// DriveWire connects the driver of a forward-declared wire.
func (b *Builder) DriveWire(w, src Sig) {
	g := &b.N.Gates[w]
	if g.Kind != Buf {
		panic("gate: DriveWire target is not a wire")
	}
	if g.In[0] != NoSig {
		panic("gate: wire already driven")
	}
	g.In[0] = src
}

// AndN reduces any number of signals with a balanced AND tree.
func (b *Builder) AndN(sigs ...Sig) Sig { return b.reduce(b.And, b.Const1(), sigs) }

// OrN reduces any number of signals with a balanced OR tree.
func (b *Builder) OrN(sigs ...Sig) Sig { return b.reduce(b.Or, b.Const0(), sigs) }

// XorN reduces any number of signals with a balanced XOR tree.
func (b *Builder) XorN(sigs ...Sig) Sig { return b.reduce(b.Xor, b.Const0(), sigs) }

func (b *Builder) reduce(op func(Sig, Sig) Sig, empty Sig, sigs []Sig) Sig {
	switch len(sigs) {
	case 0:
		return empty
	case 1:
		return sigs[0]
	}
	// Balanced tree keeps logic depth logarithmic.
	cur := append([]Sig(nil), sigs...)
	for len(cur) > 1 {
		var next []Sig
		for i := 0; i+1 < len(cur); i += 2 {
			next = append(next, op(cur[i], cur[i+1]))
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	return cur[0]
}
