package gate

// Event-driven (differential) evaluation mode for Sim. The oblivious
// evaluator in sim.go re-evaluates every combinational gate on every Eval;
// a clocked processor has low per-cycle switching activity, so most of
// that work recomputes values that cannot have changed. The incremental
// evaluator keeps per-level dirty queues and only re-evaluates gates whose
// fan-in changed since the previous Eval:
//
//   - signals are levelized once; a changed signal schedules its
//     combinational consumers (which all sit at strictly higher levels),
//     so one ascending sweep over the level queues reaches a fixed point;
//   - flip-flops latch only when a D input saw an event, and present their
//     new output only when the latched state actually changed;
//   - gates with fault-injection hooks re-evaluate when their hook set
//     changes (installation via the full sweep, per-lane disarming via
//     DropLaneFaults): a hook changes the gate's function without any
//     input event, but once the injected value is established in val it is
//     sticky, so between hook mutations hooked gates are re-evaluated only
//     on ordinary input events like any other gate.
//
// The invariant maintained between Evals is word-level: every signal's
// lane words (64*LaneWords lanes) equal its gate function applied to its
// fan-in words (with injection hooks applied). Any operation that breaks
// the invariant wholesale (Reset, SetFaults, LoadState) marks the
// simulator fully dirty, and the next Eval falls back to one oblivious
// sweep.

// incState is the bookkeeping of the event-driven evaluator.
type incState struct {
	// qstate holds each signal's combinational level (sources at 0),
	// negated while the signal waits in its level queue. Folding the
	// queued flag into the level array means the enqueue test touches one
	// random cache line per fanout consumer instead of two — propagate is
	// the hottest loop of the event engine once the kernels are batched.
	qstate   []int32
	maxLevel int32

	// CSR fan-out of each signal, split into combinational consumers
	// (scheduled into level queues) and flip-flop D inputs (scheduled
	// into the latch-pending set).
	combIdx []int32
	combFan []Sig
	dffIdx  []int32
	dffFan  []Sig

	dffs []Sig // every flip-flop signal, for full latches

	// Pending combinational gates, segmented by level: level lv's queue
	// occupies qbuf[qoff[lv] : qpos[lv]], qpos being the running write
	// position (reset to qoff after the level drains). Each segment is
	// sized to the level's gate population (qstate deduplicates, so it
	// cannot overflow). One flat preallocated buffer keeps an enqueue to
	// a single indexed store — the slice-append variant dominated sweep
	// profiles once the kernels went SIMD.
	qbuf []Sig
	qoff []int32
	qpos []int32

	dffPending []Sig // DFFs whose D input saw an event since the last Latch
	dffPendSet []bool
	dffChanged []Sig // DFFs whose latched state changed since the last Eval
	dffChgSet  []bool

	allDirty   bool // next Eval must be a full oblivious sweep
	latchAll   bool // next Latch must scan every flip-flop
	hooksDirty bool // a hook set changed: next Eval revisits hooked gates

	evals  uint64 // gate evaluations performed
	events uint64 // signal value changes propagated
}

// NewEventSim compiles a netlist into a width-1 simulator that uses
// event-driven incremental evaluation. It is bit-for-bit equivalent to
// NewSim's oblivious evaluator (cross-checked in tests) and much faster on
// low-activity workloads.
func NewEventSim(n *Netlist) (*Sim, error) { return NewEventSimWidth(n, 1) }

// NewEventSimWidth is NewEventSim at w lane words (64*w lanes) per signal.
func NewEventSimWidth(n *Netlist, w int) (*Sim, error) {
	s, err := NewSimWidth(n, w)
	if err != nil {
		return nil, err
	}
	s.inc = newIncState(n, s.order)
	return s, nil
}

// EventDriven reports whether this simulator evaluates incrementally.
func (s *Sim) EventDriven() bool { return s.inc != nil }

func newIncState(n *Netlist, order []Sig) *incState {
	ng := len(n.Gates)
	inc := &incState{
		qstate:     make([]int32, ng),
		dffPendSet: make([]bool, ng),
		dffChgSet:  make([]bool, ng),
		allDirty:   true,
		latchAll:   true,
	}
	for _, sig := range order {
		g := &n.Gates[sig]
		lv := int32(0)
		for p := 0; p < g.Kind.NumInputs(); p++ {
			if l := inc.qstate[g.In[p]] + 1; l > lv {
				lv = l
			}
		}
		inc.qstate[sig] = lv
		if lv > inc.maxLevel {
			inc.maxLevel = lv
		}
	}
	combCnt := make([]int32, ng+1)
	dffCnt := make([]int32, ng+1)
	for i := range n.Gates {
		g := &n.Gates[i]
		if g.Kind == DFF {
			inc.dffs = append(inc.dffs, Sig(i))
			dffCnt[g.In[0]+1]++
			continue
		}
		for p := 0; p < g.Kind.NumInputs(); p++ {
			combCnt[g.In[p]+1]++
		}
	}
	for i := 0; i < ng; i++ {
		combCnt[i+1] += combCnt[i]
		dffCnt[i+1] += dffCnt[i]
	}
	inc.combIdx, inc.dffIdx = combCnt, dffCnt
	inc.combFan = make([]Sig, combCnt[ng])
	inc.dffFan = make([]Sig, dffCnt[ng])
	combPos := append([]int32(nil), combCnt[:ng]...)
	dffPos := append([]int32(nil), dffCnt[:ng]...)
	for i := range n.Gates {
		g := &n.Gates[i]
		if g.Kind == DFF {
			d := g.In[0]
			inc.dffFan[dffPos[d]] = Sig(i)
			dffPos[d]++
			continue
		}
		for p := 0; p < g.Kind.NumInputs(); p++ {
			in := g.In[p]
			inc.combFan[combPos[in]] = Sig(i)
			combPos[in]++
		}
	}
	lvlCnt := make([]int32, inc.maxLevel+1)
	for _, sig := range order {
		lvlCnt[inc.qstate[sig]]++
	}
	inc.qoff = make([]int32, inc.maxLevel+2)
	for lv := int32(0); lv <= inc.maxLevel; lv++ {
		inc.qoff[lv+1] = inc.qoff[lv] + lvlCnt[lv]
	}
	inc.qbuf = make([]Sig, len(order))
	inc.qpos = append([]int32(nil), inc.qoff[:inc.maxLevel+1]...)
	return inc
}

// enqueue schedules one combinational gate into its level's queue
// segment unless already pending (qstate negative). Dequeue restores the
// positive level (the sweep knows it from its loop variable).
func (inc *incState) enqueue(sig Sig) {
	if lv := inc.qstate[sig]; lv >= 0 {
		inc.qstate[sig] = -lv
		p := inc.qpos[lv]
		inc.qbuf[p] = sig
		inc.qpos[lv] = p + 1
	}
}

// invalidate marks the whole simulator dirty; the next Eval performs one
// oblivious sweep to re-establish the incremental invariant.
func (s *Sim) invalidate() {
	if s.inc != nil {
		s.inc.allDirty = true
	}
}

// propagate schedules the consumers of a changed signal.
func (s *Sim) propagate(sig Sig) {
	inc := s.inc
	for _, c := range inc.combFan[inc.combIdx[sig]:inc.combIdx[sig+1]] {
		inc.enqueue(c)
	}
	for _, d := range inc.dffFan[inc.dffIdx[sig]:inc.dffIdx[sig+1]] {
		if !inc.dffPendSet[d] {
			inc.dffPendSet[d] = true
			inc.dffPending = append(inc.dffPending, d)
		}
	}
}

func (s *Sim) markDFFChanged(sig Sig) {
	inc := s.inc
	if !inc.dffChgSet[sig] {
		inc.dffChgSet[sig] = true
		inc.dffChanged = append(inc.dffChanged, sig)
	}
}

// presentSource re-presents a source gate's output (DFF state, constant,
// or externally driven input) with injection hooks applied. For DFF and
// Input gates, state holds the raw (uninjected) value, so hook changes —
// including DropLaneFaults disarming — are reversible.
func (s *Sim) presentSource(sig Sig) {
	g := &s.n.Gates[sig]
	w := s.w
	o := int(sig) * w
	v := s.tout[:w]
	switch g.Kind {
	case DFF, Input:
		copy(v, s.state[o:o+w])
	case Const0:
		for k := range v {
			v[k] = 0
		}
	case Const1:
		for k := range v {
			v[k] = ^uint64(0)
		}
	}
	if h := s.hookIdx[sig]; h >= 0 {
		s.applyHooks(h, 0, v)
	}
	cur := s.val[o : o+w]
	if wordsEqual(cur, v) {
		return
	}
	copy(cur, v)
	s.uni[sig] = allEqual(v)
	s.inc.events++
	s.propagate(sig)
}

// evalFull re-establishes the incremental invariant with one oblivious
// sweep, discarding any pending queues.
func (s *Sim) evalFull() {
	inc := s.inc
	s.evalOblivious()
	inc.evals += uint64(len(s.order))
	if s.w < 8 {
		// Re-establish the uniformity index from the freshly computed
		// words. At the SIMD widths the batched oblivious sweep already
		// maintained it (sources in presentAllSources, batched gates from
		// the kernel flags, hooked gates after patching).
		w := s.w
		for sig := range s.uni {
			o := sig * w
			s.uni[sig] = allEqual(s.val[o : o+w])
		}
	}
	for lv := int32(1); lv <= inc.maxLevel; lv++ {
		lo := inc.qoff[lv]
		for _, sig := range inc.qbuf[lo:inc.qpos[lv]] {
			inc.qstate[sig] = lv
		}
		inc.qpos[lv] = lo
	}
	for _, sig := range inc.dffPending {
		inc.dffPendSet[sig] = false
	}
	inc.dffPending = inc.dffPending[:0]
	for _, sig := range inc.dffChanged {
		inc.dffChgSet[sig] = false
	}
	inc.dffChanged = inc.dffChanged[:0]
	inc.allDirty = false
	inc.latchAll = true
}

// evalEvent is the incremental Eval: prologue (hooked gates and changed
// flip-flops), then one ascending sweep over the level queues.
func (s *Sim) evalEvent() {
	inc := s.inc
	if inc.allDirty {
		s.evalFull()
		return
	}
	gates := s.n.Gates
	// Gates whose hook set changed since the last Eval re-present (sources)
	// or re-queue (combinational) once, releasing or installing injections.
	// Entries emptied by ReplaceFaults are pruned afterwards: they needed
	// exactly this one revisit to release their stale injected values, and
	// from then on they are ordinary unhooked gates.
	if inc.hooksDirty {
		inc.hooksDirty = false
		prune := false
		for _, sig := range s.hooked {
			switch gates[sig].Kind {
			case DFF, Const0, Const1, Input:
				s.presentSource(sig)
			default:
				inc.enqueue(sig)
			}
			if len(s.hooks[s.hookIdx[sig]]) == 0 {
				prune = true
			}
		}
		if prune {
			s.pruneHooks()
		}
	}
	// Flip-flops whose latched state changed present their new output.
	for _, sig := range inc.dffChanged {
		inc.dffChgSet[sig] = false
		s.presentSource(sig)
	}
	inc.dffChanged = inc.dffChanged[:0]
	switch s.w {
	case 8:
		s.sweep8()
		return
	case 16:
		s.sweep16()
		return
	case 32:
		s.sweep32()
		return
	case 64:
		s.sweep64()
		return
	}
	w := s.w
	out := s.tout[:w]
	for lv := int32(1); lv <= inc.maxLevel; lv++ {
		lo, hi := inc.qoff[lv], inc.qpos[lv]
		if lo == hi {
			continue
		}
		// Same-level gates never schedule each other (levels strictly
		// increase along fanout), so the segment is complete on entry.
		for _, sig := range inc.qbuf[lo:hi] {
			inc.qstate[sig] = lv
			s.computeInto(sig, out)
			inc.evals++
			o := int(sig) * w
			cur := s.val[o : o+w]
			if !wordsEqual(cur, out) {
				copy(cur, out)
				inc.events++
				s.propagate(sig)
			}
		}
		inc.qpos[lv] = lo
	}
}

// uniformInputs reports whether every input of a combinational gate is
// lane-uniform.
func uniformInputs(uni []bool, g *Gate) bool {
	switch g.Kind.NumInputs() {
	case 1:
		return uni[g.In[0]]
	case 2:
		return uni[g.In[0]] && uni[g.In[1]]
	}
	return uni[g.In[0]] && uni[g.In[1]] && uni[g.In[2]]
}

// latchEvent clocks only the flip-flops whose D input saw an event (or
// every flip-flop after a full sweep). Hooked flip-flops always latch: a
// D-pin injection changes the latched value without any D-input event.
func (s *Sim) latchEvent() {
	inc := s.inc
	if inc.latchAll {
		inc.latchAll = false
		for _, sig := range inc.dffPending {
			inc.dffPendSet[sig] = false
		}
		inc.dffPending = inc.dffPending[:0]
		for _, sig := range inc.dffs {
			s.latchOne(sig)
		}
		return
	}
	// Only flip-flops with a D-pin injection record need the unconditional
	// latch (the injection changes their latched value without a D event);
	// output-hooked flip-flops latch on D events like any other.
	for _, sig := range s.hookedDFFs {
		if !inc.dffPendSet[sig] {
			s.latchOne(sig)
		}
	}
	for _, sig := range inc.dffPending {
		inc.dffPendSet[sig] = false
		s.latchOne(sig)
	}
	inc.dffPending = inc.dffPending[:0]
}

// LoadState broadcasts a recorded flip-flop snapshot (bit i of bits is the
// state of dffs[i]) into all lanes (every lane word), replacing the
// current state, and invalidates derived signal values. Used to
// fast-forward a fault pass to a golden checkpoint.
func (s *Sim) LoadState(dffs []Sig, bits []uint64) {
	w := s.w
	for i, sig := range dffs {
		var word uint64
		if bits[i>>6]>>(uint(i)&63)&1 != 0 {
			word = ^uint64(0)
		}
		o := int(sig) * w
		st := s.state[o : o+w]
		for k := range st {
			st[k] = word
		}
	}
	s.invalidate()
}

// RestoreState is LoadState without the invalidation: it broadcasts the
// snapshot into all lanes like LoadState, but instead of marking the whole
// simulator dirty it marks only the flip-flops whose state actually
// changed, so the next Eval re-evaluates their fanout cones and leaves the
// rest of the netlist's established values alone. This is the warm-restart
// path of fused fault passes: consecutive passes of one checkpoint window
// start from nearby golden states, so the diff is small and the oblivious
// re-sweep LoadState would force is almost entirely wasted. Falls back to
// LoadState on an oblivious simulator or one that is already fully dirty
// (where there is no established invariant worth preserving).
func (s *Sim) RestoreState(dffs []Sig, bits []uint64) {
	if s.inc == nil || s.inc.allDirty {
		s.LoadState(dffs, bits)
		return
	}
	inc := s.inc
	w := s.w
	for i, sig := range dffs {
		var word uint64
		if bits[i>>6]>>(uint(i)&63)&1 != 0 {
			word = ^uint64(0)
		}
		o := int(sig) * w
		st := s.state[o : o+w]
		changed := false
		for k := range st {
			if st[k] != word {
				st[k] = word
				changed = true
			}
		}
		if changed {
			// Present the new output on the next Eval, and force the next
			// Latch to recapture D: the latch-skip optimization assumes
			// state holds the D value of the last Latch, which the restore
			// just broke for this flip-flop — its post-Eval D value may
			// differ from the restored state without any D event firing.
			s.markDFFChanged(sig)
			if !inc.dffPendSet[sig] {
				inc.dffPendSet[sig] = true
				inc.dffPending = append(inc.dffPending, sig)
			}
		}
	}
}

// SetLaneState overwrites one lane's flip-flop state with a recorded
// snapshot, leaving the other lanes untouched. In event-driven mode the
// changed flip-flops are marked so the next Eval presents them.
func (s *Sim) SetLaneState(lane int, dffs []Sig, bits []uint64) {
	wi := lane >> 6
	m := uint64(1) << uint(lane&63)
	w := s.w
	for i, sig := range dffs {
		var b uint64
		if bits[i>>6]>>(uint(i)&63)&1 != 0 {
			b = m
		}
		p := int(sig)*w + wi
		old := s.state[p]
		nw := old&^m | b
		if nw != old {
			s.state[p] = nw
			if s.inc != nil {
				s.markDFFChanged(sig)
			}
		}
	}
}

// DropLaneFaults disarms every fault injection assigned to the given lane.
// The hooks stay installed but become inert for the lane; the hook
// mutation marks hooked gates for one re-evaluation on the next Eval,
// which releases the injected values.
func (s *Sim) DropLaneFaults(lane int) {
	wi := int32(lane >> 6)
	m := uint64(1) << uint(lane&63)
	changed := false
	for _, g := range s.hooked {
		h := s.hookIdx[g]
		dropped := false
		for j := range s.hooks[h] {
			if s.hooks[h][j].word == wi && s.hooks[h][j].mask&m != 0 {
				s.hooks[h][j].mask = 0
				s.hooks[h][j].stuck = 0
				dropped = true
			}
		}
		if dropped {
			s.compileHook(h)
			changed = true
		}
	}
	if changed && s.inc != nil {
		s.inc.hooksDirty = true
	}
}

// StateBits collects the lane-0 state of the given flip-flops as a bitset
// (bit i = dffs[i]); dst must hold (len(dffs)+63)/64 words.
func (s *Sim) StateBits(dffs []Sig, dst []uint64) {
	for i := range dst {
		dst[i] = 0
	}
	w := s.w
	for i, sig := range dffs {
		dst[i>>6] |= (s.state[int(sig)*w] & 1) << (uint(i) & 63)
	}
}

// EvalStats reports the cumulative gate evaluations and value-change
// events performed by the event-driven evaluator (zero in oblivious mode).
func (s *Sim) EvalStats() (evals, events uint64) {
	if s.inc == nil {
		return 0, 0
	}
	return s.inc.evals, s.inc.events
}
