//go:build !amd64 || purego

package gate

// Portable fallback: no assembly batch kernels. Every run dispatches to
// the generated Go run kernels (kernels_generated.go).

func simdAvailable() bool { return false }

func simdBatch(w int, kind Kind, val []uint64, gates []runGate, flags []uint8) bool {
	return false
}

func simdComputeRaw(wi int, kind Kind, dst, a, b, c *uint64) bool {
	return false
}
