//go:build (!amd64 && !arm64) || purego

package gate

// Portable fallback: no assembly batch kernels. Every run dispatches to
// the generated Go run kernels (kernels_generated.go).

func detectTier() simdTier { return tierGeneric }

func tierAvailable(t simdTier) bool { return t == tierGeneric }

func archBatchKernels(simdTier, int) *[numKinds]batchKernel { return nil }

func archCompKernels(simdTier, int) *[numKinds]compKernel { return nil }
