package gate

import (
	"testing"
	"testing/quick"
)

// buildAllKinds builds a netlist with one cell of every combinational kind
// fed by two inputs, outputs named per kind.
func buildAllKinds() *Builder {
	b := NewBuilder("kinds")
	a := b.Input("a")
	c := b.Input("b")
	b.Output("buf", b.Buf(a))
	b.Output("not", b.Not(a))
	b.Output("and", b.And(a, c))
	b.Output("or", b.Or(a, c))
	b.Output("nand", b.Nand(a, c))
	b.Output("nor", b.Nor(a, c))
	b.Output("xor", b.Xor(a, c))
	b.Output("xnor", b.Xnor(a, c))
	b.Output("c0", b.Const0())
	b.Output("c1", b.Const1())
	return b
}

func TestTruthTables(t *testing.T) {
	b := buildAllKinds()
	s, err := NewSim(b.N)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, c uint64
	}{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	want := map[string]func(a, c uint64) uint64{
		"buf":  func(a, c uint64) uint64 { return a },
		"not":  func(a, c uint64) uint64 { return 1 ^ a },
		"and":  func(a, c uint64) uint64 { return a & c },
		"or":   func(a, c uint64) uint64 { return a | c },
		"nand": func(a, c uint64) uint64 { return 1 ^ a&c },
		"nor":  func(a, c uint64) uint64 { return 1 ^ (a | c) },
		"xor":  func(a, c uint64) uint64 { return a ^ c },
		"xnor": func(a, c uint64) uint64 { return 1 ^ a ^ c },
		"c0":   func(a, c uint64) uint64 { return 0 },
		"c1":   func(a, c uint64) uint64 { return 1 },
	}
	for _, tc := range cases {
		s.SetBusUniform("a", tc.a)
		s.SetBusUniform("b", tc.c)
		s.Eval()
		for name, f := range want {
			if got := s.BusLane(name, 0) & 1; got != f(tc.a, tc.c) {
				t.Errorf("%s(a=%d,b=%d) = %d, want %d", name, tc.a, tc.c, got, f(tc.a, tc.c))
			}
			// All lanes must agree with uniform inputs.
			if got := s.BusLane(name, 63) & 1; got != f(tc.a, tc.c) {
				t.Errorf("%s lane 63 disagrees with lane 0", name)
			}
		}
	}
}

func TestMux(t *testing.T) {
	b := NewBuilder("mux")
	a := b.Input("a")
	c := b.Input("b")
	sel := b.Input("sel")
	b.Output("y", b.Mux(a, c, sel))
	s, err := NewSim(b.N)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		av, cv, sv := uint64(i&1), uint64(i>>1&1), uint64(i>>2&1)
		s.SetBusUniform("a", av)
		s.SetBusUniform("b", cv)
		s.SetBusUniform("sel", sv)
		s.Eval()
		want := av
		if sv == 1 {
			want = cv
		}
		if got := s.BusLane("y", 0); got != want {
			t.Errorf("mux(a=%d,b=%d,sel=%d) = %d, want %d", av, cv, sv, got, want)
		}
	}
}

func TestDFFHoldsState(t *testing.T) {
	b := NewBuilder("dff")
	d := b.Input("d")
	q := b.DFF(d)
	b.Output("q", q)
	s, err := NewSim(b.N)
	if err != nil {
		t.Fatal(err)
	}
	s.Reset()
	s.SetBusUniform("d", 1)
	s.Eval()
	if got := s.BusLane("q", 0); got != 0 {
		t.Fatalf("DFF output before first clock = %d, want 0", got)
	}
	s.Latch()
	s.SetBusUniform("d", 0)
	s.Eval()
	if got := s.BusLane("q", 0); got != 1 {
		t.Fatalf("DFF output after latching 1 = %d, want 1", got)
	}
	s.Latch()
	s.Eval()
	if got := s.BusLane("q", 0); got != 0 {
		t.Fatalf("DFF output after latching 0 = %d, want 0", got)
	}
}

func TestDFFFeedbackToggle(t *testing.T) {
	// T flip-flop via placeholder: D = NOT Q toggles every cycle.
	b := NewBuilder("toggle")
	q := b.DFFPlaceholder()
	b.ConnectD(q, b.Not(q))
	b.Output("q", q)
	s, err := NewSim(b.N)
	if err != nil {
		t.Fatal(err)
	}
	s.Reset()
	want := uint64(0)
	for i := 0; i < 10; i++ {
		s.Eval()
		if got := s.BusLane("q", 0); got != want {
			t.Fatalf("cycle %d: q = %d, want %d", i, got, want)
		}
		s.Latch()
		want ^= 1
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	b := NewBuilder("cycle")
	a := b.Input("a")
	// Create a loop: x = AND(a, y), y = BUF(x) by patching.
	x := b.And(a, a)
	y := b.Buf(x)
	b.N.Gates[x].In[1] = y
	if err := b.N.Validate(); err == nil {
		t.Fatal("Validate accepted a combinational cycle")
	}
}

func TestValidateCatchesBadPins(t *testing.T) {
	b := NewBuilder("bad")
	a := b.Input("a")
	x := b.Not(a)
	b.N.Gates[x].In[0] = 999
	if err := b.N.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range input pin")
	}
}

func TestFaultInjectionOutputPin(t *testing.T) {
	b := NewBuilder("finj")
	a := b.Input("a")
	c := b.Input("b")
	y := b.And(a, c)
	b.Output("y", y)
	s, err := NewSim(b.N)
	if err != nil {
		t.Fatal(err)
	}
	// Lane 3: y stuck-at-1; lane 5: y stuck-at-0.
	s.SetFaults([]LaneFault{
		{Site: FaultSite{Gate: y, Pin: 0, Stuck: true}, Lane: 3},
		{Site: FaultSite{Gate: y, Pin: 0, Stuck: false}, Lane: 5},
	})
	s.SetBusUniform("a", 0)
	s.SetBusUniform("b", 1)
	s.Eval()
	if got := s.BusLane("y", 0); got != 0 {
		t.Errorf("good lane: y = %d, want 0", got)
	}
	if got := s.BusLane("y", 3); got != 1 {
		t.Errorf("s-a-1 lane: y = %d, want 1", got)
	}
	s.SetBusUniform("a", 1)
	s.Eval()
	if got := s.BusLane("y", 0); got != 1 {
		t.Errorf("good lane: y = %d, want 1", got)
	}
	if got := s.BusLane("y", 5); got != 0 {
		t.Errorf("s-a-0 lane: y = %d, want 0", got)
	}
	s.ClearFaults()
	s.Eval()
	if got := s.BusLane("y", 3) | s.BusLane("y", 5); got != 1 {
		t.Errorf("after ClearFaults, faulty lanes should follow good value")
	}
}

func TestFaultInjectionInputPin(t *testing.T) {
	// Input-pin faults must affect only the one gate, not the shared net.
	b := NewBuilder("finj2")
	a := b.Input("a")
	c := b.Input("b")
	y1 := b.And(a, c)
	y2 := b.Or(a, c)
	b.Output("y1", y1)
	b.Output("y2", y2)
	s, err := NewSim(b.N)
	if err != nil {
		t.Fatal(err)
	}
	// Fault: AND gate's first input (pin 1) stuck-at-0 in lane 0.
	s.SetFaults([]LaneFault{{Site: FaultSite{Gate: y1, Pin: 1, Stuck: false}, Lane: 0}})
	s.SetBusUniform("a", 1)
	s.SetBusUniform("b", 1)
	s.Eval()
	if got := s.BusLane("y1", 0); got != 0 {
		t.Errorf("AND with in0 s-a-0: y1 = %d, want 0", got)
	}
	if got := s.BusLane("y2", 0); got != 1 {
		t.Errorf("OR sharing net a must be unaffected: y2 = %d, want 1", got)
	}
	if got := s.BusLane("y1", 1); got != 1 {
		t.Errorf("fault leaked into lane 1: y1 = %d, want 1", got)
	}
}

func TestFaultInjectionDFF(t *testing.T) {
	b := NewBuilder("fdff")
	d := b.Input("d")
	q := b.DFF(d)
	b.Output("q", q)
	s, err := NewSim(b.N)
	if err != nil {
		t.Fatal(err)
	}
	s.Reset()
	// DFF output stuck-at-1 in lane 2; D-input (pin 1) stuck-at-1 in lane 4.
	s.SetFaults([]LaneFault{
		{Site: FaultSite{Gate: q, Pin: 0, Stuck: true}, Lane: 2},
		{Site: FaultSite{Gate: q, Pin: 1, Stuck: true}, Lane: 4},
	})
	s.SetBusUniform("d", 0)
	s.Step()
	s.Eval()
	if got := s.BusLane("q", 0); got != 0 {
		t.Errorf("good lane q = %d, want 0", got)
	}
	if got := s.BusLane("q", 2); got != 1 {
		t.Errorf("q-output s-a-1 lane = %d, want 1", got)
	}
	if got := s.BusLane("q", 4); got != 1 {
		t.Errorf("D s-a-1 lane after clock = %d, want 1", got)
	}
}

func TestReduceTrees(t *testing.T) {
	b := NewBuilder("reduce")
	in := b.InputBus("x", 7)
	b.Output("and", b.AndN(in...))
	b.Output("or", b.OrN(in...))
	b.Output("xor", b.XorN(in...))
	s, err := NewSim(b.N)
	if err != nil {
		t.Fatal(err)
	}
	check := func(x uint64) bool {
		s.SetBusUniform("x", x)
		s.Eval()
		x &= 0x7f
		wantAnd := uint64(0)
		if x == 0x7f {
			wantAnd = 1
		}
		wantOr := uint64(0)
		if x != 0 {
			wantOr = 1
		}
		var wantXor uint64
		for i := 0; i < 7; i++ {
			wantXor ^= x >> uint(i) & 1
		}
		return s.BusLane("and", 0) == wantAnd &&
			s.BusLane("or", 0) == wantOr &&
			s.BusLane("xor", 0) == wantXor
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
	// Exhaustive for 7 bits as well.
	for x := uint64(0); x < 128; x++ {
		if !check(x) {
			t.Fatalf("reduce trees wrong for x=%#x", x)
		}
	}
}

func TestGateCountWeights(t *testing.T) {
	b := NewBuilder("area")
	a := b.Input("a")
	c := b.Input("b")
	b.BeginComponent("ALU")
	n1 := b.Nand(a, c)
	x1 := b.Xor(a, c)
	b.EndComponent()
	d := b.DFF(n1)
	b.Output("y", x1)
	b.Output("q", d)
	perComp, total := b.N.GateCount()
	// NAND2 = 1, XOR2 = 2.5 in component ALU; DFF = 6 in glue.
	if got := perComp[1]; got != 3.5 {
		t.Errorf("ALU area = %v, want 3.5", got)
	}
	if got := perComp[0]; got != 6 {
		t.Errorf("glue area = %v, want 6 (DFF)", got)
	}
	if total != 9.5 {
		t.Errorf("total area = %v, want 9.5", total)
	}
	st := b.N.Stats()
	if st.DFFs != 1 {
		t.Errorf("Stats.DFFs = %d, want 1", st.DFFs)
	}
	if st.Levels != 1 {
		t.Errorf("Stats.Levels = %d, want 1", st.Levels)
	}
}

func TestBusWordsRoundTrip(t *testing.T) {
	b := NewBuilder("bus")
	in := b.InputBus("x", 8)
	out := make([]Sig, 8)
	for i := range out {
		out[i] = b.Buf(in[i])
	}
	b.OutputBus("y", out)
	s, err := NewSim(b.N)
	if err != nil {
		t.Fatal(err)
	}
	words := make([]uint64, 8)
	for i := range words {
		words[i] = uint64(i) * 0x0123456789abcdef
	}
	s.SetBusWords("x", words)
	s.Eval()
	got := make([]uint64, 8)
	s.BusWords("y", got)
	for i := range got {
		if got[i] != words[i] {
			t.Errorf("bit %d: got %#x, want %#x", i, got[i], words[i])
		}
	}
	// Per-lane extraction must transpose correctly.
	for lane := 0; lane < 64; lane += 7 {
		var want uint64
		for i := range words {
			want |= (words[i] >> uint(lane) & 1) << uint(i)
		}
		if got := s.BusLane("y", lane); got != want {
			t.Errorf("lane %d: got %#x, want %#x", lane, got, want)
		}
	}
}

func TestObservedSignalsDedup(t *testing.T) {
	b := NewBuilder("obs")
	a := b.Input("a")
	y := b.Not(a)
	b.Output("y1", y)
	b.Output("y2", y)
	if got := len(b.N.ObservedSignals()); got != 1 {
		t.Errorf("ObservedSignals len = %d, want 1", got)
	}
}

func TestBuilderAccessors(t *testing.T) {
	b := NewBuilder("acc")
	a := b.Input("a")
	id := b.BeginComponent("X")
	if b.Component() != id {
		t.Error("Component() after Begin")
	}
	b.EndComponent()
	b.SetComponent(id)
	y := b.And(a, b.ConstBit(true))
	z := b.Or(a, b.ConstBit(false))
	b.Output("y", y)
	b.Output("z", z)
	if b.N.Gates[y].Comp != id {
		t.Error("SetComponent not applied")
	}
	if b.N.ComponentOf(y) != "X" {
		t.Errorf("ComponentOf = %q", b.N.ComponentOf(y))
	}
	names := b.N.SortedComponentNames()
	if len(names) != 2 || names[0] != "GL" || names[1] != "X" {
		t.Errorf("SortedComponentNames = %v", names)
	}
	if got := b.N.NumSignals(); got != len(b.N.Gates) {
		t.Errorf("NumSignals = %d", got)
	}
	if in := b.N.InputNames(); len(in) != 1 || in[0] != "a" {
		t.Errorf("InputNames = %v", in)
	}
	if out := b.N.OutputNames(); len(out) != 2 || out[0] != "y" {
		t.Errorf("OutputNames = %v", out)
	}
	cc := b.N.CellCount(false)
	if cc[And2] != 1 || cc[Or2] != 1 || cc[Input] != 0 {
		t.Errorf("CellCount = %v", cc)
	}
	ccAll := b.N.CellCount(true)
	if ccAll[Input] != 1 || ccAll[Const1] != 1 {
		t.Errorf("CellCount(true) = %v", ccAll)
	}
}

func TestWireDrive(t *testing.T) {
	b := NewBuilder("wire")
	a := b.Input("a")
	w := b.Wire()
	y := b.Not(w)
	b.Output("y", y)
	b.DriveWire(w, a)
	s, err := NewSim(b.N)
	if err != nil {
		t.Fatal(err)
	}
	s.SetBusUniform("a", 1)
	s.Eval()
	if got := s.BusLane("y", 0); got != 0 {
		t.Errorf("wired inverter = %d", got)
	}
	// Errors: double drive, wrong target.
	func() {
		defer func() { recover() }()
		b.DriveWire(w, a)
		t.Error("double DriveWire accepted")
	}()
	func() {
		defer func() { recover() }()
		b.DriveWire(y, a)
		t.Error("DriveWire on non-wire accepted")
	}()
}

func TestConnectDErrors(t *testing.T) {
	b := NewBuilder("cd")
	a := b.Input("a")
	ff := b.DFF(a)
	func() {
		defer func() { recover() }()
		b.ConnectD(ff, a) // already connected
		t.Error("double ConnectD accepted")
	}()
	func() {
		defer func() { recover() }()
		b.ConnectD(a, a) // not a DFF
		t.Error("ConnectD on input accepted")
	}()
}

func TestStringers(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	if Kind(200).String() == "" {
		t.Error("out-of-range kind stringer")
	}
	f := FaultSite{Gate: 3, Pin: 0, Stuck: true}
	if f.String() != "g3/out s-a-1" {
		t.Errorf("FaultSite.String = %q", f.String())
	}
	f = FaultSite{Gate: 7, Pin: 2, Stuck: false}
	if f.String() != "g7/in1 s-a-0" {
		t.Errorf("FaultSite.String = %q", f.String())
	}
}
