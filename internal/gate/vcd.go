package gate

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// VCDWriter streams a Value Change Dump of selected buses of a running
// simulation, one timestep per clock cycle, viewable in any waveform
// viewer. Only lane 0 (the fault-free machine in fault-simulation runs) is
// dumped.
type VCDWriter struct {
	w     io.Writer
	sim   *Sim
	buses []vcdBus
	last  []uint64
	time  uint64
	err   error
}

type vcdBus struct {
	name string
	id   string
	sigs []Sig
}

// NewVCDWriter emits the VCD header for the named buses (inputs or
// outputs of the simulator's netlist) plus any extra named signal groups.
func NewVCDWriter(w io.Writer, s *Sim, buses map[string][]Sig) (*VCDWriter, error) {
	v := &VCDWriter{w: w, sim: s}
	names := make([]string, 0, len(buses))
	for name := range buses {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "$timescale 1ns $end\n$scope module %s $end\n", sanitizeVCD(s.Netlist().Name))
	for i, name := range names {
		id := vcdID(i)
		sigs := buses[name]
		v.buses = append(v.buses, vcdBus{name: name, id: id, sigs: sigs})
		fmt.Fprintf(w, "$var wire %d %s %s $end\n", len(sigs), id, sanitizeVCD(name))
	}
	fmt.Fprintf(w, "$upscope $end\n$enddefinitions $end\n")
	v.last = make([]uint64, len(v.buses))
	for i := range v.last {
		v.last[i] = ^uint64(0) // force the first sample to dump
	}
	return v, nil
}

// vcdID assigns the compact printable identifier code for variable i.
func vcdID(i int) string {
	const chars = "!#$%&'()*+,-./:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	id := ""
	for {
		id = string(chars[i%len(chars)]) + id
		i /= len(chars)
		if i == 0 {
			return id
		}
		i--
	}
}

func sanitizeVCD(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, s)
}

// Sample records the current cycle's values, emitting changes only.
func (v *VCDWriter) Sample() {
	if v.err != nil {
		return
	}
	headerDone := false
	for i, b := range v.buses {
		var val uint64
		for bit, sig := range b.sigs {
			val |= (v.sim.SigWord(sig) & 1) << uint(bit)
		}
		if val == v.last[i] {
			continue
		}
		if !headerDone {
			if _, err := fmt.Fprintf(v.w, "#%d\n", v.time); err != nil {
				v.err = err
				return
			}
			headerDone = true
		}
		v.last[i] = val
		var sb strings.Builder
		sb.WriteByte('b')
		for bit := len(b.sigs) - 1; bit >= 0; bit-- {
			sb.WriteByte('0' + byte(val>>uint(bit)&1))
		}
		sb.WriteByte(' ')
		sb.WriteString(b.id)
		sb.WriteByte('\n')
		if _, err := io.WriteString(v.w, sb.String()); err != nil {
			v.err = err
			return
		}
	}
	v.time++
}

// Err reports the first write error, if any.
func (v *VCDWriter) Err() error { return v.err }
