//go:build !purego

package gate

// builtPurego distinguishes a generic tier that fell back at runtime
// from one forced by the purego build tag (observability only — the
// kernels dispatched are the same generated Go).
const builtPurego = false
