package gate

import (
	"fmt"
	"os"
	"sync/atomic"
)

// simdTier enumerates the kernel backends a build can dispatch to. Each
// architecture file (simd_amd64.go, simd_arm64.go, kernels_generic.go)
// implements detection and table resolution for its tiers; Sim
// construction captures the active tier once, so a running simulator
// never re-detects.
type simdTier int32

const (
	tierGeneric simdTier = iota // generated Go run kernels, every build
	tierAVX2                    // amd64, 4 lane words per vector op
	tierAVX512                  // amd64, 8 lane words and VPTERNLOG gates
	tierNEON                    // arm64, 2 lane words per vector op
)

func (t simdTier) String() string {
	switch t {
	case tierAVX2:
		return "avx2"
	case tierAVX512:
		return "avx512"
	case tierNEON:
		return "neon"
	}
	if builtPurego {
		return "purego"
	}
	return "generic"
}

// detectedTier is the best backend this build supports on this host,
// probed once at startup.
var detectedTier = detectTier()

// forcedTier overrides detection for simulators constructed afterwards
// (tests, the SBST_SIMD_TIER escape hatch). Negative means auto.
var forcedTier atomic.Int32

func init() {
	forcedTier.Store(-1)
	if v := os.Getenv("SBST_SIMD_TIER"); v != "" {
		if _, err := SetSIMDTier(v); err != nil {
			fmt.Fprintf(os.Stderr, "gate: ignoring SBST_SIMD_TIER=%q: %v\n", v, err)
		}
	}
}

// activeTier resolves the backend newly constructed simulators capture:
// generic when SIMD is disabled, else the forced tier if one is set,
// else the detected one.
func activeTier() simdTier {
	if simdDisabled.Load() {
		return tierGeneric
	}
	if f := forcedTier.Load(); f >= 0 {
		return simdTier(f)
	}
	return detectedTier
}

func parseTier(name string) (simdTier, bool) {
	switch name {
	case "generic", "purego":
		return tierGeneric, true
	case "avx2":
		return tierAVX2, true
	case "avx512":
		return tierAVX512, true
	case "neon":
		return tierNEON, true
	}
	return 0, false
}

// SetSIMDTier forces the kernel backend used by simulators constructed
// afterwards. Valid names are "avx512", "avx2", "neon", "generic" (or
// "purego"), and "auto" (or "") to restore detection. Forcing a tier the
// host cannot run returns an error and changes nothing; forcing a lower
// tier than detected is the supported way to exercise the fallback
// chain. Returns the previously active backend name.
func SetSIMDTier(name string) (prev string, err error) {
	prev = SIMDKernelName()
	if name == "auto" || name == "" {
		forcedTier.Store(-1)
		return prev, nil
	}
	t, ok := parseTier(name)
	if !ok {
		return prev, fmt.Errorf("unknown SIMD tier %q (want avx512, avx2, neon, generic, or auto)", name)
	}
	if !tierAvailable(t) {
		return prev, fmt.Errorf("SIMD tier %q is not available on this host (detected %q)", name, detectedTier)
	}
	forcedTier.Store(int32(t))
	return prev, nil
}

// SIMDTiers lists the backend names forceable on this host, best first;
// the last entry is always the generic tier.
func SIMDTiers() []string {
	var tiers []string
	for _, t := range []simdTier{tierAVX512, tierAVX2, tierNEON} {
		if tierAvailable(t) {
			tiers = append(tiers, t.String())
		}
	}
	return append(tiers, tierGeneric.String())
}
