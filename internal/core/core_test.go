package core

import (
	"strings"
	"testing"

	"repro/internal/plasma"
	"repro/internal/sim"
	"repro/internal/synth"
)

func TestClassPriorities(t *testing.T) {
	if Functional.Priority() != High || Control.Priority() != Medium || Hidden.Priority() != Low {
		t.Error("Table 1 priorities wrong")
	}
	if Functional.Phase() != PhaseA || Control.Phase() != PhaseB || Hidden.Phase() != PhaseC {
		t.Error("phase mapping wrong")
	}
	if Functional.Accessibility() != High {
		t.Error("accessibility mapping wrong")
	}
	for _, s := range []string{Functional.String(), Control.String(), Hidden.String(),
		High.String(), Medium.String(), Low.String(), PhaseA.String()} {
		if s == "" || strings.Contains(s, "Unknown") || s == "?" {
			t.Errorf("stringer broken: %q", s)
		}
	}
}

func buildTestCPU(t *testing.T) *plasma.CPU {
	t.Helper()
	cpu, err := plasma.Build(synth.NativeLib{})
	if err != nil {
		t.Fatal(err)
	}
	return cpu
}

func TestClassifyNetlist(t *testing.T) {
	cpu := buildTestCPU(t)
	comps := ClassifyNetlist(cpu.Netlist)
	want := map[string]Class{
		"RegF": Functional, "MulD": Functional, "ALU": Functional, "BSH": Functional,
		"MCTRL": Control, "PCL": Control, "CTRL": Control, "BMUX": Control,
		"PLN": Hidden, "GL": Control,
	}
	got := map[string]Class{}
	for _, c := range comps {
		got[c.Name] = c.Class
		if c.GateCount <= 0 {
			t.Errorf("%s: gate count %v", c.Name, c.GateCount)
		}
	}
	for name, cl := range want {
		if got[name] != cl {
			t.Errorf("%s classified %v, want %v", name, got[name], cl)
		}
	}
}

func TestPrioritizeOrder(t *testing.T) {
	cpu := buildTestCPU(t)
	order := Prioritize(ClassifyNetlist(cpu.Netlist))
	// Functional components first, in descending size; RegF is the largest
	// so it must lead (the paper's highest-priority target).
	if order[0].Name != "RegF" {
		t.Errorf("first component = %s, want RegF", order[0].Name)
	}
	if order[1].Name != "MulD" {
		t.Errorf("second component = %s, want MulD", order[1].Name)
	}
	seenClass := Functional
	for _, c := range order {
		if c.Class < seenClass {
			t.Errorf("class order violated at %s", c.Name)
		}
		seenClass = c.Class
	}
	fun := OfClass(order, Functional)
	if len(fun) != 4 {
		t.Errorf("functional components = %d, want 4", len(fun))
	}
	for i := 1; i < len(fun); i++ {
		if fun[i].GateCount > fun[i-1].GateCount {
			t.Errorf("size order violated: %s > %s", fun[i].Name, fun[i-1].Name)
		}
	}
}

func TestRoutinesGenerate(t *testing.T) {
	for name, gen := range routineGenerators {
		r := gen(RoutineOptions{})
		if r.Component != name {
			t.Errorf("%s routine reports component %s", name, r.Component)
		}
		if r.Code == "" || r.RespWords == 0 {
			t.Errorf("%s routine empty or stores nothing", name)
		}
		if !HasRoutine(name) {
			t.Errorf("HasRoutine(%s) false", name)
		}
	}
	if HasRoutine("BMUX") {
		t.Error("BMUX should have no dedicated routine")
	}
}

func TestGenerateSelfTestPhases(t *testing.T) {
	cpu := buildTestCPU(t)
	comps := ClassifyNetlist(cpu.Netlist)

	var prev *SelfTest
	for _, ph := range []PhaseID{PhaseA, PhaseB, PhaseC} {
		st, err := GenerateSelfTest(comps, ph)
		if err != nil {
			t.Fatalf("phase %s: %v", ph, err)
		}
		if st.Words <= 0 || st.Cycles == 0 {
			t.Fatalf("phase %s: empty stats %d words %d cycles", ph, st.Words, st.Cycles)
		}
		t.Logf("phase <=%s: %d words, %d cycles, %d routines, %d resp words",
			ph, st.Words, st.Cycles, len(st.Routines), st.RespWords)
		if prev != nil {
			if st.Words <= prev.Words || st.Cycles <= prev.Cycles {
				t.Errorf("phase %s not larger than previous: %d/%d words, %d/%d cycles",
					ph, st.Words, prev.Words, st.Cycles, prev.Cycles)
			}
		}
		prev = st
	}
}

func TestSelfTestPhaseAComposition(t *testing.T) {
	cpu := buildTestCPU(t)
	st, err := GenerateSelfTest(ClassifyNetlist(cpu.Netlist), PhaseA)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, r := range st.Routines {
		names = append(names, r.Component)
		if r.Phase != PhaseA {
			t.Errorf("phase A program includes %s routine of phase %s", r.Component, r.Phase)
		}
	}
	// All four functional components, register file first.
	if len(names) != 4 || names[0] != "RegF" {
		t.Errorf("phase A routines = %v", names)
	}
	// Size and time in the paper's ballpark: ~1K words, a few thousand
	// cycles (Table 4: 3393 cycles for Phase A).
	if st.Words < 200 || st.Words > 2500 {
		t.Errorf("phase A program = %d words, expected O(1K)", st.Words)
	}
	if st.Cycles < 1000 || st.Cycles > 20000 {
		t.Errorf("phase A cycles = %d, expected a few thousand", st.Cycles)
	}
}

func TestSelfTestWritesResponses(t *testing.T) {
	cpu := buildTestCPU(t)
	st, err := GenerateSelfTest(ClassifyNetlist(cpu.Netlist), PhaseC)
	if err != nil {
		t.Fatal(err)
	}
	mem := sim.NewMemory()
	mem.LoadProgram(st.Program)
	iss := sim.New(mem, 0)
	if halted, err := iss.Run(2_000_000); err != nil || !halted {
		t.Fatalf("run: halted=%v err=%v", halted, err)
	}
	// The completion marker lands right after all response words.
	marker := mem.Word(DefaultRespBase + uint32(st.RespWords)*4)
	if marker != 0x600D {
		t.Errorf("completion marker = %#x, want 0x600d", marker)
	}
	// Responses must not be all zero: count nonzero words in the region.
	nz := 0
	for i := 0; i < st.RespWords; i++ {
		if mem.Word(DefaultRespBase+uint32(i)*4) != 0 {
			nz++
		}
	}
	if nz < st.RespWords/4 {
		t.Errorf("only %d of %d response words nonzero", nz, st.RespWords)
	}
}

func TestSelfTestRunsOnGateLevelCPU(t *testing.T) {
	// The generated program must execute identically on the gate-level
	// core: memory images must match between ISS and gate machine.
	cpu := buildTestCPU(t)
	st, err := GenerateSelfTest(ClassifyNetlist(cpu.Netlist), PhaseB)
	if err != nil {
		t.Fatal(err)
	}
	issMem := sim.NewMemory()
	issMem.LoadProgram(st.Program)
	iss := sim.New(issMem, 0)
	if halted, err := iss.Run(2_000_000); err != nil || !halted {
		t.Fatalf("ISS run: halted=%v err=%v", halted, err)
	}
	m, halted, err := plasma.RunProgram(cpu, st.Program, iss.Cycle+100, false)
	if err != nil {
		t.Fatal(err)
	}
	if !halted {
		t.Fatal("gate CPU did not halt on self-test program")
	}
	if eq, diff := issMem.Equal(m.Mem); !eq {
		t.Fatalf("gate/ISS memory mismatch after self-test: %s", diff)
	}
	// Gate machine pays exactly one extra cycle for the reset bubble.
	if m.Cycle > iss.Cycle+20 {
		t.Errorf("gate cycles %d far from ISS cycles %d", m.Cycle, iss.Cycle)
	}
}
