// Package core implements the paper's contribution: the low-cost
// software-based self-test (SBST) methodology of Kranitis et al. (DATE
// 2003). It classifies the processor's RT-level components into
// functional, control and hidden classes (Section 2.1), orders them by
// test priority — relative gate count plus instruction-level
// controllability/observability (Section 2.2, Table 1) — and generates
// compact deterministic self-test routines per component from a test-set
// library (Section 2.3), organized in phases A (functional), B (control)
// and C (hidden).
package core

import (
	"sort"

	"repro/internal/gate"
)

// Class is a processor-component class (Section 2.1).
type Class int

// Component classes in descending test priority.
const (
	// Functional components execute instructions directly (ALU, shifter,
	// multiplier, register file): large, highly controllable/observable.
	Functional Class = iota
	// Control components steer instruction/data flow (PC logic, memory
	// controller, decoders, bus muxes).
	Control
	// Hidden components exist only for performance (pipeline registers,
	// hazard logic) and are invisible to the assembly programmer.
	Hidden
)

func (c Class) String() string {
	switch c {
	case Functional:
		return "Functional"
	case Control:
		return "Control"
	case Hidden:
		return "Hidden"
	}
	return "Unknown"
}

// Level grades instruction-level controllability/observability (Table 1).
type Level int

// Accessibility levels.
const (
	Low Level = iota
	Medium
	High
)

func (l Level) String() string {
	switch l {
	case Low:
		return "Low"
	case Medium:
		return "Medium"
	case High:
		return "High"
	}
	return "Unknown"
}

// Priority is the test-development priority derived from a component's
// class (Table 1): functional components first.
func (c Class) Priority() Level {
	switch c {
	case Functional:
		return High
	case Control:
		return Medium
	default:
		return Low
	}
}

// Accessibility reports the controllability/observability level of a class
// (Table 1): both track the class in this methodology.
func (c Class) Accessibility() Level { return c.Priority() }

// Phase maps a class to its test-development phase (Figure 3).
func (c Class) Phase() PhaseID {
	switch c {
	case Functional:
		return PhaseA
	case Control:
		return PhaseB
	default:
		return PhaseC
	}
}

// PhaseID identifies a test-development phase.
type PhaseID int

// Test-development phases (Figure 3).
const (
	PhaseA PhaseID = iota // functional components
	PhaseB                // control components
	PhaseC                // hidden components
)

func (p PhaseID) String() string {
	switch p {
	case PhaseA:
		return "A"
	case PhaseB:
		return "B"
	case PhaseC:
		return "C"
	}
	return "?"
}

// Component is one RT-level processor component with its classification
// and measured size.
type Component struct {
	Name      string
	Class     Class
	GateCount float64 // NAND2 equivalents from synthesis
}

// plasmaClasses is the classification of the Plasma/MIPS components
// (Table 2), covering the union of components across the core-variant
// ladder: FWD (the fwd5 variant's forwarding/hazard network) is hidden —
// it exists only for performance and is invisible to the assembly
// programmer, exactly the paper's definition. Glue logic is listed with
// the control class at lowest size.
var plasmaClasses = map[string]Class{
	"RegF":  Functional,
	"MulD":  Functional,
	"ALU":   Functional,
	"BSH":   Functional,
	"MCTRL": Control,
	"PCL":   Control,
	"CTRL":  Control,
	"BMUX":  Control,
	"PLN":   Hidden,
	"FWD":   Hidden,
	"GL":    Control,
}

// ClassifyNetlist classifies the component regions of a synthesized
// processor netlist per Table 2 and attaches measured gate counts.
// Unrecognized regions default to the control class.
func ClassifyNetlist(n *gate.Netlist) []Component {
	perComp, _ := n.GateCount()
	comps := make([]Component, 0, len(n.CompNames))
	for i, name := range n.CompNames {
		cl, ok := plasmaClasses[name]
		if !ok {
			cl = Control
		}
		comps = append(comps, Component{Name: name, Class: cl, GateCount: perComp[i]})
	}
	return comps
}

// Prioritize orders components for test development (Section 2.2): by
// class (functional, control, hidden), then descending gate count within a
// class — the largest, most accessible components first.
func Prioritize(comps []Component) []Component {
	out := append([]Component(nil), comps...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].GateCount > out[j].GateCount
	})
	return out
}

// OfClass filters components by class, preserving order.
func OfClass(comps []Component, cl Class) []Component {
	var out []Component
	for _, c := range comps {
		if c.Class == cl {
			out = append(out, c)
		}
	}
	return out
}
