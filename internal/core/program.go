package core

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/sim"
)

// DefaultRespBase is where generated programs store test responses; the
// tester reads this region back after execution.
const DefaultRespBase = 0x00100000

// SelfTest is a generated, assembled, and characterized self-test program.
type SelfTest struct {
	// MaxPhase is the deepest phase included (A, A+B, or A+B+C).
	MaxPhase PhaseID
	// Order is the prioritized component order the generator followed.
	Order []Component
	// Routines are the included per-component routines, in order.
	Routines []Routine
	// Source is the complete assembly text.
	Source string
	// Program is the assembled image at origin 0.
	Program *asm.Program
	// Words is the program size in 32-bit words including data tables —
	// the download cost unit of Table 4.
	Words int
	// Cycles is the execution time in clock cycles measured on the golden
	// model — the second row of Table 4.
	Cycles uint64
	// RespWords is the size of the response region written.
	RespWords int

	// noMulDiv marks a program generated for a multiplier-less inventory;
	// the golden-model measurement then rejects any mul/div opcode,
	// catching generator bugs at build time.
	noMulDiv bool
}

// GenerateSelfTest builds the self-test program for all components whose
// phase is at most maxPhase, in test-priority order, then assembles it and
// measures its execution on the golden model. The component inventory
// drives generation completely: a variant without a MulD region gets no
// MulD routine (it is simply absent from comps) and no mul/div sequences
// in any other routine, so one call works unchanged across the core
// ladder.
func GenerateSelfTest(comps []Component, maxPhase PhaseID) (*SelfTest, error) {
	opts := OptionsFor(comps)
	order := Prioritize(comps)
	st := &SelfTest{MaxPhase: maxPhase, Order: order, noMulDiv: opts.NoMulDiv}
	for _, c := range order {
		if c.Class.Phase() > maxPhase {
			continue
		}
		gen, ok := routineGenerators[c.Name]
		if !ok {
			continue
		}
		st.Routines = append(st.Routines, gen(opts))
	}
	if err := st.build(); err != nil {
		return nil, err
	}
	return st, nil
}

// BuildProgram assembles and characterizes a self-test program from an
// explicit routine list (in the given order), for ablations and custom
// flows outside the phase-driven generator.
func BuildProgram(routines []Routine) (*SelfTest, error) {
	maxPhase := PhaseA
	for _, r := range routines {
		if r.Phase > maxPhase {
			maxPhase = r.Phase
		}
	}
	st := &SelfTest{MaxPhase: maxPhase, Routines: routines}
	if err := st.build(); err != nil {
		return nil, err
	}
	return st, nil
}

// build assembles st.Routines and measures execution on the golden model.
func (st *SelfTest) build() error {
	if len(st.Routines) == 0 {
		return fmt.Errorf("core: no routines selected")
	}
	st.Source = buildSource(st.Routines)

	prog, err := asm.Assemble(st.Source, 0)
	if err != nil {
		return fmt.Errorf("core: self-test program failed to assemble: %w", err)
	}
	st.Program = prog
	st.Words = prog.SizeWords()

	mem := sim.NewMemory()
	mem.LoadProgram(prog)
	cpu := sim.New(mem, 0)
	cpu.NoMulDiv = st.noMulDiv
	halted, err := cpu.Run(2_000_000)
	if err != nil {
		return fmt.Errorf("core: self-test program crashed on the golden model: %w", err)
	}
	if !halted {
		return fmt.Errorf("core: self-test program did not halt")
	}
	st.Cycles = cpu.Cycle
	st.RespWords = 0
	for _, r := range st.Routines {
		st.RespWords += r.RespWords
	}
	return nil
}

// RoutineByName generates a single component routine from the library,
// tailored for the full base core.
func RoutineByName(name string) (Routine, bool) {
	return RoutineByNameFor(name, RoutineOptions{})
}

// RoutineByNameFor generates a single component routine tailored to a
// variant's options (see OptionsFor).
func RoutineByNameFor(name string, opts RoutineOptions) (Routine, bool) {
	gen, ok := routineGenerators[name]
	if !ok {
		return Routine{}, false
	}
	return gen(opts), true
}

// GateCycles is the golden-capture length for gate-level fault simulation
// on the base core: the measured execution plus a small margin covering the
// reset offset and the halt loop. Other core variants retire the same
// program in a different number of cycles (pipeline bubbles), so their
// capture length comes from a gate-level measurement (cache.HaltCycles)
// rather than this ISS-derived shortcut.
func (st *SelfTest) GateCycles() int { return int(st.Cycles) + 16 }

// buildSource stitches routines into one program: response-pointer setup,
// routine codes in order (advancing the response pointer between them), a
// completion marker, the halt loop, and the data tables.
func buildSource(routines []Routine) string {
	var sb strings.Builder
	sb.WriteString("# Software-based self-test program (generated)\n")
	sb.WriteString("# Methodology: Kranitis et al., DATE 2003\n")
	fmt.Fprintf(&sb, "\tlui %s, %#x\n", respReg, DefaultRespBase>>16)
	if lo := DefaultRespBase & 0xFFFF; lo != 0 {
		fmt.Fprintf(&sb, "\tori %s, %s, %#x\n", respReg, respReg, lo)
	}
	for _, r := range routines {
		fmt.Fprintf(&sb, "\n# ---- %s routine (Phase %s) ----\n", r.Component, r.Phase)
		sb.WriteString(r.Code)
		fmt.Fprintf(&sb, "\taddiu %s, %s, %d\n", respReg, respReg, r.RespWords*4)
	}
	sb.WriteString("\n# completion marker and halt\n")
	fmt.Fprintf(&sb, "\tli %s, 0x600D\n", scratchReg)
	fmt.Fprintf(&sb, "\tsw %s, 0(%s)\n", scratchReg, respReg)
	sb.WriteString("selftest_done:\n\tj selftest_done\n\tnop\n")
	for _, r := range routines {
		if r.Data != "" {
			fmt.Fprintf(&sb, "\n# ---- %s data ----\n", r.Component)
			sb.WriteString(r.Data)
		}
	}
	return sb.String()
}
