package core

import (
	"fmt"
	"strings"
)

// Routine is a generated self-test routine for one component: a code
// fragment, its read-only data tables, and the number of response words it
// stores through the response pointer register $k0.
type Routine struct {
	Component string
	Phase     PhaseID
	Code      string
	Data      string
	RespWords int
}

// Register conventions of the generated programs: $k0 is the response
// pointer, $k1 a scratch register; everything else is fair game inside a
// routine.
const (
	respReg    = "$k0"
	scratchReg = "$k1"
)

// RoutineOptions tailor generated routines to a core variant's component
// inventory. The zero value targets the full base core.
type RoutineOptions struct {
	// NoMulDiv omits every mult/div/HI/LO sequence — required for
	// multiplier-less variants, where those opcodes are reserved and the
	// golden model rejects them.
	NoMulDiv bool
}

// OptionsFor derives routine options from a component inventory: a core
// without a MulD region must not receive mul/div sequences anywhere, not
// just skip the MulD routine.
func OptionsFor(comps []Component) RoutineOptions {
	opts := RoutineOptions{NoMulDiv: true}
	for _, c := range comps {
		if c.Name == "MulD" {
			opts.NoMulDiv = false
		}
	}
	return opts
}

// emitter builds one routine.
type emitter struct {
	code   strings.Builder
	data   strings.Builder
	prefix string
	resp   int
	roll   int
}

func newEmitter(prefix string) *emitter { return &emitter{prefix: prefix} }

func (e *emitter) f(format string, args ...interface{}) {
	fmt.Fprintf(&e.code, format+"\n", args...)
}

func (e *emitter) df(format string, args ...interface{}) {
	fmt.Fprintf(&e.data, format+"\n", args...)
}

// store emits a response store of reg and advances the response offset.
func (e *emitter) store(reg string) {
	e.f("\tsw %s, %d(%s)", reg, e.resp*4, respReg)
	e.resp++
}

// label returns a routine-unique label.
func (e *emitter) label(name string) string { return e.prefix + "_" + name }

func (e *emitter) routine(component string, phase PhaseID) Routine {
	return Routine{
		Component: component,
		Phase:     phase,
		Code:      e.code.String(),
		Data:      e.data.String(),
		RespWords: e.resp,
	}
}

// regFileTestRegs are the registers the register-file march covers: all
// except r0 (constant) and the reserved $k0/$k1.
func regFileTestRegs() []int {
	var regs []int
	for r := 1; r < 32; r++ {
		if r == 26 || r == 27 {
			continue
		}
		regs = append(regs, r)
	}
	return regs
}

// RegFileRoutine generates the register-file test: a march-like sequence
// (write background, read back through both read ports, write inverted
// background, read back) plus an address-decoder uniqueness pass with a
// register-number-derived value in every register. The rt read port is
// observed via direct stores, the rs read port via an XOR signature.
func RegFileRoutine() Routine {
	e := newEmitter("regf")
	regs := regFileTestRegs()

	// readBack observes every register through both read ports: the rt
	// port feeds store data directly; the rs port is routed through OR
	// into the scratch register and stored, so a fault anywhere in either
	// port's mux tree reaches the bus un-compacted.
	readBack := func() {
		for _, r := range regs {
			e.store(fmt.Sprintf("$%d", r)) // rt port
		}
		for _, r := range regs {
			e.f("\tor %s, $%d, $zero", scratchReg, r) // rs port
			e.store(scratchReg)
		}
	}

	for _, pat := range RegFilePatterns[:2] {
		e.f("\t# RegF background %#x", pat)
		e.f("\tlui %s, %#x", scratchReg, pat>>16)
		e.f("\tori %s, %s, %#x", scratchReg, scratchReg, pat&0xFFFF)
		for _, r := range regs {
			e.f("\tmove $%d, %s", r, scratchReg)
		}
		readBack()
	}

	// Address-parity pass: registers with odd address get all-ones, even
	// all-zeros. Any single select-line fault in a read mux tree redirects
	// a read to a register whose address differs in exactly one bit, so
	// the wrong value differs in every data bit.
	e.f("\t# RegF address-parity backgrounds")
	for _, r := range regs {
		v := 0
		if parity5(r) {
			v = -1
		}
		e.f("\taddiu $%d, $zero, %d", r, v)
	}
	readBack()

	// Address-decoder uniqueness: a register-number-derived value in every
	// register exposes decoder aliasing on writes.
	e.f("\t# RegF address-decoder uniqueness")
	for _, r := range regs {
		e.f("\taddiu $%d, $zero, %d", r, r*0x0101)
	}
	readBack()
	return e.routine("RegF", PhaseA)
}

// parity5 reports odd parity of a 5-bit register number.
func parity5(r int) bool {
	p := false
	for v := r; v != 0; v >>= 1 {
		if v&1 != 0 {
			p = !p
		}
	}
	return p
}

// ALURoutine generates the ALU test: a compact loop applying the library's
// operand pairs under every ALU operation, storing each result, followed
// by a short immediate-operand block for the I-format data path.
func ALURoutine() Routine {
	e := newEmitter("alu")
	tbl := e.label("table")
	loop := e.label("loop")

	e.f("\t# ALU pattern loop over %d operand pairs", len(ALUPatterns))
	e.f("\tla $t8, %s", tbl)
	e.f("\tli $t9, %d", len(ALUPatterns))
	e.f("%s:", loop)
	e.f("\tlw $t0, 0($t8)")
	e.f("\tlw $t1, 4($t8)")
	for _, op := range []string{"add", "sub", "and", "or", "xor", "nor", "slt", "sltu"} {
		e.f("\t%s $t2, $t0, $t1", op)
		e.storeRolling("$t2")
	}
	e.f("\taddiu $t8, $t8, 8")
	e.f("\taddiu $t9, $t9, -1")
	e.f("\tbne $t9, $zero, %s", loop)
	e.f("\tnop")
	e.endRolling()

	walk := e.label("walk")
	e.f("\t# ALU walking generate/propagate sweep (lookahead carry terms)")
	e.f("\tli $t0, 0xffffffff")
	e.f("\tli $t1, 1")
	e.f("\tli $t9, 32")
	e.f("%s:", walk)
	e.f("\tadd $t2, $t0, $t1")
	e.storeRolling("$t2")
	e.f("\tsub $t3, $t0, $t1")
	e.storeRolling("$t3")
	e.f("\tadd $t4, $t1, $t1")
	e.storeRolling("$t4")
	e.f("\tsltu $t5, $t0, $t1")
	e.f("\txor $t4, $t4, $t5")
	e.storeRolling("$t4")
	e.f("\tsll $t1, $t1, 1")
	e.f("\taddiu $t9, $t9, -1")
	e.f("\tbne $t9, $zero, %s", walk)
	e.f("\tnop")
	e.endRolling()

	e.f("\t# ALU immediate-format patterns")
	for _, imm := range []int32{0, 1, -1, 0x7FFF, -0x8000, 0x5555, -0x5556} {
		e.f("\taddiu $t2, $t0, %d", imm)
		e.store("$t2")
		e.f("\tslti $t2, $t0, %d", imm)
		e.store("$t2")
	}
	for _, imm := range []uint32{0xFFFF, 0x5555, 0xAAAA, 0x0001} {
		e.f("\tandi $t2, $t0, %#x", imm)
		e.store("$t2")
		e.f("\tori $t2, $t1, %#x", imm)
		e.store("$t2")
		e.f("\txori $t2, $t1, %#x", imm)
		e.store("$t2")
	}
	e.f("\tlui $t2, 0xa55a")
	e.store("$t2")

	e.df("%s:", tbl)
	for _, p := range ALUPatterns {
		e.df("\t.word %#x, %#x", p.A, p.B)
	}
	return e.routine("ALU", PhaseA)
}

// rollingSlots is the number of response slots a loop body's storeRolling
// calls cycle through.
const rollingSlots = 8

// storeRolling is used inside compact loops: successive iterations
// overwrite the same response slots, so every loop pass is observed on the
// bus (stores are primary-output events) without growing the response
// region linearly with iteration count. endRolling reserves the slots.
func (e *emitter) storeRolling(reg string) {
	slot := e.resp + e.roll%rollingSlots
	e.roll++
	e.f("\tsw %s, %d(%s)", reg, slot*4, respReg)
}

// endRolling reserves the rolling slots and resets the rotation.
func (e *emitter) endRolling() {
	e.resp += rollingSlots
	e.roll = 0
}

// ShifterRoutine generates the barrel-shifter test: a compact loop sweeping
// all 32 shift amounts through the three variable-shift instructions for
// each library data word, plus an unrolled block for the immediate-shift
// format.
func ShifterRoutine() Routine {
	e := newEmitter("bsh")
	for di, data := range ShifterData {
		loop := e.label(fmt.Sprintf("loop%d", di))
		e.f("\t# BSH amount sweep, data %#x", data)
		e.f("\tli $t0, %#x", data)
		e.f("\tli $t1, 0")
		e.f("\tli $t2, 32")
		e.f("%s:", loop)
		e.f("\tsllv $t3, $t0, $t1")
		e.f("\tsrlv $t4, $t0, $t1")
		e.f("\tsrav $t5, $t0, $t1")
		e.f("\txor $t6, $t3, $t4")
		e.f("\txor $t6, $t6, $t5")
		e.storeRolling("$t6")
		e.f("\taddiu $t1, $t1, 1")
		e.f("\tbne $t1, $t2, %s", loop)
		e.f("\tnop")
	}
	e.endRolling()

	e.f("\t# BSH immediate-shift format")
	e.f("\tli $t0, %#x", ShifterData[2])
	for _, amt := range []int{1, 4, 7, 16, 31} {
		e.f("\tsll $t3, $t0, %d", amt)
		e.store("$t3")
		e.f("\tsrl $t4, $t0, %d", amt)
		e.store("$t4")
		e.f("\tsra $t5, $t0, %d", amt)
		e.store("$t5")
	}
	return e.routine("BSH", PhaseA)
}

// MulDivRoutine generates the multiplier/divider test: a corner-pattern
// loop applying all four operations per pair, a walking-ones multiply loop
// exercising every shift position of the sequential datapath, and the
// MTHI/MTLO/MFHI/MFLO register path.
func MulDivRoutine() Routine {
	e := newEmitter("muld")
	tbl := e.label("table")
	loop := e.label("loop")

	e.f("\t# MulD corner-pattern loop over %d pairs", len(MulDivPatterns))
	e.f("\tla $t8, %s", tbl)
	e.f("\tli $t9, %d", len(MulDivPatterns))
	e.f("%s:", loop)
	e.f("\tlw $t0, 0($t8)")
	e.f("\tlw $t1, 4($t8)")
	for _, op := range []string{"mult", "multu", "div", "divu"} {
		e.f("\t%s $t0, $t1", op)
		e.f("\tmflo $t2")
		e.f("\tmfhi $t3")
		e.storeRolling("$t2")
		e.storeRolling("$t3")
	}
	e.f("\taddiu $t8, $t8, 8")
	e.f("\taddiu $t9, $t9, -1")
	e.f("\tbne $t9, $zero, %s", loop)
	e.f("\tnop")
	e.endRolling()

	walk := e.label("walk")
	e.f("\t# MulD walking-ones multiply sweep")
	e.f("\tli $t0, 1")
	e.f("\tli $t1, 0x87654321")
	e.f("\tli $t9, 16")
	e.f("%s:", walk)
	e.f("\tmultu $t0, $t1")
	e.f("\tmflo $t2")
	e.f("\tmfhi $t3")
	e.f("\txor $t2, $t2, $t3")
	e.storeRolling("$t2")
	e.f("\tsll $t0, $t0, 2")
	e.f("\taddiu $t9, $t9, -1")
	e.f("\tbne $t9, $zero, %s", walk)
	e.f("\tnop")
	e.endRolling()

	dwalk := e.label("dwalk")
	e.f("\t# MulD walking-divisor divide sweep")
	e.f("\tli $t0, 0xffffffff")
	e.f("\tli $t1, 1")
	e.f("\tli $t9, 16")
	e.f("%s:", dwalk)
	e.f("\tdivu $t0, $t1")
	e.f("\tmflo $t2")
	e.f("\tmfhi $t3")
	e.f("\txor $t2, $t2, $t3")
	e.storeRolling("$t2")
	e.f("\tsll $t1, $t1, 2")
	e.f("\taddiu $t9, $t9, -1")
	e.f("\tbne $t9, $zero, %s", dwalk)
	e.f("\tnop")
	e.endRolling()

	e.f("\t# MulD HI/LO register path")
	e.f("\tli $t0, 0x5a5a5a5a")
	e.f("\tmthi $t0")
	e.f("\tnot $t1, $t0")
	e.f("\tmtlo $t1")
	e.f("\tmfhi $t2")
	e.store("$t2")
	e.f("\tmflo $t3")
	e.store("$t3")

	e.df("%s:", tbl)
	for _, p := range MulDivPatterns {
		e.df("\t.word %#x, %#x", p.A, p.B)
	}
	return e.routine("MulD", PhaseA)
}

// MemCtrlRoutine generates the Phase B memory-controller test: every load
// size, alignment and sign mode against sign-corner data words, and a
// store-alignment sweep whose merged words are read back.
func MemCtrlRoutine() Routine {
	e := newEmitter("mctrl")
	tbl := e.label("data")
	wr := e.label("wr")

	e.f("\t# MCTRL load size/alignment/sign sweep")
	e.f("\tla $t8, %s", tbl)
	for w := range MemCtrlWords {
		base := w * 4
		e.f("\tlw $t0, %d($t8)", base)
		e.store("$t0")
		for off := 0; off < 4; off++ {
			e.f("\tlb $t1, %d($t8)", base+off)
			e.store("$t1")
			e.f("\tlbu $t2, %d($t8)", base+off)
			e.store("$t2")
		}
		for off := 0; off < 4; off += 2 {
			e.f("\tlh $t3, %d($t8)", base+off)
			e.store("$t3")
			e.f("\tlhu $t4, %d($t8)", base+off)
			e.store("$t4")
		}
	}

	e.f("\t# MCTRL store alignment sweep")
	e.f("\tla $t8, %s", wr)
	for i, v := range MemCtrlStoreBytes {
		e.f("\tli $t0, %#x", v)
		e.f("\tsb $t0, %d($t8)", i)
	}
	e.f("\tli $t0, 0x8001")
	e.f("\tsh $t0, 8($t8)")
	e.f("\tli $t0, 0x7ffe")
	e.f("\tsh $t0, 10($t8)")
	e.f("\tli $t0, 0xdeadbeef")
	e.f("\tsw $t0, 12($t8)")
	for off := 0; off < 16; off += 4 {
		e.f("\tlw $t1, %d($t8)", off)
		e.store("$t1")
	}

	e.df("%s:", tbl)
	for _, w := range MemCtrlWords {
		e.df("\t.word %#x", w)
	}
	e.df("%s:", wr)
	e.df("\t.space 16")
	return e.routine("MCTRL", PhaseB)
}

// PCLRoutine generates the Phase B program-counter-logic test: a
// single-bit comparator sweep on the branch equality logic, a forward
// branch-offset ladder, sign-condition branches, and jump stubs planted at
// high addresses so the upper PC bits, incrementer chain and jump muxes
// toggle observably on the fetch address.
func PCLRoutine() Routine {
	e := newEmitter("pcl")
	l := func(n string) string { return e.label(n) }

	// Comparator sweep: operands differing in exactly one bit position
	// must compare unequal at every position.
	e.f("\t# PCL branch comparator single-bit sweep")
	e.f("\tli $t0, 0xc3a55a3c")
	e.f("\tli $t2, 1")
	e.f("\tli $t9, 32")
	e.f("\tli $t7, 0")
	loop := l("cmp")
	e.f("%s:", loop)
	e.f("\txor $t1, $t0, $t2")
	e.f("\tbeq $t0, $t1, %s", l("bad"))
	e.f("\tnop")
	e.f("\taddiu $t7, $t7, 1")
	e.f("\tsll $t2, $t2, 1")
	e.f("\tbne $t9, $t7, %s", loop)
	e.f("\tnop")
	e.f("\tbne $t0, $t0, %s", l("bad"))
	e.f("\tnop")
	e.f("\tbeq $t0, $t0, %s", l("eqok"))
	e.f("\tnop")
	e.f("%s:", l("bad"))
	e.f("\tli $t7, 0xbad")
	e.f("%s:", l("eqok"))
	e.store("$t7")

	// Forward branch-offset ladder: escalating skip distances toggle the
	// low branch-adder bits with positive offsets (loops cover negative).
	e.f("\t# PCL branch-offset ladder")
	pad := 1
	for i := 0; i < 5; i++ {
		tgt := l(fmt.Sprintf("lad%d", i))
		e.f("\tbeq $zero, $zero, %s", tgt)
		e.f("\taddiu $t7, $t7, 1")
		for p := 0; p < pad; p++ {
			e.f("\taddiu $t7, $t7, 100")
		}
		e.f("%s:", tgt)
		pad *= 2
	}
	e.store("$t7")

	// Sign conditions through both REGIMM codes and blez/bgtz.
	e.f("\tli $t0, -1")
	e.f("\tli $t1, 1")
	for i, br := range []string{"bltz $t0", "bgez $t1", "blez $t0", "bgtz $t1"} {
		tgt := l(fmt.Sprintf("sg%d", i))
		e.f("\t%s, %s", br, tgt)
		e.f("\taddiu $t7, $t7, 1")
		e.f("\tli $t7, 0xbad")
		e.f("%s:", tgt)
	}
	e.store("$t7")

	// Plant `jr $ra ; nop` stubs at high addresses and call them: the
	// fetch address (a primary output) then carries the upper PC bits.
	e.f("\t# PCL high-address jump stubs")
	e.f("\tli $t0, %#x", jrRAWord)
	for _, addr := range []uint32{0x000F0000, 0x00F00000, 0x0F000000} {
		e.f("\tli $t1, %#x", addr)
		e.f("\tsw $t0, 0($t1)")
		e.f("\tjalr $t1")
		e.f("\tnop")
		e.f("\taddiu $t7, $t7, 1")
	}
	e.store("$t7")
	return e.routine("PCL", PhaseB)
}

// jrRAWord is the machine encoding of `jr $ra`, planted by the PCL routine.
const jrRAWord = 0x03E00008

// PipelineRoutine generates the Phase C hidden-component test for the full
// base core; pipelineRoutine is the variant-tailored generator behind it.
func PipelineRoutine() Routine { return pipelineRoutine(RoutineOptions{}) }

// pipelineRoutine generates the Phase C hidden-component test: branch and
// jump control flow in every flavor, delay-slot interactions with loads,
// and (on cores that have a multiplier) multiply-busy pipeline stalls —
// the sequences that exercise the pipeline registers and interlock logic.
func pipelineRoutine(opts RoutineOptions) Routine {
	e := newEmitter("pln")
	l := func(n string) string { return e.label(n) }

	e.f("\t# PLN control-flow and interlock stress")
	e.f("\tli $t0, 1")
	e.f("\tli $t1, -1")
	e.f("\tli $t7, 0")

	// Taken and untaken variants of every branch.
	branches := []struct{ op, reg string }{
		{"beq $zero, $zero", ""}, {"bne $t0, $zero", ""},
		{"blez $t1", ""}, {"bgtz $t0", ""},
		{"bltz $t1", ""}, {"bgez $t0", ""},
	}
	for i, br := range branches {
		taken := l(fmt.Sprintf("tk%d", i))
		e.f("\t%s, %s", br.op, taken)
		e.f("\taddiu $t7, $t7, 1    # delay slot executes")
		e.f("\taddiu $t7, $t7, 100  # skipped on taken branch")
		e.f("%s:", taken)
	}
	untaken := []string{"bne $zero, $zero", "beq $t0, $zero", "bgtz $t1", "blez $t0", "bgez $t1", "bltz $t0"}
	for i, br := range untaken {
		nt := l(fmt.Sprintf("nt%d", i))
		e.f("\t%s, %s", br, nt)
		e.f("\taddiu $t7, $t7, 3")
		e.f("\taddiu $t7, $t7, 5    # falls through: executes")
		e.f("%s:", nt)
	}
	e.store("$t7")

	// Subroutine linkage through jal/jalr/bgezal and jr.
	e.f("\tjal %s", l("sub1"))
	e.f("\tnop")
	e.f("\tb %s", l("after1"))
	e.f("\tnop")
	e.f("%s:", l("sub1"))
	e.f("\taddiu $t7, $t7, 7")
	e.f("\tjr $ra")
	e.f("\taddiu $t7, $t7, 9   # jr delay slot")
	e.f("%s:", l("after1"))
	e.f("\tmove $t6, $ra")
	e.store("$t6")
	e.f("\tla $t5, %s", l("sub2"))
	e.f("\tjalr $s0, $t5")
	e.f("\tnop")
	e.f("\tb %s", l("after2"))
	e.f("\tnop")
	e.f("%s:", l("sub2"))
	e.f("\taddiu $t7, $t7, 11")
	e.f("\tjr $s0")
	e.f("\tnop")
	e.f("%s:", l("after2"))
	e.f("\tbgezal $zero, %s", l("sub3"))
	e.f("\tnop")
	e.f("\tb %s", l("after3"))
	e.f("\tnop")
	e.f("%s:", l("sub3"))
	e.f("\taddiu $t7, $t7, 13")
	e.f("\tjr $ra")
	e.f("\tnop")
	e.f("%s:", l("after3"))
	e.store("$t7")

	// Load in a branch delay slot, dependent use right after.
	e.f("\tla $t8, %s", l("w"))
	e.f("\tli $t0, 0x13572468")
	e.f("\tsw $t0, 0($t8)")
	e.f("\tbeq $zero, $zero, %s", l("ld"))
	e.f("\tlw $t1, 0($t8)")
	e.f("\taddiu $t7, $t7, 100")
	e.f("%s:", l("ld"))
	e.f("\taddu $t2, $t1, $t1")
	e.store("$t2")

	if !opts.NoMulDiv {
		// Multiply busy stall: HI/LO access immediately after issue, and a
		// second issue while busy.
		e.f("\tli $t0, 0x1234")
		e.f("\tli $t1, 0x5678")
		e.f("\tmult $t0, $t1")
		e.f("\tmfhi $t3")
		e.f("\tmflo $t4")
		e.f("\tmult $t4, $t0")
		e.f("\tdiv $t4, $t1")
		e.f("\tmflo $t5")
		e.store("$t3")
		e.store("$t4")
		e.store("$t5")
	}

	e.df("%s:", l("w"))
	e.df("\t.space 4")
	return e.routine("PLN", PhaseC)
}

// ForwardingRoutine generates the Phase C test for the fwd5 variant's FWD
// component: forwardingRoutine behind default options.
func ForwardingRoutine() Routine { return forwardingRoutine(RoutineOptions{}) }

// forwardingRoutine targets the operand-forwarding network and hazard
// control of the pipelined variant: dependent-operation chains at every
// bypass distance (X-stage, writeback-stage, register file), both operand
// ports, load-use sequences, store-data forwarding, branch conditions on
// just-computed values, and link-register consumption right after linking.
// On a core without forwarding paths the sequences still execute correctly
// (the register file serves every read), so the routine is portable across
// the ladder — but on fwd5 each sequence steers data through a specific
// bypass mux, making the FWD comparators and muxes observable at the bus.
func forwardingRoutine(opts RoutineOptions) Routine {
	e := newEmitter("fwd")
	l := func(n string) string { return e.label(n) }

	// Distance-1 and distance-2 dependent chains on both operand ports,
	// with backgrounds that flip every data bit through the bypass muxes.
	e.f("\t# FWD dependent-chain sweep, both ports, distances 1 and 2")
	for i, seed := range []uint32{0x00000001, 0xFFFFFFFE, 0x55555555, 0xAAAAAAAA, 0x80000000} {
		e.f("\tli $t0, %#x", seed)
		e.f("\taddu $t1, $t0, $t0   # d1 via rs and rt")
		e.f("\txor $t2, $t1, $t0   # d1 rs, d2 rt")
		e.f("\tsubu $t3, $t0, $t2  # d2 rs... d1 rt")
		e.f("\tor $t4, $t3, $t1")
		e.store("$t1")
		e.store("$t2")
		e.store("$t3")
		e.store("$t4")
		_ = i
	}

	// Writeback-distance chain with an independent instruction between
	// producer and consumer: exercises the W-stage bypass specifically.
	e.f("\t# FWD writeback-stage bypass (producer, filler, consumer)")
	e.f("\tli $t0, 0x0F0F0F0F")
	e.f("\taddiu $t1, $t0, 0x111")
	e.f("\tli $t6, 0          # filler: no dependence")
	e.f("\taddu $t2, $t1, $t1")
	e.store("$t2")

	// $0 must never forward: a producer targeting $zero followed by a $zero
	// consumer checks the nonzero-address guard in the bypass comparators.
	e.f("\t# FWD zero-register guard")
	e.f("\taddu $zero, $t0, $t0")
	e.f("\taddu $t3, $zero, $zero")
	e.store("$t3")

	// Load-use at distance 1 and 2, plus store-data forwarding: a result
	// computed in the previous instruction is the store operand.
	e.f("\t# FWD load-use and store-data forwarding")
	e.f("\tla $t8, %s", l("w"))
	e.f("\tli $t0, 0x13572468")
	e.f("\taddiu $t1, $t0, 1   # value to store, forwarded to sw")
	e.f("\tsw $t1, 0($t8)")
	e.f("\tlw $t2, 0($t8)")
	e.f("\taddu $t3, $t2, $t2  # load-use distance 1")
	e.store("$t3")
	e.f("\tlw $t4, 0($t8)")
	e.f("\tli $t6, 0")
	e.f("\txor $t5, $t4, $t0   # load-use distance 2")
	e.store("$t5")

	// Branch conditions on just-computed values: the comparator consumes a
	// forwarded operand, and the store in the delay slot observes it.
	e.f("\t# FWD branch-condition forwarding")
	e.f("\tli $t7, 0")
	e.f("\taddiu $t0, $zero, 5")
	e.f("\taddiu $t1, $t0, 0   # equal value, distance 1")
	e.f("\tbeq $t0, $t1, %s", l("beq1"))
	e.f("\taddiu $t7, $t7, 1")
	e.f("\tli $t7, 0xbad")
	e.f("%s:", l("beq1"))
	e.f("\tsubu $t2, $t0, $t1  # zero, distance 1")
	e.f("\tbne $t2, $zero, %s", l("bad"))
	e.f("\taddiu $t7, $t7, 2")
	e.f("\tb %s", l("bq2"))
	e.f("\tnop")
	e.f("%s:", l("bad"))
	e.f("\tli $t7, 0xbad")
	e.f("%s:", l("bq2"))
	e.store("$t7")

	// Link-register consumption immediately after linking.
	e.f("\t# FWD link-value forwarding")
	e.f("\tjal %s", l("sub"))
	e.f("\tnop")
	e.f("\tb %s", l("after"))
	e.f("\tnop")
	e.f("%s:", l("sub"))
	e.f("\taddiu $t4, $ra, 4   # consume $ra right after jal wrote it")
	e.f("\tjr $ra")
	e.f("\tnop")
	e.f("%s:", l("after"))
	e.store("$t4")

	if !opts.NoMulDiv {
		// HI/LO moves feeding dependent consumers through the bypass.
		e.f("\t# FWD mfhi/mflo consumers")
		e.f("\tli $t0, 0x9abc")
		e.f("\tli $t1, 0x0123")
		e.f("\tmult $t0, $t1")
		e.f("\tmflo $t2")
		e.f("\taddu $t3, $t2, $t2  # consume mflo result at distance 1")
		e.store("$t3")
	}

	e.df("%s:", l("w"))
	e.df("\t.space 4")
	return e.routine("FWD", PhaseC)
}

// routineGenerators maps component names to their routine generators. Most
// routines are inherently single-component and ignore the options; the
// hidden-component routines adapt to the inventory (no mul/div sequences on
// multiplier-less cores).
var routineGenerators = map[string]func(RoutineOptions) Routine{
	"RegF":  func(RoutineOptions) Routine { return RegFileRoutine() },
	"MulD":  func(RoutineOptions) Routine { return MulDivRoutine() },
	"ALU":   func(RoutineOptions) Routine { return ALURoutine() },
	"BSH":   func(RoutineOptions) Routine { return ShifterRoutine() },
	"MCTRL": func(RoutineOptions) Routine { return MemCtrlRoutine() },
	"PCL":   func(RoutineOptions) Routine { return PCLRoutine() },
	"PLN":   pipelineRoutine,
	"FWD":   forwardingRoutine,
}

// HasRoutine reports whether the library holds a dedicated routine for the
// named component. Components without one (small control/glue blocks) are
// covered collaterally by the other routines, as in the paper.
func HasRoutine(name string) bool {
	_, ok := routineGenerators[name]
	return ok
}
