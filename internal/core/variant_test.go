package core

import (
	"testing"

	"repro/internal/plasma"
	"repro/internal/synth"
)

// TestVariantInventoriesSelfConsistent regenerates the component inventory
// and test-priority table for every core-ladder variant and asserts the
// paper's invariants hold on each: the netlist's component regions match
// the variant's declared inventory, every gate is tagged into a region that
// appears in the classification, and the priority order follows the cost
// model (class first, then descending gate count).
func TestVariantInventoriesSelfConsistent(t *testing.T) {
	for _, v := range plasma.Variants() {
		v := v
		t.Run(v.Name(), func(t *testing.T) {
			cpu, err := v.Build(synth.NativeLib{})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := cpu.Netlist.CompNames, v.Components(); len(got) != len(want) {
				t.Fatalf("netlist has %d component regions %v, variant declares %v", len(got), got, want)
			} else {
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("component region %d = %s, variant declares %s", i, got[i], want[i])
					}
				}
			}

			comps := ClassifyNetlist(cpu.Netlist)
			perComp, total := cpu.Netlist.GateCount()
			var sum float64
			for i, c := range comps {
				if c.GateCount <= 0 {
					t.Errorf("component %s has no gates", c.Name)
				}
				if c.GateCount != perComp[i] {
					t.Errorf("component %s gate count %v != netlist %v", c.Name, c.GateCount, perComp[i])
				}
				sum += c.GateCount
			}
			if sum != total {
				t.Errorf("classified gates %v != netlist total %v: untagged gates", sum, total)
			}

			// Variant-specific classifications.
			byName := map[string]Class{}
			for _, c := range comps {
				byName[c.Name] = c.Class
			}
			if v.Name() == plasma.VariantFwd5 {
				if cl, ok := byName["FWD"]; !ok || cl != Hidden {
					t.Errorf("FWD classified %v, want Hidden", cl)
				}
			}
			if v.Name() == plasma.VariantNoMul {
				if _, ok := byName["MulD"]; ok {
					t.Error("nomul inventory contains MulD")
				}
			}

			// Priority table: classes ascend, sizes descend within a class.
			order := Prioritize(comps)
			if order[0].Name != "RegF" {
				t.Errorf("highest-priority component = %s, want RegF", order[0].Name)
			}
			for i := 1; i < len(order); i++ {
				prev, cur := order[i-1], order[i]
				if cur.Class < prev.Class {
					t.Errorf("class order violated at %s", cur.Name)
				}
				if cur.Class == prev.Class && cur.GateCount > prev.GateCount {
					t.Errorf("size order violated: %s (%v) after %s (%v)",
						cur.Name, cur.GateCount, prev.Name, prev.GateCount)
				}
			}
		})
	}
}

// TestVariantSelfTestGeneration generates the full Phase A+B+C self-test
// for each variant inventory and asserts the routine set adapts: the fwd5
// program gains an FWD routine, the nomul program drops MulD and contains
// no mul/div opcode anywhere (the golden model enforces this during the
// build measurement — reaching a cycle count proves it ran clean).
func TestVariantSelfTestGeneration(t *testing.T) {
	for _, v := range plasma.Variants() {
		v := v
		t.Run(v.Name(), func(t *testing.T) {
			cpu, err := v.Build(synth.NativeLib{})
			if err != nil {
				t.Fatal(err)
			}
			comps := ClassifyNetlist(cpu.Netlist)
			st, err := GenerateSelfTest(comps, PhaseC)
			if err != nil {
				t.Fatal(err)
			}
			routines := map[string]bool{}
			for _, r := range st.Routines {
				routines[r.Component] = true
			}
			switch v.Name() {
			case plasma.VariantBase:
				for _, want := range []string{"RegF", "MulD", "ALU", "BSH", "MCTRL", "PCL", "PLN"} {
					if !routines[want] {
						t.Errorf("base self-test missing %s routine", want)
					}
				}
				if routines["FWD"] {
					t.Error("base self-test has an FWD routine without an FWD component")
				}
			case plasma.VariantFwd5:
				if !routines["FWD"] {
					t.Error("fwd5 self-test missing the FWD routine")
				}
				if !routines["MulD"] {
					t.Error("fwd5 self-test missing the MulD routine")
				}
			case plasma.VariantNoMul:
				if routines["MulD"] {
					t.Error("nomul self-test contains a MulD routine")
				}
				if !routines["PLN"] {
					t.Error("nomul self-test missing the PLN routine")
				}
			}
			if st.Cycles == 0 || st.Words == 0 {
				t.Fatalf("degenerate self-test: %d cycles, %d words", st.Cycles, st.Words)
			}
			t.Logf("%s: %d routines, %d words, %d cycles", v.Name(), len(st.Routines), st.Words, st.Cycles)
		})
	}
}

// TestOptionsFor pins the inventory-driven option derivation.
func TestOptionsFor(t *testing.T) {
	with := []Component{{Name: "ALU"}, {Name: "MulD"}}
	without := []Component{{Name: "ALU"}, {Name: "PLN"}}
	if OptionsFor(with).NoMulDiv {
		t.Error("inventory with MulD derived NoMulDiv")
	}
	if !OptionsFor(without).NoMulDiv {
		t.Error("inventory without MulD kept mul/div sequences")
	}
}

// TestForwardingRoutineResponses runs the FWD routine on the golden model
// and checks its sentinel responses: no 0xbad markers (control flow and
// forwarding-dependent comparisons all resolved correctly).
func TestForwardingRoutineResponses(t *testing.T) {
	cpu, st := runRoutine(t, ForwardingRoutine())
	for i := 0; i < st.RespWords; i++ {
		if got := resp(cpu, i); got == 0xbad {
			t.Fatalf("forwarding routine response %d = %#x", i, got)
		}
	}
}

// TestPipelineRoutineNoMulDiv asserts the multiplier-less flavor has no
// HI/LO opcodes and still executes cleanly under the NoMulDiv golden model.
func TestPipelineRoutineNoMulDiv(t *testing.T) {
	r := pipelineRoutine(RoutineOptions{NoMulDiv: true})
	for _, op := range []string{"mult", "div", "mfhi", "mflo", "mthi", "mtlo"} {
		if containsOpcode(r.Code, op) {
			t.Fatalf("NoMulDiv pipeline routine contains %s", op)
		}
	}
	st, err := BuildProgram([]Routine{r})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles == 0 {
		t.Fatal("empty measurement")
	}
}

// containsOpcode reports whether asm text uses the given mnemonic as an
// instruction (first field of a line).
func containsOpcode(code, op string) bool {
	for _, line := range splitLines(code) {
		f := fields(line)
		if len(f) > 0 && f[0] == op {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func fields(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ' ' || r == '\t' || r == ',' {
			if cur != "" {
				out = append(out, cur)
				cur = ""
			}
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
