package core

// This file is the component test-set library (Section 2.3): small
// deterministic pattern sets that exploit the regular structure of each
// functional component class. They are not ATPG products; each set is
// derived from the component architecture (ripple carry chains, mux trees,
// cell arrays), which is what keeps the resulting self-test routines small
// and technology independent.

// OperandPair is one two-operand test pattern.
type OperandPair struct {
	A, B uint32
}

// ALUPatterns exercises the adder/subtractor carry chain (propagate,
// generate, kill at every bit), the logic unit with every input minterm at
// every bit position, and the comparator sign/borrow logic. Applied under
// add, sub, and, or, xor, nor, slt, sltu, plus the immediate variants.
var ALUPatterns = []OperandPair{
	{0x00000000, 0x00000000}, // all-kill
	{0x00000000, 0xFFFFFFFF}, // minterms 01 everywhere
	{0xFFFFFFFF, 0x00000001}, // full-length carry propagate
	{0xFFFFFFFF, 0xFFFFFFFF}, // all-generate
	{0x55555555, 0xAAAAAAAA}, // alternating 10/01 minterms
	{0x55555555, 0x55555555}, // alternating generate/kill
	{0xAAAAAAAA, 0xAAAAAAAA},
	{0xAAAAAAAA, 0x55555555},
	{0x7FFFFFFF, 0x00000001}, // carry into the sign bit
	{0x80000000, 0x80000000}, // sign-bit generate, signed overflow shape
	{0x80000000, 0x7FFFFFFF}, // signed compare corner
	{0x0000FFFF, 0xFFFF0000}, // half-word propagate boundaries
	{0xCCCCCCCC, 0x33333333}, // 2-bit group alternation
	{0x0F0F0F0F, 0xF0F0F0F0}, // 4-bit group alternation
	{0x00FF00FF, 0xFF00FF00}, // byte alternation
	{0x01234567, 0x89ABCDEF}, // mixed carries
}

// ALUWalkingPatterns generates the walking generate/propagate pairs that
// complete the adder set for lookahead architectures: a single generate at
// bit i against full propagate above it, and an isolated generate that
// must not produce distant carries. Applied by a compact shift loop in the
// ALU routine.
func ALUWalkingPatterns() []OperandPair {
	var out []OperandPair
	for i := 0; i < 32; i++ {
		out = append(out,
			OperandPair{0xFFFFFFFF, 1 << uint(i)},   // generate at i, propagate above
			OperandPair{1 << uint(i), 1 << uint(i)}, // isolated generate
		)
	}
	return out
}

// ShifterData are the data words driven through the barrel shifter at
// every shift amount. Alternating patterns make each mux level's wrong
// selection visible; the sign-bit pattern distinguishes arithmetic fill.
var ShifterData = []uint32{
	0x55555555,
	0xAAAAAAAA,
	0x80000001,
	0x0000FFFF, // half-word contrast distinguishes the wide mux stages
}

// MulDivPatterns exercises the sequential multiplier/divider datapath:
// the add/shift path (multiply), the subtract/shift path (divide), the
// sign pre/post negation corners, and the quotient-bit logic.
var MulDivPatterns = []OperandPair{
	{0x00000000, 0x00000000},
	{0xFFFFFFFF, 0xFFFFFFFF}, // -1 x -1 / all-borrow division
	{0x80000000, 0xFFFFFFFF}, // INT_MIN corners
	{0x00000001, 0xFFFFFFFF},
	{0x55555555, 0x33333333},
	{0xAAAAAAAA, 0x0000FFFF},
	{0x7FFFFFFF, 0x00000003},
	{0xDEADBEEF, 0x00012345},
	{0xFFFF0000, 0x0000FFFF}, // long carry chains in the negation fixup
	{0xFFFFFFFE, 0x80000001},
	{0x00010000, 0xFFFF0001},
	{0x08000000, 0x10101010},
}

// RegFilePatterns are the background/inverted-background patterns of the
// register-file march test; the address-decoder uniqueness pass uses
// register-number-derived values (r * 0x0101) on top.
var RegFilePatterns = []uint32{
	0x55555555,
	0xAAAAAAAA,
	0x00000000,
	0xFFFFFFFF,
}

// MemCtrlWords are the memory-resident words the Phase B memory-controller
// routine reads back with every access size, alignment, and sign mode.
var MemCtrlWords = []uint32{
	0x80FF017F, // sign corners in every byte lane
	0x7F01FF80,
	0x55AA55AA,
	0x00000000,
	0xFFFFFFFF,
}

// MemCtrlStoreBytes are byte values for the store-alignment sweep.
var MemCtrlStoreBytes = []uint32{0x80, 0x7F, 0xFF, 0x01, 0xA5}
