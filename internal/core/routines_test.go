package core

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// runRoutine builds a single-routine program and runs it on the golden
// model, returning the CPU for response inspection.
func runRoutine(t *testing.T, r Routine) (*sim.CPU, *SelfTest) {
	t.Helper()
	st, err := BuildProgram([]Routine{r})
	if err != nil {
		t.Fatalf("%s: %v", r.Component, err)
	}
	mem := sim.NewMemory()
	mem.LoadProgram(st.Program)
	cpu := sim.New(mem, 0)
	halted, err := cpu.Run(2_000_000)
	if err != nil {
		t.Fatalf("%s: %v", r.Component, err)
	}
	if !halted {
		t.Fatalf("%s: did not halt", r.Component)
	}
	return cpu, st
}

// resp reads response word i of a single-routine program.
func resp(cpu *sim.CPU, i int) uint32 {
	return cpu.Mem.Word(DefaultRespBase + uint32(i)*4)
}

func TestRegFileRoutineResponses(t *testing.T) {
	cpu, _ := runRoutine(t, RegFileRoutine())
	regs := regFileTestRegs()
	// First background pass: every rt-port store must hold the background.
	for i := range regs {
		if got := resp(cpu, i); got != RegFilePatterns[0] {
			t.Fatalf("background response %d = %#x, want %#x", i, got, RegFilePatterns[0])
		}
	}
	// rs-port (OR-copied) responses follow.
	for i := range regs {
		if got := resp(cpu, len(regs)+i); got != RegFilePatterns[0] {
			t.Fatalf("rs-port response %d = %#x", i, got)
		}
	}
	// Decoder pass (last readBack): unique value per register.
	base := 3 * 2 * len(regs) // three readback passes before it, rt+rs each
	for i, r := range regs {
		if got := resp(cpu, base+i); got != uint32(r*0x0101) {
			t.Fatalf("decoder response for r%d = %#x, want %#x", r, got, r*0x0101)
		}
	}
}

func TestALURoutineResponses(t *testing.T) {
	cpu, _ := runRoutine(t, ALURoutine())
	// The rolling slots hold the final loop iteration's results: the last
	// ALUPatterns pair under each operation, in emission order.
	last := ALUPatterns[len(ALUPatterns)-1]
	want := []uint32{
		last.A + last.B,
		last.A - last.B,
		last.A & last.B,
		last.A | last.B,
		last.A ^ last.B,
		^(last.A | last.B),
	}
	for i, w := range want {
		if got := resp(cpu, i); got != w {
			t.Fatalf("rolling slot %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestShifterRoutineResponses(t *testing.T) {
	cpu, _ := runRoutine(t, ShifterRoutine())
	// Rolling slot 0 holds the last iteration (amount 31) of the last data
	// sweep: xor of the three shift results.
	d := ShifterData[len(ShifterData)-1]
	want := d<<31 ^ d>>31 ^ uint32(int32(d)>>31)
	if got := resp(cpu, 0); got != want {
		t.Fatalf("rolling slot 0 = %#x, want %#x", got, want)
	}
}

func TestMulDivRoutineResponses(t *testing.T) {
	cpu, st := runRoutine(t, MulDivRoutine())
	// The final two responses are the MTHI/MTLO readbacks.
	n := st.RespWords
	if got := resp(cpu, n-2); got != 0x5a5a5a5a {
		t.Fatalf("mthi readback = %#x", got)
	}
	if got := resp(cpu, n-1); got != ^uint32(0x5a5a5a5a) {
		t.Fatalf("mtlo readback = %#x", got)
	}
}

func TestPCLRoutineResponses(t *testing.T) {
	cpu, st := runRoutine(t, PCLRoutine())
	// No response may carry the 0xbad marker (a mistaken branch).
	for i := 0; i < st.RespWords; i++ {
		if got := resp(cpu, i); got == 0xbad {
			t.Fatalf("PCL routine took a wrong branch (response %d)", i)
		}
	}
	// The planted stubs must have executed: jr $ra words present at the
	// high addresses, and the final counter counts all three calls.
	for _, addr := range []uint32{0x000F0000, 0x00F00000, 0x0F000000} {
		if got := cpu.Mem.Word(addr); got != jrRAWord {
			t.Fatalf("stub at %#x = %#x", addr, got)
		}
	}
}

func TestMemCtrlRoutineResponses(t *testing.T) {
	cpu, _ := runRoutine(t, MemCtrlRoutine())
	// First response: lw of the first data word.
	if got := resp(cpu, 0); got != MemCtrlWords[0] {
		t.Fatalf("first lw = %#x, want %#x", got, MemCtrlWords[0])
	}
	// Second response: lb of byte 0 (0x80 sign-extended).
	if got := resp(cpu, 1); got != 0xFFFFFF80 {
		t.Fatalf("lb = %#x, want sign-extended 0x80", got)
	}
	// Third: lbu zero-extended.
	if got := resp(cpu, 2); got != 0x80 {
		t.Fatalf("lbu = %#x", got)
	}
}

func TestPipelineRoutineResponses(t *testing.T) {
	cpu, st := runRoutine(t, PipelineRoutine())
	for i := 0; i < st.RespWords; i++ {
		got := resp(cpu, i)
		if got == 0xbad || got == 100 {
			t.Fatalf("pipeline routine control flow broken (response %d = %#x)", i, got)
		}
	}
}

func TestRoutinesAvoidReservedRegisters(t *testing.T) {
	// Routines may only use $k0 as the response pointer: no routine may
	// overwrite it (write field of sw is fine; as a destination it is not).
	for name := range routineGenerators {
		r, _ := RoutineByName(name)
		for _, line := range strings.Split(r.Code, "\n") {
			ln := strings.TrimSpace(line)
			if ln == "" || strings.HasPrefix(ln, "#") || strings.HasSuffix(ln, ":") {
				continue
			}
			fields := strings.Fields(strings.ReplaceAll(ln, ",", " "))
			if len(fields) < 2 {
				continue
			}
			op := fields[0]
			switch op {
			case "sw", "sh", "sb", "mult", "multu", "div", "divu", "mthi", "mtlo",
				"beq", "bne", "blez", "bgtz", "bltz", "bgez", "jr", "j", "b", "nop":
				continue
			}
			if fields[1] == "$k0" {
				t.Errorf("%s routine writes the response pointer: %q", name, ln)
			}
		}
	}
}
