package isa

import "fmt"

// Format describes the assembly operand syntax of a mnemonic.
type Format int

// Operand formats.
const (
	FmtR3      Format = iota // op rd, rs, rt
	FmtShift                 // op rd, rt, shamt
	FmtShiftV                // op rd, rt, rs
	FmtJR                    // op rs
	FmtJALR                  // op rd, rs
	FmtMFHiLo                // op rd
	FmtMTHiLo                // op rs
	FmtMulDiv                // op rs, rt
	FmtArithI                // op rt, rs, imm (signed immediate)
	FmtLogicI                // op rt, rs, imm (unsigned immediate)
	FmtLui                   // op rt, imm
	FmtMem                   // op rt, offset(rs)
	FmtBranch2               // op rs, rt, label
	FmtBranchZ               // op rs, label
	FmtJump                  // op target
)

// Mnemonic is one machine instruction's assembly name and encoding recipe.
type Mnemonic struct {
	Name string
	Fmt  Format
	Op   uint32 // primary opcode
	Sub  uint32 // funct (SPECIAL) or rt code (REGIMM); 0 otherwise
}

// Mnemonics is the full instruction table of the implemented subset.
var Mnemonics = []Mnemonic{
	{"sll", FmtShift, OpSpecial, FnSll},
	{"srl", FmtShift, OpSpecial, FnSrl},
	{"sra", FmtShift, OpSpecial, FnSra},
	{"sllv", FmtShiftV, OpSpecial, FnSllv},
	{"srlv", FmtShiftV, OpSpecial, FnSrlv},
	{"srav", FmtShiftV, OpSpecial, FnSrav},
	{"jr", FmtJR, OpSpecial, FnJr},
	{"jalr", FmtJALR, OpSpecial, FnJalr},
	{"mfhi", FmtMFHiLo, OpSpecial, FnMfhi},
	{"mthi", FmtMTHiLo, OpSpecial, FnMthi},
	{"mflo", FmtMFHiLo, OpSpecial, FnMflo},
	{"mtlo", FmtMTHiLo, OpSpecial, FnMtlo},
	{"mult", FmtMulDiv, OpSpecial, FnMult},
	{"multu", FmtMulDiv, OpSpecial, FnMultu},
	{"div", FmtMulDiv, OpSpecial, FnDiv},
	{"divu", FmtMulDiv, OpSpecial, FnDivu},
	{"add", FmtR3, OpSpecial, FnAdd},
	{"addu", FmtR3, OpSpecial, FnAddu},
	{"sub", FmtR3, OpSpecial, FnSub},
	{"subu", FmtR3, OpSpecial, FnSubu},
	{"and", FmtR3, OpSpecial, FnAnd},
	{"or", FmtR3, OpSpecial, FnOr},
	{"xor", FmtR3, OpSpecial, FnXor},
	{"nor", FmtR3, OpSpecial, FnNor},
	{"slt", FmtR3, OpSpecial, FnSlt},
	{"sltu", FmtR3, OpSpecial, FnSltu},

	{"bltz", FmtBranchZ, OpRegImm, RtBltz},
	{"bgez", FmtBranchZ, OpRegImm, RtBgez},
	{"bltzal", FmtBranchZ, OpRegImm, RtBltzal},
	{"bgezal", FmtBranchZ, OpRegImm, RtBgezal},

	{"j", FmtJump, OpJ, 0},
	{"jal", FmtJump, OpJal, 0},
	{"beq", FmtBranch2, OpBeq, 0},
	{"bne", FmtBranch2, OpBne, 0},
	{"blez", FmtBranchZ, OpBlez, 0},
	{"bgtz", FmtBranchZ, OpBgtz, 0},
	{"addi", FmtArithI, OpAddi, 0},
	{"addiu", FmtArithI, OpAddiu, 0},
	{"slti", FmtArithI, OpSlti, 0},
	{"sltiu", FmtArithI, OpSltiu, 0},
	{"andi", FmtLogicI, OpAndi, 0},
	{"ori", FmtLogicI, OpOri, 0},
	{"xori", FmtLogicI, OpXori, 0},
	{"lui", FmtLui, OpLui, 0},
	{"lb", FmtMem, OpLb, 0},
	{"lh", FmtMem, OpLh, 0},
	{"lw", FmtMem, OpLw, 0},
	{"lbu", FmtMem, OpLbu, 0},
	{"lhu", FmtMem, OpLhu, 0},
	{"sb", FmtMem, OpSb, 0},
	{"sh", FmtMem, OpSh, 0},
	{"sw", FmtMem, OpSw, 0},
}

// MnemonicByName resolves an assembly mnemonic, or nil.
func MnemonicByName(name string) *Mnemonic {
	for i := range Mnemonics {
		if Mnemonics[i].Name == name {
			return &Mnemonics[i]
		}
	}
	return nil
}

// Lookup finds the mnemonic of a decoded instruction, or nil for an
// unimplemented encoding.
func Lookup(f Fields) *Mnemonic {
	for i := range Mnemonics {
		m := &Mnemonics[i]
		if m.Op != f.Op {
			continue
		}
		switch f.Op {
		case OpSpecial:
			if m.Sub == f.Funct {
				return m
			}
		case OpRegImm:
			if m.Sub == f.Rt {
				return m
			}
		default:
			return m
		}
	}
	return nil
}

// IsLoad reports whether the opcode is a load.
func IsLoad(op uint32) bool {
	switch op {
	case OpLb, OpLh, OpLw, OpLbu, OpLhu:
		return true
	}
	return false
}

// IsStore reports whether the opcode is a store.
func IsStore(op uint32) bool {
	switch op {
	case OpSb, OpSh, OpSw:
		return true
	}
	return false
}

// Disassemble renders an instruction word at address pc (branch and jump
// targets are shown as absolute addresses).
func Disassemble(word, pc uint32) string {
	if word == 0 {
		return "nop"
	}
	f := Decode(word)
	m := Lookup(f)
	if m == nil {
		return fmt.Sprintf(".word 0x%08x", word)
	}
	switch m.Fmt {
	case FmtR3:
		return fmt.Sprintf("%s %s, %s, %s", m.Name, RegName(f.Rd), RegName(f.Rs), RegName(f.Rt))
	case FmtShift:
		return fmt.Sprintf("%s %s, %s, %d", m.Name, RegName(f.Rd), RegName(f.Rt), f.Shamt)
	case FmtShiftV:
		return fmt.Sprintf("%s %s, %s, %s", m.Name, RegName(f.Rd), RegName(f.Rt), RegName(f.Rs))
	case FmtJR:
		return fmt.Sprintf("%s %s", m.Name, RegName(f.Rs))
	case FmtJALR:
		return fmt.Sprintf("%s %s, %s", m.Name, RegName(f.Rd), RegName(f.Rs))
	case FmtMFHiLo:
		return fmt.Sprintf("%s %s", m.Name, RegName(f.Rd))
	case FmtMTHiLo:
		return fmt.Sprintf("%s %s", m.Name, RegName(f.Rs))
	case FmtMulDiv:
		return fmt.Sprintf("%s %s, %s", m.Name, RegName(f.Rs), RegName(f.Rt))
	case FmtArithI:
		return fmt.Sprintf("%s %s, %s, %d", m.Name, RegName(f.Rt), RegName(f.Rs), int32(int16(f.Imm)))
	case FmtLogicI:
		return fmt.Sprintf("%s %s, %s, 0x%x", m.Name, RegName(f.Rt), RegName(f.Rs), f.Imm)
	case FmtLui:
		return fmt.Sprintf("%s %s, 0x%x", m.Name, RegName(f.Rt), f.Imm)
	case FmtMem:
		return fmt.Sprintf("%s %s, %d(%s)", m.Name, RegName(f.Rt), int32(int16(f.Imm)), RegName(f.Rs))
	case FmtBranch2:
		return fmt.Sprintf("%s %s, %s, 0x%x", m.Name, RegName(f.Rs), RegName(f.Rt), BranchTarget(f, pc))
	case FmtBranchZ:
		return fmt.Sprintf("%s %s, 0x%x", m.Name, RegName(f.Rs), BranchTarget(f, pc))
	case FmtJump:
		return fmt.Sprintf("%s 0x%x", m.Name, JumpTarget(f, pc))
	}
	return fmt.Sprintf(".word 0x%08x", word)
}

// BranchTarget computes the absolute branch destination of a branch at pc.
func BranchTarget(f Fields, pc uint32) uint32 {
	return pc + 4 + f.SignExtImm()<<2
}

// JumpTarget computes the absolute jump destination of a J/JAL at pc.
func JumpTarget(f Fields, pc uint32) uint32 {
	return (pc+4)&0xF0000000 | f.Target<<2
}
