// Package isa defines the MIPS I instruction subset implemented by the
// Plasma core: all user-mode instructions except unaligned loads/stores and
// exceptions. It provides instruction encodings, field extraction, a
// mnemonic table shared by the assembler and disassembler, and register
// naming.
package isa

import "fmt"

// Opcode values (bits 31:26).
const (
	OpSpecial = 0x00
	OpRegImm  = 0x01
	OpJ       = 0x02
	OpJal     = 0x03
	OpBeq     = 0x04
	OpBne     = 0x05
	OpBlez    = 0x06
	OpBgtz    = 0x07
	OpAddi    = 0x08
	OpAddiu   = 0x09
	OpSlti    = 0x0a
	OpSltiu   = 0x0b
	OpAndi    = 0x0c
	OpOri     = 0x0d
	OpXori    = 0x0e
	OpLui     = 0x0f
	OpLb      = 0x20
	OpLh      = 0x21
	OpLw      = 0x23
	OpLbu     = 0x24
	OpLhu     = 0x25
	OpSb      = 0x28
	OpSh      = 0x29
	OpSw      = 0x2b
)

// SPECIAL function codes (bits 5:0 when opcode is 0).
const (
	FnSll   = 0x00
	FnSrl   = 0x02
	FnSra   = 0x03
	FnSllv  = 0x04
	FnSrlv  = 0x06
	FnSrav  = 0x07
	FnJr    = 0x08
	FnJalr  = 0x09
	FnMfhi  = 0x10
	FnMthi  = 0x11
	FnMflo  = 0x12
	FnMtlo  = 0x13
	FnMult  = 0x18
	FnMultu = 0x19
	FnDiv   = 0x1a
	FnDivu  = 0x1b
	FnAdd   = 0x20
	FnAddu  = 0x21
	FnSub   = 0x22
	FnSubu  = 0x23
	FnAnd   = 0x24
	FnOr    = 0x25
	FnXor   = 0x26
	FnNor   = 0x27
	FnSlt   = 0x2a
	FnSltu  = 0x2b
)

// REGIMM rt codes (bits 20:16 when opcode is 1).
const (
	RtBltz   = 0x00
	RtBgez   = 0x01
	RtBltzal = 0x10
	RtBgezal = 0x11
)

// Fields is a fully decoded instruction word.
type Fields struct {
	Word   uint32
	Op     uint32 // bits 31:26
	Rs     uint32 // bits 25:21
	Rt     uint32 // bits 20:16
	Rd     uint32 // bits 15:11
	Shamt  uint32 // bits 10:6
	Funct  uint32 // bits 5:0
	Imm    uint32 // bits 15:0 (raw, unextended)
	Target uint32 // bits 25:0
}

// Decode splits an instruction word into its fields.
func Decode(word uint32) Fields {
	return Fields{
		Word:   word,
		Op:     word >> 26,
		Rs:     word >> 21 & 31,
		Rt:     word >> 16 & 31,
		Rd:     word >> 11 & 31,
		Shamt:  word >> 6 & 31,
		Funct:  word & 63,
		Imm:    word & 0xFFFF,
		Target: word & 0x03FFFFFF,
	}
}

// SignExtImm returns the sign-extended 16-bit immediate.
func (f Fields) SignExtImm() uint32 { return uint32(int32(int16(f.Imm))) }

// EncodeR encodes a SPECIAL (R-type) instruction.
func EncodeR(funct, rd, rs, rt, shamt uint32) uint32 {
	return rs<<21 | rt<<16 | rd<<11 | shamt<<6 | funct
}

// EncodeI encodes an I-type instruction with a raw 16-bit immediate.
func EncodeI(op, rt, rs, imm uint32) uint32 {
	return op<<26 | rs<<21 | rt<<16 | imm&0xFFFF
}

// EncodeJ encodes a J-type instruction; target is the word index within the
// current 256 MB segment.
func EncodeJ(op, target uint32) uint32 {
	return op<<26 | target&0x03FFFFFF
}

// EncodeRegImm encodes a REGIMM branch.
func EncodeRegImm(rtCode, rs, imm uint32) uint32 {
	return OpRegImm<<26 | rs<<21 | rtCode<<16 | imm&0xFFFF
}

// regNames maps register numbers to conventional MIPS names.
var regNames = [32]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
}

// RegName returns the conventional name of register r, e.g. "$t0".
func RegName(r uint32) string {
	if r < 32 {
		return "$" + regNames[r]
	}
	return fmt.Sprintf("$?%d", r)
}

// RegByName resolves a register name without the leading '$': either a
// number ("5") or a conventional name ("t0", "s8" as alias for "fp").
func RegByName(name string) (uint32, bool) {
	for i, n := range regNames {
		if n == name {
			return uint32(i), true
		}
	}
	if name == "s8" {
		return 30, true
	}
	var v uint32
	var n int
	for n < len(name) && name[n] >= '0' && name[n] <= '9' {
		v = v*10 + uint32(name[n]-'0')
		n++
	}
	if n == len(name) && n > 0 && v < 32 {
		return v, true
	}
	return 0, false
}
