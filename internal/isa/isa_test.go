package isa

import (
	"testing"
	"testing/quick"
)

func TestDecodeFields(t *testing.T) {
	// add $t2, $t0, $t1 => opcode 0, rs=8, rt=9, rd=10, funct 0x20
	w := EncodeR(FnAdd, 10, 8, 9, 0)
	f := Decode(w)
	if f.Op != OpSpecial || f.Rs != 8 || f.Rt != 9 || f.Rd != 10 || f.Funct != FnAdd {
		t.Errorf("decode add: %+v", f)
	}
	// lw $t0, -4($sp)
	w = EncodeI(OpLw, 8, 29, 0xFFFC)
	f = Decode(w)
	if f.Op != OpLw || f.Rt != 8 || f.Rs != 29 || f.SignExtImm() != 0xFFFFFFFC {
		t.Errorf("decode lw: %+v signext=%#x", f, f.SignExtImm())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	check := func(word uint32) bool {
		f := Decode(word)
		switch f.Op {
		case OpSpecial:
			return EncodeR(f.Funct, f.Rd, f.Rs, f.Rt, f.Shamt) == word
		case OpRegImm:
			return EncodeRegImm(f.Rt, f.Rs, f.Imm) == word
		case OpJ, OpJal:
			return EncodeJ(f.Op, f.Target) == word
		default:
			return EncodeI(f.Op, f.Rt, f.Rs, f.Imm) == word
		}
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRegNames(t *testing.T) {
	cases := map[string]uint32{
		"zero": 0, "at": 1, "v0": 2, "a0": 4, "t0": 8, "t7": 15,
		"s0": 16, "t8": 24, "gp": 28, "sp": 29, "fp": 30, "s8": 30, "ra": 31,
		"13": 13, "31": 31,
	}
	for name, want := range cases {
		got, ok := RegByName(name)
		if !ok || got != want {
			t.Errorf("RegByName(%q) = %d, %v; want %d", name, got, ok, want)
		}
	}
	for _, bad := range []string{"", "x9", "32", "t10", "99"} {
		if _, ok := RegByName(bad); ok {
			t.Errorf("RegByName(%q) accepted", bad)
		}
	}
	if RegName(8) != "$t0" || RegName(31) != "$ra" {
		t.Error("RegName wrong")
	}
}

func TestLookupCoversAllMnemonics(t *testing.T) {
	for _, m := range Mnemonics {
		var w uint32
		switch m.Op {
		case OpSpecial:
			w = EncodeR(m.Sub, 1, 2, 3, 4)
		case OpRegImm:
			w = EncodeRegImm(m.Sub, 2, 0x10)
		case OpJ, OpJal:
			w = EncodeJ(m.Op, 0x100)
		default:
			w = EncodeI(m.Op, 1, 2, 0x10)
		}
		got := Lookup(Decode(w))
		if got == nil || got.Name != m.Name {
			t.Errorf("Lookup round trip failed for %q", m.Name)
		}
	}
}

func TestLookupRejectsUnknown(t *testing.T) {
	// COP0 (0x10) is not implemented.
	if Lookup(Decode(0x10<<26)) != nil {
		t.Error("Lookup accepted COP0")
	}
	// SPECIAL with unused funct 0x3f.
	if Lookup(Decode(EncodeR(0x3f, 0, 0, 0, 0))) != nil {
		t.Error("Lookup accepted bad funct")
	}
}

func TestDisassembleSpotChecks(t *testing.T) {
	cases := []struct {
		word uint32
		pc   uint32
		want string
	}{
		{0, 0, "nop"},
		{EncodeR(FnAdd, 10, 8, 9, 0), 0, "add $t2, $t0, $t1"},
		{EncodeR(FnSll, 2, 0, 3, 4), 0, "sll $v0, $v1, 4"},
		{EncodeR(FnSllv, 2, 5, 3, 0), 0, "sllv $v0, $v1, $a1"},
		{EncodeR(FnJr, 0, 31, 0, 0), 0, "jr $ra"},
		{EncodeR(FnMfhi, 7, 0, 0, 0), 0, "mfhi $a3"},
		{EncodeR(FnMult, 0, 4, 5, 0), 0, "mult $a0, $a1"},
		{EncodeI(OpAddi, 8, 9, 0xFFFF), 0, "addi $t0, $t1, -1"},
		{EncodeI(OpOri, 8, 0, 0xBEEF), 0, "ori $t0, $zero, 0xbeef"},
		{EncodeI(OpLui, 8, 0, 0x1234), 0, "lui $t0, 0x1234"},
		{EncodeI(OpLw, 8, 29, 16), 0, "lw $t0, 16($sp)"},
		{EncodeI(OpSw, 8, 29, 0xFFF0), 0, "sw $t0, -16($sp)"},
		{EncodeI(OpBeq, 9, 8, 3), 0x100, "beq $t0, $t1, 0x110"},
		{EncodeRegImm(RtBltz, 8, 0xFFFF), 0x100, "bltz $t0, 0x100"},
		{EncodeJ(OpJ, 0x40), 0x100, "j 0x100"},
		{0x42000018, 0, ".word 0x42000018"}, // COP0 region
	}
	for _, tc := range cases {
		if got := Disassemble(tc.word, tc.pc); got != tc.want {
			t.Errorf("Disassemble(%#x) = %q, want %q", tc.word, got, tc.want)
		}
	}
}

func TestBranchAndJumpTargets(t *testing.T) {
	f := Decode(EncodeI(OpBeq, 0, 0, 0xFFFE)) // offset -2
	if got := BranchTarget(f, 0x1000); got != 0x1000+4-8 {
		t.Errorf("backward branch target = %#x", got)
	}
	f = Decode(EncodeJ(OpJ, 0x00400))
	if got := JumpTarget(f, 0x10000000); got != 0x10001000 {
		t.Errorf("jump target = %#x", got)
	}
}

func TestLoadStoreClassifiers(t *testing.T) {
	for _, op := range []uint32{OpLb, OpLh, OpLw, OpLbu, OpLhu} {
		if !IsLoad(op) || IsStore(op) {
			t.Errorf("op %#x misclassified", op)
		}
	}
	for _, op := range []uint32{OpSb, OpSh, OpSw} {
		if IsLoad(op) || !IsStore(op) {
			t.Errorf("op %#x misclassified", op)
		}
	}
	if IsLoad(OpAddi) || IsStore(OpBeq) {
		t.Error("non-memory op classified as memory")
	}
}

func TestRegNameOutOfRange(t *testing.T) {
	if got := RegName(40); got != "$?40" {
		t.Errorf("RegName(40) = %q", got)
	}
}

func TestMnemonicByName(t *testing.T) {
	if m := MnemonicByName("add"); m == nil || m.Sub != FnAdd {
		t.Error("MnemonicByName(add) wrong")
	}
	if MnemonicByName("bogus") != nil {
		t.Error("MnemonicByName accepted bogus")
	}
}
