// Package plasma builds the gate-level Plasma/MIPS CPU core variants: the
// default 3-stage (fetch / execute / memory-pause) pipeline implementing
// the MIPS I subset in internal/isa, a 5-stage pipeline with operand
// forwarding (see fwd5.go), and a multiplier-less configuration — all
// assembled from the component generators in internal/synth and tagged
// with the component regions of Table 2 of the paper (RegF, MulD, ALU,
// BSH, MCTRL, PCL, CTRL, BMUX, PLN, glue; the forwarding variant adds
// FWD). The variant factory lives in variant.go.
//
// Every core has a single shared memory port: on normal cycles it fetches
// the next instruction at PC; a load/store occupies the bus for one extra
// data cycle (the Plasma "memory pause"). Multiply/divide run in the
// sequential MulD unit; instructions that touch HI/LO stall while it is
// busy.
//
// Primary outputs are exactly the memory bus (address, write data, write
// strobes, access kind): the fault-observation points.
package plasma

import (
	"fmt"

	"repro/internal/gate"
	"repro/internal/synth"
)

// Port names of the CPU netlist.
const (
	PortRData      = "mem_rdata"      // input: 32-bit read data (instruction or load)
	PortAddr       = "mem_addr"       // output: 32-bit byte address on the bus
	PortWData      = "mem_wdata"      // output: 32-bit write data (lane-replicated)
	PortWStrobe    = "mem_wstrobe"    // output: 4 byte-lane write strobes (bit 3 = MSB lanes)
	PortDataAccess = "mem_dataaccess" // output: 1 when this cycle is a data access, 0 for fetch
)

// CPU is the built core: the netlist plus handles to key internal state for
// debugging and co-simulation (these are not primary outputs and do not
// widen the fault-observation surface).
type CPU struct {
	Netlist *gate.Netlist
	Lib     synth.Library

	// Variant names the micro-architecture this core was built from (a
	// Variant.Name(); "base" for the default 3-stage core). It is part of
	// the cache identity of the core and everything derived from it.
	Variant string

	PC synth.Bus
	IR synth.Bus
	Hi synth.Bus // nil on multiplier-less variants
	Lo synth.Bus // nil on multiplier-less variants

	MemCycle gate.Sig
	Busy     gate.Sig
}

// Build synthesizes the default 3-stage CPU with the given technology
// library (the "base" variant).
func Build(lib synth.Library) (*CPU, error) {
	return buildSingleIssue("plasma", VariantBase, lib, true)
}

// buildNoMul synthesizes the multiplier-less configuration: the same
// 3-stage core with the MulD unit and the HI/LO instruction group removed.
// Multiply/divide and HI/LO opcodes decode as reserved no-ops; test
// programs for this variant must not use them (the ISS reference rejects
// them when sim.CPU.NoMulDiv is set, so generation catches violations).
func buildNoMul(lib synth.Library) (*CPU, error) {
	return buildSingleIssue("plasma-nomul", VariantNoMul, lib, false)
}

// buildSingleIssue synthesizes the 3-stage core. withMul gates the MulD
// unit and its decode/stall/result plumbing; with it true the emitted gate
// sequence is exactly the historical base core (the base netlist hash must
// not change), with it false the multiplier-less variant.
func buildSingleIssue(netName, variant string, lib synth.Library, withMul bool) (*CPU, error) {
	c := synth.NewCtx(netName, lib)
	b := c.B

	rdata := synth.Bus(b.InputBus(PortRData, 32))

	// Forward wires across component build order.
	var busyW gate.Sig // MulD busy flag
	if withMul {
		busyW = b.Wire()
	}
	dataCycleW := b.Wire() // current cycle is a load/store data access

	// ---------------- PLN: pipeline register (IR) ----------------
	b.BeginComponent("PLN")
	ir := c.RegBusPlaceholder(32)
	hold := dataCycleW
	var stallW gate.Sig // HI/LO access stall while MulD busy
	if withMul {
		stallW = b.Wire()
		hold = c.Or(stallW, dataCycleW)
	}
	c.ConnectRegBus(ir, c.MuxBus(rdata, ir, hold))

	// Instruction fields (pure wiring).
	op := ir[26:32]
	rsF := ir[21:26]
	rtF := ir[16:21]
	rdF := ir[11:16]
	shamt := ir[6:11]
	funct := ir[0:6]
	imm := ir[0:16]

	// ---------------- CTRL: instruction decoder ----------------
	b.BeginComponent("CTRL")
	opN := c.NotBus(op)
	fnN := c.NotBus(funct)
	f0, f1, f2, f3, f4, f5 := funct[0], funct[1], funct[2], funct[3], funct[4], funct[5]
	nf0, nf1, nf2, nf3, nf4, nf5 := fnN[0], fnN[1], fnN[2], fnN[3], fnN[4], fnN[5]
	o0, o1, o2, o3, o5 := op[0], op[1], op[2], op[3], op[5]
	no0, no1, no2, no3, no4, no5 := opN[0], opN[1], opN[2], opN[3], opN[4], opN[5]

	opSpecial := c.AndN(no5, no4, no3, no2, no1, no0)
	opRegimm := c.AndN(no5, no4, no3, no2, no1, o0)

	// SPECIAL subgroups.
	isShift := c.AndN(opSpecial, nf5, nf4, nf3) // funct 0x00-0x07
	shiftVar := c.And(isShift, f2)
	shiftRight := f1
	shiftArith := f0
	spJr := c.AndN(opSpecial, nf5, nf4, f3, nf2, nf1, nf0)  // 0x08
	spJalr := c.AndN(opSpecial, nf5, nf4, f3, nf2, nf1, f0) // 0x09
	var hiLoGrp, mfhi, mthi, mflo, mtlo, multDiv gate.Sig
	var mdDiv, mdSigned gate.Sig
	if withMul {
		hiLoGrp = c.AndN(opSpecial, nf5, f4, nf3, nf2) // 0x10-0x13
		mfhi = c.AndN(hiLoGrp, nf1, nf0)
		mthi = c.AndN(hiLoGrp, nf1, f0)
		mflo = c.AndN(hiLoGrp, f1, nf0)
		mtlo = c.AndN(hiLoGrp, f1, f0)
		multDiv = c.AndN(opSpecial, nf5, f4, f3, nf2) // 0x18-0x1b
		mdDiv = f1
		mdSigned = nf0
	}
	aluR := c.And(opSpecial, f5) // 0x20-0x2b

	rSub := c.AndN(aluR, nf3, nf2, f1)
	rAnd := c.AndN(aluR, nf3, f2, nf1, nf0)
	rOr := c.AndN(aluR, nf3, f2, nf1, f0)
	rXor := c.AndN(aluR, nf3, f2, f1, nf0)
	rNor := c.AndN(aluR, nf3, f2, f1, f0)
	rSlt := c.AndN(aluR, f3, f1, nf0)
	rSltu := c.AndN(aluR, f3, f1, f0)

	// I-type ALU group (opcodes 0x08-0x0F).
	immGrp := c.AndN(no5, no4, o3)
	iSlt := c.AndN(immGrp, no2, o1, no0)
	iSltu := c.AndN(immGrp, no2, o1, o0)
	iAnd := c.AndN(immGrp, o2, no1, no0)
	iOr := c.AndN(immGrp, o2, no1, o0)
	iXor := c.AndN(immGrp, o2, o1, no0)
	isLui := c.AndN(immGrp, o2, o1, o0)
	zeroExtImm := c.OrN(iAnd, iOr, iXor)

	// Memory group.
	isMem := o5
	isStore := c.And(o5, o3)
	isLoad := c.And(o5, c.Not(o3))
	memHalf := c.And(o0, c.Not(o1))
	memWord := o1
	loadUnsigned := o2

	// Branch group.
	brOp := c.AndN(no5, no4, no3, o2) // opcodes 4-7
	jOp := c.AndN(no5, no4, no3, no2, o1)
	jLink := c.And(jOp, o0)
	rimmGez := rtF[0]
	rimmLink := c.And(opRegimm, rtF[4])
	isLink := c.OrN(jLink, spJalr, rimmLink)

	// ALU operation select.
	selSub := rSub
	selAnd := c.Or(rAnd, iAnd)
	selOr := c.Or(rOr, iOr)
	selXor := c.Or(rXor, iXor)
	selNor := rNor
	selSlt := c.Or(rSlt, iSlt)
	selSltu := c.Or(rSltu, iSltu)
	aluOp := synth.Bus{
		c.OrN(selSub, selOr, selNor, selSltu),
		c.OrN(selAnd, selOr, selSlt, selSltu),
		c.OrN(selXor, selNor, selSlt, selSltu),
	}

	// Register write destination and enable.
	var wrR gate.Sig
	if withMul {
		wrR = c.OrN(aluR, isShift, mfhi, mflo, spJalr)
	} else {
		wrR = c.OrN(aluR, isShift, spJalr)
	}
	wrLink31 := c.Or(jLink, rimmLink)
	regWrite := c.OrN(wrR, immGrp, isLoad, wrLink31)
	waddr := c.MuxBus(synth.Bus(rtF), synth.Bus(rdF), wrR)
	waddr = c.OrBus(waddr, c.Repeat(wrLink31, 5))

	var stall, mdStart, mdSetHi, mdSetLo gate.Sig
	if withMul {
		stall = c.And(c.OrN(multDiv, hiLoGrp), busyW)
		b.DriveWire(stallW, stall)
		notBusy := c.Not(busyW)
		mdStart = multDiv
		mdSetHi = c.And(mthi, notBusy)
		mdSetLo = c.And(mtlo, notBusy)
	}

	var wrMain gate.Sig
	if withMul {
		wrMain = c.AndN(regWrite, c.Not(isMem), c.Not(stall))
	} else {
		wrMain = c.AndN(regWrite, c.Not(isMem))
	}
	wen := c.Or(
		wrMain,
		c.And(isLoad, dataCycleW),
	)

	// ---------------- RegF: register file ----------------
	b.BeginComponent("RegF")
	wdataW := c.WireBus(32) // result bus, connected after BMUX
	rsVal, rtVal := c.RegFile(waddr, wdataW, wen, synth.Bus(rsF), synth.Bus(rtF))

	// ---------------- BMUX: operand selection ----------------
	bmuxID := b.BeginComponent("BMUX")
	notLui := c.Not(isLui)
	signSel := c.Not(c.Or(zeroExtImm, isLui))
	signFill := c.And(imm[15], signSel)
	immExt := make(synth.Bus, 32)
	for i := 0; i < 16; i++ {
		immExt[i] = c.And(imm[i], notLui)
	}
	for i := 16; i < 32; i++ {
		immExt[i] = c.Mux(signFill, imm[i-16], isLui)
	}
	useImm := c.Or(immGrp, isMem)
	aluA := c.AndBus(rsVal, c.Repeat(notLui, 32))
	aluB := c.MuxBus(rtVal, immExt, useImm)
	shAmt := c.MuxBus(synth.Bus(shamt), rsVal[0:5], shiftVar)

	// ---------------- ALU ----------------
	b.BeginComponent("ALU")
	aluOut := c.ALU(aluA, aluB, aluOp)

	// ---------------- BSH: barrel shifter ----------------
	b.BeginComponent("BSH")
	shiftOut := c.BarrelShifter(rtVal, shAmt, shiftRight, shiftArith)

	// ---------------- MulD: multiplier/divider ----------------
	var md synth.MulDivUnit
	if withMul {
		b.BeginComponent("MulD")
		md = c.MulDiv(rsVal, rtVal, mdStart, mdDiv, mdSigned, mdSetHi, mdSetLo)
		b.DriveWire(busyW, md.Busy)
	}

	// ---------------- MCTRL: memory controller ----------------
	b.BeginComponent("MCTRL")
	memCycle := b.DFFPlaceholder()
	dataCycle := c.And(isMem, c.Not(memCycle))
	b.ConnectD(memCycle, dataCycle)
	b.DriveWire(dataCycleW, dataCycle)

	a0, a1 := aluOut[0], aluOut[1]
	na0, na1 := c.Not(a0), c.Not(a1)
	lane3 := c.And(na1, na0)
	lane2 := c.And(na1, a0)
	lane1 := c.And(a1, na0)
	lane0 := c.And(a1, a0)
	strobeByte := synth.Bus{lane0, lane1, lane2, lane3}
	strobeHalf := synth.Bus{a1, a1, na1, na1}
	ones4 := synth.Bus{b.Const1(), b.Const1(), b.Const1(), b.Const1()}
	strobe := c.MuxBus(strobeByte, strobeHalf, memHalf)
	strobe = c.MuxBus(strobe, ones4, memWord)
	strobeEn := c.And(isStore, dataCycle)
	strobe = c.AndBus(strobe, c.Repeat(strobeEn, 4))

	// Store data lane replication.
	byteRep := make(synth.Bus, 32)
	halfRep := make(synth.Bus, 32)
	for i := 0; i < 32; i++ {
		byteRep[i] = rtVal[i%8]
		halfRep[i] = rtVal[i%16]
	}
	wdataOut := c.MuxBus(byteRep, halfRep, memHalf)
	wdataOut = c.MuxBus(wdataOut, rtVal, memWord)

	// Load data extraction (big-endian lanes).
	byteOpts := []synth.Bus{rdata[24:32], rdata[16:24], rdata[8:16], rdata[0:8]}
	byteVal := c.MuxTree(byteOpts, synth.Bus{a0, a1})
	halfVal := c.MuxBus(rdata[16:32], rdata[0:16], a1)
	loadSigned := c.Not(loadUnsigned)
	byteFill := c.And(byteVal[7], loadSigned)
	halfFill := c.And(halfVal[15], loadSigned)
	byteExt := append(append(synth.Bus{}, byteVal...), c.Repeat(byteFill, 24)...)
	halfExt := append(append(synth.Bus{}, halfVal...), c.Repeat(halfFill, 16)...)
	loadData := c.MuxBus(byteExt, halfExt, memHalf)
	loadData = c.MuxBus(loadData, rdata, memWord)

	// ---------------- PCL: program counter logic ----------------
	b.BeginComponent("PCL")
	pc := c.RegBusPlaceholder(32)
	pcInc, _ := c.Incrementer(pc[2:32], b.Const1())
	pcPlus4 := append(synth.Bus{pc[0], pc[1]}, pcInc...)

	// Branch target: PC + sign-extended immediate << 2.
	brOff := make(synth.Bus, 32)
	brOff[0], brOff[1] = b.Const0(), b.Const0()
	for i := 0; i < 16; i++ {
		brOff[i+2] = imm[i]
	}
	for i := 18; i < 32; i++ {
		brOff[i] = imm[15]
	}
	brTarget, _ := c.RippleAdder(pc, brOff, b.Const0())

	// Jump target: segment of the delay slot PC, target field << 2.
	jTarget := make(synth.Bus, 32)
	jTarget[0], jTarget[1] = b.Const0(), b.Const0()
	for i := 0; i < 26; i++ {
		jTarget[i+2] = ir[i]
	}
	copy(jTarget[28:], pc[28:])

	// Branch conditions.
	eq := c.EqBus(rsVal, rtVal)
	rsSign := rsVal[31]
	lez := c.Or(rsSign, c.IsZero(rsVal))
	brCond := c.MuxTree([]synth.Bus{{eq}, {c.Not(eq)}, {lez}, {c.Not(lez)}}, synth.Bus{o0, o1})[0]
	rimmCond := c.Mux(rsSign, c.Not(rsSign), rimmGez)
	taken := c.Or(c.And(brOp, brCond), c.And(opRegimm, rimmCond))

	pcNext := c.MuxBus(pcPlus4, brTarget, taken)
	pcNext = c.MuxBus(pcNext, jTarget, jOp)
	pcNext = c.MuxBus(pcNext, rsVal, c.Or(spJr, spJalr))
	pcNext = c.MuxBus(pcNext, pc, hold)
	c.ConnectRegBus(pc, pcNext)

	// ---------------- BMUX: result bus ----------------
	b.SetComponent(bmuxID)
	result := c.MuxBus(aluOut, shiftOut, isShift)
	if withMul {
		result = c.MuxBus(result, md.Hi, mfhi)
		result = c.MuxBus(result, md.Lo, mflo)
	}
	result = c.MuxBus(result, loadData, isLoad)
	result = c.MuxBus(result, pcPlus4, isLink)
	c.DriveBus(wdataW, result)

	// ---------------- Glue: bus outputs ----------------
	b.EndComponent()
	memAddr := c.MuxBus(pc, aluOut, dataCycle)
	b.OutputBus(PortAddr, memAddr)
	b.OutputBus(PortWData, wdataOut)
	b.OutputBus(PortWStrobe, strobe)
	b.Output(PortDataAccess, dataCycle)

	cpu := &CPU{
		Netlist:  b.N,
		Lib:      lib,
		Variant:  variant,
		PC:       pc,
		IR:       ir,
		MemCycle: memCycle,
	}
	if withMul {
		cpu.Hi, cpu.Lo, cpu.Busy = md.Hi, md.Lo, md.Busy
	} else {
		cpu.Busy = b.Const0() // memoized: referenced by the branch offset above
	}
	if err := b.N.Validate(); err != nil {
		return nil, fmt.Errorf("plasma: built netlist invalid: %w", err)
	}
	if err := checkNoRDataToOutputPath(b.N); err != nil {
		return nil, err
	}
	return cpu, nil
}

// checkNoRDataToOutputPath verifies the structural invariant the two-phase
// memory protocol depends on: no combinational path from the mem_rdata
// inputs to any primary output (read data may only feed register D inputs).
func checkNoRDataToOutputPath(n *gate.Netlist) error {
	tainted := make([]bool, n.NumSignals())
	for _, s := range n.InputBus(PortRData) {
		tainted[s] = true
	}
	// Gates are in creation order, which is not topological; iterate to a
	// fixed point (the netlist is small and converges in a few rounds).
	for changed := true; changed; {
		changed = false
		for i := range n.Gates {
			g := &n.Gates[i]
			if g.Kind == gate.DFF || tainted[i] {
				continue
			}
			for p := 0; p < g.Kind.NumInputs(); p++ {
				if tainted[g.In[p]] {
					tainted[i] = true
					changed = true
					break
				}
			}
		}
	}
	for _, s := range n.ObservedSignals() {
		if tainted[s] {
			return fmt.Errorf("plasma: combinational path from %s to output signal %d", PortRData, s)
		}
	}
	return nil
}
