package plasma

import (
	"fmt"

	"repro/internal/synth"
)

// buildFwd5 synthesizes the 5-stage forwarding variant: instruction fetch,
// decode/operand-read (D), execute (X, which also owns the memory data
// cycle), and a registered writeback stage (W), with a full operand
// forwarding network in place of the base core's single-instruction-in-
// flight execution.
//
// Pipeline state:
//
//	IF:  pc
//	D:   irD/validD/pcD — the decoded instruction and its address
//	X:   irX/validX/pcX plus latched operands opA/opB
//	W:   wenW/waddrW/wvalW — the registered register-file write port
//
// Operands are read in D (register file plus forwarding muxes) and latch
// into opA/opB as the instruction advances into X, exactly when the X
// instruction's result is final (ALU output, HI/LO after a stall, or load
// data on its bus cycle), so a one-deep bypass from X plus a bypass from W
// covers every hazard distance with no load-use interlock beyond the bus
// structural bubble. Branches and jumps resolve in X; the delay slot
// (already in D, or being fetched) proceeds, and the one younger fetch is
// squashed — a taken control transfer costs one bubble, unlike the base
// core's zero. Memory instructions own the bus for one data cycle in X,
// displacing that cycle's fetch (same structural hazard as the base core).
//
// The forwarding comparators and bypass muxes are tagged FWD — a hidden
// component (Phase C) new to this variant; the pipeline registers and the
// advance/squash control are tagged PLN.
func buildFwd5(lib synth.Library) (*CPU, error) {
	c := synth.NewCtx("plasma-fwd5", lib)
	b := c.B

	rdata := synth.Bus(b.InputBus(PortRData, 32))

	// Forward wires across component build order.
	busyW := b.Wire()         // MulD busy flag
	dataCycleW := b.Wire()    // X owns the bus for a load/store this cycle
	advanceW := b.Wire()      // X completes and accepts from D this cycle
	fetchIntoW := b.Wire()    // the fetched word latches into D this cycle
	redirectW := b.Wire()     // X resolves a taken branch or jump
	takenW := b.Wire()        // conditional branch in X is taken
	resultXW := c.WireBus(32) // X writeback value (driven by the result mux)

	// ---------------- PLN: pipeline registers ----------------
	plnID := b.BeginComponent("PLN")
	irD := c.RegBusPlaceholder(32)
	validD := b.DFFPlaceholder()
	pcD := c.RegBusPlaceholder(32)
	irX := c.RegBusPlaceholder(32)
	validX := b.DFFPlaceholder()
	pcX := c.RegBusPlaceholder(32)
	opA := c.RegBusPlaceholder(32)
	opB := c.RegBusPlaceholder(32)
	wenW := b.DFFPlaceholder()
	waddrW := c.RegBusPlaceholder(5)
	wvalW := c.RegBusPlaceholder(32)

	// D-stage register source fields (pure wiring).
	rsD := synth.Bus(irD[21:26])
	rtD := synth.Bus(irD[16:21])

	// X-stage instruction fields.
	op := irX[26:32]
	rtF := irX[16:21]
	rdF := irX[11:16]
	shamt := irX[6:11]
	funct := irX[0:6]
	imm := irX[0:16]

	// ---------------- CTRL: instruction decoder (X stage) ----------------
	b.BeginComponent("CTRL")
	opN := c.NotBus(op)
	fnN := c.NotBus(funct)
	f0, f1, f2, f3, f4, f5 := funct[0], funct[1], funct[2], funct[3], funct[4], funct[5]
	nf0, nf1, nf2, nf3, nf4, nf5 := fnN[0], fnN[1], fnN[2], fnN[3], fnN[4], fnN[5]
	o0, o1, o2, o3, o5 := op[0], op[1], op[2], op[3], op[5]
	no0, no1, no2, no3, no4, no5 := opN[0], opN[1], opN[2], opN[3], opN[4], opN[5]

	opSpecial := c.AndN(no5, no4, no3, no2, no1, no0)
	opRegimm := c.AndN(no5, no4, no3, no2, no1, o0)

	isShift := c.AndN(opSpecial, nf5, nf4, nf3)
	shiftVar := c.And(isShift, f2)
	shiftRight := f1
	shiftArith := f0
	spJr := c.AndN(opSpecial, nf5, nf4, f3, nf2, nf1, nf0)
	spJalr := c.AndN(opSpecial, nf5, nf4, f3, nf2, nf1, f0)
	hiLoGrp := c.AndN(opSpecial, nf5, f4, nf3, nf2)
	mfhi := c.AndN(hiLoGrp, nf1, nf0)
	mthi := c.AndN(hiLoGrp, nf1, f0)
	mflo := c.AndN(hiLoGrp, f1, nf0)
	mtlo := c.AndN(hiLoGrp, f1, f0)
	multDiv := c.AndN(opSpecial, nf5, f4, f3, nf2)
	mdDiv := f1
	mdSigned := nf0
	aluR := c.And(opSpecial, f5)

	rSub := c.AndN(aluR, nf3, nf2, f1)
	rAnd := c.AndN(aluR, nf3, f2, nf1, nf0)
	rOr := c.AndN(aluR, nf3, f2, nf1, f0)
	rXor := c.AndN(aluR, nf3, f2, f1, nf0)
	rNor := c.AndN(aluR, nf3, f2, f1, f0)
	rSlt := c.AndN(aluR, f3, f1, nf0)
	rSltu := c.AndN(aluR, f3, f1, f0)

	immGrp := c.AndN(no5, no4, o3)
	iSlt := c.AndN(immGrp, no2, o1, no0)
	iSltu := c.AndN(immGrp, no2, o1, o0)
	iAnd := c.AndN(immGrp, o2, no1, no0)
	iOr := c.AndN(immGrp, o2, no1, o0)
	iXor := c.AndN(immGrp, o2, o1, no0)
	isLui := c.AndN(immGrp, o2, o1, o0)
	zeroExtImm := c.OrN(iAnd, iOr, iXor)

	isMem := o5
	isStore := c.And(o5, o3)
	isLoad := c.And(o5, c.Not(o3))
	memHalf := c.And(o0, c.Not(o1))
	memWord := o1
	loadUnsigned := o2

	brOp := c.AndN(no5, no4, no3, o2)
	jOp := c.AndN(no5, no4, no3, no2, o1)
	jLink := c.And(jOp, o0)
	rimmGez := rtF[0]
	rimmLink := c.And(opRegimm, rtF[4])
	isLink := c.OrN(jLink, spJalr, rimmLink)

	selSub := rSub
	selAnd := c.Or(rAnd, iAnd)
	selOr := c.Or(rOr, iOr)
	selXor := c.Or(rXor, iXor)
	selNor := rNor
	selSlt := c.Or(rSlt, iSlt)
	selSltu := c.Or(rSltu, iSltu)
	aluOp := synth.Bus{
		c.OrN(selSub, selOr, selNor, selSltu),
		c.OrN(selAnd, selOr, selSlt, selSltu),
		c.OrN(selXor, selNor, selSlt, selSltu),
	}

	wrR := c.OrN(aluR, isShift, mfhi, mflo, spJalr)
	wrLink31 := c.Or(jLink, rimmLink)
	regWrite := c.OrN(wrR, immGrp, isLoad, wrLink31)
	waddrX := c.MuxBus(synth.Bus(rtF), synth.Bus(rdF), wrR)
	waddrX = c.OrBus(waddrX, c.Repeat(wrLink31, 5))

	// HI/LO interlock: the instruction waits in X while MulD is busy. All
	// side effects below are gated by validX so bubbles are inert.
	stallX := c.AndN(validX, c.OrN(multDiv, hiLoGrp), busyW)
	notBusy := c.Not(busyW)
	mdStart := c.And(validX, multDiv)
	mdSetHi := c.AndN(validX, mthi, notBusy)
	mdSetLo := c.AndN(validX, mtlo, notBusy)

	// ---------------- RegF: register file ----------------
	b.BeginComponent("RegF")
	rsVal, rtVal := c.RegFile(waddrW, wvalW, wenW, rsD, rtD)

	// ---------------- FWD: forwarding network + pipeline control ----------
	b.BeginComponent("FWD")
	// Bypass priority: the completing X instruction (newest), then the
	// registered writeback, then the register file. $0 never forwards.
	bypassX := c.And(validX, regWrite)
	nzX := c.OrN(waddrX...)
	nzW := c.OrN(waddrW...)
	fwdAselX := c.AndN(bypassX, nzX, c.EqBus(waddrX, rsD))
	fwdAselW := c.AndN(wenW, nzW, c.EqBus(waddrW, rsD))
	fwdA := c.MuxBus(rsVal, wvalW, fwdAselW)
	fwdA = c.MuxBus(fwdA, resultXW, fwdAselX)
	fwdBselX := c.AndN(bypassX, nzX, c.EqBus(waddrX, rtD))
	fwdBselW := c.AndN(wenW, nzW, c.EqBus(waddrW, rtD))
	fwdB := c.MuxBus(rtVal, wvalW, fwdBselW)
	fwdB = c.MuxBus(fwdB, resultXW, fwdBselX)

	// Pipeline advance: X completes unless interlocked on MulD, or it is a
	// memory instruction still waiting for its bus cycle.
	advance := c.Or(c.Not(validX), c.AndN(c.Not(stallX), c.Or(c.Not(isMem), dataCycleW)))
	b.DriveWire(advanceW, advance)
	// Control transfer resolved in X. The delay slot — already in D, or
	// the very word being fetched when D is a bubble — proceeds; only a
	// younger fetch is squashed.
	redirect := c.And(validX, c.OrN(takenW, jOp, spJr, spJalr))
	b.DriveWire(redirectW, redirect)
	fetchInto := c.And(c.Not(dataCycleW), c.Or(advance, c.Not(validD)))
	b.DriveWire(fetchIntoW, fetchInto)
	squash := c.And(redirect, validD)

	// ---------------- BMUX: operand selection (X stage) ----------------
	bmuxID := b.BeginComponent("BMUX")
	notLui := c.Not(isLui)
	signSel := c.Not(c.Or(zeroExtImm, isLui))
	signFill := c.And(imm[15], signSel)
	immExt := make(synth.Bus, 32)
	for i := 0; i < 16; i++ {
		immExt[i] = c.And(imm[i], notLui)
	}
	for i := 16; i < 32; i++ {
		immExt[i] = c.Mux(signFill, imm[i-16], isLui)
	}
	useImm := c.Or(immGrp, isMem)
	aluA := c.AndBus(opA, c.Repeat(notLui, 32))
	aluB := c.MuxBus(opB, immExt, useImm)
	shAmt := c.MuxBus(synth.Bus(shamt), opA[0:5], shiftVar)

	// ---------------- ALU ----------------
	b.BeginComponent("ALU")
	aluOut := c.ALU(aluA, aluB, aluOp)

	// ---------------- BSH: barrel shifter ----------------
	b.BeginComponent("BSH")
	shiftOut := c.BarrelShifter(opB, shAmt, shiftRight, shiftArith)

	// ---------------- MulD: multiplier/divider ----------------
	b.BeginComponent("MulD")
	md := c.MulDiv(opA, opB, mdStart, mdDiv, mdSigned, mdSetHi, mdSetLo)
	b.DriveWire(busyW, md.Busy)

	// ---------------- MCTRL: memory controller ----------------
	b.BeginComponent("MCTRL")
	memCycle := b.DFFPlaceholder()
	memOpX := c.And(validX, isMem)
	dataCycle := c.And(memOpX, c.Not(memCycle))
	b.ConnectD(memCycle, dataCycle)
	b.DriveWire(dataCycleW, dataCycle)

	a0, a1 := aluOut[0], aluOut[1]
	na0, na1 := c.Not(a0), c.Not(a1)
	lane3 := c.And(na1, na0)
	lane2 := c.And(na1, a0)
	lane1 := c.And(a1, na0)
	lane0 := c.And(a1, a0)
	strobeByte := synth.Bus{lane0, lane1, lane2, lane3}
	strobeHalf := synth.Bus{a1, a1, na1, na1}
	ones4 := synth.Bus{b.Const1(), b.Const1(), b.Const1(), b.Const1()}
	strobe := c.MuxBus(strobeByte, strobeHalf, memHalf)
	strobe = c.MuxBus(strobe, ones4, memWord)
	strobeEn := c.And(isStore, dataCycle)
	strobe = c.AndBus(strobe, c.Repeat(strobeEn, 4))

	byteRep := make(synth.Bus, 32)
	halfRep := make(synth.Bus, 32)
	for i := 0; i < 32; i++ {
		byteRep[i] = opB[i%8]
		halfRep[i] = opB[i%16]
	}
	wdataOut := c.MuxBus(byteRep, halfRep, memHalf)
	wdataOut = c.MuxBus(wdataOut, opB, memWord)

	byteOpts := []synth.Bus{rdata[24:32], rdata[16:24], rdata[8:16], rdata[0:8]}
	byteVal := c.MuxTree(byteOpts, synth.Bus{a0, a1})
	halfVal := c.MuxBus(rdata[16:32], rdata[0:16], a1)
	loadSigned := c.Not(loadUnsigned)
	byteFill := c.And(byteVal[7], loadSigned)
	halfFill := c.And(halfVal[15], loadSigned)
	byteExt := append(append(synth.Bus{}, byteVal...), c.Repeat(byteFill, 24)...)
	halfExt := append(append(synth.Bus{}, halfVal...), c.Repeat(halfFill, 16)...)
	loadData := c.MuxBus(byteExt, halfExt, memHalf)
	loadData = c.MuxBus(loadData, rdata, memWord)

	// ---------------- PCL: program counter logic ----------------
	b.BeginComponent("PCL")
	pc := c.RegBusPlaceholder(32)
	pcInc, _ := c.Incrementer(pc[2:32], b.Const1())
	pcPlus4 := append(synth.Bus{pc[0], pc[1]}, pcInc...)

	// X-relative addresses: the delay slot (pcX+4, the base of branch and
	// jump targets) and the link value (pcX+8).
	pcXInc, _ := c.Incrementer(pcX[2:32], b.Const1())
	pcXp4 := append(synth.Bus{pcX[0], pcX[1]}, pcXInc...)
	linkInc, _ := c.Incrementer(pcXp4[2:32], b.Const1())
	linkVal := append(synth.Bus{pcX[0], pcX[1]}, linkInc...)

	brOff := make(synth.Bus, 32)
	brOff[0], brOff[1] = b.Const0(), b.Const0()
	for i := 0; i < 16; i++ {
		brOff[i+2] = imm[i]
	}
	for i := 18; i < 32; i++ {
		brOff[i] = imm[15]
	}
	brTarget, _ := c.RippleAdder(pcXp4, brOff, b.Const0())

	jTarget := make(synth.Bus, 32)
	jTarget[0], jTarget[1] = b.Const0(), b.Const0()
	for i := 0; i < 26; i++ {
		jTarget[i+2] = irX[i]
	}
	copy(jTarget[28:], pcXp4[28:])

	eq := c.EqBus(opA, opB)
	rsSign := opA[31]
	lez := c.Or(rsSign, c.IsZero(opA))
	brCond := c.MuxTree([]synth.Bus{{eq}, {c.Not(eq)}, {lez}, {c.Not(lez)}}, synth.Bus{o0, o1})[0]
	rimmCond := c.Mux(rsSign, c.Not(rsSign), rimmGez)
	taken := c.Or(c.And(brOp, brCond), c.And(opRegimm, rimmCond))
	b.DriveWire(takenW, taken)

	target := c.MuxBus(brTarget, jTarget, jOp)
	target = c.MuxBus(target, opA, c.Or(spJr, spJalr))
	pcNext := c.MuxBus(pc, pcPlus4, fetchIntoW)
	pcNext = c.MuxBus(pcNext, target, redirectW)
	c.ConnectRegBus(pc, pcNext)

	// ---------------- BMUX: result bus ----------------
	b.SetComponent(bmuxID)
	result := c.MuxBus(aluOut, shiftOut, isShift)
	result = c.MuxBus(result, md.Hi, mfhi)
	result = c.MuxBus(result, md.Lo, mflo)
	result = c.MuxBus(result, loadData, isLoad)
	result = c.MuxBus(result, linkVal, isLink)
	c.DriveBus(resultXW, result)

	// ---------------- PLN: pipeline register updates ----------------
	b.SetComponent(plnID)
	c.ConnectRegBus(irD, c.MuxBus(irD, rdata, fetchIntoW))
	b.ConnectD(validD, c.Mux(c.And(validD, c.Not(advanceW)), c.Not(squash), fetchIntoW))
	c.ConnectRegBus(pcD, c.MuxBus(pcD, pc, fetchIntoW))

	c.ConnectRegBus(irX, c.MuxBus(irX, irD, advanceW))
	b.ConnectD(validX, c.Mux(validX, validD, advanceW))
	c.ConnectRegBus(pcX, c.MuxBus(pcX, pcD, advanceW))
	c.ConnectRegBus(opA, c.MuxBus(opA, fwdA, advanceW))
	c.ConnectRegBus(opB, c.MuxBus(opB, fwdB, advanceW))

	b.ConnectD(wenW, c.Mux(wenW, c.And(validX, regWrite), advanceW))
	c.ConnectRegBus(waddrW, c.MuxBus(waddrW, waddrX, advanceW))
	c.ConnectRegBus(wvalW, c.MuxBus(wvalW, resultXW, advanceW))

	// ---------------- Glue: bus outputs ----------------
	b.EndComponent()
	memAddr := c.MuxBus(pc, aluOut, dataCycleW)
	b.OutputBus(PortAddr, memAddr)
	b.OutputBus(PortWData, wdataOut)
	b.OutputBus(PortWStrobe, strobe)
	b.Output(PortDataAccess, dataCycle)

	cpu := &CPU{
		Netlist:  b.N,
		Lib:      lib,
		Variant:  VariantFwd5,
		PC:       pc,
		IR:       irX,
		Hi:       md.Hi,
		Lo:       md.Lo,
		MemCycle: memCycle,
		Busy:     md.Busy,
	}
	if err := b.N.Validate(); err != nil {
		return nil, fmt.Errorf("plasma: fwd5 netlist invalid: %w", err)
	}
	if err := checkNoRDataToOutputPath(b.N); err != nil {
		return nil, err
	}
	return cpu, nil
}
