package plasma

import (
	"fmt"

	"repro/internal/synth"
)

// Variant names. These are stable identifiers: they key cache entries and
// appear in reports, so renaming one orphans cached artifacts.
const (
	VariantBase  = "base"  // 3-stage fetch/execute/memory-pause core
	VariantFwd5  = "fwd5"  // 5-stage pipeline with operand forwarding
	VariantNoMul = "nomul" // 3-stage core without the MulD unit
)

// Variant is a Plasma micro-architecture that the self-test methodology is
// applied to: a named factory for gate-level cores plus the component
// inventory the synthesis tags. The methodology's claim is that test
// generation survives micro-architectural change; the variant ladder is
// how the repo exercises that claim.
type Variant interface {
	// Name is the stable variant identifier (part of cache keys).
	Name() string
	// Description is a one-line summary for reports.
	Description() string
	// Build synthesizes the variant's core with a technology library.
	Build(lib synth.Library) (*CPU, error)
	// Components lists the component regions the synthesis tags, in build
	// order. Classification tests assert the built netlist matches.
	Components() []string
}

type variantDef struct {
	name  string
	desc  string
	build func(synth.Library) (*CPU, error)
	comps []string
}

func (v *variantDef) Name() string                          { return v.name }
func (v *variantDef) Description() string                   { return v.desc }
func (v *variantDef) Build(lib synth.Library) (*CPU, error) { return v.build(lib) }
func (v *variantDef) Components() []string                  { return append([]string(nil), v.comps...) }

var variants = []*variantDef{
	{
		name:  VariantBase,
		desc:  "3-stage Plasma core (fetch / execute / memory-pause)",
		build: Build,
		comps: []string{"GL", "PLN", "CTRL", "RegF", "BMUX", "ALU", "BSH", "MulD", "MCTRL", "PCL"},
	},
	{
		name:  VariantFwd5,
		desc:  "5-stage pipeline with operand forwarding and branch squash",
		build: buildFwd5,
		comps: []string{"GL", "PLN", "CTRL", "RegF", "FWD", "BMUX", "ALU", "BSH", "MulD", "MCTRL", "PCL"},
	},
	{
		name:  VariantNoMul,
		desc:  "multiplier-less 3-stage core (MulD removed, mul/div reserved)",
		build: buildNoMul,
		comps: []string{"GL", "PLN", "CTRL", "RegF", "BMUX", "ALU", "BSH", "MCTRL", "PCL"},
	},
}

// Variants returns the core ladder in report order (base first).
func Variants() []Variant {
	out := make([]Variant, len(variants))
	for i, v := range variants {
		out[i] = v
	}
	return out
}

// VariantByName resolves a variant identifier; nil if unknown.
func VariantByName(name string) Variant {
	for _, v := range variants {
		if v.name == name {
			return v
		}
	}
	return nil
}

// VariantNames lists the valid variant identifiers (for CLI usage text).
func VariantNames() []string {
	out := make([]string, len(variants))
	for i, v := range variants {
		out[i] = v.name
	}
	return out
}

// BuildVariant builds the named variant, erroring on unknown names.
func BuildVariant(name string, lib synth.Library) (*CPU, error) {
	v := VariantByName(name)
	if v == nil {
		return nil, fmt.Errorf("plasma: unknown variant %q (want one of %v)", name, VariantNames())
	}
	return v.Build(lib)
}
