package plasma

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/gate"
	"repro/internal/sim"
)

// DefaultCheckpointK is the checkpoint interval used when a caller does not
// choose one: full flip-flop snapshots every 32 cycles, XOR-deltas between
// them. Fault-simulation passes fast-forward to the nearest boundary at or
// before their earliest activation and replay at most K-1 golden cycles on
// the already-warm event simulator, so larger K trades a little replay for
// a proportionally smaller golden trace.
const DefaultCheckpointK = 32

// Golden is the recorded fault-free execution of a program: the per-cycle
// read-data stream and primary-output values, plus the activation metadata
// that powers differential fault simulation. Fault simulation replays the
// read data and compares outputs. All fields are exported plain data so a
// trace round-trips through encoding/gob unchanged (internal/cache
// persists captures keyed by netlist + program hash + checkpoint interval).
//
// Flip-flop state is stored sparsely: a full snapshot of every DFF at each
// CheckpointK-cycle boundary, and per-cycle XOR-deltas (only the changed
// 64-bit words) between boundaries. The dense equivalent — one full
// snapshot per cycle, the format before the delta encoding — is
// reconstructible exactly: state entering cycle t is the snapshot at the
// nearest boundary <= t with the deltas of the intervening cycles applied.
type Golden struct {
	// RData is the run-length encoded stream of words returned by memory,
	// one per cycle; RDataAt(t) reads cycle t.
	RData U32Stream
	// The sampled primary-output state, run-length encoded per field (the
	// strobe and data-access flags pack into OutCtl); OutAt(t) reconstructs
	// cycle t's BusState.
	OutAddr  U32Stream
	OutWData U32Stream
	OutCtl   U32Stream
	// Cycles is the recorded cycle count.
	Cycles int

	// DFFs is the canonical flip-flop ordering for state snapshots.
	DFFs []gate.Sig

	// CheckpointK is the snapshot interval: Snaps holds a full state row
	// (bit i = DFFs[i], StateWords() words) for every cycle that is a
	// multiple of CheckpointK in [0, Cycles], concatenated in order.
	CheckpointK int
	Snaps       []uint64
	// The delta stream: the state entering cycle t+1 is the state entering
	// cycle t with DeltaXor[j] XORed into word DeltaPos[j] for j in
	// [DeltaIdx[t], DeltaIdx[t+1]). Words that did not change carry no
	// entry, which is what shrinks the trace: a CPU cycle touches a few
	// words of flip-flop state, not all of them.
	DeltaIdx []uint32
	DeltaPos []uint16
	DeltaXor []uint64

	// First0[s] / First1[s] record the first cycle at which signal s held
	// value 0 / 1 on the fault-observation timeline (the post-read-data
	// Eval, which is exactly what a fault-simulation pass observes each
	// cycle), or -1 if it never did. A stuck-at-v fault first diverges
	// from the fault-free machine at the first cycle its site holds 1-v,
	// so these bound every fault's activation cycle.
	First0, First1 []int32

	// ProgOrigin/ProgWords record the program image the trace was captured
	// from, making a Golden self-describing: a grading client can hand a
	// golden to a remote service and the service re-derives the program
	// identity (and can re-capture the trace) without a side channel.
	ProgOrigin uint32
	ProgWords  []uint32
}

// Program reconstructs the captured program image.
func (g *Golden) Program() *asm.Program {
	return &asm.Program{Origin: g.ProgOrigin, Words: g.ProgWords}
}

// RDataAt returns the memory read data of cycle t.
func (g *Golden) RDataAt(t int) uint32 { return g.RData.At(t) }

// outCtl packs the narrow BusState fields into one stream value.
func outCtl(bs BusState) uint32 {
	c := uint32(bs.WStrobe)
	if bs.DataAccess {
		c |= 1 << 4
	}
	return c
}

// OutAt reconstructs the sampled primary-output state of cycle t.
func (g *Golden) OutAt(t int) BusState {
	c := g.OutCtl.At(t)
	return BusState{
		Addr:       g.OutAddr.At(t),
		WData:      g.OutWData.At(t),
		WStrobe:    uint8(c & 0xF),
		DataAccess: c>>4 != 0,
	}
}

// DenseTraceBytes is the size the read-data and output streams would
// occupy in the dense one-entry-per-cycle format the run-length encoding
// replaced (4 bytes of read data and 10 of packed BusState per cycle).
func (g *Golden) DenseTraceBytes() int64 { return int64(g.Cycles) * (4 + 10) }

// StoredTraceBytes is the size the encoded read-data and output streams
// actually occupy.
func (g *Golden) StoredTraceBytes() int64 {
	return g.RData.StoredBytes() + g.OutAddr.StoredBytes() +
		g.OutWData.StoredBytes() + g.OutCtl.StoredBytes()
}

// HasActivation reports whether activation metadata was recorded.
func (g *Golden) HasActivation() bool { return g.First0 != nil }

// ActivationCycle returns the first cycle at which the given fault site
// diverges from the fault-free machine, or -1 if it never activates (the
// fault is undetectable by this program and need not be simulated).
func (g *Golden) ActivationCycle(n *gate.Netlist, site gate.FaultSite) int32 {
	sig := site.Gate
	if site.Pin > 0 {
		sig = n.Gates[site.Gate].In[site.Pin-1]
	}
	if site.Stuck {
		return g.First0[sig] // s-a-1 activates when the fault-free value is 0
	}
	return g.First1[sig]
}

// StateWords is the length of one full flip-flop snapshot in 64-bit words.
func (g *Golden) StateWords() int { return (len(g.DFFs) + 63) / 64 }

// CheckpointFloor returns the greatest checkpoint boundary at or before
// cycle t: the cycle a fault-simulation pass fast-forwards to before
// replaying at most CheckpointK-1 golden cycles up to t.
func (g *Golden) CheckpointFloor(t int32) int32 {
	k := int32(g.CheckpointK)
	return t - t%k
}

// Snapshot returns the full state row for a checkpoint boundary cycle
// (which must be a multiple of CheckpointK in [0, Cycles]).
func (g *Golden) Snapshot(cycle int32) []uint64 {
	if cycle%int32(g.CheckpointK) != 0 {
		panic(fmt.Sprintf("plasma: cycle %d is not a checkpoint boundary (k=%d)", cycle, g.CheckpointK))
	}
	w := g.StateWords()
	i := int(cycle) / g.CheckpointK
	return g.Snaps[i*w : (i+1)*w]
}

// StateAt reconstructs the flip-flop state entering cycle t (bit i =
// DFFs[i]) into dst, which must hold StateWords() words: the nearest
// boundary snapshot plus at most CheckpointK-1 cycle deltas.
func (g *Golden) StateAt(t int32, dst []uint64) {
	b := g.CheckpointFloor(t)
	copy(dst, g.Snapshot(b))
	g.AdvanceStateRange(dst, b, t)
}

// AdvanceState applies cycle t's delta to a state buffer, advancing it
// from the state entering cycle t to the state entering cycle t+1. Fault
// simulation keeps one rolling buffer per pass this way, paying only for
// the words that actually changed.
func (g *Golden) AdvanceState(dst []uint64, t int32) {
	g.AdvanceStateRange(dst, t, t+1)
}

// AdvanceStateRange applies the deltas of cycles [from, to) to a state
// buffer in one sweep, advancing it from the state entering cycle from to
// the state entering cycle to. The delta stream is flat, so a multi-cycle
// advance is a single scan over one contiguous (pos, xor) range — the
// per-cycle index loads and loop restarts of repeated AdvanceState calls
// disappear. This is how fused fault passes reconstruct their start state:
// one window's worth of deltas applied in a batch replaces the simulated
// golden replay of those cycles. The body is a scatter XOR (each entry
// hits an arbitrary state word), which vectorizes poorly, so unlike the
// gate kernels it stays a Go loop; the win is algorithmic (no gate
// evaluation at all), not data-parallel.
func (g *Golden) AdvanceStateRange(dst []uint64, from, to int32) {
	pos, xor := g.DeltaPos, g.DeltaXor
	for j, end := g.DeltaIdx[from], g.DeltaIdx[to]; j < end; j++ {
		dst[pos[j]] ^= xor[j]
	}
}

// DenseStateBytes is the size the flip-flop trace would occupy in the
// dense one-snapshot-per-cycle format the sparse encoding replaced.
func (g *Golden) DenseStateBytes() int64 {
	return int64(g.Cycles+1) * int64(g.StateWords()) * 8
}

// StoredStateBytes is the size the sparse flip-flop trace actually
// occupies (snapshots, delta index and delta payload).
func (g *Golden) StoredStateBytes() int64 {
	return int64(len(g.Snaps))*8 + int64(len(g.DeltaIdx))*4 +
		int64(len(g.DeltaPos))*2 + int64(len(g.DeltaXor))*8
}

// CaptureGolden runs a program image from reset for cycles clock cycles
// and records the golden read-data and output streams, the sparse
// checkpointed flip-flop trace at the default interval, and each signal's
// first cycle at 0 and at 1.
func CaptureGolden(cpu *CPU, prog *asm.Program, cycles int) (*Golden, error) {
	return CaptureGoldenK(cpu, prog, cycles, DefaultCheckpointK)
}

// CaptureGoldenK is CaptureGolden with an explicit checkpoint interval k
// (k >= 1; k = 1 stores a full snapshot every cycle, the dense format).
func CaptureGoldenK(cpu *CPU, prog *asm.Program, cycles int, k int) (*Golden, error) {
	if k < 1 {
		return nil, fmt.Errorf("plasma: checkpoint interval must be >= 1; got %d", k)
	}
	mem := sim.NewMemory()
	mem.LoadProgram(prog)
	m, err := NewMachine(cpu, mem)
	if err != nil {
		return nil, err
	}
	n := cpu.Netlist
	dffs := n.DFFSignals()
	words := (len(dffs) + 63) / 64
	if words > 1<<16 {
		return nil, fmt.Errorf("plasma: %d flip-flops exceed the delta encoding's word index range", len(dffs))
	}
	g := &Golden{
		Cycles:      cycles,
		DFFs:        dffs,
		CheckpointK: k,
		ProgOrigin:  prog.Origin,
		ProgWords:   append([]uint32(nil), prog.Words...),
		Snaps:       make([]uint64, 0, (cycles/k+1)*words),
		DeltaIdx:    make([]uint32, cycles+1),
		First0:      make([]int32, len(n.Gates)),
		First1:      make([]int32, len(n.Gates)),
	}
	// Dense capture buffers; run-length encoded into the trace streams
	// once the run completes.
	rdataDense := make([]uint32, cycles)
	addrDense := make([]uint32, cycles)
	wdataDense := make([]uint32, cycles)
	ctlDense := make([]uint32, cycles)
	prev := make([]uint64, words)
	cur := make([]uint64, words)
	m.Sim.StateBits(dffs, prev)
	g.Snaps = append(g.Snaps, prev...) // reset-state snapshot at cycle 0
	// pending lists the signals still missing a First0 or First1 entry; it
	// shrinks rapidly since most signals toggle within a few cycles.
	pending := make([]gate.Sig, len(n.Gates))
	for i := range pending {
		pending[i] = gate.Sig(i)
		g.First0[i], g.First1[i] = -1, -1
	}
	for t := 0; t < cycles; t++ {
		m.Sim.Eval()
		bs := m.sampleBus()
		rdata := m.service(bs)
		m.Sim.SetBusUniform(PortRData, uint64(rdata))
		m.Sim.Eval()
		keep := pending[:0]
		for _, sig := range pending {
			if m.Sim.SigWord(sig)&1 != 0 {
				if g.First1[sig] < 0 {
					g.First1[sig] = int32(t)
				}
			} else if g.First0[sig] < 0 {
				g.First0[sig] = int32(t)
			}
			if g.First0[sig] < 0 || g.First1[sig] < 0 {
				keep = append(keep, sig)
			}
		}
		pending = keep
		m.Sim.Latch()
		m.Cycle++
		rdataDense[t] = rdata
		addrDense[t] = bs.Addr
		wdataDense[t] = bs.WData
		ctlDense[t] = outCtl(bs)
		// cur is the state entering cycle t+1; record its delta against the
		// state entering t, and a full snapshot on k-boundaries.
		m.Sim.StateBits(dffs, cur)
		for w := 0; w < words; w++ {
			if x := cur[w] ^ prev[w]; x != 0 {
				g.DeltaPos = append(g.DeltaPos, uint16(w))
				g.DeltaXor = append(g.DeltaXor, x)
			}
		}
		g.DeltaIdx[t+1] = uint32(len(g.DeltaXor))
		if (t+1)%k == 0 {
			g.Snaps = append(g.Snaps, cur...)
		}
		prev, cur = cur, prev
	}
	g.RData = EncodeU32(rdataDense)
	g.OutAddr = EncodeU32(addrDense)
	g.OutWData = EncodeU32(wdataDense)
	g.OutCtl = EncodeU32(ctlDense)
	return g, nil
}
