package plasma

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/sim"
	"repro/internal/synth"
)

// coSimLoose: like coSim but ignores cycle stamps (for variants with
// different timing).
func coSimLoose(t *testing.T, cpu *CPU, src string) (*sim.CPU, *Machine) {
	t.Helper()
	full := src + "\ncosim_halt__: j cosim_halt__\nnop\n"
	prog, err := asm.Assemble(full, 0)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	issMem := sim.NewMemory()
	issMem.LoadProgram(prog)
	iss := sim.New(issMem, 0)
	iss.TraceBus = true
	halted, err := iss.Run(200000)
	if err != nil {
		t.Fatalf("ISS: %v", err)
	}
	if !halted {
		t.Fatal("ISS did not halt")
	}
	m, gateHalted, err := RunProgram(cpu, prog, iss.Cycle*3+400, true)
	if err != nil {
		t.Fatalf("gate machine: %v", err)
	}
	if !gateHalted {
		t.Fatalf("gate CPU (%s) did not halt (ISS took %d cycles); PC=%#x IR=%#x",
			cpu.Variant, iss.Cycle, m.PCLane(), m.IRLane())
	}
	if len(iss.Bus) != len(m.Bus) {
		max := len(iss.Bus)
		if len(m.Bus) > max {
			max = len(m.Bus)
		}
		for i := 0; i < max && i < 40; i++ {
			var a, b interface{}
			if i < len(iss.Bus) {
				a = iss.Bus[i]
			}
			if i < len(m.Bus) {
				b = m.Bus[i]
			}
			t.Logf("%2d ISS %v  gate %v", i, a, b)
		}
		t.Fatalf("bus event count: ISS %d vs gate %d", len(iss.Bus), len(m.Bus))
	}
	for i := range iss.Bus {
		ie, ge := iss.Bus[i], m.Bus[i]
		if ie.Addr != ge.Addr || ie.Data != ge.Data || ie.Strobe != ge.Strobe || ie.Write != ge.Write {
			t.Fatalf("bus event %d differs:\nISS:  %v\ngate: %v", i, ie, ge)
		}
	}
	if eq, diff := issMem.Equal(m.Mem); !eq {
		t.Fatalf("final memory differs: %s", diff)
	}
	return iss, m
}

func buildFwd5ForTest(t *testing.T) *CPU {
	cpu, err := buildFwd5(synth.NativeLib{})
	if err != nil {
		t.Fatal(err)
	}
	return cpu
}

func TestFwd5Arithmetic(t *testing.T) {
	coSimLoose(t, buildFwd5ForTest(t), `
		li $t0, 100
		li $t1, -30
		add $t2, $t0, $t1
		sub $t3, $t0, $t1
		and $t4, $t0, $t1
		or  $t5, $t0, $t1
		slt $s0, $t1, $t0
		addiu $s2, $t0, -1000
		lui $t8, 0xabcd
	`+storeAllRegs(0x2000))
}

func TestFwd5Forwarding(t *testing.T) {
	coSimLoose(t, buildFwd5ForTest(t), `
		li $t0, 5
		addiu $t1, $t0, 1    # distance-1 hazard
		addiu $t2, $t1, 1    # distance-1 again
		add $t3, $t1, $t2    # both from X and W
		add $t4, $t0, $t0    # distance-3+ (regfile)
		sll $t5, $t3, 2      # shift uses forwarded
	`+storeAllRegs(0x2000))
}

func TestFwd5LoadUse(t *testing.T) {
	coSimLoose(t, buildFwd5ForTest(t), `
		li $t0, 0x1000
		li $t1, 0x89abcdef
		sw $t1, 0($t0)
		lw $t2, 0($t0)
		addiu $t3, $t2, 1    # load-use distance 1
		lw $t4, 0($t0)
		nop
		addiu $t5, $t4, 2    # load-use distance 2
		lb $t6, 0($t0)
		lbu $t7, 1($t0)
		lh $s0, 0($t0)
		lhu $s1, 2($t0)
		sb $t1, 4($t0)
		sh $t1, 8($t0)
		lw $s2, 4($t0)
		lw $s3, 8($t0)
	`+storeAllRegs(0x2000))
}

func TestFwd5Branches(t *testing.T) {
	coSimLoose(t, buildFwd5ForTest(t), `
		li $t0, 5
		li $s0, 0
	loop:
		addiu $s0, $s0, 3
		addiu $t0, $t0, -1
		bne $t0, $zero, loop
		nop
		beq $s0, $zero, never
		li $s1, 1
		bltz $s0, never
		nop
		bgez $s0, took1
		nop
	never:
		li $s7, 0xbad
	took1:
		blez $zero, took2
		nop
		li $s7, 0xbad2
	took2:
		bgtz $s0, took3
		nop
		li $s7, 0xbad3
	took3:
		addiu $t9, $s0, 0    # branch-condition forwarding next
		beq $t9, $s0, took4
		nop
		li $s7, 0xbad4
	took4:
	`+storeAllRegs(0x2000))
}

func TestFwd5Jumps(t *testing.T) {
	coSimLoose(t, buildFwd5ForTest(t), `
		jal sub1
		nop
		la $t0, sub2
		jalr $s5, $t0
		nop
		bgezal $zero, sub3
		nop
		b end
		nop
	sub1:
		li $s0, 0x111
		jr $ra
		nop
	sub2:
		li $s1, 0x222
		jr $s5
		nop
	sub3:
		li $s2, 0x333
		jr $ra
		nop
	end:
		move $s3, $ra
	`+storeAllRegs(0x2000))
}

func TestFwd5MulDiv(t *testing.T) {
	coSimLoose(t, buildFwd5ForTest(t), `
		li $t0, -7
		li $t1, 9
		mult $t0, $t1
		mflo $t2
		mfhi $t3
		div $t0, $t1
		mflo $t6
		mfhi $t7
		li $s2, 0x1234
		mthi $s2
		mtlo $t1
		mfhi $s3
		mflo $s4
		mult $t1, $t1
		addiu $s5, $zero, 7
		mflo $s6
	`+storeAllRegs(0x2000))
}

func TestFwd5Random(t *testing.T) {
	cpu := buildFwd5ForTest(t)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 4; trial++ {
		coSimLoose(t, cpu, randomProgram(rng, 100))
	}
	rng2 := rand.New(rand.NewSource(777))
	for trial := 0; trial < 3; trial++ {
		coSimLoose(t, cpu, randomLoopProgram(rng2, trial+100))
	}
}

func TestNoMulBasic(t *testing.T) {
	cpu, err := buildNoMul(synth.NativeLib{})
	if err != nil {
		t.Fatal(err)
	}
	coSimLoose(t, cpu, `
		li $t0, 100
		li $t1, -30
		add $t2, $t0, $t1
		sub $t3, $t0, $t1
		sll $t5, $t0, 3
		li $t6, 0x1000
		sw $t2, 0($t6)
		lw $t7, 0($t6)
	`+storeAllRegs(0x2000))
}
