package plasma

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"testing"
)

// streamCases generates dense sequences with the shapes the golden
// capture produces: long runs, alternating short runs, no repeats, and
// boundary lengths around the 64-entry bitmap blocks.
func streamCases(r *rand.Rand) [][]uint32 {
	cases := [][]uint32{
		{},
		{7},
		{3, 3, 3, 3},
		{1, 2, 3, 4, 5},
	}
	for _, n := range []int{63, 64, 65, 128, 1000} {
		runny := make([]uint32, n)
		v := uint32(0)
		for i := range runny {
			if r.Intn(10) == 0 {
				v = r.Uint32()
			}
			runny[i] = v
		}
		dense := make([]uint32, n)
		for i := range dense {
			dense[i] = r.Uint32()
		}
		cases = append(cases, runny, dense)
	}
	return cases
}

// TestU32StreamRoundTrip asserts bit-exact reconstruction: every element
// via At, the whole sequence via Decode, and identity through a gob
// round trip (the cache persistence path).
func TestU32StreamRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for ci, xs := range streamCases(r) {
		s := EncodeU32(xs)
		if s.Len() != len(xs) {
			t.Fatalf("case %d: Len = %d, want %d", ci, s.Len(), len(xs))
		}
		for i, x := range xs {
			if got := s.At(i); got != x {
				t.Fatalf("case %d: At(%d) = %d, want %d", ci, i, got, x)
			}
		}
		if dec := s.Decode(); len(xs) > 0 && !reflect.DeepEqual(dec, xs) {
			t.Fatalf("case %d: Decode mismatch", ci)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&s); err != nil {
			t.Fatal(err)
		}
		var back U32Stream
		if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
			t.Fatal(err)
		}
		for i, x := range xs {
			if got := back.At(i); got != x {
				t.Fatalf("case %d: after gob, At(%d) = %d, want %d", ci, i, got, x)
			}
		}
	}
}

// TestU32StreamStoredBytes checks the accounting and that runny data
// actually compresses below the dense footprint.
func TestU32StreamStoredBytes(t *testing.T) {
	xs := make([]uint32, 4096) // one run
	s := EncodeU32(xs)
	if want := int64(len(s.Vals))*4 + int64(len(s.Bits))*8 + int64(len(s.Rank))*4; s.StoredBytes() != want {
		t.Fatalf("StoredBytes = %d, want %d", s.StoredBytes(), want)
	}
	if dense := int64(len(xs)) * 4; s.StoredBytes() >= dense {
		t.Fatalf("single-run stream did not compress: stored %d >= dense %d", s.StoredBytes(), dense)
	}
}
