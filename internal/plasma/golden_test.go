package plasma

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/synth"
)

// goldenTestProgram exercises enough register, memory and control-flow
// traffic that the flip-flop state keeps changing for the whole capture
// window, so the delta stream is non-trivial at every cycle.
const goldenTestProgram = `
	li $t0, 0x1000
	li $t1, 0xa5a5
	li $s0, 6
lp:	sw $t1, 0($t0)
	lw $t2, 0($t0)
	addu $t1, $t1, $t2
	xor $t3, $t1, $t2
	sw $t3, 4($t0)
	addiu $t0, $t0, 8
	addiu $s0, $s0, -1
	bne $s0, $zero, lp
	nop
h:	j h
	nop
`

func captureK(t *testing.T, cycles, k int) *Golden {
	t.Helper()
	prog, err := asm.Assemble(goldenTestProgram, 0)
	if err != nil {
		t.Fatal(err)
	}
	cpu := buildCPU(t, synth.NativeLib{})
	g, err := CaptureGoldenK(cpu, prog, cycles, k)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSparseCheckpointReconstruction is the soundness property of the
// delta encoding: for any checkpoint interval, StateAt must reconstruct
// exactly the state a dense (k=1) capture records, at every cycle. The
// interval sweep covers k=1 itself (every cycle a boundary, no replay),
// the default, a larger power of two, a non-divisor of the cycle count,
// and an interval longer than the whole program (only the reset snapshot
// exists; every cycle reconstructs by replay from cycle 0).
func TestSparseCheckpointReconstruction(t *testing.T) {
	const cycles = 90
	dense := captureK(t, cycles, 1)
	words := dense.StateWords()
	for _, k := range []int{1, DefaultCheckpointK, 64, 7, cycles + 1000} {
		g := captureK(t, cycles, k)
		if g.CheckpointK != k {
			t.Fatalf("k=%d: CheckpointK = %d", k, g.CheckpointK)
		}
		// The streams the fault simulator replays must not depend on k.
		for tt := 0; tt < cycles; tt++ {
			if g.RDataAt(tt) != dense.RDataAt(tt) || g.OutAt(tt) != dense.OutAt(tt) {
				t.Fatalf("k=%d: RData/Out diverge at cycle %d", k, tt)
			}
		}
		// Random access: StateAt(t) == dense snapshot at t.
		got := make([]uint64, words)
		for tt := int32(0); tt <= int32(cycles); tt++ {
			g.StateAt(tt, got)
			want := dense.Snapshot(tt)
			for w := range got {
				if got[w] != want[w] {
					t.Fatalf("k=%d: StateAt(%d) word %d = %#x, dense has %#x",
						k, tt, w, got[w], want[w])
				}
			}
		}
		// Rolling access, the per-pass conform path: one buffer advanced
		// delta by delta across every boundary must track the dense trace.
		roll := make([]uint64, words)
		g.StateAt(0, roll)
		for tt := int32(0); tt < int32(cycles); tt++ {
			g.AdvanceState(roll, tt)
			want := dense.Snapshot(tt + 1)
			for w := range roll {
				if roll[w] != want[w] {
					t.Fatalf("k=%d: rolling state at cycle %d word %d = %#x, dense has %#x",
						k, tt+1, w, roll[w], want[w])
				}
			}
		}
	}
}

// TestSparseCheckpointCompression checks the size accounting: the sparse
// trace must be strictly smaller than the dense format it replaced at the
// default interval, and the two size methods must agree with the actual
// slice lengths.
func TestSparseCheckpointCompression(t *testing.T) {
	const cycles = 256
	g := captureK(t, cycles, DefaultCheckpointK)
	if got := g.DenseStateBytes(); got != int64(cycles+1)*int64(g.StateWords())*8 {
		t.Fatalf("DenseStateBytes = %d", got)
	}
	want := int64(len(g.Snaps))*8 + int64(len(g.DeltaIdx))*4 +
		int64(len(g.DeltaPos))*2 + int64(len(g.DeltaXor))*8
	if got := g.StoredStateBytes(); got != want {
		t.Fatalf("StoredStateBytes = %d, want %d", got, want)
	}
	if g.StoredStateBytes() >= g.DenseStateBytes() {
		t.Fatalf("sparse trace (%d bytes) not smaller than dense (%d bytes)",
			g.StoredStateBytes(), g.DenseStateBytes())
	}
}

func TestCaptureGoldenKRejectsBadInterval(t *testing.T) {
	prog, err := asm.Assemble("h: j h\nnop\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	cpu := buildCPU(t, synth.NativeLib{})
	for _, k := range []int{0, -1} {
		if _, err := CaptureGoldenK(cpu, prog, 8, k); err == nil {
			t.Errorf("CaptureGoldenK(k=%d) accepted an invalid interval", k)
		}
	}
}
