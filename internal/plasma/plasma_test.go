package plasma

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/sim"
	"repro/internal/synth"
)

var builtCPUs = map[string]*CPU{}

func buildCPU(t *testing.T, lib synth.Library) *CPU {
	t.Helper()
	if c, ok := builtCPUs[lib.Name()]; ok {
		return c
	}
	c, err := Build(lib)
	if err != nil {
		t.Fatalf("Build(%s): %v", lib.Name(), err)
	}
	builtCPUs[lib.Name()] = c
	return c
}

func TestBuildValidates(t *testing.T) {
	for _, lib := range synth.Libraries() {
		cpu := buildCPU(t, lib)
		st := cpu.Netlist.Stats()
		if st.Area < 8000 || st.Area > 40000 {
			t.Errorf("%s: total area %.0f NAND2 out of plausible range", lib.Name(), st.Area)
		}
		perComp, _ := cpu.Netlist.GateCount()
		names := cpu.Netlist.CompNames
		byName := map[string]float64{}
		for i, n := range names {
			byName[n] = perComp[i]
		}
		// The paper's size ordering: RegF largest, then MulD among the
		// functional components.
		if byName["RegF"] <= byName["MulD"] || byName["MulD"] <= byName["ALU"] {
			t.Errorf("%s: unexpected component size ordering: %v", lib.Name(), byName)
		}
		for _, want := range []string{"RegF", "MulD", "ALU", "BSH", "MCTRL", "PCL", "CTRL", "BMUX", "PLN", "GL"} {
			if byName[want] <= 0 {
				t.Errorf("%s: component %s has no gates", lib.Name(), want)
			}
		}
	}
}

// coSim runs src on both the ISS and the gate-level CPU and compares bus
// traces (with the constant one-cycle reset offset), final memory contents,
// and halting.
func coSim(t *testing.T, cpu *CPU, src string) (*sim.CPU, *Machine) {
	t.Helper()
	full := src + "\ncosim_halt__: j cosim_halt__\nnop\n"
	prog, err := asm.Assemble(full, 0)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}

	issMem := sim.NewMemory()
	issMem.LoadProgram(prog)
	iss := sim.New(issMem, 0)
	iss.TraceBus = true
	halted, err := iss.Run(200000)
	if err != nil {
		t.Fatalf("ISS: %v", err)
	}
	if !halted {
		t.Fatal("ISS did not halt")
	}

	m, gateHalted, err := RunProgram(cpu, prog, iss.Cycle+200, true)
	if err != nil {
		t.Fatalf("gate machine: %v", err)
	}
	if !gateHalted {
		t.Fatalf("gate CPU did not halt (ISS took %d cycles); PC=%#x IR=%#x",
			iss.Cycle, m.PCLane(), m.IRLane())
	}

	if len(iss.Bus) != len(m.Bus) {
		t.Fatalf("bus event count: ISS %d vs gate %d\nISS: %v\ngate: %v",
			len(iss.Bus), len(m.Bus), iss.Bus, m.Bus)
	}
	for i := range iss.Bus {
		ie, ge := iss.Bus[i], m.Bus[i]
		if ie.Addr != ge.Addr || ie.Data != ge.Data || ie.Strobe != ge.Strobe || ie.Write != ge.Write {
			t.Fatalf("bus event %d differs:\nISS:  %v\ngate: %v", i, ie, ge)
		}
		if ge.Cycle != ie.Cycle-1 {
			t.Errorf("bus event %d cycle: ISS %d vs gate %d (want gate = ISS-1)", i, ie.Cycle, ge.Cycle)
		}
	}
	if eq, diff := issMem.Equal(m.Mem); !eq {
		t.Fatalf("final memory differs: %s", diff)
	}
	return iss, m
}

// storeAllRegs emits code that dumps r1..r25 to memory so register state is
// part of the compared surface.
func storeAllRegs(base uint32) string {
	s := fmt.Sprintf("lui $at, %#x\n", base>>16)
	for r := 2; r <= 25; r++ {
		s += fmt.Sprintf("sw $%d, %d($at)\n", r, (r-2)*4)
	}
	return s
}

func TestCoSimArithmetic(t *testing.T) {
	cpu := buildCPU(t, synth.NativeLib{})
	coSim(t, cpu, `
		li $t0, 100
		li $t1, -30
		add $t2, $t0, $t1
		sub $t3, $t0, $t1
		and $t4, $t0, $t1
		or  $t5, $t0, $t1
		xor $t6, $t0, $t1
		nor $t7, $t0, $t1
		slt $s0, $t1, $t0
		sltu $s1, $t1, $t0
		addiu $s2, $t0, -1000
		slti $s3, $t1, 6
		sltiu $s4, $t1, 6
		andi $s5, $t1, 0xf0f0
		ori $s6, $t1, 0x1234
		xori $s7, $t1, 0xffff
		lui $t8, 0xabcd
	`+storeAllRegs(0x2000))
}

func TestCoSimShifts(t *testing.T) {
	cpu := buildCPU(t, synth.NativeLib{})
	coSim(t, cpu, `
		li $t0, 0x80000001
		li $t1, 7
		sll $t2, $t0, 1
		srl $t3, $t0, 1
		sra $t4, $t0, 1
		sll $t5, $t0, 31
		sra $t6, $t0, 31
		sllv $t7, $t0, $t1
		srlv $s0, $t0, $t1
		srav $s1, $t0, $t1
		li $t1, 32          # variable shift uses low 5 bits: 0
		sllv $s2, $t0, $t1
	`+storeAllRegs(0x2000))
}

func TestCoSimBranches(t *testing.T) {
	cpu := buildCPU(t, synth.NativeLib{})
	coSim(t, cpu, `
		li $t0, 5
		li $s0, 0
	loop:
		addiu $s0, $s0, 3
		addiu $t0, $t0, -1
		bne $t0, $zero, loop
		nop
		beq $s0, $zero, never
		li $s1, 1          # delay slot
		bltz $s0, never
		nop
		bgez $s0, took1
		nop
	never:
		li $s7, 0xbad
	took1:
		blez $zero, took2
		nop
		li $s7, 0xbad2
	took2:
		bgtz $s0, took3
		nop
		li $s7, 0xbad3
	took3:
	`+storeAllRegs(0x2000))
}

func TestCoSimJumps(t *testing.T) {
	cpu := buildCPU(t, synth.NativeLib{})
	coSim(t, cpu, `
		jal sub1
		nop
		la $t0, sub2
		jalr $s5, $t0
		nop
		bgezal $zero, sub3
		nop
		b end
		nop
	sub1:
		li $s0, 0x111
		jr $ra
		nop
	sub2:
		li $s1, 0x222
		jr $s5
		nop
	sub3:
		li $s2, 0x333
		jr $ra
		nop
	end:
		move $s3, $ra
	`+storeAllRegs(0x2000))
}

func TestCoSimMemory(t *testing.T) {
	cpu := buildCPU(t, synth.NativeLib{})
	coSim(t, cpu, `
		li $t0, 0x1000
		li $t1, 0x89abcdef
		sw $t1, 0($t0)
		lw $t2, 0($t0)
		lb $t3, 0($t0)
		lbu $t4, 1($t0)
		lb $t5, 3($t0)
		lh $t6, 0($t0)
		lhu $t7, 2($t0)
		sb $t1, 4($t0)
		sb $t1, 7($t0)
		sh $t1, 8($t0)
		sh $t1, 14($t0)
		lw $s0, 4($t0)
		lw $s1, 8($t0)
		lw $s2, 12($t0)
	`+storeAllRegs(0x2000))
}

func TestCoSimMulDiv(t *testing.T) {
	cpu := buildCPU(t, synth.NativeLib{})
	coSim(t, cpu, `
		li $t0, -7
		li $t1, 9
		mult $t0, $t1
		mflo $t2
		mfhi $t3
		multu $t0, $t1
		mflo $t4
		mfhi $t5
		div $t0, $t1
		mflo $t6
		mfhi $t7
		divu $t1, $t0
		mflo $s0
		mfhi $s1
		li $s2, 0x1234
		mthi $s2
		mtlo $t1
		mfhi $s3
		mflo $s4
		# overlap: useful work between mult and mfhi
		mult $t1, $t1
		addiu $s5, $zero, 0
		addiu $s5, $s5, 7
		addiu $s5, $s5, 7
		mflo $s6
	`+storeAllRegs(0x2000))
}

func TestCoSimMulDivEdgeCases(t *testing.T) {
	cpu := buildCPU(t, synth.NativeLib{})
	coSim(t, cpu, `
		li $t0, 0x80000000
		li $t1, -1
		mult $t0, $t1
		mflo $s0
		mfhi $s1
		div $t0, $t1
		mflo $s2
		mfhi $s3
		li $t1, 0xffffffff
		multu $t1, $t1
		mflo $s4
		mfhi $s5
		divu $t0, $t1
		mflo $s6
		mfhi $s7
	`+storeAllRegs(0x2000))
}

func TestCoSimLoadInDelaySlot(t *testing.T) {
	cpu := buildCPU(t, synth.NativeLib{})
	coSim(t, cpu, `
		li $t0, 0x1000
		li $t1, 0x5a5a5a5a
		sw $t1, 0($t0)
		beq $zero, $zero, after
		lw $t2, 0($t0)     # load in delay slot
		li $t3, 0xbad
	after:
		sw $t2, 4($t0)
	`+storeAllRegs(0x2000))
}

func TestCoSimRandomPrograms(t *testing.T) {
	cpu := buildCPU(t, synth.NativeLib{})
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		src := randomProgram(rng, 120)
		coSim(t, cpu, src)
	}
}

func TestCoSimNandLib(t *testing.T) {
	cpu := buildCPU(t, synth.NandLib{})
	rng := rand.New(rand.NewSource(43))
	coSim(t, cpu, randomProgram(rng, 80))
}

// randomProgram emits a straight-line random program over r8..r23 with
// occasional memory traffic and mul/div, ending with a register dump.
func randomProgram(rng *rand.Rand, n int) string {
	return randomProgramMulDiv(rng, n, true)
}

// randomProgramMulDiv is randomProgram with the mul/div traffic optional,
// so the same generator drives multiplier-less cores. The instruction
// picker consumes identical randomness either way; only the emitted text
// differs.
func randomProgramMulDiv(rng *rand.Rand, n int, allowMulDiv bool) string {
	reg := func() int { return 8 + rng.Intn(16) }
	src := "li $fp, 0x3000\n"
	for r := 8; r < 24; r++ {
		src += fmt.Sprintf("li $%d, %#x\n", r, rng.Uint32())
	}
	rrOps := []string{"add", "addu", "sub", "subu", "and", "or", "xor", "nor", "slt", "sltu", "sllv", "srlv", "srav"}
	iOps := []string{"addi", "addiu", "slti", "sltiu"}
	uOps := []string{"andi", "ori", "xori"}
	shOps := []string{"sll", "srl", "sra"}
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			src += fmt.Sprintf("%s $%d, $%d, $%d\n", rrOps[rng.Intn(len(rrOps))], reg(), reg(), reg())
		case 4:
			src += fmt.Sprintf("%s $%d, $%d, %d\n", iOps[rng.Intn(len(iOps))], reg(), reg(), rng.Intn(65536)-32768)
		case 5:
			src += fmt.Sprintf("%s $%d, $%d, %#x\n", uOps[rng.Intn(len(uOps))], reg(), reg(), rng.Intn(65536))
		case 6:
			src += fmt.Sprintf("%s $%d, $%d, %d\n", shOps[rng.Intn(len(shOps))], reg(), reg(), rng.Intn(32))
		case 7:
			off := rng.Intn(32) * 4
			if rng.Intn(2) == 0 {
				src += fmt.Sprintf("sw $%d, %d($fp)\n", reg(), off)
			} else {
				src += fmt.Sprintf("lw $%d, %d($fp)\n", reg(), off)
			}
		case 8:
			off := rng.Intn(128)
			if rng.Intn(2) == 0 {
				src += fmt.Sprintf("sb $%d, %d($fp)\n", reg(), off)
			} else if rng.Intn(2) == 0 {
				src += fmt.Sprintf("lbu $%d, %d($fp)\n", reg(), off)
			} else {
				src += fmt.Sprintf("lb $%d, %d($fp)\n", reg(), off)
			}
		case 9:
			md := []string{"mult", "multu", "div", "divu"}[rng.Intn(4)]
			a, b := reg(), reg()
			lo, hi := reg(), reg()
			if !allowMulDiv {
				// Same randomness consumed, multiplier-free text emitted.
				src += fmt.Sprintf("xor $%d, $%d, $%d\n", lo, a, b)
				src += fmt.Sprintf("addu $%d, $%d, $%d\n", hi, a, b)
				break
			}
			if md == "div" || md == "divu" {
				// Keep divisor nonzero and away from the signed-overflow
				// pair so ISS and hardware agree by construction.
				src += fmt.Sprintf("ori $%d, $%d, 3\n", b, b)
			}
			src += fmt.Sprintf("%s $%d, $%d\n", md, a, b)
			src += fmt.Sprintf("mflo $%d\n", lo)
			src += fmt.Sprintf("mfhi $%d\n", hi)
		}
	}
	return src + storeAllRegs(0x2000)
}

func TestGoldenCaptureMatchesMachine(t *testing.T) {
	cpu := buildCPU(t, synth.NativeLib{})
	prog, err := asm.Assemble(`
		li $t0, 0x1000
		li $t1, 0xa5
		sw $t1, 0($t0)
		lw $t2, 0($t0)
	h:	j h
		nop
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := CaptureGolden(cpu, prog, 30)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cycles != 30 || g.RData.Len() != 30 || g.OutCtl.Len() != 30 {
		t.Fatalf("golden sizing wrong: %d", g.Cycles)
	}
	// Find the store in the golden output stream.
	found := false
	for tt := 0; tt < g.Cycles; tt++ {
		if o := g.OutAt(tt); o.WStrobe == 0xF && o.Addr == 0x1000 && o.WData == 0xA5 {
			found = true
		}
	}
	if !found {
		t.Error("golden trace missing the sw event")
	}
}

// randomLoopProgram emits a structured random program with counted loops,
// forward branches and a subroutine — terminating by construction — to
// stress control flow in co-simulation beyond straight-line code.
func randomLoopProgram(rng *rand.Rand, id int) string {
	var sb strings.Builder
	w := func(format string, args ...interface{}) { fmt.Fprintf(&sb, format+"\n", args...) }
	label := 0
	newLabel := func(p string) string { label++; return fmt.Sprintf("rl%d_%s%d", id, p, label) }
	reg := func() int { return 8 + rng.Intn(8) } // $t0..$t7

	w("li $fp, 0x4000")
	for r := 8; r < 16; r++ {
		w("li $%d, %#x", r, rng.Uint32())
	}

	body := func() {
		ops := []string{"addu", "subu", "xor", "and", "or", "slt", "sllv"}
		for i := 0; i < 2+rng.Intn(4); i++ {
			w("%s $%d, $%d, $%d", ops[rng.Intn(len(ops))], reg(), reg(), reg())
		}
		if rng.Intn(2) == 0 {
			w("sw $%d, %d($fp)", reg(), rng.Intn(16)*4)
		}
		if rng.Intn(3) == 0 {
			skip := newLabel("sk")
			w("bne $%d, $%d, %s", reg(), reg(), skip)
			w("addiu $%d, $%d, 1", reg(), reg()) // delay slot
			w("xor $%d, $%d, $%d", reg(), reg(), reg())
			w("%s:", skip)
		}
	}

	sub := newLabel("sub")
	after := newLabel("after")
	w("jal %s", sub)
	w("nop")
	w("b %s", after)
	w("nop")
	w("%s:", sub)
	body()
	w("jr $ra")
	w("nop")
	w("%s:", after)

	for seg := 0; seg < 3; seg++ {
		outer := newLabel("lp")
		w("li $s0, %d", 2+rng.Intn(4))
		w("%s:", outer)
		body()
		if rng.Intn(2) == 0 {
			inner := newLabel("in")
			w("li $s1, %d", 2+rng.Intn(3))
			w("%s:", inner)
			body()
			w("addiu $s1, $s1, -1")
			w("bne $s1, $zero, %s", inner)
			w("nop")
		}
		w("addiu $s0, $s0, -1")
		w("bne $s0, $zero, %s", outer)
		w("nop")
	}
	return sb.String() + storeAllRegs(0x2000)
}

func TestCoSimStructuredRandom(t *testing.T) {
	cpu := buildCPU(t, synth.NativeLib{})
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 6; trial++ {
		coSim(t, cpu, randomLoopProgram(rng, trial))
	}
}

func TestDebugLanesAndBusStateString(t *testing.T) {
	cpu := buildCPU(t, synth.NativeLib{})
	prog, err := asm.Assemble("li $t0, 5\nh: j h\nnop", 0)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := RunProgram(cpu, prog, 20, false)
	if err != nil {
		t.Fatal(err)
	}
	// After the halt loop, the PC cycles within the two halt words.
	if pc := m.PCLane(); pc > 0x10 {
		t.Errorf("PC = %#x after halt", pc)
	}
	if ir := m.IRLane(); ir == 0xFFFFFFFF {
		t.Errorf("IR lane read broken: %#x", ir)
	}
	bs := BusState{Addr: 0x40, WData: 0xAA, WStrobe: 0xF, DataAccess: true}
	if s := bs.String(); !strings.Contains(s, "D") || !strings.Contains(s, "aa") {
		t.Errorf("BusState.String = %q", s)
	}
	bs.DataAccess = false
	if s := bs.String(); !strings.Contains(s, "F ") {
		t.Errorf("fetch BusState.String = %q", s)
	}
}
