package plasma

import (
	"math/rand"
	"testing"

	"repro/internal/gate"
)

// synthGolden builds a Golden with a random flip-flop trace in the sparse
// checkpoint/delta encoding — exactly as CaptureGoldenK would store it —
// and returns the dense per-cycle reference states it encodes. nbits, k
// and cycles come from the fuzzer; the word-flip density varies so some
// traces are near-static (long empty delta runs) and some churn every
// word (snapshot-heavy).
func synthGolden(seed int64, nbits, k, cycles int) (*Golden, [][]uint64) {
	rng := rand.New(rand.NewSource(seed))
	g := &Golden{
		Cycles:      cycles,
		DFFs:        make([]gate.Sig, nbits),
		CheckpointK: k,
		DeltaIdx:    make([]uint32, cycles+1),
	}
	words := g.StateWords()
	dense := make([][]uint64, cycles+1)
	dense[0] = make([]uint64, words)
	for w := range dense[0] {
		dense[0][w] = rng.Uint64()
	}
	g.Snaps = append(g.Snaps, dense[0]...)
	density := rng.Float64()
	for t := 0; t < cycles; t++ {
		next := append([]uint64(nil), dense[t]...)
		for w := range next {
			if rng.Float64() < density {
				next[w] ^= rng.Uint64()
			}
		}
		for w := range next {
			if x := next[w] ^ dense[t][w]; x != 0 {
				g.DeltaPos = append(g.DeltaPos, uint16(w))
				g.DeltaXor = append(g.DeltaXor, x)
			}
		}
		g.DeltaIdx[t+1] = uint32(len(g.DeltaXor))
		if (t+1)%k == 0 {
			g.Snaps = append(g.Snaps, next...)
		}
		dense[t+1] = next
	}
	return g, dense
}

// FuzzStateReconstruction checks the sparse golden trace against its dense
// reference: for every query cycle, StateAt must reproduce the exact state
// the dense one-snapshot-per-cycle format would have stored, and a rolling
// buffer advanced cycle by cycle with AdvanceState must track it too. This
// pins the two reconstruction paths fault simulation relies on (fast-
// forward to a checkpoint, then replay) for arbitrary checkpoint
// intervals, trace lengths and state widths.
func FuzzStateReconstruction(f *testing.F) {
	f.Add(int64(1), uint16(70), uint8(32), uint8(100)) // the CPU-like shape
	f.Add(int64(2), uint16(1), uint8(1), uint8(1))     // k=1: dense storage
	f.Add(int64(3), uint16(64), uint8(255), uint8(10)) // k > cycles: one snapshot
	f.Add(int64(4), uint16(200), uint8(7), uint8(200)) // k not a divisor of cycles
	f.Fuzz(func(t *testing.T, seed int64, nbitsRaw uint16, kRaw, cyclesRaw uint8) {
		nbits := 1 + int(nbitsRaw)%256
		k := 1 + int(kRaw)
		cycles := 1 + int(cyclesRaw)
		g, dense := synthGolden(seed, nbits, k, cycles)

		buf := make([]uint64, g.StateWords())
		for qt := 0; qt <= cycles; qt++ {
			g.StateAt(int32(qt), buf)
			for w := range buf {
				if buf[w] != dense[qt][w] {
					t.Fatalf("StateAt(%d) word %d = %#x, want %#x (nbits=%d k=%d cycles=%d)",
						qt, w, buf[w], dense[qt][w], nbits, k, cycles)
				}
			}
		}

		// The rolling-buffer path: start at any checkpoint floor and advance
		// one delta at a time, as a fault-simulation pass does.
		start := int(g.CheckpointFloor(int32(cycles)))
		g.StateAt(int32(start), buf)
		for ct := start; ct < cycles; ct++ {
			g.AdvanceState(buf, int32(ct))
			for w := range buf {
				if buf[w] != dense[ct+1][w] {
					t.Fatalf("AdvanceState to %d word %d = %#x, want %#x", ct+1, w, buf[w], dense[ct+1][w])
				}
			}
		}
	})
}
