package plasma

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/gate"
	"repro/internal/sim"
)

// Machine runs a gate-level CPU against a behavioral memory. It simulates
// at width 1 (one 64-bit lane word), every lane carrying the same
// fault-free machine: golden capture needs exactly one machine, so the
// wider multi-word lane configurations (gate.NewEventSimWidth) are left to
// fault simulation, which replays the trace recorded here across up to 512
// faulty machines per pass (see internal/fault).
//
// The per-cycle protocol exploits the structural invariant that the memory
// bus outputs do not combinationally depend on read data:
//
//  1. Eval: bus outputs (address, write data, strobes, kind) become valid.
//  2. The memory services the access: commits strobed writes, returns the
//     addressed word.
//  3. Read data is driven; Eval again; all registers latch.
type Machine struct {
	CPU *CPU
	Sim *gate.Sim
	Mem *sim.Memory

	// Cycle counts completed clock cycles.
	Cycle uint64

	// TraceBus enables recording data accesses (as in sim.CPU).
	TraceBus bool
	Bus      []sim.BusEvent

	addr    []uint64
	wdata   []uint64
	wstrobe []uint64
	daccess []uint64
}

// NewMachine compiles the CPU into a simulator bound to mem. The simulator
// is event-driven: bit-for-bit equivalent to the oblivious evaluator but
// much faster at the CPU's low per-cycle switching activity.
func NewMachine(cpu *CPU, mem *sim.Memory) (*Machine, error) {
	s, err := gate.NewEventSim(cpu.Netlist)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		CPU:     cpu,
		Sim:     s,
		Mem:     mem,
		addr:    make([]uint64, 32),
		wdata:   make([]uint64, 32),
		wstrobe: make([]uint64, 4),
		daccess: make([]uint64, 1),
	}
	m.Reset()
	return m, nil
}

// Reset clears all processor state; execution restarts at address 0.
func (m *Machine) Reset() {
	m.Sim.Reset()
	m.Cycle = 0
	m.Bus = nil
}

// BusState is the sampled value of the processor primary outputs for one
// cycle: the fault-observation data.
type BusState struct {
	Addr       uint32
	WData      uint32
	WStrobe    uint8
	DataAccess bool
}

// Step executes one clock cycle and returns the bus activity it performed.
func (m *Machine) Step() BusState {
	m.Sim.Eval()
	bs := m.sampleBus()
	rdata := m.service(bs)
	m.Sim.SetBusUniform(PortRData, uint64(rdata))
	m.Sim.Eval()
	m.Sim.Latch()
	m.Cycle++
	return bs
}

// sampleBus reads the primary outputs in lane 0.
func (m *Machine) sampleBus() BusState {
	return BusState{
		Addr:       uint32(m.Sim.BusLane(PortAddr, 0)),
		WData:      uint32(m.Sim.BusLane(PortWData, 0)),
		WStrobe:    uint8(m.Sim.BusLane(PortWStrobe, 0)),
		DataAccess: m.Sim.BusLane(PortDataAccess, 0) != 0,
	}
}

// service performs the memory side of the cycle and returns read data.
func (m *Machine) service(bs BusState) uint32 {
	a := bs.Addr &^ 3
	if bs.WStrobe != 0 {
		old := m.Mem.Word(a)
		var mask uint32
		for lane := 0; lane < 4; lane++ {
			if bs.WStrobe>>uint(lane)&1 != 0 {
				mask |= 0xFF << (8 * uint(lane))
			}
		}
		merged := old&^mask | bs.WData&mask
		m.Mem.SetWord(a, merged)
		if m.TraceBus {
			m.Bus = append(m.Bus, sim.BusEvent{
				Cycle: m.Cycle, Addr: a, Data: merged, Strobe: bs.WStrobe, Write: true,
			})
		}
		return old
	}
	v := m.Mem.Word(a)
	if m.TraceBus && bs.DataAccess {
		m.Bus = append(m.Bus, sim.BusEvent{Cycle: m.Cycle, Addr: a, Data: v, Write: false})
	}
	return v
}

// PCLane returns the current PC in lane 0 (debug).
func (m *Machine) PCLane() uint32 { return uint32(m.readBusLane(m.CPU.PC)) }

// IRLane returns the current IR in lane 0 (debug).
func (m *Machine) IRLane() uint32 { return uint32(m.readBusLane(m.CPU.IR)) }

func (m *Machine) readBusLane(bus []gate.Sig) uint64 {
	var v uint64
	for i, s := range bus {
		v |= (m.Sim.SigWord(s) & 1) << uint(i)
	}
	return v
}

// Run executes up to maxCycles cycles, stopping early (and reporting true)
// once the CPU reaches a jump-to-self steady state: fetch addresses repeat
// with a short period for several cycles with no data activity and the
// multiply/divide unit idle (a mid-stall refetch is not a halt).
//
// On the base core a halt loop has fetch period <= 2. The fwd5 pipeline
// refetches the squashed slot each iteration, so its halt loop has fetch
// period 3 — but so does an innocent three-instruction delay loop
// (addiu; bne; nop). Period-3 repetition therefore only counts as a halt
// when the repeating window fetches an unconditional self-loop word
// (j/jal-to-self, or beq rs,rs,-1); that check makes the detector
// conservative — a jr-to-self spin loop is not recognized on period-3
// variants, and the repo's halt idioms use `j self` or `beq $0,$0,self`.
func (m *Machine) Run(maxCycles uint64) bool {
	// Fetch address history: h1 = two cycles ago, h2 = three cycles ago.
	h0, h1, h2 := uint32(0xFFFFFFFF), uint32(0xFFFFFFFE), uint32(0xFFFFFFFD)
	stable := 0
	selfJmp := false
	for i := uint64(0); i < maxCycles; i++ {
		bs := m.Step()
		busy := m.Sim.SigWord(m.CPU.Busy)&1 != 0
		if bs.DataAccess || bs.WStrobe != 0 || busy {
			stable, selfJmp = 0, false
			continue
		}
		switch {
		case bs.Addr == h1: // period <= 2
			stable++
			if stable >= 6 {
				return true
			}
		case bs.Addr == h2: // period 3
			if isSelfLoop(m.Mem.Word(bs.Addr&^3), bs.Addr) {
				selfJmp = true
			}
			stable++
			if stable >= 9 && selfJmp {
				return true
			}
		default:
			stable, selfJmp = 0, false
		}
		h2, h1, h0 = h1, h0, bs.Addr
	}
	return false
}

// isSelfLoop reports whether word w, fetched from address a, is an
// unconditional transfer to its own address — the canonical halt
// instructions: j/jal-to-self, or beq rs,rs with branch offset -1.
func isSelfLoop(w, a uint32) bool {
	op := w >> 26
	if op == 2 || op == 3 {
		return w&0x03FFFFFF == (a>>2)&0x03FFFFFF
	}
	if op == 4 { // beq rs,rt,-1 with rs==rt always loops to itself
		return w&0xFFFF == 0xFFFF && (w>>21)&31 == (w>>16)&31
	}
	return false
}

// RunProgram is a convenience: run prog on a fresh machine until halt or
// maxCycles, returning the machine for state inspection.
func RunProgram(cpu *CPU, prog *asm.Program, maxCycles uint64, trace bool) (*Machine, bool, error) {
	mem := sim.NewMemory()
	mem.LoadProgram(prog)
	m, err := NewMachine(cpu, mem)
	if err != nil {
		return nil, false, err
	}
	m.TraceBus = trace
	halted := m.Run(maxCycles)
	return m, halted, nil
}

// String renders a bus state compactly.
func (bs BusState) String() string {
	kind := "F"
	if bs.DataAccess {
		kind = "D"
	}
	return fmt.Sprintf("%s %08x w=%08x/%x", kind, bs.Addr, bs.WData, bs.WStrobe)
}
