package plasma

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/synth"
)

// fuzzCores builds the non-base ladder variants once per test binary; the
// differential fuzzer runs every input on all of them.
var (
	fuzzOnce  sync.Once
	fuzzCores []*CPU
	fuzzErr   error
)

func getFuzzCores(t *testing.T) []*CPU {
	t.Helper()
	fuzzOnce.Do(func() {
		for _, name := range []string{VariantFwd5, VariantNoMul} {
			cpu, err := BuildVariant(name, synth.NativeLib{})
			if err != nil {
				fuzzErr = err
				return
			}
			fuzzCores = append(fuzzCores, cpu)
		}
	})
	if fuzzErr != nil {
		t.Fatal(fuzzErr)
	}
	return fuzzCores
}

// FuzzVariantVsISS is the differential fuzzer across the core ladder: a
// seed-derived random program (straight-line or structured with loops,
// branches and a subroutine) runs on each gate-level variant and on the
// instruction-set simulator, and the two must agree on the complete bus
// event sequence (cycle stamps excluded — variants time differently), the
// final memory image, and the register file (dumped to memory by the
// program's epilogue). Multiplier traffic is excluded on the nomul core,
// where mul/div opcodes are reserved; branches never carry control-flow
// instructions in their delay slots, by construction of the generators.
//
// The f.Add corpus below runs as ordinary seed tests under plain
// `go test`; `go test -fuzz=FuzzVariantVsISS ./internal/plasma` explores
// beyond it.
func FuzzVariantVsISS(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 99, 777, 31337} {
		f.Add(seed, false)
		f.Add(seed, true)
	}
	f.Fuzz(func(t *testing.T, seed int64, structured bool) {
		for _, cpu := range getFuzzCores(t) {
			rng := rand.New(rand.NewSource(seed))
			var src string
			if structured {
				src = randomLoopProgram(rng, int(uint16(seed)))
			} else {
				src = randomProgramMulDiv(rng, 90, cpu.Variant != VariantNoMul)
			}
			coSimLoose(t, cpu, src)
		}
	})
}
