package plasma

import "math/bits"

// U32Stream is a run-length encoded sequence of uint32 values with O(1)
// random access. One entry in Vals per run of equal consecutive values;
// Bits marks the cycle each run starts at, and Rank holds a per-64-cycle
// popcount prefix so At can index the right run without scanning. The
// golden per-cycle bus streams are highly repetitive (write strobes and
// data-access flags hold for long stretches, addresses and read data
// repeat across stalls), so the run list is much shorter than the dense
// array; in the worst case of no repeats the overhead over dense is the
// bitmap plus rank prefix, about 5%. All fields are exported plain data
// so a stream round-trips through encoding/gob unchanged.
type U32Stream struct {
	N    int      // logical length of the sequence
	Vals []uint32 // one value per run, in sequence order
	Bits []uint64 // bit t set iff a new run starts at index t
	Rank []int32  // Rank[b] = runs starting in blocks before b
}

// EncodeU32 run-length encodes xs.
func EncodeU32(xs []uint32) U32Stream {
	s := U32Stream{
		N:    len(xs),
		Bits: make([]uint64, (len(xs)+63)/64),
		Rank: make([]int32, (len(xs)+63)/64),
	}
	for t, x := range xs {
		if t == 0 || x != xs[t-1] {
			s.Bits[t>>6] |= 1 << uint(t&63)
			s.Vals = append(s.Vals, x)
		}
	}
	runs := int32(0)
	for b, w := range s.Bits {
		s.Rank[b] = runs
		runs += int32(bits.OnesCount64(w))
	}
	return s
}

// Len is the logical length of the sequence.
func (s *U32Stream) Len() int { return s.N }

// At returns element t of the sequence.
func (s *U32Stream) At(t int) uint32 {
	b := t >> 6
	m := s.Bits[b] & (^uint64(0) >> uint(63-t&63))
	return s.Vals[int(s.Rank[b])+bits.OnesCount64(m)-1]
}

// Decode expands the stream back to its dense form.
func (s *U32Stream) Decode() []uint32 {
	out := make([]uint32, s.N)
	run := -1
	for t := range out {
		if s.Bits[t>>6]&(1<<uint(t&63)) != 0 {
			run++
		}
		out[t] = s.Vals[run]
	}
	return out
}

// StoredBytes is the encoded size of the stream payload.
func (s *U32Stream) StoredBytes() int64 {
	return int64(len(s.Vals))*4 + int64(len(s.Bits))*8 + int64(len(s.Rank))*4
}
