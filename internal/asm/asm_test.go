package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src, 0)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestBasicEncodings(t *testing.T) {
	p := mustAssemble(t, `
		add $t2, $t0, $t1
		sll $v0, $v1, 4
		sllv $v0, $v1, $a1
		jr $ra
		jalr $t0
		jalr $s0, $t0
		mfhi $a3
		mthi $a3
		mult $a0, $a1
		addi $t0, $t1, -1
		ori $t0, $zero, 0xbeef
		lui $t0, 0x1234
		lw $t0, 16($sp)
		sw $t0, -16($sp)
		lb $t0, ($t1)
	`)
	want := []uint32{
		isa.EncodeR(isa.FnAdd, 10, 8, 9, 0),
		isa.EncodeR(isa.FnSll, 2, 0, 3, 4),
		isa.EncodeR(isa.FnSllv, 2, 5, 3, 0),
		isa.EncodeR(isa.FnJr, 0, 31, 0, 0),
		isa.EncodeR(isa.FnJalr, 31, 8, 0, 0),
		isa.EncodeR(isa.FnJalr, 16, 8, 0, 0),
		isa.EncodeR(isa.FnMfhi, 7, 0, 0, 0),
		isa.EncodeR(isa.FnMthi, 0, 7, 0, 0),
		isa.EncodeR(isa.FnMult, 0, 4, 5, 0),
		isa.EncodeI(isa.OpAddi, 8, 9, 0xFFFF),
		isa.EncodeI(isa.OpOri, 8, 0, 0xBEEF),
		isa.EncodeI(isa.OpLui, 8, 0, 0x1234),
		isa.EncodeI(isa.OpLw, 8, 29, 16),
		isa.EncodeI(isa.OpSw, 8, 29, 0xFFF0),
		isa.EncodeI(isa.OpLb, 8, 9, 0),
	}
	if len(p.Words) != len(want) {
		t.Fatalf("got %d words, want %d", len(p.Words), len(want))
	}
	for i, w := range want {
		if p.Words[i] != w {
			t.Errorf("word %d = %#x, want %#x (%s)", i, p.Words[i], w, isa.Disassemble(w, 0))
		}
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
	start:
		addiu $t0, $zero, 10
	loop:
		addiu $t0, $t0, -1
		bne $t0, $zero, loop
		nop
		beq $zero, $zero, start
		nop
	done:
		j done
		nop
	`)
	// bne at word 2: target loop (word 1): offset = (4 - (8+4))/4 = -2
	if got := p.Words[2]; got != isa.EncodeI(isa.OpBne, 0, 8, 0xFFFE) {
		t.Errorf("bne = %#x", got)
	}
	// beq at word 4: target start (0): offset = (0-20)/4 = -5... (0 - (16+4))/4 = -5
	if got := p.Words[4]; got != isa.EncodeI(isa.OpBeq, 0, 0, uint32(0xFFFB)) {
		t.Errorf("beq = %#x", got)
	}
	// j at word 6 targets itself: 24>>2 = 6.
	if got := p.Words[6]; got != isa.EncodeJ(isa.OpJ, 6) {
		t.Errorf("j = %#x", got)
	}
	if p.Symbols["done"] != 24 {
		t.Errorf("done = %#x", p.Symbols["done"])
	}
}

func TestPseudoInstructions(t *testing.T) {
	p := mustAssemble(t, `
		nop
		move $t0, $t1
		li $t0, 5
		li $t0, -5
		li $t0, 0x8000
		li $t0, 0x12345678
		li $t0, 0x10000
		not $t0, $t1
		neg $t0, $t1
	`)
	want := []uint32{
		0,
		isa.EncodeR(isa.FnAddu, 8, 9, 0, 0),
		isa.EncodeI(isa.OpAddiu, 8, 0, 5),
		isa.EncodeI(isa.OpAddiu, 8, 0, 0xFFFB),
		isa.EncodeI(isa.OpOri, 8, 0, 0x8000),
		isa.EncodeI(isa.OpLui, 8, 0, 0x1234),
		isa.EncodeI(isa.OpOri, 8, 8, 0x5678),
		isa.EncodeI(isa.OpLui, 8, 0, 1), // 0x10000: lui only, no ori
		isa.EncodeR(isa.FnNor, 8, 9, 0, 0),
		isa.EncodeR(isa.FnSubu, 8, 0, 9, 0),
	}
	for i, w := range want {
		if p.Words[i] != w {
			t.Errorf("word %d = %#x, want %#x", i, p.Words[i], w)
		}
	}
}

func TestPseudoBranches(t *testing.T) {
	p := mustAssemble(t, `
	top:
		b top
		beqz $t0, top
		bnez $t0, top
		blt $t0, $t1, top
		bge $t0, $t1, top
		bgt $t0, $t1, top
		ble $t0, $t1, top
	`)
	if p.Words[0] != isa.EncodeI(isa.OpBeq, 0, 0, 0xFFFF) {
		t.Errorf("b = %#x", p.Words[0])
	}
	if p.Words[1] != isa.EncodeI(isa.OpBeq, 0, 8, uint32(0xFFFE)) {
		t.Errorf("beqz = %#x", p.Words[1])
	}
	if p.Words[2] != isa.EncodeI(isa.OpBne, 0, 8, uint32(0xFFFD)) {
		t.Errorf("bnez = %#x", p.Words[2])
	}
	// blt: slt $at,$t0,$t1 ; bne $at,$zero,top
	if p.Words[3] != isa.EncodeR(isa.FnSlt, 1, 8, 9, 0) {
		t.Errorf("blt slt = %#x", p.Words[3])
	}
	if p.Words[4] != isa.EncodeI(isa.OpBne, 0, 1, uint32(0xFFFB)) {
		t.Errorf("blt bne = %#x", p.Words[4])
	}
	// bgt swaps operands: slt $at,$t1,$t0.
	if p.Words[7] != isa.EncodeR(isa.FnSlt, 1, 9, 8, 0) {
		t.Errorf("bgt slt = %#x", p.Words[7])
	}
}

func TestDirectives(t *testing.T) {
	p := mustAssemble(t, `
		.org 0x10
		nop
	data:
		.word 0xdeadbeef, 42, data
		.space 8
		.word 1
	`)
	if p.Words[0] != 0 || p.Words[3] != 0 {
		t.Error(".org padding not zero")
	}
	if p.Symbols["data"] != 0x14 {
		t.Errorf("data = %#x, want 0x14", p.Symbols["data"])
	}
	if p.Words[5] != 0xdeadbeef || p.Words[6] != 42 || p.Words[7] != 0x14 {
		t.Errorf(".word values wrong: %#x %#x %#x", p.Words[5], p.Words[6], p.Words[7])
	}
	if p.Words[10] != 1 {
		t.Errorf(".space sizing wrong: word 10 = %#x", p.Words[10])
	}
}

func TestHiLoRelocations(t *testing.T) {
	p := mustAssemble(t, `
		lui $t0, %hi(sym)
		ori $t0, $t0, %lo(sym)
		la $t1, sym
		.org 0x1234beec
	sym:
		.word 0
	`)
	if p.Words[0] != isa.EncodeI(isa.OpLui, 8, 0, 0x1234) {
		t.Errorf("lui %%hi = %#x", p.Words[0])
	}
	if p.Words[1] != isa.EncodeI(isa.OpOri, 8, 8, 0xBEEC) {
		t.Errorf("ori %%lo = %#x", p.Words[1])
	}
	if p.Words[2] != isa.EncodeI(isa.OpLui, 9, 0, 0x1234) ||
		p.Words[3] != isa.EncodeI(isa.OpOri, 9, 9, 0xBEEC) {
		t.Errorf("la = %#x %#x", p.Words[2], p.Words[3])
	}
}

func TestCommentsAndLabelsOnSameLine(t *testing.T) {
	p := mustAssemble(t, `
	a: b: nop # trailing comment
	c: addiu $t0, $zero, 1 ; another
	// whole-line comment
	`)
	if p.Symbols["a"] != 0 || p.Symbols["b"] != 0 || p.Symbols["c"] != 4 {
		t.Errorf("labels: %v", p.Symbols)
	}
	if len(p.Words) != 2 {
		t.Errorf("got %d words", len(p.Words))
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"bogus $t0",
		"add $t0, $t1",                      // wrong arity
		"add $t0, $t1, $t99",                // bad register
		"sll $t0, $t1, 32",                  // shift out of range
		"addi $t0, $t1, 0x20000",            // immediate out of range
		"beq $t0, $t1, nowhere",             // unresolved symbol
		"lw $t0, $t1",                       // bad mem operand
		".org 0x10\n.org 0x4",               // backwards org
		"dup: nop\ndup: nop",                // duplicate label
		"9bad: nop",                         // bad label
		"j unaligned\n.org 0x6\nunaligned:", // misaligned jump target? org misaligned
	}
	for _, src := range cases {
		if _, err := Assemble(src, 0); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestOrigin(t *testing.T) {
	p, err := Assemble("start: j start", 0x400)
	if err != nil {
		t.Fatal(err)
	}
	if p.Symbols["start"] != 0x400 {
		t.Errorf("start = %#x", p.Symbols["start"])
	}
	if p.Words[0] != isa.EncodeJ(isa.OpJ, 0x100) {
		t.Errorf("j = %#x", p.Words[0])
	}
	if p.WordAt(0x400) != p.Words[0] || p.WordAt(0) != 0 || p.WordAt(0x800) != 0 {
		t.Error("WordAt addressing wrong")
	}
}

func TestListing(t *testing.T) {
	p := mustAssemble(t, "add $t2, $t0, $t1")
	l := p.Listing()
	if !strings.Contains(l, "add $t2, $t0, $t1") || !strings.Contains(l, "00000000:") {
		t.Errorf("listing = %q", l)
	}
}

func TestBranchRangeCheck(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("b far\n")
	sb.WriteString(".org 0x40000\n")
	sb.WriteString("far: nop\n")
	if _, err := Assemble(sb.String(), 0); err == nil {
		t.Error("branch out of range accepted")
	}
}

func TestSizeWords(t *testing.T) {
	p := mustAssemble(t, "nop\nnop\n.word 1,2,3")
	if p.SizeWords() != 5 {
		t.Errorf("SizeWords = %d, want 5", p.SizeWords())
	}
}
