// Package asm implements a two-pass assembler for the MIPS I subset in
// internal/isa: labels, the directives .org/.word/.space, the usual
// register names, %hi/%lo relocations, and a small set of pseudo
// instructions (nop, move, li, la, b, beqz, bnez, not, neg, blt, bge, bgt,
// ble). It is the tool that turns the generated self-test routines into
// memory images.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Program is an assembled memory image.
type Program struct {
	// Origin is the byte address of Words[0].
	Origin uint32
	// Words is the image, one 32-bit word per instruction/data slot.
	Words []uint32
	// Symbols maps labels to byte addresses.
	Symbols map[string]uint32
	// Lines maps word index to 1-based source line (0 for padding).
	Lines []int
}

// SizeWords reports the program size in 32-bit words, the paper's unit for
// test-program size (Table 4).
func (p *Program) SizeWords() int { return len(p.Words) }

// WordAt returns the word stored at byte address a, or 0 outside the image.
func (p *Program) WordAt(a uint32) uint32 {
	if a < p.Origin {
		return 0
	}
	i := (a - p.Origin) / 4
	if int(i) >= len(p.Words) {
		return 0
	}
	return p.Words[i]
}

// Listing renders an address/word/disassembly listing.
func (p *Program) Listing() string {
	var sb strings.Builder
	for i, w := range p.Words {
		a := p.Origin + uint32(i)*4
		fmt.Fprintf(&sb, "%08x: %08x  %s\n", a, w, isa.Disassemble(w, a))
	}
	return sb.String()
}

// asmError is a source-located assembly error.
type asmError struct {
	line int
	msg  string
}

func (e asmError) Error() string { return fmt.Sprintf("line %d: %s", e.line, e.msg) }

// item is a pending word: either a literal value or an instruction encoder
// run in pass 2 once all symbols are known.
type item struct {
	line int
	addr uint32
	enc  func(a *assembler, addr uint32) (uint32, error)
}

type assembler struct {
	origin  uint32
	pc      uint32
	items   []item
	symbols map[string]uint32
	errs    []error
	line    int
}

// Assemble assembles source text with the image based at origin.
func Assemble(src string, origin uint32) (*Program, error) {
	a := &assembler{origin: origin, pc: origin, symbols: make(map[string]uint32)}
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		a.doLine(raw)
	}
	// Pass 2: encode with symbols resolved.
	prog := &Program{Origin: origin, Symbols: a.symbols}
	if len(a.items) > 0 {
		last := a.items[len(a.items)-1]
		n := (last.addr-origin)/4 + 1
		prog.Words = make([]uint32, n)
		prog.Lines = make([]int, n)
	}
	for _, it := range a.items {
		w, err := it.enc(a, it.addr)
		if err != nil {
			a.errs = append(a.errs, asmError{it.line, err.Error()})
			continue
		}
		idx := (it.addr - origin) / 4
		prog.Words[idx] = w
		prog.Lines[idx] = it.line
	}
	if len(a.errs) > 0 {
		msgs := make([]string, len(a.errs))
		for i, e := range a.errs {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("asm: %s", strings.Join(msgs, "; "))
	}
	return prog, nil
}

func (a *assembler) errf(format string, args ...interface{}) {
	a.errs = append(a.errs, asmError{a.line, fmt.Sprintf(format, args...)})
}

// emit queues one word-producing item at the current location counter.
func (a *assembler) emit(enc func(a *assembler, addr uint32) (uint32, error)) {
	a.items = append(a.items, item{line: a.line, addr: a.pc, enc: enc})
	a.pc += 4
}

func (a *assembler) emitWord(w uint32) {
	a.emit(func(*assembler, uint32) (uint32, error) { return w, nil })
}

func (a *assembler) doLine(raw string) {
	s := raw
	if i := strings.IndexAny(s, "#;"); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	s = strings.TrimSpace(s)
	for {
		i := strings.Index(s, ":")
		if i < 0 {
			break
		}
		label := strings.TrimSpace(s[:i])
		if !isIdent(label) {
			a.errf("bad label %q", label)
			return
		}
		if _, dup := a.symbols[label]; dup {
			a.errf("duplicate label %q", label)
			return
		}
		a.symbols[label] = a.pc
		s = strings.TrimSpace(s[i+1:])
	}
	if s == "" {
		return
	}
	var op, rest string
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		op, rest = s[:i], strings.TrimSpace(s[i+1:])
	} else {
		op = s
	}
	op = strings.ToLower(op)
	if strings.HasPrefix(op, ".") {
		a.directive(op, rest)
		return
	}
	a.instruction(op, splitOperands(rest))
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (a *assembler) directive(op, rest string) {
	switch op {
	case ".org":
		v, err := parseNum(rest)
		if err != nil {
			a.errf(".org: %v", err)
			return
		}
		if uint32(v) < a.pc {
			a.errf(".org 0x%x moves backwards from 0x%x", v, a.pc)
			return
		}
		if v%4 != 0 {
			a.errf(".org 0x%x not word aligned", v)
			return
		}
		// The gap is implicitly zero-filled (images are allocated zeroed),
		// so no padding items are emitted; only the location moves.
		a.pc = uint32(v)
	case ".word":
		for _, f := range splitOperands(rest) {
			f := f
			a.emit(func(a *assembler, _ uint32) (uint32, error) {
				v, err := a.resolveValue(f)
				return v, err
			})
		}
	case ".space":
		n, err := parseNum(rest)
		if err != nil {
			a.errf(".space: %v", err)
			return
		}
		for i := int64(0); i < (n+3)/4; i++ {
			a.emitWord(0)
		}
	case ".text", ".globl", ".global", ".set":
		// Accepted and ignored for source compatibility.
	default:
		a.errf("unknown directive %s", op)
	}
}

// parseNum parses a decimal or 0x/0b-prefixed integer with optional sign.
func parseNum(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("missing number")
	}
	neg := false
	if s[0] == '-' {
		neg = true
		s = s[1:]
	} else if s[0] == '+' {
		s = s[1:]
	}
	v, err := strconv.ParseUint(strings.ToLower(s), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	if v > 0xFFFFFFFF {
		return 0, fmt.Errorf("number %q out of 32-bit range", s)
	}
	n := int64(v)
	if neg {
		n = -n
	}
	return n, nil
}

// resolveValue evaluates a numeric operand: a number, a label, or
// %hi(expr)/%lo(expr).
func (a *assembler) resolveValue(s string) (uint32, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "%hi(") && strings.HasSuffix(s, ")") {
		v, err := a.resolveValue(s[4 : len(s)-1])
		return v >> 16, err
	}
	if strings.HasPrefix(s, "%lo(") && strings.HasSuffix(s, ")") {
		v, err := a.resolveValue(s[4 : len(s)-1])
		return v & 0xFFFF, err
	}
	if v, ok := a.symbols[s]; ok {
		return v, nil
	}
	n, err := parseNum(s)
	if err != nil {
		return 0, fmt.Errorf("unresolved symbol or bad number %q", s)
	}
	return uint32(n), nil
}
