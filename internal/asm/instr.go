package asm

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

const regAT = 1 // assembler temporary for pseudo expansions

func (a *assembler) instruction(op string, ops []string) {
	if a.pseudo(op, ops) {
		return
	}
	m := isa.MnemonicByName(op)
	if m == nil {
		a.errf("unknown instruction %q", op)
		return
	}
	n := func(want int) bool {
		if len(ops) != want {
			a.errf("%s: got %d operands, want %d", op, len(ops), want)
			return false
		}
		return true
	}
	switch m.Fmt {
	case isa.FmtR3:
		if !n(3) {
			return
		}
		rd, rs, rt, ok := a.reg3(op, ops[0], ops[1], ops[2])
		if !ok {
			return
		}
		a.emitWord(isa.EncodeR(m.Sub, rd, rs, rt, 0))
	case isa.FmtShift:
		if !n(3) {
			return
		}
		rd, ok1 := a.reg(op, ops[0])
		rt, ok2 := a.reg(op, ops[1])
		sh, err := parseNum(ops[2])
		if !ok1 || !ok2 {
			return
		}
		if err != nil || sh < 0 || sh > 31 {
			a.errf("%s: bad shift amount %q", op, ops[2])
			return
		}
		a.emitWord(isa.EncodeR(m.Sub, rd, 0, rt, uint32(sh)))
	case isa.FmtShiftV:
		if !n(3) {
			return
		}
		rd, rt, rs, ok := a.reg3(op, ops[0], ops[1], ops[2])
		if !ok {
			return
		}
		a.emitWord(isa.EncodeR(m.Sub, rd, rs, rt, 0))
	case isa.FmtJR:
		if !n(1) {
			return
		}
		rs, ok := a.reg(op, ops[0])
		if !ok {
			return
		}
		a.emitWord(isa.EncodeR(m.Sub, 0, rs, 0, 0))
	case isa.FmtJALR:
		var rd, rs uint32
		var ok bool
		switch len(ops) {
		case 1:
			rd = 31
			rs, ok = a.reg(op, ops[0])
		case 2:
			var ok2 bool
			rd, ok = a.reg(op, ops[0])
			rs, ok2 = a.reg(op, ops[1])
			ok = ok && ok2
		default:
			a.errf("jalr: got %d operands, want 1 or 2", len(ops))
			return
		}
		if !ok {
			return
		}
		a.emitWord(isa.EncodeR(m.Sub, rd, rs, 0, 0))
	case isa.FmtMFHiLo:
		if !n(1) {
			return
		}
		rd, ok := a.reg(op, ops[0])
		if !ok {
			return
		}
		a.emitWord(isa.EncodeR(m.Sub, rd, 0, 0, 0))
	case isa.FmtMTHiLo:
		if !n(1) {
			return
		}
		rs, ok := a.reg(op, ops[0])
		if !ok {
			return
		}
		a.emitWord(isa.EncodeR(m.Sub, 0, rs, 0, 0))
	case isa.FmtMulDiv:
		if !n(2) {
			return
		}
		rs, ok1 := a.reg(op, ops[0])
		rt, ok2 := a.reg(op, ops[1])
		if !ok1 || !ok2 {
			return
		}
		a.emitWord(isa.EncodeR(m.Sub, 0, rs, rt, 0))
	case isa.FmtArithI, isa.FmtLogicI:
		if !n(3) {
			return
		}
		rt, ok1 := a.reg(op, ops[0])
		rs, ok2 := a.reg(op, ops[1])
		if !ok1 || !ok2 {
			return
		}
		imm := ops[2]
		signed := m.Fmt == isa.FmtArithI
		opc := m.Op
		a.emit(func(a *assembler, _ uint32) (uint32, error) {
			v, err := a.resolveValue(imm)
			if err != nil {
				return 0, err
			}
			if err := checkImm16(v, signed); err != nil {
				return 0, fmt.Errorf("%s: %v", op, err)
			}
			return isa.EncodeI(opc, rt, rs, v), nil
		})
	case isa.FmtLui:
		if !n(2) {
			return
		}
		rt, ok := a.reg(op, ops[0])
		if !ok {
			return
		}
		imm := ops[1]
		a.emit(func(a *assembler, _ uint32) (uint32, error) {
			v, err := a.resolveValue(imm)
			if err != nil {
				return 0, err
			}
			if v > 0xFFFF {
				return 0, fmt.Errorf("lui: immediate 0x%x out of range", v)
			}
			return isa.EncodeI(isa.OpLui, rt, 0, v), nil
		})
	case isa.FmtMem:
		if !n(2) {
			return
		}
		rt, ok := a.reg(op, ops[0])
		if !ok {
			return
		}
		off, base, ok := a.memOperand(op, ops[1])
		if !ok {
			return
		}
		opc := m.Op
		a.emit(func(a *assembler, _ uint32) (uint32, error) {
			v, err := a.resolveValue(off)
			if err != nil {
				return 0, err
			}
			if err := checkImm16(v, true); err != nil {
				return 0, fmt.Errorf("%s: %v", op, err)
			}
			return isa.EncodeI(opc, rt, base, v), nil
		})
	case isa.FmtBranch2:
		if !n(3) {
			return
		}
		rs, ok1 := a.reg(op, ops[0])
		rt, ok2 := a.reg(op, ops[1])
		if !ok1 || !ok2 {
			return
		}
		a.emitBranch(m.Op, 0, rs, rt, ops[2], op)
	case isa.FmtBranchZ:
		if !n(2) {
			return
		}
		rs, ok := a.reg(op, ops[0])
		if !ok {
			return
		}
		if m.Op == isa.OpRegImm {
			a.emitBranch(m.Op, m.Sub, rs, m.Sub, ops[1], op)
		} else {
			a.emitBranch(m.Op, 0, rs, 0, ops[1], op)
		}
	case isa.FmtJump:
		if !n(1) {
			return
		}
		target := ops[0]
		opc := m.Op
		a.emit(func(a *assembler, addr uint32) (uint32, error) {
			v, err := a.resolveValue(target)
			if err != nil {
				return 0, err
			}
			if v%4 != 0 {
				return 0, fmt.Errorf("%s: target 0x%x not word aligned", op, v)
			}
			if (addr+4)&0xF0000000 != v&0xF0000000 {
				return 0, fmt.Errorf("%s: target 0x%x outside current 256MB segment", op, v)
			}
			return isa.EncodeJ(opc, v>>2), nil
		})
	default:
		a.errf("%s: unhandled format", op)
	}
}

// emitBranch queues a PC-relative branch. rtField is the encoded rt
// register (or REGIMM code).
func (a *assembler) emitBranch(opc, _ uint32, rs, rtField uint32, target, name string) {
	a.emit(func(a *assembler, addr uint32) (uint32, error) {
		v, err := a.resolveValue(target)
		if err != nil {
			return 0, err
		}
		diff := int64(v) - int64(addr) - 4
		if diff%4 != 0 {
			return 0, fmt.Errorf("%s: misaligned branch target 0x%x", name, v)
		}
		off := diff / 4
		if off < -32768 || off > 32767 {
			return 0, fmt.Errorf("%s: branch target 0x%x out of range", name, v)
		}
		return isa.EncodeI(opc, rtField, rs, uint32(off)&0xFFFF), nil
	})
}

func checkImm16(v uint32, signed bool) error {
	if signed {
		// Accept the union of int16 and uint16 encodings, like most MIPS
		// assemblers (0xFFFF means -1).
		if int32(v) >= -32768 && int32(v) <= 65535 {
			return nil
		}
	} else if v <= 0xFFFF {
		return nil
	}
	return fmt.Errorf("immediate 0x%x out of 16-bit range", v)
}

func (a *assembler) reg(op, s string) (uint32, bool) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "$") {
		a.errf("%s: expected register, got %q", op, s)
		return 0, false
	}
	r, ok := isa.RegByName(s[1:])
	if !ok {
		a.errf("%s: bad register %q", op, s)
		return 0, false
	}
	return r, true
}

func (a *assembler) reg3(op, s1, s2, s3 string) (r1, r2, r3 uint32, ok bool) {
	r1, ok1 := a.reg(op, s1)
	r2, ok2 := a.reg(op, s2)
	r3, ok3 := a.reg(op, s3)
	return r1, r2, r3, ok1 && ok2 && ok3
}

// memOperand parses "offset($base)"; offset may be empty, a number, a
// symbol, or %lo(...).
func (a *assembler) memOperand(op, s string) (off string, base uint32, ok bool) {
	i := strings.Index(s, "(")
	if i < 0 || !strings.HasSuffix(s, ")") {
		a.errf("%s: expected offset(base), got %q", op, s)
		return "", 0, false
	}
	off = strings.TrimSpace(s[:i])
	if off == "" {
		off = "0"
	}
	base, ok = a.reg(op, strings.TrimSpace(s[i+1:len(s)-1]))
	return off, base, ok
}

// pseudo expands pseudo instructions; it reports whether op was one.
func (a *assembler) pseudo(op string, ops []string) bool {
	switch op {
	case "nop":
		a.emitWord(0)
	case "move":
		if len(ops) != 2 {
			a.errf("move: want 2 operands")
			return true
		}
		rd, ok1 := a.reg(op, ops[0])
		rs, ok2 := a.reg(op, ops[1])
		if ok1 && ok2 {
			a.emitWord(isa.EncodeR(isa.FnAddu, rd, rs, 0, 0))
		}
	case "li":
		if len(ops) != 2 {
			a.errf("li: want 2 operands")
			return true
		}
		rt, ok := a.reg(op, ops[0])
		if !ok {
			return true
		}
		n, err := parseNum(ops[1])
		if err != nil {
			a.errf("li: %v", err)
			return true
		}
		v := uint32(n)
		switch {
		case int64(int16(v)) == n:
			a.emitWord(isa.EncodeI(isa.OpAddiu, rt, 0, v))
		case n >= 0 && n <= 0xFFFF:
			a.emitWord(isa.EncodeI(isa.OpOri, rt, 0, v))
		default:
			a.emitWord(isa.EncodeI(isa.OpLui, rt, 0, v>>16))
			if v&0xFFFF != 0 {
				a.emitWord(isa.EncodeI(isa.OpOri, rt, rt, v&0xFFFF))
			}
		}
	case "la":
		if len(ops) != 2 {
			a.errf("la: want 2 operands")
			return true
		}
		rt, ok := a.reg(op, ops[0])
		if !ok {
			return true
		}
		sym := ops[1]
		a.emit(func(a *assembler, _ uint32) (uint32, error) {
			v, err := a.resolveValue(sym)
			return isa.EncodeI(isa.OpLui, rt, 0, v>>16), err
		})
		a.emit(func(a *assembler, _ uint32) (uint32, error) {
			v, err := a.resolveValue(sym)
			return isa.EncodeI(isa.OpOri, rt, rt, v&0xFFFF), err
		})
	case "b":
		if len(ops) != 1 {
			a.errf("b: want 1 operand")
			return true
		}
		a.emitBranch(isa.OpBeq, 0, 0, 0, ops[0], "b")
	case "beqz", "bnez":
		if len(ops) != 2 {
			a.errf("%s: want 2 operands", op)
			return true
		}
		rs, ok := a.reg(op, ops[0])
		if !ok {
			return true
		}
		opc := uint32(isa.OpBeq)
		if op == "bnez" {
			opc = isa.OpBne
		}
		a.emitBranch(opc, 0, rs, 0, ops[1], op)
	case "not":
		if len(ops) != 2 {
			a.errf("not: want 2 operands")
			return true
		}
		rd, ok1 := a.reg(op, ops[0])
		rs, ok2 := a.reg(op, ops[1])
		if ok1 && ok2 {
			a.emitWord(isa.EncodeR(isa.FnNor, rd, rs, 0, 0))
		}
	case "neg":
		if len(ops) != 2 {
			a.errf("neg: want 2 operands")
			return true
		}
		rd, ok1 := a.reg(op, ops[0])
		rs, ok2 := a.reg(op, ops[1])
		if ok1 && ok2 {
			a.emitWord(isa.EncodeR(isa.FnSubu, rd, 0, rs, 0))
		}
	case "blt", "bge", "bgt", "ble":
		if len(ops) != 3 {
			a.errf("%s: want 3 operands", op)
			return true
		}
		rs, ok1 := a.reg(op, ops[0])
		rt, ok2 := a.reg(op, ops[1])
		if !ok1 || !ok2 {
			return true
		}
		// blt: slt $at,rs,rt; bne  -- bge: slt $at,rs,rt; beq
		// bgt: slt $at,rt,rs; bne  -- ble: slt $at,rt,rs; beq
		x, y := rs, rt
		if op == "bgt" || op == "ble" {
			x, y = rt, rs
		}
		a.emitWord(isa.EncodeR(isa.FnSlt, regAT, x, y, 0))
		opc := uint32(isa.OpBne)
		if op == "bge" || op == "ble" {
			opc = isa.OpBeq
		}
		a.emitBranch(opc, 0, regAT, 0, ops[2], op)
	default:
		return false
	}
	return true
}
