package asm

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/isa"
)

// TestDisassembleAssembleRoundTrip checks the property that assembling the
// disassembly of any implemented instruction reproduces the original word,
// across randomized register/immediate fields. Branch and jump targets are
// printed as absolute addresses, so programs are assembled at the same pc.
func TestDisassembleAssembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const pc = 0x00000400 // room for backward branch targets

	for _, m := range isa.Mnemonics {
		for trial := 0; trial < 20; trial++ {
			var w uint32
			rs, rt, rd := uint32(rng.Intn(32)), uint32(rng.Intn(32)), uint32(rng.Intn(32))
			sh := uint32(rng.Intn(32))
			imm := uint32(rng.Intn(0x10000))
			switch m.Op {
			case isa.OpSpecial:
				switch m.Fmt {
				case isa.FmtShift:
					w = isa.EncodeR(m.Sub, rd, 0, rt, sh)
				case isa.FmtJR, isa.FmtMTHiLo:
					w = isa.EncodeR(m.Sub, 0, rs, 0, 0)
				case isa.FmtJALR:
					w = isa.EncodeR(m.Sub, rd, rs, 0, 0)
				case isa.FmtMFHiLo:
					w = isa.EncodeR(m.Sub, rd, 0, 0, 0)
				case isa.FmtMulDiv:
					w = isa.EncodeR(m.Sub, 0, rs, rt, 0)
				default:
					w = isa.EncodeR(m.Sub, rd, rs, rt, 0)
				}
			case isa.OpRegImm:
				// Keep the branch in range of a small program image.
				off := uint32(rng.Intn(64)) // forward only
				w = isa.EncodeRegImm(m.Sub, rs, off)
			case isa.OpJ, isa.OpJal:
				w = isa.EncodeJ(m.Op, (pc>>2)+uint32(rng.Intn(256)))
			default:
				switch m.Fmt {
				case isa.FmtBranch2, isa.FmtBranchZ:
					off := uint32(rng.Intn(64))
					if m.Fmt == isa.FmtBranch2 {
						w = isa.EncodeI(m.Op, rt, rs, off)
					} else {
						w = isa.EncodeI(m.Op, 0, rs, off)
					}
				case isa.FmtLui:
					// Canonical lui has rs = 0.
					w = isa.EncodeI(m.Op, rt, 0, imm)
				default:
					w = isa.EncodeI(m.Op, rt, rs, imm)
				}
			}

			text := isa.Disassemble(w, pc)
			src := fmt.Sprintf(".org %#x\n%s\n", pc, text)
			p, err := Assemble(src, 0)
			if err != nil {
				t.Fatalf("%s: assembling %q failed: %v", m.Name, text, err)
			}
			got := p.WordAt(pc)
			// Canonicalize: nop disassembles from any sll x,x,0 with all
			// fields zero only; our encodings above may produce word 0.
			if w == 0 {
				continue
			}
			if got != w {
				t.Fatalf("%s: %q round-tripped %#08x -> %#08x", m.Name, text, w, got)
			}
		}
	}
}
