package bench

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gate"
)

// CompactionRow is one step of greedy pattern selection.
type CompactionRow struct {
	Pattern core.OperandPair
	FC      float64 // cumulative component coverage after adding it
}

// PatternCompaction greedily orders the ALU library's operand pairs by
// marginal component-level coverage, showing how few deterministic
// patterns carry the component to high coverage — the quantitative basis
// of Section 2.3's "small and regular test sets". Returns the selected
// order with cumulative coverage, stopping when no pattern adds coverage.
func PatternCompaction() ([]CompactionRow, string, error) {
	n := buildStandaloneALU()
	faults := fault.Universe(n)
	s, err := gate.NewSim(n)
	if err != nil {
		return nil, "", err
	}

	pairs := append(append([]core.OperandPair(nil), core.ALUPatterns...), core.ALUWalkingPatterns()...)

	// detectSets[p] = per-fault detection bitset of pattern p (all 8 ops).
	detectSets := make([][]uint64, len(pairs))
	words := (len(faults) + 63) / 64
	golden := make([][]uint64, len(pairs)) // golden outputs per pattern+op

	outs := n.OutputNames()
	applyPattern := func(pi int, op uint64) {
		s.SetBusUniform("a", uint64(pairs[pi].A))
		s.SetBusUniform("b", uint64(pairs[pi].B))
		s.SetBusUniform("op", op)
		s.Eval()
	}
	// Golden responses, 8 ops per pattern, concatenated.
	for pi := range pairs {
		for op := uint64(0); op < 8; op++ {
			applyPattern(pi, op)
			for _, o := range outs {
				golden[pi] = append(golden[pi], s.BusLane(o, 0))
			}
		}
	}
	for pi := range pairs {
		detectSets[pi] = make([]uint64, words)
	}
	for lo := 0; lo < len(faults); lo += 64 {
		hi := lo + 64
		if hi > len(faults) {
			hi = len(faults)
		}
		lf := make([]gate.LaneFault, hi-lo)
		for i := range lf {
			lf[i] = gate.LaneFault{Site: faults[lo+i].Site, Lane: i}
		}
		s.SetFaults(lf)
		for pi := range pairs {
			var det uint64
			gi := 0
			for op := uint64(0); op < 8; op++ {
				applyPattern(pi, op)
				for _, o := range outs {
					g := golden[pi][gi]
					gi++
					for b, sig := range n.OutputBus(o) {
						det |= s.SigWord(sig) ^ (^uint64(0) * (g >> uint(b) & 1))
					}
				}
			}
			// Record lanes lo..hi-1.
			for i := 0; i < hi-lo; i++ {
				if det>>uint(i)&1 != 0 {
					f := lo + i
					detectSets[pi][f/64] |= 1 << uint(f%64)
				}
			}
		}
	}
	s.ClearFaults()

	// Greedy forward selection by marginal weighted coverage.
	covered := make([]uint64, words)
	used := make([]bool, len(pairs))
	totalW := fault.TotalEquiv(faults)
	curW := 0
	var rows []CompactionRow
	for {
		best, bestGain := -1, 0
		for pi := range pairs {
			if used[pi] {
				continue
			}
			gain := 0
			for w := 0; w < words; w++ {
				add := detectSets[pi][w] &^ covered[w]
				for add != 0 {
					i := w*64 + bits.TrailingZeros64(add)
					gain += faults[i].Equiv
					add &= add - 1
				}
			}
			if gain > bestGain {
				best, bestGain = pi, gain
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		for w := 0; w < words; w++ {
			covered[w] |= detectSets[best][w]
		}
		curW += bestGain
		rows = append(rows, CompactionRow{
			Pattern: pairs[best],
			FC:      100 * float64(curW) / float64(totalW),
		})
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "greedy ALU pattern selection (%d candidates, component-level)\n", len(pairs))
	fmt.Fprintf(&sb, "%4s %-24s %10s\n", "#", "Pattern (a, b)", "cum FC%")
	for i, r := range rows {
		fmt.Fprintf(&sb, "%4d (%08x, %08x)    %10s\n", i+1, r.Pattern.A, r.Pattern.B, fmtPct(r.FC))
	}
	return rows, sb.String(), nil
}
