package bench

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/plasma"
	"repro/internal/synth"
)

var (
	envOnce sync.Once
	envA    *Env
	envErr  error
)

func getEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() { envA, envErr = DefaultEnv() })
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envA
}

// fastOpt keeps fault simulation quick in tests via sampling.
var fastOpt = fault.Options{Sample: 768, Seed: 11}

func TestTable1(t *testing.T) {
	s := Table1()
	for _, want := range []string{"Functional", "Control", "Hidden", "High", "Medium", "Low"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestTable2(t *testing.T) {
	rows, s := Table2(getEnv(t))
	if len(rows) != 10 {
		t.Errorf("Table 2 rows = %d, want 10", len(rows))
	}
	if rows[0].Name != "RegF" || rows[0].Class != core.Functional {
		t.Errorf("Table 2 first row = %+v", rows[0])
	}
	if !strings.Contains(s, "PLN") {
		t.Errorf("Table 2 rendering:\n%s", s)
	}
}

func TestTable3(t *testing.T) {
	rows, s := Table3(getEnv(t))
	if len(rows) != 10 {
		t.Errorf("Table 3 rows = %d", len(rows))
	}
	var total float64
	byName := map[string]float64{}
	for _, r := range rows {
		total += r.Gates
		byName[r.Name] = r.Gates
	}
	// The paper's size ordering must hold: RegF > MulD > the rest of the
	// functional components; total in the same order of magnitude as the
	// paper's 17,459.
	if !(byName["RegF"] > byName["MulD"] && byName["MulD"] > byName["ALU"] && byName["MulD"] > byName["BSH"]) {
		t.Errorf("gate-count ordering off: %v", byName)
	}
	if total < 10000 || total > 40000 {
		t.Errorf("total gates %v out of range", total)
	}
	if !strings.Contains(s, "Plasma/MIPS Processor") {
		t.Errorf("Table 3 rendering:\n%s", s)
	}
}

func TestTable4(t *testing.T) {
	rows, s, err := Table4(getEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("Table 4 rows = %d", len(rows))
	}
	// Size and cycles grow monotonically with phases; Phase A is O(1K)
	// words as the paper reports.
	if !(rows[0].Words < rows[1].Words && rows[1].Words < rows[2].Words) {
		t.Errorf("word counts not monotone: %+v", rows)
	}
	if !(rows[0].Cycles < rows[1].Cycles && rows[1].Cycles < rows[2].Cycles) {
		t.Errorf("cycles not monotone: %+v", rows)
	}
	if rows[0].Words > 2500 {
		t.Errorf("Phase A program too large: %d words", rows[0].Words)
	}
	if !strings.Contains(s, "Clock Cycles") {
		t.Errorf("Table 4 rendering:\n%s", s)
	}
}

func TestTable5Sampled(t *testing.T) {
	d, s, err := Table5(getEnv(t), fastOpt, false)
	if err != nil {
		t.Fatal(err)
	}
	a, ab := overallFC(d.PhaseA), overallFC(d.PhaseAB)
	// Sampled estimates: Phase A well above 80%, A+B above A.
	if a < 80 {
		t.Errorf("Phase A sampled coverage %.1f%% too low", a)
	}
	if ab < a {
		t.Errorf("Phase A+B (%.1f%%) below Phase A (%.1f%%)", ab, a)
	}
	if d.PhaseABC != nil {
		t.Error("includeC=false returned a C report")
	}
	if !strings.Contains(s, "sampled") || !strings.Contains(s, "Plasma") {
		t.Errorf("Table 5 rendering:\n%s", s)
	}
}

func TestBaselineComparisonSampled(t *testing.T) {
	rows, s, err := BaselineComparison(getEnv(t), []int{8}, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	sbst, rnd := rows[0], rows[1]
	if sbst.FC <= rnd.FC {
		t.Errorf("SBST (%.1f%%) should beat an 8-round pseudorandom program (%.1f%%)", sbst.FC, rnd.FC)
	}
	if !strings.Contains(s, "pseudorandom/8") {
		t.Errorf("rendering:\n%s", s)
	}
}

func TestCostModel(t *testing.T) {
	rows, s, err := CostModel(getEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Download share rises as the tester slows.
	for i := 1; i < len(rows); i++ {
		if rows[i].Cost.DownloadShare() <= rows[i-1].Cost.DownloadShare() {
			t.Errorf("download share not rising at row %d", i)
		}
	}
	if !strings.Contains(s, "TesterMHz") {
		t.Errorf("rendering:\n%s", s)
	}
}

func TestTechLibIndependenceSampled(t *testing.T) {
	if testing.Short() {
		t.Skip("second CPU build is slow")
	}
	eA := getEnv(t)
	eB, err := NewEnv(synth.NandLib{})
	if err != nil {
		t.Fatal(err)
	}
	rows, s, err := TechLibIndependence([]*Env{eA, eB}, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	diff := rows[0].FC - rows[1].FC
	if diff < 0 {
		diff = -diff
	}
	// "Very similar fault coverage" across libraries: within a few points
	// even under sampling noise.
	if diff > 6 {
		t.Errorf("libraries differ by %.1f%% coverage:\n%s", diff, s)
	}
}

func TestRoutineAblation(t *testing.T) {
	rows, s, err := RoutineAblation(getEnv(t), fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("ablation rows = %d, want 7 (one per library routine)", len(rows))
	}
	// RegF comes first (priority order) and must carry the most overall
	// coverage of any single routine.
	if rows[0].Routine != "RegF" {
		t.Errorf("first ablation row = %s", rows[0].Routine)
	}
	for _, r := range rows[1:] {
		if r.OverallFC > rows[0].OverallFC {
			t.Errorf("%s overall FC %.1f exceeds RegF's %.1f", r.Routine, r.OverallFC, rows[0].OverallFC)
		}
	}
	// Each routine must cover most of its own component.
	for _, r := range rows {
		if r.OwnFC < 55 {
			t.Errorf("%s own-component FC = %.1f%%, implausibly low", r.Routine, r.OwnFC)
		}
	}
	if !strings.Contains(s, "Own FC%") {
		t.Errorf("rendering:\n%s", s)
	}
}

func TestATPGComparison(t *testing.T) {
	rows, s, err := ATPGComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]ATPGRow{}
	for _, r := range rows {
		byKey[r.Component+"/"+r.Method] = r
	}
	for _, comp := range []string{"ALU", "BSH"} {
		lib, pod := byKey[comp+"/library"], byKey[comp+"/PODEM"]
		if lib.FC < 95 || pod.FC < 95 {
			t.Errorf("%s coverage low: library %.1f%%, PODEM %.1f%%", comp, lib.FC, pod.FC)
		}
		if lib.Patterns == 0 || pod.Patterns == 0 {
			t.Errorf("%s pattern counts: %d / %d", comp, lib.Patterns, pod.Patterns)
		}
	}
	if !strings.Contains(s, "PODEM") {
		t.Errorf("rendering:\n%s", s)
	}
}

func TestDetectionLatency(t *testing.T) {
	st, s, err := DetectionLatency(getEnv(t), fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.DetectCycles) == 0 {
		t.Fatal("no detections")
	}
	// Detection is front-loaded: the median detection must land well
	// before the program's end.
	if int(st.Percentile(0.5)) > st.Cycles/2 {
		t.Errorf("median detection at cycle %d of %d", st.Percentile(0.5), st.Cycles)
	}
	if !strings.Contains(s, "percentiles") {
		t.Errorf("rendering:\n%s", s)
	}
}

func TestPeriodicComposition(t *testing.T) {
	rows, s, err := PeriodicComposition(getEnv(t), fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("fragments = %d, want 4", len(rows))
	}
	// Cumulative coverage is monotone and ends high.
	for i := 1; i < len(rows); i++ {
		if rows[i].CumulativeFC < rows[i-1].CumulativeFC {
			t.Errorf("cumulative FC dropped at %s", rows[i].Fragment)
		}
	}
	if final := rows[len(rows)-1].CumulativeFC; final < 80 {
		t.Errorf("composed coverage only %.1f%%", final)
	}
	if !strings.Contains(s, "Cumulative") {
		t.Errorf("rendering:\n%s", s)
	}
}

// TestPeriodicDropListEquivalence asserts the drop-list optimization in
// PeriodicComposition (later fragments simulate only escapes) produces the
// same cumulative coverage as the naive full-regrade + MergeDetections.
func TestPeriodicDropListEquivalence(t *testing.T) {
	e := getEnv(t)
	rows, _, err := PeriodicComposition(e, fastOpt)
	if err != nil {
		t.Fatal(err)
	}

	faults := fault.SampleFaults(e.Faults(), fastOpt.Sample, fastOpt.Seed)
	opt := fastOpt
	opt.Sample = 0
	var results []*fault.Result
	var want []float64
	for _, c := range core.Prioritize(e.Comps) {
		if c.Class.Phase() != core.PhaseA {
			continue
		}
		r, ok := core.RoutineByName(c.Name)
		if !ok {
			continue
		}
		st, err := core.BuildProgram([]core.Routine{r})
		if err != nil {
			t.Fatal(err)
		}
		g, err := plasma.CaptureGolden(e.CPU, st.Program, st.GateCycles())
		if err != nil {
			t.Fatal(err)
		}
		res, err := fault.Simulate(e.CPU, g, faults, opt)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
		merged, err := fault.MergeDetections(results...)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, merged.WeightedCoverage())
	}
	if len(rows) != len(want) {
		t.Fatalf("fragment counts differ: %d vs %d", len(rows), len(want))
	}
	for i := range rows {
		if rows[i].CumulativeFC != want[i] {
			t.Errorf("fragment %s: drop-list FC %.4f != naive merge FC %.4f",
				rows[i].Fragment, rows[i].CumulativeFC, want[i])
		}
	}
}

func TestAdderArchIndependence(t *testing.T) {
	rows, s, err := AdderArchIndependence()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FC < 95 {
			t.Errorf("%s: library patterns reach only %.1f%%", r.Architecture, r.FC)
		}
	}
	diff := rows[0].FC - rows[1].FC
	if diff < 0 {
		diff = -diff
	}
	if diff > 4 {
		t.Errorf("architectures differ by %.1f points:\n%s", diff, s)
	}
}

func TestPatternCompaction(t *testing.T) {
	rows, s, err := PatternCompaction()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("selected only %d patterns", len(rows))
	}
	// Coverage is monotone, and a handful of patterns carry most of it.
	for i := 1; i < len(rows); i++ {
		if rows[i].FC < rows[i-1].FC {
			t.Fatalf("coverage decreased at step %d", i)
		}
	}
	if rows[min(7, len(rows)-1)].FC < 90 {
		t.Errorf("8 patterns reach only %.1f%%", rows[min(7, len(rows)-1)].FC)
	}
	if final := rows[len(rows)-1].FC; final < 99 {
		t.Errorf("final selected coverage %.1f%%", final)
	}
	if !strings.Contains(s, "greedy") {
		t.Errorf("rendering:\n%s", s)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
