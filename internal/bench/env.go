// Package bench is the experiment harness: it regenerates every table of
// the paper's evaluation (Tables 1-5) plus the technology-independence,
// pseudorandom-baseline and tester-cost experiments, printing rows in the
// layout the paper reports. Structured results back each table so the
// benches and EXPERIMENTS.md generation share one source of truth.
package bench

import (
	"fmt"
	"sync"

	"repro/internal/asm"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/plasma"
	"repro/internal/synth"
)

// Env caches the expensive artifacts of one (core variant, technology
// library) pair: the built CPU, its fault universe, and generated
// self-test programs.
type Env struct {
	Lib     synth.Library
	Variant string // core-ladder variant name (plasma.Variant*)
	CPU     *plasma.CPU
	Comps   []core.Component

	disk *cache.Cache // optional on-disk artifact cache (nil = in-memory only)

	// CheckpointK is the golden-trace checkpoint interval used for every
	// capture in this environment; 0 means plasma.DefaultCheckpointK. Set
	// it before the first Golden/FaultSim call — traces captured at
	// different intervals never alias in the cache, but the in-memory
	// golden memo is keyed by phase only.
	CheckpointK int

	// Grader, when non-nil, replaces fault.Simulate for every fault
	// simulation in this environment — the hook the sharded coordinator
	// (internal/shard) plugs into so each table's grading fans out across
	// worker processes. It must honor opt's sampling and engine fields
	// and produce a result bit-identical to fault.Simulate.
	Grader func(cpu *plasma.CPU, golden *plasma.Golden, faults []fault.Fault, opt fault.Options) (*fault.Result, error)

	mu        sync.Mutex
	faults    []fault.Fault
	selfTests map[core.PhaseID]*core.SelfTest
	goldens   map[core.PhaseID]*plasma.Golden
}

// NewEnv builds the base-core CPU for a library and classifies its
// components.
func NewEnv(lib synth.Library) (*Env, error) { return NewEnvCached(lib, nil) }

// NewEnvCached is NewEnv backed by an on-disk artifact cache: synthesis
// and golden capture read through (and populate) the cache. A nil cache
// behaves exactly like NewEnv.
func NewEnvCached(lib synth.Library, disk *cache.Cache) (*Env, error) {
	return NewEnvVariant(plasma.VariantBase, lib, disk)
}

// NewEnvVariant builds the environment for one rung of the core ladder:
// the named Plasma variant synthesized with lib, with the inventory
// classified from that variant's netlist. Everything downstream — routine
// generation, golden capture, fault grading — adapts through the
// inventory and the variant-aware cache keys.
func NewEnvVariant(variant string, lib synth.Library, disk *cache.Cache) (*Env, error) {
	cpu, err := disk.BuildVariantCPU(variant, lib)
	if err != nil {
		return nil, err
	}
	return &Env{
		Lib:       lib,
		Variant:   variant,
		CPU:       cpu,
		Comps:     core.ClassifyNetlist(cpu.Netlist),
		disk:      disk,
		selfTests: make(map[core.PhaseID]*core.SelfTest),
		goldens:   make(map[core.PhaseID]*plasma.Golden),
	}, nil
}

// Faults returns the collapsed fault universe (cached).
func (e *Env) Faults() []fault.Fault {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.faults == nil {
		e.faults = fault.Universe(e.CPU.Netlist)
	}
	return e.faults
}

// SelfTest generates (and caches) the self-test program up to maxPhase.
func (e *Env) SelfTest(maxPhase core.PhaseID) (*core.SelfTest, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if st, ok := e.selfTests[maxPhase]; ok {
		return st, nil
	}
	st, err := core.GenerateSelfTest(e.Comps, maxPhase)
	if err != nil {
		return nil, err
	}
	e.selfTests[maxPhase] = st
	return st, nil
}

// Golden captures (and caches) the fault-free execution of the self-test
// program up to maxPhase.
func (e *Env) Golden(maxPhase core.PhaseID) (*plasma.Golden, error) {
	st, err := e.SelfTest(maxPhase)
	if err != nil {
		return nil, err
	}
	cycles, err := e.gateCycles(st)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if g, ok := e.goldens[maxPhase]; ok {
		return g, nil
	}
	g, err := e.disk.CaptureGoldenK(e.CPU, st.Program, cycles, e.checkpointK())
	if err != nil {
		return nil, err
	}
	e.goldens[maxPhase] = g
	return g, nil
}

// gateCycles sizes the golden capture for st on this environment's core.
// The base core retires the program in the ISS cycle count plus a fixed
// pipeline offset, so st.GateCycles() is exact and free; other variants
// take a different number of cycles (bubbles, squashed fetches), so the
// halt cycle is measured gate-level once and cached on disk.
func (e *Env) gateCycles(st *core.SelfTest) (int, error) {
	if e.Variant == "" || e.Variant == plasma.VariantBase {
		return st.GateCycles(), nil
	}
	budget := st.Cycles*4 + 4096
	halt, err := e.disk.HaltCycles(e.CPU, st.Program, budget)
	if err != nil {
		return 0, err
	}
	return int(halt) + 16, nil
}

func (e *Env) checkpointK() int {
	if e.CheckpointK > 0 {
		return e.CheckpointK
	}
	return plasma.DefaultCheckpointK
}

// Simulate runs one fault simulation through the Grader hook (default:
// in-process fault.Simulate).
func (e *Env) Simulate(g *plasma.Golden, faults []fault.Fault, opt fault.Options) (*fault.Result, error) {
	if e.Grader != nil {
		return e.Grader(e.CPU, g, faults, opt)
	}
	return fault.Simulate(e.CPU, g, faults, opt)
}

// grade is Simulate over the full universe, aggregated per component.
func (e *Env) grade(g *plasma.Golden, opt fault.Options) (*fault.Report, error) {
	res, err := e.Simulate(g, e.Faults(), opt)
	if err != nil {
		return nil, err
	}
	return fault.NewReport(e.CPU.Netlist, res), nil
}

// FaultSimSelfTest fault-simulates the self-test program up to maxPhase
// and aggregates per-component coverage.
func (e *Env) FaultSimSelfTest(maxPhase core.PhaseID, opt fault.Options) (*fault.Report, error) {
	g, err := e.Golden(maxPhase)
	if err != nil {
		return nil, err
	}
	return e.grade(g, opt)
}

// FaultSimProgram fault-simulates an arbitrary assembled program for the
// given number of cycles.
func (e *Env) FaultSimProgram(prog *asm.Program, cycles int, opt fault.Options) (*fault.Report, error) {
	g, err := e.disk.CaptureGoldenK(e.CPU, prog, cycles, e.checkpointK())
	if err != nil {
		return nil, err
	}
	return e.grade(g, opt)
}

// DefaultEnv builds the library-A environment used by most experiments.
func DefaultEnv() (*Env, error) { return NewEnv(synth.NativeLib{}) }

func fmtPct(v float64) string { return fmt.Sprintf("%.2f", v) }
