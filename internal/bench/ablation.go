package bench

import (
	"fmt"
	"strings"

	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gate"
	"repro/internal/synth"
)

// AblationRow is one single-routine program's measured contribution.
type AblationRow struct {
	Routine   string
	Words     int
	Cycles    uint64
	OverallFC float64
	// OwnFC is the coverage inside the routine's own target component.
	OwnFC float64
}

// RoutineAblation runs each component routine as a standalone self-test
// program: how much overall and own-component coverage each routine buys,
// and at what size/time cost. This backs the methodology's prioritization
// argument — the register-file routine alone carries most of the overall
// coverage because RegF dominates the gate count.
func RoutineAblation(e *Env, opt fault.Options) ([]AblationRow, string, error) {
	var rows []AblationRow
	for _, c := range core.Prioritize(e.Comps) {
		r, ok := core.RoutineByName(c.Name)
		if !ok {
			continue
		}
		st, err := core.BuildProgram([]core.Routine{r})
		if err != nil {
			return nil, "", fmt.Errorf("routine %s: %w", c.Name, err)
		}
		rep, err := e.FaultSimProgram(st.Program, st.GateCycles(), opt)
		if err != nil {
			return nil, "", err
		}
		row := AblationRow{
			Routine:   c.Name,
			Words:     st.Words,
			Cycles:    st.Cycles,
			OverallFC: overallFC(rep),
		}
		if cc, ok := rep.ByName(c.Name); ok {
			row.OwnFC = cc.FC()
		}
		rows = append(rows, row)
	}
	var sb strings.Builder
	if opt.Sample > 0 {
		fmt.Fprintf(&sb, "(sampled: %d faults, seed %d)\n", opt.Sample, opt.Seed)
	}
	fmt.Fprintf(&sb, "%-10s %8s %10s %12s %10s\n", "Routine", "Words", "Cycles", "Overall FC%", "Own FC%")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %8d %10d %12s %10s\n",
			r.Routine, r.Words, r.Cycles, fmtPct(r.OverallFC), fmtPct(r.OwnFC))
	}
	return rows, sb.String(), nil
}

// ATPGRow compares one pattern source on one standalone component.
type ATPGRow struct {
	Component string
	Method    string
	Patterns  int
	FC        float64
}

// ATPGComparison contrasts the paper's library of deterministic patterns
// with structural ATPG (PODEM) at the component boundary — the Chen & Dey
// [6] style alternative. Both are fault-simulated on standalone ALU and
// shifter netlists; the library sets reach comparable coverage with
// hand-countable pattern counts, which is what keeps the self-test
// routines compact.
func ATPGComparison() ([]ATPGRow, string, error) {
	var rows []ATPGRow

	type comp struct {
		name    string
		build   func() *gate.Netlist
		stimuli func() [][]busVal
	}
	comps := []comp{
		{
			name:  "ALU",
			build: buildStandaloneALU,
			stimuli: func() [][]busVal {
				var out [][]busVal
				for _, p := range core.ALUPatterns {
					for op := uint64(0); op < 8; op++ {
						out = append(out, []busVal{{"a", uint64(p.A)}, {"b", uint64(p.B)}, {"op", op}})
					}
				}
				return out
			},
		},
		{
			name:  "BSH",
			build: buildStandaloneBSH,
			stimuli: func() [][]busVal {
				var out [][]busVal
				for _, d := range core.ShifterData {
					for amt := uint64(0); amt < 32; amt++ {
						for mode := 0; mode < 3; mode++ {
							r, ar := uint64(0), uint64(0)
							if mode > 0 {
								r = 1
							}
							if mode == 2 {
								ar = 1
							}
							out = append(out, []busVal{
								{"data", uint64(d)}, {"amt", amt}, {"right", r}, {"arith", ar},
							})
						}
					}
				}
				return out
			},
		},
	}

	for _, c := range comps {
		n := c.build()
		faults := fault.Universe(n)

		// Library deterministic patterns.
		stim := c.stimuli()
		fc, err := componentCoverage(n, faults, stim)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, ATPGRow{Component: c.name, Method: "library", Patterns: len(stim), FC: fc})

		// PODEM-generated patterns with fault dropping.
		eng, err := atpg.NewEngine(n)
		if err != nil {
			return nil, "", err
		}
		sites := make([]gate.FaultSite, len(faults))
		for i, f := range faults {
			sites[i] = f.Site
		}
		st := eng.GenerateAll(sites)
		atpgStim := patternsToStimuli(n, st.Patterns)
		fcATPG, err := componentCoverage(n, faults, atpgStim)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, ATPGRow{Component: c.name, Method: "PODEM", Patterns: len(atpgStim), FC: fcATPG})
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-10s %10s %10s\n", "Component", "Method", "Patterns", "FC%")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-10s %10d %10s\n", r.Component, r.Method, r.Patterns, fmtPct(r.FC))
	}
	return rows, sb.String(), nil
}

type busVal struct {
	bus string
	val uint64
}

func buildStandaloneALU() *gate.Netlist {
	c := synth.NewCtx("alu32", synth.NativeLib{})
	a := c.B.InputBus("a", 32)
	d := c.B.InputBus("b", 32)
	op := c.B.InputBus("op", 3)
	c.B.BeginComponent("ALU")
	c.B.OutputBus("y", c.ALU(synth.Bus(a), synth.Bus(d), synth.Bus(op)))
	return c.B.N
}

func buildStandaloneBSH() *gate.Netlist {
	c := synth.NewCtx("bsh32", synth.NativeLib{})
	data := c.B.InputBus("data", 32)
	amt := c.B.InputBus("amt", 5)
	right := c.B.Input("right")
	arith := c.B.Input("arith")
	c.B.BeginComponent("BSH")
	c.B.OutputBus("y", c.BarrelShifter(synth.Bus(data), synth.Bus(amt), right, arith))
	return c.B.N
}

// patternsToStimuli converts PODEM per-input assignments to bus vectors,
// filling don't-cares with zero.
func patternsToStimuli(n *gate.Netlist, patterns []atpg.Pattern) [][]busVal {
	var out [][]busVal
	for _, p := range patterns {
		var vec []busVal
		for _, name := range n.InputNames() {
			var v uint64
			for i, sig := range n.InputBus(name) {
				if p[sig] == atpg.L1 {
					v |= 1 << uint(i)
				}
			}
			vec = append(vec, busVal{name, v})
		}
		out = append(out, vec)
	}
	return out
}

// componentCoverage fault-simulates a combinational component against a
// stimulus list with 64 faults per pass, returning weighted coverage.
func componentCoverage(n *gate.Netlist, faults []fault.Fault, stimuli [][]busVal) (float64, error) {
	s, err := gate.NewSim(n)
	if err != nil {
		return 0, err
	}
	// Golden responses per stimulus.
	outs := n.OutputNames()
	golden := make([][]uint64, len(stimuli))
	for si, vec := range stimuli {
		for _, bv := range vec {
			s.SetBusUniform(bv.bus, bv.val)
		}
		s.Eval()
		for _, o := range outs {
			golden[si] = append(golden[si], s.BusLane(o, 0))
		}
	}
	detW, totW := 0, 0
	for lo := 0; lo < len(faults); lo += 64 {
		hi := lo + 64
		if hi > len(faults) {
			hi = len(faults)
		}
		lf := make([]gate.LaneFault, hi-lo)
		for i := range lf {
			lf[i] = gate.LaneFault{Site: faults[lo+i].Site, Lane: i}
		}
		s.SetFaults(lf)
		var detected uint64
		for si, vec := range stimuli {
			for _, bv := range vec {
				s.SetBusUniform(bv.bus, bv.val)
			}
			s.Eval()
			for oi, o := range outs {
				sigs := n.OutputBus(o)
				for b, sig := range sigs {
					gbit := golden[si][oi] >> uint(b) & 1
					detected |= s.SigWord(sig) ^ (^uint64(0) * gbit)
				}
			}
		}
		for i := 0; i < hi-lo; i++ {
			totW += faults[lo+i].Equiv
			if detected>>uint(i)&1 != 0 {
				detW += faults[lo+i].Equiv
			}
		}
	}
	s.ClearFaults()
	if totW == 0 {
		return 0, nil
	}
	return 100 * float64(detW) / float64(totW), nil
}
