package bench

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/plasma"
	"repro/internal/synth"
)

// LadderRow is one rung of the core-ladder comparative table: the paper's
// Table 3/4/5 headline numbers for one micro-architecture, produced by the
// same methodology run (same routine library, same fault engine).
type LadderRow struct {
	Variant     string
	Description string
	Gates       float64 // NAND2 equivalents (Table 3 total)
	Faults      int     // collapsed fault-universe size
	Words       int     // self-test program size (Table 4)
	ISSCycles   uint64  // program execution on the golden model
	GateCycles  int     // golden-capture length on this core (gate-measured)
	FC          float64 // overall fault coverage (Table 5, under opt)
}

// LadderEnvs builds one environment per core-ladder variant, sharing the
// technology library and the on-disk cache (variant identity is part of
// every cache key, so sharing one directory is safe).
func LadderEnvs(lib synth.Library, disk *cache.Cache) ([]*Env, error) {
	var envs []*Env
	for _, v := range plasma.Variants() {
		e, err := NewEnvVariant(v.Name(), lib, disk)
		if err != nil {
			return nil, fmt.Errorf("ladder: %s: %w", v.Name(), err)
		}
		envs = append(envs, e)
	}
	return envs, nil
}

// Ladder runs the full Table 3-5 flow on every core variant and renders the
// majorana-style comparative table: one shared methodology, N cores, gate
// counts, program sizes, per-variant cycle counts and fault coverage side
// by side. The self-test program differs per variant only where the
// inventory demands it (no MulD routine or mul/div opcodes on nomul, an
// extra FWD routine on fwd5).
func Ladder(envs []*Env, maxPhase core.PhaseID, opt fault.Options) ([]LadderRow, string, error) {
	var rows []LadderRow
	for _, e := range envs {
		v := plasma.VariantByName(e.Variant)
		if v == nil {
			return nil, "", fmt.Errorf("ladder: env has unknown variant %q", e.Variant)
		}
		_, total := e.CPU.Netlist.GateCount()
		st, err := e.SelfTest(maxPhase)
		if err != nil {
			return nil, "", fmt.Errorf("ladder: %s self-test: %w", e.Variant, err)
		}
		gateCycles, err := e.gateCycles(st)
		if err != nil {
			return nil, "", fmt.Errorf("ladder: %s cycle measurement: %w", e.Variant, err)
		}
		rep, err := e.FaultSimSelfTest(maxPhase, opt)
		if err != nil {
			return nil, "", fmt.Errorf("ladder: %s fault sim: %w", e.Variant, err)
		}
		rows = append(rows, LadderRow{
			Variant:     e.Variant,
			Description: v.Description(),
			Gates:       total,
			Faults:      len(e.Faults()),
			Words:       st.Words,
			ISSCycles:   st.Cycles,
			GateCycles:  gateCycles,
			FC:          overallFC(rep),
		})
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "Core ladder, library %s, Phase A..%s", envs[0].Lib.Name(), maxPhase)
	if opt.Sample > 0 {
		fmt.Fprintf(&sb, " (sampled: %d faults, seed %d)", opt.Sample, opt.Seed)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-8s %8s %8s %8s %10s %11s %8s\n",
		"Variant", "Gates", "Faults", "Words", "ISS cyc", "Gate cyc", "FC%")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %8.0f %8d %8d %10d %11d %8s\n",
			r.Variant, r.Gates, r.Faults, r.Words, r.ISSCycles, r.GateCycles, fmtPct(r.FC))
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %s: %s\n", r.Variant, r.Description)
	}
	return rows, sb.String(), nil
}
