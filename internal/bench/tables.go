package bench

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/tester"
)

// Table1 renders the component-class test-priority table (Table 1).
func Table1() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-28s %-10s\n", "Class", "Controllability/Observability", "Priority")
	for _, cl := range []core.Class{core.Functional, core.Control, core.Hidden} {
		fmt.Fprintf(&sb, "%-12s %-28s %-10s\n", cl, cl.Accessibility(), cl.Priority())
	}
	return sb.String()
}

// Table2Row is one row of the component-classification table.
type Table2Row struct {
	Name  string
	Class core.Class
}

// Table2 computes the Plasma component classification (Table 2).
func Table2(e *Env) ([]Table2Row, string) {
	ordered := core.Prioritize(e.Comps)
	rows := make([]Table2Row, 0, len(ordered))
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %s\n", "Component Name", "Component Class")
	for _, c := range ordered {
		rows = append(rows, Table2Row{Name: c.Name, Class: c.Class})
		fmt.Fprintf(&sb, "%-24s %s\n", c.Name, c.Class)
	}
	return rows, sb.String()
}

// Table3Row is one row of the gate-count table.
type Table3Row struct {
	Name  string
	Gates float64
}

// Table3 computes per-component gate counts in NAND2 equivalents
// (Table 3).
func Table3(e *Env) ([]Table3Row, string) {
	perComp, total := e.CPU.Netlist.GateCount()
	rows := make([]Table3Row, 0, len(e.Comps))
	var sb strings.Builder
	fmt.Fprintf(&sb, "library: %s\n", e.Lib.Name())
	fmt.Fprintf(&sb, "%-24s %10s\n", "Component Name", "Gate Count")
	for _, c := range core.Prioritize(e.Comps) {
		for i, name := range e.CPU.Netlist.CompNames {
			if name == c.Name {
				rows = append(rows, Table3Row{Name: name, Gates: perComp[i]})
				fmt.Fprintf(&sb, "%-24s %10.0f\n", name, perComp[i])
			}
		}
	}
	fmt.Fprintf(&sb, "%-24s %10.0f\n", "Plasma/MIPS Processor", total)
	return rows, sb.String()
}

// Table4Row is one column of the self-test program statistics table.
type Table4Row struct {
	Phase  core.PhaseID
	Words  int
	Cycles uint64
}

// Table4 generates the self-test programs for Phase A, A+B, and (as an
// extension) A+B+C and reports their size and execution time (Table 4).
func Table4(e *Env) ([]Table4Row, string, error) {
	var rows []Table4Row
	for _, ph := range []core.PhaseID{core.PhaseA, core.PhaseB, core.PhaseC} {
		st, err := e.SelfTest(ph)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, Table4Row{Phase: ph, Words: st.Words, Cycles: st.Cycles})
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %10s %12s %14s\n", "", "Phase A", "Phase A+B", "Phase A+B+C")
	fmt.Fprintf(&sb, "%-22s %10d %12d %14d\n", "Test Program (words)", rows[0].Words, rows[1].Words, rows[2].Words)
	fmt.Fprintf(&sb, "%-22s %10d %12d %14d\n", "Clock Cycles", rows[0].Cycles, rows[1].Cycles, rows[2].Cycles)
	return rows, sb.String(), nil
}

// Table5Data holds per-phase coverage reports.
type Table5Data struct {
	PhaseA  *fault.Report
	PhaseAB *fault.Report
	// PhaseABC is the extension beyond the paper's table.
	PhaseABC *fault.Report
}

// Table5 fault-simulates the self-test programs and reports per-component
// coverage with MOFC for Phase A and Phase A+B (Table 5), plus the A+B+C
// extension. Sampling via opt keeps fast runs tractable.
func Table5(e *Env, opt fault.Options, includeC bool) (*Table5Data, string, error) {
	d := &Table5Data{}
	var err error
	if d.PhaseA, err = e.FaultSimSelfTest(core.PhaseA, opt); err != nil {
		return nil, "", err
	}
	if d.PhaseAB, err = e.FaultSimSelfTest(core.PhaseB, opt); err != nil {
		return nil, "", err
	}
	if includeC {
		if d.PhaseABC, err = e.FaultSimSelfTest(core.PhaseC, opt); err != nil {
			return nil, "", err
		}
	}
	var sb strings.Builder
	if opt.Sample > 0 {
		fmt.Fprintf(&sb, "(sampled: %d of %d collapsed faults, seed %d)\n",
			opt.Sample, len(e.Faults()), opt.Seed)
	}
	fmt.Fprintf(&sb, "%-10s | %8s %8s | %8s %8s", "Component", "A FC%", "A MOFC", "A+B FC%", "A+B MOFC")
	if includeC {
		fmt.Fprintf(&sb, " | %8s %8s", "ABC FC%", "ABC MOFC")
	}
	sb.WriteString("\n")
	for _, c := range d.PhaseA.Components {
		ab, _ := d.PhaseAB.ByName(c.Name)
		fmt.Fprintf(&sb, "%-10s | %8s %8s | %8s %8s",
			c.Name, fmtPct(c.FC()), fmtPct(c.MOFC), fmtPct(ab.FC()), fmtPct(ab.MOFC))
		if includeC {
			abc, _ := d.PhaseABC.ByName(c.Name)
			fmt.Fprintf(&sb, " | %8s %8s", fmtPct(abc.FC()), fmtPct(abc.MOFC))
		}
		sb.WriteString("\n")
	}
	ovA := overallFC(d.PhaseA)
	ovAB := overallFC(d.PhaseAB)
	fmt.Fprintf(&sb, "%-10s | %8s %8s | %8s %8s", "Plasma", fmtPct(ovA), "", fmtPct(ovAB), "")
	if includeC {
		fmt.Fprintf(&sb, " | %8s %8s", fmtPct(overallFC(d.PhaseABC)), "")
	}
	sb.WriteString("\n")
	return d, sb.String(), nil
}

func overallFC(r *fault.Report) float64 {
	if r.Overall.TotalW == 0 {
		return 0
	}
	return 100 * float64(r.Overall.DetW) / float64(r.Overall.TotalW)
}

// TechLibRow is one technology library's outcome.
type TechLibRow struct {
	Library string
	Gates   float64
	FC      float64
}

// TechLibIndependence reproduces the Section 4 claim: synthesizing the
// core with a different technology library yields very similar Phase A+B
// fault coverage from the same self-test program.
func TechLibIndependence(envs []*Env, opt fault.Options) ([]TechLibRow, string, error) {
	var rows []TechLibRow
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %10s %10s\n", "Library", "Gates", "A+B FC%")
	for _, e := range envs {
		rep, err := e.FaultSimSelfTest(core.PhaseB, opt)
		if err != nil {
			return nil, "", err
		}
		_, total := e.CPU.Netlist.GateCount()
		r := TechLibRow{Library: e.Lib.Name(), Gates: total, FC: overallFC(rep)}
		rows = append(rows, r)
		fmt.Fprintf(&sb, "%-20s %10.0f %10s\n", r.Library, r.Gates, fmtPct(r.FC))
	}
	return rows, sb.String(), nil
}

// BaselineRow is one pseudorandom-baseline measurement.
type BaselineRow struct {
	Kind   string // "SBST Phase A" or "pseudorandom/N"
	Words  int
	Cycles uint64
	FC     float64
}

// BaselineComparison reproduces the cost argument against pseudorandom
// SBST: the deterministic Phase A program against LFSR-expanded programs
// of growing pattern counts (program size stays flat; cycles explode;
// coverage saturates lower).
func BaselineComparison(e *Env, rounds []int, opt fault.Options) ([]BaselineRow, string, error) {
	var rows []BaselineRow

	st, err := e.SelfTest(core.PhaseA)
	if err != nil {
		return nil, "", err
	}
	repA, err := e.FaultSimSelfTest(core.PhaseA, opt)
	if err != nil {
		return nil, "", err
	}
	rows = append(rows, BaselineRow{
		Kind: "SBST Phase A", Words: st.Words, Cycles: st.Cycles, FC: overallFC(repA),
	})

	for _, n := range rounds {
		p, err := baseline.Generate(baseline.DefaultConfig(n))
		if err != nil {
			return nil, "", err
		}
		rep, err := e.FaultSimProgram(p.Program, p.GateCycles(), opt)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, BaselineRow{
			Kind:   fmt.Sprintf("pseudorandom/%d", n),
			Words:  p.Words,
			Cycles: p.Cycles,
			FC:     overallFC(rep),
		})
	}

	var sb strings.Builder
	if opt.Sample > 0 {
		fmt.Fprintf(&sb, "(sampled: %d faults, seed %d)\n", opt.Sample, opt.Seed)
	}
	fmt.Fprintf(&sb, "%-20s %8s %10s %8s\n", "Program", "Words", "Cycles", "FC%")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-20s %8d %10d %8s\n", r.Kind, r.Words, r.Cycles, fmtPct(r.FC))
	}
	return rows, sb.String(), nil
}

// DetectionLatency reports when the Phase A program first observes its
// detected faults: compact per-component routines front-load detection,
// which is why fault dropping makes grading cheap.
func DetectionLatency(e *Env, opt fault.Options) (*fault.LatencyStats, string, error) {
	g, err := e.Golden(core.PhaseA)
	if err != nil {
		return nil, "", err
	}
	res, err := e.Simulate(g, e.Faults(), opt)
	if err != nil {
		return nil, "", err
	}
	st := fault.NewLatencyStats(res)
	return st, st.String(), nil
}

// CostRow is one tester-speed point of the cost-model sweep.
type CostRow struct {
	TesterMHz float64
	Cost      tester.Cost
}

// CostModel reproduces the Figure 1 resource-partitioning argument with
// the Phase A program: test time against tester speed, download share.
func CostModel(e *Env) ([]CostRow, string, error) {
	st, err := e.SelfTest(core.PhaseA)
	if err != nil {
		return nil, "", err
	}
	speeds := []float64{100, 50, 20, 10, 5, 2, 1}
	var rows []CostRow
	var sb strings.Builder
	fmt.Fprintf(&sb, "Phase A program: %d words, %d cycles, %d response words, core %g MHz\n",
		st.Words, st.Cycles, st.RespWords, tester.DefaultProfile.CoreMHz)
	fmt.Fprintf(&sb, "%10s %12s %12s %12s %10s\n", "TesterMHz", "Download us", "Execute us", "Total us", "DL share")
	for _, mhz := range speeds {
		c := tester.Apply(st.Words, st.Cycles, st.RespWords,
			tester.Profile{TesterMHz: mhz, CoreMHz: tester.DefaultProfile.CoreMHz})
		rows = append(rows, CostRow{TesterMHz: mhz, Cost: c})
		fmt.Fprintf(&sb, "%10g %12.1f %12.1f %12.1f %9.0f%%\n",
			mhz, c.DownloadSeconds*1e6, c.ExecuteSeconds*1e6, c.Total()*1e6, c.DownloadShare()*100)
	}
	return rows, sb.String(), nil
}
