package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gate"
	"repro/internal/plasma"
	"repro/internal/synth"
)

// PeriodicRow is one fragment of the periodic self-test schedule.
type PeriodicRow struct {
	Fragment     string
	Cycles       uint64
	CumulativeFC float64
}

// PeriodicComposition evaluates splitting the Phase A self-test into
// per-component fragments executed as separate runs (the on-line periodic
// testing deployment the paper's program structure enables): each fragment
// is graded independently and detections are unioned across the schedule.
// The composed coverage approaches the monolithic program's, showing the
// routines are self-contained.
//
// The cumulative detected set is carried forward as a drop list: each
// fragment simulates only the faults that escaped every earlier fragment.
// Because each fault's outcome is independent of the rest of the fault
// list, this yields exactly the detections a full re-grade plus
// MergeDetections would (asserted in tests) at a fraction of the work.
func PeriodicComposition(e *Env, opt fault.Options) ([]PeriodicRow, string, error) {
	// Sampling must be identical across fragments for the union to be
	// meaningful: pre-sample once, then run fragments unsampled.
	faults := fault.SampleFaults(e.Faults(), opt.Sample, opt.Seed)
	opt.Sample = 0

	cum := &fault.Result{
		Faults:          faults,
		DetectedAt:      make([]int32, len(faults)),
		SignatureGroups: make([]uint8, len(faults)),
	}
	for i := range cum.DetectedAt {
		cum.DetectedAt[i] = -1
	}

	var rows []PeriodicRow
	for _, c := range core.Prioritize(e.Comps) {
		if c.Class.Phase() != core.PhaseA {
			continue
		}
		r, ok := core.RoutineByName(c.Name)
		if !ok {
			continue
		}
		st, err := core.BuildProgram([]core.Routine{r})
		if err != nil {
			return nil, "", err
		}
		g, err := plasma.CaptureGolden(e.CPU, st.Program, st.GateCycles())
		if err != nil {
			return nil, "", err
		}
		// Simulate only the escapes of the schedule so far.
		var escIdx []int
		var escapes []fault.Fault
		for i := range faults {
			if cum.DetectedAt[i] < 0 {
				escIdx = append(escIdx, i)
				escapes = append(escapes, faults[i])
			}
		}
		res, err := e.Simulate(g, escapes, opt)
		if err != nil {
			return nil, "", err
		}
		for k, i := range escIdx {
			if res.DetectedAt[k] >= 0 {
				cum.DetectedAt[i] = int32(cum.Cycles) + res.DetectedAt[k]
				cum.SignatureGroups[i] = res.SignatureGroups[k]
			}
		}
		cum.Cycles += res.Cycles
		cum.Stats.Add(&res.Stats)
		rows = append(rows, PeriodicRow{
			Fragment:     c.Name,
			Cycles:       st.Cycles,
			CumulativeFC: cum.WeightedCoverage(),
		})
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "periodic self-test fragments (Phase A split per component)\n")
	fmt.Fprintf(&sb, "%-10s %10s %16s\n", "Fragment", "Cycles", "Cumulative FC%")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %10d %16s\n", r.Fragment, r.Cycles, fmtPct(r.CumulativeFC))
	}
	return rows, sb.String(), nil
}

// ArchRow is one adder-architecture measurement.
type ArchRow struct {
	Architecture string
	Gates        float64
	FC           float64
}

// AdderArchIndependence backs the test-set library's architecture claim
// (Section 2.3): the same deterministic ALU pattern set reaches high
// coverage on structurally different adder realizations (ripple-carry vs
// carry-lookahead), because the patterns target the function's carry
// behaviour, not one netlist.
func AdderArchIndependence() ([]ArchRow, string, error) {
	type variant struct {
		name string
		fn   synth.AddSubFn
	}
	variants := []variant{
		{"ripple-carry", func(c *synth.Ctx, a, d synth.Bus, sub gate.Sig) (synth.Bus, gate.Sig) {
			return c.AddSub(a, d, sub)
		}},
		{"carry-lookahead", func(c *synth.Ctx, a, d synth.Bus, sub gate.Sig) (synth.Bus, gate.Sig) {
			return c.CLAAddSub(a, d, sub)
		}},
	}

	var stim [][]busVal
	pairs := append(append([]core.OperandPair(nil), core.ALUPatterns...), core.ALUWalkingPatterns()...)
	for _, p := range pairs {
		for op := uint64(0); op < 8; op++ {
			stim = append(stim, []busVal{{"a", uint64(p.A)}, {"b", uint64(p.B)}, {"op", op}})
		}
	}

	var rows []ArchRow
	for _, v := range variants {
		c := synth.NewCtx("alu-"+v.name, synth.NativeLib{})
		a := c.B.InputBus("a", 32)
		d := c.B.InputBus("b", 32)
		op := c.B.InputBus("op", 3)
		c.B.BeginComponent("ALU")
		c.B.OutputBus("y", c.ALUArch(synth.Bus(a), synth.Bus(d), synth.Bus(op), v.fn))
		n := c.B.N
		if err := n.Validate(); err != nil {
			return nil, "", err
		}
		faults := fault.Universe(n)
		fc, err := componentCoverage(n, faults, stim)
		if err != nil {
			return nil, "", err
		}
		_, gates := n.GateCount()
		rows = append(rows, ArchRow{Architecture: v.name, Gates: gates, FC: fc})
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "ALU adder architecture vs the same library pattern set\n")
	fmt.Fprintf(&sb, "%-18s %10s %10s\n", "Architecture", "Gates", "FC%")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %10.0f %10s\n", r.Architecture, r.Gates, fmtPct(r.FC))
	}
	return rows, sb.String(), nil
}
