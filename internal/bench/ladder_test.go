package bench

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/plasma"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/synth"
)

// TestMain makes this test binary a valid shard worker for SelfSpawner,
// so the bit-identity matrix below can exercise the sharded grading path
// the same way cmd/sbst does.
func TestMain(m *testing.M) {
	shard.ServeIfWorker()
	os.Exit(m.Run())
}

var update = flag.Bool("update", false, "rewrite golden files with current results")

var (
	ladderOnce sync.Once
	ladderEnvs []*Env
	ladderErr  error
)

// getLadder builds (once per test binary) one environment per core-ladder
// variant, all on the native library with no disk cache.
func getLadder(t *testing.T) []*Env {
	t.Helper()
	ladderOnce.Do(func() { ladderEnvs, ladderErr = LadderEnvs(synth.NativeLib{}, nil) })
	if ladderErr != nil {
		t.Fatal(ladderErr)
	}
	return ladderEnvs
}

var (
	sharedOnce sync.Once
	sharedST   *core.SelfTest
	sharedErr  error
)

// sharedWorkload builds the cross-variant comparative program: every
// Phase A/B routine that runs unchanged on all three cores (no MulD
// routine, no mul/div opcodes anywhere), in test-priority order. Its
// architectural results must be identical on every rung of the ladder.
func sharedWorkload(t *testing.T) *core.SelfTest {
	t.Helper()
	sharedOnce.Do(func() {
		opts := core.RoutineOptions{NoMulDiv: true}
		var routines []core.Routine
		for _, name := range []string{"RegF", "ALU", "BSH", "MCTRL", "PCL"} {
			r, ok := core.RoutineByNameFor(name, opts)
			if !ok {
				sharedErr = fmt.Errorf("no %s routine", name)
				return
			}
			routines = append(routines, r)
		}
		sharedST, sharedErr = core.BuildProgram(routines)
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedST
}

// runShared executes the shared workload gate-level on one variant and
// returns the halted machine.
func runShared(t *testing.T, e *Env, st *core.SelfTest) *plasma.Machine {
	t.Helper()
	m, halted, err := plasma.RunProgram(e.CPU, st.Program, st.Cycles*4+4096, false)
	if err != nil {
		t.Fatalf("%s: %v", e.Variant, err)
	}
	if !halted {
		t.Fatalf("%s: shared workload did not halt", e.Variant)
	}
	return m
}

// TestLadderSharedWorkloadIdenticalResults is the comparative harness
// headline: one Phase A/B workload runs on every core variant, and every
// variant must produce the identical architectural result (the full
// response region plus the 0x600D completion marker) even though each
// core takes a different number of clock cycles to get there.
func TestLadderSharedWorkloadIdenticalResults(t *testing.T) {
	envs := getLadder(t)
	st := sharedWorkload(t)

	// Reference responses from the instruction-set simulator, with the
	// nomul contract enforced (any mul/div opcode would be a hard error).
	mem := sim.NewMemory()
	mem.LoadProgram(st.Program)
	iss := sim.New(mem, 0)
	iss.NoMulDiv = true
	halted, err := iss.Run(2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !halted {
		t.Fatal("ISS did not halt")
	}
	want := make([]uint32, st.RespWords+1) // responses + completion marker
	for i := range want {
		want[i] = mem.Word(core.DefaultRespBase + uint32(i)*4)
	}
	if marker := want[st.RespWords]; marker != 0x600D {
		t.Fatalf("ISS completion marker = %#x", marker)
	}

	cycles := map[string]uint64{}
	for _, e := range envs {
		e := e
		t.Run(e.Variant, func(t *testing.T) {
			m := runShared(t, e, st)
			for i := range want {
				got := m.Mem.Word(core.DefaultRespBase + uint32(i)*4)
				if got != want[i] {
					t.Fatalf("response word %d = %#x, ISS says %#x", i, got, want[i])
				}
			}
			cycles[e.Variant] = m.Cycle
			t.Logf("%s: %d gate cycles (ISS %d)", e.Variant, m.Cycle, iss.Cycle)
		})
	}

	// The cores agree on results, not on timing: the 5-stage pipeline pays
	// bubbles the 3-stage cores don't, so its cycle count must differ.
	if len(cycles) == len(envs) {
		if cycles[plasma.VariantFwd5] == cycles[plasma.VariantBase] {
			t.Errorf("fwd5 and base took identical cycle counts (%d): pipeline timing not exercised",
				cycles[plasma.VariantFwd5])
		}
		if cycles[plasma.VariantFwd5] <= cycles[plasma.VariantBase] {
			t.Errorf("fwd5 (%d cycles) faster than base (%d): bubbles and squashes should cost cycles on this workload",
				cycles[plasma.VariantFwd5], cycles[plasma.VariantBase])
		}
	}
}

// TestLadderBitIdentity grades the shared workload on every variant under
// a matrix of engine × lane-width × fused/unfused × sharding configs and
// asserts every cell produces bit-identical per-fault outcomes (DetectedAt
// and SignatureGroups) — the cross-variant extension of the repo's
// engine-equivalence guarantee.
func TestLadderBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full grading matrix is slow")
	}
	envs := getLadder(t)
	st := sharedWorkload(t)

	type cfg struct {
		name   string
		opt    fault.Options
		shards int
	}
	cfgs := []cfg{
		{"event/adaptive/fused", fault.Options{Engine: fault.EngineEvent}, 1},
		{"event/lanes8/unfused", fault.Options{Engine: fault.EngineEvent, LaneWords: 8, NoFusion: true}, 1},
		{"event/lanes1/fused", fault.Options{Engine: fault.EngineEvent, LaneWords: 1}, 1},
		{"oblivious/lanes4/fused", fault.Options{Engine: fault.EngineOblivious, LaneWords: 4}, 1},
		{"event/adaptive/2shards", fault.Options{Engine: fault.EngineEvent}, 2},
	}

	for _, e := range envs {
		e := e
		t.Run(e.Variant, func(t *testing.T) {
			m := runShared(t, e, st)
			golden, err := plasma.CaptureGolden(e.CPU, st.Program, int(m.Cycle)+16)
			if err != nil {
				t.Fatal(err)
			}
			faults := fault.SampleFaults(e.Faults(), 256, 7)

			var ref *fault.Result
			for _, c := range cfgs {
				var res *fault.Result
				if c.shards > 1 {
					res, _, err = shard.Grade(e.CPU, golden, faults, shard.Options{
						Shards:    c.shards,
						Engine:    c.opt.Engine,
						LaneWords: c.opt.LaneWords,
					})
				} else {
					res, err = fault.Simulate(e.CPU, golden, faults, c.opt)
				}
				if err != nil {
					t.Fatalf("%s: %v", c.name, err)
				}
				if ref == nil {
					ref = res
					t.Logf("%s: %.2f%% of %d sampled faults detected", e.Variant,
						res.Coverage(), len(faults))
					continue
				}
				for i := range ref.DetectedAt {
					if res.DetectedAt[i] != ref.DetectedAt[i] {
						t.Fatalf("%s: fault %d (%v) DetectedAt %d, reference %d",
							c.name, i, faults[i].Site, res.DetectedAt[i], ref.DetectedAt[i])
					}
					if res.SignatureGroups[i] != ref.SignatureGroups[i] {
						t.Fatalf("%s: fault %d signature %#x, reference %#x",
							c.name, i, res.SignatureGroups[i], ref.SignatureGroups[i])
					}
				}
			}
		})
	}
}

// TestLadderCoverageGolden pins each variant's Phase A fault coverage on
// the shared sample to a golden file: the comparative numbers the ladder
// report prints must not drift silently when the routines, the netlists,
// or the grading engines change. Regenerate with -update after a
// deliberate change.
func TestLadderCoverageGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("three-variant grading is slow")
	}
	envs := getLadder(t)
	opt := fault.Options{Sample: 512, Seed: 3}

	var sb strings.Builder
	sb.WriteString("# Per-variant Phase A fault coverage, native library, sample 512 seed 3.\n")
	sb.WriteString("# Regenerate: go test ./internal/bench -run TestLadderCoverageGolden -update\n")
	for _, e := range envs {
		rep, err := e.FaultSimSelfTest(core.PhaseA, opt)
		if err != nil {
			t.Fatalf("%s: %v", e.Variant, err)
		}
		st, err := e.SelfTest(core.PhaseA)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&sb, "%s faults=%d words=%d fc=%.2f\n",
			e.Variant, len(e.Faults()), st.Words, overallFC(rep))
	}
	got := sb.String()

	path := filepath.Join("testdata", "ladder_coverage.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("ladder coverage drifted from golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestLadderTable runs the full comparative flow (Table 3-5 per variant)
// at Phase A with a small sample and sanity-checks the rendered table.
func TestLadderTable(t *testing.T) {
	if testing.Short() {
		t.Skip("three full flows are slow")
	}
	envs := getLadder(t)
	rows, s, err := Ladder(envs, core.PhaseA, fault.Options{Sample: 512, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(plasma.Variants()) {
		t.Fatalf("ladder rows = %d, want %d", len(rows), len(plasma.Variants()))
	}
	byName := map[string]LadderRow{}
	for _, r := range rows {
		byName[r.Variant] = r
		if r.FC < 70 {
			t.Errorf("%s Phase A coverage %.1f%% implausibly low", r.Variant, r.FC)
		}
		if r.GateCycles <= 0 || r.Words <= 0 || r.Faults <= 0 {
			t.Errorf("%s degenerate row: %+v", r.Variant, r)
		}
	}
	// Structural ordering across the ladder: the forwarding pipeline is
	// the biggest core, the multiplier-less one the smallest.
	if !(byName[plasma.VariantFwd5].Gates > byName[plasma.VariantBase].Gates &&
		byName[plasma.VariantBase].Gates > byName[plasma.VariantNoMul].Gates) {
		t.Errorf("gate-count ladder out of order: %+v", byName)
	}
	if byName[plasma.VariantNoMul].Words >= byName[plasma.VariantBase].Words {
		t.Errorf("nomul program (%d words) not smaller than base (%d)",
			byName[plasma.VariantNoMul].Words, byName[plasma.VariantBase].Words)
	}
	for _, want := range []string{"Variant", "base", "fwd5", "nomul", "FC%"} {
		if !strings.Contains(s, want) {
			t.Errorf("ladder rendering missing %q:\n%s", want, s)
		}
	}
}
