package atpg

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/gate"
	"repro/internal/synth"
)

func TestThreeValuedOps(t *testing.T) {
	if not3(L0) != L1 || not3(L1) != L0 || not3(X) != X {
		t.Error("not3 wrong")
	}
	if and3(L0, X) != L0 || and3(L1, X) != X || and3(L1, L1) != L1 {
		t.Error("and3 wrong")
	}
	if or3(L1, X) != L1 || or3(L0, X) != X || or3(L0, L0) != L0 {
		t.Error("or3 wrong")
	}
	if xor3(L1, L0) != L1 || xor3(L1, L1) != L0 || xor3(L1, X) != X {
		t.Error("xor3 wrong")
	}
	if mux3(L1, L0, X) != X || mux3(L1, L1, X) != L1 || mux3(L0, L1, L1) != L1 {
		t.Error("mux3 wrong")
	}
	if L0.String() != "0" || L1.String() != "1" || X.String() != "X" {
		t.Error("stringers wrong")
	}
}

func TestGenerateSimpleAnd(t *testing.T) {
	b := gate.NewBuilder("and")
	a := b.Input("a")
	c := b.Input("b")
	y := b.And(a, c)
	b.Output("y", y)
	e, err := NewEngine(b.N)
	if err != nil {
		t.Fatal(err)
	}
	// y stuck-at-0 requires a=b=1.
	p, out := e.Generate(gate.FaultSite{Gate: y, Pin: 0, Stuck: false})
	if out != Detected {
		t.Fatalf("outcome = %v", out)
	}
	if p[a] != L1 || p[c] != L1 {
		t.Errorf("pattern = %v, want a=b=1", p)
	}
	// y stuck-at-1 requires one input 0.
	p, out = e.Generate(gate.FaultSite{Gate: y, Pin: 0, Stuck: true})
	if out != Detected {
		t.Fatalf("outcome = %v", out)
	}
	if p[a] == L1 && p[c] == L1 {
		t.Errorf("pattern %v does not set output low", p)
	}
	// Input-pin fault: a-input of the AND stuck-at-1 needs a=0, b=1.
	p, out = e.Generate(gate.FaultSite{Gate: y, Pin: 1, Stuck: true})
	if out != Detected {
		t.Fatalf("outcome = %v", out)
	}
	if p[a] != L0 || p[c] != L1 {
		t.Errorf("branch fault pattern = %v, want a=0 b=1", p)
	}
}

func TestGenerateRedundantFault(t *testing.T) {
	// y = a OR NOT a is constantly 1: y stuck-at-1 is untestable.
	b := gate.NewBuilder("taut")
	a := b.Input("a")
	y := b.Or(a, b.Not(a))
	b.Output("y", y)
	e, err := NewEngine(b.N)
	if err != nil {
		t.Fatal(err)
	}
	if _, out := e.Generate(gate.FaultSite{Gate: y, Pin: 0, Stuck: true}); out != Redundant {
		t.Errorf("outcome = %v, want redundant", out)
	}
	// y stuck-at-0 is testable with any input.
	if _, out := e.Generate(gate.FaultSite{Gate: y, Pin: 0, Stuck: false}); out != Detected {
		t.Errorf("outcome = %v, want detected", out)
	}
}

func TestEngineRejectsSequential(t *testing.T) {
	b := gate.NewBuilder("seq")
	d := b.Input("d")
	b.Output("q", b.DFF(d))
	if _, err := NewEngine(b.N); err == nil {
		t.Error("accepted sequential netlist")
	}
}

// buildAdder4 builds a standalone 4-bit ripple adder.
func buildAdder4() *gate.Netlist {
	c := synth.NewCtx("add4", synth.NativeLib{})
	a := c.B.InputBus("a", 4)
	d := c.B.InputBus("b", 4)
	cin := c.B.Input("cin")
	sum, carries := c.RippleAdder(synth.Bus(a), synth.Bus(d), cin)
	c.B.OutputBus("sum", sum)
	c.B.Output("cout", carries[len(carries)-1])
	return c.B.N
}

// verifyPattern checks with the bit-parallel simulator that the pattern
// really distinguishes the faulty machine at an output.
func verifyPattern(t *testing.T, n *gate.Netlist, p Pattern, f gate.FaultSite) bool {
	t.Helper()
	s, err := gate.NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaults([]gate.LaneFault{{Site: f, Lane: 1}})
	for _, name := range n.InputNames() {
		var v uint64
		for i, sig := range n.InputBus(name) {
			pv, ok := p[sig]
			if ok && pv == L1 {
				v |= 1 << uint(i)
			}
		}
		s.SetBusUniform(name, v)
	}
	s.Eval()
	for _, name := range n.OutputNames() {
		if s.BusLane(name, 0) != s.BusLane(name, 1) {
			return true
		}
	}
	return false
}

func TestGenerateAllAdderAndVerify(t *testing.T) {
	n := buildAdder4()
	e, err := NewEngine(n)
	if err != nil {
		t.Fatal(err)
	}
	var sites []gate.FaultSite
	for _, f := range fault.Universe(n) {
		sites = append(sites, f.Site)
	}
	// Generate each fault's test independently and verify it against the
	// event simulator (an oracle cross-check of the whole engine).
	detected, redundant := 0, 0
	for _, f := range sites {
		p, out := e.Generate(f)
		switch out {
		case Detected:
			detected++
			if !verifyPattern(t, n, p, f) {
				t.Fatalf("PODEM pattern %v does not detect %v", p, f)
			}
		case Redundant:
			redundant++
		case Aborted:
			t.Errorf("aborted on %v in a tiny adder", f)
		}
	}
	// A ripple adder is fully testable.
	if redundant != 0 {
		t.Errorf("%d faults declared redundant in an irredundant adder", redundant)
	}
	if detected != len(sites) {
		t.Errorf("detected %d of %d", detected, len(sites))
	}
}

func TestGenerateAllWithDropping(t *testing.T) {
	n := buildAdder4()
	e, err := NewEngine(n)
	if err != nil {
		t.Fatal(err)
	}
	var sites []gate.FaultSite
	for _, f := range fault.Universe(n) {
		sites = append(sites, f.Site)
	}
	st := e.GenerateAll(sites)
	if st.Coverage() < 100 {
		t.Errorf("adder test efficiency = %.2f%%, want 100", st.Coverage())
	}
	// Fault dropping must compact the pattern set well below one pattern
	// per fault.
	if len(st.Patterns) >= len(sites)/2 {
		t.Errorf("no compaction: %d patterns for %d faults", len(st.Patterns), len(sites))
	}
	if st.Detected+st.Redundant+st.Aborted != len(sites) {
		t.Error("outcome counts don't sum")
	}
}

func TestGenerateOnALUComponent(t *testing.T) {
	// The full 32-bit ALU: PODEM must reach high test efficiency on a
	// slice of its fault universe.
	c := synth.NewCtx("alu", synth.NativeLib{})
	a := c.B.InputBus("a", 32)
	d := c.B.InputBus("b", 32)
	op := c.B.InputBus("op", 3)
	c.B.OutputBus("y", c.ALU(synth.Bus(a), synth.Bus(d), synth.Bus(op)))
	e, err := NewEngine(c.B.N)
	if err != nil {
		t.Fatal(err)
	}
	all := fault.Universe(c.B.N)
	detected, aborted := 0, 0
	for i := 0; i < len(all); i += 9 { // deterministic sample
		p, out := e.Generate(all[i].Site)
		switch out {
		case Detected:
			detected++
			if !verifyPattern(t, c.B.N, p, all[i].Site) {
				t.Fatalf("pattern fails oracle for %v", all[i].Site)
			}
		case Aborted:
			aborted++
		}
	}
	if detected < 9*aborted {
		t.Errorf("ALU test generation weak: %d detected, %d aborted", detected, aborted)
	}
}
