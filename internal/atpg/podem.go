package atpg

import (
	"fmt"

	"repro/internal/gate"
)

// Outcome classifies a per-fault generation attempt.
type Outcome int

// Generation outcomes.
const (
	// Detected: a test pattern was found.
	Detected Outcome = iota
	// Redundant: the decision space was exhausted without aborting, so the
	// fault is untestable.
	Redundant
	// Aborted: the backtrack limit was hit before a conclusion.
	Aborted
)

func (o Outcome) String() string {
	switch o {
	case Detected:
		return "detected"
	case Redundant:
		return "redundant"
	case Aborted:
		return "aborted"
	}
	return "unknown"
}

// Pattern is a primary-input assignment: one value per input signal of the
// netlist, X where the value is a don't-care.
type Pattern map[gate.Sig]V

// Engine generates tests on one combinational netlist.
type Engine struct {
	n       *gate.Netlist
	order   []gate.Sig // levelized combinational order
	inputs  []gate.Sig
	outputs []gate.Sig

	good   []V
	faulty []V

	// MaxBacktracks bounds the search per fault (default 2000).
	MaxBacktracks int
}

// NewEngine prepares an engine. The netlist must be purely combinational.
func NewEngine(n *gate.Netlist) (*Engine, error) {
	for i := range n.Gates {
		if n.Gates[i].Kind == gate.DFF {
			return nil, fmt.Errorf("atpg: netlist has sequential cell at signal %d", i)
		}
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	order, err := levelize(n)
	if err != nil {
		return nil, err
	}
	var inputs []gate.Sig
	for i := range n.Gates {
		if n.Gates[i].Kind == gate.Input {
			inputs = append(inputs, gate.Sig(i))
		}
	}
	return &Engine{
		n:             n,
		order:         order,
		inputs:        inputs,
		outputs:       n.ObservedSignals(),
		good:          make([]V, n.NumSignals()),
		faulty:        make([]V, n.NumSignals()),
		MaxBacktracks: 2000,
	}, nil
}

// levelize re-derives a topological order (Input/Const are sources).
func levelize(n *gate.Netlist) ([]gate.Sig, error) {
	indeg := make([]int, n.NumSignals())
	fanout := make([][]gate.Sig, n.NumSignals())
	for i := range n.Gates {
		g := &n.Gates[i]
		for p := 0; p < g.Kind.NumInputs(); p++ {
			indeg[i]++
			fanout[g.In[p]] = append(fanout[g.In[p]], gate.Sig(i))
		}
	}
	var queue, order []gate.Sig
	for i := range n.Gates {
		if indeg[i] == 0 {
			queue = append(queue, gate.Sig(i))
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		order = append(order, s)
		for _, t := range fanout[s] {
			indeg[t]--
			if indeg[t] == 0 {
				queue = append(queue, t)
			}
		}
	}
	if len(order) != n.NumSignals() {
		return nil, fmt.Errorf("atpg: combinational cycle")
	}
	return order, nil
}

// eval3 evaluates one gate in three-valued logic from the given values,
// with the engine's current fault injected when machine is the faulty one.
func (e *Engine) eval3(vals []V, s gate.Sig, f *gate.FaultSite) V {
	g := &e.n.Gates[s]
	in := func(p int) V {
		v := vals[g.In[p]]
		if f != nil && f.Gate == s && int(f.Pin) == p+1 {
			v = vOf(f.Stuck)
		}
		return v
	}
	var out V
	switch g.Kind {
	case gate.Input:
		out = vals[s] // assigned externally
	case gate.Const0:
		out = L0
	case gate.Const1:
		out = L1
	case gate.Buf:
		out = in(0)
	case gate.Not:
		out = not3(in(0))
	case gate.And2:
		out = and3(in(0), in(1))
	case gate.Or2:
		out = or3(in(0), in(1))
	case gate.Nand2:
		out = not3(and3(in(0), in(1)))
	case gate.Nor2:
		out = not3(or3(in(0), in(1)))
	case gate.Xor2:
		out = xor3(in(0), in(1))
	case gate.Xnor2:
		out = not3(xor3(in(0), in(1)))
	case gate.Mux2:
		out = mux3(in(0), in(1), in(2))
	default:
		panic("atpg: unexpected kind")
	}
	if f != nil && f.Gate == s && f.Pin == 0 {
		out = vOf(f.Stuck)
	}
	return out
}

// imply forward-simulates good and faulty machines from the current
// primary-input assignment.
func (e *Engine) imply(f *gate.FaultSite) {
	for _, s := range e.order {
		if e.n.Gates[s].Kind == gate.Input {
			e.faulty[s] = e.good[s]
			if f != nil && f.Gate == s && f.Pin == 0 {
				e.faulty[s] = vOf(f.Stuck)
			}
			continue
		}
		e.good[s] = e.eval3(e.good, s, nil)
		e.faulty[s] = e.eval3(e.faulty, s, f)
	}
}

// isD reports whether signal s carries a fault effect (good != faulty,
// both assigned).
func (e *Engine) isD(s gate.Sig) bool {
	return e.good[s] != X && e.faulty[s] != X && e.good[s] != e.faulty[s]
}

// detectedAtOutput reports whether any observed output carries D.
func (e *Engine) detectedAtOutput() bool {
	for _, s := range e.outputs {
		if e.isD(s) {
			return true
		}
	}
	return false
}

// pinCarriesD reports whether input pin p of gate s carries a fault
// effect, accounting for an injected branch fault on that pin.
func (e *Engine) pinCarriesD(f gate.FaultSite, s gate.Sig, p int) bool {
	in := e.n.Gates[s].In[p]
	goodV := e.good[in]
	faultyV := e.faulty[in]
	if f.Gate == s && int(f.Pin) == p+1 {
		faultyV = vOf(f.Stuck)
	}
	return goodV != X && faultyV != X && goodV != faultyV
}

// dFrontier lists gates with an X composite output and a fault effect on
// some input; empty means the effect cannot advance.
func (e *Engine) dFrontier(f gate.FaultSite) []gate.Sig {
	var frontier []gate.Sig
	for _, s := range e.order {
		g := &e.n.Gates[s]
		if g.Kind == gate.Input || g.Kind == gate.Const0 || g.Kind == gate.Const1 {
			continue
		}
		if e.good[s] != X && e.faulty[s] != X {
			continue
		}
		for p := 0; p < g.Kind.NumInputs(); p++ {
			if e.pinCarriesD(f, s, p) {
				frontier = append(frontier, s)
				break
			}
		}
	}
	return frontier
}

// objectives lists candidate (signal, value) goals: fault activation if
// not yet activated, else X side inputs of every D-frontier gate at their
// non-controlling values.
func (e *Engine) objectives(f gate.FaultSite) [][2]int32 {
	site := faultSignal(e.n, f)
	if e.good[site] == X {
		return [][2]int32{{int32(site), int32(vOf(!f.Stuck))}}
	}
	var out [][2]int32
	for _, df := range e.dFrontier(f) {
		g := &e.n.Gates[df]
		for p := 0; p < g.Kind.NumInputs(); p++ {
			in := g.In[p]
			if e.good[in] == X {
				out = append(out, [2]int32{int32(in), int32(nonControlling(g.Kind, p))})
			}
		}
	}
	return out
}

// faultSignal is the signal whose good value must be set opposite the
// stuck value to activate the fault: the driven net for output faults, the
// driving net for input-pin (branch) faults.
func faultSignal(n *gate.Netlist, f gate.FaultSite) gate.Sig {
	if f.Pin == 0 {
		return f.Gate
	}
	return n.Gates[f.Gate].In[f.Pin-1]
}

// nonControlling is the value to apply on a side input so a fault effect
// passes through a gate of kind k (pin index for Mux2 select handling).
func nonControlling(k gate.Kind, pin int) V {
	switch k {
	case gate.And2, gate.Nand2:
		return L1
	case gate.Or2, gate.Nor2:
		return L0
	case gate.Mux2:
		if pin == 2 {
			// Either select value may propagate; pick 0 and let the search
			// backtrack to 1 when needed.
			return L0
		}
		return L0
	default: // XOR/XNOR/NOT/BUF: any value propagates
		return L0
	}
}

// backtrace maps an objective to an unassigned primary input assignment by
// walking backward through X-valued nets, accumulating inversion parity.
func (e *Engine) backtrace(s gate.Sig, v V) (gate.Sig, V, bool) {
	for {
		g := &e.n.Gates[s]
		if g.Kind == gate.Input {
			if e.good[s] != X {
				return 0, X, false
			}
			return s, v, true
		}
		switch g.Kind {
		case gate.Const0, gate.Const1:
			return 0, X, false
		case gate.Not, gate.Nand2, gate.Nor2, gate.Xnor2:
			v = not3(v)
		}
		next := gate.NoSig
		for p := 0; p < g.Kind.NumInputs(); p++ {
			if e.good[g.In[p]] == X {
				next = g.In[p]
				break
			}
		}
		if next == gate.NoSig {
			return 0, X, false
		}
		// XOR-family and mux value choice along the path is heuristic;
		// wrong choices are corrected by backtracking.
		s = next
	}
}

// decision is one stack entry of the PODEM search.
type decision struct {
	input   gate.Sig
	value   V
	flipped bool
}

// Generate attempts to find a test pattern for one stuck-at fault.
func (e *Engine) Generate(f gate.FaultSite) (Pattern, Outcome) {
	for i := range e.good {
		e.good[i] = X
		e.faulty[i] = X
	}
	var stack []decision
	backtracks := 0
	e.imply(&f)

	for {
		if e.detectedAtOutput() {
			p := make(Pattern, len(stack))
			for _, d := range stack {
				p[d.input] = e.good[d.input]
			}
			return p, Detected
		}

		site := faultSignal(e.n, f)
		activated := e.good[site] != X && e.good[site] == vOf(!f.Stuck)
		failed := false
		if e.good[site] != X && !activated {
			failed = true // fault site pinned to the stuck value
		}
		if !failed && activated && len(e.dFrontier(f)) == 0 && !e.detectedAtOutput() {
			failed = true // effect can no longer reach an output
		}

		if !failed {
			advanced := false
			for _, obj := range e.objectives(f) {
				if pi, pv, ok := e.backtrace(gate.Sig(obj[0]), V(obj[1])); ok {
					stack = append(stack, decision{input: pi, value: pv})
					e.good[pi] = pv
					e.imply(&f)
					advanced = true
					break
				}
			}
			if advanced {
				continue
			}
			failed = true
		}

		// Backtrack.
		for {
			if len(stack) == 0 {
				return nil, Redundant
			}
			d := &stack[len(stack)-1]
			if !d.flipped {
				d.flipped = true
				d.value = not3(d.value)
				e.good[d.input] = d.value
				backtracks++
				if backtracks > e.MaxBacktracks {
					return nil, Aborted
				}
				e.imply(&f)
				break
			}
			e.good[d.input] = X
			stack = stack[:len(stack)-1]
			e.imply(&f)
		}
	}
}

// Stats summarizes a generation run over a fault list.
type Stats struct {
	Detected  int
	Redundant int
	Aborted   int
	Patterns  []Pattern
}

// Coverage is the fraction of faults with generated tests, counting proven
// redundant faults out of the denominator (test efficiency).
func (s Stats) Coverage() float64 {
	den := s.Detected + s.Aborted
	if den == 0 {
		return 0
	}
	return 100 * float64(s.Detected) / float64(den)
}

// GenerateAll runs PODEM over a fault list, with fault dropping: each new
// pattern is fault-simulated (three-valued, X-filled as 0) against the
// remaining faults so covered faults skip generation.
func (e *Engine) GenerateAll(faults []gate.FaultSite) Stats {
	var st Stats
	dropped := make([]bool, len(faults))
	for i, f := range faults {
		if dropped[i] {
			st.Detected++
			continue
		}
		p, out := e.Generate(f)
		switch out {
		case Detected:
			st.Detected++
			st.Patterns = append(st.Patterns, p)
			for j := i + 1; j < len(faults); j++ {
				if !dropped[j] && e.patternDetects(p, faults[j]) {
					dropped[j] = true
				}
			}
		case Redundant:
			st.Redundant++
		case Aborted:
			st.Aborted++
		}
	}
	return st
}

// patternDetects fault-simulates one pattern (X inputs filled with 0)
// against one fault.
func (e *Engine) patternDetects(p Pattern, f gate.FaultSite) bool {
	for i := range e.good {
		e.good[i] = X
		e.faulty[i] = X
	}
	for _, in := range e.inputs {
		v, ok := p[in]
		if !ok || v == X {
			v = L0
		}
		e.good[in] = v
	}
	e.imply(&f)
	return e.detectedAtOutput()
}
