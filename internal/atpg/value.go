// Package atpg implements combinational test-pattern generation (PODEM)
// for single stuck-at faults on gate netlists. It is the structural-ATPG
// comparison point of the paper: Chen & Dey's methodology [6] extracts
// component tests with ATPG, while the paper's library of deterministic
// patterns exploits component regularity instead. The benches use this
// package to compare pattern counts and coverage per component.
//
// The engine works on purely combinational netlists (standalone datapath
// components). Good and faulty circuits are simulated side by side in
// three-valued logic; the classic D notation falls out as good != faulty.
package atpg

import "fmt"

// V is a three-valued logic level.
type V uint8

// Logic levels.
const (
	X  V = iota // unassigned / unknown
	L0          // logic 0
	L1          // logic 1
)

func (v V) String() string {
	switch v {
	case L0:
		return "0"
	case L1:
		return "1"
	case X:
		return "X"
	}
	return fmt.Sprintf("V(%d)", uint8(v))
}

// not3 is three-valued inversion.
func not3(a V) V {
	switch a {
	case L0:
		return L1
	case L1:
		return L0
	}
	return X
}

// and3 is three-valued AND.
func and3(a, b V) V {
	if a == L0 || b == L0 {
		return L0
	}
	if a == L1 && b == L1 {
		return L1
	}
	return X
}

// or3 is three-valued OR.
func or3(a, b V) V {
	if a == L1 || b == L1 {
		return L1
	}
	if a == L0 && b == L0 {
		return L0
	}
	return X
}

// xor3 is three-valued XOR.
func xor3(a, b V) V {
	if a == X || b == X {
		return X
	}
	if a == b {
		return L0
	}
	return L1
}

// mux3 is three-valued 2:1 selection (a0 when sel=0, a1 when sel=1).
func mux3(a0, a1, sel V) V {
	switch sel {
	case L0:
		return a0
	case L1:
		return a1
	}
	if a0 == a1 {
		return a0
	}
	return X
}

// vOf converts a boolean to a logic level.
func vOf(b bool) V {
	if b {
		return L1
	}
	return L0
}
