package tester

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestApplyArithmetic(t *testing.T) {
	c := Apply(1000, 66_000, 100, Profile{TesterMHz: 1, CoreMHz: 66})
	if math.Abs(c.DownloadSeconds-1e-3) > 1e-12 {
		t.Errorf("download = %v, want 1ms", c.DownloadSeconds)
	}
	if math.Abs(c.ExecuteSeconds-1e-3) > 1e-12 {
		t.Errorf("execute = %v, want 1ms", c.ExecuteSeconds)
	}
	if math.Abs(c.ReadbackSeconds-1e-4) > 1e-12 {
		t.Errorf("readback = %v, want 0.1ms", c.ReadbackSeconds)
	}
	if math.Abs(c.Total()-2.1e-3) > 1e-12 {
		t.Errorf("total = %v", c.Total())
	}
	if s := c.String(); !strings.Contains(s, "download") {
		t.Errorf("String: %q", s)
	}
}

func TestDownloadDominatesOnSlowTesters(t *testing.T) {
	// The Figure 1 argument: sweeping the tester down in speed, the
	// download share must rise monotonically toward 1.
	costs := SweepTesterMHz(1000, 4000, 200, 66, []float64{100, 50, 20, 10, 5, 1})
	prev := -1.0
	for i, c := range costs {
		share := c.DownloadShare()
		if share <= prev {
			t.Errorf("share not increasing at step %d: %v <= %v", i, share, prev)
		}
		prev = share
	}
	if costs[len(costs)-1].DownloadShare() < 0.9 {
		t.Errorf("1 MHz tester share = %v, expected download-dominated", prev)
	}
}

func TestCostProperties(t *testing.T) {
	check := func(words uint16, cycles uint32, resp uint16) bool {
		c := Apply(int(words), uint64(cycles), int(resp), DefaultProfile)
		if c.DownloadSeconds < 0 || c.ExecuteSeconds < 0 || c.ReadbackSeconds < 0 {
			return false
		}
		share := c.DownloadShare()
		return share >= 0 && share <= 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestApplyPanicsOnBadProfile(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on zero-rate profile")
		}
	}()
	Apply(1, 1, 1, Profile{})
}
