// Package tester models the test-application cost of software-based
// self-testing (Figure 1 and Section 1 of the paper): the test program and
// data are downloaded into on-chip memory at the low frequency of the
// external tester, then executed at full processor speed, and finally the
// responses are read back by the tester. The download term dominates total
// test time on low-cost testers, which is why small test programs — the
// methodology's first objective — directly reduce test cost.
package tester

import "fmt"

// Profile describes a tester/core pairing.
type Profile struct {
	// TesterMHz is the external tester's transfer rate in million words
	// per second (one 32-bit word per tester cycle).
	TesterMHz float64
	// CoreMHz is the processor clock in MHz (the paper's synthesized core
	// runs at 66 MHz).
	CoreMHz float64
}

// DefaultProfile matches the paper's setup: a slow external tester and the
// 66 MHz synthesized Plasma core.
var DefaultProfile = Profile{TesterMHz: 10, CoreMHz: 66}

// Cost breaks down the test-application time of one self-test run.
type Cost struct {
	// DownloadSeconds is the time to load the program and test data.
	DownloadSeconds float64
	// ExecuteSeconds is the self-test execution time at core speed.
	ExecuteSeconds float64
	// ReadbackSeconds is the time to read the response region back out.
	ReadbackSeconds float64
}

// Total is the end-to-end test application time.
func (c Cost) Total() float64 {
	return c.DownloadSeconds + c.ExecuteSeconds + c.ReadbackSeconds
}

// DownloadShare is the fraction of total time spent on the tester link.
func (c Cost) DownloadShare() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return (c.DownloadSeconds + c.ReadbackSeconds) / t
}

func (c Cost) String() string {
	return fmt.Sprintf("download %.1fus + execute %.1fus + readback %.1fus = %.1fus (%.0f%% on tester link)",
		c.DownloadSeconds*1e6, c.ExecuteSeconds*1e6, c.ReadbackSeconds*1e6,
		c.Total()*1e6, c.DownloadShare()*100)
}

// Apply computes the cost of a self-test program of the given size (words,
// including data), execution length (core cycles) and response size.
func Apply(words int, cycles uint64, respWords int, p Profile) Cost {
	if p.TesterMHz <= 0 || p.CoreMHz <= 0 {
		panic("tester: profile rates must be positive")
	}
	return Cost{
		DownloadSeconds: float64(words) / (p.TesterMHz * 1e6),
		ExecuteSeconds:  float64(cycles) / (p.CoreMHz * 1e6),
		ReadbackSeconds: float64(respWords) / (p.TesterMHz * 1e6),
	}
}

// SweepTesterMHz evaluates the cost at several tester speeds, the Figure 1
// resource-partitioning argument: as the tester slows down, download time
// dominates and program size becomes the primary cost driver.
func SweepTesterMHz(words int, cycles uint64, respWords int, coreMHz float64, testerMHz []float64) []Cost {
	out := make([]Cost, len(testerMHz))
	for i, t := range testerMHz {
		out[i] = Apply(words, cycles, respWords, Profile{TesterMHz: t, CoreMHz: coreMHz})
	}
	return out
}
