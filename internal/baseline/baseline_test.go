package baseline

import (
	"testing"

	"repro/internal/plasma"
	"repro/internal/sim"
	"repro/internal/synth"
)

func TestLFSRRefPeriodAndSpread(t *testing.T) {
	// The LFSR must not get stuck and must visit many distinct states.
	seen := map[uint32]bool{}
	s := uint32(0xACE1ACE1)
	for i := 0; i < 100000; i++ {
		if s == 0 {
			t.Fatal("LFSR collapsed to zero")
		}
		seen[s] = true
		s = LFSRRef(s)
	}
	if len(seen) < 99000 {
		t.Errorf("LFSR revisited states early: %d distinct in 100k steps", len(seen))
	}
}

func TestGenerateValidatesConfig(t *testing.T) {
	if _, err := Generate(Config{Rounds: 0, Seeds: []uint32{1}}); err == nil {
		t.Error("accepted zero rounds")
	}
	if _, err := Generate(Config{Rounds: 4}); err == nil {
		t.Error("accepted empty seeds")
	}
}

func TestGenerateRunsAndScales(t *testing.T) {
	p16, err := Generate(DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	p64, err := Generate(DefaultConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	// Program size is (nearly) constant: only the seed table and counter
	// change; execution scales with the pattern count.
	if diff := p64.Words - p16.Words; diff < -2 || diff > 2 {
		t.Errorf("program size should not scale with rounds: %d vs %d words", p16.Words, p64.Words)
	}
	if p64.Cycles < 3*p16.Cycles {
		t.Errorf("cycles did not scale with rounds: %d vs %d", p16.Cycles, p64.Cycles)
	}
}

func TestLFSRProgramMatchesReference(t *testing.T) {
	// The in-program LFSR must generate the reference sequence: run one
	// round on the ISS and check the final state register.
	cfg := Config{Seeds: []uint32{0xACE1ACE1}, Rounds: 3, RespBase: 0x100000}
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mem := sim.NewMemory()
	mem.LoadProgram(p.Program)
	iss := sim.New(mem, 0)
	if halted, err := iss.Run(1_000_000); err != nil || !halted {
		t.Fatalf("run failed: %v", err)
	}
	// Each round advances the LFSR twice per unrolled register variant.
	want := uint32(0xACE1ACE1)
	for i := 0; i < cfg.Rounds*8; i++ {
		want = LFSRRef(want)
	}
	if got := iss.Reg[16]; got != want { // $s0 holds the LFSR state
		t.Errorf("LFSR state after program = %#x, want %#x", got, want)
	}
}

func TestBaselineRunsOnGateCPU(t *testing.T) {
	cpu, err := plasma.Build(synth.NativeLib{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Generate(DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	issMem := sim.NewMemory()
	issMem.LoadProgram(p.Program)
	iss := sim.New(issMem, 0)
	if halted, err := iss.Run(5_000_000); err != nil || !halted {
		t.Fatalf("ISS run failed: %v", err)
	}
	m, halted, err := plasma.RunProgram(cpu, p.Program, iss.Cycle+100, false)
	if err != nil {
		t.Fatal(err)
	}
	if !halted {
		t.Fatal("gate CPU did not halt on baseline program")
	}
	if eq, diff := issMem.Equal(m.Mem); !eq {
		t.Fatalf("gate/ISS memory mismatch: %s", diff)
	}
}
