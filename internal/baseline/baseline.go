// Package baseline implements the comparison point of the paper's Section
// 1/4 cost argument: a pseudorandom software-based self-test in the style
// of Chen & Dey [6]. Self-test signatures (LFSR seed + round count) are
// downloaded from the tester; an on-chip software-emulated LFSR expands
// them into pseudorandom operand patterns that are applied to the
// processor's functional units, with responses compacted and stored.
//
// Its cost profile is the paper's foil: comparable (or lower) fault
// coverage than the deterministic SBST program, at a multiple of the
// execution cycles, growing with the pattern count.
package baseline

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/sim"
)

// Config parameterizes the pseudorandom self-test program.
type Config struct {
	// Seeds are the per-signature LFSR seeds (one expansion loop each).
	Seeds []uint32
	// Rounds is the number of pseudorandom pattern rounds per seed.
	Rounds int
	// WithMulDiv includes multiply/divide in the sampled operation mix
	// (dominates execution time, as sequential units do).
	WithMulDiv bool
	// RespBase is the response region base address.
	RespBase uint32
}

// DefaultConfig returns the configuration used by the paper-comparison
// benches: four signatures, multiply included.
func DefaultConfig(rounds int) Config {
	return Config{
		Seeds:      []uint32{0xACE1ACE1, 0x12345678, 0xDEADBEEF, 0x0BADF00D},
		Rounds:     rounds,
		WithMulDiv: true,
		RespBase:   0x00100000,
	}
}

// Program is an assembled pseudorandom self-test with its measured cost.
type Program struct {
	Config  Config
	Source  string
	Program *asm.Program
	Words   int
	Cycles  uint64
}

// lfsrPoly is the feedback polynomial of the software LFSR (a maximal
// 32-bit Galois LFSR tap set).
const lfsrPoly = 0x80200003

// Generate emits, assembles and characterizes the pseudorandom self-test.
func Generate(cfg Config) (*Program, error) {
	if cfg.Rounds <= 0 || len(cfg.Seeds) == 0 {
		return nil, fmt.Errorf("baseline: need at least one seed and positive rounds")
	}
	src := buildSource(cfg)
	prog, err := asm.Assemble(src, 0)
	if err != nil {
		return nil, fmt.Errorf("baseline: program failed to assemble: %w", err)
	}
	mem := sim.NewMemory()
	mem.LoadProgram(prog)
	iss := sim.New(mem, 0)
	halted, err := iss.Run(50_000_000)
	if err != nil {
		return nil, fmt.Errorf("baseline: program crashed: %w", err)
	}
	if !halted {
		return nil, fmt.Errorf("baseline: program did not halt")
	}
	return &Program{
		Config:  cfg,
		Source:  src,
		Program: prog,
		Words:   prog.SizeWords(),
		Cycles:  iss.Cycle,
	}, nil
}

// GateCycles is the golden-capture length for fault simulation.
func (p *Program) GateCycles() int { return int(p.Cycles) + 16 }

// buildSource emits the expansion and application loops.
//
// Register use: $k0 response pointer, $s0 LFSR state, $s1 round counter,
// $s2 response signature, $t8 seed pointer, $t9 seed counter, $t0/$t1
// pseudorandom operands, $t2.. results.
func buildSource(cfg Config) string {
	var sb strings.Builder
	w := func(format string, args ...interface{}) {
		fmt.Fprintf(&sb, format+"\n", args...)
	}
	w("# Pseudorandom software-based self-test (Chen & Dey style baseline)")
	w("\tlui $k0, %#x", cfg.RespBase>>16)
	if lo := cfg.RespBase & 0xFFFF; lo != 0 {
		w("\tori $k0, $k0, %#x", lo)
	}
	w("\tla $t8, seeds")
	w("\tli $t9, %d", len(cfg.Seeds))
	w("outer:")
	w("\tlw $s0, 0($t8)")
	w("\tli $s1, %d", cfg.Rounds)
	w("\tli $s2, 0")
	w("inner:")
	// Pseudorandom register allocation, in the spirit of instruction-
	// randomization self-test [3]: the loop body is unrolled into variants
	// whose operand/result registers rotate through most of the register
	// file, so the pseudorandom operands reach more than a fixed handful
	// of registers. Registers 16-18 and 24-27 are the loop machinery.
	pool := []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 19, 20, 21, 22, 23, 28, 29, 30, 31}
	pick := func(i int) string { return fmt.Sprintf("$%d", pool[i%len(pool)]) }
	for v := 0; v < 4; v++ {
		a, b := pick(5*v), pick(5*v+1)
		scratch := pick(5*v + 2)
		// Two LFSR steps produce the operands. Branchless Galois step:
		// mask = state >> 31 (arithmetic); state = (state<<1) ^ (mask & poly).
		for _, dst := range []string{a, b} {
			w("\tsra %s, $s0, 31", scratch)
			w("\tli %s, %#x", dst, uint32(lfsrPoly))
			w("\tand %s, %s, %s", scratch, scratch, dst)
			w("\tsll $s0, $s0, 1")
			w("\txor $s0, $s0, %s", scratch)
			w("\tmove %s, $s0", dst)
		}
		// Apply the operation mix, folding results into the signature.
		ops := []string{"addu", "subu", "and", "or", "xor", "nor", "slt", "sltu", "sllv", "srlv", "srav"}
		for oi, op := range ops {
			d := pick(5*v + 3 + oi)
			w("\t%s %s, %s, %s", op, d, a, b)
			w("\txor $s2, $s2, %s", d)
		}
		if cfg.WithMulDiv && v%2 == 0 {
			d := pick(5*v + 4)
			w("\tmultu %s, %s", a, b)
			w("\tmflo %s", d)
			w("\txor $s2, $s2, %s", d)
			w("\tmfhi %s", d)
			w("\txor $s2, $s2, %s", d)
			w("\tori %s, %s, 1", d, b)
			w("\tdivu %s, %s", a, d)
			w("\tmflo %s", d)
			w("\txor $s2, $s2, %s", d)
		}
	}
	// One response store per round keeps fault effects observable.
	w("\tsw $s2, 0($k0)")
	w("\taddiu $s1, $s1, -1")
	w("\tbne $s1, $zero, inner")
	w("\tnop")
	w("\tsw $s2, 4($k0)")
	w("\taddiu $k0, $k0, 8")
	w("\taddiu $t8, $t8, 4")
	w("\taddiu $t9, $t9, -1")
	w("\tbne $t9, $zero, outer")
	w("\tnop")
	w("halt:")
	w("\tj halt")
	w("\tnop")
	w("seeds:")
	for _, s := range cfg.Seeds {
		w("\t.word %#x", s)
	}
	return sb.String()
}

// LFSRRef is the software reference of the program's LFSR step, for tests.
func LFSRRef(state uint32) uint32 {
	var mask uint32
	if state>>31 != 0 {
		mask = lfsrPoly
	}
	return state<<1 ^ mask
}
