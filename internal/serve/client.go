package serve

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/plasma"
	"repro/internal/shard"
)

// Client is one connection to a grading server. Do is serialized per
// client (the protocol is one request in flight per connection); open one
// client per goroutine for concurrent grading.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *shard.Encoder
	dec  *shard.Decoder
	bw   *bufio.Writer
	info Info
	seq  uint64

	verifiedNetlist map[*plasma.CPU]bool
	universes       []universeMemo
	samples         map[sampleKey]*sampleMemo
}

// universeMemo caches fault.UniverseHash per distinct fault list, keyed
// by backing-array identity: grading loops pass the same universe slice
// on every request, and rehashing thousands of faults per request would
// dominate a short grade.
type universeMemo struct {
	ptr  *fault.Fault
	n    int
	hash string
}

// sampleMemo caches one deterministic SampleFaults reconstruction (and
// its hash) per (universe, sample, seed): the client must materialize the
// graded list locally to build the Result, but the sampling is a pure
// function of this key, so repeat requests reuse one copy.
type sampleKey struct {
	universe string
	sample   int
	seed     int64
}

type sampleMemo struct {
	faults []fault.Fault
	hash   string
}

// Dial connects to a grading server and reads its Info handshake.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:            conn,
		bw:              bufio.NewWriter(conn),
		dec:             shard.NewDecoder(bufio.NewReader(conn)),
		verifiedNetlist: make(map[*plasma.CPU]bool),
		samples:         make(map[sampleKey]*sampleMemo),
	}
	c.enc = shard.NewEncoder(c.bw)
	if err := c.dec.ReadFrame(&c.info); err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: handshake: %w", err)
	}
	return c, nil
}

// Info returns the server's handshake frame.
func (c *Client) Info() Info { return c.info }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one request and reads its response. A transport error poisons
// the connection; a server-side grading failure arrives as resp.Err with
// the connection still usable.
func (c *Client) Do(req *Request, resp *Response) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	req.Seq = c.seq
	if err := c.enc.WriteFrame(req); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	*resp = Response{}
	if err := c.dec.ReadFrame(resp); err != nil {
		return err
	}
	if resp.Seq != req.Seq {
		return fmt.Errorf("serve: response for request %d, want %d", resp.Seq, req.Seq)
	}
	return nil
}

// Grader adapts the client to the bench.Env.Grader hook signature: every
// fault simulation in an Env grades through the daemon instead of
// in-process, bit-identical to fault.Simulate. The golden must be
// self-describing (captured with program recording, as all goldens now
// are); the server re-derives its own golden and plan from the program
// identity, so only the program and (when not the server's universe) the
// fault list travel on the wire.
func (c *Client) Grader() func(cpu *plasma.CPU, golden *plasma.Golden, faults []fault.Fault, opt fault.Options) (*fault.Result, error) {
	return func(cpu *plasma.CPU, golden *plasma.Golden, faults []fault.Fault, opt fault.Options) (*fault.Result, error) {
		return c.Grade(cpu, golden, faults, opt)
	}
}

// Grade grades one golden's program remotely, returning a fault.Result
// bit-identical to in-process fault.Simulate(cpu, golden, faults, opt).
func (c *Client) Grade(cpu *plasma.CPU, golden *plasma.Golden, faults []fault.Fault, opt fault.Options) (*fault.Result, error) {
	if len(golden.ProgWords) == 0 {
		return nil, fmt.Errorf("serve: golden carries no program image; cannot grade remotely")
	}
	if opt.Engine != c.info.Engine {
		return nil, fmt.Errorf("serve: server grades with engine %d, request wants %d", c.info.Engine, opt.Engine)
	}
	if err := c.verifyNetlist(cpu); err != nil {
		return nil, err
	}
	req := Request{
		ProgOrigin: golden.ProgOrigin,
		ProgWords:  golden.ProgWords,
		Cycles:     golden.Cycles,
		Sample:     opt.Sample,
		Seed:       opt.Seed,
		LaneWords:  opt.LaneWords,
	}
	// The hot path sends no faults: a list matching the server's universe
	// is elided and re-derived server-side from the shared netlist.
	if c.universeHash(faults) != c.info.UniverseHash {
		req.Faults = faults
	}
	var resp Response
	if err := c.Do(&req, &resp); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("serve: server: %s", resp.Err)
	}
	graded, gradedHash := faults, c.universeHash(faults)
	if opt.Sample > 0 {
		graded, gradedHash = c.sampled(faults, opt.Sample, opt.Seed)
	}
	if gradedHash != resp.UniverseHash {
		return nil, fmt.Errorf("serve: graded universe %s, want %s", resp.UniverseHash, gradedHash)
	}
	if len(resp.DetectedAt) != len(graded) || len(resp.SignatureGroups) != len(graded) {
		return nil, fmt.Errorf("serve: %d/%d outcomes for %d faults",
			len(resp.DetectedAt), len(resp.SignatureGroups), len(graded))
	}
	if opt.CollectInto != nil {
		opt.CollectInto.Add(&resp.Stats)
	}
	return &fault.Result{
		Faults:          graded,
		DetectedAt:      resp.DetectedAt,
		SignatureGroups: resp.SignatureGroups,
		Cycles:          resp.Cycles,
		Stats:           resp.Stats,
	}, nil
}

// universeHash returns fault.UniverseHash(faults), memoized by backing
// array so steady-state requests don't rehash an unchanged universe.
func (c *Client) universeHash(faults []fault.Fault) string {
	var ptr *fault.Fault
	if len(faults) > 0 {
		ptr = &faults[0]
	}
	c.mu.Lock()
	for i := range c.universes {
		if m := &c.universes[i]; m.ptr == ptr && m.n == len(faults) {
			c.mu.Unlock()
			return m.hash
		}
	}
	c.mu.Unlock()
	h := fault.UniverseHash(faults)
	c.mu.Lock()
	c.universes = append(c.universes, universeMemo{ptr: ptr, n: len(faults), hash: h})
	c.mu.Unlock()
	return h
}

// sampled returns the deterministic graded subset (and its hash) for a
// sampling request, memoized per (universe, sample, seed).
func (c *Client) sampled(faults []fault.Fault, sample int, seed int64) ([]fault.Fault, string) {
	key := sampleKey{universe: c.universeHash(faults), sample: sample, seed: seed}
	c.mu.Lock()
	m := c.samples[key]
	c.mu.Unlock()
	if m != nil {
		return m.faults, m.hash
	}
	graded := fault.SampleFaults(faults, sample, seed)
	m = &sampleMemo{faults: graded, hash: fault.UniverseHash(graded)}
	c.mu.Lock()
	c.samples[key] = m
	c.mu.Unlock()
	return m.faults, m.hash
}

// verifyNetlist checks (once per CPU value) that the local core is the
// core the server grades on, so a mismatched daemon fails loudly instead
// of returning coverage for a different netlist.
func (c *Client) verifyNetlist(cpu *plasma.CPU) error {
	c.mu.Lock()
	ok := c.verifiedNetlist[cpu]
	c.mu.Unlock()
	if ok {
		return nil
	}
	h, err := cache.NetlistHash(cpu.Netlist)
	if err != nil {
		return err
	}
	if h != c.info.NetlistHash {
		return fmt.Errorf("serve: server netlist %.12s differs from local %.12s", c.info.NetlistHash, h)
	}
	c.mu.Lock()
	c.verifiedNetlist[cpu] = true
	c.mu.Unlock()
	return nil
}
