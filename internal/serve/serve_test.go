package serve

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/plasma"
	"repro/internal/shard"
	"repro/internal/synth"
)

// TestMain doubles this test binary as the daemon under test: with
// SBST_SERVE_DAEMON set, the process runs RunDaemon (flags from the
// variable's value) instead of the test suite, so the signal-shutdown test
// exercises the real process lifecycle — flags, listener, SIGTERM, drain,
// stats flush — against a genuine subprocess.
func TestMain(m *testing.M) {
	if args := os.Getenv("SBST_SERVE_DAEMON"); args != "" {
		os.Exit(RunDaemon(strings.Fields(args), os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

var (
	cpuOnce sync.Once
	cpuVal  *plasma.CPU
	cpuErr  error
)

func testCPU(t testing.TB) *plasma.CPU {
	t.Helper()
	cpuOnce.Do(func() { cpuVal, cpuErr = plasma.Build(synth.NativeLib{}) })
	if cpuErr != nil {
		t.Fatal(cpuErr)
	}
	return cpuVal
}

// Two small programs with different control flow, so concurrent clients
// grading "distinct programs" exercise distinct goldens and plans.
const progLoop = `
	li $t0, 0x1000
	li $t1, 0x5ea1
	li $s0, 6
lp:	sw $t1, 0($t0)
	lw $t2, 0($t0)
	addu $t1, $t1, $t2
	xor $t3, $t1, $t2
	sw $t3, 4($t0)
	addiu $t0, $t0, 8
	addiu $s0, $s0, -1
	bne $s0, $zero, lp
	nop
h:	j h
	nop
`

const progAlu = `
	li $t0, 0x7f3
	li $t1, 0x1c5
	and $t2, $t0, $t1
	or  $t3, $t0, $t1
	nor $t4, $t2, $t3
	sllv $t5, $t3, $t1
	sw $t2, 0x100($zero)
	sw $t4, 0x104($zero)
	sw $t5, 0x108($zero)
h:	j h
	nop
`

const testCycles = 300

func assemble(t testing.TB, src string) *asm.Program {
	t.Helper()
	prog, err := asm.Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func newTestServer(t testing.TB, pool int) *Server {
	t.Helper()
	srv, err := NewServer(Config{CPU: testCPU(t), Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// reference grades the program in-process with fault.Simulate, the ground
// truth every served result must match bit for bit.
func reference(t testing.TB, src string, opt fault.Options) (*plasma.Golden, *fault.Result) {
	t.Helper()
	cpu := testCPU(t)
	g, err := plasma.CaptureGolden(cpu, assemble(t, src), testCycles)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fault.Simulate(cpu, g, fault.Universe(cpu.Netlist), opt)
	if err != nil {
		t.Fatal(err)
	}
	return g, res
}

func requireSameOutcomes(t *testing.T, label string, got, want *fault.Result) {
	t.Helper()
	if len(got.DetectedAt) != len(want.DetectedAt) {
		t.Fatalf("%s: %d outcomes, want %d", label, len(got.DetectedAt), len(want.DetectedAt))
	}
	for i := range want.DetectedAt {
		if got.DetectedAt[i] != want.DetectedAt[i] || got.SignatureGroups[i] != want.SignatureGroups[i] {
			t.Fatalf("%s: fault %d: served (%d, %d) vs Simulate (%d, %d)", label, i,
				got.DetectedAt[i], got.SignatureGroups[i], want.DetectedAt[i], want.SignatureGroups[i])
		}
	}
	if got.Cycles != want.Cycles {
		t.Fatalf("%s: cycles %d, want %d", label, got.Cycles, want.Cycles)
	}
}

func startServer(t *testing.T, srv *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		if err := srv.Shutdown(5 * time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return ln.Addr().String()
}

// TestGradeMemoizesAndMatches drives Server.Grade in-process: repeated
// grades of one program must capture the golden and build the plan exactly
// once, and every response must be bit-identical to fault.Simulate.
func TestGradeMemoizesAndMatches(t *testing.T) {
	opt := fault.Options{Sample: 384, Seed: 1, Workers: 1}
	g, want := reference(t, progLoop, opt)
	srv := newTestServer(t, 1)
	req := Request{
		ProgOrigin: g.ProgOrigin,
		ProgWords:  g.ProgWords,
		Cycles:     testCycles,
		Sample:     opt.Sample,
		Seed:       opt.Seed,
	}
	var resp Response
	for i := 0; i < 3; i++ {
		if err := srv.Grade(&req, &resp); err != nil {
			t.Fatal(err)
		}
		got := &fault.Result{
			Faults:          want.Faults,
			DetectedAt:      resp.DetectedAt,
			SignatureGroups: resp.SignatureGroups,
			Cycles:          resp.Cycles,
		}
		requireSameOutcomes(t, fmt.Sprintf("grade %d", i), got, want)
		if resp.UniverseHash != fault.UniverseHash(want.Faults) {
			t.Fatalf("grade %d: universe hash mismatch", i)
		}
	}
	st := srv.Stats()
	if st.GoldenCaptures != 1 || st.GoldenHits != 2 {
		t.Fatalf("golden memo: %d captures, %d hits; want 1, 2", st.GoldenCaptures, st.GoldenHits)
	}
	if st.PlanBuilds != 1 || st.PlanHits != 2 {
		t.Fatalf("plan memo: %d builds, %d hits; want 1, 2", st.PlanBuilds, st.PlanHits)
	}
	if st.WarmGrades < 2 {
		t.Fatalf("WarmGrades = %d; repeated grades must reuse warm simulators", st.WarmGrades)
	}
	if st.Requests != 3 || st.Errors != 0 {
		t.Fatalf("requests %d / errors %d, want 3 / 0", st.Requests, st.Errors)
	}
}

// TestServedConcurrentBitIdentical is the acceptance gate: concurrent
// clients grading distinct programs over TCP, every response bit-identical
// to sequential in-process fault.Simulate, race-clean (check.sh runs this
// package under -race).
func TestServedConcurrentBitIdentical(t *testing.T) {
	opt := fault.Options{Sample: 256, Seed: 1, Workers: 1}
	if testing.Short() {
		opt.Sample = 96
	}
	gLoop, wantLoop := reference(t, progLoop, opt)
	gAlu, wantAlu := reference(t, progAlu, opt)
	cpu := testCPU(t)
	universe := fault.Universe(cpu.Netlist)

	srv := newTestServer(t, 2)
	addr := startServer(t, srv)

	const clients = 6
	const rounds = 3
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs[i] = err
				return
			}
			defer cl.Close()
			g, want := gLoop, wantLoop
			if i%2 == 1 {
				g, want = gAlu, wantAlu
			}
			for r := 0; r < rounds; r++ {
				res, err := cl.Grade(cpu, g, universe, opt)
				if err != nil {
					errs[i] = fmt.Errorf("round %d: %w", r, err)
					return
				}
				for j := range want.DetectedAt {
					if res.DetectedAt[j] != want.DetectedAt[j] || res.SignatureGroups[j] != want.SignatureGroups[j] {
						errs[i] = fmt.Errorf("round %d fault %d: served (%d, %d) vs Simulate (%d, %d)", r, j,
							res.DetectedAt[j], res.SignatureGroups[j], want.DetectedAt[j], want.SignatureGroups[j])
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	st := srv.Stats()
	if st.GoldenCaptures != 2 {
		t.Fatalf("%d golden captures for 2 distinct programs", st.GoldenCaptures)
	}
	if st.Requests != clients*rounds {
		t.Fatalf("%d requests served, want %d", st.Requests, clients*rounds)
	}
}

// TestServedExplicitFaultSubset covers the non-universe path the periodic
// composition harness uses: an explicit fault subset rides in the request
// and outcomes align to it.
func TestServedExplicitFaultSubset(t *testing.T) {
	cpu := testCPU(t)
	g, err := plasma.CaptureGolden(cpu, assemble(t, progAlu), testCycles)
	if err != nil {
		t.Fatal(err)
	}
	subset := fault.SampleFaults(fault.Universe(cpu.Netlist), 200, 7)
	opt := fault.Options{Workers: 1}
	want, err := fault.Simulate(cpu, g, subset, opt)
	if err != nil {
		t.Fatal(err)
	}

	srv := newTestServer(t, 1)
	addr := startServer(t, srv)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.Grade(cpu, g, subset, opt)
	if err != nil {
		t.Fatal(err)
	}
	requireSameOutcomes(t, "subset", res, want)
}

// TestServerErrorKeepsConnection: a bad request gets an error response and
// the connection keeps serving.
func TestServerErrorKeepsConnection(t *testing.T) {
	srv := newTestServer(t, 1)
	addr := startServer(t, srv)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var resp Response
	if err := cl.Do(&Request{Cycles: 0}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Fatal("cycle-less request did not fail")
	}
	g, err := plasma.CaptureGolden(testCPU(t), assemble(t, progAlu), testCycles)
	if err != nil {
		t.Fatal(err)
	}
	opt := fault.Options{Sample: 64, Seed: 1, Workers: 1}
	if _, err := cl.Grade(testCPU(t), g, fault.Universe(testCPU(t).Netlist), opt); err != nil {
		t.Fatalf("connection unusable after an error response: %v", err)
	}
	if st := srv.Stats(); st.Errors != 1 {
		t.Fatalf("errors = %d, want 1", st.Errors)
	}
}

// TestShutdownDrainsInFlight: a request being graded when Shutdown starts
// still gets its response; new connections are refused afterwards.
func TestShutdownDrainsInFlight(t *testing.T) {
	srv := newTestServer(t, 1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	var info Info
	if err := shard.ReadFrame(br, &info); err != nil {
		t.Fatal(err)
	}
	g, err := plasma.CaptureGolden(testCPU(t), assemble(t, progLoop), testCycles)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Seq: 1, ProgOrigin: g.ProgOrigin, ProgWords: g.ProgWords,
		Cycles: testCycles, Sample: 512, Seed: 1}
	bw := bufio.NewWriter(conn)
	if err := shard.WriteFrame(bw, &req); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	// Wait until the server has started grading the request, then shut
	// down mid-grade: the drain must deliver this response.
	for srv.Stats().Requests == 0 {
		time.Sleep(time.Millisecond)
	}
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(30 * time.Second) }()
	var resp Response
	if err := shard.ReadFrame(br, &resp); err != nil {
		t.Fatalf("in-flight response lost during drain: %v", err)
	}
	if resp.Err != "" || resp.Seq != 1 {
		t.Fatalf("drained response: seq %d err %q", resp.Seq, resp.Err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if _, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestDaemonSignalShutdown runs the real daemon lifecycle in a subprocess
// (this test binary re-executed via TestMain): readiness line, one served
// grade, SIGTERM, graceful exit 0, -stats flush on the way out.
func TestDaemonSignalShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess daemon test")
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "SBST_SERVE_DAEMON=-addr 127.0.0.1:0 -pool 1 -drain 30s -stats")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	out := bufio.NewReader(stdout)
	line, err := out.ReadString('\n')
	if err != nil {
		t.Fatalf("no readiness line: %v", err)
	}
	addr := strings.TrimSpace(strings.TrimPrefix(line, "listening on "))
	if addr == line {
		t.Fatalf("unexpected readiness line %q", line)
	}

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cpu := testCPU(t)
	if cl.Info().NetlistHash == "" || cl.Info().FaultCount == 0 {
		t.Fatalf("bad handshake: %+v", cl.Info())
	}
	g, err := plasma.CaptureGolden(cpu, assemble(t, progAlu), testCycles)
	if err != nil {
		t.Fatal(err)
	}
	opt := fault.Options{Sample: 128, Seed: 1, Workers: 1}
	want, err := fault.Simulate(cpu, g, fault.Universe(cpu.Netlist), opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Grade(cpu, g, fault.Universe(cpu.Netlist), opt)
	if err != nil {
		t.Fatal(err)
	}
	requireSameOutcomes(t, "daemon", res, want)

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Drain stdout to EOF before Wait: Wait closes the pipe and would race
	// with reading the stats flush.
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := out.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v", err)
	}
	stats := b.String()
	for _, want := range []string{"serving statistics", "simd=", "requests", "1 served", "mean latency"} {
		if !strings.Contains(stats, want) {
			t.Fatalf("stats flush missing %q in:\n%s", want, stats)
		}
	}
}

// TestServerDelegatesToRemoteHosts arms distributed delegation: the
// server coordinates two remote worker hosts (real TCP transport, each
// with its own artifact cache) instead of grading on the local warm
// pool. Responses stay bit-identical to fault.Simulate, and the dist
// counters record the delegation and the one-time artifact replication.
func TestServerDelegatesToRemoteHosts(t *testing.T) {
	var hosts []shard.HostSpec
	for i := 0; i < 2; i++ {
		c, err := cache.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		h := shard.NewHost(c)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go h.Serve(ln)
		hosts = append(hosts, shard.HostSpec{Addr: ln.Addr().String()})
	}
	opt := fault.Options{Sample: 384, Seed: 1}
	g, want := reference(t, progLoop, opt)
	srv, err := NewServer(Config{CPU: testCPU(t), Pool: 1, Hosts: hosts, DistMinFaults: 1})
	if err != nil {
		t.Fatal(err)
	}
	req := Request{
		ProgOrigin: g.ProgOrigin,
		ProgWords:  g.ProgWords,
		Cycles:     testCycles,
		Sample:     opt.Sample,
		Seed:       opt.Seed,
	}
	var resp Response
	for i := 0; i < 2; i++ {
		if err := srv.Grade(&req, &resp); err != nil {
			t.Fatal(err)
		}
		got := &fault.Result{
			Faults:          want.Faults,
			DetectedAt:      resp.DetectedAt,
			SignatureGroups: resp.SignatureGroups,
			Cycles:          resp.Cycles,
		}
		requireSameOutcomes(t, fmt.Sprintf("dist grade %d", i), got, want)
		if resp.UniverseHash != fault.UniverseHash(want.Faults) {
			t.Fatalf("dist grade %d: universe hash mismatch", i)
		}
	}
	st := srv.Stats()
	if st.DistGrades != 2 {
		t.Fatalf("DistGrades = %d, want 2", st.DistGrades)
	}
	if st.DistShipBytes <= 0 {
		t.Fatal("delegation shipped no artifact bytes to fresh worker caches")
	}
	if resp.Stats.DistHosts != 2 {
		t.Fatalf("response DistHosts = %d, want 2", resp.Stats.DistHosts)
	}

	// A tiny explicit fault subset stays under DistMinFaults and grades
	// on the local pool — the delegation threshold is honored.
	srv2, err := NewServer(Config{CPU: testCPU(t), Pool: 1, Hosts: hosts, DistMinFaults: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.Grade(&req, &resp); err != nil {
		t.Fatal(err)
	}
	if st := srv2.Stats(); st.DistGrades != 0 {
		t.Fatalf("undersized request was delegated (DistGrades = %d)", st.DistGrades)
	}
	if resp.Stats.DistHosts != 0 {
		t.Fatal("local grade carries dist counters")
	}
}
