package serve

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/gate"
	"repro/internal/shard"
	"repro/internal/synth"
)

// RunDaemon is the sbstd entry point, factored here so tests can drive the
// full daemon — flags, listener, signal handling, drain, stats flush —
// in a re-executed subprocess. It returns the process exit code.
//
// The daemon prints "listening on ADDR" (the bound address, useful with
// -addr :0) on stdout once it accepts connections, shuts down gracefully
// on SIGINT/SIGTERM — stops accepting, drains in-flight grades up to
// -drain, then force-closes stragglers — and flushes the -stats report
// after the listener closes.
func RunDaemon(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sbstd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:0", "TCP address to listen on")
	libName := fs.String("lib", synth.NativeLib{}.Name(), "technology library")
	engine := fs.String("engine", "event", "fault-simulation engine: event or oblivious")
	lanes := fs.Int("lanes", 0, "default lane words per fault pass (0 = cost-model adaptive)")
	pool := fs.Int("pool", 0, "warm graders, i.e. concurrent grades (0 = GOMAXPROCS)")
	checkpointK := fs.Int("checkpoint-k", 0, "golden-trace checkpoint interval in cycles (0 = default)")
	cacheDir := fs.String("cache", "", "directory for the netlist/golden artifact cache (empty = disabled)")
	cacheMax := fs.Int64("cache-max-bytes", 0, "cache size bound with LRU eviction (0 = unbounded)")
	drain := fs.Duration("drain", 10*time.Second, "shutdown drain deadline for in-flight grades")
	stats := fs.Bool("stats", false, "print serving statistics on shutdown")
	hosts := fs.String("hosts", "", "delegate oversized grades to remote worker hosts: addr[=weight],exec:argv[=weight],...")
	distMin := fs.Int("dist-min", 0, "smallest sampled fault-list length delegated to -hosts (0 = all)")
	calibrate := fs.Bool("calibrate", false, "derive missing -hosts weights from a per-host calibration kernel")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var hostSpecs []shard.HostSpec
	if *hosts != "" {
		var err error
		if hostSpecs, err = shard.ParseHosts(*hosts); err != nil {
			fmt.Fprintf(stderr, "sbstd: %v\n", err)
			return 2
		}
	}

	lib := synth.LibraryByName(*libName)
	if lib == nil {
		fmt.Fprintf(stderr, "sbstd: unknown -lib %q\n", *libName)
		return 2
	}
	var eng fault.Engine
	switch *engine {
	case "event":
		eng = fault.EngineEvent
	case "oblivious":
		eng = fault.EngineOblivious
	default:
		fmt.Fprintf(stderr, "sbstd: unknown -engine %q (want event or oblivious)\n", *engine)
		return 2
	}
	var disk *cache.Cache
	if *cacheDir != "" {
		var err error
		disk, err = cache.Open(*cacheDir)
		if err != nil {
			fmt.Fprintf(stderr, "sbstd: %v\n", err)
			return 1
		}
		disk.SetMaxBytes(*cacheMax)
	}

	srv, err := NewServer(Config{
		Lib:           lib,
		Cache:         disk,
		Engine:        eng,
		LaneWords:     *lanes,
		CheckpointK:   *checkpointK,
		Pool:          *pool,
		Hosts:         hostSpecs,
		DistMinFaults: *distMin,
		DistCalibrate: *calibrate,
	})
	if err != nil {
		fmt.Fprintf(stderr, "sbstd: %v\n", err)
		return 1
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "sbstd: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "listening on %s\n", ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	shutdownErr := make(chan error, 1)
	go func() {
		<-sigc
		signal.Stop(sigc)
		shutdownErr <- srv.Shutdown(*drain)
	}()

	code := 0
	if err := srv.Serve(ln); err != nil {
		fmt.Fprintf(stderr, "sbstd: %v\n", err)
		code = 1
	} else if err := <-shutdownErr; err != nil {
		fmt.Fprintf(stderr, "sbstd: %v\n", err)
		code = 1
	}
	if *stats {
		fmt.Fprintf(stdout, "serving statistics (engine=%s, simd=%s):\n%s\n",
			*engine, gate.SIMDKernelName(), srv.Stats().String())
	}
	return code
}
