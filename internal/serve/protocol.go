// Package serve is the warm-state grading service: a long-running server
// that constructs the expensive immutable grading state exactly once — the
// synthesized core, captured golden traces (through the content-addressed
// disk cache when one is armed), the collapsed fault universe, pass plans
// from fault.PlanPasses, and the SIMD kernel dispatch tables that come
// with the first simulator build — and then grades test programs for many
// concurrent clients against that shared state. Each request costs one
// fault simulation on an already-warm simulator (fault.Warm), never a
// synthesis, capture, plan, or simulator construction.
//
// The wire protocol reuses internal/shard's length-prefixed CRC-guarded
// gob framing (shard.WriteFrame/ReadFrame). A connection opens with one
// server-to-client Info frame describing the immutable state; after that
// the client writes Request frames and reads one Response frame per
// request, in order. Concurrency comes from concurrent connections: the
// server grades up to its pool size of requests in parallel.
//
// Results are bit-identical to an in-process fault.Simulate of the same
// golden, faults and options (asserted under concurrent load in tests):
// detection outcomes are independent of pass packing, lane width and
// which warm simulator carries a pass, so serving a grade changes where
// the work runs, never what it computes.
package serve

import (
	"repro/internal/fault"
)

// Info is the handshake frame the server writes once per connection: the
// identity of the immutable state every grade on this server shares. A
// client uses it to decide whether the server is grading the world it
// expects (library, netlist, universe) and to elide the fault list from
// full-universe requests.
type Info struct {
	// Lib is the technology library name the core was synthesized with.
	Lib string
	// NetlistHash is the content address (cache.NetlistHash) of the
	// synthesized netlist.
	NetlistHash string
	// UniverseHash identifies the server's full collapsed fault universe
	// (fault.UniverseHash); FaultCount is its length. A request with a nil
	// fault list grades exactly this universe.
	UniverseHash string
	FaultCount   int
	// Engine is the simulation engine every grade uses; CheckpointK the
	// golden-trace checkpoint interval; LaneWords the default per-pass
	// lane-width cap (0 = cost-model adaptive).
	Engine      fault.Engine
	CheckpointK int
	LaneWords   int
	// SIMD names the gate-evaluation kernel family in use
	// (gate.SIMDKernelName), for observability parity with the CLIs.
	SIMD string
}

// Request asks the server to grade one test program. The program rides in
// the frame (origin + words, the same self-describing form plasma.Golden
// records); the server memoizes the captured golden and the pass plan, so
// repeated grades of the same program pay for neither.
type Request struct {
	// Seq is an opaque client-chosen id echoed in the Response.
	Seq uint64
	// ProgOrigin/ProgWords are the program image; Cycles the golden
	// capture length in clock cycles.
	ProgOrigin uint32
	ProgWords  []uint32
	Cycles     int
	// Faults is the fault list to grade, in client order. nil means the
	// server's full universe (the hot path — no faults on the wire).
	Faults []fault.Fault
	// Sample/Seed, when Sample is nonzero, grade only the deterministic
	// fault.SampleFaults sample of the list; outcomes align to the sample
	// in its order, exactly as fault.Simulate's Result.Faults does.
	Sample int
	Seed   int64
	// LaneWords caps the per-pass lane width for this request's plan
	// (0 = the server default).
	LaneWords int
}

// Response is the per-request result frame: the per-fault outcomes of the
// graded (possibly sampled) fault list, aligned to its order, plus the
// per-grade work statistics.
type Response struct {
	Seq uint64
	// Err, when non-empty, reports a server-side failure for this request
	// (bad program, capture error); the connection stays usable.
	Err string
	// UniverseHash is fault.UniverseHash over the faults actually graded
	// (after sampling), so a client can verify alignment end to end.
	UniverseHash string
	// Cycles is the golden execution length; DetectedAt and
	// SignatureGroups are fault.Result outcomes for the graded list.
	Cycles          int
	DetectedAt      []int32
	SignatureGroups []uint8
	Stats           fault.SimStats
}
