//go:build !race

package serve

import (
	"testing"

	"repro/internal/plasma"
)

// TestGradeAllocBudget gates the steady-state request path's allocations
// (fasthttp-style timing test): once the golden and plan are memoized and
// the warm simulators built, Server.Grade must allocate at most a small
// fixed budget per request — the response reuses its outcome buffers, the
// pass runners their lane scratch, the cursor its state buffer. The gob
// wire path (encode/decode per frame) is measured separately by
// BenchmarkServeGrade's wire variant and is NOT under this budget; the
// budget covers the grading engine a connection handler invokes.
//
// Excluded under -race: the race runtime adds bookkeeping allocations.
func TestGradeAllocBudget(t *testing.T) {
	srv := newTestServer(t, 1)
	g, err := plasma.CaptureGolden(testCPU(t), assemble(t, progLoop), testCycles)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{
		ProgOrigin: g.ProgOrigin,
		ProgWords:  g.ProgWords,
		Cycles:     testCycles,
		Sample:     256,
		Seed:       1,
	}
	var resp Response
	// Warm up: memoize golden + plan, build simulators, size every buffer.
	for i := 0; i < 3; i++ {
		if err := srv.Grade(&req, &resp); err != nil {
			t.Fatal(err)
		}
	}
	// Measured 0.0 on this box; 2 absorbs runtime jitter (map growth,
	// channel internals) without letting a real regression through.
	const budget = 2
	avg := testing.AllocsPerRun(10, func() {
		if err := srv.Grade(&req, &resp); err != nil {
			t.Fatal(err)
		}
	})
	if avg > budget {
		t.Fatalf("steady-state Grade allocates %.1f objects/request, budget %d", avg, budget)
	}
	if srv.Stats().Errors != 0 {
		t.Fatal("grades failed during the alloc measurement")
	}
	// The measurement must have exercised the warm path, not cold builds.
	if st := srv.Stats(); st.WarmGrades < st.Requests-1 {
		t.Fatalf("only %d of %d grades were warm", st.WarmGrades, st.Requests)
	}
}
