package serve

import (
	"net"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/plasma"
)

// BenchmarkServeGrade measures the steady-state request paths with
// -benchmem (the alloc gate scripts/benchguard.sh watches):
//
//   - inproc: Server.Grade alone — the grading engine a connection handler
//     invokes; zero allocations in steady state (see TestGradeAllocBudget).
//   - wire: the same request through a real TCP connection and the gob
//     frame codec, i.e. what one client request costs end to end. The gob
//     encode/decode dominates the allocation count here; it is reported
//     honestly rather than hidden, and excluded from the inproc budget.
func BenchmarkServeGrade(b *testing.B) {
	srv, err := NewServer(Config{CPU: testCPU(b), Pool: 1})
	if err != nil {
		b.Fatal(err)
	}
	g, err := plasma.CaptureGolden(testCPU(b), assemble(b, progLoop), testCycles)
	if err != nil {
		b.Fatal(err)
	}
	req := Request{
		ProgOrigin: g.ProgOrigin,
		ProgWords:  g.ProgWords,
		Cycles:     testCycles,
		Sample:     512,
		Seed:       1,
	}

	b.Run("inproc", func(b *testing.B) {
		var resp Response
		if err := srv.Grade(&req, &resp); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := srv.Grade(&req, &resp); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("wire", func(b *testing.B) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		defer func() {
			if err := srv.Shutdown(5 * time.Second); err != nil {
				b.Error(err)
			}
			<-done
		}()
		cl, err := Dial(ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		cpu := testCPU(b)
		universe := fault.Universe(cpu.Netlist)
		opt := fault.Options{Sample: 512, Seed: 1}
		if _, err := cl.Grade(cpu, g, universe, opt); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cl.Grade(cpu, g, universe, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}
