package serve

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/asm"
	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/gate"
	"repro/internal/plasma"
	"repro/internal/shard"
	"repro/internal/synth"
)

// Config parameterizes a grading server. The zero value is usable: native
// library, event engine, default checkpoint interval, cost-model lane
// widths, no disk cache, GOMAXPROCS warm graders.
type Config struct {
	// CPU, when non-nil, is an already-synthesized core to serve (its Lib
	// names the library); otherwise Lib is synthesized via the cache.
	CPU *plasma.CPU
	// Lib is the technology library to synthesize (nil = synth.NativeLib).
	Lib synth.Library
	// Cache, when non-nil, backs synthesis and golden capture with the
	// content-addressed disk cache, so a server restart pays decode, not
	// recomputation.
	Cache *cache.Cache
	// Engine is the simulation engine for every grade.
	Engine fault.Engine
	// LaneWords is the default per-pass lane-width cap (0 = adaptive).
	LaneWords int
	// CheckpointK is the golden-trace checkpoint interval (0 = default).
	CheckpointK int
	// Pool is the number of warm graders, i.e. the number of requests
	// simulated concurrently (0 = GOMAXPROCS). Requests beyond it queue.
	Pool int
	// Hosts arms distributed delegation: a request whose sampled fault
	// list has at least DistMinFaults entries is graded across these
	// remote worker hosts (shard.GradeDist) instead of the local warm
	// pool — the daemon turns into the cluster's coordinator. Results
	// stay bit-identical either way, so the threshold is pure policy.
	Hosts []shard.HostSpec
	// DistMinFaults is the smallest fault-list length worth delegating
	// (0 = delegate everything when Hosts is set): small grades are
	// usually cheaper on the warm local pool than a round of remote
	// dispatches.
	DistMinFaults int
	// DistCalibrate derives missing host weights from a per-host
	// calibration kernel on every delegated grade (explicit "=WEIGHT"
	// specs avoid the extra round trip).
	DistCalibrate bool
}

// graderSlot pairs a warm grader with the result buffers it fills; slots
// circulate through a channel so each is used by one request at a time.
type graderSlot struct {
	w   *fault.Warm
	res fault.Result
	// Warm's reuse counters are cumulative; per-grade deltas feed Stats.
	prevCold, prevWarm int64
}

// goldenEntry memoizes one captured golden trace. The program image is
// kept for exact-match verification (the map key is a non-cryptographic
// summary); once guards the single capture all concurrent first
// requesters share.
type goldenEntry struct {
	origin uint32
	words  []uint32
	cycles int

	once sync.Once
	g    *plasma.Golden
	err  error
}

// goldenKey summarizes a (program, cycles) pair for map lookup; matches
// verify the full image, so a summary collision costs a chain walk, never
// a wrong golden.
type goldenKey struct {
	origin uint32
	n      int
	sum    uint64
	cycles int
}

// planEntry memoizes one (golden, fault list, sampling, lane cap) pass
// plan: the sampled fault list in grading order, its content hash, the
// PlanPasses output and its skipped-fault count.
type planEntry struct {
	once    sync.Once
	faults  []fault.Fault
	hash    string
	plan    []fault.PassGroup
	skipped int64
	err     error
}

type planKey struct {
	golden    *goldenEntry
	faults    string // fault.UniverseHash of the request list ("" = server universe)
	sample    int
	seed      int64
	laneWords int
}

// Server is the warm-state grading service: immutable shared state (core,
// universe, memoized goldens and plans) plus a pool of warm graders.
// Construct with NewServer; Grade is safe for concurrent use.
type Server struct {
	cpu          *plasma.CPU
	disk         *cache.Cache
	engine       fault.Engine
	laneWords    int
	checkpointK  int
	libName      string
	netlistHash  string
	universe     []fault.Fault
	universeHash string

	hosts         []shard.HostSpec
	distMinFaults int
	distCalibrate bool
	distCache     *cache.Cache

	pool chan *graderSlot

	mu      sync.Mutex
	goldens map[goldenKey][]*goldenEntry
	plans   map[planKey]*planEntry

	stats serverCounters

	connMu  sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]struct{}
	closing atomic.Bool
	wg      sync.WaitGroup
}

// NewServer builds the shared immutable state once: synthesizes (or
// cache-loads) the core, enumerates and hashes the collapsed fault
// universe, and arms the warm grader pool.
func NewServer(cfg Config) (*Server, error) {
	cpu := cfg.CPU
	lib := cfg.Lib
	if cpu != nil {
		lib = cpu.Lib
	} else {
		if lib == nil {
			lib = synth.NativeLib{}
		}
		var err error
		cpu, err = cfg.Cache.BuildCPU(lib)
		if err != nil {
			return nil, err
		}
	}
	nh, err := cache.NetlistHash(cpu.Netlist)
	if err != nil {
		return nil, err
	}
	universe := fault.Universe(cpu.Netlist)
	k := cfg.CheckpointK
	if k <= 0 {
		k = plasma.DefaultCheckpointK
	}
	pool := cfg.Pool
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	libName := ""
	if lib != nil {
		libName = lib.Name()
	}
	// Delegation replicates artifacts from a coordinator-side cache; a
	// daemon without a disk cache gets a private one so each content
	// hash still ships to each worker only once over the server's life.
	distCache := cfg.Cache
	if len(cfg.Hosts) > 0 && distCache == nil {
		dir, err := os.MkdirTemp("", "sbstd-dist-")
		if err != nil {
			return nil, err
		}
		if distCache, err = cache.Open(dir); err != nil {
			return nil, err
		}
	}
	s := &Server{
		cpu:           cpu,
		disk:          cfg.Cache,
		hosts:         cfg.Hosts,
		distMinFaults: cfg.DistMinFaults,
		distCalibrate: cfg.DistCalibrate,
		distCache:     distCache,
		engine:        cfg.Engine,
		laneWords:     cfg.LaneWords,
		checkpointK:   k,
		libName:       libName,
		netlistHash:   nh,
		universe:      universe,
		universeHash:  fault.UniverseHash(universe),
		pool:          make(chan *graderSlot, pool),
		goldens:       make(map[goldenKey][]*goldenEntry),
		plans:         make(map[planKey]*planEntry),
		conns:         make(map[net.Conn]struct{}),
	}
	for i := 0; i < pool; i++ {
		s.pool <- &graderSlot{w: fault.NewWarm(cpu, cfg.Engine)}
	}
	return s, nil
}

// Info describes the server's immutable shared state (the per-connection
// handshake frame).
func (s *Server) Info() Info {
	return Info{
		Lib:          s.libName,
		NetlistHash:  s.netlistHash,
		UniverseHash: s.universeHash,
		FaultCount:   len(s.universe),
		Engine:       s.engine,
		CheckpointK:  s.checkpointK,
		LaneWords:    s.laneWords,
		SIMD:         gate.SIMDKernelName(),
	}
}

// progSum is the FNV-1a summary of a program image for golden map keys.
func progSum(origin uint32, words []uint32) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint32) {
		for i := 0; i < 4; i++ {
			h = (h ^ uint64(v&0xFF)) * 1099511628211
			v >>= 8
		}
	}
	mix(origin)
	for _, w := range words {
		mix(w)
	}
	return h
}

// golden returns the memoized golden trace for a request's program,
// capturing it (through the disk cache when armed) exactly once per
// distinct (program, cycles) pair regardless of how many requests race.
func (s *Server) golden(req *Request) *goldenEntry {
	key := goldenKey{
		origin: req.ProgOrigin,
		n:      len(req.ProgWords),
		sum:    progSum(req.ProgOrigin, req.ProgWords),
		cycles: req.Cycles,
	}
	s.mu.Lock()
	var e *goldenEntry
	for _, c := range s.goldens[key] {
		if c.origin == req.ProgOrigin && c.cycles == req.Cycles && sliceEq(c.words, req.ProgWords) {
			e = c
			break
		}
	}
	if e == nil {
		e = &goldenEntry{
			origin: req.ProgOrigin,
			words:  append([]uint32(nil), req.ProgWords...),
			cycles: req.Cycles,
		}
		s.goldens[key] = append(s.goldens[key], e)
	}
	s.mu.Unlock()
	captured := false
	e.once.Do(func() {
		captured = true
		prog := &asm.Program{Origin: e.origin, Words: e.words}
		e.g, e.err = s.disk.CaptureGoldenK(s.cpu, prog, e.cycles, s.checkpointK)
	})
	if captured {
		s.stats.goldenCaptures.Add(1)
	} else {
		s.stats.goldenHits.Add(1)
	}
	return e
}

func sliceEq(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// plan returns the memoized sampled fault list and pass plan for a
// (golden, fault list, sampling, lane cap) tuple. faultsHash is "" for
// the server universe and fault.UniverseHash(reqFaults) otherwise; the
// hash is the content address, so equal-hash lists plan identically.
func (s *Server) plan(ge *goldenEntry, reqFaults []fault.Fault, faultsHash string, req *Request) *planEntry {
	lanes := req.LaneWords
	if lanes == 0 {
		lanes = s.laneWords
	}
	key := planKey{golden: ge, faults: faultsHash, sample: req.Sample, seed: req.Seed, laneWords: lanes}
	s.mu.Lock()
	e := s.plans[key]
	if e == nil {
		e = &planEntry{}
		s.plans[key] = e
	}
	s.mu.Unlock()
	built := false
	e.once.Do(func() {
		built = true
		faults := reqFaults
		if req.Sample > 0 {
			faults = fault.SampleFaults(faults, req.Sample, req.Seed)
		}
		e.faults = faults
		e.hash = fault.UniverseHash(faults)
		e.plan, e.skipped, e.err = fault.PlanPasses(s.cpu.Netlist, ge.g, faults, s.engine, lanes)
	})
	if built {
		s.stats.planBuilds.Add(1)
	} else {
		s.stats.planHits.Add(1)
	}
	return e
}

// Grade serves one request into resp. It is the steady-state hot path:
// with the golden and plan already memoized, the cost is one warm fault
// simulation — no synthesis, capture, planning or simulator construction,
// and no allocation beyond what the simulator itself does (asserted by
// TestGradeAllocBudget). resp's outcome slices are reused across calls.
//
// A request's fault list (when non-nil) and program words are retained in
// the memo tables; callers must not mutate them afterwards. Errors are
// returned to the caller and also counted; the server stays healthy.
func (s *Server) Grade(req *Request, resp *Response) error {
	start := time.Now()
	s.stats.requests.Add(1)
	err := s.grade(req, resp)
	if err != nil {
		s.stats.errors.Add(1)
		resp.DetectedAt = resp.DetectedAt[:0]
		resp.SignatureGroups = resp.SignatureGroups[:0]
		resp.Stats = fault.SimStats{}
		resp.UniverseHash = ""
		resp.Cycles = 0
	}
	s.stats.latencyNs.Add(time.Since(start).Nanoseconds())
	return err
}

func (s *Server) grade(req *Request, resp *Response) error {
	if req.Cycles <= 0 {
		return fmt.Errorf("serve: request wants %d cycles", req.Cycles)
	}
	if len(req.ProgWords) == 0 {
		return fmt.Errorf("serve: request carries no program")
	}
	ge := s.golden(req)
	if ge.err != nil {
		return ge.err
	}
	reqFaults, faultsHash := req.Faults, ""
	if reqFaults == nil {
		reqFaults = s.universe
	} else {
		faultsHash = fault.UniverseHash(reqFaults)
	}
	pe := s.plan(ge, reqFaults, faultsHash, req)
	if pe.err != nil {
		return pe.err
	}
	if len(s.hosts) > 0 && len(pe.faults) >= s.distMinFaults {
		return s.gradeDist(ge, pe, req, resp)
	}

	slot := <-s.pool
	// The result borrows resp's outcome buffers, so the grade writes its
	// outcomes in place; they are handed back (possibly reallocated larger)
	// below, leaving the slot's result empty for the next request.
	res := &slot.res
	res.DetectedAt, res.SignatureGroups = resp.DetectedAt, resp.SignatureGroups
	fault.GrowResult(res, pe.faults)
	err := slot.w.Grade(ge.g, pe.faults, pe.plan, res)
	res.Stats.SkippedFaults += pe.skipped
	resp.DetectedAt, resp.SignatureGroups = res.DetectedAt, res.SignatureGroups
	resp.Cycles = res.Cycles
	resp.Stats = res.Stats
	resp.UniverseHash = pe.hash
	res.DetectedAt, res.SignatureGroups, res.Faults = nil, nil, nil
	s.stats.coldSims.Add(slot.w.ColdSims - slot.prevCold)
	s.stats.warmGrades.Add(slot.w.WarmGrades - slot.prevWarm)
	slot.prevCold, slot.prevWarm = slot.w.ColdSims, slot.w.WarmGrades
	s.pool <- slot
	return err
}

// gradeDist serves one oversized request across the configured remote
// hosts. pe.faults is already sampled (the plan memo did it), so the
// distributed options must not sample again; the per-fault outcomes and
// the universe hash are bit-identical to the local warm-pool path.
func (s *Server) gradeDist(ge *goldenEntry, pe *planEntry, req *Request, resp *Response) error {
	lanes := req.LaneWords
	if lanes == 0 {
		lanes = s.laneWords
	}
	res, dstats, err := shard.GradeDist(s.cpu, ge.g, pe.faults, shard.DistOptions{
		Hosts:     s.hosts,
		Engine:    s.engine,
		LaneWords: lanes,
		Cache:     s.distCache,
		Calibrate: s.distCalibrate,
	})
	if err != nil {
		return err
	}
	s.stats.distGrades.Add(1)
	if dstats != nil {
		s.stats.distShipBytes.Add(dstats.BytesShipped)
		s.stats.distShipNs.Add(dstats.ShipNs)
		s.stats.distRedispatched.Add(int64(dstats.Redispatched))
	}
	resp.DetectedAt = append(resp.DetectedAt[:0], res.DetectedAt...)
	resp.SignatureGroups = append(resp.SignatureGroups[:0], res.SignatureGroups...)
	resp.Cycles = res.Cycles
	resp.Stats = res.Stats
	resp.UniverseHash = pe.hash
	return nil
}

// Serve accepts connections on ln until Shutdown closes it. Each
// connection gets the Info handshake frame, then request/response frames
// in order; grading concurrency across connections is bounded by the warm
// grader pool. A Server may Serve again after a completed Shutdown (the
// warm state carries over); one Serve at a time.
func (s *Server) Serve(ln net.Listener) error {
	s.connMu.Lock()
	s.ln = ln
	s.closing.Store(false)
	s.connMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closing.Load() {
				return nil
			}
			return err
		}
		s.connMu.Lock()
		if s.closing.Load() {
			s.connMu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.connMu.Unlock()
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		s.wg.Done()
	}()
	bw := bufio.NewWriter(conn)
	enc := shard.NewEncoder(bw)
	dec := shard.NewDecoder(bufio.NewReader(conn))
	info := s.Info()
	if enc.WriteFrame(&info) != nil || bw.Flush() != nil {
		return
	}
	var resp Response
	var req Request
	for {
		// Reset per iteration rather than reuse: gob omits zero-valued
		// fields, so a stale Sample or Faults list from the previous
		// request would silently survive into this one. Only the
		// always-transmitted ProgWords buffer is worth carrying over.
		req = Request{ProgWords: req.ProgWords[:0]}
		if err := dec.ReadFrame(&req); err != nil {
			return // client done (EOF), gone, or shutdown deadline
		}
		resp.Seq = req.Seq
		resp.Err = ""
		if err := s.Grade(&req, &resp); err != nil {
			resp.Err = err.Error()
		}
		if enc.WriteFrame(&resp) != nil || bw.Flush() != nil {
			return
		}
	}
}

// Shutdown stops accepting connections and drains in-flight work: each
// connection finishes (and gets the response for) the request it is
// grading, then closes at its next read. Connections still open after the
// drain deadline are force-closed and an error reports how many. Safe to
// call from a signal handler goroutine while Serve runs.
func (s *Server) Shutdown(drain time.Duration) error {
	s.closing.Store(true)
	s.connMu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	// A past read deadline unblocks idle connections immediately but lets
	// a connection mid-grade finish and write its response: the deadline
	// only fires at the handler's next request read.
	past := time.Now()
	for c := range s.conns {
		c.SetReadDeadline(past)
	}
	s.connMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(drain):
	}
	s.connMu.Lock()
	forced := len(s.conns)
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	<-done
	return fmt.Errorf("serve: drain deadline exceeded; force-closed %d connections", forced)
}
