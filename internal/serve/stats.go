package serve

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// serverCounters are the server's live atomic counters; Stats() snapshots
// them into a plain value for printing.
type serverCounters struct {
	requests       atomic.Int64
	errors         atomic.Int64
	goldenCaptures atomic.Int64
	goldenHits     atomic.Int64
	planBuilds     atomic.Int64
	planHits       atomic.Int64
	coldSims       atomic.Int64
	warmGrades     atomic.Int64
	latencyNs      atomic.Int64

	distGrades       atomic.Int64
	distShipBytes    atomic.Int64
	distShipNs       atomic.Int64
	distRedispatched atomic.Int64
}

// Stats is a point-in-time snapshot of the server's request counters: how
// much of the fixed cost the warm state actually amortized.
type Stats struct {
	// Requests served (including failed ones, counted in Errors).
	Requests int64
	Errors   int64
	// Golden captures vs memo hits, and pass-plan builds vs memo hits:
	// every hit is a capture or plan a cold-start run would have paid.
	GoldenCaptures int64
	GoldenHits     int64
	PlanBuilds     int64
	PlanHits       int64
	// ColdSims counts simulator constructions across the grader pool (at
	// most pool × distinct pass widths over the server's lifetime);
	// WarmGrades counts grades that reused at least one warm simulator.
	ColdSims   int64
	WarmGrades int64
	// LatencyNs is summed request wall clock (queueing + grading).
	LatencyNs int64
	// DistGrades counts requests delegated to remote worker hosts;
	// DistShipBytes/DistShipNs measure the artifact replication those
	// delegations paid (each content hash ships to each worker at most
	// once, so a warm cluster pins these near zero); DistRedispatched
	// counts straggler shards re-dispatched to an idle host.
	DistGrades       int64
	DistShipBytes    int64
	DistShipNs       int64
	DistRedispatched int64
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:       s.stats.requests.Load(),
		Errors:         s.stats.errors.Load(),
		GoldenCaptures: s.stats.goldenCaptures.Load(),
		GoldenHits:     s.stats.goldenHits.Load(),
		PlanBuilds:     s.stats.planBuilds.Load(),
		PlanHits:       s.stats.planHits.Load(),
		ColdSims:       s.stats.coldSims.Load(),
		WarmGrades:     s.stats.warmGrades.Load(),
		LatencyNs:      s.stats.latencyNs.Load(),

		DistGrades:       s.stats.distGrades.Load(),
		DistShipBytes:    s.stats.distShipBytes.Load(),
		DistShipNs:       s.stats.distShipNs.Load(),
		DistRedispatched: s.stats.distRedispatched.Load(),
	}
}

// MeanLatency is the mean request wall clock in seconds (0 when no
// requests were served).
func (st Stats) MeanLatency() float64 {
	if st.Requests == 0 {
		return 0
	}
	return float64(st.LatencyNs) / 1e9 / float64(st.Requests)
}

// String renders the snapshot in the compact aligned style of the CLIs'
// -stats output.
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests          %d served, %d failed\n", st.Requests, st.Errors)
	fmt.Fprintf(&b, "golden traces     %d captured, %d memo hits\n", st.GoldenCaptures, st.GoldenHits)
	fmt.Fprintf(&b, "pass plans        %d built, %d memo hits\n", st.PlanBuilds, st.PlanHits)
	fmt.Fprintf(&b, "simulators        %d cold constructions, %d warm-reuse grades\n", st.ColdSims, st.WarmGrades)
	fmt.Fprintf(&b, "mean latency      %.3fs per request", st.MeanLatency())
	if st.DistGrades > 0 {
		fmt.Fprintf(&b, "\ndist delegation   %d grades, %d straggler re-dispatches", st.DistGrades, st.DistRedispatched)
		fmt.Fprintf(&b, "\ndist replication  %d B shipped in %.1fms", st.DistShipBytes, float64(st.DistShipNs)/1e6)
	}
	return b.String()
}
