// Package repro's benchmarks regenerate every evaluation artifact of the
// paper, one benchmark per table or figure-level claim. Fault-simulation
// benches use a deterministic 4096-fault sample so the whole suite runs in
// minutes; `go run ./cmd/report -table 5` (no -sample) reproduces the
// full-universe numbers recorded in EXPERIMENTS.md.
//
// Per-iteration metrics carry the reproduced quantities (FC%, words,
// cycles) so `go test -bench` output doubles as the results table.
package repro

import (
	"os"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/plasma"
	"repro/internal/shard"
	"repro/internal/synth"
)

// TestMain lets this test binary double as a shard-grading worker: the
// coordinator benchmarks below re-execute it with the worker environment
// marker set, and ServeIfWorker takes over before any test runs.
func TestMain(m *testing.M) {
	shard.ServeIfWorker()
	os.Exit(m.Run())
}

var (
	onceA sync.Once
	envA  *bench.Env
	onceB sync.Once
	envB  *bench.Env
)

func benchEnv(tb testing.TB) *bench.Env {
	tb.Helper()
	onceA.Do(func() {
		var err error
		envA, err = bench.DefaultEnv()
		if err != nil {
			tb.Fatal(err)
		}
	})
	if envA == nil {
		tb.Fatal("environment failed to build")
	}
	return envA
}

func benchEnvB(b *testing.B) *bench.Env {
	b.Helper()
	onceB.Do(func() {
		var err error
		envB, err = bench.NewEnv(synth.NandLib{})
		if err != nil {
			b.Fatal(err)
		}
	})
	if envB == nil {
		b.Fatal("environment failed to build")
	}
	return envB
}

// benchOpt is the deterministic sampled fault-simulation configuration.
var benchOpt = fault.Options{Sample: 4096, Seed: 1}

// BenchmarkTable1Priority regenerates Table 1 (component class
// controllability/observability and test priority).
func BenchmarkTable1Priority(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := bench.Table1(); len(s) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2Classification regenerates Table 2 (Plasma/MIPS component
// classification).
func BenchmarkTable2Classification(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _ := bench.Table2(e)
		if len(rows) != 10 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkTable3GateCounts regenerates Table 3 (per-component gate counts
// in NAND2 equivalents).
func BenchmarkTable3GateCounts(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	var total float64
	for i := 0; i < b.N; i++ {
		rows, _ := bench.Table3(e)
		total = 0
		for _, r := range rows {
			total += r.Gates
		}
	}
	b.ReportMetric(total, "NAND2-gates")
}

// BenchmarkTable4ProgramStats regenerates Table 4 (self-test program words
// and clock cycles per phase).
func BenchmarkTable4ProgramStats(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	var rows []bench.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = bench.Table4(e)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Words), "phaseA-words")
	b.ReportMetric(float64(rows[0].Cycles), "phaseA-cycles")
	b.ReportMetric(float64(rows[1].Words), "phaseAB-words")
	b.ReportMetric(float64(rows[1].Cycles), "phaseAB-cycles")
}

// BenchmarkTable5FaultCoverage regenerates Table 5 (per-component and
// overall stuck-at fault coverage after Phase A and Phase A+B), on the
// deterministic fault sample.
func BenchmarkTable5FaultCoverage(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	var d *bench.Table5Data
	for i := 0; i < b.N; i++ {
		var err error
		d, _, err = bench.Table5(e, benchOpt, false)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fcOf(d.PhaseA), "phaseA-FC%")
	b.ReportMetric(fcOf(d.PhaseAB), "phaseAB-FC%")
}

func fcOf(r *fault.Report) float64 {
	return 100 * float64(r.Overall.DetW) / float64(r.Overall.TotalW)
}

// TestTable5ShardedEquivalence is the sharding acceptance criterion on
// the real workload: grading the Table 5 Phase A program across 4 worker
// subprocesses must reproduce the unsharded run's coverage, DetectedAt
// and SignatureGroups bit for bit.
func TestTable5ShardedEquivalence(t *testing.T) {
	e := benchEnv(t)
	g, err := e.Golden(core.PhaseA)
	if err != nil {
		t.Fatal(err)
	}
	opt := benchOpt
	if testing.Short() {
		opt.Sample = 512
	}
	want, err := fault.Simulate(e.CPU, g, e.Faults(), opt)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := shard.Grade(e.CPU, g, e.Faults(), shard.Options{
		Shards: 4,
		Sample: opt.Sample,
		Seed:   opt.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fallbacks != 0 {
		t.Fatalf("sharded run fell back in-process: %+v", stats)
	}
	if got.Cycles != want.Cycles || len(got.Faults) != len(want.Faults) {
		t.Fatalf("shape mismatch: %d faults/%d cycles vs %d/%d",
			len(got.Faults), got.Cycles, len(want.Faults), want.Cycles)
	}
	for i := range want.Faults {
		if got.DetectedAt[i] != want.DetectedAt[i] || got.SignatureGroups[i] != want.SignatureGroups[i] {
			t.Fatalf("fault %d: sharded (%d, %d) vs unsharded (%d, %d)",
				i, got.DetectedAt[i], got.SignatureGroups[i], want.DetectedAt[i], want.SignatureGroups[i])
		}
	}
	if got.Coverage() != want.Coverage() || got.WeightedCoverage() != want.WeightedCoverage() {
		t.Fatalf("coverage %v/%v, want %v/%v",
			got.Coverage(), got.WeightedCoverage(), want.Coverage(), want.WeightedCoverage())
	}
}

// BenchmarkTable5FaultCoverageSharded is BenchmarkTable5FaultCoverage with
// every grading call fanned out across 4 worker subprocesses of this test
// binary (see TestMain) through the internal/shard coordinator. The
// artifact cache is shared across iterations, so after the first shipment
// workers load the netlist and golden trace from disk. Results are
// bit-identical to the unsharded bench; the wall-clock ratio against
// BenchmarkTable5FaultCoverage measures the sharding overhead or speedup
// on this machine's core count.
func BenchmarkTable5FaultCoverageSharded(b *testing.B) {
	e := benchEnv(b)
	disk, err := cache.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	e.Grader = func(cpu *plasma.CPU, golden *plasma.Golden, faults []fault.Fault, opt fault.Options) (*fault.Result, error) {
		res, _, err := shard.Grade(cpu, golden, faults, shard.Options{
			Shards:    4,
			Engine:    opt.Engine,
			LaneWords: opt.LaneWords,
			Workers:   opt.Workers,
			Sample:    opt.Sample,
			Seed:      opt.Seed,
			Cache:     disk,
		})
		return res, err
	}
	defer func() { e.Grader = nil }()
	b.ResetTimer()
	var d *bench.Table5Data
	for i := 0; i < b.N; i++ {
		var err error
		d, _, err = bench.Table5(e, benchOpt, false)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fcOf(d.PhaseA), "phaseA-FC%")
	b.ReportMetric(fcOf(d.PhaseAB), "phaseAB-FC%")
}

// BenchmarkFusedReplay measures checkpoint-window replay fusion against
// the unfused per-pass reference on the Phase A workload: identical pass
// plan and detections (asserted by internal/fault's fusion equivalence
// tests), so the wall-clock delta is pure per-pass setup — cold simulator
// construction, golden replay to the activation cycle, and full hook
// reinstallation — that fusion amortizes across each window.
func BenchmarkFusedReplay(b *testing.B) {
	e := benchEnv(b)
	g, err := e.Golden(core.PhaseA)
	if err != nil {
		b.Fatal(err)
	}
	faults := e.Faults()
	for _, c := range []struct {
		name   string
		noFuse bool
	}{{"fused", false}, {"unfused", true}} {
		b.Run(c.name, func(b *testing.B) {
			opt := fault.Options{Sample: 1024, Seed: 1, NoFusion: c.noFuse}
			var detected int
			for i := 0; i < b.N; i++ {
				res, err := fault.Simulate(e.CPU, g, faults, opt)
				if err != nil {
					b.Fatal(err)
				}
				detected = 0
				for j := range res.Faults {
					if res.Detected(j) {
						detected++
					}
				}
			}
			b.ReportMetric(float64(detected), "detected")
		})
	}
}

// BenchmarkTechLibIndependence regenerates the Section 4 technology-
// independence claim: Phase A+B coverage across two cell libraries.
func BenchmarkTechLibIndependence(b *testing.B) {
	eA, eB := benchEnv(b), benchEnvB(b)
	b.ResetTimer()
	var rows []bench.TechLibRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = bench.TechLibIndependence([]*bench.Env{eA, eB}, benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].FC, "libA-FC%")
	b.ReportMetric(rows[1].FC, "libB-FC%")
}

// BenchmarkBaselineComparison regenerates the Section 1/4 cost comparison
// against pseudorandom software self-test.
func BenchmarkBaselineComparison(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	var rows []bench.BaselineRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = bench.BaselineComparison(e, []int{64}, benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].FC, "sbst-FC%")
	b.ReportMetric(rows[1].FC, "prand64-FC%")
	b.ReportMetric(float64(rows[1].Cycles)/float64(rows[0].Cycles), "cycle-ratio")
}

// BenchmarkTesterCostModel regenerates the Figure 1 resource-partitioning
// argument: download time dominates total test time on slow testers.
func BenchmarkTesterCostModel(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	var rows []bench.CostRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = bench.CostModel(e)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.Cost.DownloadShare()*100, "download-share-%@1MHz")
}

// BenchmarkRoutineAblation regenerates the single-routine contribution
// ablation (which routine buys how much coverage at what cost).
func BenchmarkRoutineAblation(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = bench.RoutineAblation(e, benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].OverallFC, "regf-only-FC%")
}

// BenchmarkATPGvsLibrary regenerates the component-level comparison of the
// deterministic test-set library against structural ATPG (PODEM).
func BenchmarkATPGvsLibrary(b *testing.B) {
	var rows []bench.ATPGRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = bench.ATPGComparison()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].FC, "alu-library-FC%")
	b.ReportMetric(rows[1].FC, "alu-podem-FC%")
}

// BenchmarkSelfTestGeneration measures pure test-program generation time
// (the engineering-automation cost of the methodology).
func BenchmarkSelfTestGeneration(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GenerateSelfTest(e.Comps, core.PhaseC); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGateLevelSimulation measures raw gate-level simulation speed:
// cycles of the Phase A program per second on the full core.
func BenchmarkGateLevelSimulation(b *testing.B) {
	e := benchEnv(b)
	st, err := e.SelfTest(core.PhaseA)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.FaultSimProgram(st.Program, 256, fault.Options{Sample: 64, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
