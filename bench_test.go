// Package repro's benchmarks regenerate every evaluation artifact of the
// paper, one benchmark per table or figure-level claim. Fault-simulation
// benches use a deterministic 4096-fault sample so the whole suite runs in
// minutes; `go run ./cmd/report -table 5` (no -sample) reproduces the
// full-universe numbers recorded in EXPERIMENTS.md.
//
// Per-iteration metrics carry the reproduced quantities (FC%, words,
// cycles) so `go test -bench` output doubles as the results table.
package repro

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/plasma"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/synth"
)

// TestMain lets this test binary double as a shard-grading worker and as
// a cold-start grading process: the coordinator benchmarks re-execute it
// with the worker environment marker set (ServeIfWorker takes over), and
// BenchmarkServeThroughput's baseline re-executes it with the cold-grade
// marker so each request pays a real process start.
func TestMain(m *testing.M) {
	shard.ServeIfWorker()
	if spec := os.Getenv("SBST_BENCH_COLDGRADE"); spec != "" {
		os.Exit(coldGradeMain(spec))
	}
	os.Exit(m.Run())
}

// coldGradeMain is the per-request body of BenchmarkServeThroughput's
// cold baseline: everything a one-shot grading invocation pays after
// exec. spec is "progFile cycles sample seed"; progFile holds the
// fragment as decimal words, origin first.
func coldGradeMain(spec string) int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "coldgrade:", err)
		return 1
	}
	var progFile string
	var cycles, sample int
	var seed int64
	if _, err := fmt.Sscanf(spec, "%s %d %d %d", &progFile, &cycles, &sample, &seed); err != nil {
		return fail(err)
	}
	data, err := os.ReadFile(progFile)
	if err != nil {
		return fail(err)
	}
	var prog asm.Program
	for i, f := range strings.Fields(string(data)) {
		w, err := strconv.ParseUint(f, 10, 32)
		if err != nil {
			return fail(err)
		}
		if i == 0 {
			prog.Origin = uint32(w)
		} else {
			prog.Words = append(prog.Words, uint32(w))
		}
	}
	cpu, err := plasma.Build(synth.NativeLib{})
	if err != nil {
		return fail(err)
	}
	g, err := plasma.CaptureGoldenK(cpu, &prog, cycles, plasma.DefaultCheckpointK)
	if err != nil {
		return fail(err)
	}
	opt := fault.Options{Sample: sample, Seed: seed, Workers: 1}
	if _, err := fault.Simulate(cpu, g, fault.Universe(cpu.Netlist), opt); err != nil {
		return fail(err)
	}
	return 0
}

var (
	onceA sync.Once
	envA  *bench.Env
	onceB sync.Once
	envB  *bench.Env
)

func benchEnv(tb testing.TB) *bench.Env {
	tb.Helper()
	onceA.Do(func() {
		var err error
		envA, err = bench.DefaultEnv()
		if err != nil {
			tb.Fatal(err)
		}
	})
	if envA == nil {
		tb.Fatal("environment failed to build")
	}
	return envA
}

func benchEnvB(b *testing.B) *bench.Env {
	b.Helper()
	onceB.Do(func() {
		var err error
		envB, err = bench.NewEnv(synth.NandLib{})
		if err != nil {
			b.Fatal(err)
		}
	})
	if envB == nil {
		b.Fatal("environment failed to build")
	}
	return envB
}

// benchOpt is the deterministic sampled fault-simulation configuration.
var benchOpt = fault.Options{Sample: 4096, Seed: 1}

// BenchmarkTable1Priority regenerates Table 1 (component class
// controllability/observability and test priority).
func BenchmarkTable1Priority(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := bench.Table1(); len(s) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2Classification regenerates Table 2 (Plasma/MIPS component
// classification).
func BenchmarkTable2Classification(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _ := bench.Table2(e)
		if len(rows) != 10 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkTable3GateCounts regenerates Table 3 (per-component gate counts
// in NAND2 equivalents).
func BenchmarkTable3GateCounts(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	var total float64
	for i := 0; i < b.N; i++ {
		rows, _ := bench.Table3(e)
		total = 0
		for _, r := range rows {
			total += r.Gates
		}
	}
	b.ReportMetric(total, "NAND2-gates")
}

// BenchmarkTable4ProgramStats regenerates Table 4 (self-test program words
// and clock cycles per phase).
func BenchmarkTable4ProgramStats(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	var rows []bench.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = bench.Table4(e)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Words), "phaseA-words")
	b.ReportMetric(float64(rows[0].Cycles), "phaseA-cycles")
	b.ReportMetric(float64(rows[1].Words), "phaseAB-words")
	b.ReportMetric(float64(rows[1].Cycles), "phaseAB-cycles")
}

// BenchmarkTable5FaultCoverage regenerates Table 5 (per-component and
// overall stuck-at fault coverage after Phase A and Phase A+B), on the
// deterministic fault sample.
func BenchmarkTable5FaultCoverage(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	var d *bench.Table5Data
	for i := 0; i < b.N; i++ {
		var err error
		d, _, err = bench.Table5(e, benchOpt, false)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fcOf(d.PhaseA), "phaseA-FC%")
	b.ReportMetric(fcOf(d.PhaseAB), "phaseAB-FC%")
}

func fcOf(r *fault.Report) float64 {
	return 100 * float64(r.Overall.DetW) / float64(r.Overall.TotalW)
}

// TestTable5ShardedEquivalence is the sharding acceptance criterion on
// the real workload: grading the Table 5 Phase A program across 4 worker
// subprocesses must reproduce the unsharded run's coverage, DetectedAt
// and SignatureGroups bit for bit.
func TestTable5ShardedEquivalence(t *testing.T) {
	e := benchEnv(t)
	g, err := e.Golden(core.PhaseA)
	if err != nil {
		t.Fatal(err)
	}
	opt := benchOpt
	if testing.Short() {
		opt.Sample = 512
	}
	want, err := fault.Simulate(e.CPU, g, e.Faults(), opt)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := shard.Grade(e.CPU, g, e.Faults(), shard.Options{
		Shards: 4,
		Sample: opt.Sample,
		Seed:   opt.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fallbacks != 0 {
		t.Fatalf("sharded run fell back in-process: %+v", stats)
	}
	if got.Cycles != want.Cycles || len(got.Faults) != len(want.Faults) {
		t.Fatalf("shape mismatch: %d faults/%d cycles vs %d/%d",
			len(got.Faults), got.Cycles, len(want.Faults), want.Cycles)
	}
	for i := range want.Faults {
		if got.DetectedAt[i] != want.DetectedAt[i] || got.SignatureGroups[i] != want.SignatureGroups[i] {
			t.Fatalf("fault %d: sharded (%d, %d) vs unsharded (%d, %d)",
				i, got.DetectedAt[i], got.SignatureGroups[i], want.DetectedAt[i], want.SignatureGroups[i])
		}
	}
	if got.Coverage() != want.Coverage() || got.WeightedCoverage() != want.WeightedCoverage() {
		t.Fatalf("coverage %v/%v, want %v/%v",
			got.Coverage(), got.WeightedCoverage(), want.Coverage(), want.WeightedCoverage())
	}
}

// BenchmarkTable5FaultCoverageSharded is BenchmarkTable5FaultCoverage with
// every grading call fanned out across 4 worker subprocesses of this test
// binary (see TestMain) through the internal/shard coordinator. The
// artifact cache is shared across iterations, so after the first shipment
// workers load the netlist and golden trace from disk. Results are
// bit-identical to the unsharded bench; the wall-clock ratio against
// BenchmarkTable5FaultCoverage measures the sharding overhead or speedup
// on this machine's core count.
func BenchmarkTable5FaultCoverageSharded(b *testing.B) {
	e := benchEnv(b)
	disk, err := cache.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	e.Grader = func(cpu *plasma.CPU, golden *plasma.Golden, faults []fault.Fault, opt fault.Options) (*fault.Result, error) {
		res, _, err := shard.Grade(cpu, golden, faults, shard.Options{
			Shards:    4,
			Engine:    opt.Engine,
			LaneWords: opt.LaneWords,
			Workers:   opt.Workers,
			Sample:    opt.Sample,
			Seed:      opt.Seed,
			Cache:     disk,
		})
		return res, err
	}
	defer func() { e.Grader = nil }()
	b.ResetTimer()
	var d *bench.Table5Data
	for i := 0; i < b.N; i++ {
		var err error
		d, _, err = bench.Table5(e, benchOpt, false)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fcOf(d.PhaseA), "phaseA-FC%")
	b.ReportMetric(fcOf(d.PhaseAB), "phaseAB-FC%")
}

// BenchmarkFusedReplay measures checkpoint-window replay fusion against
// the unfused per-pass reference on the Phase A workload: identical pass
// plan and detections (asserted by internal/fault's fusion equivalence
// tests), so the wall-clock delta is pure per-pass setup — cold simulator
// construction, golden replay to the activation cycle, and full hook
// reinstallation — that fusion amortizes across each window.
func BenchmarkFusedReplay(b *testing.B) {
	e := benchEnv(b)
	g, err := e.Golden(core.PhaseA)
	if err != nil {
		b.Fatal(err)
	}
	faults := e.Faults()
	for _, c := range []struct {
		name   string
		noFuse bool
	}{{"fused", false}, {"unfused", true}} {
		b.Run(c.name, func(b *testing.B) {
			opt := fault.Options{Sample: 1024, Seed: 1, NoFusion: c.noFuse}
			var detected int
			for i := 0; i < b.N; i++ {
				res, err := fault.Simulate(e.CPU, g, faults, opt)
				if err != nil {
					b.Fatal(err)
				}
				detected = 0
				for j := range res.Faults {
					if res.Detected(j) {
						detected++
					}
				}
			}
			b.ReportMetric(float64(detected), "detected")
		})
	}
}

// BenchmarkServeThroughput measures the warm-state grading service's
// reason to exist: programs graded per second at 8 concurrent clients.
// The workload is the iterative-generation inner loop the service targets
// (ISSUE motivation; "Combined Deterministic and Pseudoexhaustive Test
// Generation", PAPERS.md): re-grading a short candidate fragment — the
// first 80 cycles of the Phase A program — against a small fault sample,
// where per-request fixed costs dominate the actual simulation.
//
//   - warm: one long-running serve.Server, 8 persistent TCP clients,
//     memoized golden + pass plan, pooled warm simulators. The fragment's
//     fault list is elided on the wire (universe-hash match).
//   - cold: what every invocation pays today, per request: a real process
//     start (this test binary re-exec'd, see TestMain), then synthesize
//     the core, capture the fragment golden, enumerate the fault universe,
//     fault.Simulate (plan + simulator construction inside). Process start
//     (exec + runtime/package init) measures ~3ms of a ~14ms cold request
//     on this box — real but not dominant; the fixed in-process costs
//     (capture + universe + plan + simulator construction) are the bulk
//     of the gap.
//
// Served results are asserted bit-identical to fault.Simulate in
// internal/serve's tests, so the programs/s ratio is pure fixed-cost
// amortization. Honesty caveats (single-core box, as in PRs 4-6): with 1
// core the 8 clients pipeline into the pool rather than run in parallel,
// so the ratio measures per-request cost, not scaling; and the advantage
// decays as per-request simulation grows — grading the full 6626-cycle
// Phase A program measures ~1.1x, because both paths then
// spend their time in the same pass kernels (measured in-process at
// Sample 512; a ~3ms process start does not move a ~290ms request).
func BenchmarkServeThroughput(b *testing.B) {
	e := benchEnv(b)
	st, err := e.SelfTest(core.PhaseA)
	if err != nil {
		b.Fatal(err)
	}
	const (
		clients    = 8
		fragCycles = 64
	)
	opt := fault.Options{Sample: 32, Seed: 1, Workers: 1}
	golden, err := plasma.CaptureGoldenK(e.CPU, st.Program, fragCycles, plasma.DefaultCheckpointK)
	if err != nil {
		b.Fatal(err)
	}

	// each runs fn once per client per iteration and reports programs/s.
	each := func(b *testing.B, fn func(c int) error) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			errs := make([]error, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					errs[c] = fn(c)
				}(c)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(clients*b.N)/b.Elapsed().Seconds(), "programs/s")
	}

	b.Run("warm", func(b *testing.B) {
		srv, err := serve.NewServer(serve.Config{CPU: e.CPU, Pool: clients})
		if err != nil {
			b.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		defer func() {
			if err := srv.Shutdown(10 * time.Second); err != nil {
				b.Error(err)
			}
			<-done
		}()
		cls := make([]*serve.Client, clients)
		for c := range cls {
			if cls[c], err = serve.Dial(ln.Addr().String()); err != nil {
				b.Fatal(err)
			}
			defer cls[c].Close()
		}
		faults := e.Faults()
		// One warmup round memoizes the golden and plan and builds the
		// simulator pool — the steady state a long-running daemon lives in.
		for _, cl := range cls {
			if _, err := cl.Grade(e.CPU, golden, faults, opt); err != nil {
				b.Fatal(err)
			}
		}
		each(b, func(c int) error {
			_, err := cls[c].Grade(e.CPU, golden, faults, opt)
			return err
		})
	})

	b.Run("cold", func(b *testing.B) {
		exe, err := os.Executable()
		if err != nil {
			b.Fatal(err)
		}
		var words []string
		words = append(words, strconv.FormatUint(uint64(st.Program.Origin), 10))
		for _, w := range st.Program.Words {
			words = append(words, strconv.FormatUint(uint64(w), 10))
		}
		progFile := filepath.Join(b.TempDir(), "fragment.prog")
		if err := os.WriteFile(progFile, []byte(strings.Join(words, "\n")), 0o644); err != nil {
			b.Fatal(err)
		}
		env := append(os.Environ(), fmt.Sprintf("SBST_BENCH_COLDGRADE=%s %d %d %d",
			progFile, fragCycles, opt.Sample, opt.Seed))
		each(b, func(c int) error {
			cmd := exec.Command(exe)
			cmd.Env = env
			if out, err := cmd.CombinedOutput(); err != nil {
				return fmt.Errorf("cold grade process: %w: %s", err, out)
			}
			return nil
		})
	})
}

// BenchmarkTechLibIndependence regenerates the Section 4 technology-
// independence claim: Phase A+B coverage across two cell libraries.
func BenchmarkTechLibIndependence(b *testing.B) {
	eA, eB := benchEnv(b), benchEnvB(b)
	b.ResetTimer()
	var rows []bench.TechLibRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = bench.TechLibIndependence([]*bench.Env{eA, eB}, benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].FC, "libA-FC%")
	b.ReportMetric(rows[1].FC, "libB-FC%")
}

// BenchmarkBaselineComparison regenerates the Section 1/4 cost comparison
// against pseudorandom software self-test.
func BenchmarkBaselineComparison(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	var rows []bench.BaselineRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = bench.BaselineComparison(e, []int{64}, benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].FC, "sbst-FC%")
	b.ReportMetric(rows[1].FC, "prand64-FC%")
	b.ReportMetric(float64(rows[1].Cycles)/float64(rows[0].Cycles), "cycle-ratio")
}

// BenchmarkTesterCostModel regenerates the Figure 1 resource-partitioning
// argument: download time dominates total test time on slow testers.
func BenchmarkTesterCostModel(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	var rows []bench.CostRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = bench.CostModel(e)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.Cost.DownloadShare()*100, "download-share-%@1MHz")
}

// BenchmarkRoutineAblation regenerates the single-routine contribution
// ablation (which routine buys how much coverage at what cost).
func BenchmarkRoutineAblation(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = bench.RoutineAblation(e, benchOpt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].OverallFC, "regf-only-FC%")
}

// BenchmarkATPGvsLibrary regenerates the component-level comparison of the
// deterministic test-set library against structural ATPG (PODEM).
func BenchmarkATPGvsLibrary(b *testing.B) {
	var rows []bench.ATPGRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = bench.ATPGComparison()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].FC, "alu-library-FC%")
	b.ReportMetric(rows[1].FC, "alu-podem-FC%")
}

// BenchmarkSelfTestGeneration measures pure test-program generation time
// (the engineering-automation cost of the methodology).
func BenchmarkSelfTestGeneration(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GenerateSelfTest(e.Comps, core.PhaseC); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGateLevelSimulation measures raw gate-level simulation speed:
// cycles of the Phase A program per second on the full core.
func BenchmarkGateLevelSimulation(b *testing.B) {
	e := benchEnv(b)
	st, err := e.SelfTest(core.PhaseA)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.FaultSimProgram(st.Program, 256, fault.Options{Sample: 64, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
